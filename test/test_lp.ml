(* LP substrate: the two-phase simplex and the problem builder. *)

module Simplex = Tin_lp.Simplex
module Problem = Tin_lp.Problem

let check_opt ~expected_obj ?(expected = []) outcome =
  match outcome with
  | Simplex.Optimal { objective; solution } ->
      Alcotest.(check (float 1e-6)) "objective" expected_obj objective;
      List.iter
        (fun (i, v) -> Alcotest.(check (float 1e-6)) (Printf.sprintf "x%d" i) v solution.(i))
        expected
  | Simplex.Infeasible -> Alcotest.fail "unexpected: infeasible"
  | Simplex.Unbounded -> Alcotest.fail "unexpected: unbounded"
  | Simplex.Iteration_limit -> Alcotest.fail "unexpected: iteration limit"

(* Classic textbook instance: max 3x + 5y s.t. x<=4, 2y<=12, 3x+2y<=18. *)
let test_simplex_textbook () =
  check_opt ~expected_obj:36.0
    ~expected:[ (0, 2.0); (1, 6.0) ]
    (Simplex.solve ~c:[| 3.0; 5.0 |]
       ~rows:
         [
           ([| 1.0; 0.0 |], Simplex.Le, 4.0);
           ([| 0.0; 2.0 |], Simplex.Le, 12.0);
           ([| 3.0; 2.0 |], Simplex.Le, 18.0);
         ]
       ())

let test_simplex_equality () =
  (* max x + y s.t. x + y = 5, x <= 3  -> 5, with x in [0,3]. *)
  check_opt ~expected_obj:5.0
    (Simplex.solve ~c:[| 1.0; 1.0 |]
       ~rows:[ ([| 1.0; 1.0 |], Simplex.Eq, 5.0); ([| 1.0; 0.0 |], Simplex.Le, 3.0) ]
       ())

let test_simplex_ge () =
  (* max -x s.t. x >= 2  -> x = 2, obj -2 (phase 1 needed). *)
  check_opt ~expected_obj:(-2.0)
    ~expected:[ (0, 2.0) ]
    (Simplex.solve ~c:[| -1.0 |] ~rows:[ ([| 1.0 |], Simplex.Ge, 2.0) ] ())

let test_simplex_infeasible () =
  match
    Simplex.solve ~c:[| 1.0 |]
      ~rows:[ ([| 1.0 |], Simplex.Le, 1.0); ([| 1.0 |], Simplex.Ge, 2.0) ]
      ()
  with
  | Simplex.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible"

let test_simplex_unbounded () =
  match Simplex.solve ~c:[| 1.0 |] ~rows:[ ([| -1.0 |], Simplex.Le, 1.0) ] () with
  | Simplex.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded"

let test_simplex_negative_rhs () =
  (* -x <= -2  is  x >= 2; max -x -> -2. *)
  check_opt ~expected_obj:(-2.0)
    (Simplex.solve ~c:[| -1.0 |] ~rows:[ ([| -1.0 |], Simplex.Le, -2.0) ] ())

let test_simplex_degenerate () =
  (* Degenerate vertex at origin with redundant constraints; Bland
     protects against cycling.  Optimum: x = y = 1/2. *)
  check_opt ~expected_obj:0.5
    (Simplex.solve
       ~c:[| 1.0; 0.0 |]
       ~rows:
         [
           ([| 1.0; 1.0 |], Simplex.Le, 1.0);
           ([| 1.0; -1.0 |], Simplex.Le, 0.0);
           ([| 1.0; 0.0 |], Simplex.Le, 1.0);
         ]
       ())

let test_simplex_zero_objective () =
  check_opt ~expected_obj:0.0
    (Simplex.solve ~c:[| 0.0 |] ~rows:[ ([| 1.0 |], Simplex.Le, 3.0) ] ())

let test_simplex_arity_mismatch () =
  Alcotest.check_raises "row arity" (Invalid_argument "Simplex.solve: row arity mismatch")
    (fun () ->
      ignore (Simplex.solve ~c:[| 1.0 |] ~rows:[ ([| 1.0; 2.0 |], Simplex.Le, 1.0) ] ()))

(* Brute-force LP oracle over constraint-boundary intersections in 2D:
   enumerate all vertices of the feasible polygon (pairwise
   intersections of tight constraints, plus axes), keep feasible ones,
   take the best objective.  Compares against the simplex on random
   2-variable problems. *)
let brute_force_2d ~c ~rows =
  let lines =
    (* each row as a*x + b*y <= r ; plus x >= 0 and y >= 0 *)
    rows @ [ ([| -1.0; 0.0 |], Simplex.Le, 0.0); ([| 0.0; -1.0 |], Simplex.Le, 0.0) ]
  in
  let feasible (x, y) =
    List.for_all (fun (a, _, r) -> (a.(0) *. x) +. (a.(1) *. y) <= r +. 1e-7) lines
  in
  let candidates = ref [] in
  let n = List.length lines in
  let arr = Array.of_list lines in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let a1, _, r1 = arr.(i) and a2, _, r2 = arr.(j) in
      let det = (a1.(0) *. a2.(1)) -. (a1.(1) *. a2.(0)) in
      if Float.abs det > 1e-9 then begin
        let x = ((r1 *. a2.(1)) -. (r2 *. a1.(1))) /. det in
        let y = ((a1.(0) *. r2) -. (a2.(0) *. r1)) /. det in
        if feasible (x, y) then candidates := (x, y) :: !candidates
      end
    done
  done;
  match !candidates with
  | [] -> None
  | cs ->
      Some
        (List.fold_left
           (fun best (x, y) -> Float.max best ((c.(0) *. x) +. (c.(1) *. y)))
           neg_infinity cs)

let test_simplex_vs_brute_force () =
  let rng = Tin_util.Prng.create ~seed:1234 in
  for _ = 1 to 200 do
    let c = [| float_of_int (Tin_util.Prng.int rng 10); float_of_int (Tin_util.Prng.int rng 10) |] in
    let n_rows = 1 + Tin_util.Prng.int rng 4 in
    let rows =
      List.init n_rows (fun _ ->
          ( [|
              float_of_int (1 + Tin_util.Prng.int rng 5);
              float_of_int (1 + Tin_util.Prng.int rng 5);
            |],
            Simplex.Le,
            float_of_int (1 + Tin_util.Prng.int rng 20) ))
    in
    (* All-positive coefficients with positive rhs: bounded, feasible. *)
    match (Simplex.solve ~c ~rows (), brute_force_2d ~c ~rows) with
    | Simplex.Optimal { objective; _ }, Some best ->
        Alcotest.(check (float 1e-5)) "agrees with brute force" best objective
    | outcome, _ ->
        Alcotest.failf "unexpected outcome %s"
          (match outcome with
          | Simplex.Optimal _ -> "optimal/no-bruteforce"
          | Simplex.Infeasible -> "infeasible"
          | Simplex.Unbounded -> "unbounded"
          | Simplex.Iteration_limit -> "iteration limit")
  done

let test_problem_basic () =
  let p = Problem.create () in
  let x = Problem.add_var ~ub:4.0 ~obj:3.0 ~name:"x" p in
  let y = Problem.add_var ~obj:5.0 p in
  Problem.add_le p [ (2.0, y) ] 12.0;
  Problem.add_le p [ (3.0, x); (2.0, y) ] 18.0;
  let sol = Problem.solve p in
  Alcotest.(check bool) "optimal" true (sol.Problem.status = `Optimal);
  Alcotest.(check (float 1e-6)) "objective" 36.0 sol.Problem.objective;
  Alcotest.(check (float 1e-6)) "x" 2.0 (sol.Problem.value x);
  Alcotest.(check (float 1e-6)) "y" 6.0 (sol.Problem.value y);
  Alcotest.(check string) "name" "x" (Problem.var_name p x)

let test_problem_minimize () =
  let p = Problem.create ~direction:Problem.Minimize () in
  let x = Problem.add_var ~obj:1.0 p in
  Problem.add_ge p [ (1.0, x) ] 3.0;
  let sol = Problem.solve p in
  Alcotest.(check (float 1e-6)) "min x subject to x>=3" 3.0 sol.Problem.objective

let test_problem_shifted_lower_bound () =
  let p = Problem.create ~direction:Problem.Minimize () in
  let x = Problem.add_var ~lb:2.0 ~ub:10.0 ~obj:1.0 p in
  let sol = Problem.solve p in
  Alcotest.(check (float 1e-6)) "sits at lb" 2.0 sol.Problem.objective;
  Alcotest.(check (float 1e-6)) "value" 2.0 (sol.Problem.value x)

let test_problem_free_variable () =
  (* min x st x >= -5 with free x: optimum -5 (needs the split). *)
  let p = Problem.create ~direction:Problem.Minimize () in
  let x = Problem.add_var ~lb:neg_infinity ~obj:1.0 p in
  Problem.add_ge p [ (1.0, x) ] (-5.0);
  let sol = Problem.solve p in
  Alcotest.(check (float 1e-6)) "objective" (-5.0) sol.Problem.objective;
  Alcotest.(check (float 1e-6)) "x" (-5.0) (sol.Problem.value x)

let test_problem_infeasible () =
  let p = Problem.create () in
  let x = Problem.add_var ~ub:1.0 p in
  Problem.add_ge p [ (1.0, x) ] 2.0;
  let sol = Problem.solve p in
  Alcotest.(check bool) "infeasible" true (sol.Problem.status = `Infeasible)

let test_problem_unbounded () =
  let p = Problem.create () in
  let _x = Problem.add_var ~obj:1.0 p in
  let sol = Problem.solve p in
  Alcotest.(check bool) "unbounded" true (sol.Problem.status = `Unbounded)

let test_problem_frozen () =
  let p = Problem.create () in
  let _x = Problem.add_var p in
  let _ = Problem.solve p in
  Alcotest.check_raises "frozen" (Invalid_argument "Problem.add_var: problem already solved")
    (fun () -> ignore (Problem.add_var p))

let test_problem_bad_bounds () =
  let p = Problem.create () in
  Alcotest.check_raises "lb>ub" (Invalid_argument "Problem.add_var: lb > ub") (fun () ->
      ignore (Problem.add_var ~lb:2.0 ~ub:1.0 p))

(* --- bounded-variable simplex --- *)

module Bounded = Tin_lp.Bounded

let test_bounded_basic () =
  (* max 3x + 5y, x <= 4 native bound, 2y <= 12, 3x + 2y <= 18. *)
  match
    Bounded.solve ~c:[| 3.0; 5.0 |] ~upper:[| 4.0; infinity |]
      ~rows:[ ([| 0.0; 2.0 |], 12.0); ([| 3.0; 2.0 |], 18.0) ]
      ()
  with
  | Bounded.Optimal { objective; solution } ->
      Alcotest.(check (float 1e-6)) "objective" 36.0 objective;
      Alcotest.(check (float 1e-6)) "x" 2.0 solution.(0);
      Alcotest.(check (float 1e-6)) "y" 6.0 solution.(1)
  | _ -> Alcotest.fail "expected optimal"

let test_bounded_pure_bound_flip () =
  (* No rows at all: optimum is every positive-cost variable at its
     upper bound (requires bound flips, no pivots possible). *)
  match
    Bounded.solve ~c:[| 2.0; -1.0 |] ~upper:[| 3.0; 5.0 |] ~rows:[] ()
  with
  | Bounded.Optimal { objective; solution } ->
      Alcotest.(check (float 1e-6)) "objective" 6.0 objective;
      Alcotest.(check (float 1e-6)) "x at ub" 3.0 solution.(0);
      Alcotest.(check (float 1e-6)) "y at lb" 0.0 solution.(1)
  | _ -> Alcotest.fail "expected optimal"

let test_bounded_unbounded () =
  match Bounded.solve ~c:[| 1.0 |] ~upper:[| infinity |] ~rows:[] () with
  | Bounded.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded"

let test_bounded_rejects_negative_rhs () =
  Alcotest.check_raises "negative rhs"
    (Invalid_argument "Bounded.solve: negative rhs (origin must be feasible)") (fun () ->
      ignore (Bounded.solve ~c:[| 1.0 |] ~upper:[| 1.0 |] ~rows:[ ([| 1.0 |], -1.0) ] ()))

let test_bounded_vs_dense_random () =
  (* On random bounded all-Le problems the two solvers must agree.
     The random structure is recorded first, then two identical
     problems are built from it. *)
  let rng = Tin_util.Prng.create ~seed:4242 in
  for _ = 1 to 200 do
    let n = 1 + Tin_util.Prng.int rng 5 in
    let vars_spec =
      List.init n (fun _ ->
          ( float_of_int (1 + Tin_util.Prng.int rng 9),
            float_of_int (Tin_util.Prng.int rng 10) ))
    in
    let n_rows = Tin_util.Prng.int rng 4 in
    let rows_spec =
      List.init n_rows (fun _ ->
          ( List.init n (fun _ -> float_of_int (Tin_util.Prng.int rng 4)),
            float_of_int (5 + Tin_util.Prng.int rng 30) ))
    in
    let build () =
      let p = Problem.create () in
      let vars = List.map (fun (ub, obj) -> Problem.add_var ~ub ~obj p) vars_spec in
      List.iter
        (fun (coefs, rhs) -> Problem.add_le p (List.combine coefs vars) rhs)
        rows_spec;
      (p, vars)
    in
    let p1, vars1 = build () in
    let p2, vars2 = build () in
    let s1 = Problem.solve ~solver:`Dense p1 in
    let s2 = Problem.solve ~solver:`Bounded p2 in
    Alcotest.(check bool) "both optimal" true
      (s1.Problem.status = `Optimal && s2.Problem.status = `Optimal);
    Alcotest.(check (float 1e-5)) "objectives agree" s1.Problem.objective s2.Problem.objective;
    (* Both solutions must be feasible for the recorded rows. *)
    List.iter
      (fun (coefs, rhs) ->
        let lhs vars sol =
          List.fold_left2 (fun acc c v -> acc +. (c *. sol.Problem.value v)) 0.0 coefs vars
        in
        Alcotest.(check bool) "dense feasible" true (lhs vars1 s1 <= rhs +. 1e-6);
        Alcotest.(check bool) "bounded feasible" true (lhs vars2 s2 <= rhs +. 1e-6))
      rows_spec
  done

let test_bounded_shape_rejected () =
  let p = Problem.create () in
  let x = Problem.add_var p in
  Problem.add_ge p [ (1.0, x) ] 1.0;
  Alcotest.check_raises "ge row rejected"
    (Invalid_argument "Problem.solve: `Bounded requires <= rows, non-negative rhs, no free vars")
    (fun () -> ignore (Problem.solve ~solver:`Bounded p))

(* --- exact iteration budgets --------------------------------------- *)

module Sparse = Tin_lp.Sparse
module Solver_metrics = Tin_lp.Solver_metrics

(* The budget contract is identical for all three solvers: a run that
   needs exactly [p] work passes (pivots / bound flips / defensive
   refactorize-retries, as counted by [Solver_metrics.iterations])
   returns its result with [max_iters = p] and [Iteration_limit] with
   [max_iters = p - 1] — never one extra iteration. *)
let check_budget_exact name solve_with =
  let base, iters = solve_with None in
  (match base with
  | `Opt _ -> ()
  | `Limit -> Alcotest.failf "%s: unlimited run hit the iteration limit" name
  | `Other -> Alcotest.failf "%s: expected an optimal base run" name);
  (match (solve_with (Some iters), base) with
  | (`Opt a, _), `Opt b -> Alcotest.(check (float 1e-9)) (name ^ ": budget = work suffices") b a
  | _ -> Alcotest.failf "%s: max_iters = %d (the exact work) must solve" name iters);
  if iters > 0 then
    match solve_with (Some (iters - 1)) with
    | `Limit, _ -> ()
    | _ -> Alcotest.failf "%s: max_iters = %d must hit Iteration_limit" name (iters - 1)

let test_iteration_budget_exact () =
  let rng = Tin_util.Prng.create ~seed:9090 in
  for _ = 1 to 100 do
    let n = 1 + Tin_util.Prng.int rng 5 in
    let c = Array.init n (fun _ -> float_of_int (Tin_util.Prng.int rng 10)) in
    let upper = Array.init n (fun _ -> float_of_int (1 + Tin_util.Prng.int rng 9)) in
    let n_rows = 1 + Tin_util.Prng.int rng 4 in
    let rows =
      List.init n_rows (fun _ ->
          ( Array.init n (fun _ -> float_of_int (Tin_util.Prng.int rng 4)),
            float_of_int (5 + Tin_util.Prng.int rng 30) ))
    in
    let rhs = Array.of_list (List.map snd rows) in
    let cols =
      Array.init n (fun j ->
          List.concat
            (List.mapi (fun i (a, _) -> if a.(j) <> 0.0 then [ (i, a.(j)) ] else []) rows))
    in
    let dense max_iters =
      (* The dense simplex has no native bounds: encode them as rows.
         All rows are Le, so phase 1 is empty and the per-phase budget
         is exactly the phase-2 budget. *)
      let m = Solver_metrics.create () in
      let bound_rows =
        List.init n (fun j ->
            (Array.init n (fun k -> if k = j then 1.0 else 0.0), Simplex.Le, upper.(j)))
      in
      let rows = List.map (fun (a, b) -> (a, Simplex.Le, b)) rows @ bound_rows in
      let o =
        match max_iters with
        | None -> Simplex.solve ~metrics:m ~c ~rows ()
        | Some k -> Simplex.solve ~max_iters:k ~metrics:m ~c ~rows ()
      in
      ( (match o with
        | Simplex.Optimal { objective; _ } -> `Opt objective
        | Simplex.Iteration_limit -> `Limit
        | _ -> `Other),
        m.Solver_metrics.iterations )
    in
    let bounded max_iters =
      let m = Solver_metrics.create () in
      let o =
        match max_iters with
        | None -> Bounded.solve ~metrics:m ~c ~upper ~rows ()
        | Some k -> Bounded.solve ~max_iters:k ~metrics:m ~c ~upper ~rows ()
      in
      ( (match o with
        | Bounded.Optimal { objective; _ } -> `Opt objective
        | Bounded.Iteration_limit -> `Limit
        | _ -> `Other),
        m.Solver_metrics.iterations )
    in
    let sparse max_iters =
      let m = Solver_metrics.create () in
      let o =
        match max_iters with
        | None -> Sparse.solve ~metrics:m ~c ~upper ~rhs ~cols ()
        | Some k -> Sparse.solve ~max_iters:k ~metrics:m ~c ~upper ~rhs ~cols ()
      in
      ( (match o with
        | Sparse.Optimal { objective; _ } -> `Opt objective
        | Sparse.Iteration_limit -> `Limit
        | _ -> `Other),
        m.Solver_metrics.iterations )
    in
    check_budget_exact "dense" dense;
    check_budget_exact "bounded" bounded;
    check_budget_exact "sparse" sparse
  done

let test_metrics_accumulate () =
  let m = Solver_metrics.create () in
  let solve () =
    ignore
      (Bounded.solve ~metrics:m ~c:[| 3.0; 5.0 |] ~upper:[| 4.0; infinity |]
         ~rows:[ ([| 0.0; 2.0 |], 12.0); ([| 3.0; 2.0 |], 18.0) ]
         ())
  in
  solve ();
  let once = m.Solver_metrics.iterations in
  Alcotest.(check bool) "a real solve does work" true (once > 0);
  Alcotest.(check int) "iterations = pivots + flips" once
    (m.Solver_metrics.pivots + m.Solver_metrics.bound_flips);
  solve ();
  Alcotest.(check int) "metrics accumulate across solves" (2 * once) m.Solver_metrics.iterations

let test_problem_repeated_terms () =
  (* x + x <= 4 means x <= 2. *)
  let p = Problem.create () in
  let x = Problem.add_var ~obj:1.0 p in
  Problem.add_le p [ (1.0, x); (1.0, x) ] 4.0;
  let sol = Problem.solve p in
  Alcotest.(check (float 1e-6)) "objective" 2.0 sol.Problem.objective

let () =
  Alcotest.run "lp"
    [
      ( "simplex",
        [
          Alcotest.test_case "textbook" `Quick test_simplex_textbook;
          Alcotest.test_case "equality row" `Quick test_simplex_equality;
          Alcotest.test_case "ge row (phase 1)" `Quick test_simplex_ge;
          Alcotest.test_case "infeasible" `Quick test_simplex_infeasible;
          Alcotest.test_case "unbounded" `Quick test_simplex_unbounded;
          Alcotest.test_case "negative rhs" `Quick test_simplex_negative_rhs;
          Alcotest.test_case "degenerate" `Quick test_simplex_degenerate;
          Alcotest.test_case "zero objective" `Quick test_simplex_zero_objective;
          Alcotest.test_case "arity mismatch" `Quick test_simplex_arity_mismatch;
          Alcotest.test_case "random vs brute force" `Quick test_simplex_vs_brute_force;
        ] );
      ( "problem",
        [
          Alcotest.test_case "basic" `Quick test_problem_basic;
          Alcotest.test_case "minimize" `Quick test_problem_minimize;
          Alcotest.test_case "lower bound shift" `Quick test_problem_shifted_lower_bound;
          Alcotest.test_case "free variable" `Quick test_problem_free_variable;
          Alcotest.test_case "infeasible" `Quick test_problem_infeasible;
          Alcotest.test_case "unbounded" `Quick test_problem_unbounded;
          Alcotest.test_case "frozen after solve" `Quick test_problem_frozen;
          Alcotest.test_case "bad bounds" `Quick test_problem_bad_bounds;
          Alcotest.test_case "repeated terms" `Quick test_problem_repeated_terms;
        ] );
      ( "bounded",
        [
          Alcotest.test_case "textbook" `Quick test_bounded_basic;
          Alcotest.test_case "pure bound flips" `Quick test_bounded_pure_bound_flip;
          Alcotest.test_case "unbounded" `Quick test_bounded_unbounded;
          Alcotest.test_case "negative rhs rejected" `Quick test_bounded_rejects_negative_rhs;
          Alcotest.test_case "random dense = bounded" `Quick test_bounded_vs_dense_random;
          Alcotest.test_case "shape rejection" `Quick test_bounded_shape_rejected;
        ] );
      ( "budget",
        [
          Alcotest.test_case "max_iters exact on all solvers" `Quick test_iteration_budget_exact;
          Alcotest.test_case "metrics accumulate" `Quick test_metrics_accumulate;
        ] );
    ]
