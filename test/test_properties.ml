(* Property-based tests (qcheck): cross-implementation agreement and
   invariant preservation on randomly generated problems.

   Three independent maximum-flow implementations exist in this
   repository — the LP formulation over our simplex, Dinic and
   Edmonds-Karp on the time-expanded static network — plus two
   flow-preserving graph reductions and the greedy lower bound.  The
   properties below tie them all together. *)

open Tin_testlib
module Greedy = Tin_core.Greedy
module Lp_flow = Tin_core.Lp_flow
module Preprocess = Tin_core.Preprocess
module Simplify = Tin_core.Simplify
module Solubility = Tin_core.Solubility
module Pipeline = Tin_core.Pipeline
module TE = Tin_maxflow.Time_expand
module Fcmp = Tin_util.Fcmp

let lp_exn g ~source ~sink =
  match Lp_flow.solve g ~source ~sink with
  | Ok v -> v
  | Error _ -> QCheck.Test.fail_report "LP solver failure"

let eps = 1e-5

let prop_greedy_le_max rng =
  let g, source, sink = Gen.random_dag rng in
  let greedy = Greedy.flow g ~source ~sink in
  let best = TE.max_flow g ~source ~sink in
  Fcmp.approx_le ~eps greedy best

let prop_lp_eq_dinic rng =
  let g, source, sink = Gen.random_dag rng in
  Fcmp.approx_eq ~eps (lp_exn g ~source ~sink) (TE.max_flow g ~source ~sink)

let prop_lp_eq_dinic_cyclic rng =
  let g, source, sink = Gen.random_digraph rng in
  Fcmp.approx_eq ~eps (lp_exn g ~source ~sink) (TE.max_flow g ~source ~sink)

let prop_dinic_eq_ek rng =
  let g, source, sink = Gen.random_digraph rng in
  Fcmp.approx_eq ~eps
    (TE.max_flow ~algo:`Dinic g ~source ~sink)
    (TE.max_flow ~algo:`Edmonds_karp g ~source ~sink)

let prop_lp_dense_eq_bounded rng =
  (* The two simplex variants must agree on flow LPs (the ablation's
     correctness premise). *)
  let g, source, sink = Gen.random_dag rng in
  let run solver =
    match Lp_flow.solve ~solver g ~source ~sink with
    | Ok v -> v
    | Error _ -> QCheck.Test.fail_report "LP solver failure"
  in
  Fcmp.approx_eq ~eps (run `Dense) (run `Bounded)

let prop_all_simplex_variants_eq_dinic rng =
  (* All three simplex variants (dense two-phase, bounded tableau,
     sparse revised) and the time-expanded Dinic oracle must agree to
     1e-6 on random DAG flow problems. *)
  let g, source, sink = Gen.random_dag rng in
  let run solver =
    match Lp_flow.solve ~solver g ~source ~sink with
    | Ok v -> v
    | Error _ -> QCheck.Test.fail_report "LP solver failure"
  in
  let oracle = TE.max_flow g ~source ~sink in
  List.for_all
    (fun solver -> Fcmp.approx_eq ~eps:1e-6 oracle (run solver))
    [ `Dense; `Bounded; `Sparse ]

let prop_push_relabel_eq_dinic rng =
  let g, source, sink = Gen.random_digraph rng in
  Fcmp.approx_eq ~eps
    (TE.max_flow ~algo:`Push_relabel g ~source ~sink)
    (TE.max_flow ~algo:`Dinic g ~source ~sink)

let prop_push_relabel_eq_dinic_larger rng =
  (* Larger instances: regression guard for a push-relabel livelock
     where nodes lifted above 2n kept being re-activated. *)
  let g, source, sink = Gen.random_digraph ~max_v:14 ~max_edges:40 ~max_inter:4 rng in
  Fcmp.approx_eq ~eps
    (TE.max_flow ~algo:`Push_relabel g ~source ~sink)
    (TE.max_flow ~algo:`Dinic g ~source ~sink)

let prop_preprocess_preserves rng =
  let g, source, sink = Gen.random_dag rng in
  let before = TE.max_flow g ~source ~sink in
  let r = Preprocess.run g ~source ~sink in
  if r.Preprocess.zero_flow then Fcmp.is_zero ~eps before
  else Fcmp.approx_eq ~eps before (TE.max_flow r.Preprocess.graph ~source ~sink)

let prop_simplify_preserves rng =
  let g, source, sink = Gen.random_dag rng in
  let before = TE.max_flow g ~source ~sink in
  let r = Simplify.run g ~source ~sink in
  Fcmp.approx_eq ~eps before (TE.max_flow r.Simplify.graph ~source ~sink)

let prop_preprocess_then_simplify_preserves rng =
  let g, source, sink = Gen.random_dag rng in
  let before = TE.max_flow g ~source ~sink in
  let r = Preprocess.run g ~source ~sink in
  if r.Preprocess.zero_flow then Fcmp.is_zero ~eps before
  else begin
    let r2 = Simplify.run r.Preprocess.graph ~source ~sink in
    Fcmp.approx_eq ~eps before (TE.max_flow r2.Simplify.graph ~source ~sink)
  end

let prop_simplify_idempotent rng =
  (* Simplification runs to a fixpoint: applying it twice changes
     nothing more. *)
  let g, source, sink = Gen.random_dag rng in
  let once = (Simplify.run g ~source ~sink).Simplify.graph in
  let twice = (Simplify.run once ~source ~sink).Simplify.graph in
  Graph.equal once twice

let prop_preprocess_idempotent rng =
  let g, source, sink = Gen.random_dag rng in
  let r1 = Preprocess.run g ~source ~sink in
  if r1.Preprocess.zero_flow then true
  else begin
    let r2 = Preprocess.run r1.Preprocess.graph ~source ~sink in
    (* A second pass may still trim interactions exposed by the first
       (the paper's single topological pass is not a fixpoint
       computation), but it must never disturb the flow value. *)
    Tin_util.Fcmp.approx_eq ~eps
      (TE.max_flow r1.Preprocess.graph ~source ~sink)
      (TE.max_flow r2.Preprocess.graph ~source ~sink)
  end

let prop_pre_and_presim_agree_with_lp rng =
  let g, source, sink = Gen.random_dag rng in
  let reference = lp_exn g ~source ~sink in
  Fcmp.approx_eq ~eps reference (Pipeline.compute Pipeline.Pre g ~source ~sink)
  && Fcmp.approx_eq ~eps reference (Pipeline.compute Pipeline.Pre_sim g ~source ~sink)

let prop_chain_greedy_optimal rng =
  (* Lemma 1. *)
  let g, source, sink = Gen.random_chain rng in
  Fcmp.approx_eq ~eps (Greedy.flow g ~source ~sink) (TE.max_flow g ~source ~sink)

let prop_lemma2_greedy_optimal rng =
  (* Lemma 2 family: every interior vertex has exactly one outgoing
     edge. *)
  let g, source, sink = Gen.random_lemma2 rng in
  (* The generator guarantees the condition; double-check it. *)
  Solubility.soluble g ~source ~sink
  && Fcmp.approx_eq ~eps (Greedy.flow g ~source ~sink) (TE.max_flow g ~source ~sink)

let prop_soluble_implies_greedy_optimal rng =
  (* Whenever the Lemma-2 test passes on an arbitrary DAG, greedy must
     equal the maximum. *)
  let g, source, sink = Gen.random_dag rng in
  (not (Solubility.soluble g ~source ~sink))
  || Fcmp.approx_eq ~eps (Greedy.flow g ~source ~sink) (TE.max_flow g ~source ~sink)

let prop_flow_bounded_by_cut rng =
  (* Max flow cannot exceed the total quantity leaving the source or
     entering the sink. *)
  let g, source, sink = Gen.random_dag rng in
  let best = TE.max_flow g ~source ~sink in
  let out_cap =
    List.fold_left (fun acc (_, is) -> acc +. Interaction.total_qty is) 0.0 (Graph.out_edges g source)
  in
  let in_cap =
    List.fold_left (fun acc (_, is) -> acc +. Interaction.total_qty is) 0.0 (Graph.in_edges g sink)
  in
  Fcmp.approx_le ~eps best out_cap && Fcmp.approx_le ~eps best in_cap

let prop_greedy_trace_consistent rng =
  (* The trace's moved amounts never exceed offers, and the flow equals
     the sum of transfers into the sink. *)
  let g, source, sink = Gen.random_digraph rng in
  let flow, trace = Greedy.flow_trace g ~source ~sink in
  List.for_all (fun tr -> tr.Greedy.moved <= tr.Greedy.offered +. 1e-12) trace
  &&
  let into_sink =
    List.fold_left
      (fun acc tr -> if tr.Greedy.dst = sink then acc +. tr.Greedy.moved else acc)
      0.0 trace
  in
  Fcmp.approx_eq ~eps flow into_sink

let prop_scaling_invariance rng =
  (* Flow is linear in quantities: scaling all quantities by k scales
     the maximum flow by k. *)
  let g, source, sink = Gen.random_dag rng in
  let k = 3.0 in
  let scaled =
    Graph.fold_edges
      (fun src dst is acc ->
        Graph.add_edge acc ~src ~dst
          (List.map
             (fun i -> Interaction.make ~time:(Interaction.time i) ~qty:(k *. Interaction.qty i))
             is))
      g Graph.empty
  in
  (* keep isolated endpoint vertices *)
  let scaled = Graph.add_vertex (Graph.add_vertex scaled source) sink in
  Fcmp.approx_eq ~eps:1e-4 (k *. TE.max_flow g ~source ~sink) (TE.max_flow scaled ~source ~sink)

let prop_time_shift_invariance rng =
  (* Shifting all timestamps by a constant changes nothing. *)
  let g, source, sink = Gen.random_dag rng in
  let shifted =
    Graph.fold_edges
      (fun src dst is acc ->
        Graph.add_edge acc ~src ~dst
          (List.map
             (fun i ->
               Interaction.make ~time:(Interaction.time i +. 1000.0) ~qty:(Interaction.qty i))
             is))
      g Graph.empty
  in
  let shifted = Graph.add_vertex (Graph.add_vertex shifted source) sink in
  Fcmp.approx_eq ~eps (TE.max_flow g ~source ~sink) (TE.max_flow shifted ~source ~sink)
  && Fcmp.approx_eq ~eps (Greedy.flow g ~source ~sink) (Greedy.flow shifted ~source ~sink)

(* --- representation determinism -------------------------------------
   The flat Compact consumers must agree with their Graph.t twins
   bit-for-bit (exact Float equality, not approx): same scan order,
   same floating-point operation sequence. *)

let prop_compact_greedy_bit_identical rng =
  let g, source, sink = Gen.random_digraph rng in
  let c = Compact.of_graph g in
  Float.equal (Greedy.flow g ~source ~sink) (Greedy.flow_compact c ~source ~sink)

let prop_compact_lp_bit_identical rng =
  let g, source, sink = Gen.random_dag rng in
  let c = Compact.of_graph g in
  match (Lp_flow.solve ~solver:`Sparse g ~source ~sink,
         Lp_flow.solve_compact ~solver:`Sparse c ~source ~sink)
  with
  | Ok a, Ok b -> Float.equal a b
  | Error _, Error _ -> true
  | _ -> false

let prop_compact_te_bit_identical rng =
  let g, source, sink = Gen.random_digraph rng in
  let c = Compact.of_graph g in
  Float.equal (TE.max_flow g ~source ~sink) (TE.max_flow_compact c ~source ~sink)

let prop_compact_preprocess_identical rng =
  (* The flat preprocess produces the same surviving network and the
     same removal statistics as the persistent one. *)
  let g, source, sink = Gen.random_dag rng in
  let r = Preprocess.run g ~source ~sink in
  let rc = Preprocess.run_compact (Compact.of_graph g) ~source ~sink in
  r.Preprocess.zero_flow = rc.Preprocess.zero_flow_c
  && r.Preprocess.removed_interactions = rc.Preprocess.removed_interactions_c
  && r.Preprocess.removed_edges = rc.Preprocess.removed_edges_c
  && r.Preprocess.removed_vertices = rc.Preprocess.removed_vertices_c
  && (rc.Preprocess.zero_flow_c
     || Graph.equal r.Preprocess.graph (Compact.to_graph rc.Preprocess.compact))

let prop_compact_roundtrip_graph rng =
  (* of_graph / to_graph is the identity on self-loop-free graphs. *)
  let g, _, _ = Gen.random_digraph rng in
  Graph.equal g (Compact.to_graph (Compact.of_graph g))

let prop_classification_consistent rng =
  let g, source, sink = Gen.random_dag rng in
  match Pipeline.classify g ~source ~sink with
  | Pipeline.A ->
      (* Class A means greedy is already exact. *)
      Fcmp.approx_eq ~eps (Greedy.flow g ~source ~sink) (TE.max_flow g ~source ~sink)
  | Pipeline.B | Pipeline.C -> true

let () =
  Alcotest.run "properties"
    [
      ( "equivalence",
        [
          Check.seeded_property "greedy <= max" prop_greedy_le_max;
          Check.seeded_property "LP = Dinic (DAGs)" prop_lp_eq_dinic;
          Check.seeded_property "LP = Dinic (cyclic)" prop_lp_eq_dinic_cyclic;
          Check.seeded_property "Dinic = Edmonds-Karp" prop_dinic_eq_ek;
          Check.seeded_property "push-relabel = Dinic" prop_push_relabel_eq_dinic;
          Check.seeded_property ~count:80 "push-relabel = Dinic (larger)"
            prop_push_relabel_eq_dinic_larger;
          Check.seeded_property "LP dense simplex = bounded simplex" prop_lp_dense_eq_bounded;
          Check.seeded_property "dense/bounded/sparse simplex = Dinic"
            prop_all_simplex_variants_eq_dinic;
          Check.seeded_property "Pre/PreSim = LP" prop_pre_and_presim_agree_with_lp;
        ] );
      ( "reductions",
        [
          Check.seeded_property "preprocess preserves max flow" prop_preprocess_preserves;
          Check.seeded_property "simplify preserves max flow" prop_simplify_preserves;
          Check.seeded_property "preprocess+simplify preserve" prop_preprocess_then_simplify_preserves;
          Check.seeded_property ~count:100 "simplify idempotent" prop_simplify_idempotent;
          Check.seeded_property ~count:100 "preprocess stable" prop_preprocess_idempotent;
        ] );
      ( "lemmas",
        [
          Check.seeded_property "Lemma 1: chains" prop_chain_greedy_optimal;
          Check.seeded_property "Lemma 2: one-outgoing DAGs" prop_lemma2_greedy_optimal;
          Check.seeded_property "soluble => greedy optimal" prop_soluble_implies_greedy_optimal;
        ] );
      ( "invariants",
        [
          Check.seeded_property "flow bounded by cuts" prop_flow_bounded_by_cut;
          Check.seeded_property "greedy trace consistent" prop_greedy_trace_consistent;
          Check.seeded_property "quantity scaling" prop_scaling_invariance;
          Check.seeded_property "time-shift invariance" prop_time_shift_invariance;
          Check.seeded_property "classification consistent" prop_classification_consistent;
        ] );
      ( "representation",
        [
          Check.seeded_property "greedy: Compact = Graph (bit-identical)"
            prop_compact_greedy_bit_identical;
          Check.seeded_property "LP sparse: Compact = Graph (bit-identical)"
            prop_compact_lp_bit_identical;
          Check.seeded_property "time-expanded: Compact = Graph (bit-identical)"
            prop_compact_te_bit_identical;
          Check.seeded_property ~count:100 "preprocess: Compact = Graph"
            prop_compact_preprocess_identical;
          Check.seeded_property ~count:100 "of_graph/to_graph identity"
            prop_compact_roundtrip_graph;
        ] );
    ]
