(* Bench-regression gate: flattening, direction heuristics, tolerance
   judgement, and the Added/Removed soft-gate semantics. *)

module Json = Tin_util.Json
module Regress = Tin_util.Regress

let parse s =
  match Json.parse s with Ok v -> v | Error msg -> Alcotest.failf "bad test JSON: %s" msg

let row_status rows path =
  match List.find_opt (fun (r : Regress.row) -> r.Regress.path = path) rows with
  | Some r -> Some r.Regress.status
  | None -> None

let status = Alcotest.testable (Fmt.of_to_string Regress.status_name) ( = )

let compare_str ?tolerance_pct base cur =
  Regress.compare_docs ?tolerance_pct ~baseline:(parse base) ~current:(parse cur) ()

let test_identical_docs_clean () =
  let doc = {|{"a": {"wall_ms": 120.0, "iters": 400}, "speedup": 3.2}|} in
  let rows = compare_str doc doc in
  Alcotest.(check int) "all compared" 3 (List.length rows);
  Alcotest.(check (list status)) "all within tolerance"
    [ Regress.Ok_within; Regress.Ok_within; Regress.Ok_within ]
    (List.map (fun (r : Regress.row) -> r.Regress.status) rows);
  Alcotest.(check int) "no regressions" 0 (List.length (Regress.regressed rows))

let test_wall_clock_direction () =
  let base = {|{"run": {"wall_ms": 100.0}}|} in
  (* +30% on a _ms metric regresses ... *)
  let rows = compare_str base {|{"run": {"wall_ms": 130.0}}|} in
  Alcotest.(check (option status)) "slower regresses" (Some Regress.Regressed)
    (row_status rows "run.wall_ms");
  (* ... -30% improves ... *)
  let rows = compare_str base {|{"run": {"wall_ms": 70.0}}|} in
  Alcotest.(check (option status)) "faster improves" (Some Regress.Improved)
    (row_status rows "run.wall_ms");
  (* ... and +10% sits inside the default 15% tolerance. *)
  let rows = compare_str base {|{"run": {"wall_ms": 110.0}}|} in
  Alcotest.(check (option status)) "noise tolerated" (Some Regress.Ok_within)
    (row_status rows "run.wall_ms")

let test_throughput_direction () =
  let base = {|{"rate_per_s": 1000.0, "batch_speedup": 4.0}|} in
  let rows = compare_str base {|{"rate_per_s": 700.0, "batch_speedup": 5.2}|} in
  (* Lower throughput is a regression; higher speedup is an improvement. *)
  Alcotest.(check (option status)) "lower throughput regresses" (Some Regress.Regressed)
    (row_status rows "rate_per_s");
  Alcotest.(check (option status)) "higher speedup improves" (Some Regress.Improved)
    (row_status rows "batch_speedup")

let test_exact_metrics_regress_both_ways () =
  let base = {|{"pivots": 100}|} in
  List.iter
    (fun cur ->
      let rows = compare_str base cur in
      Alcotest.(check (option status)) ("deviation regresses: " ^ cur)
        (Some Regress.Regressed) (row_status rows "pivots"))
    [ {|{"pivots": 130}|}; {|{"pivots": 70}|} ];
  let rows = compare_str base {|{"pivots": 110}|} in
  Alcotest.(check (option status)) "within tolerance" (Some Regress.Ok_within)
    (row_status rows "pivots")

let test_tolerance_is_configurable () =
  let base = {|{"wall_ms": 100.0}|} and cur = {|{"wall_ms": 110.0}|} in
  let rows = compare_str ~tolerance_pct:5.0 base cur in
  Alcotest.(check (option status)) "tight tolerance catches +10%" (Some Regress.Regressed)
    (row_status rows "wall_ms");
  let rows = compare_str ~tolerance_pct:20.0 base cur in
  Alcotest.(check (option status)) "loose tolerance passes +10%" (Some Regress.Ok_within)
    (row_status rows "wall_ms")

let test_added_removed_are_informational () =
  let base = {|{"old_counter": 5, "shared_ms": 10.0}|} in
  let cur = {|{"new_counter": 7, "shared_ms": 10.0}|} in
  let rows = compare_str base cur in
  Alcotest.(check (option status)) "removed flagged" (Some Regress.Removed)
    (row_status rows "old_counter");
  Alcotest.(check (option status)) "added flagged" (Some Regress.Added)
    (row_status rows "new_counter");
  (* A renamed counter must not fail the soft gate. *)
  Alcotest.(check int) "not regressions" 0 (List.length (Regress.regressed rows))

let test_machine_facts_ignored () =
  let rows =
    compare_str {|{"domains_available": 8, "wall_ms": 10.0}|}
      {|{"domains_available": 128, "wall_ms": 10.0}|}
  in
  Alcotest.(check (option status)) "domains_available skipped" None
    (row_status rows "domains_available")

let test_array_elements_keyed_by_name () =
  (* Reordering a named array must not shift every other metric. *)
  let base =
    {|{"jobs": [{"name": "a", "wall_ms": 10.0}, {"name": "b", "wall_ms": 50.0}]}|}
  in
  let cur =
    {|{"jobs": [{"name": "b", "wall_ms": 50.0}, {"name": "a", "wall_ms": 10.0}]}|}
  in
  let rows = compare_str base cur in
  Alcotest.(check int) "reorder is invisible" 0 (List.length (Regress.regressed rows));
  List.iter
    (fun (r : Regress.row) ->
      Alcotest.(check status) ("stable: " ^ r.Regress.path) Regress.Ok_within r.Regress.status)
    rows

let test_flatten_paths () =
  let doc = parse {|{"a": {"b": [{"name": "x", "v": 1.5}, 2.0]}, "skip": "text"}|} in
  Alcotest.(check (list (pair string (float 1e-9))))
    "dotted paths, strings skipped"
    [ ("a.b.x.v", 1.5); ("a.b.1", 2.0) ]
    (Regress.flatten doc)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_render_table_mentions_deviations () =
  let rows = compare_str {|{"wall_ms": 100.0, "iters": 7}|} {|{"wall_ms": 200.0, "iters": 7}|} in
  let table = Regress.render_table ~title:"t" rows in
  Alcotest.(check bool) "regressed metric named" true
    (contains ~sub:"wall_ms" table);
  Alcotest.(check bool) "status shown" true
    (contains ~sub:"REGRESSED" table);
  let clean = compare_str {|{"iters": 7}|} {|{"iters": 7}|} in
  Alcotest.(check bool) "clean run says so" true
    (contains ~sub:"within tolerance" (Regress.render_table clean))

let () =
  Alcotest.run "regress"
    [
      ( "compare",
        [
          Alcotest.test_case "identical docs clean" `Quick test_identical_docs_clean;
          Alcotest.test_case "wall-clock direction" `Quick test_wall_clock_direction;
          Alcotest.test_case "throughput direction" `Quick test_throughput_direction;
          Alcotest.test_case "exact metrics" `Quick test_exact_metrics_regress_both_ways;
          Alcotest.test_case "tolerance knob" `Quick test_tolerance_is_configurable;
          Alcotest.test_case "added/removed informational" `Quick
            test_added_removed_are_informational;
          Alcotest.test_case "machine facts ignored" `Quick test_machine_facts_ignored;
          Alcotest.test_case "named array keying" `Quick test_array_elements_keyed_by_name;
        ] );
      ( "render",
        [
          Alcotest.test_case "flatten paths" `Quick test_flatten_paths;
          Alcotest.test_case "table mentions deviations" `Quick
            test_render_table_mentions_deviations;
        ] );
    ]
