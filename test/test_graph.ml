(* Graph substrate: persistent graph, topological utilities, compiled
   CSR view, CSV/DOT I/O. *)

open Tin_testlib

let i_ t q = Interaction.make ~time:t ~qty:q

let test_interaction_validation () =
  Alcotest.check_raises "NaN time" (Invalid_argument "Interaction.make: NaN time") (fun () ->
      ignore (Interaction.make ~time:nan ~qty:1.0));
  Alcotest.check_raises "NaN qty" (Invalid_argument "Interaction.make: NaN quantity") (fun () ->
      ignore (Interaction.make ~time:1.0 ~qty:nan));
  Alcotest.check_raises "negative qty" (Invalid_argument "Interaction.make: negative quantity")
    (fun () -> ignore (Interaction.make ~time:1.0 ~qty:(-1.0)))

let test_interaction_boundaries () =
  (* [make] accepts exactly the CSV loader's domain: finite
     non-negative times and quantities.  Zero is a value, not an
     error. *)
  let z = Interaction.make ~time:0.0 ~qty:0.0 in
  Alcotest.(check (float 0.0)) "zero time ok" 0.0 (Interaction.time z);
  Alcotest.check_raises "negative time" (Invalid_argument "Interaction.make: negative time")
    (fun () -> ignore (Interaction.make ~time:(-1.0) ~qty:1.0));
  Alcotest.check_raises "infinite time" (Invalid_argument "Interaction.make: infinite time")
    (fun () -> ignore (Interaction.make ~time:infinity ~qty:1.0));
  Alcotest.check_raises "infinite qty" (Invalid_argument "Interaction.make: infinite quantity")
    (fun () -> ignore (Interaction.make ~time:1.0 ~qty:infinity))

let test_interaction_unchecked () =
  (* [unchecked] is the synthetic-edge escape hatch: infinities are
     legal (super-source/sink capacities), NaN and negative quantities
     still are not. *)
  let inf_q = Interaction.unchecked ~time:1.0 ~qty:infinity in
  Alcotest.(check bool) "infinite qty allowed" true (Interaction.qty inf_q = infinity);
  let early = Interaction.unchecked ~time:neg_infinity ~qty:1.0 in
  Alcotest.(check bool) "-inf time allowed" true (Interaction.time early = neg_infinity);
  Alcotest.check_raises "NaN time still rejected"
    (Invalid_argument "Interaction.unchecked: NaN time") (fun () ->
      ignore (Interaction.unchecked ~time:nan ~qty:1.0));
  Alcotest.check_raises "negative qty still rejected"
    (Invalid_argument "Interaction.unchecked: negative quantity") (fun () ->
      ignore (Interaction.unchecked ~time:1.0 ~qty:(-1.0)))

let test_interaction_order () =
  let is = Interaction.of_pairs [ (3.0, 1.0); (1.0, 2.0); (2.0, 5.0) ] in
  Alcotest.(check (list (float 0.0))) "sorted by time" [ 1.0; 2.0; 3.0 ]
    (List.map Interaction.time is);
  Alcotest.(check bool) "is_sorted" true (Interaction.is_sorted is);
  Alcotest.(check (float 0.0)) "total" 8.0 (Interaction.total_qty is)

let test_graph_basics () =
  let g = Graph.of_edges [ (0, 1, [ (1.0, 2.0) ]); (1, 2, [ (2.0, 3.0); (0.5, 1.0) ]) ] in
  Alcotest.(check int) "vertices" 3 (Graph.n_vertices g);
  Alcotest.(check int) "edges" 2 (Graph.n_edges g);
  Alcotest.(check int) "interactions" 3 (Graph.n_interactions g);
  Alcotest.(check bool) "mem_edge" true (Graph.mem_edge g ~src:1 ~dst:2);
  Alcotest.(check bool) "no reverse" false (Graph.mem_edge g ~src:2 ~dst:1);
  Alcotest.(check (list int)) "succs" [ 2 ] (Graph.succs g 1);
  Alcotest.(check (list int)) "preds" [ 0 ] (Graph.preds g 1);
  Alcotest.(check int) "out_degree" 1 (Graph.out_degree g 0);
  Alcotest.(check int) "in_degree" 0 (Graph.in_degree g 0);
  Alcotest.(check (list int)) "sources" [ 0 ] (Graph.sources g);
  Alcotest.(check (list int)) "sinks" [ 2 ] (Graph.sinks g);
  Alcotest.check Check.interactions "edge sorted"
    [ i_ 0.5 1.0; i_ 2.0 3.0 ]
    (Graph.edge g ~src:1 ~dst:2)

let test_graph_self_loop_rejected () =
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.add_edge: self-loop") (fun () ->
      ignore (Graph.add_edge Graph.empty ~src:1 ~dst:1 [ i_ 1.0 1.0 ]))

let test_graph_add_edge_merges () =
  let g = Graph.add_edge Graph.empty ~src:0 ~dst:1 [ i_ 2.0 1.0 ] in
  let g = Graph.add_edge g ~src:0 ~dst:1 [ i_ 1.0 5.0 ] in
  Alcotest.(check int) "one edge" 1 (Graph.n_edges g);
  Alcotest.check Check.interactions "merged sorted"
    [ i_ 1.0 5.0; i_ 2.0 1.0 ]
    (Graph.edge g ~src:0 ~dst:1)

let test_graph_persistence () =
  let g0 = Graph.of_edges [ (0, 1, [ (1.0, 1.0) ]) ] in
  let g1 = Graph.remove_edge g0 ~src:0 ~dst:1 in
  Alcotest.(check int) "g0 unchanged" 1 (Graph.n_edges g0);
  Alcotest.(check int) "g1 empty" 0 (Graph.n_edges g1);
  Alcotest.(check int) "vertices remain" 2 (Graph.n_vertices g1)

let test_graph_remove_vertex () =
  let g = Graph.of_edges [ (0, 1, [ (1.0, 1.0) ]); (1, 2, [ (2.0, 1.0) ]); (0, 2, [ (3.0, 1.0) ]) ] in
  let g = Graph.remove_vertex g 1 in
  Alcotest.(check int) "vertices" 2 (Graph.n_vertices g);
  Alcotest.(check int) "edges" 1 (Graph.n_edges g);
  Alcotest.(check bool) "0->2 kept" true (Graph.mem_edge g ~src:0 ~dst:2)

let test_graph_set_edge_empty_removes () =
  let g = Graph.of_edges [ (0, 1, [ (1.0, 1.0) ]) ] in
  let g = Graph.set_edge g ~src:0 ~dst:1 [] in
  Alcotest.(check bool) "removed" false (Graph.mem_edge g ~src:0 ~dst:1);
  Alcotest.(check int) "interactions zero" 0 (Graph.n_interactions g)

let test_interactions_sorted () =
  let g =
    Graph.of_edges [ (0, 1, [ (3.0, 1.0); (1.0, 1.0) ]); (1, 2, [ (2.0, 1.0) ]) ]
  in
  let a = Graph.interactions_sorted g in
  let times = Array.to_list (Array.map (fun (_, _, i) -> Interaction.time i) a) in
  Alcotest.(check (list (float 0.0))) "global order" [ 1.0; 2.0; 3.0 ] times

let test_interactions_sorted_tiebreak () =
  let g = Graph.of_edges [ (5, 1, [ (1.0, 1.0) ]); (0, 9, [ (1.0, 2.0) ]) ] in
  let a = Graph.interactions_sorted g in
  (* Equal quantity? No: ties in time break by qty then src. *)
  Alcotest.(check int) "count" 2 (Array.length a)

let test_topo_sort () =
  let g = Paper_examples.fig3 in
  match Topo.sort g with
  | None -> Alcotest.fail "fig3 is a DAG"
  | Some order ->
      let pos = List.mapi (fun i v -> (v, i)) order in
      let p v = List.assoc v pos in
      Graph.iter_edges (fun a b _ -> Alcotest.(check bool) "edge respects order" true (p a < p b)) g

let test_topo_cycle () =
  let g = Graph.of_edges [ (0, 1, [ (1.0, 1.0) ]); (1, 0, [ (2.0, 1.0) ]) ] in
  Alcotest.(check bool) "not a DAG" false (Topo.is_dag g);
  Alcotest.check_raises "sort_exn raises" (Invalid_argument "Topo.sort_exn: graph has a cycle")
    (fun () -> ignore (Topo.sort_exn g))

let test_topo_reaches () =
  let g = Paper_examples.fig3 in
  Alcotest.(check bool) "s reaches t" true (Topo.reaches g Paper_examples.s Paper_examples.t);
  Alcotest.(check bool) "t does not reach s" false (Topo.reaches g Paper_examples.t Paper_examples.s);
  Alcotest.(check bool) "reflexive" true (Topo.reaches g Paper_examples.s Paper_examples.s)

let test_topo_dagify () =
  let g =
    Graph.of_edges
      [
        (0, 1, [ (1.0, 1.0) ]);
        (1, 2, [ (2.0, 1.0) ]);
        (2, 1, [ (3.0, 1.0) ]);
        (2, 3, [ (4.0, 1.0) ]);
      ]
  in
  let dag = Topo.dagify g ~root:0 in
  Alcotest.(check bool) "acyclic now" true (Topo.is_dag dag);
  Alcotest.(check bool) "still reaches sink" true (Topo.reaches dag 0 3)

let test_topo_restrict () =
  let g = Paper_examples.fig3 in
  let sub = Topo.restrict g ~keep:(fun v -> v <> Paper_examples.y) in
  Alcotest.(check bool) "y gone" false (Graph.mem_vertex sub Paper_examples.y);
  Alcotest.(check int) "edges adjusted" 2 (Graph.n_edges sub)

let test_static_roundtrip () =
  let g = Paper_examples.fig7 in
  let net = Static.of_graph g in
  Alcotest.(check int) "vertices" (Graph.n_vertices g) (Static.n_vertices net);
  Alcotest.(check int) "edges" (Graph.n_edges g) (Static.n_edges net);
  Alcotest.(check int) "interactions" (Graph.n_interactions g) (Static.n_interactions net);
  Alcotest.check Check.graph "roundtrip" g (Static.to_graph net)

let test_static_lookup () =
  let net =
    Static.of_list
      [ (10, 20, [ i_ 1.0 1.0 ]); (20, 30, [ i_ 2.0 2.0 ]); (10, 30, [ i_ 3.0 3.0 ]) ]
  in
  let v10 = Option.get (Static.vertex_of_label net 10) in
  let v20 = Option.get (Static.vertex_of_label net 20) in
  let v30 = Option.get (Static.vertex_of_label net 30) in
  Alcotest.(check int) "out degree" 2 (Static.out_degree net v10);
  Alcotest.(check int) "in degree" 2 (Static.in_degree net v30);
  Alcotest.(check bool) "find_edge hit" true (Static.find_edge net ~src:v10 ~dst:v20 <> None);
  Alcotest.(check bool) "find_edge miss" true (Static.find_edge net ~src:v30 ~dst:v10 = None);
  Alcotest.(check int) "labels roundtrip" 10 (Static.label net v10)

let test_static_merges_duplicates () =
  let net = Static.of_list [ (0, 1, [ i_ 2.0 1.0 ]); (0, 1, [ i_ 1.0 5.0 ]) ] in
  Alcotest.(check int) "one edge" 1 (Static.n_edges net);
  let is = Static.interactions net 0 in
  Alcotest.(check int) "both interactions" 2 (Array.length is);
  Alcotest.(check (float 0.0)) "sorted" 1.0 (Interaction.time is.(0))

let test_static_edges_to_graph_dedups () =
  let net = Static.of_list [ (0, 1, [ i_ 1.0 1.0 ]); (1, 2, [ i_ 2.0 2.0 ]) ] in
  let e01 = Option.get (Static.find_edge net ~src:0 ~dst:1) in
  let g = Static.edges_to_graph net [ e01; e01 ] in
  Alcotest.(check int) "no duplication" 1 (Graph.n_interactions g)

let test_csv_roundtrip () =
  let g = Paper_examples.fig3 in
  let path = Filename.temp_file "tin_test" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Io.save_csv path g;
      let g' = Io.load_csv_graph path in
      Alcotest.check Check.graph "roundtrip" g g')

let test_csv_parse_errors () =
  let path = Filename.temp_file "tin_test" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path (fun oc ->
          output_string oc "src,dst,time,qty\n0,1,abc,2\n");
      match Io.load_csv_graph path with
      | exception Io.Parse_error { line = 2; _ } -> ()
      | exception e -> Alcotest.failf "unexpected exception %s" (Printexc.to_string e)
      | _ -> Alcotest.fail "expected Parse_error")

let test_csv_negative_quantity () =
  let path = Filename.temp_file "tin_test" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path (fun oc -> output_string oc "0,1,5,-2\n");
      match Io.load_csv_graph path with
      | exception Io.Parse_error { line = 1; _ } -> ()
      | exception e -> Alcotest.failf "unexpected exception %s" (Printexc.to_string e)
      | _ -> Alcotest.fail "expected Parse_error")

let test_csv_skips_comments_and_self_loops () =
  let path = Filename.temp_file "tin_test" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path (fun oc ->
          output_string oc "# comment\n\n1,1,5,5\n1,2,1,2\n");
      let g = Io.load_csv_graph path in
      Alcotest.(check int) "self-loop skipped" 1 (Graph.n_interactions g))

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_corrupt_fixture () =
  (* Checked-in regression fixture: NaN quantity on line 3, column 9.
     Under `dune runtest` the cwd is _build/default/test. *)
  let path =
    List.find_opt Sys.file_exists [ "data/corrupt.csv"; "test/data/corrupt.csv" ]
    |> Option.value ~default:"data/corrupt.csv"
  in
  (match Io.load_csv_graph_result path with
  | Ok _ -> Alcotest.fail "corrupt fixture parsed"
  | Error e ->
      Alcotest.(check int) "line" 3 e.Io.line;
      Alcotest.(check int) "column" 9 e.Io.column;
      Alcotest.(check bool) "mentions NaN" true (contains e.Io.message "NaN");
      Alcotest.(check bool)
        "file:line:column diagnostic" true
        (contains (Io.error_to_string e) "corrupt.csv:3:9"));
  match Io.load_csv_graph path with
  | exception Io.Parse_error { line = 3; column = 9; _ } -> ()
  | exception e -> Alcotest.failf "unexpected exception %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "expected Parse_error"

let test_dot_output () =
  let dot = Io.to_dot ~source:Paper_examples.s ~sink:Paper_examples.t Paper_examples.fig3 in
  Alcotest.(check bool) "digraph header" true (contains dot "digraph");
  Alcotest.(check bool) "mentions an edge" true (contains dot "->");
  Alcotest.(check bool) "source highlighted" true (contains dot "palegreen")

let () =
  Alcotest.run "graph"
    [
      ( "interaction",
        [
          Alcotest.test_case "validation" `Quick test_interaction_validation;
          Alcotest.test_case "boundaries" `Quick test_interaction_boundaries;
          Alcotest.test_case "unchecked" `Quick test_interaction_unchecked;
          Alcotest.test_case "ordering" `Quick test_interaction_order;
        ] );
      ( "graph",
        [
          Alcotest.test_case "basics" `Quick test_graph_basics;
          Alcotest.test_case "self-loop rejected" `Quick test_graph_self_loop_rejected;
          Alcotest.test_case "add_edge merges" `Quick test_graph_add_edge_merges;
          Alcotest.test_case "persistence" `Quick test_graph_persistence;
          Alcotest.test_case "remove_vertex" `Quick test_graph_remove_vertex;
          Alcotest.test_case "set_edge empty removes" `Quick test_graph_set_edge_empty_removes;
          Alcotest.test_case "interactions_sorted" `Quick test_interactions_sorted;
          Alcotest.test_case "tie-break determinism" `Quick test_interactions_sorted_tiebreak;
        ] );
      ( "topo",
        [
          Alcotest.test_case "sort" `Quick test_topo_sort;
          Alcotest.test_case "cycle detection" `Quick test_topo_cycle;
          Alcotest.test_case "reaches" `Quick test_topo_reaches;
          Alcotest.test_case "dagify" `Quick test_topo_dagify;
          Alcotest.test_case "restrict" `Quick test_topo_restrict;
        ] );
      ( "static",
        [
          Alcotest.test_case "roundtrip" `Quick test_static_roundtrip;
          Alcotest.test_case "lookups" `Quick test_static_lookup;
          Alcotest.test_case "duplicate merge" `Quick test_static_merges_duplicates;
          Alcotest.test_case "edges_to_graph dedup" `Quick test_static_edges_to_graph_dedups;
        ] );
      ( "io",
        [
          Alcotest.test_case "csv roundtrip" `Quick test_csv_roundtrip;
          Alcotest.test_case "csv parse error" `Quick test_csv_parse_errors;
          Alcotest.test_case "csv negative quantity" `Quick test_csv_negative_quantity;
          Alcotest.test_case "csv comments/self-loops" `Quick test_csv_skips_comments_and_self_loops;
          Alcotest.test_case "csv corrupt fixture" `Quick test_corrupt_fixture;
          Alcotest.test_case "dot output" `Quick test_dot_output;
        ] );
    ]
