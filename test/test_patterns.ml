(* Pattern search (Section 5): the browser, the path tables, and
   GB/PB agreement. *)

open Tin_testlib
module Pattern = Tin_patterns.Pattern
module Tables = Tin_patterns.Tables
module Catalog = Tin_patterns.Catalog
module Fcmp = Tin_util.Fcmp

let i_ t q = Interaction.make ~time:t ~qty:q

(* The Figure 2(a) transaction network (u1..u4 as 1..4). *)
let fig2a_net = Static.of_graph Paper_examples.fig2a

let test_pattern_validation () =
  Alcotest.check_raises "same-label adjacency"
    (Invalid_argument "Pattern.make: same-label vertices cannot be adjacent") (fun () ->
      ignore (Pattern.make ~name:"bad" ~labels:[| 0; 0 |] ~edges:[ (0, 1) ]));
  Alcotest.check_raises "disconnected order"
    (Invalid_argument "Pattern.make: vertex not adjacent to any earlier vertex") (fun () ->
      ignore (Pattern.make ~name:"bad" ~labels:[| 0; 1; 2 |] ~edges:[ (1, 2) ]))

let test_catalog_shapes () =
  List.iter
    (fun r ->
      let p = Catalog.rigid_pattern r in
      Alcotest.(check bool) "source is 0" true (Pattern.source p = 0))
    Catalog.all_rigid;
  Alcotest.(check bool) "P2 cyclic" true (Pattern.is_cyclic_shape (Catalog.rigid_pattern Catalog.P2));
  Alcotest.(check bool) "P1 acyclic" false (Pattern.is_cyclic_shape (Catalog.rigid_pattern Catalog.P1))

let test_browse_p3_on_fig2a () =
  (* Figure 2(b)/(c): the only 3-hop cycle in the Figure 2(a) network
     is u1→u2→u3→u1; as an anchored pattern it is found once per
     rotation (each vertex of the cycle is a candidate "a"). *)
  let p = Catalog.rigid_pattern Catalog.P3 in
  let found = ref [] in
  Pattern.browse fig2a_net p (fun mu -> found := Array.copy mu :: !found);
  let labels mu = Array.to_list (Array.map (Static.label fig2a_net) mu) in
  Alcotest.(check (list (list int)))
    "all three rotations"
    [ [ 1; 2; 3; 1 ]; [ 2; 3; 1; 2 ]; [ 3; 1; 2; 3 ] ]
    (List.sort compare (List.map labels !found));
  (* The paper's Figure 2(c) instance is the one anchored at u1; its
     flow is $5. *)
  let mu1 = List.find (fun mu -> Static.label fig2a_net mu.(0) = 1) !found in
  Check.check_flow "flow anchored at u1 = 5" 5.0 (Pattern.instance_flow fig2a_net p mu1)

let test_browse_p2_on_fig2a () =
  (* 2-hop cycles in fig2a: (1,4) via 1->4,4->1... and (4,1), plus
     nothing else (1<->2? 2->1 missing).  As an anchored pattern each
     anchor counts separately. *)
  let p = Catalog.rigid_pattern Catalog.P2 in
  let found = ref [] in
  Pattern.browse fig2a_net p (fun mu ->
      found := (Static.label fig2a_net mu.(0), Static.label fig2a_net mu.(1)) :: !found);
  Alcotest.(check (list (pair int int))) "anchored both ways" [ (1, 4); (4, 1) ]
    (List.sort compare !found)

let test_browse_respects_distinctness () =
  (* Graph 0->1->0 only; P3 (needs three distinct vertices) must find
     nothing even though 0->1->0->1... walks exist. *)
  let net = Static.of_list [ (0, 1, [ i_ 1.0 1.0 ]); (1, 0, [ i_ 2.0 1.0 ]) ] in
  let p = Catalog.rigid_pattern Catalog.P3 in
  let count = ref 0 in
  Pattern.browse net p (fun _ -> incr count);
  Alcotest.(check int) "no instance" 0 !count

let test_browse_stop () =
  let p = Catalog.rigid_pattern Catalog.P2 in
  let count = ref 0 in
  Pattern.browse fig2a_net p (fun _ ->
      incr count;
      raise Pattern.Stop);
  Alcotest.(check int) "stopped after first" 1 !count

let test_tables_cycles2 () =
  let t = Tables.cycles2 fig2a_net in
  (* 2-cycles: 1->4->1 and 4->1->4. *)
  Alcotest.(check int) "two rows" 2 (Tables.n_rows t);
  let starts = List.map (Static.label fig2a_net) (Tables.starts t) in
  Alcotest.(check (list int)) "starts" [ 1; 4 ] (List.sort compare starts)

let test_tables_cycles3_flow () =
  let t = Tables.cycles3 fig2a_net in
  let row =
    Array.to_list (Tables.rows t)
    |> List.find (fun r ->
           Array.map (Static.label fig2a_net) r.Tables.verts = [| 1; 2; 3 |])
  in
  Alcotest.(check (float 1e-9)) "precomputed flow = 5" 5.0 row.Tables.flow

let test_tables_chains2 () =
  let net = Static.of_list [ (0, 1, [ i_ 1.0 4.0 ]); (1, 2, [ i_ 2.0 9.0 ]) ] in
  let t = Tables.chains2 net in
  Alcotest.(check int) "one chain" 1 (Tables.n_rows t);
  Alcotest.(check (float 1e-9)) "flow min(4,9) with time order" 4.0 (Tables.rows t).(0).Tables.flow;
  Alcotest.(check bool) "memory measured" true (Tables.memory_rows t > 0)

let test_tables_for_start () =
  let t = Tables.cycles2 fig2a_net in
  let v1 = Option.get (Static.vertex_of_label fig2a_net 1) in
  Alcotest.(check int) "one cycle at u1" 1 (Array.length (Tables.for_start t v1))

(* GB/PB agreement on random reciprocal graphs: same instance counts
   and total flows for every catalog pattern. *)
let prop_gb_eq_pb rng =
  let net = Gen.random_static rng in
  let tables = Catalog.precompute ~with_chains:true net in
  List.for_all
    (fun pattern ->
      let a = Catalog.gb net pattern in
      let b = Catalog.pb net tables pattern in
      a.Catalog.instances = b.Catalog.instances
      && Fcmp.approx_eq ~eps:1e-5 a.Catalog.total_flow b.Catalog.total_flow)
    Catalog.all

(* Parallel determinism: on untruncated searches, every job count must
   return exactly the sequential result — same counts, same truncation
   flags, and bit-identical flow totals (the per-anchor accumulators
   merge in a fixed chunk order regardless of jobs). *)
let prop_jobs_deterministic rng =
  let net = Gen.random_static rng in
  let tables = Catalog.precompute ~with_chains:true net in
  let tables3 = Catalog.precompute ~jobs:3 ~with_chains:true net in
  List.for_all
    (fun pattern ->
      let gb1 = Catalog.gb ~jobs:1 net pattern in
      let pb1 = Catalog.pb ~jobs:1 net tables pattern in
      List.for_all
        (fun jobs ->
          Catalog.gb ~jobs net pattern = gb1
          && Catalog.pb ~jobs net tables pattern = pb1
          && Catalog.pb ~jobs net tables3 pattern = pb1)
        [ 2; 3; 7 ])
    Catalog.all

(* Hybrid GB (table-assisted flow lookups) must agree exactly with
   plain GB on the whole catalog — the lookup-eligible patterns read
   the same greedy reduction the tables stored, the rest fall back. *)
let prop_hybrid_gb_eq_plain rng =
  let net = Gen.random_static rng in
  let tables = Catalog.precompute ~with_chains:true net in
  List.for_all
    (fun pattern ->
      let plain = Catalog.gb net pattern in
      let hybrid = Catalog.gb ~tables net pattern in
      plain.Catalog.instances = hybrid.Catalog.instances
      && Fcmp.approx_eq ~eps:1e-6 plain.Catalog.total_flow hybrid.Catalog.total_flow)
    Catalog.all

(* DSL round-trip over random generated patterns: printing and
   re-parsing preserves the structure up to the parser's vertex
   renumbering (first appearance in the printed edge list), and the
   printed form is a fixpoint from then on. *)
let prop_dsl_roundtrip rng =
  let canonical_labels labels =
    let seen = Hashtbl.create 8 in
    Array.map
      (fun l ->
        match Hashtbl.find_opt seen l with
        | Some c -> c
        | None ->
            let c = Hashtbl.length seen in
            Hashtbl.add seen l c;
            c)
      labels
  in
  let p = Gen.random_pattern rng in
  let p2 = Pattern.of_string (Pattern.to_string p) in
  (* Vertex i of [p] becomes [perm.(i)] of [p2]: edges print in stored
     order and the parser numbers vertices by first appearance. *)
  let perm = Array.make p.Pattern.n (-1) in
  let next = ref 0 in
  let visit v = if perm.(v) < 0 then begin perm.(v) <- !next; incr next end in
  List.iter
    (fun (u, v) ->
      visit u;
      visit v)
    p.Pattern.edges;
  let mapped_edges = List.map (fun (u, v) -> (perm.(u), perm.(v))) p.Pattern.edges in
  let mapped_labels = Array.make p.Pattern.n (-1) in
  Array.iteri (fun v l -> mapped_labels.(perm.(v)) <- l) p.Pattern.labels;
  !next = p.Pattern.n
  && p2.Pattern.n = p.Pattern.n
  && p2.Pattern.edges = mapped_edges
  && canonical_labels p2.Pattern.labels = canonical_labels mapped_labels
  && Pattern.sink p2 = perm.(Pattern.sink p)
  && Pattern.is_cyclic_shape p2 = Pattern.is_cyclic_shape p
  && Pattern.to_string (Pattern.of_string (Pattern.to_string p2)) = Pattern.to_string p2

(* Parallel table construction is exactly the sequential one. *)
let prop_parallel_tables rng =
  let net = Gen.random_static rng in
  List.for_all
    (fun build -> List.for_all (fun jobs -> build ~jobs net = build ~jobs:1 net) [ 2; 3; 5 ])
    [
      (fun ~jobs net -> Tables.cycles2 ~jobs net);
      (fun ~jobs net -> Tables.cycles3 ~jobs net);
      (fun ~jobs net -> Tables.chains2 ~jobs net);
    ]

let test_pb_requires_chains () =
  let tables = Catalog.precompute ~with_chains:false fig2a_net in
  Alcotest.check_raises "P1 needs chains"
    (Invalid_argument "Catalog.pb: pattern needs the 2-hop chain table (precompute ~with_chains:true)")
    (fun () -> ignore (Catalog.pb fig2a_net tables (Catalog.Rigid Catalog.P1)))

let test_limit_truncates () =
  let r = Catalog.gb ~limit:1 fig2a_net (Catalog.Rigid Catalog.P2) in
  Alcotest.(check int) "limited" 1 r.Catalog.instances;
  Alcotest.(check bool) "truncated" true r.Catalog.truncated

let test_avg_flow () =
  let r = { Catalog.instances = 4; total_flow = 10.0; truncated = false; timed_out = false } in
  Alcotest.(check (float 1e-9)) "avg" 2.5 (Catalog.avg_flow r);
  let empty = { Catalog.instances = 0; total_flow = 0.0; truncated = false; timed_out = false } in
  Alcotest.(check (float 1e-9)) "empty avg" 0.0 (Catalog.avg_flow empty)

let test_time_budget () =
  (* An (effectively) zero budget forces a timeout on a network large
     enough to exceed one polling interval. *)
  let rng = Tin_util.Prng.create ~seed:5 in
  let net = Gen.random_static ~n:60 ~edges:700 rng in
  let r = Catalog.gb ~time_budget_ms:0.0 net (Catalog.Rigid Catalog.P3) in
  Alcotest.(check bool) "timed out or finished instantly" true
    (r.Catalog.timed_out || r.Catalog.instances >= 0);
  (* A generous budget changes nothing. *)
  let a = Catalog.gb net (Catalog.Rigid Catalog.P2) in
  let b = Catalog.gb ~time_budget_ms:60_000.0 net (Catalog.Rigid Catalog.P2) in
  Alcotest.(check int) "same instances" a.Catalog.instances b.Catalog.instances;
  Alcotest.(check bool) "not flagged" false b.Catalog.timed_out

let test_deadline_overshoot_bounded () =
  (* Regression: the time budget used to be sampled only at
     ticket-grant, so a shard holding tickets could keep solving
     candidates long past the deadline.  The budget is now re-checked
     unmasked before every complete binding invokes the flow function,
     bounding the overshoot to a single candidate step.  An
     artificially slow [flow_of] makes any larger overshoot visible:
     we count the evaluations that {e start} after the deadline. *)
  let module Obs = Tin_obs.Obs in
  let module Timer = Tin_util.Timer in
  let rng = Tin_util.Prng.create ~seed:11 in
  let net = Gen.random_static ~n:40 ~edges:400 rng in
  let p2 = Catalog.rigid_pattern Catalog.P2 in
  (* Premise guard: plenty of candidates beyond what fits the budget. *)
  let total = (Catalog.gb_with net p2 (fun _ -> 1.0)).Catalog.instances in
  Alcotest.(check bool) "enough candidates to overshoot" true (total > 20);
  let budget_ms = 10.0 and step_ms = 2.0 in
  let busy_wait_ms ms =
    let target = Int64.add (Timer.now_ns ()) (Int64.of_float (ms *. 1e6)) in
    while Timer.now_ns () < target do
      ignore (Sys.opaque_identity 0)
    done
  in
  Obs.reset ();
  Obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
    (fun () ->
      let started_late = ref 0 in
      let deadline =
        Int64.add (Timer.now_ns ()) (Int64.of_float (budget_ms *. 1e6))
      in
      let slow_flow _mu =
        if Timer.now_ns () > deadline then incr started_late;
        busy_wait_ms step_ms;
        1.0
      in
      let r = Catalog.gb_with ~jobs:1 ~time_budget_ms:budget_ms net p2 slow_flow in
      Alcotest.(check bool) "budget expired" true r.Catalog.timed_out;
      Alcotest.(check bool) "truncated" true r.Catalog.truncated;
      Alcotest.(check bool) "left candidates unevaluated" true (r.Catalog.instances < total);
      (* Overshoot is bounded by one in-flight candidate step (plus one
         for clock skew between our deadline estimate and the
         search's), not by a whole shard of candidates. *)
      Alcotest.(check bool)
        (Printf.sprintf "at most one candidate starts late (saw %d)" !started_late)
        true (!started_late <= 2);
      Alcotest.(check (option int)) "deadline hit counted once" (Some 1)
        (List.assoc_opt "catalog.deadline_hits" (Obs.counters ())))

let test_pattern_dsl () =
  (* The DSL expresses the whole rigid catalog. *)
  let check_equiv text rigid =
    let parsed = Pattern.of_string text in
    let builtin = Catalog.rigid_pattern rigid in
    let a = Catalog.gb_custom fig2a_net parsed in
    let b = Catalog.gb fig2a_net (Catalog.Rigid rigid) in
    Alcotest.(check int) (text ^ " count") b.Catalog.instances a.Catalog.instances;
    Alcotest.(check (float 1e-9)) (text ^ " flow") b.Catalog.total_flow a.Catalog.total_flow;
    Alcotest.(check bool) (text ^ " cyclic shape") (Pattern.is_cyclic_shape builtin)
      (Pattern.is_cyclic_shape parsed)
  in
  check_equiv "a->b, b->c" Catalog.P1;
  check_equiv "a->b, b->a'" Catalog.P2;
  check_equiv "a->b, b->c, c->a'" Catalog.P3;
  check_equiv "a->b, b->c, c->a', b->a'" Catalog.P4;
  check_equiv "a->b, b->a', a->c, c->e, e->a'" Catalog.P5;
  check_equiv "a->b, b->c, c->a', a->c, b->a'" Catalog.P6

let test_pattern_dsl_roundtrip () =
  List.iter
    (fun text ->
      let p = Pattern.of_string text in
      let p2 = Pattern.of_string (Pattern.to_string p) in
      Alcotest.(check string) "stable" (Pattern.to_string p) (Pattern.to_string p2))
    [ "a->b, b->a'"; "a->b, b->c, c->a', a->c, b->a'"; "x->y_2, y_2->z" ]

let test_pattern_dsl_errors () =
  let expect_invalid text =
    match Pattern.of_string text with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "expected failure for %S" text
  in
  expect_invalid "";
  expect_invalid "a";
  expect_invalid "a->";
  expect_invalid "a->a";
  (* cycle over pattern vertices *)
  expect_invalid "a->b, b->a";
  (* disconnected enumeration order *)
  expect_invalid "a->b, c->d";
  expect_invalid "'->b"

let test_gb_custom_diamond () =
  (* A pattern outside the catalog: the diamond a->b->d, a->c->d.  On
     a hand-built net with one instance the flow is the sum of the two
     disjoint branch bottlenecks. *)
  let net =
    Static.of_list
      [
        (0, 1, [ i_ 1.0 5.0 ]);
        (1, 3, [ i_ 2.0 2.0 ]);
        (0, 2, [ i_ 1.0 5.0 ]);
        (2, 3, [ i_ 2.0 4.0 ]);
      ]
  in
  let p = Pattern.of_string "a->b, b->d, a->c, c->d" in
  Alcotest.(check bool) "acyclic shape" false (Pattern.is_cyclic_shape p);
  Alcotest.(check int) "sink is d" 2 (Pattern.sink p);
  let r = Catalog.gb_custom net p in
  (* Two instances: (b,c) = (1,2) and (2,1). *)
  Alcotest.(check int) "two symmetric instances" 2 r.Catalog.instances;
  Alcotest.(check (float 1e-9)) "flow both times" 12.0 r.Catalog.total_flow

let test_relaxed_rp2_semantics () =
  (* Two parallel 2-cycles at vertex 0: one relaxed instance whose
     flow is the sum of both cycles' flows. *)
  let net =
    Static.of_list
      [
        (0, 1, [ i_ 1.0 5.0 ]);
        (1, 0, [ i_ 2.0 3.0 ]);
        (0, 2, [ i_ 3.0 4.0 ]);
        (2, 0, [ i_ 4.0 4.0 ]);
        (* a stray edge that is no cycle *)
        (0, 3, [ i_ 5.0 9.0 ]);
      ]
  in
  let r = Catalog.gb net (Catalog.Relaxed Catalog.RP2) in
  (* anchors: 0 (two cycles), 1 (cycle 1->0->1), 2 (cycle 2->0->2) *)
  Alcotest.(check int) "three anchors" 3 r.Catalog.instances;
  let tables = Catalog.precompute net in
  let pb = Catalog.pb net tables (Catalog.Relaxed Catalog.RP2) in
  Alcotest.(check int) "pb agrees" r.Catalog.instances pb.Catalog.instances;
  Alcotest.(check (float 1e-9)) "pb flow agrees" r.Catalog.total_flow pb.Catalog.total_flow

let test_p5_flower_flow_adds () =
  (* One 2-cycle and one 3-cycle sharing anchor 0, disjoint
     intermediates: P5 flow = sum of both cycle flows. *)
  let net =
    Static.of_list
      [
        (0, 1, [ i_ 1.0 5.0 ]);
        (1, 0, [ i_ 2.0 3.0 ]);
        (0, 2, [ i_ 1.0 6.0 ]);
        (2, 3, [ i_ 2.0 4.0 ]);
        (3, 0, [ i_ 3.0 4.0 ]);
      ]
  in
  let gb = Catalog.gb net (Catalog.Rigid Catalog.P5) in
  Alcotest.(check int) "one flower" 1 gb.Catalog.instances;
  Check.check_flow "flow = 3 + 4" 7.0 gb.Catalog.total_flow;
  let tables = Catalog.precompute net in
  let pb = Catalog.pb net tables (Catalog.Rigid Catalog.P5) in
  Alcotest.(check int) "pb count" 1 pb.Catalog.instances;
  Check.check_flow "pb flow" 7.0 pb.Catalog.total_flow

let test_p6_needs_lp () =
  (* Build the Figure-3 shape as a cyclic pattern instance: cycle
     a->y->z->a plus chords a->z and y->a.  After splitting a it is
     exactly Figure 3, so the maximum flow is 5 while greedy gives 1. *)
  let net =
    Static.of_list
      [
        (0, 1, [ i_ 1.0 5.0 ]);
        (* a->y *)
        (1, 2, [ i_ 3.0 5.0 ]);
        (* y->z *)
        (2, 0, [ i_ 5.0 1.0 ]);
        (* z->a *)
        (0, 2, [ i_ 2.0 3.0 ]);
        (* a->z chord *)
        (1, 0, [ i_ 4.0 4.0 ]);
        (* y->a chord *)
      ]
  in
  let gb = Catalog.gb net (Catalog.Rigid Catalog.P6) in
  Alcotest.(check int) "one instance" 1 gb.Catalog.instances;
  Check.check_flow "maximum (not greedy) flow" 5.0 gb.Catalog.total_flow;
  let tables = Catalog.precompute net in
  let pb = Catalog.pb net tables (Catalog.Rigid Catalog.P6) in
  Check.check_flow "pb agrees" 5.0 pb.Catalog.total_flow

let () =
  Alcotest.run "patterns"
    [
      ( "pattern",
        [
          Alcotest.test_case "validation" `Quick test_pattern_validation;
          Alcotest.test_case "catalog shapes" `Quick test_catalog_shapes;
        ] );
      ( "browse",
        [
          Alcotest.test_case "P3 on figure 2" `Quick test_browse_p3_on_fig2a;
          Alcotest.test_case "P2 on figure 2" `Quick test_browse_p2_on_fig2a;
          Alcotest.test_case "distinctness" `Quick test_browse_respects_distinctness;
          Alcotest.test_case "early stop" `Quick test_browse_stop;
        ] );
      ( "tables",
        [
          Alcotest.test_case "cycles2" `Quick test_tables_cycles2;
          Alcotest.test_case "cycles3 flow" `Quick test_tables_cycles3_flow;
          Alcotest.test_case "chains2" `Quick test_tables_chains2;
          Alcotest.test_case "for_start" `Quick test_tables_for_start;
        ] );
      ( "gb-vs-pb",
        [
          Check.seeded_property ~count:60 "GB = PB on all patterns" prop_gb_eq_pb;
          Check.seeded_property ~count:20 "jobs=N = jobs=1 exactly" prop_jobs_deterministic;
          Check.seeded_property ~count:40 "hybrid GB = plain GB" prop_hybrid_gb_eq_plain;
          Check.seeded_property ~count:200 "DSL roundtrip on random patterns" prop_dsl_roundtrip;
          Check.seeded_property ~count:30 "parallel tables = sequential" prop_parallel_tables;
          Alcotest.test_case "PB needs chains" `Quick test_pb_requires_chains;
          Alcotest.test_case "limit truncates" `Quick test_limit_truncates;
          Alcotest.test_case "avg flow" `Quick test_avg_flow;
          Alcotest.test_case "time budget" `Quick test_time_budget;
          Alcotest.test_case "deadline overshoot bounded" `Quick test_deadline_overshoot_bounded;
          Alcotest.test_case "pattern DSL" `Quick test_pattern_dsl;
          Alcotest.test_case "DSL roundtrip" `Quick test_pattern_dsl_roundtrip;
          Alcotest.test_case "DSL errors" `Quick test_pattern_dsl_errors;
          Alcotest.test_case "custom diamond" `Quick test_gb_custom_diamond;
          Alcotest.test_case "RP2 semantics" `Quick test_relaxed_rp2_semantics;
          Alcotest.test_case "P5 flower adds" `Quick test_p5_flower_flow_adds;
          Alcotest.test_case "P6 needs LP" `Quick test_p6_needs_lp;
        ] );
    ]
