(* DAG preprocessing (Algorithm 1): paper traces, cascades, and
   flow preservation. *)

open Tin_testlib
module Preprocess = Tin_core.Preprocess
module Pipeline = Tin_core.Pipeline
module P = Paper_examples

let test_fig6_g1 () =
  let r = Preprocess.run P.fig6_g1 ~source:P.s ~sink:P.t in
  Alcotest.check Check.graph "matches Figure 6(b)" P.fig6_g1_expected r.Preprocess.graph;
  Alcotest.(check bool) "not zero flow" false r.Preprocess.zero_flow;
  Alcotest.(check int) "4 interactions removed" 4 r.Preprocess.removed_interactions;
  Alcotest.(check int) "no edges removed" 0 r.Preprocess.removed_edges;
  Alcotest.(check int) "no vertices removed" 0 r.Preprocess.removed_vertices

let test_fig6_g2 () =
  let r = Preprocess.run P.fig6_g2 ~source:P.s ~sink:P.t in
  Alcotest.check Check.graph "matches Figure 6(d)" P.fig6_g2_expected r.Preprocess.graph;
  Alcotest.(check bool) "not zero flow" false r.Preprocess.zero_flow;
  Alcotest.(check int) "x and y removed" 2 r.Preprocess.removed_vertices

let test_fig1a_interaction_removal () =
  (* (2,$3) on (z,t) is impossible: z receives nothing before time 5. *)
  let r = Preprocess.run P.fig1a ~source:P.s ~sink:P.t in
  Alcotest.check Check.interactions "z->t loses (2,3)"
    (Interaction.of_pairs [ (10.0, 1.0) ])
    (Graph.edge r.Preprocess.graph ~src:P.z ~dst:P.t)

let test_input_untouched () =
  let before = Graph.n_interactions P.fig6_g1 in
  ignore (Preprocess.run P.fig6_g1 ~source:P.s ~sink:P.t);
  Alcotest.(check int) "persistent input" before (Graph.n_interactions P.fig6_g1)

let test_zero_flow_detection () =
  (* Everything into the sink happens before anything leaves the
     source: all interior interactions die, flow is provably 0. *)
  let g =
    Graph.of_edges [ (0, 1, [ (10.0, 5.0) ]); (1, 2, [ (1.0, 5.0) ]) ]
  in
  let r = Preprocess.run g ~source:0 ~sink:2 in
  Alcotest.(check bool) "zero flow" true r.Preprocess.zero_flow

let test_upstream_cascade () =
  (* 0 -> 1 -> 2 -> 3 and 1 -> 3; killing 2's only outgoing interaction
     deletes vertex 2 and its incoming edge, but 1 still reaches 3. *)
  let g =
    Graph.of_edges
      [
        (0, 1, [ (1.0, 5.0) ]);
        (1, 2, [ (2.0, 5.0) ]);
        (2, 3, [ (1.5, 5.0) ]);
        (1, 3, [ (3.0, 2.0) ]);
      ]
  in
  let r = Preprocess.run g ~source:0 ~sink:3 in
  Alcotest.(check bool) "vertex 2 gone" false (Graph.mem_vertex r.Preprocess.graph 2);
  Alcotest.(check bool) "still has flow" false r.Preprocess.zero_flow;
  Alcotest.(check (float 1e-9)) "flow preserved" 2.0
    (Pipeline.max_flow r.Preprocess.graph ~source:0 ~sink:3)

let test_upstream_cascade_to_source () =
  (* The cascade may propagate all the way to the source. *)
  let g = Graph.of_edges [ (0, 1, [ (5.0, 5.0) ]); (1, 2, [ (1.0, 5.0) ]) ] in
  let r = Preprocess.run g ~source:0 ~sink:2 in
  Alcotest.(check bool) "zero flow" true r.Preprocess.zero_flow

let test_no_incoming_interior () =
  (* An interior vertex with no incoming edges contributes nothing. *)
  let g =
    Graph.of_edges
      [ (0, 2, [ (1.0, 5.0) ]); (1, 2, [ (2.0, 7.0) ]); (2, 3, [ (3.0, 9.0) ]) ]
  in
  let r = Preprocess.run g ~source:0 ~sink:3 in
  Alcotest.(check bool) "vertex 1 deleted" false (Graph.mem_vertex r.Preprocess.graph 1);
  Alcotest.(check (float 1e-9)) "flow preserved" 5.0
    (Pipeline.max_flow r.Preprocess.graph ~source:0 ~sink:3)

let test_cyclic_rejected () =
  let g = Graph.of_edges [ (0, 1, [ (1.0, 1.0) ]); (1, 0, [ (2.0, 1.0) ]) ] in
  Alcotest.check_raises "cycle" (Invalid_argument "Topo.sort_exn: graph has a cycle") (fun () ->
      ignore (Preprocess.run g ~source:0 ~sink:1))

let test_source_eq_sink_rejected () =
  Alcotest.check_raises "source=sink" (Invalid_argument "Preprocess.run: source = sink")
    (fun () -> ignore (Preprocess.run P.fig3 ~source:P.s ~sink:P.s))

let test_already_clean () =
  let r = Preprocess.run P.fig3 ~source:P.s ~sink:P.t in
  Alcotest.check Check.graph "nothing to remove" P.fig3 r.Preprocess.graph;
  Alcotest.(check int) "zero removed" 0 r.Preprocess.removed_interactions

let () =
  Alcotest.run "preprocess"
    [
      ( "paper-traces",
        [
          Alcotest.test_case "figure 6 G1" `Quick test_fig6_g1;
          Alcotest.test_case "figure 6 G2" `Quick test_fig6_g2;
          Alcotest.test_case "figure 1(a) interaction" `Quick test_fig1a_interaction_removal;
        ] );
      ( "mechanics",
        [
          Alcotest.test_case "input untouched" `Quick test_input_untouched;
          Alcotest.test_case "zero-flow detection" `Quick test_zero_flow_detection;
          Alcotest.test_case "upstream cascade" `Quick test_upstream_cascade;
          Alcotest.test_case "cascade to source" `Quick test_upstream_cascade_to_source;
          Alcotest.test_case "no-incoming interior" `Quick test_no_incoming_interior;
          Alcotest.test_case "cycle rejected" `Quick test_cyclic_rejected;
          Alcotest.test_case "source=sink rejected" `Quick test_source_eq_sink_rejected;
          Alcotest.test_case "already clean" `Quick test_already_clean;
        ] );
    ]
