(* Utility substrate: PRNG determinism and distributions, statistics,
   table rendering, float comparison. *)

module Prng = Tin_util.Prng
module Stats = Tin_util.Stats
module Table = Tin_util.Table
module Fcmp = Tin_util.Fcmp

let test_prng_determinism () =
  let a = Prng.create ~seed:42 and b = Prng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.int64 a) (Prng.int64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  let xs = List.init 8 (fun _ -> Prng.int64 a) in
  let ys = List.init 8 (fun _ -> Prng.int64 b) in
  Alcotest.(check bool) "different streams" false (xs = ys)

let test_prng_copy_replays () =
  let a = Prng.create ~seed:7 in
  ignore (Prng.int64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy replays" (Prng.int64 a) (Prng.int64 b)

let test_prng_split_independent () =
  let a = Prng.create ~seed:7 in
  let b = Prng.split a in
  Alcotest.(check bool) "split stream differs" false (Prng.int64 a = Prng.int64 b)

let test_prng_int_bounds () =
  let rng = Prng.create ~seed:3 in
  for _ = 1 to 1000 do
    let v = Prng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done;
  Alcotest.check_raises "bound must be positive"
    (Invalid_argument "Prng.int: bound must be positive") (fun () -> ignore (Prng.int rng 0))

let test_prng_uniform_range () =
  let rng = Prng.create ~seed:4 in
  for _ = 1 to 1000 do
    let u = Prng.uniform rng in
    Alcotest.(check bool) "in [0,1)" true (u >= 0.0 && u < 1.0)
  done

let test_prng_uniform_mean () =
  let rng = Prng.create ~seed:5 in
  let n = 20_000 in
  let total = ref 0.0 in
  for _ = 1 to n do
    total := !total +. Prng.uniform rng
  done;
  let mean = !total /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.02)

let test_prng_exponential_mean () =
  let rng = Prng.create ~seed:6 in
  let n = 20_000 in
  let total = ref 0.0 in
  for _ = 1 to n do
    total := !total +. Prng.exponential rng ~mean:3.0
  done;
  let mean = !total /. float_of_int n in
  Alcotest.(check bool) "mean near 3" true (Float.abs (mean -. 3.0) < 0.15)

let test_prng_zipf_skew () =
  let rng = Prng.create ~seed:8 in
  let counts = Array.make 100 0 in
  for _ = 1 to 20_000 do
    let k = Prng.zipf rng ~n:100 ~s:1.2 in
    Alcotest.(check bool) "in range" true (k >= 0 && k < 100);
    counts.(k) <- counts.(k) + 1
  done;
  Alcotest.(check bool) "rank 0 much hotter than rank 50" true (counts.(0) > 10 * counts.(50))

let test_prng_zipf_uniform_when_flat () =
  let rng = Prng.create ~seed:9 in
  for _ = 1 to 100 do
    let k = Prng.zipf rng ~n:10 ~s:0.0 in
    Alcotest.(check bool) "in range" true (k >= 0 && k < 10)
  done

let test_prng_shuffle_permutes () =
  let rng = Prng.create ~seed:10 in
  let a = Array.init 50 Fun.id in
  Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 Fun.id) sorted;
  Alcotest.(check bool) "actually moved" true (a <> Array.init 50 Fun.id)

let test_stats_summary () =
  let s = Stats.summarize [ 1.0; 2.0; 3.0; 4.0 ] in
  Alcotest.(check int) "count" 4 s.Stats.count;
  Alcotest.(check (float 1e-9)) "mean" 2.5 s.Stats.mean;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.Stats.min;
  Alcotest.(check (float 1e-9)) "max" 4.0 s.Stats.max;
  Alcotest.(check (float 1e-9)) "total" 10.0 s.Stats.total;
  Alcotest.(check (float 1e-6)) "stddev" 1.2909944487 s.Stats.stddev

let test_stats_empty () =
  let s = Stats.summarize [] in
  Alcotest.(check int) "count" 0 s.Stats.count;
  Alcotest.(check (float 0.0)) "mean" 0.0 s.Stats.mean

let test_stats_percentile () =
  let xs = [ 10.0; 20.0; 30.0; 40.0 ] in
  Alcotest.(check (float 1e-9)) "median" 25.0 (Stats.median xs);
  Alcotest.(check (float 1e-9)) "p0" 10.0 (Stats.percentile 0.0 xs);
  Alcotest.(check (float 1e-9)) "p100" 40.0 (Stats.percentile 100.0 xs);
  (* The empty sample never raises: an idle aggregation window must
     not crash the reporter. *)
  Alcotest.(check bool) "empty percentile is nan" true (Float.is_nan (Stats.percentile 50.0 []));
  Alcotest.(check bool) "empty median is nan" true (Float.is_nan (Stats.median []));
  Alcotest.check_raises "out-of-range p still raises"
    (Invalid_argument "Stats.percentile: p out of range") (fun () ->
      ignore (Stats.percentile 101.0 [ 1.0 ]))

let test_stats_acc_merge () =
  let a = Stats.Acc.create () and b = Stats.Acc.create () in
  let xs = List.init 37 (fun i -> float_of_int i /. 3.0) in
  let ys = List.init 53 (fun i -> float_of_int (i * i) /. 11.0) in
  List.iter (Stats.Acc.add a) xs;
  List.iter (Stats.Acc.add b) ys;
  Stats.Acc.merge_into ~into:a b;
  let merged = Stats.Acc.summary a and whole = Stats.summarize (xs @ ys) in
  Alcotest.(check int) "count" whole.Stats.count merged.Stats.count;
  Alcotest.(check (float 1e-9)) "mean" whole.Stats.mean merged.Stats.mean;
  Alcotest.(check (float 1e-6)) "stddev" whole.Stats.stddev merged.Stats.stddev;
  Alcotest.(check (float 1e-9)) "min" whole.Stats.min merged.Stats.min;
  Alcotest.(check (float 1e-9)) "max" whole.Stats.max merged.Stats.max;
  (* Merging an empty accumulator is the identity, in both directions. *)
  let before = Stats.Acc.summary a in
  Stats.Acc.merge_into ~into:a (Stats.Acc.create ());
  Alcotest.(check int) "merge empty keeps count" before.Stats.count (Stats.Acc.count a);
  let fresh = Stats.Acc.create () in
  Stats.Acc.merge_into ~into:fresh a;
  Alcotest.(check (float 1e-9)) "merge into empty" before.Stats.mean (Stats.Acc.mean fresh)

let prop_percentile_total =
  QCheck.Test.make ~count:300 ~name:"percentile never raises, nan iff empty"
    QCheck.(pair (float_bound_inclusive 100.0) (small_list (float_range (-1e6) 1e6)))
    (fun (p, xs) ->
      let v = Stats.percentile p xs in
      if xs = [] then Float.is_nan v
      else
        (* Within the sample's range, and monotone in p. *)
        let lo = List.fold_left Float.min Float.infinity xs in
        let hi = List.fold_left Float.max Float.neg_infinity xs in
        v >= lo && v <= hi
        && Stats.percentile 0.0 xs <= v
        && v <= Stats.percentile 100.0 xs)

let test_stats_acc_matches_summarize () =
  let xs = List.init 100 (fun i -> float_of_int (i * i) /. 7.0) in
  let acc = Stats.Acc.create () in
  List.iter (Stats.Acc.add acc) xs;
  let a = Stats.Acc.summary acc and b = Stats.summarize xs in
  Alcotest.(check (float 1e-9)) "mean" b.Stats.mean a.Stats.mean;
  Alcotest.(check (float 1e-6)) "stddev" b.Stats.stddev a.Stats.stddev

let test_table_render () =
  let s =
    Table.render ~title:"T" ~header:[ "name"; "value" ] [ [ "a"; "1" ]; [ "bb"; "22" ] ]
  in
  Alcotest.(check bool) "has title" true (String.length s > 0 && s.[0] = 'T');
  Alcotest.(check bool) "has borders" true (String.contains s '+');
  (* Rows align: every line has the same length. *)
  let lines = String.split_on_char '\n' (String.trim s) in
  (match lines with
  | _ :: first :: rest ->
      List.iter
        (fun l -> Alcotest.(check int) "aligned" (String.length first) (String.length l))
        rest
  | _ -> Alcotest.fail "expected several lines")

let test_table_missing_cells () =
  let s = Table.render ~header:[ "a"; "b"; "c" ] [ [ "x" ] ] in
  Alcotest.(check bool) "renders" true (String.length s > 0)

let test_fmt_ms () =
  Alcotest.(check string) "micro" "50 \xc2\xb5s" (Table.fmt_ms 0.05);
  Alcotest.(check string) "milli" "5.775 ms" (Table.fmt_ms 5.775);
  Alcotest.(check string) "seconds" "23.2 s" (Table.fmt_ms 23_200.0)

let test_fmt_count () =
  Alcotest.(check string) "plain" "137" (Table.fmt_count 137.0);
  Alcotest.(check string) "kilo" "48.7K" (Table.fmt_count 48_700.0);
  Alcotest.(check string) "giga" "22.3G" (Table.fmt_count 22_300_000_000.0)

let test_fcmp () =
  Alcotest.(check bool) "eq" true (Fcmp.approx_eq 1.0 (1.0 +. 1e-9));
  Alcotest.(check bool) "neq" false (Fcmp.approx_eq 1.0 1.1);
  Alcotest.(check bool) "inf eq" true (Fcmp.approx_eq infinity infinity);
  Alcotest.(check bool) "relative at scale" true (Fcmp.approx_eq 1e12 (1e12 +. 1.0));
  Alcotest.(check bool) "le" true (Fcmp.approx_le 1.0000001 1.0);
  Alcotest.(check bool) "zero" true (Fcmp.is_zero 1e-9);
  Alcotest.(check (float 0.0)) "clamp" 3.0 (Fcmp.clamp ~lo:0.0 ~hi:3.0 7.0)

let test_timer_measures () =
  let _, ms = Tin_util.Timer.time_ms (fun () -> Sys.opaque_identity (Array.make 1000 0)) in
  Alcotest.(check bool) "non-negative" true (ms >= 0.0);
  let per = Tin_util.Timer.repeat_ms ~min_runs:2 ~min_time_ms:1.0 (fun () -> ()) in
  Alcotest.(check bool) "repeat positive" true (per >= 0.0)

let () =
  Alcotest.run "util"
    [
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_prng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "copy replays" `Quick test_prng_copy_replays;
          Alcotest.test_case "split independence" `Quick test_prng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "uniform range" `Quick test_prng_uniform_range;
          Alcotest.test_case "uniform mean" `Quick test_prng_uniform_mean;
          Alcotest.test_case "exponential mean" `Quick test_prng_exponential_mean;
          Alcotest.test_case "zipf skew" `Quick test_prng_zipf_skew;
          Alcotest.test_case "zipf flat" `Quick test_prng_zipf_uniform_when_flat;
          Alcotest.test_case "shuffle permutes" `Quick test_prng_shuffle_permutes;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summary" `Quick test_stats_summary;
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "acc matches" `Quick test_stats_acc_matches_summarize;
          Alcotest.test_case "acc merge" `Quick test_stats_acc_merge;
          QCheck_alcotest.to_alcotest prop_percentile_total;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "missing cells" `Quick test_table_missing_cells;
          Alcotest.test_case "fmt_ms" `Quick test_fmt_ms;
          Alcotest.test_case "fmt_count" `Quick test_fmt_count;
        ] );
      ( "fcmp-timer",
        [
          Alcotest.test_case "fcmp" `Quick test_fcmp;
          Alcotest.test_case "timer" `Quick test_timer_measures;
        ] );
    ]
