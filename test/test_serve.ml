(* The streaming ingestion daemon behind [tinflow serve]: the
   incremental HTTP request parser's chunk-boundary cases, the ingest
   JSON-lines decoder, and the daemon's two exactness contracts —
   windowed flow equal to a batch greedy recomputation after every
   chunk, and delta-maintained tables equal to a from-scratch
   precomputation after every tick. *)

open Tin_testlib
module Serve = Tin_obs.Serve
module Request = Tin_obs.Serve.Request
module Daemon = Tin_daemon.Daemon
module Ingest = Tin_daemon.Ingest
module Greedy = Tin_core.Greedy
module Window = Tin_core.Window
module Catalog = Tin_patterns.Catalog
module Tables = Tin_patterns.Tables
module Delta = Tin_patterns.Delta
module Prng = Tin_util.Prng

(* --- request parser ------------------------------------------------ *)

let feed_all p chunks =
  List.fold_left
    (fun acc chunk ->
      match acc with
      | `More -> Request.feed p chunk
      | terminal -> terminal)
    `More chunks

let check_done msg result ~meth ~target ~body =
  match result with
  | `Done r ->
      Alcotest.(check string) (msg ^ ": method") meth r.Request.meth;
      Alcotest.(check string) (msg ^ ": target") target r.Request.target;
      Alcotest.(check string) (msg ^ ": body") body r.Request.body
  | `More -> Alcotest.fail (msg ^ ": incomplete")
  | `Head_too_large -> Alcotest.fail (msg ^ ": head too large")
  | `Body_too_large -> Alcotest.fail (msg ^ ": body too large")
  | `Malformed -> Alcotest.fail (msg ^ ": malformed")

let test_parser_single_chunk () =
  check_done "one chunk"
    (feed_all (Request.parser ()) [ "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n" ])
    ~meth:"GET" ~target:"/metrics" ~body:""

(* The quadratic-rescan bug showed at chunk boundaries: the terminator
   arriving split across two reads.  Split the request at every byte
   position — all four \r\n\r\n split points included — and demand the
   identical parse. *)
let test_parser_every_split () =
  let raw = "GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n" in
  for cut = 1 to String.length raw - 1 do
    let a = String.sub raw 0 cut in
    let b = String.sub raw cut (String.length raw - cut) in
    check_done
      (Printf.sprintf "split at %d" cut)
      (feed_all (Request.parser ()) [ a; b ])
      ~meth:"GET" ~target:"/metrics" ~body:""
  done

let test_parser_byte_at_a_time () =
  let raw = "POST /ingest HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello" in
  let chunks = List.init (String.length raw) (fun i -> String.make 1 raw.[i]) in
  check_done "byte at a time" (feed_all (Request.parser ()) chunks) ~meth:"POST"
    ~target:"/ingest" ~body:"hello"

let test_parser_body_split () =
  check_done "body across chunks"
    (feed_all (Request.parser ())
       [ "POST /ingest HTTP/1.1\r\nContent-Length: 11\r\n\r\nhel"; "lo wo"; "rld" ])
    ~meth:"POST" ~target:"/ingest" ~body:"hello world"

let test_parser_bare_lf () =
  check_done "bare LF terminator"
    (feed_all (Request.parser ()) [ "GET /healthz HTTP/1.1\nHost: x\n\n" ])
    ~meth:"GET" ~target:"/healthz" ~body:""

let test_parser_head_too_large () =
  let p = Request.parser ~max_head:32 () in
  let rec pump n acc =
    if n = 0 then acc else pump (n - 1) (Request.feed p "GET /aaaaaaaaaaaaaaaa")
  in
  Alcotest.(check bool) "head overflow detected" true (pump 4 `More = `Head_too_large)

let test_parser_body_too_large () =
  let p = Request.parser ~max_body:8 () in
  let r = Request.feed p "POST /ingest HTTP/1.1\r\nContent-Length: 9\r\n\r\n" in
  Alcotest.(check bool) "declared body over limit" true (r = `Body_too_large)

let test_parser_malformed () =
  Alcotest.(check bool) "garbage request line" true
    (Request.feed (Request.parser ()) "\r\n\r\n" = `Malformed)

(* --- ingest decoding ----------------------------------------------- *)

let test_ingest_parse_line () =
  match Ingest.parse_line {|{"src": 3, "dst": 7, "time": 12.5, "qty": 250}|} with
  | Error e -> Alcotest.fail e
  | Ok e ->
      Alcotest.(check int) "src" 3 e.Ingest.src;
      Alcotest.(check int) "dst" 7 e.Ingest.dst;
      Alcotest.(check (float 1e-9)) "time" 12.5 (Interaction.time e.Ingest.inter);
      Alcotest.(check (float 1e-9)) "qty" 250.0 (Interaction.qty e.Ingest.inter)

let check_error msg needle = function
  | Ok _ -> Alcotest.fail (msg ^ ": expected an error")
  | Error e ->
      let contains hay needle =
        let rec go i =
          i + String.length needle <= String.length hay
          && (String.sub hay i (String.length needle) = needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) (msg ^ ": error mentions " ^ needle) true (contains e needle)

let test_ingest_errors () =
  check_error "missing qty" "qty" (Ingest.parse_line {|{"src":1,"dst":2,"time":3}|});
  check_error "fractional vertex" "src" (Ingest.parse_line {|{"src":1.5,"dst":2,"time":3,"qty":4}|});
  check_error "not an object" "object" (Ingest.parse_line {|[1,2,3]|});
  check_error "negative qty rejected like the CSV loader" "negative quantity"
    (Ingest.parse_line {|{"src":1,"dst":2,"time":3,"qty":-4}|});
  check_error "line number on the bad line" "line 3"
    (Ingest.parse_body "{\"src\":1,\"dst\":2,\"time\":3,\"qty\":4}\n\nnot json\n")

let test_ingest_body_blank_lines () =
  match Ingest.parse_body "\n{\"src\":1,\"dst\":2,\"time\":3,\"qty\":4}\n\n" with
  | Error e -> Alcotest.fail e
  | Ok entries -> Alcotest.(check int) "one entry" 1 (List.length entries)

(* --- daemon: windowed flow differential ----------------------------- *)

let entry src dst time qty = { Ingest.src; dst; inter = Interaction.make ~time ~qty }

(* Feed a time-sorted random stream in random chunk sizes; after every
   chunk the daemon's flow must be bit-identical to a batch greedy
   recomputation over the restricted window of everything accepted so
   far.  (Bit-identical, not approximate: the rebuild path replays the
   canonical order, which is the same float operation sequence.) *)
let prop_daemon_flow_matches_batch rng =
  let n = 10 + Prng.int rng 40 in
  let window =
    if Prng.int rng 3 = 0 then infinity else 3.0 +. float_of_int (Prng.int rng 10)
  in
  let stream =
    List.init n (fun _ ->
        let s = Prng.int rng 6 in
        let d = Prng.int rng 6 in
        let d = if d = s then (d + 1) mod 6 else d in
        entry s d (float_of_int (Prng.int rng 25)) (float_of_int (1 + Prng.int rng 9)))
    |> List.stable_sort (fun a b ->
           Float.compare (Interaction.time a.Ingest.inter) (Interaction.time b.Ingest.inter))
  in
  let d = Daemon.create (Daemon.config ~source:0 ~sink:5 ~window ()) in
  let ok = ref true in
  let cumulative = ref Graph.empty in
  let rec go = function
    | [] -> ()
    | stream ->
        let k = 1 + Prng.int rng 7 in
        let chunk = List.filteri (fun i _ -> i < k) stream in
        let rest = List.filteri (fun i _ -> i >= k) stream in
        let r = Daemon.ingest d chunk in
        if r.Daemon.rejected > 0 then ok := false;
        List.iter
          (fun e ->
            cumulative :=
              Graph.add_interaction !cumulative ~src:e.Ingest.src ~dst:e.Ingest.dst
                e.Ingest.inter)
          chunk;
        let last =
          List.fold_left
            (fun acc e -> Float.max acc (Interaction.time e.Ingest.inter))
            neg_infinity chunk
        in
        let expected_g =
          if window = infinity then !cumulative
          else Window.restrict ~from_time:(last -. window) !cumulative
        in
        let expected = Greedy.flow expected_g ~source:0 ~sink:5 in
        if not (Float.equal expected (Daemon.flow d)) then ok := false;
        if not (Graph.equal expected_g (Daemon.window_graph d)) then ok := false;
        go rest
  in
  go stream;
  !ok

(* Cross-batch timestamp tie: streaming arrival order differs from the
   canonical (time, qty) order, so the daemon must fall back to the
   canonical replay and still report the batch value. *)
let test_daemon_cross_batch_tie () =
  let d = Daemon.create (Daemon.config ~source:0 ~sink:2 ()) in
  ignore (Daemon.ingest d [ entry 0 1 0.0 5.0; entry 1 2 1.0 4.0 ]);
  (* Arrives later but ties t=1 with a smaller qty: canonically it
     drains vertex 1 first. *)
  ignore (Daemon.ingest d [ entry 1 3 1.0 3.0 ]);
  let g =
    Graph.of_edges
      [ (0, 1, [ (0.0, 5.0) ]); (1, 2, [ (1.0, 4.0) ]); (1, 3, [ (1.0, 3.0) ]) ]
  in
  Alcotest.(check bool) "tie forces exact replay" true
    (Float.equal (Greedy.flow g ~source:0 ~sink:2) (Daemon.flow d));
  Check.check_flow "canonical value" 2.0 (Daemon.flow d)

let test_daemon_rejects_late_and_self_loops () =
  let d = Daemon.create (Daemon.config ~source:0 ~sink:2 ()) in
  let r = Daemon.ingest d [ entry 0 1 10.0 5.0 ] in
  Alcotest.(check int) "accepted" 1 r.Daemon.accepted;
  let r = Daemon.ingest d [ entry 1 2 5.0 5.0; entry 3 3 11.0 1.0; entry 1 2 12.0 5.0 ] in
  Alcotest.(check int) "late + self-loop rejected" 2 r.Daemon.rejected;
  Alcotest.(check int) "the in-order one accepted" 1 r.Daemon.accepted;
  let st = Daemon.stats d in
  Alcotest.(check int) "rejected_total" 2 st.Daemon.rejected_total;
  Alcotest.(check int) "window holds the accepted two" 2 st.Daemon.window_interactions;
  (* The late interaction is NOT in the flow: 1->2 only relays at t=12. *)
  Check.check_flow "flow from the accepted stream" 5.0 st.Daemon.flow

let test_daemon_eviction () =
  let d = Daemon.create (Daemon.config ~source:0 ~sink:1 ~window:5.0 ()) in
  ignore (Daemon.ingest d [ entry 0 1 0.0 1.0; entry 0 1 2.0 1.0 ]);
  Check.check_flow "both in window" 2.0 (Daemon.flow d);
  ignore (Daemon.ingest d [ entry 0 1 6.0 1.0 ]);
  (* Window is [1, 6]: the t=0 interaction fell off. *)
  let st = Daemon.stats d in
  Alcotest.(check int) "one evicted" 1 st.Daemon.evicted_total;
  Alcotest.(check int) "two in window" 2 st.Daemon.window_interactions;
  Check.check_flow "flow over the window only" 2.0 st.Daemon.flow;
  Alcotest.(check bool) "a rebuild happened" true (st.Daemon.rebuilds_total >= 1);
  (* The window boundary is a closed interval: an interaction exactly
     at last_time - window stays. *)
  ignore (Daemon.ingest d [ entry 0 1 7.0 1.0 ]);
  let st = Daemon.stats d in
  Alcotest.(check int) "t=2 at the boundary survives" 3 st.Daemon.window_interactions

(* --- daemon: delta tables differential ------------------------------ *)

(* Normalize a table into label space (same idiom as test_delta). *)
let normalized net table =
  Array.to_list (Tables.rows table)
  |> List.map (fun r ->
         (Array.to_list (Array.map (Static.label net) r.Tables.verts), r.Tables.flow))
  |> List.sort compare

let tables_match_precompute msg (d : Delta.t) =
  let with_chains = d.Delta.tables.Catalog.c2 <> None in
  let full = Catalog.precompute ~with_chains d.Delta.net in
  let check part a b =
    Alcotest.(check (list (pair (list int) (float 1e-9))))
      (msg ^ ": " ^ part)
      (normalized d.Delta.net b) (normalized d.Delta.net a)
  in
  check "L2" d.Delta.tables.Catalog.l2 full.Catalog.l2;
  check "L3" d.Delta.tables.Catalog.l3 full.Catalog.l3;
  match (d.Delta.tables.Catalog.c2, full.Catalog.c2) with
  | Some a, Some b -> check "chains" a b
  | None, None -> ()
  | _ -> Alcotest.fail "chain-table presence mismatch"

let prop_daemon_tables_match_precompute rng =
  (* P1 needs the chain table, so this also exercises chains. *)
  let d =
    Daemon.create
      (Daemon.config ~source:0 ~sink:5 ~patterns:[ Catalog.Rigid Catalog.P1 ] ())
  in
  let t = ref 0.0 in
  for _ = 1 to 3 do
    let chunk =
      List.init
        (1 + Prng.int rng 6)
        (fun _ ->
          let s = Prng.int rng 6 in
          let dst = Prng.int rng 6 in
          let dst = if dst = s then (dst + 1) mod 6 else dst in
          t := !t +. float_of_int (Prng.int rng 3);
          entry s dst !t (float_of_int (1 + Prng.int rng 9)))
    in
    ignore (Daemon.ingest d chunk);
    ignore (Daemon.tick d);
    tables_match_precompute "after tick" (Daemon.tables d)
  done;
  true

let test_daemon_alerts_and_cadence () =
  let seen = ref [] in
  let d =
    Daemon.create
      ~on_alert:(fun a -> seen := a :: !seen)
      (Daemon.config ~source:0 ~sink:9 ~cadence:2
         ~patterns:[ Catalog.Rigid Catalog.P2 ] ~min_flow:2.0 ())
  in
  (* A 2-cycle with return flow 3 >= min_flow: must alert on the
     cadence tick triggered by the second accepted interaction. *)
  let r = Daemon.ingest d [ entry 0 1 1.0 5.0; entry 1 0 2.0 3.0 ] in
  (match r.Daemon.alerts with
  | [ a ] ->
      Alcotest.(check string) "pattern" "P2" (Catalog.pattern_name a.Daemon.pattern);
      Alcotest.(check (float 1e-9)) "alert flow" 3.0 a.Daemon.total_flow;
      Alcotest.(check int) "tick index" 1 a.Daemon.tick
  | l -> Alcotest.fail (Printf.sprintf "expected one alert, got %d" (List.length l)));
  Alcotest.(check int) "callback fired" 1 (List.length !seen);
  (* Patterns are evaluated over the cumulative net: a persisting
     instance re-alerts on the next tick (now with the extra 5<->6
     cycle's flow 1 folded into the total). *)
  let r = Daemon.ingest d [ entry 5 6 3.0 1.0; entry 6 5 4.0 1.0 ] in
  (match r.Daemon.alerts with
  | [ a ] -> Alcotest.(check (float 1e-9)) "cumulative alert flow" 4.0 a.Daemon.total_flow
  | l -> Alcotest.fail (Printf.sprintf "expected one alert, got %d" (List.length l)));
  let st = Daemon.stats d in
  Alcotest.(check int) "two cadence ticks" 2 st.Daemon.ticks_total;
  Alcotest.(check int) "two alerts total" 2 st.Daemon.alerts_total;
  Alcotest.(check bool) "table rows were recomputed" true (st.Daemon.rows_recomputed_total > 0)

let test_daemon_min_flow_silences () =
  let d =
    Daemon.create
      (Daemon.config ~source:0 ~sink:9 ~cadence:2 ~patterns:[ Catalog.Rigid Catalog.P2 ]
         ~min_flow:10.0 ())
  in
  let r = Daemon.ingest d [ entry 0 1 1.0 5.0; entry 1 0 2.0 3.0 ] in
  Alcotest.(check int) "flow 3 below min-flow 10: silent" 0 (List.length r.Daemon.alerts);
  Alcotest.(check int) "tick still happened" 1 (Daemon.stats d).Daemon.ticks_total

let test_daemon_base_seed () =
  let base =
    Graph.of_edges [ (0, 1, [ (1.0, 5.0) ]); (1, 2, [ (2.0, 4.0) ]); (2, 1, [ (3.0, 1.0) ]) ]
  in
  let d = Daemon.create ~base (Daemon.config ~source:0 ~sink:2 ()) in
  Alcotest.(check bool) "seeded flow = batch greedy" true
    (Float.equal (Greedy.flow base ~source:0 ~sink:2) (Daemon.flow d));
  (* The seed is also in the tables before any tick. *)
  tables_match_precompute "seeded tables" (Daemon.tables d);
  (* And the stream continues on top of it. *)
  ignore (Daemon.ingest d [ entry 1 2 4.0 1.0 ]);
  let g = Graph.add_interaction base ~src:1 ~dst:2 (Interaction.make ~time:4.0 ~qty:1.0) in
  Alcotest.(check bool) "continues from the seed" true
    (Float.equal (Greedy.flow g ~source:0 ~sink:2) (Daemon.flow d))

let test_daemon_validation () =
  Alcotest.check_raises "source = sink" (Invalid_argument "Daemon.create: source = sink")
    (fun () -> ignore (Daemon.create (Daemon.config ~source:1 ~sink:1 ())));
  Alcotest.check_raises "bad window"
    (Invalid_argument "Daemon.create: window must be positive") (fun () ->
      ignore (Daemon.create (Daemon.config ~source:0 ~sink:1 ~window:0.0 ())))

(* --- daemon over HTTP ----------------------------------------------- *)

let http ~port request =
  let sock = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let payload = Bytes.of_string request in
      let off = ref 0 in
      while !off < Bytes.length payload do
        off := !off + Unix.write sock payload !off (Bytes.length payload - !off)
      done;
      let buf = Bytes.create 4096 in
      let acc = Buffer.create 1024 in
      let rec drain () =
        let got = Unix.read sock buf 0 (Bytes.length buf) in
        if got > 0 then begin
          Buffer.add_subbytes acc buf 0 got;
          drain ()
        end
      in
      drain ();
      Buffer.contents acc)

let post ~port path body =
  http ~port
    (Printf.sprintf
       "POST %s HTTP/1.1\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s" path
       (String.length body) body)

let get ~port path =
  http ~port (Printf.sprintf "GET %s HTTP/1.1\r\nConnection: close\r\n\r\n" path)

let contains hay needle =
  let rec go i =
    i + String.length needle <= String.length hay
    && (String.sub hay i (String.length needle) = needle || go (i + 1))
  in
  go 0

let test_daemon_http_roundtrip () =
  let d =
    Daemon.create
      (Daemon.config ~source:0 ~sink:2 ~cadence:2 ~patterns:[ Catalog.Rigid Catalog.P2 ] ())
  in
  let srv = Serve.start ~addr:"127.0.0.1" ~port:0 ~routes:(Daemon.routes d) () in
  Fun.protect
    ~finally:(fun () -> Serve.stop srv)
    (fun () ->
      let port = Serve.port srv in
      let body =
        "{\"src\":0,\"dst\":1,\"time\":1,\"qty\":5}\n{\"src\":1,\"dst\":0,\"time\":2,\"qty\":3}\n"
      in
      let resp = post ~port "/ingest" body in
      Alcotest.(check bool) "ingest 200" true (String.starts_with ~prefix:"HTTP/1.1 200" resp);
      Alcotest.(check bool) "accepted both" true (contains resp {|"accepted":2|});
      Alcotest.(check bool) "cadence alert in the response" true
        (contains resp {|"pattern":"P2"|});
      (* Malformed line: 400 with the line number, nothing applied. *)
      let bad = post ~port "/ingest" "{\"src\":0}\n" in
      Alcotest.(check bool) "malformed ingest 400" true
        (String.starts_with ~prefix:"HTTP/1.1 400" bad);
      Alcotest.(check bool) "error names the line" true (contains bad "line 1");
      (* Status reflects the daemon's exact state. *)
      let status = get ~port "/status" in
      Alcotest.(check bool) "status 200" true
        (String.starts_with ~prefix:"HTTP/1.1 200" status);
      Alcotest.(check bool) "accepted_total" true (contains status {|"accepted_total":2|});
      Alcotest.(check bool) "alerts_total" true (contains status {|"alerts_total":1|});
      (* Built-in scrape still works next to the daemon routes. *)
      let metrics = get ~port "/metrics" in
      Alcotest.(check bool) "metrics 200" true
        (String.starts_with ~prefix:"HTTP/1.1 200" metrics))

(* --- observability at the HTTP boundary ----------------------------- *)

module Obs = Tin_obs.Obs

(* Distributed trace continuity is an always-on property: the flight
   recorder keeps spans live even with tracing off, so a request
   carrying a [traceparent] gets a response header in the same trace
   with the server's own span id. *)
let test_traceparent_echo () =
  Obs.reset ();
  Obs.Flight.arm ();
  let d = Daemon.create (Daemon.config ~source:0 ~sink:2 ()) in
  let srv = Serve.start ~addr:"127.0.0.1" ~port:0 ~routes:(Daemon.routes d) () in
  Fun.protect
    ~finally:(fun () ->
      Serve.stop srv;
      Obs.reset ())
    (fun () ->
      let port = Serve.port srv in
      let trace = "4bf92f3577b34da6a3ce929d0e0e4736" in
      let resp =
        http ~port
          (Printf.sprintf
             "GET /status HTTP/1.1\r\n\
              traceparent: 00-%s-00f067aa0ba902b7-01\r\n\
              Connection: close\r\n\
              \r\n"
             trace)
      in
      Alcotest.(check bool) "200" true (String.starts_with ~prefix:"HTTP/1.1 200" resp);
      Alcotest.(check bool) "response continues the client's trace" true
        (contains resp ("traceparent: 00-" ^ trace ^ "-"));
      Alcotest.(check bool) "server minted its own span id" false
        (contains resp "00f067aa0ba902b7");
      (* A garbage traceparent must not kill the request — the server
         starts a fresh trace instead. *)
      let resp =
        http ~port
          "GET /healthz HTTP/1.1\r\ntraceparent: junk\r\nConnection: close\r\n\r\n"
      in
      Alcotest.(check bool) "bad traceparent still 200" true
        (String.starts_with ~prefix:"HTTP/1.1 200" resp);
      Alcotest.(check bool) "fresh trace minted" true (contains resp "traceparent: 00-"))

let test_http_latency_metric () =
  Obs.reset ();
  Obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
    (fun () ->
      let srv = Serve.start ~addr:"127.0.0.1" ~port:0 () in
      Fun.protect
        ~finally:(fun () -> Serve.stop srv)
        (fun () ->
          let port = Serve.port srv in
          ignore (get ~port "/healthz");
          ignore (get ~port "/no-such-route");
          let scrape = get ~port "/metrics" in
          Alcotest.(check bool) "latency series per route+status" true
            (contains scrape
               "http_request_duration_ms_count{route=\"/healthz\",status=\"200\"}");
          (* Unknown paths share one label value: route cardinality
             stays bounded no matter what clients probe. *)
          Alcotest.(check bool) "404s collapse to unmatched" true
            (contains scrape
               "http_request_duration_ms_count{route=\"unmatched\",status=\"404\"}");
          Alcotest.(check bool) "probed path never becomes a label" false
            (contains scrape "no-such-route{")))

(* The lag gauge must read as absent — not stale — when the window is
   empty or nothing has ever arrived. *)
let test_ingest_lag_unset () =
  Obs.reset ();
  Obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
    (fun () ->
      (* A previous daemon in the same process left a value behind. *)
      Obs.Gauge.set (Obs.Gauge.make "serve.ingest_lag_seconds") 42.0;
      let d = Daemon.create (Daemon.config ~source:0 ~sink:2 ()) in
      Alcotest.(check bool) "empty daemon retracts stale lag" false
        (List.mem_assoc "serve.ingest_lag_seconds" (Obs.gauges ()));
      Alcotest.(check bool) "no scrape line while unset" false
        (contains (Obs.prometheus_text ()) "serve_ingest_lag_seconds");
      ignore (Daemon.ingest d [ entry 0 1 1.0 5.0 ]);
      (match List.assoc_opt "serve.ingest_lag_seconds" (Obs.gauges ()) with
      | Some v -> Alcotest.(check bool) "lag is a real value" true (v >= 0.0)
      | None -> Alcotest.fail "accepted traffic must publish a lag");
      Alcotest.(check bool) "scrape line once set" true
        (contains (Obs.prometheus_text ()) "serve_ingest_lag_seconds"))

let () =
  Alcotest.run "serve"
    [
      ( "request-parser",
        [
          Alcotest.test_case "single chunk" `Quick test_parser_single_chunk;
          Alcotest.test_case "terminator split at every byte" `Quick test_parser_every_split;
          Alcotest.test_case "byte at a time" `Quick test_parser_byte_at_a_time;
          Alcotest.test_case "body across chunks" `Quick test_parser_body_split;
          Alcotest.test_case "bare LF terminator" `Quick test_parser_bare_lf;
          Alcotest.test_case "head too large" `Quick test_parser_head_too_large;
          Alcotest.test_case "body too large" `Quick test_parser_body_too_large;
          Alcotest.test_case "malformed" `Quick test_parser_malformed;
        ] );
      ( "ingest",
        [
          Alcotest.test_case "parse line" `Quick test_ingest_parse_line;
          Alcotest.test_case "errors are specific" `Quick test_ingest_errors;
          Alcotest.test_case "blank lines skipped" `Quick test_ingest_body_blank_lines;
        ] );
      ( "daemon",
        [
          Check.seeded_property ~count:100 "windowed flow = batch greedy after every chunk"
            prop_daemon_flow_matches_batch;
          Alcotest.test_case "cross-batch timestamp tie" `Quick test_daemon_cross_batch_tie;
          Alcotest.test_case "late + self-loop rejection" `Quick
            test_daemon_rejects_late_and_self_loops;
          Alcotest.test_case "eviction (closed window)" `Quick test_daemon_eviction;
          Check.seeded_property ~count:30 "tables = precompute after every tick"
            prop_daemon_tables_match_precompute;
          Alcotest.test_case "alerts and cadence" `Quick test_daemon_alerts_and_cadence;
          Alcotest.test_case "min-flow threshold silences" `Quick test_daemon_min_flow_silences;
          Alcotest.test_case "base network seed" `Quick test_daemon_base_seed;
          Alcotest.test_case "validation" `Quick test_daemon_validation;
        ] );
      ( "http",
        [ Alcotest.test_case "ingest/status round trip" `Quick test_daemon_http_roundtrip ] );
      ( "observability",
        [
          Alcotest.test_case "traceparent echo" `Quick test_traceparent_echo;
          Alcotest.test_case "request latency histogram" `Quick test_http_latency_metric;
          Alcotest.test_case "lag gauge unset semantics" `Quick test_ingest_lag_unset;
        ] );
    ]
