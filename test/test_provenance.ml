(* Provenance engine (lib/core/provenance.ml): hand-worked policy
   vectors, budget spilling, the source-rooted = greedy contract, and
   qcheck properties tying provenance to the greedy scan and the flow
   decomposition on random problems. *)

open Tin_testlib
module Prov = Tin_core.Provenance
module Greedy = Tin_core.Greedy
module Decompose = Tin_core.Decompose
module Batch = Tin_core.Batch
module TE = Tin_maxflow.Time_expand
module Fcmp = Tin_util.Fcmp
module Prng = Tin_util.Prng

let add g ~src ~dst ~time ~qty =
  Graph.add_interaction g ~src ~dst (Interaction.make ~time ~qty)

(* The worked example used throughout: 0 →(t=1,q=5)→ 1, 2 →(t=2,q=3)→ 1,
   1 →(t=3,q=6)→ 3.  Scan order numbers them #0, #1, #2.  Vertex 2's
   send is uncovered, so 3 units are born at #1; vertex 1 then ships 6
   of its 8 buffered units to the absorbing vertex 3. *)
let worked_example () =
  let g = add Graph.empty ~src:0 ~dst:1 ~time:1.0 ~qty:5.0 in
  let g = add g ~src:2 ~dst:1 ~time:2.0 ~qty:3.0 in
  add g ~src:1 ~dst:3 ~time:3.0 ~qty:6.0

let vector r v =
  match List.assoc_opt v r.Prov.vectors with
  | Some xs -> xs
  | None -> Alcotest.failf "no vector for vertex %d" v

let mass_of vec ~index =
  match
    List.find_opt (function Prov.Inter i, _ -> i.index = index | _ -> false) vec
  with
  | Some (_, m) -> m
  | None -> 0.0

let check_vector name vec expected =
  Alcotest.(check int) (name ^ ": group count") (List.length expected) (List.length vec);
  List.iter
    (fun (index, mass) ->
      Alcotest.(check (float 0.0)) (Printf.sprintf "%s: mass of #%d" name index) mass
        (mass_of vec ~index))
    expected

let test_lrb_worked_example () =
  let r = Prov.run ~policy:Prov.Lrb ~absorb:3 (worked_example ()) in
  (* Oldest-born first: the sink drains all of #0 then one unit of #1. *)
  check_vector "sink" (vector r 3) [ (0, 5.0); (1, 1.0) ];
  check_vector "v1 remainder" (vector r 1) [ (1, 2.0) ];
  Alcotest.(check (float 0.0)) "sink total" 6.0 (List.assoc 3 r.Prov.totals);
  Alcotest.(check int) "no spills" 0 r.Prov.spills

let test_mrb_worked_example () =
  let r = Prov.run ~policy:Prov.Mrb ~absorb:3 (worked_example ()) in
  (* Newest-born first: all of #1 moves, then three units of #0. *)
  check_vector "sink" (vector r 3) [ (0, 3.0); (1, 3.0) ];
  check_vector "v1 remainder" (vector r 1) [ (0, 2.0) ]

let test_prop_worked_example () =
  let r = Prov.run ~policy:Prov.Proportional ~absorb:3 (worked_example ()) in
  (* Pro rata at ratio 6/8. *)
  check_vector "sink" (vector r 3) [ (0, 3.75); (1, 2.25) ];
  check_vector "v1 remainder" (vector r 1) [ (0, 1.25); (1, 0.75) ]

let test_origin_metadata () =
  let r = Prov.run ~policy:Prov.Lrb ~absorb:3 (worked_example ()) in
  match vector r 3 with
  | (Prov.Inter i, _) :: _ ->
      Alcotest.(check int) "origin src" 0 i.src;
      Alcotest.(check int) "origin dst" 1 i.dst;
      Alcotest.(check (float 0.0)) "origin time" 1.0 i.time;
      Alcotest.(check (float 0.0)) "origin qty" 5.0 i.qty
  | _ -> Alcotest.fail "expected an interaction-level origin first"

let test_budget_spills_to_coarse_groups () =
  (* Eight distinct feeders into a hub, budget 2: the hub's vector must
     coarsen instead of holding eight entries, without losing mass. *)
  let g =
    List.fold_left
      (fun g i ->
        add g ~src:(10 + i) ~dst:1 ~time:(float_of_int i) ~qty:1.0)
      Graph.empty
      (List.init 8 Fun.id)
  in
  let r = Prov.run ~policy:Prov.Lrb ~budget:2 g in
  let vec = vector r 1 in
  Alcotest.(check bool) "spilled" true (r.Prov.spills > 0);
  Alcotest.(check bool) "within budget" true (List.length vec <= 2);
  Alcotest.(check bool) "coarse group present" true
    (List.exists
       (function (Prov.Any | Prov.Vertex _), _ -> true | Prov.Inter _, _ -> false)
       vec);
  let sum = List.fold_left (fun acc (_, m) -> acc +. m) 0.0 vec in
  Alcotest.(check (float 1e-12)) "mass conserved across spills" 8.0 sum

let test_rooted_matches_greedy () =
  (* Source-rooted mode mirrors the greedy scan bit for bit: a cycle
     through vertex 2 plus a direct shipment to the sink. *)
  let g = add Graph.empty ~src:0 ~dst:1 ~time:1.0 ~qty:5.0 in
  let g = add g ~src:1 ~dst:2 ~time:2.0 ~qty:3.0 in
  let g = add g ~src:2 ~dst:1 ~time:3.0 ~qty:2.0 in
  let g = add g ~src:1 ~dst:3 ~time:4.0 ~qty:9.0 in
  let r = Prov.run ~policy:Prov.Proportional ~source:0 ~absorb:3 g in
  Alcotest.(check (float 0.0)) "sink total = greedy flow" (Greedy.flow g ~source:0 ~sink:3)
    (List.assoc 3 r.Prov.totals);
  let buffers = Greedy.buffers g ~source:0 ~sink:3 in
  Alcotest.(check bool) "totals = Greedy.buffers (bit-identical)" true
    (List.equal
       (fun (v, a) (w, b) -> v = w && Float.equal a b)
       buffers r.Prov.totals)

let test_trace_callback () =
  let batches = ref [] in
  let trace k batch = batches := (k, batch) :: !batches in
  ignore (Prov.run ~policy:Prov.Lrb ~absorb:3 ~trace (worked_example ()));
  let batches = List.rev !batches in
  Alcotest.(check (list int)) "trace fires per moving interaction in scan order"
    [ 0; 1; 2 ] (List.map fst batches);
  let shipped (_, batch) = List.fold_left (fun acc (_, m) -> acc +. m) 0.0 batch in
  Alcotest.(check (list (float 1e-12))) "each batch carries the shipped quantity"
    [ 5.0; 3.0; 6.0 ] (List.map shipped batches)

let test_policy_of_string () =
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Prov.policy_name p ^ " round-trips")
        true
        (Prov.policy_of_string (Prov.policy_name p) = Some p))
    [ Prov.Lrb; Prov.Mrb; Prov.Proportional ];
  Alcotest.(check bool) "proportional alias" true
    (Prov.policy_of_string "Proportional" = Some Prov.Proportional);
  Alcotest.(check bool) "garbage rejected" true (Prov.policy_of_string "fifo" = None)

let test_jobs_determinism () =
  (* Policy scans embedded in a Batch.map_reduce must be bit-identical
     across job counts: same graphs in, same vectors out, regardless of
     which domain computed which index. *)
  let rng = Prng.create ~seed:7 in
  let cases = Array.init 8 (fun _ -> Gen.random_digraph rng) in
  let run_all ~jobs policy =
    let acc =
      Batch.map_reduce ~jobs ~n:(Array.length cases)
        ~init:(fun () -> ref [])
        ~body:(fun acc i ->
          let g, _, sink = cases.(i) in
          acc := (i, Prov.run ~policy ~absorb:sink g) :: !acc)
        ~merge:(fun a b ->
          a := !b @ !a;
          a)
        ()
    in
    List.sort compare !acc
  in
  List.iter
    (fun policy ->
      Alcotest.(check bool)
        (Prov.policy_name policy ^ ": jobs=1 = jobs=4")
        true
        (run_all ~jobs:1 policy = run_all ~jobs:4 policy))
    [ Prov.Lrb; Prov.Mrb ]

(* --- properties ---------------------------------------------------- *)

let prop_decomposition_conserves rng =
  (* Satellite invariant: peeled path amounts reassemble the max-flow
     value up to eps-sized crumbs per path. *)
  let g, source, sink = Gen.random_dag rng in
  let value, paths = Decompose.max_flow_paths g ~source ~sink in
  let total = List.fold_left (fun acc p -> acc +. p.Decompose.amount) 0.0 paths in
  let eps = 1e-6 *. float_of_int (max 1 (List.length paths)) in
  Float.abs (value -. total) <= eps
  && List.for_all (fun p -> p.Decompose.amount > 0.0) paths

let prop_proportional_totals_equal_greedy rng =
  (* Source-rooted Proportional totals equal the greedy scan exactly
     (Float.equal, not approx) on both representations. *)
  let g, source, sink = Gen.random_digraph rng in
  let c = Compact.of_graph g in
  let r = Prov.run ~policy:Prov.Proportional ~source ~absorb:sink g in
  let rc = Prov.run_compact ~policy:Prov.Proportional ~source ~absorb:sink c in
  r = rc
  && Float.equal (Greedy.flow g ~source ~sink)
       (match List.assoc_opt sink r.Prov.totals with Some m -> m | None -> 0.0)
  && List.equal
       (fun (v, a) (w, b) -> v = w && Float.equal a b)
       (Greedy.buffers g ~source ~sink)
       r.Prov.totals

let prop_policies_agree_on_totals rng =
  (* Selection policy decides *which* units move, never *how many*:
     per-vertex totals are policy-independent, bit for bit. *)
  let g, _, sink = Gen.random_digraph rng in
  let totals policy = (Prov.run ~policy ~absorb:sink g).Prov.totals in
  let reference = totals Prov.Proportional in
  List.for_all
    (fun policy ->
      List.equal
        (fun (v, a) (w, b) -> v = w && Float.equal a b)
        reference (totals policy))
    [ Prov.Lrb; Prov.Mrb ]

let prop_vectors_conserve_mass rng =
  (* Every vertex's provenance vector sums to its buffered total. *)
  let g, _, sink = Gen.random_digraph rng in
  List.for_all
    (fun policy ->
      let r = Prov.run ~policy ~absorb:sink g in
      List.for_all
        (fun (v, vec) ->
          let total =
            match List.assoc_opt v r.Prov.totals with Some m -> m | None -> 0.0
          in
          let sum = List.fold_left (fun acc (_, m) -> acc +. m) 0.0 vec in
          Fcmp.approx_eq ~eps:1e-6 total sum
          && List.for_all (fun (_, m) -> m >= 0.0) vec)
        r.Prov.vectors)
    [ Prov.Lrb; Prov.Mrb; Prov.Proportional ]

let prop_compact_bit_identical rng =
  (* The flat-substrate twin returns structurally identical results for
     every policy, including under a tight spilling budget. *)
  let g, _, sink = Gen.random_digraph rng in
  let c = Compact.of_graph g in
  List.for_all
    (fun policy ->
      Prov.run ~policy ~absorb:sink g = Prov.run_compact ~policy ~absorb:sink c
      && Prov.run ~policy ~budget:2 ~absorb:sink g
         = Prov.run_compact ~policy ~budget:2 ~absorb:sink c)
    [ Prov.Lrb; Prov.Mrb; Prov.Proportional ]

let () =
  Alcotest.run "provenance"
    [
      ( "policies",
        [
          Alcotest.test_case "lrb worked example" `Quick test_lrb_worked_example;
          Alcotest.test_case "mrb worked example" `Quick test_mrb_worked_example;
          Alcotest.test_case "proportional worked example" `Quick test_prop_worked_example;
          Alcotest.test_case "origin metadata" `Quick test_origin_metadata;
          Alcotest.test_case "policy_of_string" `Quick test_policy_of_string;
        ] );
      ( "engine",
        [
          Alcotest.test_case "budget spills to coarse groups" `Quick
            test_budget_spills_to_coarse_groups;
          Alcotest.test_case "source-rooted = greedy" `Quick test_rooted_matches_greedy;
          Alcotest.test_case "trace callback" `Quick test_trace_callback;
          Alcotest.test_case "deterministic across jobs" `Quick test_jobs_determinism;
        ] );
      ( "properties",
        [
          Check.seeded_property "decomposition conserves the flow value"
            prop_decomposition_conserves;
          Check.seeded_property "rooted proportional totals = greedy (exact)"
            prop_proportional_totals_equal_greedy;
          Check.seeded_property "policies agree on totals (exact)"
            prop_policies_agree_on_totals;
          Check.seeded_property "vectors conserve mass" prop_vectors_conserve_mass;
          Check.seeded_property ~count:100 "Compact = Graph (bit-identical)"
            prop_compact_bit_identical;
        ] );
    ]
