(* Static max-flow substrate: residual networks, Edmonds-Karp, Dinic,
   and the time-expanded reduction. *)

open Tin_testlib
module Net = Tin_maxflow.Net
module EK = Tin_maxflow.Edmonds_karp
module Dinic = Tin_maxflow.Dinic
module PR = Tin_maxflow.Push_relabel
module TE = Tin_maxflow.Time_expand

(* CLRS figure: classic 6-node network with max flow 23. *)
let clrs () =
  let net = Net.create ~n:6 in
  let add s d c = ignore (Net.add_arc net ~src:s ~dst:d ~cap:c) in
  add 0 1 16.0;
  add 0 2 13.0;
  add 1 2 10.0;
  add 2 1 4.0;
  add 1 3 12.0;
  add 3 2 9.0;
  add 2 4 14.0;
  add 4 3 7.0;
  add 3 5 20.0;
  add 4 5 4.0;
  net

let test_ek_clrs () =
  Alcotest.(check (float 1e-9)) "EK" 23.0 (EK.max_flow (clrs ()) ~source:0 ~sink:5)

let test_dinic_clrs () =
  Alcotest.(check (float 1e-9)) "Dinic" 23.0 (Dinic.max_flow (clrs ()) ~source:0 ~sink:5)

let test_pr_clrs () =
  Alcotest.(check (float 1e-9)) "push-relabel" 23.0 (PR.max_flow (clrs ()) ~source:0 ~sink:5)

let test_pr_trivial () =
  let net = Net.create ~n:2 in
  ignore (Net.add_arc net ~src:0 ~dst:1 ~cap:7.0);
  Alcotest.(check (float 1e-9)) "single arc" 7.0 (PR.max_flow net ~source:0 ~sink:1);
  let empty = Net.create ~n:3 in
  Alcotest.(check (float 1e-9)) "no arcs" 0.0 (PR.max_flow empty ~source:0 ~sink:2)

let test_disconnected () =
  let net = Net.create ~n:4 in
  ignore (Net.add_arc net ~src:0 ~dst:1 ~cap:5.0);
  ignore (Net.add_arc net ~src:2 ~dst:3 ~cap:5.0);
  Alcotest.(check (float 1e-9)) "no path" 0.0 (Dinic.max_flow net ~source:0 ~sink:3)

let test_parallel_arcs () =
  let net = Net.create ~n:2 in
  ignore (Net.add_arc net ~src:0 ~dst:1 ~cap:2.0);
  ignore (Net.add_arc net ~src:0 ~dst:1 ~cap:3.0);
  Alcotest.(check (float 1e-9)) "parallel arcs add" 5.0 (Dinic.max_flow net ~source:0 ~sink:1)

let test_flow_conservation () =
  let net = clrs () in
  ignore (Dinic.max_flow net ~source:0 ~sink:5);
  (* Check per-node conservation using per-arc flows. *)
  let inflow = Array.make 6 0.0 and outflow = Array.make 6 0.0 in
  for a = 0 to (2 * Net.n_arcs net) - 1 do
    if a mod 2 = 0 then begin
      let f = Net.flow net a in
      Alcotest.(check bool) "capacity respected" true (f <= Net.capacity net a +. 1e-9);
      Alcotest.(check bool) "non-negative" true (f >= -1e-9);
      let src = Net.dst net (Net.twin a) and dst = Net.dst net a in
      outflow.(src) <- outflow.(src) +. f;
      inflow.(dst) <- inflow.(dst) +. f
    end
  done;
  for v = 1 to 4 do
    Alcotest.(check (float 1e-9)) "conservation" inflow.(v) outflow.(v)
  done

let test_copy_isolates () =
  let net = clrs () in
  let copy = Net.copy net in
  ignore (Dinic.max_flow net ~source:0 ~sink:5);
  Alcotest.(check (float 1e-9)) "copy untouched" 0.0 (Net.flow copy 0);
  Alcotest.(check (float 1e-9)) "copy solves fresh" 23.0 (Dinic.max_flow copy ~source:0 ~sink:5)

let test_reset () =
  let net = clrs () in
  ignore (Dinic.max_flow net ~source:0 ~sink:5);
  Net.reset net;
  Alcotest.(check (float 1e-9)) "solves again after reset" 23.0
    (EK.max_flow net ~source:0 ~sink:5)

let test_add_arc_validation () =
  let net = Net.create ~n:2 in
  Alcotest.check_raises "bad capacity" (Invalid_argument "Net.add_arc: bad capacity") (fun () ->
      ignore (Net.add_arc net ~src:0 ~dst:1 ~cap:(-1.0)));
  Alcotest.check_raises "bad node" (Invalid_argument "Net.add_arc: node out of range") (fun () ->
      ignore (Net.add_arc net ~src:0 ~dst:7 ~cap:1.0))

let test_source_eq_sink () =
  let net = Net.create ~n:2 in
  Alcotest.check_raises "dinic" (Invalid_argument "Dinic.max_flow: source = sink") (fun () ->
      ignore (Dinic.max_flow net ~source:0 ~sink:0));
  Alcotest.check_raises "ek" (Invalid_argument "Edmonds_karp.max_flow: source = sink") (fun () ->
      ignore (EK.max_flow net ~source:0 ~sink:0))

let test_random_ek_eq_dinic () =
  let rng = Tin_util.Prng.create ~seed:99 in
  for _ = 1 to 150 do
    let n = 2 + Tin_util.Prng.int rng 7 in
    let net = Net.create ~n in
    let m = 1 + Tin_util.Prng.int rng 15 in
    for _ = 1 to m do
      let s = Tin_util.Prng.int rng n and d = Tin_util.Prng.int rng n in
      if s <> d then
        ignore (Net.add_arc net ~src:s ~dst:d ~cap:(float_of_int (Tin_util.Prng.int rng 10)))
    done;
    let a = EK.max_flow (Net.copy net) ~source:0 ~sink:(n - 1) in
    let b = Dinic.max_flow (Net.copy net) ~source:0 ~sink:(n - 1) in
    let c = PR.max_flow (Net.copy net) ~source:0 ~sink:(n - 1) in
    Alcotest.(check (float 1e-7)) "EK = Dinic" a b;
    Alcotest.(check (float 1e-7)) "EK = push-relabel" a c
  done

(* --- time expansion --- *)

let test_te_fig3 () =
  Alcotest.(check (float 1e-9)) "max flow (Dinic)" 5.0
    (TE.max_flow Paper_examples.fig3 ~source:Paper_examples.s ~sink:Paper_examples.t);
  Alcotest.(check (float 1e-9)) "max flow (EK)" 5.0
    (TE.max_flow ~algo:`Edmonds_karp Paper_examples.fig3 ~source:Paper_examples.s
       ~sink:Paper_examples.t);
  Alcotest.(check (float 1e-9)) "max flow (push-relabel)" 5.0
    (TE.max_flow ~algo:`Push_relabel Paper_examples.fig3 ~source:Paper_examples.s
       ~sink:Paper_examples.t)

let test_te_fig1a () =
  Alcotest.(check (float 1e-9)) "max flow" 5.0
    (TE.max_flow Paper_examples.fig1a ~source:Paper_examples.s ~sink:Paper_examples.t)

let test_te_chain_equals_greedy () =
  Alcotest.(check (float 1e-9)) "chain max = greedy (Lemma 1)" 7.0
    (TE.max_flow Paper_examples.fig5a ~source:Paper_examples.s ~sink:Paper_examples.t)

let test_te_strict_time () =
  let g = Graph.of_edges [ (0, 1, [ (2.0, 5.0) ]); (1, 2, [ (2.0, 5.0) ]) ] in
  Alcotest.(check (float 1e-9)) "no same-instant relay" 0.0 (TE.max_flow g ~source:0 ~sink:2)

let test_te_infinite_quantities () =
  (* Synthetic source edge: infinite quantity must be big-M'd, flow is
     capped by the finite inner edge. *)
  let syn time qty = [ Interaction.unchecked ~time ~qty ] in
  let g =
    Graph.add_edge
      (Graph.add_edge
         (Graph.add_edge Graph.empty ~src:0 ~dst:1 (syn neg_infinity infinity))
         ~src:1 ~dst:2
         [ Interaction.make ~time:5.0 ~qty:7.0 ])
      ~src:2 ~dst:3 (syn infinity infinity)
  in
  Alcotest.(check (float 1e-9)) "finite bottleneck" 7.0 (TE.max_flow g ~source:0 ~sink:3)

let test_te_structure () =
  let te = TE.build Paper_examples.fig3 ~source:Paper_examples.s ~sink:Paper_examples.t in
  Alcotest.(check bool) "has event nodes" true (te.TE.n_event_nodes > 0);
  Alcotest.(check bool) "bounded by interactions" true
    (* two (b, a) nodes per distinct event time, at most two event
       times per interaction *)
    (te.TE.n_event_nodes <= 4 * Graph.n_interactions Paper_examples.fig3)

let test_te_incoming_to_source_ignored () =
  let g =
    Graph.of_edges [ (0, 1, [ (1.0, 5.0) ]); (1, 0, [ (2.0, 3.0) ]); (1, 2, [ (3.0, 4.0) ]) ]
  in
  Alcotest.(check (float 1e-9)) "flow unaffected by backwash" 4.0 (TE.max_flow g ~source:0 ~sink:2)

let () =
  Alcotest.run "maxflow"
    [
      ( "solvers",
        [
          Alcotest.test_case "EK on CLRS" `Quick test_ek_clrs;
          Alcotest.test_case "Dinic on CLRS" `Quick test_dinic_clrs;
          Alcotest.test_case "push-relabel on CLRS" `Quick test_pr_clrs;
          Alcotest.test_case "push-relabel edge cases" `Quick test_pr_trivial;
          Alcotest.test_case "disconnected" `Quick test_disconnected;
          Alcotest.test_case "parallel arcs" `Quick test_parallel_arcs;
          Alcotest.test_case "flow conservation" `Quick test_flow_conservation;
          Alcotest.test_case "copy isolates" `Quick test_copy_isolates;
          Alcotest.test_case "reset" `Quick test_reset;
          Alcotest.test_case "arc validation" `Quick test_add_arc_validation;
          Alcotest.test_case "source = sink" `Quick test_source_eq_sink;
          Alcotest.test_case "EK = Dinic (random)" `Quick test_random_ek_eq_dinic;
        ] );
      ( "time-expansion",
        [
          Alcotest.test_case "figure 3" `Quick test_te_fig3;
          Alcotest.test_case "figure 1(a)" `Quick test_te_fig1a;
          Alcotest.test_case "chain = greedy" `Quick test_te_chain_equals_greedy;
          Alcotest.test_case "strict time" `Quick test_te_strict_time;
          Alcotest.test_case "infinite quantities" `Quick test_te_infinite_quantities;
          Alcotest.test_case "structure" `Quick test_te_structure;
          Alcotest.test_case "incoming to source" `Quick test_te_incoming_to_source_ignored;
        ] );
    ]
