(* Synthetic source/sink addition (Figure 4) and vertex splitting
   (Figure 10 / cyclic pattern instances). *)

open Tin_testlib
module Endpoints = Tin_core.Endpoints
module Pipeline = Tin_core.Pipeline

let test_add_synthetic_multi () =
  (* Figure 4: x and y are sources; z and w are sinks. *)
  let g =
    Graph.of_edges
      [
        (1, 3, [ (1.0, 5.0) ]);
        (* x -> z *)
        (2, 3, [ (2.0, 3.0) ]);
        (* y -> z *)
        (2, 4, [ (5.0, 1.0) ]);
        (* y -> w *)
      ]
  in
  let ep = Endpoints.add_synthetic g in
  Alcotest.(check int) "two vertices added" (Graph.n_vertices g + 2)
    (Graph.n_vertices ep.Endpoints.graph);
  Alcotest.(check (list int)) "single source" [ ep.Endpoints.source ]
    (Graph.sources ep.Endpoints.graph);
  Alcotest.(check (list int)) "single sink" [ ep.Endpoints.sink ]
    (Graph.sinks ep.Endpoints.graph);
  (* Synthetic edges are (-inf, inf) / (+inf, inf). *)
  let se = Graph.edge ep.Endpoints.graph ~src:ep.Endpoints.source ~dst:1 in
  (match se with
  | [ i ] ->
      Alcotest.(check (float 0.0)) "time -inf" neg_infinity (Interaction.time i);
      Alcotest.(check (float 0.0)) "qty inf" infinity (Interaction.qty i)
  | _ -> Alcotest.fail "expected one synthetic interaction");
  (* Total flow: everything the original sources can push. *)
  Check.check_flow "flow through synthetic endpoints" 9.0
    (Pipeline.max_flow ep.Endpoints.graph ~source:ep.Endpoints.source ~sink:ep.Endpoints.sink)

let test_add_synthetic_already_single () =
  let g = Paper_examples.fig3 in
  let ep = Endpoints.add_synthetic g in
  Alcotest.(check int) "nothing added" (Graph.n_vertices g) (Graph.n_vertices ep.Endpoints.graph);
  Alcotest.(check int) "source kept" Paper_examples.s ep.Endpoints.source;
  Alcotest.(check int) "sink kept" Paper_examples.t ep.Endpoints.sink

let test_add_synthetic_empty () =
  Alcotest.check_raises "empty graph" (Invalid_argument "Endpoints.add_synthetic: empty graph")
    (fun () -> ignore (Endpoints.add_synthetic Graph.empty))

let test_add_synthetic_all_cyclic () =
  let g = Graph.of_edges [ (0, 1, [ (1.0, 1.0) ]); (1, 0, [ (2.0, 1.0) ]) ] in
  Alcotest.check_raises "no sources"
    (Invalid_argument "Endpoints.add_synthetic: no source vertex (all on cycles)") (fun () ->
      ignore (Endpoints.add_synthetic g))

let test_split_cycle () =
  (* Cyclic transaction 1 -> 2 -> 1: flow back to the seed. *)
  let g = Graph.of_edges [ (1, 2, [ (1.0, 5.0) ]); (2, 1, [ (2.0, 3.0) ]) ] in
  let ep = Endpoints.split g ~vertex:1 in
  Alcotest.(check bool) "original vertex gone" false (Graph.mem_vertex ep.Endpoints.graph 1);
  Alcotest.(check int) "source out-degree" 1 (Graph.out_degree ep.Endpoints.graph ep.Endpoints.source);
  Alcotest.(check int) "sink in-degree" 1 (Graph.in_degree ep.Endpoints.graph ep.Endpoints.sink);
  Check.check_flow "cyclic flow" 3.0
    (Pipeline.max_flow ep.Endpoints.graph ~source:ep.Endpoints.source ~sink:ep.Endpoints.sink)

let test_split_unknown () =
  Alcotest.check_raises "unknown" (Invalid_argument "Endpoints.split: unknown vertex") (fun () ->
      ignore (Endpoints.split Graph.empty ~vertex:7))

let test_split_fig2c_instance () =
  (* Figure 2(c): the cyclic pattern instance u1 -> u2 -> u3 -> u1 has
     flow $5. *)
  let g =
    Graph.of_edges
      [
        (1, 2, [ (2.0, 5.0); (4.0, 3.0); (8.0, 1.0) ]);
        (2, 3, [ (3.0, 4.0); (5.0, 2.0) ]);
        (3, 1, [ (1.0, 2.0); (6.0, 5.0) ]);
      ]
  in
  let ep = Endpoints.split g ~vertex:1 in
  Check.check_flow "flow = $5 (paper Figure 2)" 5.0
    (Pipeline.max_flow ep.Endpoints.graph ~source:ep.Endpoints.source ~sink:ep.Endpoints.sink)

let test_split_preserves_interactions () =
  let g = Graph.of_edges [ (1, 2, [ (1.0, 5.0) ]); (2, 1, [ (2.0, 3.0) ]); (2, 3, [ (4.0, 1.0) ]) ] in
  let ep = Endpoints.split g ~vertex:1 in
  Alcotest.(check int) "interaction count preserved" 3
    (Graph.n_interactions ep.Endpoints.graph)

let () =
  Alcotest.run "endpoints"
    [
      ( "synthetic",
        [
          Alcotest.test_case "multi source/sink" `Quick test_add_synthetic_multi;
          Alcotest.test_case "already single" `Quick test_add_synthetic_already_single;
          Alcotest.test_case "empty graph" `Quick test_add_synthetic_empty;
          Alcotest.test_case "all cyclic" `Quick test_add_synthetic_all_cyclic;
        ] );
      ( "split",
        [
          Alcotest.test_case "2-cycle" `Quick test_split_cycle;
          Alcotest.test_case "unknown vertex" `Quick test_split_unknown;
          Alcotest.test_case "figure 2(c) instance" `Quick test_split_fig2c_instance;
          Alcotest.test_case "interactions preserved" `Quick test_split_preserves_interactions;
        ] );
    ]
