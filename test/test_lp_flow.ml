(* The LP formulation of maximum flow (Section 4.2.1). *)

open Tin_testlib
module Lp_flow = Tin_core.Lp_flow
module P = Paper_examples

let solve g ~source ~sink =
  match Lp_flow.solve g ~source ~sink with
  | Ok v -> v
  | Error _ -> Alcotest.fail "LP failed"

let test_fig3 () = Check.check_flow "figure 3" 5.0 (solve P.fig3 ~source:P.s ~sink:P.t)
let test_fig1a () = Check.check_flow "figure 1(a)" 5.0 (solve P.fig1a ~source:P.s ~sink:P.t)

let test_fig5a_chain () =
  Check.check_flow "chain: LP = greedy" 7.0 (solve P.fig5a ~source:P.s ~sink:P.t)

let test_variable_count () =
  (* One variable per non-source interaction. *)
  Alcotest.(check int) "fig3" 3 (Lp_flow.n_variables P.fig3 ~source:P.s);
  Alcotest.(check int) "fig7" 9 (Lp_flow.n_variables P.fig7 ~source:P.s);
  let lp = Lp_flow.build P.fig3 ~source:P.s ~sink:P.t in
  Alcotest.(check int) "built vars" 3 lp.Lp_flow.n_vars;
  Alcotest.(check bool) "has rows" true (lp.Lp_flow.n_rows > 0)

let test_source_to_sink_direct () =
  (* Direct source→sink interactions contribute as constants. *)
  let g = Graph.of_edges [ (0, 1, [ (1.0, 5.0); (2.0, 3.0) ]) ] in
  Check.check_flow "constant objective" 8.0 (solve g ~source:0 ~sink:1);
  let lp = Lp_flow.build g ~source:0 ~sink:1 in
  Alcotest.(check int) "no variables" 0 lp.Lp_flow.n_vars;
  Alcotest.(check (float 1e-9)) "fixed" 8.0 lp.Lp_flow.fixed_into_sink

let test_strict_time () =
  let g = Graph.of_edges [ (0, 1, [ (2.0, 5.0) ]); (1, 2, [ (2.0, 5.0) ]) ] in
  Check.check_flow "same instant blocked" 0.0 (solve g ~source:0 ~sink:2)

let test_tie_no_double_spend () =
  (* Cumulative constraints: two same-instant outgoing interactions
     cannot both spend the same buffered 5 even in the LP relaxation. *)
  let g =
    Graph.of_edges
      [
        (0, 1, [ (1.0, 5.0) ]);
        (1, 2, [ (2.0, 5.0) ]);
        (1, 3, [ (2.0, 5.0) ]);
        (2, 4, [ (3.0, 10.0) ]);
        (3, 4, [ (3.0, 10.0) ]);
      ]
  in
  Check.check_flow "no double spend" 5.0 (solve g ~source:0 ~sink:4)

let test_reservation_beats_greedy () =
  (* The defining example: LP must beat the greedy value. *)
  let greedy = Tin_core.Greedy.flow P.fig3 ~source:P.s ~sink:P.t in
  let lp = solve P.fig3 ~source:P.s ~sink:P.t in
  Alcotest.(check bool) "lp > greedy here" true (lp > greedy +. 1.0)

let test_cyclic_graph_supported () =
  (* The LP is temporal, not structural: cycles are fine. *)
  let g =
    Graph.of_edges
      [
        (0, 1, [ (1.0, 4.0) ]);
        (1, 2, [ (2.0, 4.0) ]);
        (2, 1, [ (3.0, 4.0) ]);
        (1, 3, [ (4.0, 4.0) ]);
      ]
  in
  Check.check_flow "cycle traversal" 4.0 (solve g ~source:0 ~sink:3)

let test_infinite_source_edges () =
  (* Synthetic endpoints: infinite quantities on source edges become
     unconstrained right-hand sides, not unbounded LPs. *)
  let syn time qty = [ Interaction.unchecked ~time ~qty ] in
  let g =
    Graph.add_edge
      (Graph.add_edge
         (Graph.add_edge Graph.empty ~src:0 ~dst:1 (syn neg_infinity infinity))
         ~src:1 ~dst:2
         [ Interaction.make ~time:4.0 ~qty:6.0 ])
      ~src:2 ~dst:3 (syn infinity infinity)
  in
  Check.check_flow "finite bottleneck" 6.0 (solve g ~source:0 ~sink:3)

let test_empty_graph () =
  let g = Graph.add_vertex (Graph.add_vertex Graph.empty 0) 1 in
  Check.check_flow "no interactions" 0.0 (solve g ~source:0 ~sink:1)

let test_source_eq_sink () =
  Alcotest.check_raises "source=sink" (Invalid_argument "Lp_flow.build: source = sink")
    (fun () -> ignore (Lp_flow.build P.fig3 ~source:P.s ~sink:P.s))

let () =
  Alcotest.run "lp_flow"
    [
      ( "paper-examples",
        [
          Alcotest.test_case "figure 3" `Quick test_fig3;
          Alcotest.test_case "figure 1(a)" `Quick test_fig1a;
          Alcotest.test_case "figure 5(a)" `Quick test_fig5a_chain;
          Alcotest.test_case "variable counts" `Quick test_variable_count;
          Alcotest.test_case "reservation beats greedy" `Quick test_reservation_beats_greedy;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "direct source-sink" `Quick test_source_to_sink_direct;
          Alcotest.test_case "strict time" `Quick test_strict_time;
          Alcotest.test_case "tie double-spend" `Quick test_tie_no_double_spend;
          Alcotest.test_case "cyclic graphs" `Quick test_cyclic_graph_supported;
          Alcotest.test_case "infinite source edges" `Quick test_infinite_source_edges;
          Alcotest.test_case "empty graph" `Quick test_empty_graph;
          Alcotest.test_case "source=sink" `Quick test_source_eq_sink;
        ] );
    ]
