(* Graph simplification (Algorithm 2 / Lemma 3): the Figure 5 and
   Figure 7 reductions, fixpoint behaviour and flow preservation. *)

open Tin_testlib
module Simplify = Tin_core.Simplify
module Lp_flow = Tin_core.Lp_flow
module Pipeline = Tin_core.Pipeline
module P = Paper_examples

let test_fig5a_chain_collapse () =
  let r = Simplify.run P.fig5a ~source:P.s ~sink:P.t in
  let expected = Graph.of_edges [ (P.s, P.t, [ (6.0, 3.0); (8.0, 4.0) ]) ] in
  Alcotest.check Check.graph "chain becomes one edge" expected r.Simplify.graph;
  Alcotest.(check int) "two interior vertices removed" 2 r.Simplify.removed_vertices

let test_fig7_full_reduction () =
  let r = Simplify.run P.fig7 ~source:P.s ~sink:P.t in
  Alcotest.check Check.graph "matches Figure 7(d)" P.fig7_expected r.Simplify.graph

let test_fig7_lp_variable_count () =
  (* The paper: 9 variables before, 3 after. *)
  Alcotest.(check int) "before" 9 (Lp_flow.n_variables P.fig7 ~source:P.s);
  let r = Simplify.run P.fig7 ~source:P.s ~sink:P.t in
  Alcotest.(check int) "after" 3 (Lp_flow.n_variables r.Simplify.graph ~source:P.s)

let test_fig7_flow_preserved () =
  let before = Pipeline.compute Pipeline.Lp P.fig7 ~source:P.s ~sink:P.t in
  let r = Simplify.run P.fig7 ~source:P.s ~sink:P.t in
  let after = Pipeline.compute Pipeline.Lp r.Simplify.graph ~source:P.s ~sink:P.t in
  Check.check_flow "maximum flow unchanged" before after

let test_input_untouched () =
  let before = Graph.n_vertices P.fig7 in
  ignore (Simplify.run P.fig7 ~source:P.s ~sink:P.t);
  Alcotest.(check int) "persistent input" before (Graph.n_vertices P.fig7)

let test_no_chain_no_change () =
  let r = Simplify.run P.fig3 ~source:P.s ~sink:P.t in
  Alcotest.check Check.graph "nothing simplifiable" P.fig3 r.Simplify.graph;
  Alcotest.(check int) "no chains" 0 r.Simplify.chains_reduced

let test_chain_with_dead_tail () =
  (* The chain delivers nothing into its end vertex: the replacement
     edge is empty, i.e. removed entirely. *)
  let g =
    Graph.of_edges
      [
        (0, 1, [ (10.0, 5.0) ]);
        (1, 2, [ (1.0, 5.0) ]);
        (* too early: nothing arrives *)
        (0, 2, [ (3.0, 2.0) ]);
        (2, 3, [ (5.0, 9.0) ]);
      ]
  in
  let r = Simplify.run g ~source:0 ~sink:3 in
  Alcotest.(check bool) "vertex 1 gone" false (Graph.mem_vertex r.Simplify.graph 1);
  (* After the dead chain disappears, 0→2→3 is itself a chain and the
     whole graph collapses onto a single (0,3) edge. *)
  Alcotest.check Check.graph "fixpoint"
    (Graph.of_edges [ (0, 3, [ (5.0, 2.0) ]) ])
    r.Simplify.graph;
  Check.check_flow "flow preserved" 2.0 (Pipeline.max_flow r.Simplify.graph ~source:0 ~sink:3)

let test_parallel_edge_merge () =
  (* Chain reduction that lands on an existing (s,v) edge must merge
     interaction sequences (Figure 7(c)). *)
  let g =
    Graph.of_edges
      [
        (0, 1, [ (1.0, 4.0) ]);
        (1, 2, [ (2.0, 4.0) ]);
        (0, 2, [ (5.0, 1.0) ]);
        (* out-degree 2 at vertex 2 stops any further collapse *)
        (2, 3, [ (6.0, 9.0) ]);
        (2, 4, [ (7.0, 1.0) ]);
        (4, 3, [ (8.0, 1.0) ]);
      ]
  in
  let r = Simplify.run g ~source:0 ~sink:3 in
  Alcotest.check Check.interactions "merged sequence"
    (Interaction.of_pairs [ (2.0, 4.0); (5.0, 1.0) ])
    (Graph.edge r.Simplify.graph ~src:0 ~dst:2)

let test_whole_graph_collapses () =
  (* A pure chain collapses to a single (s,t) edge; the result is
     greedy-soluble so PreSim never calls the LP. *)
  let g =
    Graph.of_edges
      [ (0, 1, [ (1.0, 3.0) ]); (1, 2, [ (2.0, 2.0) ]); (2, 3, [ (3.0, 9.0) ]) ]
  in
  let r = Simplify.run g ~source:0 ~sink:3 in
  Alcotest.(check int) "single edge" 1 (Graph.n_edges r.Simplify.graph);
  Check.check_flow "flow" 2.0 (Pipeline.max_flow r.Simplify.graph ~source:0 ~sink:3)

let test_cyclic_rejected () =
  let g = Graph.of_edges [ (0, 1, [ (1.0, 1.0) ]); (1, 0, [ (2.0, 1.0) ]) ] in
  Alcotest.check_raises "cycle" (Invalid_argument "Simplify.run: graph has a cycle") (fun () ->
      ignore (Simplify.run g ~source:0 ~sink:1))

let test_reduce_chain_interactions_helper () =
  (* The positional helper agrees with the graph-level reduction on
     Figure 5(a). *)
  let edges =
    [
      (P.x, Graph.edge P.fig5a ~src:P.s ~dst:P.x);
      (P.y, Graph.edge P.fig5a ~src:P.x ~dst:P.y);
      (P.t, Graph.edge P.fig5a ~src:P.y ~dst:P.t);
    ]
  in
  Alcotest.check Check.interactions "helper matches"
    P.fig5a_reduced_edge
    (Simplify.reduce_chain_interactions edges)

let test_reduce_chain_empty () =
  Alcotest.check Check.interactions "empty chain" [] (Simplify.reduce_chain_interactions [])

let () =
  Alcotest.run "simplify"
    [
      ( "paper-traces",
        [
          Alcotest.test_case "figure 5(a) collapse" `Quick test_fig5a_chain_collapse;
          Alcotest.test_case "figure 7 reduction" `Quick test_fig7_full_reduction;
          Alcotest.test_case "figure 7 LP variables 9 -> 3" `Quick test_fig7_lp_variable_count;
          Alcotest.test_case "figure 7 flow preserved" `Quick test_fig7_flow_preserved;
        ] );
      ( "mechanics",
        [
          Alcotest.test_case "input untouched" `Quick test_input_untouched;
          Alcotest.test_case "no chain, no change" `Quick test_no_chain_no_change;
          Alcotest.test_case "dead chain tail" `Quick test_chain_with_dead_tail;
          Alcotest.test_case "parallel edge merge" `Quick test_parallel_edge_merge;
          Alcotest.test_case "whole graph collapses" `Quick test_whole_graph_collapses;
          Alcotest.test_case "cycle rejected" `Quick test_cyclic_rejected;
          Alcotest.test_case "chain helper" `Quick test_reduce_chain_interactions_helper;
          Alcotest.test_case "empty chain helper" `Quick test_reduce_chain_empty;
        ] );
    ]
