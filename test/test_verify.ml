(* Differential correctness harness (lib/verify): the invariant
   lattice holds on randomized mutated instances, an injected solver
   bug is caught and shrunk to a minimal reproducing CSV, and the
   residual audits accept the paper examples. *)

open Tin_testlib
module Verify = Tin_verify.Verify
module VGen = Tin_verify.Gen
module Fcmp = Tin_util.Fcmp
module TE = Tin_maxflow.Time_expand
module Greedy = Tin_core.Greedy
module Lp_flow = Tin_core.Lp_flow
module Preprocess = Tin_core.Preprocess
module Simplify = Tin_core.Simplify
module P = Paper_examples

let eps = Fcmp.default_policy.Fcmp.flow_eps

let explain outcome =
  String.concat "; "
    (List.map
       (fun (d : Verify.discrepancy) -> Printf.sprintf "[%s] %s" d.Verify.check d.Verify.detail)
       outcome.Verify.discrepancies)

(* --- the full lattice on paper examples and fuzzed instances --- *)

let check_clean name g ~source ~sink =
  let o = Verify.check g ~source ~sink in
  if o.Verify.discrepancies <> [] then Alcotest.failf "%s: %s" name (explain o)

let test_paper_examples_clean () =
  check_clean "fig1a" P.fig1a ~source:P.s ~sink:P.t;
  check_clean "fig3" P.fig3 ~source:P.s ~sink:P.t;
  check_clean "fig5a" P.fig5a ~source:P.s ~sink:P.t

let test_fuzz_seed42_clean () =
  let report = Verify.fuzz ~seed:42 ~cases:200 () in
  Alcotest.(check int) "cases run" 200 report.Verify.cases_run;
  match report.Verify.failures with
  | [] -> ()
  | f :: _ ->
      Alcotest.failf "case %d (%s): %s" f.Verify.case_index f.Verify.case.VGen.family
        (explain f.Verify.outcome)

let prop_check_holds rng =
  let c = VGen.case rng in
  let o = Verify.check c.VGen.graph ~source:c.VGen.source ~sink:c.VGen.sink in
  o.Verify.discrepancies = []

(* --- individual invariants as qcheck properties --- *)

let prop_greedy_le_max rng =
  let c = VGen.case rng in
  let g = c.VGen.graph and source = c.VGen.source and sink = c.VGen.sink in
  Fcmp.approx_le ~eps (Greedy.flow g ~source ~sink) (TE.max_flow g ~source ~sink)

let lp_value solver g ~source ~sink =
  match Lp_flow.solve ~solver g ~source ~sink with
  | Ok v -> v
  | Error _ -> Alcotest.fail "LP solver failed"

let prop_lp_solvers_agree rng =
  let c = VGen.case rng in
  let g = c.VGen.graph and source = c.VGen.source and sink = c.VGen.sink in
  let reference = TE.max_flow g ~source ~sink in
  List.for_all
    (fun solver -> Fcmp.approx_eq ~eps (lp_value solver g ~source ~sink) reference)
    [ `Dense; `Bounded; `Sparse ]

let prop_te_algos_agree rng =
  let c = VGen.case rng in
  let g = c.VGen.graph and source = c.VGen.source and sink = c.VGen.sink in
  let reference = TE.max_flow ~algo:`Dinic g ~source ~sink in
  List.for_all
    (fun algo -> Fcmp.approx_eq ~eps (TE.max_flow ~algo g ~source ~sink) reference)
    [ `Edmonds_karp; `Push_relabel ]

let prop_preprocess_preserves rng =
  let c = VGen.case rng in
  let g = c.VGen.graph and source = c.VGen.source and sink = c.VGen.sink in
  (not (Topo.is_dag g))
  ||
  let reference = TE.max_flow g ~source ~sink in
  let pre = Preprocess.run g ~source ~sink in
  if pre.Preprocess.zero_flow then Fcmp.is_zero ~eps reference
  else Fcmp.approx_eq ~eps (TE.max_flow pre.Preprocess.graph ~source ~sink) reference

let prop_simplify_preserves rng =
  let c = VGen.case rng in
  let g = c.VGen.graph and source = c.VGen.source and sink = c.VGen.sink in
  (not (Topo.is_dag g))
  ||
  let reference = TE.max_flow g ~source ~sink in
  let sim = Simplify.run g ~source ~sink in
  Fcmp.approx_eq ~eps (TE.max_flow sim.Simplify.graph ~source ~sink) reference

(* --- injected bug: caught, shrunk, dumped, reloadable --- *)

let with_temp_dir f =
  let dir = Filename.temp_file "tin_verify" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

let test_injected_bug_caught () =
  with_temp_dir (fun dir ->
      let extra = [ Verify.perturbed ~delta:0.5 () ] in
      let report = Verify.fuzz ~extra ~dump_dir:dir ~seed:42 ~cases:20 () in
      Alcotest.(check bool) "failures found" true (report.Verify.failures <> []);
      List.iter
        (fun (f : Verify.failure) ->
          Alcotest.(check bool)
            "disagreement reported" true
            (List.exists
               (fun (d : Verify.discrepancy) -> d.Verify.check = "max-flow-disagreement")
               f.Verify.outcome.Verify.discrepancies);
          (* Shrinking never grows the instance. *)
          Alcotest.(check bool)
            "shrunk no larger" true
            (Graph.n_interactions f.Verify.shrunk
            <= Graph.n_interactions f.Verify.case.VGen.graph);
          (* The dump is a tinflow-loadable CSV reproducing the shrunk
             instance (comment lines are skipped by the parser). *)
          match f.Verify.csv with
          | None -> Alcotest.fail "expected a dumped counterexample"
          | Some path ->
              Alcotest.(check bool) "dump exists" true (Sys.file_exists path);
              let reloaded = Io.load_csv_graph path in
              (* The CSV records edges only, so compare modulo isolated
                 vertices. *)
              let expected =
                Graph.fold_edges
                  (fun s d is acc -> Graph.add_edge acc ~src:s ~dst:d is)
                  f.Verify.shrunk Graph.empty
              in
              Alcotest.check Check.graph "dump reloads to the shrunk instance" expected reloaded)
        report.Verify.failures)

let test_shrink_still_fails () =
  let extra = [ Verify.perturbed ~delta:1.0 () ] in
  let rng = Tin_util.Prng.create ~seed:11 in
  let c = VGen.case rng in
  let g = c.VGen.graph and source = c.VGen.source and sink = c.VGen.sink in
  Alcotest.(check bool) "original fails" true (Verify.fails ~extra g ~source ~sink);
  let shrunk = Verify.shrink ~extra g ~source ~sink in
  Alcotest.(check bool) "shrunk still fails" true (Verify.fails ~extra shrunk ~source ~sink)

(* --- audits reject infeasible solutions --- *)

let test_perturbed_oracle_named () =
  let o = Verify.perturbed ~delta:0.25 () in
  Alcotest.(check bool) "name mentions injection" true
    (String.length o.Verify.name > 0 && String.sub o.Verify.name 0 8 = "injected")

let () =
  Alcotest.run "verify"
    [
      ( "lattice",
        [
          Alcotest.test_case "paper examples clean" `Quick test_paper_examples_clean;
          Alcotest.test_case "fuzz seed 42 x200 clean" `Quick test_fuzz_seed42_clean;
          Check.seeded_property ~count:60 "check holds on generated instances" prop_check_holds;
        ] );
      ( "properties",
        [
          Check.seeded_property "greedy <= max" prop_greedy_le_max;
          Check.seeded_property ~count:100 "LP solvers agree" prop_lp_solvers_agree;
          Check.seeded_property ~count:100 "static max-flow algorithms agree" prop_te_algos_agree;
          Check.seeded_property ~count:100 "preprocessing value-preserving"
            prop_preprocess_preserves;
          Check.seeded_property ~count:100 "simplification value-preserving"
            prop_simplify_preserves;
        ] );
      ( "injection",
        [
          Alcotest.test_case "injected bug caught and dumped" `Quick test_injected_bug_caught;
          Alcotest.test_case "shrunk instance still fails" `Quick test_shrink_still_fails;
          Alcotest.test_case "perturbed oracle naming" `Quick test_perturbed_oracle_named;
        ] );
    ]
