(* Greedy flow computation (Section 4.1): paper traces and edge
   cases. *)

open Tin_testlib
module Greedy = Tin_core.Greedy
module P = Paper_examples

let test_fig3_flow () =
  Check.check_flow "greedy flow of Figure 3" 1.0 (Greedy.flow P.fig3 ~source:P.s ~sink:P.t)

let test_fig3_trace () =
  (* Table 2, transfer by transfer. *)
  let _, trace = Greedy.flow_trace P.fig3 ~source:P.s ~sink:P.t in
  let moved = List.map (fun tr -> (tr.Greedy.src, tr.Greedy.dst, tr.Greedy.moved)) trace in
  Alcotest.(check (list (triple int int (float 1e-9))))
    "transfers match Table 2"
    [
      (P.s, P.y, 5.0); (P.s, P.z, 3.0); (P.y, P.z, 5.0); (P.y, P.t, 0.0); (P.z, P.t, 1.0);
    ]
    moved

let test_fig1a_flow () =
  Check.check_flow "greedy flow of Figure 1(a)" 2.0 (Greedy.flow P.fig1a ~source:P.s ~sink:P.t)

let test_fig5a_flow () =
  Check.check_flow "greedy flow of the Figure 5(a) chain" 7.0
    (Greedy.flow P.fig5a ~source:P.s ~sink:P.t)

let test_fig5a_arrivals () =
  Alcotest.check Check.interactions "arrivals at t match the reduced edge of Figure 5"
    P.fig5a_reduced_edge
    (Greedy.arrivals_at_sink P.fig5a ~source:P.s ~sink:P.t)

let test_empty_graph () =
  let g = Graph.add_vertex (Graph.add_vertex Graph.empty 0) 1 in
  Check.check_flow "no interactions, no flow" 0.0 (Greedy.flow g ~source:0 ~sink:1)

let test_single_edge () =
  let g = Graph.of_edges [ (0, 1, [ (1.0, 5.0); (2.0, 3.0) ]) ] in
  Check.check_flow "source edge delivers everything" 8.0 (Greedy.flow g ~source:0 ~sink:1)

let test_source_infinite_buffer () =
  (* The source never runs out, even with no incoming interactions. *)
  let g = Graph.of_edges [ (0, 1, [ (1.0, 100.0) ]); (1, 2, [ (2.0, 100.0) ]) ] in
  Check.check_flow "quantity traverses" 100.0 (Greedy.flow g ~source:0 ~sink:2)

let test_strict_time_same_timestamp () =
  (* Arrival at time 2 is not usable by the outgoing interaction at
     time 2 (constraint 2 of the paper is strict). *)
  let g = Graph.of_edges [ (0, 1, [ (2.0, 5.0) ]); (1, 2, [ (2.0, 5.0) ]) ] in
  Check.check_flow "same-instant forwarding is impossible" 0.0 (Greedy.flow g ~source:0 ~sink:2)

let test_strict_time_later_ok () =
  let g = Graph.of_edges [ (0, 1, [ (2.0, 5.0) ]); (1, 2, [ (2.5, 5.0) ]) ] in
  Check.check_flow "later forwarding works" 5.0 (Greedy.flow g ~source:0 ~sink:2)

let test_no_double_spend_at_tie () =
  (* Two outgoing interactions at the same instant compete for the
     same buffer. *)
  let g =
    Graph.of_edges
      [
        (0, 1, [ (1.0, 5.0) ]);
        (1, 2, [ (2.0, 5.0) ]);
        (1, 3, [ (2.0, 5.0) ]);
        (2, 4, [ (3.0, 10.0) ]);
        (3, 4, [ (3.0, 10.0) ]);
      ]
  in
  Check.check_flow "buffer of 5 cannot fan out as 10" 5.0 (Greedy.flow g ~source:0 ~sink:4)

let test_cycle_supported () =
  (* Greedy runs on cyclic graphs (only the accelerators need DAGs). *)
  let g =
    Graph.of_edges
      [
        (0, 1, [ (1.0, 4.0) ]);
        (1, 2, [ (2.0, 4.0) ]);
        (2, 1, [ (3.0, 4.0) ]);
        (1, 3, [ (4.0, 4.0) ]);
      ]
  in
  Check.check_flow "flow circles through the 1-2 cycle" 4.0 (Greedy.flow g ~source:0 ~sink:3)

let test_tie_order_documented () =
  (* Interactions sharing a timestamp are scanned in the documented
     order of Graph.interactions_sorted — (time, src, dst) — so the
     winner among same-instant transfers competing for one buffer is
     deterministic: here (1,2) sorts before (1,3) and drains it. *)
  let g =
    Graph.of_edges [ (0, 1, [ (1.0, 5.0) ]); (1, 3, [ (2.0, 5.0) ]); (1, 2, [ (2.0, 5.0) ]) ]
  in
  let _, trace = Greedy.flow_trace g ~source:0 ~sink:3 in
  let order = List.map (fun tr -> (tr.Greedy.src, tr.Greedy.dst)) trace in
  Alcotest.(check (list (pair int int)))
    "scan order is (time, src, dst)"
    [ (0, 1); (1, 2); (1, 3) ]
    order;
  Check.check_flow "tie loser moves nothing" 0.0 (Greedy.flow g ~source:0 ~sink:3)

let test_zero_qty_no_spurious_buffers () =
  (* A zero-quantity interaction moves nothing and must not create a
     buffer entry downstream. *)
  let g = Graph.of_edges [ (0, 1, [ (1.0, 0.0) ]); (1, 2, [ (2.0, 5.0) ]) ] in
  let value, trace = Greedy.flow_trace g ~source:0 ~sink:2 in
  Check.check_flow "zero-quantity arrival enables nothing" 0.0 value;
  List.iter
    (fun tr -> Alcotest.(check (float 0.0)) "no quantity moves" 0.0 tr.Greedy.moved)
    trace;
  Alcotest.(check (float 0.0))
    "intermediate buffer stays empty" 0.0
    (List.assoc 1 (Greedy.buffers g ~source:0 ~sink:2))

let test_self_loop_unrepresentable () =
  (* Self-loops cannot inflate the flow because the graph refuses to
     represent them in the first place. *)
  Alcotest.check_raises "self-loop rejected" (Invalid_argument "Graph.add_edge: self-loop")
    (fun () ->
      ignore (Graph.add_interaction Graph.empty ~src:1 ~dst:1 (Interaction.make ~time:1.0 ~qty:5.0)))

let test_buffers () =
  let buffers = Greedy.buffers P.fig3 ~source:P.s ~sink:P.t in
  let lookup v = List.assoc v buffers in
  Alcotest.(check (float 1e-9)) "source buffer infinite" infinity (lookup P.s);
  Alcotest.(check (float 1e-9)) "y drained" 0.0 (lookup P.y);
  Alcotest.(check (float 1e-9)) "z keeps 7" 7.0 (lookup P.z);
  Alcotest.(check (float 1e-9)) "t holds the flow" 1.0 (lookup P.t)

let test_source_eq_sink_rejected () =
  Alcotest.check_raises "source = sink" (Invalid_argument "Greedy: source = sink") (fun () ->
      ignore (Greedy.flow P.fig3 ~source:P.s ~sink:P.s))

let test_unknown_endpoints_zero () =
  (* Vertices that do not appear in the graph simply never receive
     anything. *)
  Check.check_flow "unknown sink" 0.0 (Greedy.flow P.fig3 ~source:P.s ~sink:99)

let () =
  Alcotest.run "greedy"
    [
      ( "paper-examples",
        [
          Alcotest.test_case "figure 3 flow" `Quick test_fig3_flow;
          Alcotest.test_case "figure 3 trace (Table 2)" `Quick test_fig3_trace;
          Alcotest.test_case "figure 1(a) flow" `Quick test_fig1a_flow;
          Alcotest.test_case "figure 5(a) chain flow" `Quick test_fig5a_flow;
          Alcotest.test_case "figure 5(a) sink arrivals" `Quick test_fig5a_arrivals;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "empty graph" `Quick test_empty_graph;
          Alcotest.test_case "single edge" `Quick test_single_edge;
          Alcotest.test_case "infinite source buffer" `Quick test_source_infinite_buffer;
          Alcotest.test_case "strict time: same timestamp" `Quick test_strict_time_same_timestamp;
          Alcotest.test_case "strict time: later ok" `Quick test_strict_time_later_ok;
          Alcotest.test_case "no double spend at ties" `Quick test_no_double_spend_at_tie;
          Alcotest.test_case "deterministic tie order" `Quick test_tie_order_documented;
          Alcotest.test_case "zero quantity buffers nothing" `Quick
            test_zero_qty_no_spurious_buffers;
          Alcotest.test_case "self-loop unrepresentable" `Quick test_self_loop_unrepresentable;
          Alcotest.test_case "cycles supported" `Quick test_cycle_supported;
          Alcotest.test_case "final buffers" `Quick test_buffers;
          Alcotest.test_case "source = sink rejected" `Quick test_source_eq_sink_rejected;
          Alcotest.test_case "unknown endpoints" `Quick test_unknown_endpoints_zero;
        ] );
    ]
