(* The sparse bounded-variable revised simplex: raw-solver unit tests
   (including the eta-file/refactorization machinery via a tiny
   [refactor_every]), random agreement with the dense bounded tableau,
   and the Problem-level [`Sparse] / [`Auto] routing. *)

module Sparse = Tin_lp.Sparse
module Bounded = Tin_lp.Bounded
module Problem = Tin_lp.Problem
module Lp_flow = Tin_core.Lp_flow
module Prng = Tin_util.Prng
module Fcmp = Tin_util.Fcmp

let check_opt ~expected_obj ?(expected = []) outcome =
  match outcome with
  | Sparse.Optimal { objective; solution } ->
      Alcotest.(check (float 1e-6)) "objective" expected_obj objective;
      List.iter
        (fun (i, v) -> Alcotest.(check (float 1e-6)) (Printf.sprintf "x%d" i) v solution.(i))
        expected
  | Sparse.Unbounded -> Alcotest.fail "unexpected: unbounded"
  | Sparse.Iteration_limit -> Alcotest.fail "unexpected: iteration limit"

let inf = infinity

(* Classic textbook instance: max 3x + 5y s.t. x<=4, 2y<=12, 3x+2y<=18. *)
let test_textbook () =
  check_opt ~expected_obj:36.0
    ~expected:[ (0, 2.0); (1, 6.0) ]
    (Sparse.solve ~c:[| 3.0; 5.0 |] ~upper:[| inf; inf |]
       ~rhs:[| 4.0; 12.0; 18.0 |]
       ~cols:[| [ (0, 1.0); (2, 3.0) ]; [ (1, 2.0); (2, 2.0) ] |]
       ())

(* No constraint rows at all: the optimum is reached purely by bound
   flips (nonbasic variables moving to their upper bounds). *)
let test_pure_bound_flips () =
  check_opt ~expected_obj:11.0
    ~expected:[ (0, 3.0); (1, 4.0) ]
    (Sparse.solve ~c:[| 1.0; 2.0 |] ~upper:[| 3.0; 4.0 |] ~rhs:[||] ~cols:[| []; [] |] ())

(* The row constraint is slack at the optimum; the variable's own upper
   bound is what binds. *)
let test_upper_bound_tight () =
  check_opt ~expected_obj:2.0
    ~expected:[ (0, 2.0) ]
    (Sparse.solve ~c:[| 1.0 |] ~upper:[| 2.0 |] ~rhs:[| 10.0 |] ~cols:[| [ (0, 1.0) ] |] ())

(* Degenerate vertex at the origin with a redundant third row; Bland's
   fallback protects against cycling.  Optimum x = y = 1/2. *)
let test_degenerate () =
  check_opt ~expected_obj:0.5
    (Sparse.solve ~c:[| 1.0; 0.0 |] ~upper:[| inf; inf |]
       ~rhs:[| 1.0; 0.0; 1.0 |]
       ~cols:[| [ (0, 1.0); (1, 1.0); (2, 1.0) ]; [ (0, 1.0); (1, -1.0) ] |]
       ())

(* Identical rows repeated three times: the basis stays nonsingular
   because slacks of the redundant copies remain basic. *)
let test_redundant_rows () =
  check_opt ~expected_obj:5.0
    (Sparse.solve ~c:[| 1.0; 1.0 |] ~upper:[| inf; inf |]
       ~rhs:[| 5.0; 5.0; 5.0 |]
       ~cols:
         [| [ (0, 1.0); (1, 1.0); (2, 1.0) ]; [ (0, 1.0); (1, 1.0); (2, 1.0) ] |]
       ())

(* Duplicate (row, coef) entries in a column must be summed: the column
   below is effectively 2x <= 6. *)
let test_duplicate_entries_summed () =
  check_opt ~expected_obj:3.0
    ~expected:[ (0, 3.0) ]
    (Sparse.solve ~c:[| 1.0 |] ~upper:[| inf |] ~rhs:[| 6.0 |]
       ~cols:[| [ (0, 1.0); (0, 1.0) ] |]
       ())

let test_unbounded () =
  match
    Sparse.solve ~c:[| 1.0 |] ~upper:[| inf |] ~rhs:[| 1.0 |] ~cols:[| [ (0, -1.0) ] |] ()
  with
  | Sparse.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded"

let test_negative_rhs_rejected () =
  Alcotest.check_raises "negative rhs"
    (Invalid_argument "Sparse.solve: negative rhs (origin must be feasible)") (fun () ->
      ignore (Sparse.solve ~c:[| 1.0 |] ~upper:[| inf |] ~rhs:[| -1.0 |] ~cols:[| [] |] ()))

let test_bad_row_index_rejected () =
  try
    ignore (Sparse.solve ~c:[| 1.0 |] ~upper:[| inf |] ~rhs:[| 1.0 |] ~cols:[| [ (3, 1.0) ] |] ());
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Random agreement with the dense bounded tableau.  [refactor_every]
   is deliberately tiny so reinversion happens every couple of pivots
   — the eta file and the refactorization must agree. *)
(* ------------------------------------------------------------------ *)

let random_instance rng =
  let n = 1 + Prng.int rng 6 and m = Prng.int rng 6 in
  let c = Array.init n (fun _ -> float_of_int (Prng.int rng 11 - 5)) in
  let upper =
    Array.init n (fun _ -> if Prng.int rng 4 = 0 then inf else float_of_int (Prng.int rng 10))
  in
  let dense_rows =
    List.init m (fun _ ->
        ( Array.init n (fun _ -> float_of_int (Prng.int rng 7 - 3)),
          float_of_int (Prng.int rng 12) ))
  in
  let rhs = Array.of_list (List.map snd dense_rows) in
  let cols =
    Array.init n (fun j ->
        List.mapi (fun i (coefs, _) -> (i, coefs.(j))) dense_rows
        |> List.filter (fun (_, v) -> v <> 0.0))
  in
  (c, upper, dense_rows, rhs, cols)

let test_random_vs_bounded () =
  let rng = Prng.create ~seed:2024 in
  for k = 1 to 300 do
    let c, upper, dense_rows, rhs, cols = random_instance rng in
    let reference = Bounded.solve ~c ~upper ~rows:dense_rows () in
    let got = Sparse.solve ~refactor_every:2 ~c ~upper ~rhs ~cols () in
    match (reference, got) with
    | Bounded.Optimal { objective = a; _ }, Sparse.Optimal { objective = b; _ } ->
        if not (Fcmp.approx_eq ~eps:1e-6 a b) then
          Alcotest.failf "instance %d: bounded=%.9g sparse=%.9g" k a b
    | Bounded.Unbounded, Sparse.Unbounded -> ()
    | _ -> Alcotest.failf "instance %d: outcome mismatch" k
  done

(* ------------------------------------------------------------------ *)
(* Problem-level routing                                               *)
(* ------------------------------------------------------------------ *)

let test_problem_sparse_route () =
  let p = Problem.create () in
  let x = Problem.add_var ~ub:4.0 ~obj:3.0 p in
  let y = Problem.add_var ~obj:5.0 p in
  Problem.add_le p [ (2.0, y) ] 12.0;
  Problem.add_le p [ (3.0, x); (2.0, y) ] 18.0;
  let s = Problem.solve ~solver:`Sparse p in
  Alcotest.(check (float 1e-6)) "objective" 36.0 s.Problem.objective;
  Alcotest.(check (float 1e-6)) "x" 2.0 (s.Problem.value x);
  Alcotest.(check (float 1e-6)) "y" 6.0 (s.Problem.value y)

let test_problem_sparse_shape_rejected () =
  let p = Problem.create () in
  let x = Problem.add_var ~obj:1.0 p in
  Problem.add_ge p [ (1.0, x) ] 2.0;
  try
    ignore (Problem.solve ~solver:`Sparse p);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

(* A chain flow LP big and sparse enough that [`Auto] routes to the
   sparse solver (rows × cols >= 4096, density well under 0.25): 10
   vertices, 30 distinct-time interactions per edge.  Cross-check the
   auto-routed value against the forced dense simplex. *)
let test_auto_routes_large_flow_lp () =
  let g = ref Graph.empty in
  for v = 0 to 8 do
    let is =
      List.init 30 (fun k ->
          Interaction.make
            ~time:(float_of_int ((30 * v) + k))
            ~qty:(float_of_int (1 + ((v + k) mod 7))))
    in
    g := Graph.add_edge !g ~src:v ~dst:(v + 1) is
  done;
  let g = !g and source = 0 and sink = 9 in
  let lp = Lp_flow.build g ~source ~sink in
  let rows = Tin_lp.Problem.n_constraints lp.Lp_flow.problem in
  let cells = rows * lp.Lp_flow.n_vars in
  Alcotest.(check bool)
    (Printf.sprintf "instance large enough for the sparse route (%d cells)" cells)
    true (cells >= 4096);
  let run solver =
    match Lp_flow.solve ~solver g ~source ~sink with
    | Ok v -> v
    | Error _ -> Alcotest.fail "solver failure"
  in
  Alcotest.(check (float 1e-6)) "auto = dense" (run `Dense) (run `Auto);
  Alcotest.(check (float 1e-6)) "sparse = dense" (run `Dense) (run `Sparse)

let () =
  Alcotest.run "sparse"
    [
      ( "raw",
        [
          Alcotest.test_case "textbook" `Quick test_textbook;
          Alcotest.test_case "pure bound flips" `Quick test_pure_bound_flips;
          Alcotest.test_case "upper bound tight" `Quick test_upper_bound_tight;
          Alcotest.test_case "degenerate pivots" `Quick test_degenerate;
          Alcotest.test_case "redundant rows" `Quick test_redundant_rows;
          Alcotest.test_case "duplicate entries summed" `Quick test_duplicate_entries_summed;
          Alcotest.test_case "unbounded" `Quick test_unbounded;
          Alcotest.test_case "negative rhs rejected" `Quick test_negative_rhs_rejected;
          Alcotest.test_case "bad row index rejected" `Quick test_bad_row_index_rejected;
        ] );
      ( "agreement",
        [ Alcotest.test_case "300 random instances vs bounded" `Quick test_random_vs_bounded ] );
      ( "problem",
        [
          Alcotest.test_case "`Sparse route" `Quick test_problem_sparse_route;
          Alcotest.test_case "shape rejection" `Quick test_problem_sparse_shape_rejected;
          Alcotest.test_case "`Auto routes large flow LP" `Quick test_auto_routes_large_flow_lp;
        ] );
    ]
