(* Extensions beyond the paper's core: time-window restriction (its
   conclusion's "time-restricted version"), flow profiles, and flow
   decomposition into temporal paths. *)

open Tin_testlib
module Window = Tin_core.Window
module Decompose = Tin_core.Decompose
module Pipeline = Tin_core.Pipeline
module Greedy = Tin_core.Greedy
module TE = Tin_maxflow.Time_expand
module Fcmp = Tin_util.Fcmp
module P = Paper_examples

(* --- window --- *)

let test_restrict_full_identity () =
  Alcotest.check Check.graph "unbounded window is identity" P.fig3 (Window.restrict P.fig3)

let test_restrict_drops () =
  let g = Window.restrict ~from_time:2.0 ~until:4.0 P.fig3 in
  (* fig3 interactions at t=1..5; keep t=2,3,4. *)
  Alcotest.(check int) "three interactions" 3 (Graph.n_interactions g);
  Alcotest.(check bool) "vertices preserved" true (Graph.mem_vertex g P.s)

let test_windowed_flow () =
  (* Cutting off the last interaction (z->t at t=5) leaves only the
     y->t route: maximum flow 4. *)
  Check.check_flow "until 4" 4.0 (Window.max_flow ~until:4.0 P.fig3 ~source:P.s ~sink:P.t);
  Check.check_flow "empty window" 0.0
    (Window.max_flow ~from_time:100.0 P.fig3 ~source:P.s ~sink:P.t);
  Check.check_flow "full window" 5.0 (Window.max_flow P.fig3 ~source:P.s ~sink:P.t);
  Check.check_flow "greedy windowed" 1.0 (Window.greedy_flow P.fig3 ~source:P.s ~sink:P.t)

let test_greedy_profile () =
  let profile = Window.greedy_profile P.fig5a ~source:P.s ~sink:P.t in
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "cumulative arrivals"
    [ (6.0, 3.0); (8.0, 7.0) ]
    profile

let test_max_flow_profile () =
  let profile = Window.max_flow_profile P.fig3 ~source:P.s ~sink:P.t in
  (* Sink-incoming timestamps: 4 and 5. *)
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "profile points"
    [ (4.0, 4.0); (5.0, 5.0) ]
    profile

let prop_window_monotone rng =
  (* Larger windows can only increase the maximum flow. *)
  let g, source, sink = Gen.random_dag rng in
  let tau1 = float_of_int (Tin_util.Prng.int rng 20) in
  let tau2 = tau1 +. float_of_int (Tin_util.Prng.int rng 10) in
  Fcmp.approx_le ~eps:1e-6
    (Window.max_flow ~until:tau1 g ~source ~sink)
    (Window.max_flow ~until:tau2 g ~source ~sink)

let prop_window_equals_te_on_restricted rng =
  (* Windowed PreSim flow = Dinic on the restricted graph. *)
  let g, source, sink = Gen.random_dag rng in
  let tau = float_of_int (Tin_util.Prng.int rng 20) in
  Fcmp.approx_eq ~eps:1e-6
    (Window.max_flow ~until:tau g ~source ~sink)
    (TE.max_flow (Window.restrict ~until:tau g) ~source ~sink)

let prop_profile_nondecreasing rng =
  let g, source, sink = Gen.random_dag rng in
  let profile = Window.max_flow_profile g ~source ~sink in
  let rec nondecreasing = function
    | (_, a) :: ((_, b) :: _ as rest) -> a <= b +. 1e-9 && nondecreasing rest
    | _ -> true
  in
  nondecreasing profile
  &&
  match List.rev profile with
  | [] -> Graph.in_edges g sink = []
  | (_, last) :: _ -> Fcmp.approx_eq ~eps:1e-6 last (Pipeline.max_flow g ~source ~sink)

(* --- online (streaming) greedy --- *)

module Online = Tin_core.Online

let test_online_matches_batch_fig3 () =
  let m = Online.create ~source:P.s ~sink:P.t in
  Array.iter
    (fun (src, dst, i) -> ignore (Online.push m ~src ~dst i))
    (Graph.interactions_sorted P.fig3);
  Check.check_flow "streaming = batch" (Greedy.flow P.fig3 ~source:P.s ~sink:P.t) (Online.flow m);
  Alcotest.(check int) "pushed all" 5 (Online.n_pushed m);
  Alcotest.(check (option (float 1e-9))) "last time" (Some 5.0) (Online.last_time m);
  Alcotest.(check (float 1e-9)) "source buffer" infinity (Online.buffer m P.s)

let test_online_running_flow () =
  (* The running flow is available mid-stream. *)
  let m = Online.create ~source:0 ~sink:2 in
  ignore (Online.push m ~src:0 ~dst:1 (Interaction.make ~time:1.0 ~qty:5.0));
  Check.check_flow "nothing yet" 0.0 (Online.flow m);
  let moved = Online.push m ~src:1 ~dst:2 (Interaction.make ~time:2.0 ~qty:3.0) in
  Check.check_flow "moved 3" 3.0 moved;
  Check.check_flow "flow 3" 3.0 (Online.flow m);
  Check.check_flow "buffer at 1" 2.0 (Online.buffer m 1)

let test_online_strict_same_instant () =
  let m = Online.create ~source:0 ~sink:2 in
  ignore (Online.push m ~src:0 ~dst:1 (Interaction.make ~time:2.0 ~qty:5.0));
  let moved = Online.push m ~src:1 ~dst:2 (Interaction.make ~time:2.0 ~qty:5.0) in
  Check.check_flow "same instant blocked" 0.0 moved

let test_online_rejects_out_of_order () =
  let m = Online.create ~source:0 ~sink:2 in
  ignore (Online.push m ~src:0 ~dst:1 (Interaction.make ~time:5.0 ~qty:1.0));
  Alcotest.check_raises "out of order"
    (Invalid_argument "Online.push: timestamps must be non-decreasing") (fun () ->
      ignore (Online.push m ~src:0 ~dst:1 (Interaction.make ~time:4.0 ~qty:1.0)));
  Alcotest.check_raises "self loop" (Invalid_argument "Online.push: self-loop") (fun () ->
      ignore (Online.push m ~src:1 ~dst:1 (Interaction.make ~time:6.0 ~qty:1.0)))

let prop_online_matches_batch rng =
  let g, source, sink = Gen.random_digraph rng in
  let m = Online.create ~source ~sink in
  Array.iter (fun (src, dst, i) -> ignore (Online.push m ~src ~dst i)) (Graph.interactions_sorted g);
  Fcmp.approx_eq ~eps:1e-9 (Greedy.flow g ~source ~sink) (Online.flow m)

(* The window-rebuild path of the streaming daemon: replaying in
   canonical order must reproduce the batch greedy flow bit for bit
   (same float operation sequence — Float.equal, not approx). *)
let prop_of_graph_bit_identical rng =
  let g, source, sink = Gen.random_digraph rng in
  let m = Online.of_graph g ~source ~sink in
  Float.equal (Greedy.flow g ~source ~sink) (Online.flow m)

(* Documented counterexample: the bit-exact equivalence holds only for
   the canonical (time, qty, src, dst) arrival order.  Two same-instant
   sends from one vertex arriving in the other order yield a different
   (still legal) greedy value, because a sender's availability
   decreases immediately within the instant. *)
let test_online_same_instant_order_dependent () =
  (* s=0 -> a=1 at t=0 (qty 5); a -> b=2 and a -> c=3 both at t=1
     (qty 4 and 3); sink is b.  Canonical order pushes a->b (qty 3 <
     4?  no: qty orders 3 before 4, i.e. a->c first), leaving 2 for
     a->b. *)
  let i time qty = Interaction.make ~time ~qty in
  let push m (src, dst, inter) = ignore (Online.push m ~src ~dst inter) in
  let canonical = [ (0, 1, i 0.0 5.0); (1, 3, i 1.0 3.0); (1, 2, i 1.0 4.0) ] in
  let swapped = [ (0, 1, i 0.0 5.0); (1, 2, i 1.0 4.0); (1, 3, i 1.0 3.0) ] in
  let flow_of order =
    let m = Online.create ~source:0 ~sink:2 in
    List.iter (push m) order;
    ignore (Online.push m ~src:3 ~dst:4 (i 2.0 1.0));
    (* advance past t=1 *)
    Online.flow m
  in
  let g =
    List.fold_left
      (fun g (src, dst, inter) -> Graph.add_interaction g ~src ~dst inter)
      Graph.empty
      (canonical @ [ (3, 4, [ i 2.0 1.0 ] |> List.hd) ])
  in
  (* Canonical arrival order reproduces the batch value... *)
  Check.check_flow "canonical = batch" (Greedy.flow g ~source:0 ~sink:2) (flow_of canonical);
  Check.check_flow "canonical order: qty-3 send drains first" 2.0 (flow_of canonical);
  (* ... while the same multiset of interactions in another legal
     (non-decreasing) order legitimately diverges. *)
  Check.check_flow "swapped order: qty-4 send drains first" 4.0 (flow_of swapped)

let prop_online_buffers_match rng =
  let g, source, sink = Gen.random_digraph rng in
  let m = Online.create ~source ~sink in
  Array.iter (fun (src, dst, i) -> ignore (Online.push m ~src ~dst i)) (Graph.interactions_sorted g);
  Greedy.buffers g ~source ~sink
  |> List.for_all (fun (v, b) ->
         let b' = Online.buffer m v in
         b = b' || Fcmp.approx_eq ~eps:1e-9 b b')

(* --- bounded vertex buffers (extension over the paper) --- *)

let test_buffer_cap_limits_relay () =
  (* s -> v at t=1 delivers 5, but v may hold only 2 until it relays
     at t=3. *)
  let g = Graph.of_edges [ (0, 1, [ (1.0, 5.0) ]); (1, 2, [ (3.0, 5.0) ]) ] in
  let cap c v = if v = 1 then c else infinity in
  Check.check_flow "capped at 2" 2.0
    (TE.max_flow ~buffer_capacity:(cap 2.0) g ~source:0 ~sink:2);
  Check.check_flow "zero capacity" 0.0
    (TE.max_flow ~buffer_capacity:(cap 0.0) g ~source:0 ~sink:2);
  Check.check_flow "large capacity = unbounded" 5.0
    (TE.max_flow ~buffer_capacity:(cap 100.0) g ~source:0 ~sink:2)

let test_buffer_cap_infinite_is_default () =
  Check.check_flow "explicit infinity matches default" 5.0
    (TE.max_flow ~buffer_capacity:(fun _ -> infinity) Paper_examples.fig3
       ~source:Paper_examples.s ~sink:Paper_examples.t)

let test_buffer_cap_validation () =
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Time_expand.build: bad buffer capacity") (fun () ->
      ignore
        (TE.max_flow ~buffer_capacity:(fun _ -> -1.0) Paper_examples.fig3
           ~source:Paper_examples.s ~sink:Paper_examples.t))

let test_buffer_cap_sink_uncapped () =
  (* The sink accumulates regardless of the capacity function. *)
  let g = Graph.of_edges [ (0, 1, [ (1.0, 5.0); (2.0, 5.0) ]) ] in
  Check.check_flow "sink unlimited" 10.0
    (TE.max_flow ~buffer_capacity:(fun _ -> 0.0) g ~source:0 ~sink:1)

let prop_buffer_cap_monotone rng =
  let g, source, sink = Gen.random_dag rng in
  let c1 = float_of_int (Tin_util.Prng.int rng 10) in
  let c2 = c1 +. float_of_int (Tin_util.Prng.int rng 10) in
  Fcmp.approx_le ~eps:1e-6
    (TE.max_flow ~buffer_capacity:(fun _ -> c1) g ~source ~sink)
    (TE.max_flow ~buffer_capacity:(fun _ -> c2) g ~source ~sink)

let prop_buffer_cap_bounded_by_unbounded rng =
  let g, source, sink = Gen.random_digraph rng in
  let c = float_of_int (Tin_util.Prng.int rng 15) in
  Fcmp.approx_le ~eps:1e-6
    (TE.max_flow ~buffer_capacity:(fun _ -> c) g ~source ~sink)
    (TE.max_flow g ~source ~sink)

(* --- decomposition --- *)

let test_decompose_fig3 () =
  let value, paths = Decompose.max_flow_paths P.fig3 ~source:P.s ~sink:P.t in
  Check.check_flow "value" 5.0 value;
  let total = List.fold_left (fun acc p -> acc +. p.Decompose.amount) 0.0 paths in
  Check.check_flow "paths partition the flow" 5.0 total;
  List.iter
    (fun p ->
      match p.Decompose.legs with
      | [] -> Alcotest.fail "empty path"
      | legs ->
          Alcotest.(check int) "starts at source" P.s (List.hd legs).Decompose.src;
          Alcotest.(check int) "ends at sink" P.t (List.nth legs (List.length legs - 1)).Decompose.dst;
          let rec increasing = function
            | a :: (b :: _ as rest) ->
                a.Decompose.time < b.Decompose.time && increasing rest
            | _ -> true
          in
          Alcotest.(check bool) "time increasing" true (increasing legs))
    paths

let test_decompose_chain () =
  let value, paths = Decompose.max_flow_paths P.fig5a ~source:P.s ~sink:P.t in
  Check.check_flow "value" 7.0 value;
  (* All paths traverse the whole chain s -> x -> y -> t. *)
  List.iter
    (fun p ->
      Alcotest.(check int) "three legs" 3 (List.length p.Decompose.legs))
    paths

let test_decompose_zero_flow () =
  let g = Graph.of_edges [ (0, 1, [ (10.0, 5.0) ]); (1, 2, [ (1.0, 5.0) ]) ] in
  let value, paths = Decompose.max_flow_paths g ~source:0 ~sink:2 in
  Check.check_flow "zero" 0.0 value;
  Alcotest.(check int) "no paths" 0 (List.length paths)

let test_per_interaction () =
  let _, paths = Decompose.max_flow_paths P.fig3 ~source:P.s ~sink:P.t in
  let usage = Decompose.per_interaction paths in
  (* No interaction is overdriven: each individual interaction carries
     at most its own quantity. *)
  List.iter
    (fun u ->
      Alcotest.(check bool)
        (Printf.sprintf "(%d,%d,%g) within quantity" u.Decompose.u_src u.Decompose.u_dst
           u.Decompose.u_time)
        true
        (u.Decompose.u_carried <= u.Decompose.u_offered +. 1e-9))
    usage;
  (* The y->t interaction must carry 4 in any maximum flow. *)
  let yt =
    List.find
      (fun u -> u.Decompose.u_src = P.y && u.Decompose.u_dst = P.t && u.Decompose.u_time = 4.0)
      usage
  in
  Check.check_flow "y->t carries 4" 4.0 yt.Decompose.u_carried

(* Regression: two distinct interactions sharing (src, dst, time) must
   stay separate usage rows (the old code keyed attribution by that
   triple and silently merged them into one row carrying their sum). *)
let test_per_interaction_parallel_interactions () =
  let g =
    Graph.empty
    |> (fun g -> Graph.add_interaction g ~src:0 ~dst:1 (Interaction.make ~time:1.0 ~qty:2.0))
    |> (fun g -> Graph.add_interaction g ~src:0 ~dst:1 (Interaction.make ~time:1.0 ~qty:3.0))
    |> fun g -> Graph.add_interaction g ~src:1 ~dst:2 (Interaction.make ~time:2.0 ~qty:5.0)
  in
  let value, paths = Decompose.max_flow_paths g ~source:0 ~sink:2 in
  Check.check_flow "value" 5.0 value;
  let usage = Decompose.per_interaction paths in
  Alcotest.(check int) "three distinct interactions" 3 (List.length usage);
  let on_01 = List.filter (fun u -> u.Decompose.u_src = 0 && u.Decompose.u_dst = 1) usage in
  Alcotest.(check int) "parallel same-time interactions stay separate" 2 (List.length on_01);
  List.iter
    (fun u ->
      Alcotest.(check bool) "carried within own quantity" true
        (u.Decompose.u_carried <= u.Decompose.u_offered +. 1e-9))
    usage;
  Alcotest.(check (list int))
    "distinct scan-order identities" [ 0; 1; 2 ]
    (List.map (fun u -> u.Decompose.u_inter) usage)

(* Regression: a walk that dead-ends on numerical crumbs used to abort
   the whole peeling loop, abandoning arbitrarily large flow on sibling
   branches (observed pre-fix: sum(amounts) = 0 against value = 10 on
   this gadget).  The a->n arc retains ~1.6e-9 (> eps) of flow but n's
   outgoing arcs each carry 0.8e-9 (<= eps, dropped from the peel set),
   so any walk entering n is stuck; the big a->t path must still be
   peeled.  Swept over relabelings because the walk order depends on
   hash order of the arc tables. *)
let test_decompose_crumb_dead_end_continues () =
  for k = 0 to 7 do
    let base = 10 * k in
    let s = base and a = base + 1 and n = base + 2 and t = base + 3 in
    let g =
      List.fold_left
        (fun g (src, dst, time, qty) ->
          Graph.add_interaction g ~src ~dst (Interaction.make ~time ~qty))
        Graph.empty
        [
          (s, a, 1.0, 10.0 +. 1.6e-9);
          (a, n, 2.0, 1.6e-9);
          (a, t, 2.0, 10.0);
          (n, t, 3.0, 0.8e-9);
          (n, t, 4.0, 0.8e-9);
        ]
    in
    let value, paths = Decompose.max_flow_paths g ~source:s ~sink:t in
    let total = List.fold_left (fun acc p -> acc +. p.Decompose.amount) 0.0 paths in
    (* Conservation up to eps-sized crumbs per expanded arc (the
       documented contract): 5 interaction arcs here.  Pre-fix this
       gadget lost the full value=10, not crumbs. *)
    Alcotest.(check bool)
      (Printf.sprintf "base %d: |value - sum| within eps per arc (value=%g sum=%g)" base value
         total)
      true
      (Float.abs (value -. total) <= 1e-9 *. 5.0);
    Alcotest.(check bool)
      (Printf.sprintf "base %d: the big path was peeled" base)
      true
      (total > 9.0)
  done

let prop_decompose_partitions rng =
  let g, source, sink = Gen.random_dag rng in
  let value, paths = Decompose.max_flow_paths g ~source ~sink in
  let total = List.fold_left (fun acc p -> acc +. p.Decompose.amount) 0.0 paths in
  Fcmp.approx_eq ~eps:1e-5 value total

let prop_decompose_respects_quantities rng =
  let g, source, sink = Gen.random_digraph rng in
  let _, paths = Decompose.max_flow_paths g ~source ~sink in
  Decompose.per_interaction paths
  |> List.for_all (fun u ->
         (* Usage is keyed by interaction identity, so each row is
            bounded by its own interaction's quantity. *)
         u.Decompose.u_offered > 0.0 && u.Decompose.u_carried <= u.Decompose.u_offered +. 1e-6)

let prop_decompose_legs_temporal rng =
  let g, source, sink = Gen.random_digraph rng in
  let _, paths = Decompose.max_flow_paths g ~source ~sink in
  List.for_all
    (fun p ->
      let rec increasing = function
        | a :: (b :: _ as rest) -> a.Decompose.time < b.Decompose.time && increasing rest
        | _ -> true
      in
      increasing p.Decompose.legs
      &&
      match p.Decompose.legs with
      | [] -> false
      | legs ->
          (List.hd legs).Decompose.src = source
          && (List.nth legs (List.length legs - 1)).Decompose.dst = sink)
    paths

let () =
  Alcotest.run "extensions"
    [
      ( "window",
        [
          Alcotest.test_case "identity" `Quick test_restrict_full_identity;
          Alcotest.test_case "drops out-of-window" `Quick test_restrict_drops;
          Alcotest.test_case "windowed flows" `Quick test_windowed_flow;
          Alcotest.test_case "greedy profile" `Quick test_greedy_profile;
          Alcotest.test_case "max-flow profile" `Quick test_max_flow_profile;
          Check.seeded_property ~count:100 "window monotone" prop_window_monotone;
          Check.seeded_property ~count:100 "window = TE on restricted" prop_window_equals_te_on_restricted;
          Check.seeded_property ~count:60 "profile nondecreasing" prop_profile_nondecreasing;
        ] );
      ( "online",
        [
          Alcotest.test_case "matches batch (fig3)" `Quick test_online_matches_batch_fig3;
          Alcotest.test_case "running flow" `Quick test_online_running_flow;
          Alcotest.test_case "strict same instant" `Quick test_online_strict_same_instant;
          Alcotest.test_case "ordering enforced" `Quick test_online_rejects_out_of_order;
          Check.seeded_property "streaming = batch greedy" prop_online_matches_batch;
          Check.seeded_property "of_graph replay bit-identical" prop_of_graph_bit_identical;
          Alcotest.test_case "same-instant order dependence" `Quick
            test_online_same_instant_order_dependent;
          Check.seeded_property ~count:100 "streaming buffers match" prop_online_buffers_match;
        ] );
      ( "buffer-caps",
        [
          Alcotest.test_case "cap limits relay" `Quick test_buffer_cap_limits_relay;
          Alcotest.test_case "infinite = default" `Quick test_buffer_cap_infinite_is_default;
          Alcotest.test_case "validation" `Quick test_buffer_cap_validation;
          Alcotest.test_case "sink uncapped" `Quick test_buffer_cap_sink_uncapped;
          Check.seeded_property ~count:100 "monotone in capacity" prop_buffer_cap_monotone;
          Check.seeded_property ~count:100 "bounded <= unbounded" prop_buffer_cap_bounded_by_unbounded;
        ] );
      ( "decompose",
        [
          Alcotest.test_case "figure 3" `Quick test_decompose_fig3;
          Alcotest.test_case "chain" `Quick test_decompose_chain;
          Alcotest.test_case "zero flow" `Quick test_decompose_zero_flow;
          Alcotest.test_case "per-interaction usage" `Quick test_per_interaction;
          Alcotest.test_case "parallel same-(src,dst,time) interactions" `Quick
            test_per_interaction_parallel_interactions;
          Alcotest.test_case "crumb dead end keeps peeling" `Quick
            test_decompose_crumb_dead_end_continues;
          Check.seeded_property "amounts partition the flow" prop_decompose_partitions;
          Check.seeded_property "quantities respected" prop_decompose_respects_quantities;
          Check.seeded_property "legs temporal and anchored" prop_decompose_legs_temporal;
        ] );
    ]
