(* The multicore batch driver: parallel results must be exactly the
   sequential ones, across job/chunk shapes, with exceptions
   propagated. *)

open Tin_testlib
module Batch = Tin_core.Batch
module Pipeline = Tin_core.Pipeline
module Prng = Tin_util.Prng

let test_map_matches_sequential () =
  let items = Array.init 37 (fun i -> i) in
  let f x = (x * x) + 1 in
  let expected = Array.map f items in
  List.iter
    (fun (jobs, chunk) ->
      Alcotest.(check (array int))
        (Printf.sprintf "jobs=%d chunk=%d" jobs chunk)
        expected
        (Batch.map ~jobs ~chunk f items))
    [ (1, 4); (2, 1); (2, 4); (3, 5); (4, 2); (8, 3); (64, 4) ]

let test_map_empty () =
  Alcotest.(check (array int)) "empty" [||] (Batch.map ~jobs:4 (fun x -> x) [||])

let test_map_default_jobs () =
  let items = Array.init 10 string_of_int in
  Alcotest.(check (array string)) "defaults" items (Batch.map (fun s -> s) items)

exception Boom of int

let test_map_propagates_exception () =
  let items = Array.init 20 (fun i -> i) in
  try
    ignore (Batch.map ~jobs:4 ~chunk:2 (fun i -> if i = 13 then raise (Boom i) else i) items);
    Alcotest.fail "expected Boom"
  with Boom i -> Alcotest.(check int) "failing item" 13 i

let test_map_bad_args () =
  List.iter
    (fun f -> try ignore (f ()); Alcotest.fail "expected Invalid_argument" with
      | Invalid_argument _ -> ())
    [
      (fun () -> Batch.map ~jobs:0 (fun x -> x) [| 1 |]);
      (fun () -> Batch.map ~chunk:0 (fun x -> x) [| 1 |]);
    ]

(* --- map_reduce --- *)

let sum_reduce ~jobs ~chunk ?stop n =
  Batch.map_reduce ~jobs ~chunk ?stop ~n
    ~init:(fun () -> ref 0)
    ~body:(fun acc i -> acc := !acc + (i * i))
    ~merge:(fun a b -> ref (!a + !b))
    ()

let test_map_reduce_matches_sequential () =
  let n = 57 in
  let expected = ref 0 in
  for i = 0 to n - 1 do
    expected := !expected + (i * i)
  done;
  List.iter
    (fun (jobs, chunk) ->
      Alcotest.(check int)
        (Printf.sprintf "jobs=%d chunk=%d" jobs chunk)
        !expected
        !(sum_reduce ~jobs ~chunk n))
    [ (1, 4); (2, 1); (2, 16); (3, 5); (4, 2); (8, 3); (64, 7) ]

let test_map_reduce_order_preserved () =
  (* Collecting indices into lists must yield 0..n-1 in order for every
     job count: chunk accumulators merge in index order. *)
  let collect jobs =
    Batch.map_reduce ~jobs ~chunk:3 ~n:29
      ~init:(fun () -> ref [])
      ~body:(fun acc i -> acc := i :: !acc)
      ~merge:(fun a b -> ref (List.rev_append (List.rev !b) !a))
      ()
  in
  let expected = List.rev (List.init 29 (fun i -> i)) in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int)) (Printf.sprintf "jobs=%d" jobs) expected !(collect jobs))
    [ 1; 2; 4; 16 ]

let test_map_reduce_empty () =
  Alcotest.(check int) "n=0 returns init" 0 !(sum_reduce ~jobs:4 ~chunk:4 0)

let test_map_reduce_stop () =
  (* A pre-set stop flag means no chunk is ever claimed. *)
  let stop = Atomic.make true in
  Alcotest.(check int) "nothing folded" 0 !(sum_reduce ~jobs:2 ~chunk:4 ~stop 100);
  (* A stop raised from within ends early but keeps what was folded;
     with jobs=1 the cut is deterministic: indices 0..9 inclusive. *)
  let stop = Atomic.make false in
  let r =
    Batch.map_reduce ~jobs:1 ~chunk:5 ~stop ~n:100
      ~init:(fun () -> ref 0)
      ~body:(fun acc i ->
        if i = 9 then Atomic.set stop true;
        acc := !acc + 1)
      ~merge:(fun a b -> ref (!a + !b))
      ()
  in
  Alcotest.(check int) "stopped after index 9" 10 !r

let test_map_reduce_propagates_exception () =
  try
    ignore
      (Batch.map_reduce ~jobs:4 ~chunk:2 ~n:50
         ~init:(fun () -> ref 0)
         ~body:(fun _ i -> if i = 31 then raise (Boom i))
         ~merge:(fun a _ -> a)
         ());
    Alcotest.fail "expected Boom"
  with Boom i -> Alcotest.(check int) "failing index" 31 i

let test_map_reduce_bad_args () =
  let call ?(jobs = 1) ?(chunk = 1) n () =
    ignore
      (Batch.map_reduce ~jobs ~chunk ~n
         ~init:(fun () -> ())
         ~body:(fun () _ -> ())
         ~merge:(fun () () -> ())
         ())
  in
  List.iter
    (fun f -> try f (); Alcotest.fail "expected Invalid_argument" with
      | Invalid_argument _ -> ())
    [ call ~jobs:0 5; call ~chunk:0 5; call (-1) ]

let test_max_flows_matches_sequential () =
  let rng = Prng.create ~seed:7 in
  let problems =
    List.init 24 (fun _ ->
        let graph, source, sink = Gen.random_dag rng in
        { Batch.graph; source; sink })
  in
  let sequential =
    List.map
      (fun (p : Batch.problem) ->
        Pipeline.compute Pipeline.Pre_sim p.Batch.graph ~source:p.Batch.source ~sink:p.Batch.sink)
      problems
  in
  List.iter
    (fun jobs ->
      let parallel = Batch.max_flows ~jobs ~chunk:2 problems in
      List.iteri
        (fun i (a, b) -> Check.check_flow (Printf.sprintf "jobs=%d problem %d" jobs i) a b)
        (List.combine sequential parallel))
    [ 1; 2; 4 ]

let test_max_flows_solver_and_method () =
  let rng = Prng.create ~seed:11 in
  let problems =
    List.init 12 (fun _ ->
        let graph, source, sink = Gen.random_dag rng in
        { Batch.graph; source; sink })
  in
  let via_lp_sparse = Batch.max_flows ~jobs:3 ~solver:`Sparse ~method_:Pipeline.Lp problems in
  let via_presim = Batch.max_flows ~jobs:3 problems in
  List.iteri
    (fun i (a, b) -> Check.check_flow (Printf.sprintf "problem %d" i) a b)
    (List.combine via_presim via_lp_sparse)

let () =
  Alcotest.run "batch"
    [
      ( "map",
        [
          Alcotest.test_case "matches sequential" `Quick test_map_matches_sequential;
          Alcotest.test_case "empty input" `Quick test_map_empty;
          Alcotest.test_case "default jobs" `Quick test_map_default_jobs;
          Alcotest.test_case "exception propagation" `Quick test_map_propagates_exception;
          Alcotest.test_case "argument validation" `Quick test_map_bad_args;
        ] );
      ( "map_reduce",
        [
          Alcotest.test_case "matches sequential fold" `Quick test_map_reduce_matches_sequential;
          Alcotest.test_case "index-order merge" `Quick test_map_reduce_order_preserved;
          Alcotest.test_case "empty range" `Quick test_map_reduce_empty;
          Alcotest.test_case "cooperative stop" `Quick test_map_reduce_stop;
          Alcotest.test_case "exception propagation" `Quick test_map_reduce_propagates_exception;
          Alcotest.test_case "argument validation" `Quick test_map_reduce_bad_args;
        ] );
      ( "max_flows",
        [
          Alcotest.test_case "matches sequential pipeline" `Quick test_max_flows_matches_sequential;
          Alcotest.test_case "solver/method knobs" `Quick test_max_flows_solver_and_method;
        ] );
    ]
