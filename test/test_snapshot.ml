(* Binary snapshot format: save/load round-trips (property-based and
   edge cases), every corruption class as a clean [Error] with file
   context, magic sniffing, and the format-agnostic [Io] loaders'
   auto-detection. *)

open Tin_testlib

let i_ t q = Interaction.make ~time:t ~qty:q

let compact =
  Alcotest.testable (fun ppf c -> Graph.pp ppf (Compact.to_graph c)) Compact.equal

(* Save [c], run [f] on the temp path, clean up. *)
let with_snapshot c f =
  let path = Filename.temp_file "tin_snap" ".tinb" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Snapshot.save path c;
      f path)

let with_bytes_file bytes f =
  let path = Filename.temp_file "tin_snap" ".tinb" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc bytes);
      f path)

let read_bytes path =
  Bytes.of_string (In_channel.with_open_bin path In_channel.input_all)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let check_error ~needle path =
  match Snapshot.load_result path with
  | Ok _ -> Alcotest.failf "expected error mentioning %S, got Ok" needle
  | Error e ->
      Alcotest.(check bool)
        (Printf.sprintf "message %S mentions %S" e.Snapshot.message needle)
        true
        (contains e.Snapshot.message needle);
      (* The rendered diagnostic must carry the file name. *)
      Alcotest.(check bool) "file context" true
        (contains (Snapshot.error_to_string e) (Filename.basename path))

(* --- round-trips ---------------------------------------------------- *)

let test_roundtrip_empty () =
  let c = Compact.of_entries [] in
  with_snapshot c (fun path ->
      Alcotest.check compact "empty round-trip" c (Snapshot.load path))

let test_roundtrip_isolated_vertices () =
  let c = Compact.of_entries ~vertices:[ 7; 3; 11 ] [] in
  with_snapshot c (fun path ->
      let c' = Snapshot.load path in
      Alcotest.check compact "isolated vertices survive" c c';
      Alcotest.(check int) "three vertices" 3 (Compact.n_vertices c'))

let test_roundtrip_self_loop () =
  (* Graph.t cannot represent self-loops, but the substrate (and hence
     the snapshot format) must round-trip them. *)
  let c = Compact.of_entries [ (5, 5, i_ 1.0 2.0); (5, 6, i_ 2.0 3.0) ] in
  with_snapshot c (fun path ->
      let c' = Snapshot.load path in
      Alcotest.(check bool) "equal" true (Compact.equal c c');
      Alcotest.(check bool) "self-loop kept" true (Compact.has_self_loops c'))

let test_roundtrip_duplicate_timestamps () =
  let c =
    Compact.of_entries
      [ (0, 1, i_ 1.0 2.0); (0, 1, i_ 1.0 2.0); (1, 2, i_ 1.0 2.0); (0, 2, i_ 1.0 1.0) ]
  in
  with_snapshot c (fun path ->
      Alcotest.check compact "duplicate timestamps round-trip" c (Snapshot.load path))

let prop_roundtrip rng =
  let g, _, _ = Gen.random_dag rng in
  let c = Compact.of_graph g in
  with_snapshot c (fun path -> Compact.equal c (Snapshot.load path))

let prop_roundtrip_through_graph rng =
  (* save -> load -> to_graph must reproduce the original graph, not
     just an equal substrate. *)
  let g, _, _ = Gen.random_digraph rng in
  let c = Compact.of_graph g in
  with_snapshot c (fun path -> Graph.equal g (Compact.to_graph (Snapshot.load path)))

(* --- corruption classes --------------------------------------------- *)

let test_bad_magic () =
  with_bytes_file (Bytes.of_string "not a snapshot at all") (fun path ->
      check_error ~needle:"bad magic" path)

let test_truncated_header () =
  with_bytes_file (Bytes.of_string "TINB\x01\x00") (fun path ->
      check_error ~needle:"truncated header" path)

let test_wrong_version () =
  let c = Compact.of_entries [ (0, 1, i_ 1.0 2.0) ] in
  with_snapshot c (fun orig ->
      let buf = read_bytes orig in
      (* The version check fires before the checksum, so the stale CRC
         does not mask it. *)
      Bytes.set_int32_le buf 4 99l;
      with_bytes_file buf (fun path ->
          check_error ~needle:"unsupported snapshot version 99" path))

let test_truncated_payload () =
  let c = Compact.of_entries [ (0, 1, i_ 1.0 2.0); (1, 2, i_ 2.0 3.0) ] in
  with_snapshot c (fun orig ->
      let buf = read_bytes orig in
      let cut = Bytes.sub buf 0 (Bytes.length buf - 7) in
      with_bytes_file cut (fun path -> check_error ~needle:"truncated snapshot" path))

let test_checksum_mismatch () =
  let c = Compact.of_entries [ (0, 1, i_ 1.0 2.0) ] in
  with_snapshot c (fun orig ->
      let buf = read_bytes orig in
      (* Flip one payload byte; size and header stay plausible. *)
      let k = 40 in
      Bytes.set buf k (Char.chr (Char.code (Bytes.get buf k) lxor 0xFF));
      with_bytes_file buf (fun path -> check_error ~needle:"checksum mismatch" path))

let test_implausible_counts () =
  let c = Compact.of_entries [ (0, 1, i_ 1.0 2.0) ] in
  with_snapshot c (fun orig ->
      let buf = read_bytes orig in
      Bytes.set_int64_le buf 24 Int64.max_int;
      with_bytes_file buf (fun path -> check_error ~needle:"implausible counts" path))

let test_load_raises_with_context () =
  with_bytes_file (Bytes.of_string "garbage") (fun path ->
      match Snapshot.load path with
      | _ -> Alcotest.fail "expected Snapshot.Error"
      | exception Snapshot.Error e ->
          Alcotest.(check string) "file recorded" path e.Snapshot.file;
          Alcotest.(check bool) "message" true (contains e.Snapshot.message "bad magic"))

let test_missing_file () =
  match Snapshot.load_result "/nonexistent/dir/missing.tinb" with
  | Ok _ -> Alcotest.fail "expected error"
  | Error e -> Alcotest.(check string) "file recorded" "/nonexistent/dir/missing.tinb" e.Snapshot.file

let test_corrupt_fixture () =
  (* Checked-in fixture: a valid one-edge snapshot with one payload
     byte flipped (checksum mismatch).  Under `dune runtest` the cwd is
     _build/default/test. *)
  let path =
    List.find_opt Sys.file_exists [ "data/corrupt.tinb"; "test/data/corrupt.tinb" ]
    |> Option.value ~default:"data/corrupt.tinb"
  in
  check_error ~needle:"checksum mismatch" path;
  (* The auto-detecting Io loader reports the same failure as a
     whole-file parse error (line 0). *)
  (match Io.load_result path with
  | Ok _ -> Alcotest.fail "Io.load_result accepted corrupt snapshot"
  | Error e ->
      Alcotest.(check int) "whole-file error" 0 e.Io.line;
      Alcotest.(check bool) "message" true (contains e.Io.message "checksum mismatch"));
  match Io.load path with
  | exception Io.Parse_error { line = 0; _ } -> ()
  | exception e -> Alcotest.failf "unexpected exception %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "expected Parse_error"

(* --- sniffing and auto-detection ------------------------------------ *)

let test_sniff () =
  let c = Compact.of_entries [ (0, 1, i_ 1.0 2.0) ] in
  with_snapshot c (fun path -> Alcotest.(check bool) "snapshot sniffs" true (Snapshot.sniff path));
  with_bytes_file (Bytes.of_string "0,1,1.0,2.0\n") (fun path ->
      Alcotest.(check bool) "csv does not sniff" false (Snapshot.sniff path));
  Alcotest.(check bool) "missing file" false (Snapshot.sniff "/nonexistent/x.tinb");
  with_bytes_file (Bytes.of_string "TI") (fun path ->
      Alcotest.(check bool) "short file" false (Snapshot.sniff path))

let test_io_autodetect_ignores_extension () =
  (* Detection is by magic, not extension: a snapshot stored as .csv
     still loads as a snapshot. *)
  let g = Paper_examples.fig3 in
  let c = Compact.of_graph g in
  let path = Filename.temp_file "tin_snap" ".csv" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Snapshot.save path c;
      Alcotest.check compact "load_compact" c (Io.load_compact path);
      Alcotest.check Check.graph "load_graph" g (Io.load_graph path);
      let net = Io.load path in
      Alcotest.(check int) "load (static)" (Graph.n_interactions g) (Static.n_interactions net))

let test_io_load_graph_rejects_self_loop_snapshot () =
  let c = Compact.of_entries [ (3, 3, i_ 1.0 2.0) ] in
  with_snapshot c (fun path ->
      (* The compact target accepts it... *)
      Alcotest.(check bool) "load_compact ok" true
        (Compact.equal c (Io.load_compact path));
      (* ...the persistent-graph target cannot represent it. *)
      match Io.load_graph_result path with
      | Ok _ -> Alcotest.fail "expected self-loop rejection"
      | Error e ->
          Alcotest.(check int) "whole-file error" 0 e.Io.line;
          Alcotest.(check bool) "mentions self-loop" true (contains e.Io.message "self-loop"))

let prop_io_csv_and_snapshot_agree rng =
  (* The two on-disk formats load to equal substrates through the
     format-agnostic loader.  CSV cannot represent isolated vertices,
     so the snapshot is taken from the CSV round-trip (which drops
     them) rather than from the generated graph directly. *)
  let g, _, _ = Gen.random_dag rng in
  let csv = Filename.temp_file "tin_snap" ".csv" in
  let snap = Filename.temp_file "tin_snap" ".tinb" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove csv with Sys_error _ -> ());
      try Sys.remove snap with Sys_error _ -> ())
    (fun () ->
      Io.save_csv csv g;
      let c = Io.load_compact csv in
      Snapshot.save snap c;
      Compact.equal (Io.load_compact csv) (Io.load_compact snap))

(* --- column validation (of_columns) --------------------------------- *)

let test_of_columns_rejects_unsorted () =
  let cols =
    {
      Compact.c_labels = [| 0; 1 |];
      c_src = [| 0; 0 |];
      c_dst = [| 1; 1 |];
      c_time = Float.Array.of_list [ 2.0; 1.0 ];
      c_qty = Float.Array.of_list [ 1.0; 1.0 ];
    }
  in
  match Compact.of_columns cols with
  | Ok _ -> Alcotest.fail "accepted unsorted columns"
  | Error m -> Alcotest.(check bool) "mentions scan order" true (contains m "scan order")

let test_of_columns_rejects_bad_ids () =
  let cols =
    {
      Compact.c_labels = [| 0; 1 |];
      c_src = [| 0 |];
      c_dst = [| 5 |];
      c_time = Float.Array.of_list [ 1.0 ];
      c_qty = Float.Array.of_list [ 1.0 ];
    }
  in
  match Compact.of_columns cols with
  | Ok _ -> Alcotest.fail "accepted out-of-range id"
  | Error m -> Alcotest.(check bool) "mentions range" true (contains m "out of range")

let test_of_columns_rejects_decreasing_labels () =
  let cols =
    {
      Compact.c_labels = [| 4; 2 |];
      c_src = [||];
      c_dst = [||];
      c_time = Float.Array.create 0;
      c_qty = Float.Array.create 0;
    }
  in
  match Compact.of_columns cols with
  | Ok _ -> Alcotest.fail "accepted decreasing labels"
  | Error m -> Alcotest.(check bool) "mentions labels" true (contains m "label")

let () =
  Alcotest.run "snapshot"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "empty" `Quick test_roundtrip_empty;
          Alcotest.test_case "isolated vertices" `Quick test_roundtrip_isolated_vertices;
          Alcotest.test_case "self-loop" `Quick test_roundtrip_self_loop;
          Alcotest.test_case "duplicate timestamps" `Quick test_roundtrip_duplicate_timestamps;
          Check.seeded_property ~count:60 "random DAGs round-trip" prop_roundtrip;
          Check.seeded_property ~count:60 "round-trip through Graph.t" prop_roundtrip_through_graph;
        ] );
      ( "corruption",
        [
          Alcotest.test_case "bad magic" `Quick test_bad_magic;
          Alcotest.test_case "truncated header" `Quick test_truncated_header;
          Alcotest.test_case "wrong version" `Quick test_wrong_version;
          Alcotest.test_case "truncated payload" `Quick test_truncated_payload;
          Alcotest.test_case "checksum mismatch" `Quick test_checksum_mismatch;
          Alcotest.test_case "implausible counts" `Quick test_implausible_counts;
          Alcotest.test_case "load raises with context" `Quick test_load_raises_with_context;
          Alcotest.test_case "missing file" `Quick test_missing_file;
          Alcotest.test_case "committed fixture" `Quick test_corrupt_fixture;
        ] );
      ( "detection",
        [
          Alcotest.test_case "sniff" `Quick test_sniff;
          Alcotest.test_case "extension-blind autodetect" `Quick test_io_autodetect_ignores_extension;
          Alcotest.test_case "self-loop snapshot vs Graph.t" `Quick
            test_io_load_graph_rejects_self_loop_snapshot;
          Check.seeded_property ~count:40 "csv and snapshot load equal"
            prop_io_csv_and_snapshot_agree;
        ] );
      ( "columns",
        [
          Alcotest.test_case "unsorted rejected" `Quick test_of_columns_rejects_unsorted;
          Alcotest.test_case "bad ids rejected" `Quick test_of_columns_rejects_bad_ids;
          Alcotest.test_case "decreasing labels rejected" `Quick
            test_of_columns_rejects_decreasing_labels;
        ] );
    ]
