(* Observability substrate: counter exactness across domains, span
   nesting, disabled-path invisibility, and the Chrome-trace / metrics
   JSON exporters (schema-checked with a minimal JSON reader — the
   repo deliberately has no JSON dependency). *)

module Obs = Tin_obs.Obs
module Batch = Tin_core.Batch

let with_enabled f =
  Obs.reset ();
  Obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
    f

(* --- minimal JSON reader (tests only) ------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Bad of string

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\n' | '\t' | '\r') ->
          incr pos;
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      if !pos < n && s.[!pos] = c then incr pos else fail (Printf.sprintf "expected '%c'" c)
    in
    let literal lit v =
      let k = String.length lit in
      if !pos + k <= n && String.sub s !pos k = lit then begin
        pos := !pos + k;
        v
      end
      else fail ("expected " ^ lit)
    in
    let string_lit () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            incr pos;
            if !pos >= n then fail "bad escape";
            (match s.[!pos] with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'n' -> Buffer.add_char b '\n'
            | 't' -> Buffer.add_char b '\t'
            | 'r' -> Buffer.add_char b '\r'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'u' ->
                (* Decode to UTF-8 so escaped names round-trip exactly
                   (the exporters escape control characters as \u00XX). *)
                if !pos + 4 >= n then fail "bad unicode escape";
                let hex c =
                  match c with
                  | '0' .. '9' -> Char.code c - Char.code '0'
                  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
                  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
                  | _ -> fail "bad unicode escape"
                in
                let cp =
                  (hex s.[!pos + 1] lsl 12)
                  lor (hex s.[!pos + 2] lsl 8)
                  lor (hex s.[!pos + 3] lsl 4)
                  lor hex s.[!pos + 4]
                in
                if cp >= 0xD800 && cp <= 0xDFFF then fail "surrogate escape"
                else if cp < 0x80 then Buffer.add_char b (Char.chr cp)
                else if cp < 0x800 then begin
                  Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
                  Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
                end
                else begin
                  Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
                  Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
                  Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
                end;
                pos := !pos + 4
            | _ -> fail "bad escape");
            incr pos;
            go ()
        | c ->
            Buffer.add_char b c;
            incr pos;
            go ()
      in
      go ();
      Buffer.contents b
    in
    let number () =
      let start = !pos in
      let is_num c =
        (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
      in
      while !pos < n && is_num s.[!pos] do
        incr pos
      done;
      if !pos = start then fail "expected a number";
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> fail "malformed number"
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | Some '{' ->
          incr pos;
          skip_ws ();
          if peek () = Some '}' then begin
            incr pos;
            Obj []
          end
          else
            let rec fields acc =
              skip_ws ();
              let k = string_lit () in
              skip_ws ();
              expect ':';
              let v = value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  incr pos;
                  fields ((k, v) :: acc)
              | Some '}' ->
                  incr pos;
                  List.rev ((k, v) :: acc)
              | _ -> fail "expected ',' or '}'"
            in
            Obj (fields [])
      | Some '[' ->
          incr pos;
          skip_ws ();
          if peek () = Some ']' then begin
            incr pos;
            Arr []
          end
          else
            let rec elems acc =
              let v = value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  incr pos;
                  elems (v :: acc)
              | Some ']' ->
                  incr pos;
                  List.rev (v :: acc)
              | _ -> fail "expected ',' or ']'"
            in
            Arr (elems [])
      | Some '"' -> Str (string_lit ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> Num (number ())
      | None -> fail "unexpected end of input"
    in
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let mem k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

  let str = function Str s -> Some s | _ -> None

  let num = function Num f -> Some f | _ -> None
end

(* --- counters ------------------------------------------------------ *)

let test_disabled_is_invisible () =
  Obs.reset ();
  Alcotest.(check bool) "disabled by default here" false (Obs.tracking ());
  let c = Obs.Counter.make "test.disabled.counter" in
  let h = Obs.Histogram.make "test.disabled.histogram" in
  Obs.Counter.incr c;
  Obs.Counter.add c 41;
  Obs.Histogram.observe h 3.0;
  let r = Obs.Span.with_ "test.disabled.span" ~args:[ ("k", "v") ] (fun () -> 7) in
  Alcotest.(check int) "span still runs the body" 7 r;
  Alcotest.(check int) "counter stays at zero" 0 (Obs.Counter.value c);
  Alcotest.(check int) "histogram records nothing" 0 (Obs.Histogram.summary h).Tin_util.Stats.count;
  Alcotest.(check int) "no spans recorded" 0 (List.length (Obs.trace_events ()))

let test_counter_basics () =
  with_enabled (fun () ->
      let c = Obs.Counter.make "test.basics.counter" in
      Obs.Counter.incr c;
      Obs.Counter.add c 10;
      Alcotest.(check int) "value merges" 11 (Obs.Counter.value c);
      Alcotest.(check string) "name" "test.basics.counter" (Obs.Counter.name c);
      (* Same name, same counter — make is a registry lookup. *)
      let c' = Obs.Counter.make "test.basics.counter" in
      Obs.Counter.incr c';
      Alcotest.(check int) "shared identity" 12 (Obs.Counter.value c);
      Alcotest.(check bool) "listed" true
        (List.mem_assoc "test.basics.counter" (Obs.counters ()));
      Alcotest.check_raises "kind clash rejected"
        (Invalid_argument "Obs: metric name registered with another kind: test.basics.counter")
        (fun () -> ignore (Obs.Histogram.make "test.basics.counter"));
      Obs.reset ();
      Alcotest.(check int) "reset zeroes in place" 0 (Obs.Counter.value c))

let test_histogram_summary () =
  with_enabled (fun () ->
      let h = Obs.Histogram.make "test.hist" in
      List.iter (Obs.Histogram.observe h) [ 1.0; 2.0; 3.0; 4.0 ];
      let s = Obs.Histogram.summary h in
      Alcotest.(check int) "count" 4 s.Tin_util.Stats.count;
      Alcotest.(check (float 1e-9)) "mean" 2.5 s.Tin_util.Stats.mean;
      Alcotest.(check (float 1e-9)) "min" 1.0 s.Tin_util.Stats.min;
      Alcotest.(check (float 1e-9)) "max" 4.0 s.Tin_util.Stats.max)

(* Counters must be exact — not approximate — under parallel recording:
   every domain writes its own shard, merged on read. *)
let prop_parallel_counter_exact =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:25 ~name:"counters exact under Batch.map_reduce jobs>1"
       QCheck.(pair (int_bound 400) (int_range 2 6))
       (fun (n, jobs) ->
         with_enabled (fun () ->
             let items = Obs.Counter.make "test.mr.items" in
             let weight = Obs.Counter.make "test.mr.weight" in
             let acc =
               Batch.map_reduce ~jobs ~chunk:3 ~n
                 ~init:(fun () -> ref 0)
                 ~body:(fun acc i ->
                   Obs.Counter.incr items;
                   Obs.Counter.add weight i;
                   acc := !acc + i)
                 ~merge:(fun a b -> ref (!a + !b))
                 ()
             in
             let expected_weight = n * (n - 1) / 2 in
             !acc = expected_weight
             && Obs.Counter.value items = n
             && Obs.Counter.value weight = expected_weight)))

let test_counter_negative_add () =
  Obs.reset ();
  let c = Obs.Counter.make "test.negative.counter" in
  let expect_raise () =
    Alcotest.check_raises "negative increment rejected"
      (Invalid_argument "Obs.Counter.add: negative increment on a monotone counter") (fun () ->
        Obs.Counter.add c (-1))
  in
  (* The monotonicity guard fires even while recording is disabled:
     a call-site bug must not hide behind the off switch. *)
  expect_raise ();
  with_enabled (fun () ->
      expect_raise ();
      Obs.Counter.add c 0;
      Alcotest.(check int) "zero is a no-op" 0 (Obs.Counter.value c))

(* --- gauges -------------------------------------------------------- *)

let test_gauge_basics () =
  with_enabled (fun () ->
      let g = Obs.Gauge.make "test.gauge.basics" in
      Alcotest.(check bool) "unset reads NaN" true (Float.is_nan (Obs.Gauge.value g));
      Obs.Gauge.set g 4.0;
      Obs.Gauge.add g 1.5;
      Alcotest.(check (float 1e-9)) "set then add" 5.5 (Obs.Gauge.value g);
      Obs.Gauge.set g 2.0;
      Alcotest.(check (float 1e-9)) "last write wins" 2.0 (Obs.Gauge.value g);
      Alcotest.(check string) "name" "test.gauge.basics" (Obs.Gauge.name g);
      Alcotest.(check bool) "listed" true (List.mem_assoc "test.gauge.basics" (Obs.gauges ()));
      Obs.reset ();
      Alcotest.(check bool) "reset unsets" true (Float.is_nan (Obs.Gauge.value g)))

let test_gauge_last_write_wins_across_domains () =
  with_enabled (fun () ->
      let g = Obs.Gauge.make "test.gauge.domains" in
      Obs.Gauge.set g 1.0;
      (* Each write lands in the writing domain's own cell; the read
         must still pick the chronologically freshest one. *)
      Domain.join (Domain.spawn (fun () -> Obs.Gauge.set g 7.0));
      Alcotest.(check (float 1e-9)) "another domain's later set wins" 7.0 (Obs.Gauge.value g);
      Obs.Gauge.set g 3.0;
      Alcotest.(check (float 1e-9)) "original domain reclaims" 3.0 (Obs.Gauge.value g))

(* --- labeled families ---------------------------------------------- *)

let test_labeled_families () =
  with_enabled (fun () ->
      let fam = Obs.Counter.make_labeled "test.fam.ops" ~labels:[ "solver" ] in
      let a = Obs.Counter.labeled fam [ "a" ] in
      let b = Obs.Counter.labeled fam [ "b" ] in
      Obs.Counter.incr a;
      Obs.Counter.add b 2;
      Alcotest.(check string) "member name encodes labels" "test.fam.ops{solver=\"a\"}"
        (Obs.Counter.name a);
      Alcotest.(check int) "members are independent" 1 (Obs.Counter.value a);
      Alcotest.(check int) "members are independent (b)" 2 (Obs.Counter.value b);
      (* Same label values, same member. *)
      Obs.Counter.incr (Obs.Counter.labeled fam [ "a" ]);
      Alcotest.(check int) "shared identity" 2 (Obs.Counter.value a);
      (* Re-registration with the same schema is fine ... *)
      ignore (Obs.Counter.make_labeled "test.fam.ops" ~labels:[ "solver" ]);
      (* ... with another schema or arity it is not. *)
      Alcotest.check_raises "schema clash"
        (Invalid_argument "Obs: family registered with different labels: test.fam.ops")
        (fun () -> ignore (Obs.Counter.make_labeled "test.fam.ops" ~labels:[ "other" ]));
      Alcotest.check_raises "arity mismatch"
        (Invalid_argument "Obs: family test.fam.ops expects 1 label value(s), got 2") (fun () ->
          ignore (Obs.Counter.labeled fam [ "a"; "b" ]));
      Alcotest.check_raises "empty label schema"
        (Invalid_argument "Obs: labeled family needs at least one label: test.fam.empty")
        (fun () -> ignore (Obs.Counter.make_labeled "test.fam.empty" ~labels:[]));
      (* A counter member with the same encoded name as an existing
         gauge member is a kind clash, like unlabeled metrics. *)
      let gfam = Obs.Gauge.make_labeled "test.fam.g" ~labels:[ "k" ] in
      Obs.Gauge.set (Obs.Gauge.labeled gfam [ "x" ]) 1.0;
      let cfam = Obs.Counter.make_labeled "test.fam.g" ~labels:[ "k" ] in
      Alcotest.check_raises "kind clash on member"
        (Invalid_argument "Obs: metric name registered with another kind: test.fam.g{k=\"x\"}")
        (fun () -> ignore (Obs.Counter.labeled cfam [ "x" ])))

(* --- spans --------------------------------------------------------- *)

let test_spans_nest () =
  with_enabled (fun () ->
      let r =
        Obs.Span.with_ "outer" (fun () ->
            let x = Obs.Span.with_ "inner" ~args:[ ("k", "v") ] (fun () -> 41) in
            x + 1)
      in
      Alcotest.(check int) "body result" 42 r;
      match Obs.trace_events () with
      | [ a; b ] ->
          (* Sorted by start time: outer opened first. *)
          Alcotest.(check string) "outer first" "outer" a.Obs.name;
          Alcotest.(check string) "inner second" "inner" b.Obs.name;
          let ends (e : Obs.event) = Int64.add e.Obs.ts_ns e.Obs.dur_ns in
          Alcotest.(check bool) "inner starts inside outer" true (b.Obs.ts_ns >= a.Obs.ts_ns);
          Alcotest.(check bool) "inner ends inside outer" true (ends b <= ends a);
          Alcotest.(check (list (pair string string))) "args recorded" [ ("k", "v") ] b.Obs.args
      | evs -> Alcotest.failf "expected exactly 2 spans, got %d" (List.length evs))

let test_span_records_on_exception () =
  with_enabled (fun () ->
      (match Obs.Span.with_ "boom" (fun () -> raise Exit) with
      | () -> Alcotest.fail "expected Exit"
      | exception Exit -> ());
      match Obs.trace_events () with
      | [ e ] -> Alcotest.(check string) "span recorded despite raise" "boom" e.Obs.name
      | evs -> Alcotest.failf "expected exactly 1 span, got %d" (List.length evs))

(* --- trace contexts ------------------------------------------------ *)

module Trace_ctx = Tin_obs.Trace_ctx

let test_traceparent_roundtrip () =
  let tp = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01" in
  (match Trace_ctx.of_traceparent tp with
  | Some ctx ->
      Alcotest.(check string) "trace id" "4bf92f3577b34da6a3ce929d0e0e4736" ctx.Trace_ctx.trace_id;
      Alcotest.(check string) "parent span id" "00f067aa0ba902b7" ctx.Trace_ctx.span_id;
      Alcotest.(check string) "re-renders" tp (Trace_ctx.to_traceparent ctx)
  | None -> Alcotest.fail "valid traceparent rejected");
  (* Surrounding whitespace tolerated (header values arrive trimmed or not). *)
  Alcotest.(check bool) "whitespace trimmed" true
    (Trace_ctx.of_traceparent (" " ^ tp ^ "\r") <> None);
  List.iter
    (fun (label, bad) ->
      Alcotest.(check bool) label true (Trace_ctx.of_traceparent bad = None))
    [
      ("empty", "");
      ("garbage", "not-a-traceparent");
      ("version ff reserved", "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01");
      ("short trace id", "00-4bf92f3577b34da6a3ce929d0e0e47-00f067aa0ba902b7-01");
      ("uppercase hex", "00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01");
      ("all-zero trace id", "00-00000000000000000000000000000000-00f067aa0ba902b7-01");
      ("all-zero parent id", "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01");
      ("missing flags", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7");
    ]

let test_span_ids_stitch () =
  with_enabled (fun () ->
      let tp = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01" in
      Obs.Span.with_root ~traceparent:tp "req" (fun () ->
          Obs.Span.with_ "child" (fun () -> ()));
      match List.sort (fun (a : Obs.event) b -> compare a.Obs.ts_ns b.Obs.ts_ns)
              (Obs.trace_events ()) with
      | [ root; child ] ->
          Alcotest.(check string) "root continues remote trace"
            "4bf92f3577b34da6a3ce929d0e0e4736" root.Obs.trace_id;
          Alcotest.(check string) "root parents the remote span" "00f067aa0ba902b7"
            root.Obs.parent_id;
          Alcotest.(check string) "child shares the trace" root.Obs.trace_id child.Obs.trace_id;
          Alcotest.(check string) "child parents the root" root.Obs.span_id child.Obs.parent_id;
          Alcotest.(check bool) "span ids distinct" true (root.Obs.span_id <> child.Obs.span_id)
      | evs -> Alcotest.failf "expected 2 spans, got %d" (List.length evs))

(* --- flight recorder ----------------------------------------------- *)

(* Span-buffer drops (trace truncated) and flight-ring evictions
   (normal wraparound) are different conditions and must count
   separately.  Shrink both sinks, overflow them, and check the two
   counters and their scrape lines disagree. *)
let test_flight_drops_vs_evictions () =
  with_enabled (fun () ->
      let cap0 = Obs.span_buffer_cap () in
      Fun.protect
        ~finally:(fun () ->
          Obs.set_span_buffer_cap cap0;
          Obs.Flight.set_capacity Obs.Flight.default_capacity;
          Obs.Flight.arm ())
        (fun () ->
          Obs.set_span_buffer_cap 8;
          Obs.Flight.set_capacity 4;
          Obs.Flight.arm ();
          for i = 1 to 20 do
            Obs.Span.with_ (Printf.sprintf "flood.%d" i) (fun () -> ())
          done;
          Alcotest.(check int) "span buffer kept its cap" 8
            (List.length (Obs.trace_events ()));
          Alcotest.(check int) "drops past the cap" 12 (Obs.dropped_events ());
          Alcotest.(check int) "ring evicted the rest" 16 (Obs.Flight.evictions ());
          Alcotest.(check int) "ring holds its capacity" 4
            (List.length (Obs.Flight.events ()));
          let text = Obs.prometheus_text () in
          let lines = String.split_on_char '\n' text in
          Alcotest.(check bool) "drop line in scrape" true
            (List.mem "obs_dropped_span_events 12" lines);
          Alcotest.(check bool) "eviction line in scrape" true
            (List.mem "obs_flight_ring_evictions 16" lines)))

(* Disarmed and disabled together: spans cost nothing and land nowhere. *)
let test_flight_disarmed_records_nothing () =
  Obs.reset ();
  Obs.Flight.disarm ();
  Fun.protect
    ~finally:(fun () -> Obs.Flight.arm ())
    (fun () ->
      Obs.Span.with_ "ghost" (fun () -> ());
      Alcotest.(check int) "flight ring empty" 0 (List.length (Obs.Flight.events ()));
      Alcotest.(check int) "span buffer empty" 0 (List.length (Obs.trace_events ())))

let test_flight_dump_schema () =
  Obs.reset ();
  Obs.Flight.arm ();
  Obs.Span.with_ "flight.only" (fun () -> ());
  let path = Filename.temp_file "tin_obs_flight" ".json" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove path;
      Obs.reset ())
    (fun () ->
      ignore (Obs.Flight.dump ~path ~reason:"unit_test" ());
      let ic = open_in_bin path in
      let contents = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let root = Json.parse contents in
      Alcotest.(check (option string)) "reason recorded" (Some "unit_test")
        (Option.bind (Json.mem "reason" root) Json.str);
      (match Json.mem "traceEvents" root with
      | Some (Json.Arr evs) ->
          let names =
            List.filter_map (fun e -> Option.bind (Json.mem "name" e) Json.str) evs
          in
          Alcotest.(check bool) "flight span dumped" true (List.mem "flight.only" names)
      | _ -> Alcotest.fail "flight dump has no traceEvents");
      Alcotest.(check bool) "eviction count in dump" true
        (Json.mem "flight_evictions" root <> None))

(* Every span recorded under a traced [Batch.map_reduce] must reach the
   root request span by its parent chain, whatever the job count —
   the cross-domain stitching contract behind [tinflow obs report]. *)
let prop_map_reduce_spans_stitch =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:25 ~name:"map_reduce span parent chains reach the root"
       QCheck.(pair (int_bound 200) (int_range 1 6))
       (fun (n, jobs) ->
         with_enabled (fun () ->
             Obs.Span.with_root "prop.root" (fun () ->
                 ignore
                   (Batch.map_reduce ~jobs ~chunk:3 ~n
                      ~init:(fun () -> ref 0)
                      ~body:(fun acc i -> acc := !acc + i)
                      ~merge:(fun a b -> ref (!a + !b))
                      ()));
             let evs = Obs.trace_events () in
             let by_id = Hashtbl.create 64 in
             List.iter (fun (e : Obs.event) -> Hashtbl.replace by_id e.Obs.span_id e) evs;
             let root =
               match List.filter (fun (e : Obs.event) -> e.Obs.name = "prop.root") evs with
               | [ r ] -> r
               | rs -> Alcotest.failf "expected 1 root span, got %d" (List.length rs)
             in
             let bound = List.length evs in
             let rec reaches (e : Obs.event) steps =
               steps <= bound
               && (e.Obs.span_id = root.Obs.span_id
                  || e.Obs.parent_id <> ""
                     &&
                     match Hashtbl.find_opt by_id e.Obs.parent_id with
                     | Some p -> reaches p (steps + 1)
                     | None -> false)
             in
             Obs.dropped_events () = 0
             && List.for_all
                  (fun (e : Obs.event) ->
                    e.Obs.trace_id = root.Obs.trace_id && reaches e 0)
                  evs)))

(* --- exporters ----------------------------------------------------- *)

let record_sample_activity () =
  let c = Obs.Counter.make "test.trace.counter" in
  Obs.Counter.add c 3;
  Obs.Span.with_ "phase.a" ~args:[ ("size", "10"); ("quoted", "a\"b") ] (fun () ->
      Obs.Span.with_ "phase.a.sub" (fun () -> ignore (Sys.opaque_identity (Array.make 64 0))));
  Obs.Span.with_ "phase.b" (fun () -> ())

let test_chrome_trace_schema () =
  with_enabled (fun () ->
      record_sample_activity ();
      let json = Obs.chrome_trace_json () in
      let root = Json.parse json in
      (* Object format: {"traceEvents": [...], "dropped_events": N}. *)
      let events =
        match Json.mem "traceEvents" root with
        | Some (Json.Arr evs) -> evs
        | _ -> Alcotest.fail "no traceEvents array"
      in
      Alcotest.(check (option (float 1e-9))) "dropped_events field" (Some 0.0)
        (Option.bind (Json.mem "dropped_events" root) Json.num);
      Alcotest.(check bool) "nonempty" true (events <> []);
      let phases = Hashtbl.create 8 in
      List.iter
        (fun e ->
          (* Every event: name/ph strings, pid/tid numbers — the
             fields Perfetto requires to place an event. *)
          let get k = Json.mem k e in
          let name = Option.bind (get "name") Json.str in
          let ph = Option.bind (get "ph") Json.str in
          Alcotest.(check bool) "has name" true (name <> None);
          Alcotest.(check bool)
            "has pid/tid" true
            (Option.bind (get "pid") Json.num <> None
            && Option.bind (get "tid") Json.num <> None);
          let ph = match ph with Some p -> p | None -> Alcotest.fail "missing ph" in
          Hashtbl.replace phases ph
            (1 + Option.value ~default:0 (Hashtbl.find_opt phases ph));
          match ph with
          | "X" ->
              let ts = Option.bind (get "ts") Json.num in
              let dur = Option.bind (get "dur") Json.num in
              Alcotest.(check bool) "X has ts >= 0" true (match ts with Some t -> t >= 0.0 | None -> false);
              Alcotest.(check bool) "X has dur >= 0" true (match dur with Some d -> d >= 0.0 | None -> false)
          | "M" ->
              Alcotest.(check (option string)) "metadata record" (Some "thread_name") name;
              Alcotest.(check bool) "metadata names the thread" true
                (Option.bind (get "args") (Json.mem "name") <> None)
          | "i" ->
              Alcotest.(check bool) "instant carries a value" true
                (Option.bind (get "args") (Json.mem "value") <> None)
          | other -> Alcotest.failf "unexpected phase %S" other)
        events;
      let count ph = Option.value ~default:0 (Hashtbl.find_opt phases ph) in
      Alcotest.(check int) "three complete spans" 3 (count "X");
      Alcotest.(check bool) "thread metadata present" true (count "M" >= 1);
      Alcotest.(check bool) "counter instants present" true (count "i" >= 1);
      (* Timestamps are rebased to the earliest span. *)
      let min_ts =
        List.fold_left
          (fun acc e ->
            match (Option.bind (Json.mem "ph" e) Json.str, Option.bind (Json.mem "ts" e) Json.num) with
            | Some "X", Some ts -> Float.min acc ts
            | _ -> acc)
          infinity events
      in
      Alcotest.(check (float 1e-9)) "rebased to zero" 0.0 min_ts)

let test_write_chrome_trace_roundtrip () =
  with_enabled (fun () ->
      record_sample_activity ();
      let path = Filename.temp_file "tin_obs_trace" ".json" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Obs.write_chrome_trace path;
          let ic = open_in_bin path in
          let len = in_channel_length ic in
          let contents = really_input_string ic len in
          close_in ic;
          match Json.mem "traceEvents" (Json.parse contents) with
          | Some (Json.Arr (_ :: _)) -> ()
          | _ -> Alcotest.fail "written trace has no nonempty traceEvents array"))

let test_metrics_json_schema () =
  with_enabled (fun () ->
      let c = Obs.Counter.make "test.metrics.counter" in
      Obs.Counter.add c 5;
      let h = Obs.Histogram.make "test.metrics.hist" in
      Obs.Histogram.observe h 2.0;
      let root = Json.parse (Obs.metrics_json ()) in
      let counters = Json.mem "counters" root in
      let histograms = Json.mem "histograms" root in
      Alcotest.(check (option (float 1e-9))) "counter exported" (Some 5.0)
        (Option.bind (Option.bind counters (Json.mem "test.metrics.counter")) Json.num);
      let hist = Option.bind histograms (Json.mem "test.metrics.hist") in
      Alcotest.(check (option (float 1e-9))) "histogram count" (Some 1.0)
        (Option.bind (Option.bind hist (Json.mem "count")) Json.num);
      Alcotest.(check bool) "dropped_events present" true
        (Json.mem "dropped_events" root <> None))

(* --- Prometheus exposition ----------------------------------------- *)

let is_name_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'
let is_name_char c = is_name_start c || (c >= '0' && c <= '9')

(* Validate one sample line: name ( '{' k="escaped" (,..)* '}' )? ' ' float *)
let check_sample_line line =
  let n = String.length line in
  let pos = ref 0 in
  let fail msg = Alcotest.failf "%s in sample line %S" msg line in
  if n = 0 || not (is_name_start line.[0]) then fail "bad name start";
  while !pos < n && is_name_char line.[!pos] do
    incr pos
  done;
  if !pos < n && line.[!pos] = '{' then begin
    incr pos;
    let rec pair () =
      let k0 = !pos in
      if !pos >= n || not (is_name_start line.[!pos]) then fail "bad label name";
      while !pos < n && is_name_char line.[!pos] do
        incr pos
      done;
      if !pos = k0 then fail "empty label name";
      if !pos + 1 >= n || line.[!pos] <> '=' || line.[!pos + 1] <> '"' then
        fail "label not k=\"v\"";
      pos := !pos + 2;
      let rec scan_value () =
        if !pos >= n then fail "unterminated label value"
        else
          match line.[!pos] with
          | '"' -> incr pos
          | '\\' ->
              if !pos + 1 >= n then fail "dangling backslash";
              (match line.[!pos + 1] with
              | '\\' | '"' | 'n' -> ()
              | _ -> fail "invalid escape in label value");
              pos := !pos + 2;
              scan_value ()
          | '\n' -> fail "raw newline in label value"
          | _ ->
              incr pos;
              scan_value ()
      in
      scan_value ();
      if !pos < n && line.[!pos] = ',' then begin
        incr pos;
        pair ()
      end
      else if !pos < n && line.[!pos] = '}' then incr pos
      else fail "expected ',' or '}'"
    in
    pair ()
  end;
  if !pos >= n || line.[!pos] <> ' ' then fail "expected single space before value";
  let value = String.sub line (!pos + 1) (n - !pos - 1) in
  match value with
  | "NaN" | "+Inf" | "-Inf" -> ()
  | v -> if float_of_string_opt v = None then fail "unparsable value"

let test_prometheus_conformance () =
  with_enabled (fun () ->
      let fam = Obs.Counter.make_labeled "conformance_total" ~labels:[ "kind" ] in
      Obs.Counter.add (Obs.Counter.labeled fam [ "weird \"quoted\"\\\n" ]) 3;
      let g = Obs.Gauge.make "conformance.gauge" in
      Obs.Gauge.set g 1.5;
      let h = Obs.Histogram.make "conformance_hist" in
      Obs.Histogram.observe h 2.5;
      (* The daemon's request-latency family: a labeled histogram must
         export per-member _count/_sum rows that scrapers can parse. *)
      let lat =
        Obs.Histogram.make_labeled "http_request_duration_ms" ~labels:[ "route"; "status" ]
      in
      Obs.Histogram.observe (Obs.Histogram.labeled lat [ "/metrics"; "200" ]) 0.5;
      let text = Obs.prometheus_text () in
      Alcotest.(check bool) "ends with newline" true
        (String.length text > 0 && text.[String.length text - 1] = '\n');
      let lines = String.split_on_char '\n' text |> List.filter (fun l -> l <> "") in
      let typed = Hashtbl.create 32 in
      List.iter
        (fun line ->
          if String.starts_with ~prefix:"# TYPE " line then begin
            (match String.split_on_char ' ' line with
            | [ "#"; "TYPE"; name; ("counter" | "gauge" | "histogram" | "untyped") ] ->
                if Hashtbl.mem typed name then
                  Alcotest.failf "duplicate # TYPE for %s" name
                else Hashtbl.replace typed name ()
            | _ -> Alcotest.failf "malformed TYPE line %S" line)
          end
          else if String.starts_with ~prefix:"# HELP " line then begin
            match String.split_on_char ' ' line with
            | "#" :: "HELP" :: name :: _ when name <> "" -> ()
            | _ -> Alcotest.failf "malformed HELP line %S" line
          end
          else if String.starts_with ~prefix:"#" line then
            Alcotest.failf "unexpected comment %S" line
          else begin
            check_sample_line line;
            (* Every sample sits under a # TYPE block for its name. *)
            let stop =
              match String.index_opt line '{' with
              | Some i -> i
              | None -> ( match String.index_opt line ' ' with Some i -> i | None -> 0)
            in
            let name = String.sub line 0 stop in
            if not (Hashtbl.mem typed name) then
              Alcotest.failf "sample %S precedes its # TYPE" line
          end)
        lines;
      let has l = List.mem l lines in
      Alcotest.(check bool) "dotted gauge name sanitized" true (has "conformance_gauge 1.5");
      Alcotest.(check bool) "label value escaped" true
        (has "conformance_total{kind=\"weird \\\"quoted\\\"\\\\\\n\"} 3");
      Alcotest.(check bool) "histogram count exported" true (has "conformance_hist_count 1");
      Alcotest.(check bool) "histogram sum exported" true (has "conformance_hist_sum 2.5");
      Alcotest.(check bool) "span-loss counter always present" true
        (has "obs_dropped_span_events 0");
      Alcotest.(check bool) "flight-eviction counter always present" true
        (has "obs_flight_ring_evictions 0");
      Alcotest.(check bool) "labeled request-latency count" true
        (has "http_request_duration_ms_count{route=\"/metrics\",status=\"200\"} 1");
      Alcotest.(check bool) "labeled request-latency sum" true
        (has "http_request_duration_ms_sum{route=\"/metrics\",status=\"200\"} 0.5"))

(* --- runtime telemetry --------------------------------------------- *)

let test_runtime_sample () =
  with_enabled (fun () ->
      Obs.Runtime.sample ();
      let gs = Obs.gauges () in
      let present n = List.mem_assoc n gs in
      List.iter
        (fun n -> Alcotest.(check bool) n true (present n))
        [
          "runtime_gc_minor_collections";
          "runtime_gc_major_collections";
          "runtime_gc_heap_words";
          "runtime_gc_minor_words";
          "runtime_obs_domains";
        ];
      if Sys.file_exists "/proc/self/statm" then begin
        Alcotest.(check bool) "rss pages" true (present "runtime_rss_pages");
        Alcotest.(check bool) "rss bytes" true (present "runtime_rss_bytes");
        Alcotest.(check bool) "rss positive" true (List.assoc "runtime_rss_pages" gs > 0.0)
      end;
      Alcotest.(check bool) "heap words positive" true
        (List.assoc "runtime_gc_heap_words" gs > 0.0))

let test_runtime_peak_rss () =
  if Sys.file_exists "/proc/self/statm" then begin
    with_enabled (fun () ->
        Obs.Runtime.sample ();
        let gs = Obs.gauges () in
        Alcotest.(check bool) "peak published" true (List.mem_assoc "runtime_peak_rss_bytes" gs);
        let peak1 = List.assoc "runtime_peak_rss_bytes" gs in
        let cur1 = List.assoc "runtime_rss_bytes" gs in
        Alcotest.(check bool) "peak >= current at first sample" true (peak1 >= cur1);
        (* The gauge is max-tracking: plant a high-water mark above any
           realistic RSS and verify a later (smaller) sample does not
           lower it, while the point-in-time gauge keeps moving. *)
        let planted = 1e18 in
        Obs.Gauge.set (Obs.Gauge.make "runtime_peak_rss_bytes") planted;
        Obs.Runtime.sample ();
        let gs = Obs.gauges () in
        Alcotest.(check (float 0.0)) "peak survives smaller sample" planted
          (List.assoc "runtime_peak_rss_bytes" gs);
        Alcotest.(check bool) "current gauge still live" true
          (List.assoc "runtime_rss_bytes" gs < planted));
    (* reset clears the high-water mark along with everything else. *)
    Alcotest.(check bool) "cleared by reset" false
      (List.mem_assoc "runtime_peak_rss_bytes" (Obs.gauges ()))
  end

let test_runtime_sampler_thread () =
  with_enabled (fun () ->
      Alcotest.(check bool) "not running before start" false (Obs.Runtime.running ());
      Obs.Runtime.start ~period_ms:10 ();
      Alcotest.(check bool) "running" true (Obs.Runtime.running ());
      (* Idempotent start is a no-op. *)
      Obs.Runtime.start ~period_ms:10 ();
      Unix.sleepf 0.05;
      Obs.Runtime.stop ();
      Alcotest.(check bool) "stopped" false (Obs.Runtime.running ());
      Obs.Runtime.stop ();
      Alcotest.(check bool) "gauges published" true
        (List.mem_assoc "runtime_gc_heap_words" (Obs.gauges ())))

(* --- scrape endpoint ----------------------------------------------- *)

let http_get ~port path =
  let sock = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req =
        Printf.sprintf "GET %s HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n" path
      in
      let payload = Bytes.of_string req in
      let off = ref 0 in
      while !off < Bytes.length payload do
        off := !off + Unix.write sock payload !off (Bytes.length payload - !off)
      done;
      let buf = Bytes.create 4096 in
      let acc = Buffer.create 1024 in
      let rec drain () =
        let got = Unix.read sock buf 0 (Bytes.length buf) in
        if got > 0 then begin
          Buffer.add_subbytes acc buf 0 got;
          drain ()
        end
      in
      drain ();
      Buffer.contents acc)

(* The value of [name] in a Prometheus exposition body, if present. *)
let scrape_value body name =
  let needle = "\n" ^ name ^ " " in
  let rec find from =
    match String.index_from_opt body from '\n' with
    | None -> None
    | Some i ->
        if
          i + String.length needle <= String.length body
          && String.sub body i (String.length needle) = needle
        then begin
          let start = i + String.length needle in
          let stop =
            match String.index_from_opt body start '\n' with
            | Some j -> j
            | None -> String.length body
          in
          float_of_string_opt (String.trim (String.sub body start (stop - start)))
        end
        else find (i + 1)
  in
  find 0

let test_scrape_endpoint () =
  with_enabled (fun () ->
      let srv = Tin_obs.Serve.start ~addr:"127.0.0.1" ~port:0 () in
      Fun.protect
        ~finally:(fun () -> Tin_obs.Serve.stop srv)
        (fun () ->
          let port = Tin_obs.Serve.port srv in
          let c = Obs.Counter.make "test.scrape.static" in
          Obs.Counter.add c 42;
          let health = http_get ~port "/healthz" in
          Alcotest.(check bool) "healthz 200" true
            (String.starts_with ~prefix:"HTTP/1.1 200" health);
          let metrics = http_get ~port "/metrics" in
          Alcotest.(check bool) "metrics 200" true
            (String.starts_with ~prefix:"HTTP/1.1 200" metrics);
          Alcotest.(check bool) "content type" true
            (let ct = "Content-Type: text/plain; version=0.0.4" in
             let rec mem i =
               i + String.length ct <= String.length metrics
               && (String.sub metrics i (String.length ct) = ct || mem (i + 1))
             in
             mem 0);
          Alcotest.(check (option (float 1e-9))) "counter visible in scrape" (Some 42.0)
            (scrape_value metrics "test_scrape_static");
          let json = http_get ~port "/metrics.json" in
          let body =
            match String.index_opt json '{' with
            | Some i -> String.sub json i (String.length json - i)
            | None -> Alcotest.fail "no JSON body"
          in
          (match Json.parse body with
          | Json.Obj _ -> ()
          | _ -> Alcotest.fail "metrics.json body is not an object");
          let missing = http_get ~port "/nope" in
          Alcotest.(check bool) "404 for unknown path" true
            (String.starts_with ~prefix:"HTTP/1.1 404" missing)))

let test_scrape_concurrent_with_map_reduce () =
  with_enabled (fun () ->
      let srv = Tin_obs.Serve.start ~addr:"127.0.0.1" ~port:0 () in
      Fun.protect
        ~finally:(fun () -> Tin_obs.Serve.stop srv)
        (fun () ->
          let port = Tin_obs.Serve.port srv in
          let c = Obs.Counter.make "test.scrape.ticks" in
          let stop = Atomic.make false in
          let scraper =
            Domain.spawn (fun () ->
                let acc = ref [] in
                while not (Atomic.get stop) do
                  match scrape_value (http_get ~port "/metrics") "test_scrape_ticks" with
                  | Some v -> acc := v :: !acc
                  | None -> ()
                done;
                List.rev !acc)
          in
          let n = 60_000 in
          let total =
            Tin_core.Batch.map_reduce ~jobs:4 ~chunk:16 ~n
              ~init:(fun () -> ref 0)
              ~body:(fun acc _ ->
                Obs.Counter.incr c;
                incr acc)
              ~merge:(fun a b -> ref (!a + !b))
              ()
          in
          (* One guaranteed post-workload scrape before stopping, so
             the monotone sequence is nonempty and ends at the total. *)
          let final = scrape_value (http_get ~port "/metrics") "test_scrape_ticks" in
          Atomic.set stop true;
          let reads = Domain.join scraper @ Option.to_list final in
          Alcotest.(check int) "workload exact" n !total;
          Alcotest.(check int) "counter exact after workload" n (Obs.Counter.value c);
          Alcotest.(check (option (float 1e-9))) "final scrape sees the total" (Some (float_of_int n))
            final;
          Alcotest.(check bool) "scraped at least twice" true (List.length reads >= 2);
          let monotone =
            let rec go = function
              | a :: (b :: _ as rest) -> a <= b && go rest
              | _ -> true
            in
            go reads
          in
          Alcotest.(check bool) "counter reads are monotone" true monotone;
          Alcotest.(check bool) "reads bounded by the total" true
            (List.for_all (fun v -> v >= 0.0 && v <= float_of_int n) reads)))

(* --- serve robustness: dirty disconnects, idle peers, POST --------- *)

(* A peer that resets the connection after one byte of the response
   must not kill the process (SIGPIPE regression: the first write
   after the RST raises ECONNRESET, a subsequent one EPIPE — which is
   fatal unless SIGPIPE is ignored). *)
let test_dirty_disconnect_survives () =
  with_enabled (fun () ->
      let srv = Tin_obs.Serve.start ~addr:"127.0.0.1" ~port:0 () in
      Fun.protect
        ~finally:(fun () -> Tin_obs.Serve.stop srv)
        (fun () ->
          let port = Tin_obs.Serve.port srv in
          (* Plant a bulky metric set so the response spans several
             writes and the server keeps writing after the reset. *)
          for i = 1 to 200 do
            Obs.Counter.add (Obs.Counter.make (Printf.sprintf "test.dirty.bulk%03d" i)) i
          done;
          for _ = 1 to 20 do
            let sock = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
            (try
               Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
               let req = Bytes.of_string "GET /metrics HTTP/1.1\r\n\r\n" in
               ignore (Unix.write sock req 0 (Bytes.length req));
               (* Read one byte so the response is mid-flight, then
                  RST the connection (SO_LINGER 0 close). *)
               ignore (Unix.read sock (Bytes.create 1) 0 1);
               Unix.setsockopt_optint sock Unix.SO_LINGER (Some 0)
             with Unix.Unix_error _ -> ());
            (try Unix.close sock with Unix.Unix_error _ -> ())
          done;
          (* The server must still answer a full scrape. *)
          let metrics = http_get ~port "/metrics" in
          Alcotest.(check bool) "server alive after 20 dirty closes" true
            (String.starts_with ~prefix:"HTTP/1.1 200" metrics);
          Alcotest.(check bool) "scrape complete" true
            (scrape_value metrics "test_dirty_bulk200" = Some 200.0)))

(* An idle peer gets no response at all — the timeout is not
   misclassified as a malformed request (no 400 written into a
   possibly-dead socket). *)
let test_idle_peer_gets_no_response () =
  with_enabled (fun () ->
      let srv = Tin_obs.Serve.start ~addr:"127.0.0.1" ~port:0 ~read_timeout:0.2 () in
      Fun.protect
        ~finally:(fun () -> Tin_obs.Serve.stop srv)
        (fun () ->
          let port = Tin_obs.Serve.port srv in
          let sock = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
          Fun.protect
            ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
            (fun () ->
              Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
              (* Send nothing; the server should close without writing. *)
              let got = Unix.read sock (Bytes.create 64) 0 64 in
              Alcotest.(check int) "no response bytes to an idle peer" 0 got);
          (* A half request (no terminator) also times out silently. *)
          let sock = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
          Fun.protect
            ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
            (fun () ->
              Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
              let req = Bytes.of_string "GET /metrics HTTP/1.1\r\n" in
              ignore (Unix.write sock req 0 (Bytes.length req));
              let got = Unix.read sock (Bytes.create 64) 0 64 in
              Alcotest.(check int) "no response to a half request" 0 got);
          (* Genuinely malformed input is still answered 400. *)
          let bad = http_get ~port "%%%" in
          Alcotest.(check bool) "malformed still 400" true
            (String.starts_with ~prefix:"HTTP/1.1 400" bad
            || String.starts_with ~prefix:"HTTP/1.1 404" bad);
          let metrics = http_get ~port "/metrics" in
          Alcotest.(check bool) "server still serves" true
            (String.starts_with ~prefix:"HTTP/1.1 200" metrics)))

let http_post ~port path body =
  let sock = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req =
        Printf.sprintf
          "POST %s HTTP/1.1\r\nHost: localhost\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
          path (String.length body) body
      in
      let payload = Bytes.of_string req in
      let off = ref 0 in
      while !off < Bytes.length payload do
        off := !off + Unix.write sock payload !off (Bytes.length payload - !off)
      done;
      let buf = Bytes.create 4096 in
      let acc = Buffer.create 1024 in
      let rec drain () =
        let got = Unix.read sock buf 0 (Bytes.length buf) in
        if got > 0 then begin
          Buffer.add_subbytes acc buf 0 got;
          drain ()
        end
      in
      drain ();
      Buffer.contents acc)

let test_post_routes_and_bounded_body () =
  with_enabled (fun () ->
      let echoed = ref [] in
      let routes =
        [
          ( `POST,
            "/echo",
            fun ~body ->
              echoed := body :: !echoed;
              {
                Tin_obs.Serve.code = 200;
                content_type = "text/plain";
                body = string_of_int (String.length body);
              } );
        ]
      in
      let srv = Tin_obs.Serve.start ~addr:"127.0.0.1" ~port:0 ~max_body:64 ~routes () in
      Fun.protect
        ~finally:(fun () -> Tin_obs.Serve.stop srv)
        (fun () ->
          let port = Tin_obs.Serve.port srv in
          let ok = http_post ~port "/echo" "hello body" in
          Alcotest.(check bool) "registered POST answers" true
            (String.starts_with ~prefix:"HTTP/1.1 200" ok);
          Alcotest.(check (list string)) "handler saw the body" [ "hello body" ] !echoed;
          (* Declared body above max_body: 413, handler not invoked. *)
          let big = http_post ~port "/echo" (String.make 100 'x') in
          Alcotest.(check bool) "oversized body rejected" true
            (String.starts_with ~prefix:"HTTP/1.1 413" big);
          Alcotest.(check int) "handler not invoked for 413" 1 (List.length !echoed);
          (* Wrong method on a known path: 405. *)
          let wrong = http_get ~port "/echo" in
          Alcotest.(check bool) "GET on POST-only path is 405" true
            (String.starts_with ~prefix:"HTTP/1.1 405" wrong);
          (* Built-in routes still reachable alongside user routes. *)
          let metrics = http_get ~port "/metrics" in
          Alcotest.(check bool) "metrics still served" true
            (String.starts_with ~prefix:"HTTP/1.1 200" metrics)))

(* --- exporter escaping round-trip ---------------------------------- *)

(* Arbitrary printable metric names (quotes, backslashes, newlines,
   tabs ...) must survive the trip through [metrics_json] and this
   file's independent JSON reader byte-for-byte. *)
let prop_metrics_json_roundtrip =
  let printable =
    QCheck.Gen.(
      string_size ~gen:(map Char.chr (oneof [ int_range 32 126; return 9; return 10 ])) (int_range 1 24))
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"metrics_json round-trips arbitrary printable names"
       (QCheck.make ~print:String.escaped printable)
       (fun raw ->
         let name = "prop.rt." ^ raw in
         with_enabled (fun () ->
             let c = Obs.Counter.make name in
             Obs.Counter.add c 7;
             let root = Json.parse (Obs.metrics_json ()) in
             Option.bind (Option.bind (Json.mem "counters" root) (Json.mem name)) Json.num
             = Some 7.0)))

let () =
  Alcotest.run "obs"
    [
      ( "counters",
        [
          Alcotest.test_case "disabled path is invisible" `Quick test_disabled_is_invisible;
          Alcotest.test_case "basics" `Quick test_counter_basics;
          Alcotest.test_case "histogram summary" `Quick test_histogram_summary;
          Alcotest.test_case "negative add rejected" `Quick test_counter_negative_add;
          prop_parallel_counter_exact;
        ] );
      ( "gauges",
        [
          Alcotest.test_case "basics" `Quick test_gauge_basics;
          Alcotest.test_case "last write wins across domains" `Quick
            test_gauge_last_write_wins_across_domains;
        ] );
      ( "families",
        [ Alcotest.test_case "labeled metric families" `Quick test_labeled_families ] );
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick test_spans_nest;
          Alcotest.test_case "recorded on exception" `Quick test_span_records_on_exception;
        ] );
      ( "trace-context",
        [
          Alcotest.test_case "traceparent round-trip" `Quick test_traceparent_roundtrip;
          Alcotest.test_case "span ids stitch" `Quick test_span_ids_stitch;
          prop_map_reduce_spans_stitch;
        ] );
      ( "flight",
        [
          Alcotest.test_case "drops vs evictions" `Quick test_flight_drops_vs_evictions;
          Alcotest.test_case "disarmed records nothing" `Quick
            test_flight_disarmed_records_nothing;
          Alcotest.test_case "dump schema" `Quick test_flight_dump_schema;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "one-shot sample" `Quick test_runtime_sample;
          Alcotest.test_case "peak rss high-water mark" `Quick test_runtime_peak_rss;
          Alcotest.test_case "sampler thread" `Quick test_runtime_sampler_thread;
        ] );
      ( "serve",
        [
          Alcotest.test_case "scrape endpoint" `Quick test_scrape_endpoint;
          Alcotest.test_case "concurrent scrape during map_reduce" `Quick
            test_scrape_concurrent_with_map_reduce;
          Alcotest.test_case "dirty disconnect survives (SIGPIPE)" `Quick
            test_dirty_disconnect_survives;
          Alcotest.test_case "idle peer gets no response" `Quick
            test_idle_peer_gets_no_response;
          Alcotest.test_case "POST routes and bounded body" `Quick
            test_post_routes_and_bounded_body;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome trace schema" `Quick test_chrome_trace_schema;
          Alcotest.test_case "write roundtrip" `Quick test_write_chrome_trace_roundtrip;
          Alcotest.test_case "metrics json schema" `Quick test_metrics_json_schema;
          Alcotest.test_case "prometheus conformance" `Quick test_prometheus_conformance;
          prop_metrics_json_roundtrip;
        ] );
    ]
