(* Observability substrate: counter exactness across domains, span
   nesting, disabled-path invisibility, and the Chrome-trace / metrics
   JSON exporters (schema-checked with a minimal JSON reader — the
   repo deliberately has no JSON dependency). *)

module Obs = Tin_obs.Obs
module Batch = Tin_core.Batch

let with_enabled f =
  Obs.reset ();
  Obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
    f

(* --- minimal JSON reader (tests only) ------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Bad of string

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\n' | '\t' | '\r') ->
          incr pos;
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      if !pos < n && s.[!pos] = c then incr pos else fail (Printf.sprintf "expected '%c'" c)
    in
    let literal lit v =
      let k = String.length lit in
      if !pos + k <= n && String.sub s !pos k = lit then begin
        pos := !pos + k;
        v
      end
      else fail ("expected " ^ lit)
    in
    let string_lit () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            incr pos;
            if !pos >= n then fail "bad escape";
            (match s.[!pos] with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'n' -> Buffer.add_char b '\n'
            | 't' -> Buffer.add_char b '\t'
            | 'r' -> Buffer.add_char b '\r'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'u' ->
                (* Raw escape is enough for schema checks. *)
                if !pos + 4 >= n then fail "bad unicode escape";
                Buffer.add_string b (String.sub s (!pos - 1) 6);
                pos := !pos + 4
            | _ -> fail "bad escape");
            incr pos;
            go ()
        | c ->
            Buffer.add_char b c;
            incr pos;
            go ()
      in
      go ();
      Buffer.contents b
    in
    let number () =
      let start = !pos in
      let is_num c =
        (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
      in
      while !pos < n && is_num s.[!pos] do
        incr pos
      done;
      if !pos = start then fail "expected a number";
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> fail "malformed number"
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | Some '{' ->
          incr pos;
          skip_ws ();
          if peek () = Some '}' then begin
            incr pos;
            Obj []
          end
          else
            let rec fields acc =
              skip_ws ();
              let k = string_lit () in
              skip_ws ();
              expect ':';
              let v = value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  incr pos;
                  fields ((k, v) :: acc)
              | Some '}' ->
                  incr pos;
                  List.rev ((k, v) :: acc)
              | _ -> fail "expected ',' or '}'"
            in
            Obj (fields [])
      | Some '[' ->
          incr pos;
          skip_ws ();
          if peek () = Some ']' then begin
            incr pos;
            Arr []
          end
          else
            let rec elems acc =
              let v = value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  incr pos;
                  elems (v :: acc)
              | Some ']' ->
                  incr pos;
                  List.rev (v :: acc)
              | _ -> fail "expected ',' or ']'"
            in
            Arr (elems [])
      | Some '"' -> Str (string_lit ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> Num (number ())
      | None -> fail "unexpected end of input"
    in
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let mem k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

  let str = function Str s -> Some s | _ -> None

  let num = function Num f -> Some f | _ -> None
end

(* --- counters ------------------------------------------------------ *)

let test_disabled_is_invisible () =
  Obs.reset ();
  Alcotest.(check bool) "disabled by default here" false (Obs.tracking ());
  let c = Obs.Counter.make "test.disabled.counter" in
  let h = Obs.Histogram.make "test.disabled.histogram" in
  Obs.Counter.incr c;
  Obs.Counter.add c 41;
  Obs.Histogram.observe h 3.0;
  let r = Obs.Span.with_ "test.disabled.span" ~args:[ ("k", "v") ] (fun () -> 7) in
  Alcotest.(check int) "span still runs the body" 7 r;
  Alcotest.(check int) "counter stays at zero" 0 (Obs.Counter.value c);
  Alcotest.(check int) "histogram records nothing" 0 (Obs.Histogram.summary h).Tin_util.Stats.count;
  Alcotest.(check int) "no spans recorded" 0 (List.length (Obs.trace_events ()))

let test_counter_basics () =
  with_enabled (fun () ->
      let c = Obs.Counter.make "test.basics.counter" in
      Obs.Counter.incr c;
      Obs.Counter.add c 10;
      Alcotest.(check int) "value merges" 11 (Obs.Counter.value c);
      Alcotest.(check string) "name" "test.basics.counter" (Obs.Counter.name c);
      (* Same name, same counter — make is a registry lookup. *)
      let c' = Obs.Counter.make "test.basics.counter" in
      Obs.Counter.incr c';
      Alcotest.(check int) "shared identity" 12 (Obs.Counter.value c);
      Alcotest.(check bool) "listed" true
        (List.mem_assoc "test.basics.counter" (Obs.counters ()));
      Alcotest.check_raises "kind clash rejected"
        (Invalid_argument "Obs: metric name registered with another kind: test.basics.counter")
        (fun () -> ignore (Obs.Histogram.make "test.basics.counter"));
      Obs.reset ();
      Alcotest.(check int) "reset zeroes in place" 0 (Obs.Counter.value c))

let test_histogram_summary () =
  with_enabled (fun () ->
      let h = Obs.Histogram.make "test.hist" in
      List.iter (Obs.Histogram.observe h) [ 1.0; 2.0; 3.0; 4.0 ];
      let s = Obs.Histogram.summary h in
      Alcotest.(check int) "count" 4 s.Tin_util.Stats.count;
      Alcotest.(check (float 1e-9)) "mean" 2.5 s.Tin_util.Stats.mean;
      Alcotest.(check (float 1e-9)) "min" 1.0 s.Tin_util.Stats.min;
      Alcotest.(check (float 1e-9)) "max" 4.0 s.Tin_util.Stats.max)

(* Counters must be exact — not approximate — under parallel recording:
   every domain writes its own shard, merged on read. *)
let prop_parallel_counter_exact =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:25 ~name:"counters exact under Batch.map_reduce jobs>1"
       QCheck.(pair (int_bound 400) (int_range 2 6))
       (fun (n, jobs) ->
         with_enabled (fun () ->
             let items = Obs.Counter.make "test.mr.items" in
             let weight = Obs.Counter.make "test.mr.weight" in
             let acc =
               Batch.map_reduce ~jobs ~chunk:3 ~n
                 ~init:(fun () -> ref 0)
                 ~body:(fun acc i ->
                   Obs.Counter.incr items;
                   Obs.Counter.add weight i;
                   acc := !acc + i)
                 ~merge:(fun a b -> ref (!a + !b))
                 ()
             in
             let expected_weight = n * (n - 1) / 2 in
             !acc = expected_weight
             && Obs.Counter.value items = n
             && Obs.Counter.value weight = expected_weight)))

(* --- spans --------------------------------------------------------- *)

let test_spans_nest () =
  with_enabled (fun () ->
      let r =
        Obs.Span.with_ "outer" (fun () ->
            let x = Obs.Span.with_ "inner" ~args:[ ("k", "v") ] (fun () -> 41) in
            x + 1)
      in
      Alcotest.(check int) "body result" 42 r;
      match Obs.trace_events () with
      | [ a; b ] ->
          (* Sorted by start time: outer opened first. *)
          Alcotest.(check string) "outer first" "outer" a.Obs.name;
          Alcotest.(check string) "inner second" "inner" b.Obs.name;
          let ends (e : Obs.event) = Int64.add e.Obs.ts_ns e.Obs.dur_ns in
          Alcotest.(check bool) "inner starts inside outer" true (b.Obs.ts_ns >= a.Obs.ts_ns);
          Alcotest.(check bool) "inner ends inside outer" true (ends b <= ends a);
          Alcotest.(check (list (pair string string))) "args recorded" [ ("k", "v") ] b.Obs.args
      | evs -> Alcotest.failf "expected exactly 2 spans, got %d" (List.length evs))

let test_span_records_on_exception () =
  with_enabled (fun () ->
      (match Obs.Span.with_ "boom" (fun () -> raise Exit) with
      | () -> Alcotest.fail "expected Exit"
      | exception Exit -> ());
      match Obs.trace_events () with
      | [ e ] -> Alcotest.(check string) "span recorded despite raise" "boom" e.Obs.name
      | evs -> Alcotest.failf "expected exactly 1 span, got %d" (List.length evs))

(* --- exporters ----------------------------------------------------- *)

let record_sample_activity () =
  let c = Obs.Counter.make "test.trace.counter" in
  Obs.Counter.add c 3;
  Obs.Span.with_ "phase.a" ~args:[ ("size", "10"); ("quoted", "a\"b") ] (fun () ->
      Obs.Span.with_ "phase.a.sub" (fun () -> ignore (Sys.opaque_identity (Array.make 64 0))));
  Obs.Span.with_ "phase.b" (fun () -> ())

let test_chrome_trace_schema () =
  with_enabled (fun () ->
      record_sample_activity ();
      let json = Obs.chrome_trace_json () in
      let root = Json.parse json in
      let events = match root with Json.Arr evs -> evs | _ -> Alcotest.fail "not an array" in
      Alcotest.(check bool) "nonempty" true (events <> []);
      let phases = Hashtbl.create 8 in
      List.iter
        (fun e ->
          (* Every event: name/ph strings, pid/tid numbers — the
             fields Perfetto requires to place an event. *)
          let get k = Json.mem k e in
          let name = Option.bind (get "name") Json.str in
          let ph = Option.bind (get "ph") Json.str in
          Alcotest.(check bool) "has name" true (name <> None);
          Alcotest.(check bool)
            "has pid/tid" true
            (Option.bind (get "pid") Json.num <> None
            && Option.bind (get "tid") Json.num <> None);
          let ph = match ph with Some p -> p | None -> Alcotest.fail "missing ph" in
          Hashtbl.replace phases ph
            (1 + Option.value ~default:0 (Hashtbl.find_opt phases ph));
          match ph with
          | "X" ->
              let ts = Option.bind (get "ts") Json.num in
              let dur = Option.bind (get "dur") Json.num in
              Alcotest.(check bool) "X has ts >= 0" true (match ts with Some t -> t >= 0.0 | None -> false);
              Alcotest.(check bool) "X has dur >= 0" true (match dur with Some d -> d >= 0.0 | None -> false)
          | "M" ->
              Alcotest.(check (option string)) "metadata record" (Some "thread_name") name;
              Alcotest.(check bool) "metadata names the thread" true
                (Option.bind (get "args") (Json.mem "name") <> None)
          | "i" ->
              Alcotest.(check bool) "instant carries a value" true
                (Option.bind (get "args") (Json.mem "value") <> None)
          | other -> Alcotest.failf "unexpected phase %S" other)
        events;
      let count ph = Option.value ~default:0 (Hashtbl.find_opt phases ph) in
      Alcotest.(check int) "three complete spans" 3 (count "X");
      Alcotest.(check bool) "thread metadata present" true (count "M" >= 1);
      Alcotest.(check bool) "counter instants present" true (count "i" >= 1);
      (* Timestamps are rebased to the earliest span. *)
      let min_ts =
        List.fold_left
          (fun acc e ->
            match (Option.bind (Json.mem "ph" e) Json.str, Option.bind (Json.mem "ts" e) Json.num) with
            | Some "X", Some ts -> Float.min acc ts
            | _ -> acc)
          infinity events
      in
      Alcotest.(check (float 1e-9)) "rebased to zero" 0.0 min_ts)

let test_write_chrome_trace_roundtrip () =
  with_enabled (fun () ->
      record_sample_activity ();
      let path = Filename.temp_file "tin_obs_trace" ".json" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Obs.write_chrome_trace path;
          let ic = open_in_bin path in
          let len = in_channel_length ic in
          let contents = really_input_string ic len in
          close_in ic;
          match Json.parse contents with
          | Json.Arr (_ :: _) -> ()
          | _ -> Alcotest.fail "written trace is not a nonempty JSON array"))

let test_metrics_json_schema () =
  with_enabled (fun () ->
      let c = Obs.Counter.make "test.metrics.counter" in
      Obs.Counter.add c 5;
      let h = Obs.Histogram.make "test.metrics.hist" in
      Obs.Histogram.observe h 2.0;
      let root = Json.parse (Obs.metrics_json ()) in
      let counters = Json.mem "counters" root in
      let histograms = Json.mem "histograms" root in
      Alcotest.(check (option (float 1e-9))) "counter exported" (Some 5.0)
        (Option.bind (Option.bind counters (Json.mem "test.metrics.counter")) Json.num);
      let hist = Option.bind histograms (Json.mem "test.metrics.hist") in
      Alcotest.(check (option (float 1e-9))) "histogram count" (Some 1.0)
        (Option.bind (Option.bind hist (Json.mem "count")) Json.num);
      Alcotest.(check bool) "dropped_events present" true
        (Json.mem "dropped_events" root <> None))

let () =
  Alcotest.run "obs"
    [
      ( "counters",
        [
          Alcotest.test_case "disabled path is invisible" `Quick test_disabled_is_invisible;
          Alcotest.test_case "basics" `Quick test_counter_basics;
          Alcotest.test_case "histogram summary" `Quick test_histogram_summary;
          prop_parallel_counter_exact;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick test_spans_nest;
          Alcotest.test_case "recorded on exception" `Quick test_span_records_on_exception;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome trace schema" `Quick test_chrome_trace_schema;
          Alcotest.test_case "write roundtrip" `Quick test_write_chrome_trace_roundtrip;
          Alcotest.test_case "metrics json schema" `Quick test_metrics_json_schema;
        ] );
    ]
