(* The Pre / PreSim pipelines, the solubility test, and method
   agreement on the paper's examples. *)

open Tin_testlib
module Pipeline = Tin_core.Pipeline
module Solubility = Tin_core.Solubility
module P = Paper_examples

let max_methods = Pipeline.[ Lp; Pre; Pre_sim; Time_expanded ]

let check_all_methods name g ~source ~sink ~greedy ~max =
  Check.check_flow (name ^ ": greedy") greedy (Pipeline.compute Pipeline.Greedy g ~source ~sink);
  List.iter
    (fun m ->
      Check.check_flow
        (Printf.sprintf "%s: %s" name (Pipeline.method_name m))
        max
        (Pipeline.compute m g ~source ~sink))
    max_methods

let test_fig3 () = check_all_methods "fig3" P.fig3 ~source:P.s ~sink:P.t ~greedy:1.0 ~max:5.0

let test_fig1a () =
  check_all_methods "fig1a" P.fig1a ~source:P.s ~sink:P.t ~greedy:2.0 ~max:5.0

let test_fig5a () =
  check_all_methods "fig5a" P.fig5a ~source:P.s ~sink:P.t ~greedy:7.0 ~max:7.0

let test_fig7 () =
  let expected = Pipeline.compute Pipeline.Lp P.fig7 ~source:P.s ~sink:P.t in
  check_all_methods "fig7" P.fig7 ~source:P.s ~sink:P.t
    ~greedy:(Tin_core.Greedy.flow P.fig7 ~source:P.s ~sink:P.t)
    ~max:expected

let test_solubility_chain () =
  Alcotest.(check bool) "chain is soluble" true
    (Solubility.soluble P.fig5a ~source:P.s ~sink:P.t);
  Alcotest.(check bool) "chain shape" true (Solubility.is_chain P.fig5a ~source:P.s ~sink:P.t)

let test_solubility_fig3 () =
  Alcotest.(check bool) "fig3 not soluble (y has 2 outgoing)" false
    (Solubility.soluble P.fig3 ~source:P.s ~sink:P.t);
  Alcotest.(check bool) "not a chain" false (Solubility.is_chain P.fig3 ~source:P.s ~sink:P.t)

let test_solubility_lemma2_non_chain () =
  (* Source fans out, interior vertices have one outgoing each:
     Lemma 2 applies though it is no chain. *)
  let g =
    Graph.of_edges
      [
        (0, 1, [ (1.0, 5.0) ]);
        (0, 2, [ (2.0, 5.0) ]);
        (1, 3, [ (3.0, 4.0) ]);
        (2, 3, [ (4.0, 4.0) ]);
      ]
  in
  Alcotest.(check bool) "soluble" true (Solubility.soluble g ~source:0 ~sink:3);
  Alcotest.(check bool) "not chain" false (Solubility.is_chain g ~source:0 ~sink:3);
  check_all_methods "lemma2" g ~source:0 ~sink:3 ~greedy:8.0 ~max:8.0

let test_solubility_requires_dag () =
  let g = Graph.of_edges [ (0, 1, [ (1.0, 1.0) ]); (1, 0, [ (2.0, 1.0) ]) ] in
  Alcotest.(check bool) "cyclic graph not soluble" false (Solubility.soluble g ~source:0 ~sink:1)

let test_solubility_dead_end () =
  (* A dead-end interior vertex has out-degree 0: Lemma 2 does not
     apply (greedy may waste quantity into it). *)
  let g =
    Graph.of_edges
      [ (0, 1, [ (1.0, 5.0) ]); (1, 2, [ (2.0, 5.0) ]); (1, 3, [ (3.0, 5.0) ]); (3, 4, [ (4.0, 5.0) ]) ]
  in
  (* vertex 2 is a dead end (sink is 4) *)
  Alcotest.(check bool) "not soluble" false (Solubility.soluble g ~source:0 ~sink:4)

let test_classify () =
  (* Class A: soluble as-is. *)
  Alcotest.(check string) "fig5a class A" "Class A"
    (Pipeline.cls_name (Pipeline.classify P.fig5a ~source:P.s ~sink:P.t));
  (* Class C: fig3 stays insoluble (nothing for preprocessing to remove). *)
  Alcotest.(check string) "fig3 class C" "Class C"
    (Pipeline.cls_name (Pipeline.classify P.fig3 ~source:P.s ~sink:P.t));
  (* Class B: preprocessing removes the branch that breaks Lemma 2. *)
  let g =
    Graph.of_edges
      [
        (0, 1, [ (1.0, 5.0) ]);
        (1, 2, [ (2.0, 5.0) ]);
        (1, 3, [ (0.5, 5.0) ]);
        (* dies in preprocessing: too early *)
        (3, 2, [ (9.0, 5.0) ]);
      ]
  in
  Alcotest.(check string) "class B" "Class B"
    (Pipeline.cls_name (Pipeline.classify g ~source:0 ~sink:2))

let test_report () =
  let r = Pipeline.report P.fig3 ~source:P.s ~sink:P.t in
  Check.check_flow "value" 5.0 r.Pipeline.value;
  Alcotest.(check bool) "class C" true (r.Pipeline.cls = Pipeline.C);
  Alcotest.(check int) "vars before" 3 r.Pipeline.lp_vars_before;
  Alcotest.(check bool) "vars after <= before" true
    (r.Pipeline.lp_vars_after <= r.Pipeline.lp_vars_before)

let test_report_soluble () =
  let r = Pipeline.report P.fig5a ~source:P.s ~sink:P.t in
  Alcotest.(check bool) "class A" true (r.Pipeline.cls = Pipeline.A);
  Alcotest.(check int) "no LP" 0 r.Pipeline.lp_vars_after

let test_zero_flow_via_preprocess () =
  let g = Graph.of_edges [ (0, 1, [ (10.0, 5.0) ]); (1, 2, [ (1.0, 5.0) ]) ] in
  List.iter
    (fun m ->
      Check.check_flow (Pipeline.method_name m) 0.0 (Pipeline.compute m g ~source:0 ~sink:2))
    Pipeline.[ Greedy; Lp; Pre; Pre_sim; Time_expanded ]

let test_cyclic_fallback () =
  (* Pre/PreSim fall back to the time-expanded reduction on non-DAG
     inputs instead of failing. *)
  let g =
    Graph.of_edges
      [
        (0, 1, [ (1.0, 4.0) ]);
        (1, 2, [ (2.0, 4.0) ]);
        (2, 1, [ (3.0, 4.0) ]);
        (1, 3, [ (4.0, 4.0) ]);
      ]
  in
  Check.check_flow "Pre on cyclic" 4.0 (Pipeline.compute Pipeline.Pre g ~source:0 ~sink:3);
  Check.check_flow "PreSim on cyclic" 4.0 (Pipeline.compute Pipeline.Pre_sim g ~source:0 ~sink:3);
  Alcotest.(check string) "classified C" "Class C"
    (Pipeline.cls_name (Pipeline.classify g ~source:0 ~sink:3))

let test_greedy_can_be_arbitrarily_worse () =
  (* Scale Figure 3 quantities: the greedy/max gap grows linearly —
     "the flow computed by the greedy algorithm can be arbitrarily
     smaller than the maximum possible flow". *)
  let scale k =
    Graph.of_edges
      [
        (P.s, P.y, [ (1.0, 5.0 *. k) ]);
        (P.s, P.z, [ (2.0, 3.0 *. k) ]);
        (P.y, P.z, [ (3.0, 5.0 *. k) ]);
        (P.y, P.t, [ (4.0, 4.0 *. k) ]);
        (P.z, P.t, [ (5.0, 1.0) ]);
      ]
  in
  let g = scale 100.0 in
  let greedy = Pipeline.compute Pipeline.Greedy g ~source:P.s ~sink:P.t in
  let best = Pipeline.max_flow g ~source:P.s ~sink:P.t in
  Alcotest.(check bool) "gap grows" true (best /. greedy > 100.0)

let () =
  Alcotest.run "pipeline"
    [
      ( "method-agreement",
        [
          Alcotest.test_case "figure 3" `Quick test_fig3;
          Alcotest.test_case "figure 1(a)" `Quick test_fig1a;
          Alcotest.test_case "figure 5(a)" `Quick test_fig5a;
          Alcotest.test_case "figure 7" `Quick test_fig7;
        ] );
      ( "solubility",
        [
          Alcotest.test_case "chain" `Quick test_solubility_chain;
          Alcotest.test_case "figure 3" `Quick test_solubility_fig3;
          Alcotest.test_case "lemma 2 non-chain" `Quick test_solubility_lemma2_non_chain;
          Alcotest.test_case "requires DAG" `Quick test_solubility_requires_dag;
          Alcotest.test_case "dead end" `Quick test_solubility_dead_end;
        ] );
      ( "classification",
        [
          Alcotest.test_case "classes" `Quick test_classify;
          Alcotest.test_case "report" `Quick test_report;
          Alcotest.test_case "report (soluble)" `Quick test_report_soluble;
          Alcotest.test_case "zero flow" `Quick test_zero_flow_via_preprocess;
          Alcotest.test_case "cyclic fallback" `Quick test_cyclic_fallback;
          Alcotest.test_case "greedy arbitrarily worse" `Quick test_greedy_can_be_arbitrarily_worse;
        ] );
    ]
