(* Deterministic random problem generators for property tests.  All
   take an explicit PRNG so qcheck can drive them from an integer seed
   (graphs themselves do not shrink well; seeds are reported on
   failure and reproduce exactly). *)

module Prng = Tin_util.Prng
module Pattern = Tin_patterns.Pattern

(* Random DAG flow problem: vertices 0..n-1 with 0 as designated
   source and n-1 as sink; edges only go from lower to higher index.
   Integral times in a small range (so timestamp ties happen) and
   integral quantities (so flow equalities are exact). *)
let random_dag ?(max_v = 8) ?(max_edges = 14) ?(max_inter = 3) rng =
  let n = 2 + Prng.int rng (max_v - 1) in
  let n_edges = 1 + Prng.int rng max_edges in
  let g = ref (Graph.add_vertex (Graph.add_vertex Graph.empty 0) (n - 1)) in
  for _ = 1 to n_edges do
    let i = Prng.int rng (n - 1) in
    let j = i + 1 + Prng.int rng (n - 1 - i) in
    let n_inter = 1 + Prng.int rng max_inter in
    let is =
      List.init n_inter (fun _ ->
          Interaction.make
            ~time:(float_of_int (Prng.int rng 20))
            ~qty:(float_of_int (Prng.int rng 10)))
    in
    g := Graph.add_edge !g ~src:i ~dst:j is
  done;
  (!g, 0, n - 1)

(* Random general directed graph (cycles allowed) — for the greedy
   scan and the LP/time-expansion equivalence, which do not need
   DAGs. *)
let random_digraph ?(max_v = 7) ?(max_edges = 12) ?(max_inter = 3) rng =
  let n = 2 + Prng.int rng (max_v - 1) in
  let n_edges = 1 + Prng.int rng max_edges in
  let g = ref (Graph.add_vertex (Graph.add_vertex Graph.empty 0) (n - 1)) in
  for _ = 1 to n_edges do
    let i = Prng.int rng n in
    let j = Prng.int rng n in
    if i <> j then begin
      let n_inter = 1 + Prng.int rng max_inter in
      let is =
        List.init n_inter (fun _ ->
            Interaction.make
              ~time:(float_of_int (Prng.int rng 20))
              ~qty:(float_of_int (Prng.int rng 10)))
      in
      g := Graph.add_edge !g ~src:i ~dst:j is
    end
  done;
  (!g, 0, n - 1)

(* Random chain s=0 → 1 → ... → k: Lemma 1 family. *)
let random_chain ?(max_len = 6) ?(max_inter = 4) rng =
  let k = 1 + Prng.int rng max_len in
  let g = ref Graph.empty in
  for i = 0 to k - 1 do
    let n_inter = 1 + Prng.int rng max_inter in
    let is =
      List.init n_inter (fun _ ->
          Interaction.make
            ~time:(float_of_int (Prng.int rng 30))
            ~qty:(float_of_int (Prng.int rng 10)))
    in
    g := Graph.add_edge !g ~src:i ~dst:(i + 1) is
  done;
  (!g, 0, k)

(* Random Lemma-2 family: a DAG where every vertex except source and
   sink has exactly one outgoing edge.  Built backwards: each interior
   vertex picks one higher-indexed target; the source sprays edges. *)
let random_lemma2 ?(max_v = 8) ?(max_inter = 3) rng =
  let n = 3 + Prng.int rng (max_v - 2) in
  let sink = n - 1 in
  let g = ref (Graph.add_vertex (Graph.add_vertex Graph.empty 0) sink) in
  let interactions () =
    List.init
      (1 + Prng.int rng max_inter)
      (fun _ ->
        Interaction.make
          ~time:(float_of_int (Prng.int rng 25))
          ~qty:(float_of_int (Prng.int rng 10)))
  in
  for i = 1 to n - 2 do
    let j = i + 1 + Prng.int rng (n - 1 - i) in
    g := Graph.add_edge !g ~src:i ~dst:j (interactions ())
  done;
  (* Source reaches a random subset of interior vertices. *)
  let n_src = 1 + Prng.int rng (n - 1) in
  for _ = 1 to n_src do
    let j = 1 + Prng.int rng (n - 1) in
    g := Graph.add_edge !g ~src:0 ~dst:j (interactions ())
  done;
  (!g, 0, sink)

(* A random small Static network with reciprocal edges for pattern
   tests. *)
let random_static ?(n = 12) ?(edges = 30) ?(max_inter = 2) rng =
  let acc = ref [] in
  for _ = 1 to edges do
    let i = Prng.int rng n and j = Prng.int rng n in
    if i <> j then begin
      let is =
        List.init
          (1 + Prng.int rng max_inter)
          (fun _ ->
            Interaction.make
              ~time:(float_of_int (Prng.int rng 20))
              ~qty:(float_of_int (1 + Prng.int rng 9)))
      in
      acc := (i, j, is) :: !acc;
      if Prng.bool rng then begin
        let back =
          List.init
            (1 + Prng.int rng max_inter)
            (fun _ ->
              Interaction.make
                ~time:(float_of_int (Prng.int rng 20))
                ~qty:(float_of_int (1 + Prng.int rng 9)))
        in
        acc := (j, i, back) :: !acc
      end
    end
  done;
  (* Guarantee at least one edge so Static.of_list is non-trivial. *)
  if !acc = [] then acc := [ (0, 1, [ Interaction.make ~time:1.0 ~qty:1.0 ]) ];
  Static.of_list !acc

(* Random valid pattern for DSL round-trip tests: a forward chain
   0→1→…→n-1 (so the enumeration-order and unique-sink requirements of
   Pattern.make hold by construction) plus random extra forward edges,
   optionally made cyclic by giving the last vertex the source's label
   (in which case the direct edge 0→n-1 is excluded — same-label
   vertices cannot be adjacent). *)
let random_pattern ?(max_v = 5) rng =
  let n = 3 + Prng.int rng (max_v - 2) in
  let cyclic = Prng.bool rng in
  let labels = Array.init n (fun i -> i) in
  if cyclic then labels.(n - 1) <- 0;
  let edges = ref (List.init (n - 1) (fun i -> (i, i + 1))) in
  let n_extra = Prng.int rng n in
  for _ = 1 to n_extra do
    let i = Prng.int rng (n - 1) in
    let j = i + 1 + Prng.int rng (n - 1 - i) in
    let forbidden = cyclic && i = 0 && j = n - 1 in
    if (not forbidden) && not (List.mem (i, j) !edges) then edges := (i, j) :: !edges
  done;
  (* Keep the sink unique: drop extra edges out of n-1 (none are
     generated — all extras are forward), and ensure every interior
     vertex keeps its chain edge (it does). *)
  Pattern.make ~name:"random" ~labels ~edges:(List.sort compare !edges)
