(* Shared alcotest/qcheck plumbing. *)

let approx ?(eps = 1e-6) () =
  Alcotest.testable
    (fun ppf f -> Format.fprintf ppf "%.9g" f)
    (fun a b -> Tin_util.Fcmp.approx_eq ~eps a b)

let flow = approx ()

let check_flow msg expected actual = Alcotest.check flow msg expected actual

let graph =
  Alcotest.testable (fun ppf g -> Graph.pp ppf g) Graph.equal

let interactions =
  Alcotest.testable
    (fun ppf is -> Interaction.pp_list ppf is)
    (List.equal Interaction.equal)

(* qcheck property over a PRNG seed, registered as an alcotest case. *)
let seeded_property ?(count = 200) name prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count QCheck.(small_int) (fun seed ->
         prop (Tin_util.Prng.create ~seed)))
