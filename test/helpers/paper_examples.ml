(* The worked examples of the paper, reconstructed from its figures and
   traces.  Vertex naming below follows the figures. *)

let v name =
  match name with
  | "s" -> 0
  | "x" -> 1
  | "y" -> 2
  | "z" -> 3
  | "w" -> 4
  | "t" -> 5
  | "u" -> 6
  | _ -> invalid_arg ("Paper_examples.v: " ^ name)

let s = v "s"
let x = v "x"
let y = v "y"
let z = v "z"
let w = v "w"
let t = v "t"
let u = v "u"

(* Figure 1(a): the toy transaction network of the introduction.
   Greedy flow 2, maximum flow 5. *)
let fig1a =
  Graph.of_edges
    [
      (s, x, [ (1.0, 3.0); (7.0, 5.0) ]);
      (x, z, [ (5.0, 5.0) ]);
      (s, y, [ (2.0, 6.0) ]);
      (y, z, [ (8.0, 5.0) ]);
      (y, t, [ (9.0, 4.0) ]);
      (z, t, [ (2.0, 3.0); (10.0, 1.0) ]);
    ]

(* Figure 3 / Tables 2-3: greedy flow 1, maximum flow 5. *)
let fig3 =
  Graph.of_edges
    [
      (s, y, [ (1.0, 5.0) ]);
      (s, z, [ (2.0, 3.0) ]);
      (y, z, [ (3.0, 5.0) ]);
      (y, t, [ (4.0, 4.0) ]);
      (z, t, [ (5.0, 1.0) ]);
    ]

(* Figure 5(a): a chain; its simplification collapses it to a single
   edge (s,t) carrying {(6,3), (8,4)}; flow 7. *)
let fig5a =
  Graph.of_edges
    [
      (s, x, [ (1.0, 5.0); (4.0, 3.0); (5.0, 2.0) ]);
      (x, y, [ (3.0, 3.0); (7.0, 4.0) ]);
      (y, t, [ (6.0, 3.0); (8.0, 6.0) ]);
    ]

let fig5a_reduced_edge = Interaction.of_pairs [ (6.0, 3.0); (8.0, 4.0) ]

(* Figure 6, DAG G1: interaction-level preprocessing only. *)
let fig6_g1 =
  Graph.of_edges
    [
      (s, x, [ (5.0, 3.0); (8.0, 3.0) ]);
      (s, y, [ (9.0, 7.0) ]);
      (s, z, [ (10.0, 5.0) ]);
      (x, y, [ (2.0, 7.0); (12.0, 4.0) ]);
      (x, z, [ (1.0, 2.0); (13.0, 1.0) ]);
      (y, t, [ (3.0, 3.0); (15.0, 2.0) ]);
      (z, t, [ (4.0, 2.0); (11.0, 4.0) ]);
    ]

let fig6_g1_expected =
  Graph.of_edges
    [
      (s, x, [ (5.0, 3.0); (8.0, 3.0) ]);
      (s, y, [ (9.0, 7.0) ]);
      (s, z, [ (10.0, 5.0) ]);
      (x, y, [ (12.0, 4.0) ]);
      (x, z, [ (13.0, 1.0) ]);
      (y, t, [ (15.0, 2.0) ]);
      (z, t, [ (11.0, 4.0) ]);
    ]

(* Figure 6, DAG G2: vertex/edge cascade. *)
let fig6_g2 =
  Graph.of_edges
    [
      (s, x, [ (5.0, 3.0); (8.0, 3.0) ]);
      (s, z, [ (10.0, 5.0) ]);
      (s, t, [ (9.0, 7.0) ]);
      (x, y, [ (3.0, 4.0) ]);
      (y, t, [ (2.0, 7.0); (12.0, 4.0) ]);
      (y, z, [ (1.0, 2.0); (13.0, 1.0) ]);
      (z, t, [ (4.0, 2.0); (11.0, 4.0) ]);
    ]

let fig6_g2_expected =
  Graph.of_edges
    [ (s, z, [ (10.0, 5.0) ]); (s, t, [ (9.0, 7.0) ]); (z, t, [ (11.0, 4.0) ]) ]

(* Figure 7: iterated chain simplification with edge merging.  The LP
   of the initial graph has 9 variables; the simplified one has 3. *)
let fig7 =
  Graph.of_edges
    [
      (s, y, [ (1.0, 2.0); (4.0, 3.0); (5.0, 2.0) ]);
      (y, z, [ (3.0, 3.0); (7.0, 1.0) ]);
      (s, x, [ (9.0, 2.0); (12.0, 5.0) ]);
      (x, w, [ (10.0, 3.0); (14.0, 4.0) ]);
      (s, z, [ (2.0, 5.0); (11.0, 2.0) ]);
      (z, w, [ (6.0, 3.0); (8.0, 6.0) ]);
      (w, t, [ (15.0, 7.0) ]);
      (w, u, [ (13.0, 5.0) ]);
      (u, t, [ (16.0, 6.0) ]);
    ]

let fig7_expected =
  Graph.of_edges
    [
      (s, w, [ (6.0, 3.0); (8.0, 5.0); (10.0, 2.0); (14.0, 4.0) ]);
      (w, t, [ (15.0, 7.0) ]);
      (w, u, [ (13.0, 5.0) ]);
      (u, t, [ (16.0, 6.0) ]);
    ]

(* Figure 2(a): the small transaction network used for the pattern
   examples (u1..u4 mapped to 1..4). *)
let fig2a =
  Graph.of_edges
    [
      (1, 2, [ (2.0, 5.0); (4.0, 3.0); (8.0, 1.0) ]);
      (2, 3, [ (3.0, 4.0); (5.0, 2.0) ]);
      (3, 1, [ (1.0, 2.0); (6.0, 5.0) ]);
      (4, 1, [ (7.0, 6.0) ]);
      (1, 4, [ (9.0, 4.0) ]);
      (3, 4, [ (10.0, 1.0) ]);
    ]
