(* Dataset substrate: generator determinism and shape, subgraph
   extraction (Section 6.2). *)

module Spec = Tin_datasets.Spec
module Generator = Tin_datasets.Generator
module Extract = Tin_datasets.Extract
module Pipeline = Tin_core.Pipeline

(* A small spec so tests run fast. *)
let tiny =
  Spec.
    {
      name = "tiny";
      n_vertices = 300;
      n_base_edges = 700;
      zipf_exponent = 1.1;
      reciprocity = 0.2;
      extra_interactions_mean = 0.5;
      qty_mu = 1.0;
      qty_sigma = 1.0;
      horizon = 1000.0;
      n_cycle_seeds = 20;
      unit = "u";
    }

let net = Generator.generate ~seed:7 tiny

let test_generator_deterministic () =
  let a = Generator.generate ~seed:11 tiny and b = Generator.generate ~seed:11 tiny in
  Alcotest.(check int) "same edges" (Static.n_edges a) (Static.n_edges b);
  Alcotest.(check int) "same interactions" (Static.n_interactions a) (Static.n_interactions b);
  let sa = Generator.stats a and sb = Generator.stats b in
  Alcotest.(check (float 1e-12)) "same avg qty" sa.Generator.avg_qty sb.Generator.avg_qty

let test_generator_seed_matters () =
  let a = Generator.generate ~seed:1 tiny and b = Generator.generate ~seed:2 tiny in
  Alcotest.(check bool) "different networks" true
    (Static.n_interactions a <> Static.n_interactions b
    || Generator.stats a <> Generator.stats b)

let test_generator_shape () =
  let s = Generator.stats net in
  Alcotest.(check int) "all vertices present" tiny.Spec.n_vertices s.Generator.n_vertices;
  Alcotest.(check bool) "enough interactions" true
    (s.Generator.n_interactions >= tiny.Spec.n_base_edges);
  Alcotest.(check bool) "positive quantities" true (s.Generator.avg_qty > 0.0)

let test_generator_has_cycles () =
  (* Planted cycles guarantee the pattern experiments have material. *)
  let t2 = Tin_patterns.Tables.cycles2 net in
  let t3 = Tin_patterns.Tables.cycles3 net in
  Alcotest.(check bool) "2-cycles exist" true (Tin_patterns.Tables.n_rows t2 > 0);
  Alcotest.(check bool) "3-cycles exist" true (Tin_patterns.Tables.n_rows t3 > 0)

let test_generator_hub_skew () =
  (* Zipf endpoints: the hottest vertex should see far more edges than
     the median vertex. *)
  let n = Static.n_vertices net in
  let deg = Array.init n (fun v -> Static.out_degree net v + Static.in_degree net v) in
  Array.sort compare deg;
  let hottest = deg.(n - 1) and median = deg.(n / 2) in
  Alcotest.(check bool) "skewed degrees" true (hottest > 5 * (max 1 median))

let test_extract_finds_subgraphs () =
  let problems = Extract.extract net in
  Alcotest.(check bool) "found some" true (List.length problems > 0);
  List.iter
    (fun p ->
      Alcotest.(check bool) "DAG" true (Topo.is_dag p.Extract.graph);
      Alcotest.(check bool) "source in graph" true (Graph.mem_vertex p.Extract.graph p.Extract.source);
      Alcotest.(check bool) "sink in graph" true (Graph.mem_vertex p.Extract.graph p.Extract.sink);
      Alcotest.(check int) "source has no incoming" 0 (Graph.in_degree p.Extract.graph p.Extract.source);
      (* The flow machinery must accept every extracted problem. *)
      let greedy = Tin_core.Greedy.flow p.Extract.graph ~source:p.Extract.source ~sink:p.Extract.sink in
      let best = Pipeline.max_flow p.Extract.graph ~source:p.Extract.source ~sink:p.Extract.sink in
      Alcotest.(check bool) "greedy <= max" true (greedy <= best +. 1e-6))
    problems

let test_extract_respects_caps () =
  let all = Extract.extract net in
  let capped = Extract.extract ~max_subgraphs:3 net in
  Alcotest.(check int) "max_subgraphs" (min 3 (List.length all)) (List.length capped);
  let small = Extract.extract ~max_interactions:2 net in
  List.iter
    (fun p -> Alcotest.(check bool) "interaction cap" true (p.Extract.n_interactions <= 2))
    small

let test_extract_none_for_acyclic_seed () =
  (* A pure DAG network has no cyclic seeds at all. *)
  let dag =
    Static.of_list
      [
        (0, 1, [ Interaction.make ~time:1.0 ~qty:1.0 ]);
        (1, 2, [ Interaction.make ~time:2.0 ~qty:1.0 ]);
      ]
  in
  Alcotest.(check int) "nothing extracted" 0 (List.length (Extract.extract dag))

let test_extract_2cycle_seed () =
  let net2 =
    Static.of_list
      [
        (10, 20, [ Interaction.make ~time:1.0 ~qty:5.0 ]);
        (20, 10, [ Interaction.make ~time:2.0 ~qty:3.0 ]);
      ]
  in
  match Extract.extract net2 with
  | [ p1; p2 ] ->
      (* both endpoints act as seeds *)
      Alcotest.(check (list int)) "seeds" [ 10; 20 ] (List.sort compare [ p1.Extract.seed; p2.Extract.seed ]);
      let flow p = Pipeline.max_flow p.Extract.graph ~source:p.Extract.source ~sink:p.Extract.sink in
      let f1 = flow p1 and f2 = flow p2 in
      Alcotest.(check (list (float 1e-9))) "cycle flows" [ 0.0; 3.0 ]
        (List.sort compare [ f1; f2 ])
  | other -> Alcotest.failf "expected 2 problems, got %d" (List.length other)

let test_summarize () =
  let problems = Extract.extract net in
  let s = Extract.summarize problems in
  Alcotest.(check int) "count" (List.length problems) s.Extract.n_subgraphs;
  Alcotest.(check bool) "positive stats" true
    (s.Extract.avg_vertices > 0.0 && s.Extract.avg_edges > 0.0 && s.Extract.avg_interactions > 0.0);
  let empty = Extract.summarize [] in
  Alcotest.(check int) "empty" 0 empty.Extract.n_subgraphs

let test_specs_sane () =
  List.iter
    (fun (s : Spec.t) ->
      Alcotest.(check bool) (s.Spec.name ^ " positive sizes") true
        (s.Spec.n_vertices > 0 && s.Spec.n_base_edges > 0 && s.Spec.horizon > 0.0))
    Spec.all;
  let scaled = Spec.scaled ~factor:0.1 Spec.bitcoin in
  Alcotest.(check int) "scaled vertices" (Spec.bitcoin.Spec.n_vertices / 10) scaled.Spec.n_vertices

let () =
  Alcotest.run "datasets"
    [
      ( "generator",
        [
          Alcotest.test_case "deterministic" `Quick test_generator_deterministic;
          Alcotest.test_case "seed matters" `Quick test_generator_seed_matters;
          Alcotest.test_case "shape" `Quick test_generator_shape;
          Alcotest.test_case "has cycles" `Quick test_generator_has_cycles;
          Alcotest.test_case "hub skew" `Quick test_generator_hub_skew;
        ] );
      ( "extract",
        [
          Alcotest.test_case "finds valid problems" `Quick test_extract_finds_subgraphs;
          Alcotest.test_case "respects caps" `Quick test_extract_respects_caps;
          Alcotest.test_case "acyclic network" `Quick test_extract_none_for_acyclic_seed;
          Alcotest.test_case "2-cycle seed" `Quick test_extract_2cycle_seed;
          Alcotest.test_case "summaries" `Quick test_summarize;
          Alcotest.test_case "specs sane" `Quick test_specs_sane;
        ] );
    ]
