(* End-to-end integration tests of the tinflow CLI binary: generate a
   network, then exercise every subcommand against it and check exit
   codes and key output fragments.  The binary is a declared dune
   dependency, reachable relatively from the test's working
   directory. *)

let exe =
  (* Under `dune runtest` the cwd is _build/default/test; under
     `dune exec` it is the project root. *)
  List.find_opt Sys.file_exists
    [ "../bin/tinflow.exe"; "_build/default/bin/tinflow.exe"; "bin/tinflow.exe" ]
  |> Option.value ~default:"../bin/tinflow.exe"

let run_capture args =
  let out = Filename.temp_file "tinflow_out" ".txt" in
  let cmd = Printf.sprintf "%s %s > %s 2>&1" (Filename.quote exe) args (Filename.quote out) in
  let code = Sys.command cmd in
  let content = In_channel.with_open_text out In_channel.input_all in
  Sys.remove out;
  (code, content)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let check_ok msg (code, content) =
  if code <> 0 then Alcotest.failf "%s: exit %d, output:\n%s" msg code content;
  content

let csv = Filename.temp_file "tinflow_net" ".csv"

let test_generate () =
  let out =
    check_ok "generate" (run_capture (Printf.sprintf "generate %s --shape prosper --factor 0.04 --seed 9" csv))
  in
  Alcotest.(check bool) "reports stats" true (contains out "wrote");
  Alcotest.(check bool) "file exists" true (Sys.file_exists csv)

let test_flow_explicit_endpoints () =
  let out = check_ok "flow" (run_capture (Printf.sprintf "flow %s -s 0 -t 1" csv)) in
  Alcotest.(check bool) "greedy line" true (contains out "greedy flow");
  Alcotest.(check bool) "maximum line" true (contains out "maximum flow");
  Alcotest.(check bool) "difficulty line" true (contains out "Class")

let test_flow_synthetic_endpoints_hint () =
  (* The dense synthetic network puts every vertex on a cycle, so the
     default synthetic endpoints cannot apply; the CLI must explain
     rather than crash. *)
  let code, out = run_capture (Printf.sprintf "flow %s" csv) in
  if code = 0 then Alcotest.(check bool) "computed" true (contains out "maximum flow")
  else Alcotest.(check bool) "hint shown" true (contains out "hint:")

let test_flow_split_and_method () =
  let out = check_ok "flow split" (run_capture (Printf.sprintf "flow %s --split 0 -m timeexp" csv)) in
  Alcotest.(check bool) "method output" true (contains out "TimeExp flow")

let test_paths () =
  let out = check_ok "paths" (run_capture (Printf.sprintf "paths %s -s 0 -t 1 --top 3" csv)) in
  Alcotest.(check bool) "route summary" true (contains out "temporal routes")

let test_provenance () =
  (* A fixed miniature network with a known answer: vertex 3 absorbs 6
     units, 5 of which were born at the 0->1 interaction under every
     policy's totals (the vectors differ). *)
  let net = Filename.temp_file "tinflow_prov" ".csv" in
  Out_channel.with_open_text net (fun oc ->
      output_string oc "src,dst,time,qty\n0,1,1,5\n2,1,2,3\n1,3,3,6\n");
  Fun.protect
    ~finally:(fun () -> Sys.remove net)
    (fun () ->
      let out =
        check_ok "provenance"
          (run_capture (Printf.sprintf "provenance %s --sink 3 --policy lrb --top 5" net))
      in
      Alcotest.(check bool) "header" true (contains out "provenance of vertex 3");
      Alcotest.(check bool) "policy named" true (contains out "lrb policy");
      Alcotest.(check bool) "total reported" true (contains out "buffered quantity: 6");
      Alcotest.(check bool) "origin row" true (contains out "interaction #0 0->1");
      Alcotest.(check bool) "spill stats" true (contains out "spills: 0");
      let out2 =
        check_ok "provenance rooted"
          (run_capture
             (Printf.sprintf "provenance %s --sink 3 --source 0 --policy prop" net))
      in
      Alcotest.(check bool) "rooted total = greedy" true
        (contains out2 "buffered quantity: 5");
      let code, err = run_capture (Printf.sprintf "provenance %s --sink 99" net) in
      Alcotest.(check bool) "unknown sink rejected" true (code <> 0);
      Alcotest.(check bool) "unknown sink diagnostic" true (contains err "99"))

let test_profile () =
  let out = check_ok "profile" (run_capture (Printf.sprintf "profile %s -s 0 -t 1 --greedy" csv)) in
  Alcotest.(check bool) "csv header" true (contains out "time,cumulative_flow")

let test_patterns_builtin_and_custom () =
  let out =
    check_ok "patterns"
      (run_capture (Printf.sprintf "patterns %s -p p2 --custom \"a->b, b->a'\" --limit 500" csv))
  in
  Alcotest.(check bool) "table rendered" true (contains out "Pattern instances");
  Alcotest.(check bool) "builtin row" true (contains out "P2");
  Alcotest.(check bool) "custom row" true (contains out "a->b, b->a'")

let test_patterns_precompute () =
  let out =
    check_ok "patterns pb" (run_capture (Printf.sprintf "patterns %s -p rp2 --precompute" csv))
  in
  Alcotest.(check bool) "PB mode" true (contains out "(PB)")

let test_patterns_parallel_matches_sequential () =
  (* --jobs must not change untruncated results; --hybrid must agree
     with the plain graph-browsing output. *)
  let args j extra = Printf.sprintf "patterns %s -p p2 -p p3 --jobs %d%s" csv j extra in
  let seq = check_ok "patterns jobs=1" (run_capture (args 1 "")) in
  let par = check_ok "patterns jobs=3" (run_capture (args 3 "")) in
  let hybrid = check_ok "patterns hybrid" (run_capture (args 3 " --hybrid")) in
  Alcotest.(check string) "jobs=3 output identical" seq par;
  Alcotest.(check bool) "hybrid mode banner" true (contains hybrid "GB hybrid");
  (* Same table body: compare everything after the banner line. *)
  let body s = match String.index_opt s '\n' with
    | Some i -> String.sub s (i + 1) (String.length s - i - 1)
    | None -> s
  in
  Alcotest.(check string) "hybrid table identical" (body seq) (body hybrid);
  let code, _ = run_capture (args 0 "") in
  Alcotest.(check bool) "jobs=0 rejected" true (code <> 0)

let test_patterns_time_budget () =
  let out =
    check_ok "patterns budget"
      (run_capture (Printf.sprintf "patterns %s -p p3 --time-budget-ms 0.001" csv))
  in
  Alcotest.(check bool) "table rendered" true (contains out "Pattern instances")

let test_metrics_and_trace () =
  (* --metrics prints the counter table to stderr; --trace writes a
     Chrome-trace JSON object with at least one complete span. *)
  let trace = Filename.temp_file "tinflow_trace" ".json" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists trace then Sys.remove trace)
    (fun () ->
      let out =
        check_ok "flow --metrics --trace"
          (run_capture (Printf.sprintf "flow %s -s 0 -t 1 --metrics --trace %s" csv trace))
      in
      Alcotest.(check bool) "counter table" true (contains out "observability: counters");
      Alcotest.(check bool) "a counter is reported" true (contains out "pipeline.stage.");
      Alcotest.(check bool) "trace announced" true (contains out "trace written to");
      let json = In_channel.with_open_text trace In_channel.input_all in
      Alcotest.(check bool) "JSON object format" true (String.length json > 0 && json.[0] = '{');
      Alcotest.(check bool) "traceEvents array" true (contains json "\"traceEvents\"");
      Alcotest.(check bool) "dropped_events field" true (contains json "\"dropped_events\"");
      Alcotest.(check bool) "complete events" true (contains json "\"ph\": \"X\"");
      Alcotest.(check bool) "thread metadata" true (contains json "thread_name");
      (* The same flags work on a pattern search and record spans from
         the patterns layer. *)
      let out2 =
        check_ok "patterns --metrics --trace"
          (run_capture
             (Printf.sprintf "patterns %s -p p2 --limit 200 --metrics --trace %s" csv trace))
      in
      Alcotest.(check bool) "ticket counter" true (contains out2 "catalog.tickets");
      let json2 = In_channel.with_open_text trace In_channel.input_all in
      Alcotest.(check bool) "catalog span" true (contains json2 "catalog.search"))

let test_dot () =
  let out = check_ok "dot" (run_capture (Printf.sprintf "dot %s" csv)) in
  Alcotest.(check bool) "digraph" true (contains out "digraph")

let test_bad_usage () =
  let code, _ = run_capture "flow /nonexistent.csv" in
  Alcotest.(check bool) "nonzero exit" true (code <> 0);
  let code, _ = run_capture "nonsense-subcommand" in
  Alcotest.(check bool) "unknown subcommand" true (code <> 0)

let corrupt_fixture =
  List.find_opt Sys.file_exists [ "data/corrupt.csv"; "test/data/corrupt.csv" ]
  |> Option.value ~default:"data/corrupt.csv"

let test_corrupt_csv_diagnostic () =
  (* Malformed input must produce a file:line:column diagnostic and a
     nonzero exit, not a backtrace. *)
  let code, out = run_capture (Printf.sprintf "flow %s -s 0 -t 1" corrupt_fixture) in
  Alcotest.(check int) "exit 1" 1 code;
  Alcotest.(check bool) "no backtrace" true (not (contains out "Raised at"));
  Alcotest.(check bool) "file:line:column diagnostic" true (contains out "corrupt.csv:3:9");
  Alcotest.(check bool) "names the defect" true (contains out "NaN")

let test_verify_fuzz_clean () =
  let out = check_ok "verify" (run_capture "verify --seed 42 --cases 50") in
  Alcotest.(check bool) "summary" true (contains out "all invariants held")

let test_verify_injected_caught () =
  let dir = Filename.temp_file "tinflow_dump" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () ->
      let code, out =
        run_capture (Printf.sprintf "verify --seed 42 --cases 10 --inject 0.25 --dump %s" dir)
      in
      Alcotest.(check int) "exit 1" 1 code;
      Alcotest.(check bool) "disagreement reported" true (contains out "max-flow-disagreement");
      Alcotest.(check bool) "counterexample path shown" true
        (contains out "minimized counterexample");
      Alcotest.(check bool) "CSV dumped" true
        (Array.exists
           (fun n -> Filename.check_suffix n ".csv")
           (Sys.readdir dir)))

let test_verify_single_network () =
  let out = check_ok "verify csv" (run_capture (Printf.sprintf "verify %s -s 0 -t 1" csv)) in
  Alcotest.(check bool) "all oracles agree" true (contains out "ok: all oracles agree")

let test_log_json () =
  let out =
    check_ok "flow --log-json" (run_capture (Printf.sprintf "flow %s -s 0 -t 1 --log-json" csv))
  in
  Alcotest.(check bool) "run.start event" true (contains out "{\"event\":\"run.start\"");
  Alcotest.(check bool) "run.end event" true (contains out "\"event\":\"run.end\"");
  Alcotest.(check bool) "exit code recorded" true (contains out "\"exit_code\":0")

let test_listen_announces_port () =
  (* --listen 0 binds an ephemeral port, announces it, and shuts the
     endpoint down cleanly when the run ends. *)
  let out =
    check_ok "verify --listen" (run_capture "verify --seed 7 --cases 5 --listen 0")
  in
  Alcotest.(check bool) "endpoint announced" true
    (contains out "serving /metrics, /metrics.json and /healthz on port")

let write_file path contents = Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc contents)

(* --- serve daemon end to end --------------------------------------- *)

let http_request ~port request =
  let sock = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let payload = Bytes.of_string request in
      let off = ref 0 in
      while !off < Bytes.length payload do
        off := !off + Unix.write sock payload !off (Bytes.length payload - !off)
      done;
      let buf = Bytes.create 4096 in
      let acc = Buffer.create 1024 in
      let rec drain () =
        let got = Unix.read sock buf 0 (Bytes.length buf) in
        if got > 0 then begin
          Buffer.add_subbytes acc buf 0 got;
          drain ()
        end
      in
      drain ();
      Buffer.contents acc)

let read_file path = In_channel.with_open_text path In_channel.input_all

(* Wait (with timeout) until the daemon's log satisfies [pred]. *)
let rec await ?(tries = 200) path pred =
  let text = try read_file path with Sys_error _ -> "" in
  if pred text then text
  else if tries = 0 then Alcotest.failf "timed out waiting; log so far:\n%s" text
  else begin
    Unix.sleepf 0.05;
    await ~tries:(tries - 1) path pred
  end

let test_serve_daemon_e2e () =
  (* Full lifecycle: start the daemon on an ephemeral port, stream a
     cycle over POST /ingest, confirm the windowed flow and the
     pattern alert, scrape the serve gauges, then shut down cleanly
     with SIGTERM. *)
  let log = Filename.temp_file "tinflow_serve" ".log" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove log with Sys_error _ -> ())
    (fun () ->
      let err_fd = Unix.openfile log [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
      let pid =
        Unix.create_process exe
          [|
            exe; "serve"; "--source"; "0"; "--sink"; "2"; "--window"; "100"; "--cadence";
            "2"; "--pattern"; "p2"; "--min-flow"; "1"; "--log-json";
          |]
          Unix.stdin Unix.stdout err_fd
      in
      Unix.close err_fd;
      let killed = ref false in
      Fun.protect
        ~finally:(fun () ->
          if not !killed then begin
            (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
            ignore (Unix.waitpid [] pid)
          end)
        (fun () ->
          let text = await log (fun t -> contains t "\"event\":\"serve.start\"") in
          let port =
            let key = "\"port\":" in
            match String.index_opt text 'p' with
            | _ -> (
                let rec find i =
                  if i + String.length key > String.length text then
                    Alcotest.fail "no port in serve.start event"
                  else if String.sub text i (String.length key) = key then begin
                    let stop = ref (i + String.length key) in
                    while
                      !stop < String.length text
                      && text.[!stop] >= '0'
                      && text.[!stop] <= '9'
                    do
                      incr stop
                    done;
                    int_of_string (String.sub text (i + String.length key) (!stop - i - String.length key))
                  end
                  else find (i + 1)
                in
                find 0)
          in
          (* Stream a 2-cycle: source feeds 0->1->2 (flow 4) and 1->0
             returns 3, so P2 alerts on the cadence tick. *)
          let body =
            "{\"src\":0,\"dst\":1,\"time\":1,\"qty\":5}\n\
             {\"src\":1,\"dst\":0,\"time\":2,\"qty\":3}\n\
             {\"src\":1,\"dst\":2,\"time\":3,\"qty\":4}\n"
          in
          let resp =
            http_request ~port
              (Printf.sprintf
                 "POST /ingest HTTP/1.1\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
                 (String.length body) body)
          in
          Alcotest.(check bool) "ingest 200" true (contains resp "HTTP/1.1 200");
          Alcotest.(check bool) "all accepted" true (contains resp "\"accepted\":3");
          (* The daemon's reported flow equals the batch greedy value:
             0->1 delivers 5 at t=1, the return 1->0 drains 3 at t=2,
             so 1->2 can only relay the remaining 2 at t=3. *)
          let status =
            http_request ~port "GET /status HTTP/1.1\r\nConnection: close\r\n\r\n"
          in
          Alcotest.(check bool) "windowed flow exact" true (contains status "\"flow\":2");
          (* The new serve gauges are in the Prometheus exposition. *)
          let metrics =
            http_request ~port "GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n"
          in
          Alcotest.(check bool) "ingested counter" true
            (contains metrics "serve_ingested_total 3");
          Alcotest.(check bool) "window gauge" true
            (contains metrics "serve_window_interactions 3");
          Alcotest.(check bool) "lag gauge present" true
            (contains metrics "serve_ingest_lag_seconds");
          Alcotest.(check bool) "rows gauge present" true
            (contains metrics "serve_rows_recomputed_total");
          (* Clean shutdown on SIGTERM. *)
          Unix.kill pid Sys.sigterm;
          let _, wstatus = Unix.waitpid [] pid in
          killed := true;
          (match wstatus with
          | Unix.WEXITED 0 -> ()
          | Unix.WEXITED n -> Alcotest.failf "serve exited %d" n
          | Unix.WSIGNALED n -> Alcotest.failf "serve killed by signal %d" n
          | Unix.WSTOPPED n -> Alcotest.failf "serve stopped by signal %d" n);
          let final = read_file log in
          Alcotest.(check bool) "pattern alert emitted" true
            (contains final "\"event\":\"serve.alert\"");
          Alcotest.(check bool) "alert names P2" true (contains final "\"pattern\":\"P2\"");
          Alcotest.(check bool) "clean stop event" true
            (contains final "\"event\":\"serve.stop\"")))

let test_convert_roundtrip () =
  let snap = Filename.temp_file "tinflow_conv" ".tinb" in
  let back = Filename.temp_file "tinflow_conv" ".csv" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove snap with Sys_error _ -> ());
      try Sys.remove back with Sys_error _ -> ())
    (fun () ->
      let out = check_ok "convert to tinb" (run_capture (Printf.sprintf "convert %s %s" csv snap)) in
      Alcotest.(check bool) "snapshot summary" true (contains out "snapshot v1");
      (* The snapshot feeds straight back into any subcommand via
         auto-detection. *)
      let out = check_ok "flow on snapshot" (run_capture (Printf.sprintf "flow %s -s 0 -t 1" snap)) in
      Alcotest.(check bool) "maximum line" true (contains out "maximum flow");
      let _ = check_ok "convert back to csv" (run_capture (Printf.sprintf "convert %s %s" snap back)) in
      (* Same network both ways: interaction counts agree. *)
      let c_csv = Tin_graph.Io.load_compact csv in
      let c_back = Tin_graph.Io.load_compact back in
      Alcotest.(check int) "interactions preserved"
        (Tin_graph.Compact.n_interactions c_csv)
        (Tin_graph.Compact.n_interactions c_back))

let test_convert_bad_input () =
  let code, out = run_capture (Printf.sprintf "convert %s out.unknownext" csv) in
  Alcotest.(check bool) "nonzero exit" true (code <> 0);
  Alcotest.(check bool) "names the format" true (contains out "unknown output format")

let test_bench_check () =
  let dir = Filename.temp_file "tinflow_bench" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let baseline = Filename.concat dir "baseline" in
  let cur = Filename.concat dir "BENCH_t.json" in
  Fun.protect
    ~finally:(fun () ->
      let rm_dir d =
        if Sys.file_exists d then begin
          Array.iter (fun n -> Sys.remove (Filename.concat d n)) (Sys.readdir d);
          Sys.rmdir d
        end
      in
      rm_dir baseline;
      rm_dir dir)
    (fun () ->
      write_file cur {|{"wall_ms": 100.0, "iters": 10}|};
      let args extra = Printf.sprintf "bench-check --baseline %s%s %s" baseline extra cur in
      (* Missing baseline: informational, not a failure. *)
      let out = check_ok "bench-check missing baseline" (run_capture (args "")) in
      Alcotest.(check bool) "explains the fix" true (contains out "--update-baseline");
      (* Record the baseline, then an identical run is clean. *)
      let _ = check_ok "bench-check --update-baseline" (run_capture (args " --update-baseline")) in
      Alcotest.(check bool) "baseline written" true
        (Sys.file_exists (Filename.concat baseline "BENCH_t.json"));
      let out = check_ok "bench-check clean" (run_capture (args "")) in
      Alcotest.(check bool) "clean verdict" true (contains out "within tolerance");
      (* A +100% wall-clock regression fails with a per-metric table. *)
      write_file cur {|{"wall_ms": 200.0, "iters": 10}|};
      let code, out = run_capture (args "") in
      Alcotest.(check int) "regression exits 1" 1 code;
      Alcotest.(check bool) "metric named" true (contains out "wall_ms");
      Alcotest.(check bool) "status shown" true (contains out "REGRESSED");
      (* An improvement beyond tolerance is not a failure. *)
      write_file cur {|{"wall_ms": 50.0, "iters": 10}|};
      let out = check_ok "bench-check improved" (run_capture (args "")) in
      Alcotest.(check bool) "improvement flagged" true (contains out "improved");
      (* A wider tolerance absorbs the deviation. *)
      write_file cur {|{"wall_ms": 110.0, "iters": 10}|};
      let _ = check_ok "bench-check tolerant" (run_capture (args " --tolerance 20")) in
      (* Unparsable input and bad flags are usage errors, not crashes. *)
      write_file cur "not json";
      let code, _ = run_capture (args "") in
      Alcotest.(check int) "bad JSON exits 2" 2 code;
      write_file cur {|{"wall_ms": 100.0}|};
      let code, _ = run_capture (args " --tolerance=-3") in
      Alcotest.(check int) "negative tolerance exits 2" 2 code)

let () =
  if not (Sys.file_exists exe) then begin
    print_endline "tinflow binary not found; skipping CLI integration tests";
    exit 0
  end;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists csv then Sys.remove csv)
    (fun () ->
      Alcotest.run "cli"
        [
          ( "tinflow",
            [
              Alcotest.test_case "generate" `Quick test_generate;
              Alcotest.test_case "flow (explicit endpoints)" `Quick test_flow_explicit_endpoints;
              Alcotest.test_case "flow (synthetic endpoints hint)" `Quick
                test_flow_synthetic_endpoints_hint;
              Alcotest.test_case "flow (split, method)" `Quick test_flow_split_and_method;
              Alcotest.test_case "paths" `Quick test_paths;
              Alcotest.test_case "provenance" `Quick test_provenance;
              Alcotest.test_case "profile" `Quick test_profile;
              Alcotest.test_case "patterns builtin+custom" `Quick test_patterns_builtin_and_custom;
              Alcotest.test_case "patterns precompute" `Quick test_patterns_precompute;
              Alcotest.test_case "patterns parallel determinism" `Quick
                test_patterns_parallel_matches_sequential;
              Alcotest.test_case "patterns time budget" `Quick test_patterns_time_budget;
              Alcotest.test_case "metrics and trace flags" `Quick test_metrics_and_trace;
              Alcotest.test_case "dot export" `Quick test_dot;
              Alcotest.test_case "bad usage" `Quick test_bad_usage;
              Alcotest.test_case "corrupt csv diagnostic" `Quick test_corrupt_csv_diagnostic;
              Alcotest.test_case "verify fuzz clean" `Quick test_verify_fuzz_clean;
              Alcotest.test_case "verify injected bug caught" `Quick test_verify_injected_caught;
              Alcotest.test_case "verify single network" `Quick test_verify_single_network;
              Alcotest.test_case "log-json events" `Quick test_log_json;
              Alcotest.test_case "listen announces port" `Quick test_listen_announces_port;
              Alcotest.test_case "serve daemon end to end" `Quick test_serve_daemon_e2e;
              Alcotest.test_case "convert round-trip" `Quick test_convert_roundtrip;
              Alcotest.test_case "convert bad output format" `Quick test_convert_bad_input;
              Alcotest.test_case "bench-check gate" `Quick test_bench_check;
            ] );
        ])
