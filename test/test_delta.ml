(* Delta maintenance of the path tables (the paper's footnote 2):
   applying additions incrementally must give exactly the tables a
   full precomputation over the grown network would. *)

open Tin_testlib
module Tables = Tin_patterns.Tables
module Catalog = Tin_patterns.Catalog
module Delta = Tin_patterns.Delta
module Prng = Tin_util.Prng

let i_ t q = Interaction.make ~time:t ~qty:q

(* Normalize a table into label space for comparison. *)
let normalized net table =
  Array.to_list (Tables.rows table)
  |> List.map (fun r ->
         ( Array.to_list (Array.map (Static.label net) r.Tables.verts),
           r.Tables.flow ))
  |> List.sort compare

let check_equal_tables msg net_a ta net_b tb =
  Alcotest.(check (list (pair (list int) (float 1e-9)))) msg (normalized net_b tb)
    (normalized net_a ta)

let check_state_matches_full msg (d : Delta.t) =
  (* Rebuild from scratch over the same grown network. *)
  let full = Catalog.precompute ~with_chains:(d.Delta.tables.Catalog.c2 <> None) d.Delta.net in
  check_equal_tables (msg ^ ": L2") d.Delta.net d.Delta.tables.Catalog.l2 d.Delta.net full.Catalog.l2;
  check_equal_tables (msg ^ ": L3") d.Delta.net d.Delta.tables.Catalog.l3 d.Delta.net full.Catalog.l3;
  match (d.Delta.tables.Catalog.c2, full.Catalog.c2) with
  | Some a, Some b -> check_equal_tables (msg ^ ": chains") d.Delta.net a d.Delta.net b
  | None, None -> ()
  | _ -> Alcotest.fail "chain-table presence mismatch"

let test_new_cycle_appears () =
  (* 0->1 exists; adding 1->0 creates the 2-cycle (both anchors). *)
  let net = Static.of_list [ (0, 1, [ i_ 1.0 5.0 ]) ] in
  let d = Delta.create ~with_chains:true net in
  Alcotest.(check int) "no cycles yet" 0 (Tables.n_rows d.Delta.tables.Catalog.l2);
  let d = Delta.apply d ~additions:[ (1, 0, [ i_ 2.0 3.0 ]) ] in
  Alcotest.(check int) "two anchored rows" 2 (Tables.n_rows d.Delta.tables.Catalog.l2);
  check_state_matches_full "new cycle" d

let test_existing_row_refreshed () =
  (* A second interaction on 0->1 changes the cycle's flow. *)
  let net = Static.of_list [ (0, 1, [ i_ 1.0 5.0 ]); (1, 0, [ i_ 2.0 3.0 ]) ] in
  let d = Delta.create net in
  let flow_before =
    (Tables.rows d.Delta.tables.Catalog.l2).(0).Tables.flow
  in
  Alcotest.(check (float 1e-9)) "initial cycle flow" 3.0 flow_before;
  (* New early interaction on the return edge raises the flow: 0->1
     delivers 5 at t=1; 1->0 can now return at t=2 (3) and t=4 (2). *)
  let d = Delta.apply d ~additions:[ (1, 0, [ i_ 4.0 2.0 ]) ] in
  check_state_matches_full "refresh" d;
  let row =
    Array.to_list (Tables.rows d.Delta.tables.Catalog.l2)
    |> List.find (fun r -> Static.label d.Delta.net r.Tables.verts.(0) = 0)
  in
  Alcotest.(check (float 1e-9)) "updated flow" 5.0 row.Tables.flow;
  Alcotest.(check bool) "rows were recomputed" true (d.Delta.rows_recomputed > 0)

let test_untouched_rows_survive () =
  (* A disjoint cycle must not be recomputed. *)
  let net =
    Static.of_list
      [
        (0, 1, [ i_ 1.0 5.0 ]);
        (1, 0, [ i_ 2.0 3.0 ]);
        (10, 11, [ i_ 1.0 7.0 ]);
        (11, 10, [ i_ 2.0 7.0 ]);
      ]
  in
  let d = Delta.create net in
  let d = Delta.apply d ~additions:[ (0, 1, [ i_ 5.0 1.0 ]) ] in
  check_state_matches_full "disjoint survives" d;
  (* Only the touched cycle's two anchored rows get rebuilt. *)
  Alcotest.(check int) "two rows recomputed" 2 d.Delta.rows_recomputed

let test_new_vertices () =
  let net = Static.of_list [ (0, 1, [ i_ 1.0 5.0 ]) ] in
  let d = Delta.create ~with_chains:true net in
  let d =
    Delta.apply d ~additions:[ (1, 7, [ i_ 2.0 4.0 ]); (7, 0, [ i_ 3.0 4.0 ]) ]
  in
  Alcotest.(check int) "3-cycle found (3 rotations)" 3 (Tables.n_rows d.Delta.tables.Catalog.l3);
  check_state_matches_full "new vertices" d

let test_self_loop_rejected () =
  let net = Static.of_list [ (0, 1, [ i_ 1.0 5.0 ]) ] in
  let d = Delta.create net in
  Alcotest.check_raises "self loop" (Invalid_argument "Delta.apply: self-loop addition")
    (fun () -> ignore (Delta.apply d ~additions:[ (2, 2, [ i_ 1.0 1.0 ]) ]))

let test_input_state_unchanged () =
  let net = Static.of_list [ (0, 1, [ i_ 1.0 5.0 ]); (1, 0, [ i_ 2.0 3.0 ]) ] in
  let d0 = Delta.create net in
  let rows_before = Tables.n_rows d0.Delta.tables.Catalog.l2 in
  let _ = Delta.apply d0 ~additions:[ (0, 2, [ i_ 1.0 1.0 ]); (2, 0, [ i_ 2.0 1.0 ]) ] in
  Alcotest.(check int) "persistent" rows_before (Tables.n_rows d0.Delta.tables.Catalog.l2)

let prop_delta_equals_full rng =
  (* Random base network, random addition batches: after each batch
     the incremental tables equal a full precomputation. *)
  let net = Gen.random_static ~n:8 ~edges:14 rng in
  let d = ref (Delta.create ~with_chains:true net) in
  let ok = ref true in
  for _ = 1 to 3 do
    let n_adds = 1 + Prng.int rng 4 in
    let additions =
      List.init n_adds (fun _ ->
          let s = Prng.int rng 10 in
          let t = Prng.int rng 10 in
          let t = if t = s then (t + 1) mod 10 else t in
          ( s,
            t,
            [
              Interaction.make
                ~time:(float_of_int (Prng.int rng 20))
                ~qty:(float_of_int (1 + Prng.int rng 9));
            ] ))
    in
    d := Delta.apply !d ~additions;
    let full = Catalog.precompute ~with_chains:true !d.Delta.net in
    let eq t1 t2 = normalized !d.Delta.net t1 = normalized !d.Delta.net t2 in
    ok :=
      !ok
      && eq !d.Delta.tables.Catalog.l2 full.Catalog.l2
      && eq !d.Delta.tables.Catalog.l3 full.Catalog.l3
      && eq (Option.get !d.Delta.tables.Catalog.c2) (Option.get full.Catalog.c2)
  done;
  !ok

let () =
  Alcotest.run "delta"
    [
      ( "delta",
        [
          Alcotest.test_case "new cycle appears" `Quick test_new_cycle_appears;
          Alcotest.test_case "existing row refreshed" `Quick test_existing_row_refreshed;
          Alcotest.test_case "untouched rows survive" `Quick test_untouched_rows_survive;
          Alcotest.test_case "new vertices" `Quick test_new_vertices;
          Alcotest.test_case "self-loop rejected" `Quick test_self_loop_rejected;
          Alcotest.test_case "input state unchanged" `Quick test_input_state_unchanged;
          Check.seeded_property ~count:100 "delta = full rebuild" prop_delta_equals_full;
        ] );
    ]
