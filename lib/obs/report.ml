(* Offline trace analyzer behind [tinflow obs report]: reads a
   Chrome-trace export (a [--trace] file or a flight-recorder dump),
   reassembles the span tree from the trace ids the spans carry in
   their args, and answers the questions the multicore scaling work
   needs: where did the wall-clock go (critical path), how busy was
   each domain (utilization), how evenly did [Batch] chunks spread
   (imbalance), and which span names dominate once their children are
   subtracted (self-times). *)

module Json = Tin_util.Json
module Table = Tin_util.Table

type span = {
  name : string;
  ts_us : float;  (* start, µs, rebased by the exporter *)
  dur_us : float;
  tid : int;
  span_id : string;  (* "" when the trace predates trace contexts *)
  parent_id : string;
}

type domain_stat = {
  d_tid : int;
  d_spans : int;
  d_busy_us : float;  (* union of span intervals, not their sum *)
  d_utilization : float;  (* busy / whole-trace wall *)
}

type chunk_stats = {
  c_count : int;
  c_mean_us : float;
  c_min_us : float;
  c_max_us : float;
  c_stddev_us : float;
  c_per_domain_us : (int * float) list;  (* chunk time by domain, tid ascending *)
  c_imbalance : float;  (* max domain chunk time / mean domain chunk time *)
}

type self_time = { s_name : string; s_count : int; s_total_us : float; s_max_us : float }

type t = {
  spans : int;
  dropped : int;
  wall_us : float;
  roots : int;
  orphans : int;  (* spans whose parent chain does not reach the primary root *)
  root_name : string;  (* "" when the trace has no spans *)
  trace_id : string;
  critical_path : (span * float) list;  (* root-first; float = self contribution µs *)
  critical_path_us : float;
  domains : domain_stat list;
  chunks : chunk_stats option;
  self_times : self_time list;
}

(* ---- parsing ------------------------------------------------------ *)

let arg_str key args = Option.bind (Json.member key args) Json.str

let span_of_event j =
  match (Json.member "ph" j, Json.member "name" j) with
  | Some (Json.Str "X"), Some (Json.Str name) ->
      let numf key = Option.bind (Json.member key j) Json.num in
      let args = Option.value ~default:(Json.Obj []) (Json.member "args" j) in
      Some
        {
          name;
          ts_us = Option.value ~default:0.0 (numf "ts");
          dur_us = Option.value ~default:0.0 (numf "dur");
          tid = int_of_float (Option.value ~default:0.0 (numf "tid"));
          span_id = Option.value ~default:"" (arg_str "span_id" args);
          parent_id = Option.value ~default:"" (arg_str "parent_id" args);
        }
  | _ -> None

let spans_of_doc doc =
  match Json.member "traceEvents" doc with
  | Some (Json.Arr evs) -> Ok (List.filter_map span_of_event evs)
  | _ -> Error "not a Chrome trace: no traceEvents array"

(* ---- interval union (per-domain busy time) ------------------------ *)

let union_us intervals =
  let sorted = List.sort (fun (a, _) (b, _) -> Float.compare a b) intervals in
  let busy, hi =
    List.fold_left
      (fun (busy, hi) (s, e) ->
        if s > hi then (busy +. (e -. s), e)
        else if e > hi then (busy +. (e -. hi), e)
        else (busy, hi))
      (0.0, Float.neg_infinity) sorted
  in
  ignore hi;
  busy

(* ---- analysis ----------------------------------------------------- *)

let span_end s = s.ts_us +. s.dur_us

let analyze ?(top = 10) doc =
  match spans_of_doc doc with
  | Error _ as e -> e
  | Ok [] -> Error "trace contains no complete span events"
  | Ok spans ->
      let dropped =
        match Option.bind (Json.member "dropped_events" doc) Json.num with
        | Some d -> int_of_float d
        | None -> 0
      in
      let n = List.length spans in
      let t_min = List.fold_left (fun a s -> Float.min a s.ts_us) Float.infinity spans in
      let t_max = List.fold_left (fun a s -> Float.max a (span_end s)) Float.neg_infinity spans in
      let wall_us = Float.max 0.0 (t_max -. t_min) in
      (* Span tree: children indexed by parent span id.  Spans without
         ids (pre-trace-context exports) all classify as roots and the
         tree degenerates gracefully to a flat list. *)
      let by_id = Hashtbl.create n in
      List.iter (fun s -> if s.span_id <> "" then Hashtbl.replace by_id s.span_id s) spans;
      let children = Hashtbl.create n in
      let is_root s = s.parent_id = "" || not (Hashtbl.mem by_id s.parent_id) in
      List.iter
        (fun s ->
          if not (is_root s) then
            Hashtbl.replace children s.parent_id
              (s :: Option.value ~default:[] (Hashtbl.find_opt children s.parent_id)))
        spans;
      let roots = List.filter is_root spans in
      let primary =
        List.fold_left (fun best s -> if s.dur_us > best.dur_us then s else best)
          (List.hd roots) roots
      in
      (* Orphans: spans whose parent chain ends at some other root —
         broken stitching if everything was recorded under one
         request.  Chain-walk with a step bound so a cyclic (corrupt)
         input terminates. *)
      let reaches_primary s =
        let rec up s steps =
          if steps > n then false
          else if s.span_id <> "" && s.span_id = primary.span_id then true
          else if is_root s then false
          else up (Hashtbl.find by_id s.parent_id) (steps + 1)
        in
        up s 0
      in
      let orphans = List.length (List.filter (fun s -> not (reaches_primary s)) spans) in
      (* Critical path: from the primary root, repeatedly descend into
         the child that finishes last — the chain that gated the
         request's end time.  A node's contribution is its duration
         minus the chosen child's (clamped: clock skew across domains
         can make a child appear to outlive its parent). *)
      let critical_path =
        let rec down s acc =
          let kids =
            if s.span_id = "" then []
            else Option.value ~default:[] (Hashtbl.find_opt children s.span_id)
          in
          match kids with
          | [] -> List.rev ((s, s.dur_us) :: acc)
          | _ ->
              let last =
                List.fold_left
                  (fun best k -> if span_end k > span_end best then k else best)
                  (List.hd kids) kids
              in
              down last ((s, Float.max 0.0 (s.dur_us -. last.dur_us)) :: acc)
        in
        down primary []
      in
      let critical_path_us = primary.dur_us in
      (* Per-domain busy time as an interval union: nested spans on one
         domain must not double-count. *)
      let tids = List.sort_uniq compare (List.map (fun s -> s.tid) spans) in
      let domains =
        List.map
          (fun tid ->
            let mine = List.filter (fun s -> s.tid = tid) spans in
            let busy = union_us (List.map (fun s -> (s.ts_us, span_end s)) mine) in
            {
              d_tid = tid;
              d_spans = List.length mine;
              d_busy_us = busy;
              d_utilization = (if wall_us > 0.0 then busy /. wall_us else 0.0);
            })
          tids
      in
      (* Batch chunk imbalance: chunk spans never nest within each
         other on a domain, so per-domain sums are exact. *)
      let chunks =
        let cs =
          List.filter
            (fun s -> s.name = "batch.map.chunk" || s.name = "batch.map_reduce.chunk")
            spans
        in
        match cs with
        | [] -> None
        | _ ->
            let durs = List.map (fun s -> s.dur_us) cs in
            let count = List.length cs in
            let total = List.fold_left ( +. ) 0.0 durs in
            let mean = total /. float_of_int count in
            let var =
              List.fold_left (fun a d -> a +. ((d -. mean) ** 2.0)) 0.0 durs
              /. float_of_int count
            in
            let per_domain =
              List.filter_map
                (fun tid ->
                  match List.filter (fun s -> s.tid = tid) cs with
                  | [] -> None
                  | mine -> Some (tid, List.fold_left (fun a s -> a +. s.dur_us) 0.0 mine))
                tids
            in
            let dtotals = List.map snd per_domain in
            let dmean =
              List.fold_left ( +. ) 0.0 dtotals /. float_of_int (List.length dtotals)
            in
            let dmax = List.fold_left Float.max 0.0 dtotals in
            Some
              {
                c_count = count;
                c_mean_us = mean;
                c_min_us = List.fold_left Float.min Float.infinity durs;
                c_max_us = List.fold_left Float.max 0.0 durs;
                c_stddev_us = Float.sqrt var;
                c_per_domain_us = per_domain;
                c_imbalance = (if dmean > 0.0 then dmax /. dmean else 1.0);
              }
      in
      (* Self time: duration minus the union of the children's
         intervals (union, not sum — parallel children of one span
         overlap), aggregated by span name. *)
      let tbl = Hashtbl.create 32 in
      List.iter
        (fun s ->
          let kids =
            if s.span_id = "" then []
            else Option.value ~default:[] (Hashtbl.find_opt children s.span_id)
          in
          let covered = union_us (List.map (fun k -> (k.ts_us, span_end k)) kids) in
          let self = Float.max 0.0 (s.dur_us -. covered) in
          let cur =
            Option.value ~default:(0, 0.0, 0.0) (Hashtbl.find_opt tbl s.name)
          in
          let c, tot, mx = cur in
          Hashtbl.replace tbl s.name (c + 1, tot +. self, Float.max mx self))
        spans;
      let self_times =
        Hashtbl.fold
          (fun name (c, tot, mx) acc ->
            { s_name = name; s_count = c; s_total_us = tot; s_max_us = mx } :: acc)
          tbl []
        |> List.sort (fun a b -> Float.compare b.s_total_us a.s_total_us)
        |> List.filteri (fun i _ -> i < top)
      in
      Ok
        {
          spans = n;
          dropped;
          wall_us;
          roots = List.length roots;
          orphans;
          root_name = primary.name;
          trace_id =
            (match Json.member "traceEvents" doc with
            | Some (Json.Arr evs) ->
                List.find_map
                  (fun j ->
                    match Json.member "args" j with
                    | Some args -> arg_str "trace_id" args
                    | None -> None)
                  evs
                |> Option.value ~default:""
            | _ -> "");
          critical_path;
          critical_path_us;
          domains;
          chunks;
          self_times;
        }

(* ---- JSON output -------------------------------------------------- *)

let ms us = us /. 1e3

let jf f = if Float.is_finite f then Printf.sprintf "%.6g" f else "null"

let to_json (r : t) =
  let b = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\n  \"schema\": \"tinflow.obs.report/v1\",\n";
  add "  \"trace\": {\"spans\": %d, \"dropped\": %d, \"wall_ms\": %s, \"roots\": %d, \
       \"orphans\": %d, \"root\": \"%s\", \"trace_id\": \"%s\"},\n"
    r.spans r.dropped (jf (ms r.wall_us)) r.roots r.orphans
    (Json.escape r.root_name) (Json.escape r.trace_id);
  add "  \"critical_path_ms\": %s,\n" (jf (ms r.critical_path_us));
  add "  \"critical_path\": [";
  List.iteri
    (fun i (s, self) ->
      add "%s\n    {\"name\": \"%s\", \"tid\": %d, \"dur_ms\": %s, \"self_ms\": %s}"
        (if i = 0 then "" else ",")
        (Json.escape s.name) s.tid (jf (ms s.dur_us)) (jf (ms self)))
    r.critical_path;
  add "\n  ],\n";
  add "  \"domains\": [";
  List.iteri
    (fun i d ->
      add "%s\n    {\"tid\": %d, \"spans\": %d, \"busy_ms\": %s, \"utilization\": %s}"
        (if i = 0 then "" else ",")
        d.d_tid d.d_spans (jf (ms d.d_busy_us)) (jf d.d_utilization))
    r.domains;
  add "\n  ],\n";
  let mean_util =
    match r.domains with
    | [] -> 0.0
    | ds ->
        List.fold_left (fun a d -> a +. d.d_utilization) 0.0 ds /. float_of_int (List.length ds)
  in
  add "  \"utilization\": {\"domains\": %d, \"mean\": %s},\n" (List.length r.domains)
    (jf mean_util);
  (match r.chunks with
  | None -> add "  \"chunks\": null,\n"
  | Some c ->
      add "  \"chunks\": {\"count\": %d, \"mean_ms\": %s, \"min_ms\": %s, \"max_ms\": %s, \
           \"stddev_ms\": %s, \"imbalance\": %s, \"per_domain\": ["
        c.c_count (jf (ms c.c_mean_us)) (jf (ms c.c_min_us)) (jf (ms c.c_max_us))
        (jf (ms c.c_stddev_us)) (jf c.c_imbalance);
      List.iteri
        (fun i (tid, us) ->
          add "%s{\"tid\": %d, \"chunk_ms\": %s}" (if i = 0 then "" else ", ") tid (jf (ms us)))
        c.c_per_domain_us;
      add "]},\n");
  add "  \"self_times\": [";
  List.iteri
    (fun i s ->
      add "%s\n    {\"name\": \"%s\", \"count\": %d, \"self_ms\": %s, \"max_self_ms\": %s}"
        (if i = 0 then "" else ",")
        (Json.escape s.s_name) s.s_count (jf (ms s.s_total_us)) (jf (ms s.s_max_us)))
    r.self_times;
  add "\n  ]\n}\n";
  Buffer.contents b

(* ---- human rendering ---------------------------------------------- *)

let pct f = Printf.sprintf "%.1f%%" (100.0 *. f)

let render (r : t) =
  let b = Buffer.create 2048 in
  Buffer.add_string b
    (Printf.sprintf "trace: %d span(s), %d dropped, wall %s, root \"%s\"%s\n" r.spans r.dropped
       (Table.fmt_ms (ms r.wall_us))
       r.root_name
       (if r.trace_id = "" then "" else ", trace " ^ r.trace_id));
  if r.roots > 1 then
    Buffer.add_string b
      (Printf.sprintf "note: %d root span(s), %d span(s) outside the primary tree\n" r.roots
         r.orphans);
  Buffer.add_string b
    (Table.render
       ~title:(Printf.sprintf "critical path (%s)" (Table.fmt_ms (ms r.critical_path_us)))
       ~header:[ "span"; "domain"; "duration"; "self"; "of path" ]
       (List.map
          (fun (s, self) ->
            [
              s.name;
              string_of_int s.tid;
              Table.fmt_ms (ms s.dur_us);
              Table.fmt_ms (ms self);
              (if r.critical_path_us > 0.0 then pct (self /. r.critical_path_us) else "-");
            ])
          r.critical_path));
  Buffer.add_string b
    (Table.render ~title:"per-domain utilization"
       ~header:[ "domain"; "spans"; "busy"; "utilization" ]
       (List.map
          (fun d ->
            [
              string_of_int d.d_tid;
              string_of_int d.d_spans;
              Table.fmt_ms (ms d.d_busy_us);
              pct d.d_utilization;
            ])
          r.domains));
  (match r.chunks with
  | None -> Buffer.add_string b "no batch chunk spans in this trace\n"
  | Some c ->
      Buffer.add_string b
        (Table.render ~title:"batch chunk balance"
           ~header:[ "metric"; "value" ]
           ([
              [ "chunks"; string_of_int c.c_count ];
              [ "mean"; Table.fmt_ms (ms c.c_mean_us) ];
              [ "min"; Table.fmt_ms (ms c.c_min_us) ];
              [ "max"; Table.fmt_ms (ms c.c_max_us) ];
              [ "stddev"; Table.fmt_ms (ms c.c_stddev_us) ];
              [ "imbalance (max/mean domain)"; Printf.sprintf "%.2f" c.c_imbalance ];
            ]
           @ List.map
               (fun (tid, us) ->
                 [ Printf.sprintf "domain %d chunk time" tid; Table.fmt_ms (ms us) ])
               c.c_per_domain_us)));
  Buffer.add_string b
    (Table.render ~title:"top span self-times"
       ~header:[ "span"; "count"; "self total"; "self max" ]
       (List.map
          (fun s ->
            [
              s.s_name;
              string_of_int s.s_count;
              Table.fmt_ms (ms s.s_total_us);
              Table.fmt_ms (ms s.s_max_us);
            ])
          r.self_times));
  Buffer.contents b
