module Stats = Tin_util.Stats
module Timer = Tin_util.Timer
module Table = Tin_util.Table

let enabled : bool Atomic.t = Atomic.make false
let tracking () = Atomic.get enabled
let enable () = Atomic.set enabled true
let disable () = Atomic.set enabled false

(* One cell per (metric, domain).  The domain-local key materializes a
   fresh cell on a domain's first touch and registers it in the
   metric's lock-free cell list; after that the hot path is a
   domain-local lookup plus a plain mutation of a cell no other domain
   writes.  Reads merge the full cell list.  Cells of finished domains
   stay registered (they still hold counts) — [reset] zeroes them in
   place rather than dropping them, so live domains keep their
   binding. *)
module Shard = struct
  type 'a t = { cells : 'a list Atomic.t; key : 'a Domain.DLS.key }

  let create make =
    let cells = Atomic.make [] in
    let key =
      Domain.DLS.new_key (fun () ->
          let c = make () in
          let rec push () =
            let old = Atomic.get cells in
            if not (Atomic.compare_and_set cells old (c :: old)) then push ()
          in
          push ();
          c)
    in
    { cells; key }

  let local t = Domain.DLS.get t.key
  let all t = Atomic.get t.cells
end

module Counter0 = struct
  type cell = { mutable n : int }
  type t = { name : string; shard : cell Shard.t }

  let incr c = if Atomic.get enabled then (Shard.local c.shard).n <- (Shard.local c.shard).n + 1

  let add c k =
    if k <> 0 && Atomic.get enabled then begin
      let cell = Shard.local c.shard in
      cell.n <- cell.n + k
    end

  let value c = List.fold_left (fun acc cell -> acc + cell.n) 0 (Shard.all c.shard)
  let name c = c.name
  let reset c = List.iter (fun cell -> cell.n <- 0) (Shard.all c.shard)
  let create name = { name; shard = Shard.create (fun () -> { n = 0 }) }
end

module Histogram0 = struct
  type cell = { mutable acc : Stats.Acc.t }
  type t = { name : string; shard : cell Shard.t }

  let observe h x = if Atomic.get enabled then Stats.Acc.add (Shard.local h.shard).acc x

  let summary h =
    let merged = Stats.Acc.create () in
    List.iter (fun cell -> Stats.Acc.merge_into ~into:merged cell.acc) (Shard.all h.shard);
    Stats.Acc.summary merged

  let name h = h.name
  let reset h = List.iter (fun cell -> cell.acc <- Stats.Acc.create ()) (Shard.all h.shard)
  let create name = { name; shard = Shard.create (fun () -> { acc = Stats.Acc.create () }) }
end

type event = {
  name : string;
  ts_ns : int64;
  dur_ns : int64;
  tid : int;
  args : (string * string) list;
}

(* --- registry (creation/lookup only; never on the hot path) --- *)

type metric = C of Counter0.t | H of Histogram0.t

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let registry_lock = Mutex.create ()

let find_or_create name make wrap unwrap =
  Mutex.protect registry_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some m -> (
          match unwrap m with
          | Some v -> v
          | None -> invalid_arg ("Obs: metric name registered with another kind: " ^ name))
      | None ->
          let v = make name in
          Hashtbl.replace registry name (wrap v);
          v)

module Counter = struct
  include Counter0

  let make name =
    find_or_create name Counter0.create (fun c -> C c) (function C c -> Some c | H _ -> None)
end

module Histogram = struct
  include Histogram0

  let make name =
    find_or_create name Histogram0.create (fun h -> H h) (function H h -> Some h | C _ -> None)
end

(* --- span buffers --- *)

(* Per-domain bounded event buffers: an unbounded trace of a long
   pattern search could otherwise exhaust memory.  Overflow is counted
   and reported instead of silently dropped. *)
let max_events_per_domain = 262_144

type span_cell = { mutable evs : event list; mutable count : int; mutable dropped : int }

let span_shard = Shard.create (fun () -> { evs = []; count = 0; dropped = 0 })

module Span = struct
  let record name args t0 t1 =
    let cell = Shard.local span_shard in
    if cell.count >= max_events_per_domain then cell.dropped <- cell.dropped + 1
    else begin
      cell.evs <-
        { name; ts_ns = t0; dur_ns = Int64.sub t1 t0; tid = (Domain.self () :> int); args }
        :: cell.evs;
      cell.count <- cell.count + 1
    end

  let with_ ?(args = []) name f =
    if not (Atomic.get enabled) then f ()
    else begin
      let t0 = Timer.now_ns () in
      match f () with
      | r ->
          record name args t0 (Timer.now_ns ());
          r
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          record name (("exception", Printexc.to_string e) :: args) t0 (Timer.now_ns ());
          Printexc.raise_with_backtrace e bt
    end
end

(* --- reads --- *)

let metrics () =
  Mutex.protect registry_lock (fun () ->
      Hashtbl.fold (fun _ m acc -> m :: acc) registry [])

let counters () =
  metrics ()
  |> List.filter_map (function C c -> Some (Counter.name c, Counter.value c) | H _ -> None)
  |> List.sort compare

let histograms () =
  metrics ()
  |> List.filter_map (function H h -> Some (Histogram.name h, Histogram.summary h) | C _ -> None)
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let trace_events () =
  Shard.all span_shard
  |> List.concat_map (fun cell -> cell.evs)
  |> List.sort (fun a b -> Int64.compare a.ts_ns b.ts_ns)

let dropped_events () =
  List.fold_left (fun acc cell -> acc + cell.dropped) 0 (Shard.all span_shard)

let reset () =
  List.iter (function C c -> Counter.reset c | H h -> Histogram.reset h) (metrics ());
  List.iter
    (fun cell ->
      cell.evs <- [];
      cell.count <- 0;
      cell.dropped <- 0)
    (Shard.all span_shard)

(* --- JSON exporters (hand-rolled, like the bench harness: only
   strings, ints and floats appear) --- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float f = if Float.is_finite f then Printf.sprintf "%.6g" f else "null"

let json_args args =
  "{"
  ^ String.concat ", "
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\": \"%s\"" (json_escape k) (json_escape v)) args)
  ^ "}"

(* Microseconds rebased to the earliest span: Chrome-trace viewers
   expect small monotonic offsets, and a double keeps full precision
   once the (huge) absolute clock origin is gone. *)
let chrome_trace_json () =
  let evs = trace_events () in
  let base = match evs with [] -> 0L | e :: _ -> e.ts_ns in
  let us ns = Int64.to_float (Int64.sub ns base) /. 1e3 in
  let b = Buffer.create 4096 in
  Buffer.add_string b "[\n";
  let first = ref true in
  let emit line =
    if not !first then Buffer.add_string b ",\n";
    first := false;
    Buffer.add_string b line
  in
  let tids = List.sort_uniq compare (List.map (fun e -> e.tid) evs) in
  List.iter
    (fun tid ->
      emit
        (Printf.sprintf
           "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": %d, \"args\": \
            {\"name\": \"domain-%d\"}}"
           tid tid))
    tids;
  List.iter
    (fun e ->
      emit
        (Printf.sprintf
           "  {\"name\": \"%s\", \"ph\": \"X\", \"ts\": %s, \"dur\": %s, \"pid\": 1, \"tid\": \
            %d, \"args\": %s}"
           (json_escape e.name)
           (json_float (us e.ts_ns))
           (json_float (Int64.to_float e.dur_ns /. 1e3))
           e.tid (json_args e.args)))
    evs;
  (* Counters ride along as process-scoped instant events so a trace
     file is self-contained. *)
  List.iter
    (fun (name, v) ->
      if v <> 0 then
        emit
          (Printf.sprintf
             "  {\"name\": \"%s\", \"ph\": \"i\", \"ts\": 0, \"pid\": 1, \"tid\": 0, \"s\": \
              \"p\", \"args\": {\"value\": \"%d\"}}"
             (json_escape name) v))
    (counters ());
  Buffer.add_string b "\n]\n";
  Buffer.contents b

let metrics_json () =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\n  \"counters\": {";
  let cs = counters () in
  List.iteri
    (fun i (name, v) ->
      add "%s\n    \"%s\": %d" (if i = 0 then "" else ",") (json_escape name) v)
    cs;
  add "%s},\n  \"histograms\": {" (if cs = [] then "" else "\n  ");
  let hs = histograms () in
  List.iteri
    (fun i (name, (s : Stats.summary)) ->
      add
        "%s\n    \"%s\": {\"count\": %d, \"mean\": %s, \"stddev\": %s, \"min\": %s, \"max\": \
         %s, \"total\": %s}"
        (if i = 0 then "" else ",")
        (json_escape name) s.Stats.count (json_float s.Stats.mean) (json_float s.Stats.stddev)
        (json_float s.Stats.min) (json_float s.Stats.max) (json_float s.Stats.total))
    hs;
  add "%s},\n  \"dropped_events\": %d\n}\n" (if hs = [] then "" else "\n  ") (dropped_events ());
  Buffer.contents b

let write_chrome_trace path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (chrome_trace_json ()))

let print_summary oc =
  let cs = List.filter (fun (_, v) -> v <> 0) (counters ()) in
  if cs <> [] then
    output_string oc
      (Table.render ~title:"observability: counters" ~header:[ "counter"; "value" ]
         (List.map (fun (n, v) -> [ n; string_of_int v ]) cs));
  let hs = List.filter (fun (_, (s : Stats.summary)) -> s.Stats.count > 0) (histograms ()) in
  if hs <> [] then
    output_string oc
      (Table.render ~title:"observability: histograms"
         ~header:[ "histogram"; "count"; "mean"; "min"; "max"; "total" ]
         (List.map
            (fun (n, (s : Stats.summary)) ->
              [
                n;
                string_of_int s.Stats.count;
                Printf.sprintf "%.4g" s.Stats.mean;
                Printf.sprintf "%.4g" s.Stats.min;
                Printf.sprintf "%.4g" s.Stats.max;
                Printf.sprintf "%.4g" s.Stats.total;
              ])
            hs));
  let spans = List.length (trace_events ()) in
  if spans > 0 || dropped_events () > 0 then
    Printf.fprintf oc "observability: %d span(s) recorded%s\n" spans
      (match dropped_events () with 0 -> "" | d -> Printf.sprintf ", %d dropped" d);
  if cs = [] && hs = [] && spans = 0 then
    output_string oc "observability: no metrics recorded\n"
