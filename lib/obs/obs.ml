module Stats = Tin_util.Stats
module Timer = Tin_util.Timer
module Table = Tin_util.Table
module Json = Tin_util.Json

let enabled : bool Atomic.t = Atomic.make false
let tracking () = Atomic.get enabled
let enable () = Atomic.set enabled true
let disable () = Atomic.set enabled false

(* Domains that have materialized at least one metric cell — the
   denominator the runtime sampler publishes as [runtime_obs_domains].
   The marker key increments once per domain, forced from every
   shard's cell initializer (cold path only). *)
let registered_domains = Atomic.make 0

let domain_marker : unit Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Atomic.incr registered_domains)

(* One cell per (metric, domain).  The domain-local key materializes a
   fresh cell on a domain's first touch and registers it in the
   metric's lock-free cell list; after that the hot path is a
   domain-local lookup plus a plain mutation of a cell no other domain
   writes.  Reads merge the full cell list.  Cells of finished domains
   stay registered (they still hold counts) — [reset] zeroes them in
   place rather than dropping them, so live domains keep their
   binding. *)
module Shard = struct
  type 'a t = { cells : 'a list Atomic.t; key : 'a Domain.DLS.key }

  let create make =
    let cells = Atomic.make [] in
    let key =
      Domain.DLS.new_key (fun () ->
          Domain.DLS.get domain_marker;
          let c = make () in
          let rec push () =
            let old = Atomic.get cells in
            if not (Atomic.compare_and_set cells old (c :: old)) then push ()
          in
          push ();
          c)
    in
    { cells; key }

  let local t = Domain.DLS.get t.key
  let all t = Atomic.get t.cells
end

(* --- label encoding ------------------------------------------------ *)

(* Prometheus-style label-value escaping, also used to render a family
   member's registered name (e.g. [lp_pivots{solver="sparse"}]).
   Control characters other than newline have no escape in the text
   exposition format; they are replaced so the output stays
   line-oriented. *)
let label_escape v =
  let b = Buffer.create (String.length v + 4) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_char b '_'
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let encode_name base labels =
  if labels = [] then base
  else
    base ^ "{"
    ^ String.concat "," (List.map (fun (k, v) -> k ^ "=\"" ^ label_escape v ^ "\"") labels)
    ^ "}"

module Counter0 = struct
  type cell = { mutable n : int }
  type t = { name : string; base : string; labels : (string * string) list; shard : cell Shard.t }

  let incr c = if Atomic.get enabled then (Shard.local c.shard).n <- (Shard.local c.shard).n + 1

  let add c k =
    (* Checked even while disabled: a counter is monotone (Prometheus
       counters must never decrease), and misuse must not hide behind
       the runtime flag. *)
    if k < 0 then invalid_arg "Obs.Counter.add: negative increment on a monotone counter";
    if k <> 0 && Atomic.get enabled then begin
      let cell = Shard.local c.shard in
      cell.n <- cell.n + k
    end

  let value c = List.fold_left (fun acc cell -> acc + cell.n) 0 (Shard.all c.shard)
  let name c = c.name
  let reset c = List.iter (fun cell -> cell.n <- 0) (Shard.all c.shard)

  let create ~base ~labels name =
    { name; base; labels; shard = Shard.create (fun () -> { n = 0 }) }
end

(* Gauges are last-write-wins: each write stamps the writing domain's
   cell from a global sequence, and reads return the freshest cell.
   Stamp 0 means "never written since reset" — such cells (and wholly
   unwritten gauges) are invisible to the exporters. *)
let gauge_clock = Atomic.make 0

module Gauge0 = struct
  type cell = { mutable v : float; mutable stamp : int }
  type t = { name : string; base : string; labels : (string * string) list; shard : cell Shard.t }

  let bump () = 1 + Atomic.fetch_and_add gauge_clock 1

  let set g x =
    if Atomic.get enabled then begin
      let cell = Shard.local g.shard in
      cell.v <- x;
      cell.stamp <- bump ()
    end

  let add g dx =
    if Atomic.get enabled then begin
      let cell = Shard.local g.shard in
      cell.v <- (if cell.stamp = 0 then dx else cell.v +. dx);
      cell.stamp <- bump ()
    end

  let freshest g =
    List.fold_left
      (fun acc (cell : cell) ->
        match acc with
        | Some (stamp, _) when stamp >= cell.stamp -> acc
        | _ -> if cell.stamp = 0 then acc else Some (cell.stamp, cell.v))
      None (Shard.all g.shard)

  let value g = match freshest g with Some (_, v) -> v | None -> Float.nan
  let name g = g.name

  let reset g =
    List.iter
      (fun (cell : cell) ->
        cell.v <- 0.0;
        cell.stamp <- 0)
      (Shard.all g.shard)

  let create ~base ~labels name =
    { name; base; labels; shard = Shard.create (fun () -> { v = 0.0; stamp = 0 }) }
end

module Histogram0 = struct
  type cell = { mutable acc : Stats.Acc.t }
  type t = { name : string; base : string; labels : (string * string) list; shard : cell Shard.t }

  let observe h x = if Atomic.get enabled then Stats.Acc.add (Shard.local h.shard).acc x

  let summary h =
    let merged = Stats.Acc.create () in
    List.iter (fun cell -> Stats.Acc.merge_into ~into:merged cell.acc) (Shard.all h.shard);
    Stats.Acc.summary merged

  let name h = h.name
  let reset h = List.iter (fun cell -> cell.acc <- Stats.Acc.create ()) (Shard.all h.shard)

  let create ~base ~labels name =
    { name; base; labels; shard = Shard.create (fun () -> { acc = Stats.Acc.create () }) }
end

type event = {
  name : string;
  ts_ns : int64;
  dur_ns : int64;
  tid : int;
  args : (string * string) list;
  trace_id : string;
  span_id : string;
  parent_id : string;
}

(* --- registry (creation/lookup only; never on the hot path) --- *)

type metric = C of Counter0.t | G of Gauge0.t | H of Histogram0.t

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

(* Family name -> label keys, so two [make_labeled] calls (possibly in
   different modules) agree on the label schema. *)
let families : (string, string list) Hashtbl.t = Hashtbl.create 16
let registry_lock = Mutex.create ()

let find_or_create name make wrap unwrap =
  Mutex.protect registry_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some m -> (
          match unwrap m with
          | Some v -> v
          | None -> invalid_arg ("Obs: metric name registered with another kind: " ^ name))
      | None ->
          let v = make name in
          Hashtbl.replace registry name (wrap v);
          v)

type family_id = { fbase : string; fkeys : string list }

let register_family base keys =
  if keys = [] then invalid_arg ("Obs: labeled family needs at least one label: " ^ base);
  Mutex.protect registry_lock (fun () ->
      match Hashtbl.find_opt families base with
      | Some existing when existing = keys -> ()
      | Some _ -> invalid_arg ("Obs: family registered with different labels: " ^ base)
      | None -> Hashtbl.replace families base keys);
  { fbase = base; fkeys = keys }

let family_member fam values create wrap unwrap =
  if List.length values <> List.length fam.fkeys then
    invalid_arg
      (Printf.sprintf "Obs: family %s expects %d label value(s), got %d" fam.fbase
         (List.length fam.fkeys) (List.length values));
  let labels = List.combine fam.fkeys values in
  find_or_create (encode_name fam.fbase labels) (create ~base:fam.fbase ~labels) wrap unwrap

module Counter = struct
  include Counter0

  type family = family_id

  let un = function C c -> Some c | _ -> None
  let make name = find_or_create name (Counter0.create ~base:name ~labels:[]) (fun c -> C c) un
  let make_labeled name ~labels = register_family name labels
  let labeled fam values = family_member fam values Counter0.create (fun c -> C c) un
end

module Gauge = struct
  include Gauge0

  type family = family_id

  let un = function G g -> Some g | _ -> None
  let make name = find_or_create name (Gauge0.create ~base:name ~labels:[]) (fun g -> G g) un
  let make_labeled name ~labels = register_family name labels
  let labeled fam values = family_member fam values Gauge0.create (fun g -> G g) un
end

module Histogram = struct
  include Histogram0

  type family = family_id

  let un = function H h -> Some h | _ -> None
  let make name = find_or_create name (Histogram0.create ~base:name ~labels:[]) (fun h -> H h) un
  let make_labeled name ~labels = register_family name labels
  let labeled fam values = family_member fam values Histogram0.create (fun h -> H h) un
end

(* --- span buffers --- *)

(* Per-domain bounded event buffers: an unbounded trace of a long
   pattern search could otherwise exhaust memory.  Overflow is counted
   and reported instead of silently dropped.  The cap is settable so
   tests can force overflow without recording 262k spans. *)
let default_span_buffer_cap = 262_144
let span_cap = Atomic.make default_span_buffer_cap
let span_buffer_cap () = Atomic.get span_cap

let set_span_buffer_cap n =
  if n <= 0 then invalid_arg "Obs.set_span_buffer_cap: cap must be positive";
  Atomic.set span_cap n

type span_cell = { mutable evs : event list; mutable count : int; mutable dropped : int }

let span_shard = Shard.create (fun () -> { evs = []; count = 0; dropped = 0 })

(* --- flight-recorder ring (always-on black box) -------------------- *)

(* A bounded per-domain ring of the most recent span events, armed
   independently of [enabled]: when tracing is off, spans still land
   here (and only here), so a SIGUSR2 / crash / daemon-5xx dump can
   answer "what was it doing" after the fact.  Overwriting the oldest
   entry counts as an *eviction* — deliberately a different counter
   from the bounded span-buffer drops, because an eviction is normal
   steady-state behaviour while a drop means the requested trace is
   incomplete.  The dump/incident half of the [Flight] API lives at
   the end of this file (it needs the Chrome-trace emitter). *)
module Flight0 = struct
  let armed_flag = Atomic.make true
  let default_capacity = 4096
  let capacity = Atomic.make default_capacity

  type cell = {
    mutable ring : event array;
    mutable next : int;
    mutable filled : int;
    mutable evicted : int;
  }

  let dummy =
    {
      name = "";
      ts_ns = 0L;
      dur_ns = 0L;
      tid = 0;
      args = [];
      trace_id = "";
      span_id = "";
      parent_id = "";
    }

  let shard =
    Shard.create (fun () ->
        { ring = Array.make (Atomic.get capacity) dummy; next = 0; filled = 0; evicted = 0 })

  let push e =
    let c = Shard.local shard in
    let len = Array.length c.ring in
    if c.filled = len then c.evicted <- c.evicted + 1 else c.filled <- c.filled + 1;
    c.ring.(c.next) <- e;
    c.next <- (c.next + 1) mod len

  let armed () = Atomic.get armed_flag
  let arm () = Atomic.set armed_flag true
  let disarm () = Atomic.set armed_flag false
  let evictions () = List.fold_left (fun acc c -> acc + c.evicted) 0 (Shard.all shard)

  let events () =
    Shard.all shard
    |> List.concat_map (fun c ->
           let len = Array.length c.ring in
           List.init c.filled (fun i ->
               (* oldest-first: the slot after [next] wraps to the
                  oldest retained entry once the ring has lapped *)
               c.ring.((c.next - c.filled + i + len * 2) mod len)))
    |> List.sort (fun a b -> Int64.compare a.ts_ns b.ts_ns)

  let clear () =
    List.iter
      (fun c ->
        Array.fill c.ring 0 (Array.length c.ring) dummy;
        c.next <- 0;
        c.filled <- 0;
        c.evicted <- 0)
      (Shard.all shard)

  (* Tests only: resize (and clear) every materialized cell.  New
     domains pick the new capacity up from the atomic. *)
  let set_capacity n =
    if n <= 0 then invalid_arg "Obs.Flight.set_capacity: capacity must be positive";
    Atomic.set capacity n;
    List.iter
      (fun c ->
        c.ring <- Array.make n dummy;
        c.next <- 0;
        c.filled <- 0;
        c.evicted <- 0)
      (Shard.all shard)
end

(* Is anything listening?  True when the metrics layer is enabled or
   the flight recorder is armed — the guard for span instrumentation
   (counters/gauges/histograms still key off [enabled] alone). *)
let recording () = Atomic.get enabled || Atomic.get Flight0.armed_flag

module Span = struct
  let record ~trace_id ~span_id ~parent_id name args t0 t1 =
    let e =
      {
        name;
        ts_ns = t0;
        dur_ns = Int64.sub t1 t0;
        tid = (Domain.self () :> int);
        args;
        trace_id;
        span_id;
        parent_id;
      }
    in
    if Atomic.get enabled then begin
      let cell = Shard.local span_shard in
      if cell.count >= Atomic.get span_cap then cell.dropped <- cell.dropped + 1
      else begin
        cell.evs <- e :: cell.evs;
        cell.count <- cell.count + 1
      end
    end;
    if Atomic.get Flight0.armed_flag then Flight0.push e

  let with_ ?(args = []) name f =
    if not (recording ()) then f ()
    else begin
      (* Open a child context: inherit the trace id of the innermost
         open span on this domain (or start a fresh trace), install it
         for the duration of [f], and restore the parent on the way
         out — the manual save/restore mirrors [Trace_ctx.with_ctx]
         without the extra closure on this hot-ish path. *)
      let cell = Trace_ctx.cell () in
      let parent = !cell in
      let parent_id = match parent with Some p -> p.Trace_ctx.span_id | None -> "" in
      let ctx =
        match parent with
        | Some p -> { Trace_ctx.trace_id = p.Trace_ctx.trace_id; span_id = Trace_ctx.fresh_span_id () }
        | None ->
            { Trace_ctx.trace_id = Trace_ctx.fresh_trace_id (); span_id = Trace_ctx.fresh_span_id () }
      in
      cell := Some ctx;
      let t0 = Timer.now_ns () in
      match f () with
      | r ->
          let t1 = Timer.now_ns () in
          cell := parent;
          record ~trace_id:ctx.Trace_ctx.trace_id ~span_id:ctx.Trace_ctx.span_id ~parent_id name
            args t0 t1;
          r
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          let t1 = Timer.now_ns () in
          cell := parent;
          record ~trace_id:ctx.Trace_ctx.trace_id ~span_id:ctx.Trace_ctx.span_id ~parent_id name
            (("exception", Printexc.to_string e) :: args)
            t0 t1;
          Printexc.raise_with_backtrace e bt
    end

  let with_root ?traceparent name f =
    if not (recording ()) then f ()
    else
      let base =
        match Option.bind traceparent Trace_ctx.of_traceparent with
        | Some ctx -> ctx
        | None -> { Trace_ctx.trace_id = Trace_ctx.fresh_trace_id (); span_id = "" }
      in
      Trace_ctx.with_ctx (Some base) (fun () -> with_ name f)

  let current_ids () =
    match Trace_ctx.current () with
    | Some c when c.Trace_ctx.span_id <> "" -> Some (c.Trace_ctx.trace_id, c.Trace_ctx.span_id)
    | _ -> None

  let current_traceparent () =
    match Trace_ctx.current () with
    | Some c when c.Trace_ctx.span_id <> "" -> Some (Trace_ctx.to_traceparent c)
    | _ -> None
end

(* --- reads --- *)

let metrics () =
  Mutex.protect registry_lock (fun () -> Hashtbl.fold (fun _ m acc -> m :: acc) registry [])

let counters () =
  metrics ()
  |> List.filter_map (function C c -> Some (Counter.name c, Counter.value c) | _ -> None)
  |> List.sort compare

(* A gauge set to NaN reads as "unset": NaN is the value [Gauge.value]
   returns for never-written gauges, and writing it explicitly is the
   supported way to retract a published value (e.g. ingest lag once
   the window empties) without a full [reset]. *)
let gauges () =
  metrics ()
  |> List.filter_map (function
       | G g -> (
           match Gauge0.freshest g with
           | Some (_, v) when not (Float.is_nan v) -> Some (Gauge.name g, v)
           | _ -> None)
       | _ -> None)
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let histograms () =
  metrics ()
  |> List.filter_map (function H h -> Some (Histogram.name h, Histogram.summary h) | _ -> None)
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let trace_events () =
  Shard.all span_shard
  |> List.concat_map (fun cell -> cell.evs)
  |> List.sort (fun a b -> Int64.compare a.ts_ns b.ts_ns)

let dropped_events () =
  List.fold_left (fun acc cell -> acc + cell.dropped) 0 (Shard.all span_shard)

let reset () =
  List.iter
    (function C c -> Counter.reset c | G g -> Gauge0.reset g | H h -> Histogram.reset h)
    (metrics ());
  List.iter
    (fun cell ->
      cell.evs <- [];
      cell.count <- 0;
      cell.dropped <- 0)
    (Shard.all span_shard);
  Flight0.clear ()

(* --- runtime telemetry sampler ------------------------------------- *)

module Runtime = struct
  let g_minor = Gauge.make "runtime_gc_minor_collections"
  let g_major = Gauge.make "runtime_gc_major_collections"
  let g_compact = Gauge.make "runtime_gc_compactions"
  let g_minor_words = Gauge.make "runtime_gc_minor_words"
  let g_promoted = Gauge.make "runtime_gc_promoted_words"
  let g_heap = Gauge.make "runtime_gc_heap_words"
  let g_domains = Gauge.make "runtime_obs_domains"
  let g_rss_pages = Gauge.make "runtime_rss_pages"
  let g_rss_bytes = Gauge.make "runtime_rss_bytes"
  let g_rss_peak = Gauge.make "runtime_peak_rss_bytes"

  (* Resident set size in pages: second field of /proc/self/statm
     (Linux; absent elsewhere, in which case the RSS gauges stay
     unset).  Byte conversion assumes the common 4 KiB page — the page
     count itself is exported alongside, so nothing is lost on
     large-page kernels. *)
  let rss_pages () =
    match open_in "/proc/self/statm" with
    | exception Sys_error _ -> None
    | ic ->
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            match input_line ic with
            | exception End_of_file -> None
            | line -> (
                match String.split_on_char ' ' line with
                | _ :: resident :: _ -> int_of_string_opt resident
                | _ -> None))

  let sample () =
    let st = Gc.quick_stat () in
    Gauge.set g_minor (float_of_int st.Gc.minor_collections);
    Gauge.set g_major (float_of_int st.Gc.major_collections);
    Gauge.set g_compact (float_of_int st.Gc.compactions);
    Gauge.set g_minor_words st.Gc.minor_words;
    Gauge.set g_promoted st.Gc.promoted_words;
    Gauge.set g_heap (float_of_int st.Gc.heap_words);
    Gauge.set g_domains (float_of_int (Atomic.get registered_domains));
    match rss_pages () with
    | Some pages ->
        let cur = float_of_int pages *. 4096.0 in
        Gauge.set g_rss_pages (float_of_int pages);
        Gauge.set g_rss_bytes cur;
        (* Max-tracking: unlike the last-write-wins gauges above, the
           peak survives later, smaller samples ([Obs.reset] clears
           it). *)
        let prev = Gauge.value g_rss_peak in
        Gauge.set g_rss_peak (if Float.is_nan prev then cur else Float.max prev cur)
    | None -> ()

  let lock = Mutex.create ()
  let state : (bool Atomic.t * Thread.t) option ref = ref None

  let running () = Mutex.protect lock (fun () -> Option.is_some !state)

  let start ?(period_ms = 500) () =
    if period_ms <= 0 then invalid_arg "Obs.Runtime.start: period_ms must be positive";
    Mutex.protect lock (fun () ->
        if Option.is_none !state then begin
          sample ();
          let stop_flag = Atomic.make false in
          let thread =
            Thread.create
              (fun () ->
                (* Sleep in short slices so [stop] joins promptly even
                   with a long sampling period. *)
                let slice = Float.min 0.1 (float_of_int period_ms /. 1000.0) in
                let rec run () =
                  if not (Atomic.get stop_flag) then begin
                    let slept = ref 0.0 in
                    while !slept < float_of_int period_ms /. 1000.0 && not (Atomic.get stop_flag)
                    do
                      Thread.delay slice;
                      slept := !slept +. slice
                    done;
                    if not (Atomic.get stop_flag) then sample ();
                    run ()
                  end
                in
                run ())
              ()
          in
          state := Some (stop_flag, thread)
        end)

  let stop () =
    let stopped =
      Mutex.protect lock (fun () ->
          let s = !state in
          state := None;
          s)
    in
    match stopped with
    | None -> ()
    | Some (flag, thread) ->
        Atomic.set flag true;
        Thread.join thread
end

(* --- JSON exporters (hand-rolled, like the bench harness: only
   strings, ints and floats appear) --- *)

let json_escape = Json.escape
let json_float f = if Float.is_finite f then Printf.sprintf "%.6g" f else "null"

let json_args args =
  "{"
  ^ String.concat ", "
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\": \"%s\"" (json_escape k) (json_escape v)) args)
  ^ "}"

(* Trace identifiers ride in the args object — the Chrome-trace format
   has no dedicated fields for them, and Perfetto renders args, so the
   ids stay inspectable.  [Report] reads them back from there. *)
let export_args e =
  if e.trace_id = "" then e.args
  else
    ("trace_id", e.trace_id) :: ("span_id", e.span_id)
    :: (if e.parent_id = "" then e.args else ("parent_id", e.parent_id) :: e.args)

(* Microseconds rebased to the earliest span: Chrome-trace viewers
   expect small monotonic offsets, and a double keeps full precision
   once the (huge) absolute clock origin is gone.  The top level is
   the Chrome-trace JSON {e Object Format} so span loss is visible in
   the artifact itself as a "dropped_events" field. *)
let chrome_trace_of ?(extra = []) evs =
  let base = match evs with [] -> 0L | e :: _ -> e.ts_ns in
  let us ns = Int64.to_float (Int64.sub ns base) /. 1e3 in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\": [\n";
  let first = ref true in
  let emit line =
    if not !first then Buffer.add_string b ",\n";
    first := false;
    Buffer.add_string b line
  in
  let tids = List.sort_uniq compare (List.map (fun e -> e.tid) evs) in
  List.iter
    (fun tid ->
      emit
        (Printf.sprintf
           "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": %d, \"args\": \
            {\"name\": \"domain-%d\"}}"
           tid tid))
    tids;
  List.iter
    (fun e ->
      emit
        (Printf.sprintf
           "  {\"name\": \"%s\", \"ph\": \"X\", \"ts\": %s, \"dur\": %s, \"pid\": 1, \"tid\": \
            %d, \"args\": %s}"
           (json_escape e.name)
           (json_float (us e.ts_ns))
           (json_float (Int64.to_float e.dur_ns /. 1e3))
           e.tid
           (json_args (export_args e))))
    evs;
  (* Counters ride along as process-scoped instant events so a trace
     file is self-contained. *)
  List.iter
    (fun (name, v) ->
      if v <> 0 then
        emit
          (Printf.sprintf
             "  {\"name\": \"%s\", \"ph\": \"i\", \"ts\": 0, \"pid\": 1, \"tid\": 0, \"s\": \
              \"p\", \"args\": {\"value\": \"%d\"}}"
             (json_escape name) v))
    (counters ());
  Buffer.add_string b (Printf.sprintf "\n], \"dropped_events\": %d" (dropped_events ()));
  List.iter
    (fun (k, raw_json) -> Buffer.add_string b (Printf.sprintf ", \"%s\": %s" (json_escape k) raw_json))
    extra;
  Buffer.add_string b "}\n";
  Buffer.contents b

let chrome_trace_json () = chrome_trace_of (trace_events ())

let metrics_json () =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\n  \"counters\": {";
  let cs = counters () in
  List.iteri
    (fun i (name, v) -> add "%s\n    \"%s\": %d" (if i = 0 then "" else ",") (json_escape name) v)
    cs;
  add "%s},\n  \"gauges\": {" (if cs = [] then "" else "\n  ");
  let gs = gauges () in
  List.iteri
    (fun i (name, v) ->
      add "%s\n    \"%s\": %s" (if i = 0 then "" else ",") (json_escape name) (json_float v))
    gs;
  add "%s},\n  \"histograms\": {" (if gs = [] then "" else "\n  ");
  let hs = histograms () in
  List.iteri
    (fun i (name, (s : Stats.summary)) ->
      add
        "%s\n    \"%s\": {\"count\": %d, \"mean\": %s, \"stddev\": %s, \"min\": %s, \"max\": \
         %s, \"total\": %s}"
        (if i = 0 then "" else ",")
        (json_escape name) s.Stats.count (json_float s.Stats.mean) (json_float s.Stats.stddev)
        (json_float s.Stats.min) (json_float s.Stats.max) (json_float s.Stats.total))
    hs;
  add "%s},\n  \"dropped_events\": %d,\n  \"flight_evictions\": %d\n}\n"
    (if hs = [] then "" else "\n  ")
    (dropped_events ()) (Flight0.evictions ());
  Buffer.contents b

(* --- Prometheus text exposition (format version 0.0.4) ------------- *)

(* Metric names are restricted to [a-zA-Z_:][a-zA-Z0-9_:]*; the
   repository's dotted names map dots (and anything else) to
   underscores, so counter [pipeline.stage.lp_solve] exports as
   [pipeline_stage_lp_solve]. *)
let prom_name s =
  let b = Buffer.create (String.length s) in
  String.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> Buffer.add_char b c
      | '0' .. '9' ->
          if i = 0 then Buffer.add_char b '_';
          Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    s;
  if Buffer.length b = 0 then "_" else Buffer.contents b

let help_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_char b '_'
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let prom_labels labels =
  if labels = [] then ""
  else
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> prom_name k ^ "=\"" ^ label_escape v ^ "\"") labels)
    ^ "}"

let prom_float f =
  if Float.is_nan f then "NaN"
  else if f = Float.infinity then "+Inf"
  else if f = Float.neg_infinity then "-Inf"
  else Printf.sprintf "%.17g" f

let prometheus_text () =
  let b = Buffer.create 4096 in
  let header name typ help =
    Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name (help_escape help));
    Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name typ)
  in
  (* Group family members (and standalone metrics) by base name so all
     samples of one metric name form one block, as the format
     requires. *)
  let group_by_base entries =
    let tbl = Hashtbl.create 32 in
    let order = ref [] in
    List.iter
      (fun (base, labels, v) ->
        (match Hashtbl.find_opt tbl base with
        | None ->
            order := base :: !order;
            Hashtbl.replace tbl base [ (labels, v) ]
        | Some rows -> Hashtbl.replace tbl base ((labels, v) :: rows)))
      entries;
    List.rev_map (fun base -> (base, List.rev (Hashtbl.find tbl base))) !order
    |> List.sort (fun (a, _) (c, _) -> compare a c)
  in
  let ms = metrics () in
  let cs =
    List.filter_map
      (function C c -> Some (c.Counter0.base, c.Counter0.labels, Counter0.value c) | _ -> None)
      ms
    |> List.sort compare
  in
  List.iter
    (fun (base, rows) ->
      let name = prom_name base in
      header name "counter" ("tinflow counter " ^ base);
      List.iter
        (fun (labels, v) -> Buffer.add_string b (Printf.sprintf "%s%s %d\n" name (prom_labels labels) v))
        rows)
    (group_by_base cs);
  let gs =
    List.filter_map
      (function
        | G g -> (
            (* NaN means "unset": skipped like a never-written gauge. *)
            match Gauge0.freshest g with
            | Some (_, v) when not (Float.is_nan v) -> Some (g.Gauge0.base, g.Gauge0.labels, v)
            | _ -> None)
        | _ -> None)
      ms
    |> List.sort compare
  in
  List.iter
    (fun (base, rows) ->
      let name = prom_name base in
      header name "gauge" ("tinflow gauge " ^ base);
      List.iter
        (fun (labels, v) ->
          Buffer.add_string b (Printf.sprintf "%s%s %s\n" name (prom_labels labels) (prom_float v)))
        rows)
    (group_by_base gs);
  (* Histogram summaries export as four gauge families: _count always,
     _sum/_min/_max only for nonempty members (min/max of an empty
     sample have no value). *)
  let hs =
    List.filter_map
      (function
        | H h -> Some (h.Histogram0.base, h.Histogram0.labels, Histogram0.summary h) | _ -> None)
      ms
    |> List.sort compare
  in
  List.iter
    (fun (base, rows) ->
      let emit_part suffix help value_of keep =
        let kept = List.filter (fun (_, s) -> keep s) rows in
        if kept <> [] then begin
          let name = prom_name base ^ suffix in
          header name "gauge" (help ^ " " ^ base);
          List.iter
            (fun (labels, s) ->
              Buffer.add_string b
                (Printf.sprintf "%s%s %s\n" name (prom_labels labels) (prom_float (value_of s))))
            kept
        end
      in
      emit_part "_count" "observation count of histogram"
        (fun (s : Stats.summary) -> float_of_int s.Stats.count)
        (fun _ -> true);
      emit_part "_sum" "observation sum of histogram"
        (fun s -> s.Stats.total)
        (fun s -> s.Stats.count > 0);
      emit_part "_min" "observation minimum of histogram"
        (fun s -> s.Stats.min)
        (fun s -> s.Stats.count > 0);
      emit_part "_max" "observation maximum of histogram"
        (fun s -> s.Stats.max)
        (fun s -> s.Stats.count > 0))
    (group_by_base hs);
  (* Span loss is part of the scrape: a dashboard can alert on it.
     Buffer drops (trace incomplete) and flight-ring evictions (normal
     wraparound of the post-mortem ring) are distinct signals. *)
  header "obs_dropped_span_events" "counter" "spans dropped at the per-domain buffer cap";
  Buffer.add_string b (Printf.sprintf "obs_dropped_span_events %d\n" (dropped_events ()));
  header "obs_flight_ring_evictions" "counter"
    "flight-recorder ring slots overwritten by newer spans";
  Buffer.add_string b (Printf.sprintf "obs_flight_ring_evictions %d\n" (Flight0.evictions ()));
  Buffer.contents b

let write_chrome_trace path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (chrome_trace_json ()))

let print_summary oc =
  if dropped_events () > 0 then
    Printf.fprintf oc
      "observability: WARNING: %d span(s) dropped (per-domain buffer cap %d reached; the trace \
       is incomplete)\n"
      (dropped_events ()) (span_buffer_cap ());
  let cs = List.filter (fun (_, v) -> v <> 0) (counters ()) in
  if cs <> [] then
    output_string oc
      (Table.render ~title:"observability: counters" ~header:[ "counter"; "value" ]
         (List.map (fun (n, v) -> [ n; string_of_int v ]) cs));
  let gs = gauges () in
  if gs <> [] then
    output_string oc
      (Table.render ~title:"observability: gauges" ~header:[ "gauge"; "value" ]
         (List.map (fun (n, v) -> [ n; Printf.sprintf "%.4g" v ]) gs));
  let hs = List.filter (fun (_, (s : Stats.summary)) -> s.Stats.count > 0) (histograms ()) in
  if hs <> [] then
    output_string oc
      (Table.render ~title:"observability: histograms"
         ~header:[ "histogram"; "count"; "mean"; "min"; "max"; "total" ]
         (List.map
            (fun (n, (s : Stats.summary)) ->
              [
                n;
                string_of_int s.Stats.count;
                Printf.sprintf "%.4g" s.Stats.mean;
                Printf.sprintf "%.4g" s.Stats.min;
                Printf.sprintf "%.4g" s.Stats.max;
                Printf.sprintf "%.4g" s.Stats.total;
              ])
            hs));
  let spans = List.length (trace_events ()) in
  if spans > 0 || dropped_events () > 0 then
    Printf.fprintf oc "observability: %d span(s) recorded%s\n" spans
      (match dropped_events () with 0 -> "" | d -> Printf.sprintf ", %d dropped" d);
  if cs = [] && gs = [] && hs = [] && spans = 0 then
    output_string oc "observability: no metrics recorded\n"

(* --- flight recorder: dump / incident API -------------------------- *)

module Flight = struct
  include Flight0

  let lock = Mutex.create ()
  let prefix = ref ("tinflow-flight-" ^ string_of_int (Unix.getpid ()))
  let dump_count = Atomic.make 0
  let last_dump_ns = Atomic.make Int64.min_int

  let set_dump_prefix p =
    if p = "" then invalid_arg "Obs.Flight.set_dump_prefix: empty prefix";
    Mutex.protect lock (fun () -> prefix := p)

  let dumps () = Atomic.get dump_count

  (* Post-mortem snapshot: the ring contents as a Chrome trace, with
     the trigger and the eviction count as extra top-level fields.
     Serialized under a lock (signal handler, 5xx path and crash hook
     may race); safe to call from a [Sys.Signal_handle] because those
     run as normal OCaml code between allocations, not as raw signal
     handlers. *)
  let dump ?path ~reason () =
    let evs = events () in
    let body =
      chrome_trace_of
        ~extra:
          [
            ("reason", "\"" ^ json_escape reason ^ "\"");
            ("flight_evictions", string_of_int (evictions ()));
            ("armed", if armed () then "true" else "false");
          ]
        evs
    in
    Mutex.protect lock (fun () ->
        let path =
          match path with Some p -> p | None -> Printf.sprintf "%s-%s.json" !prefix reason
        in
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_string oc body);
        Atomic.incr dump_count;
        Atomic.set last_dump_ns (Timer.now_ns ());
        path)

  (* Rate-limited dump for recurring triggers (daemon 5xx): at most
     one file per second, so an error storm cannot turn the black box
     into an I/O storm.  Returns the path when a dump was written. *)
  let incident ~reason () =
    let now = Timer.now_ns () in
    let last = Atomic.get last_dump_ns in
    if last <> Int64.min_int && Int64.sub now last < 1_000_000_000L then None
    else Some (dump ~reason ())
end
