(** W3C-trace-context identifiers and their domain-local propagation.

    The current context is the (trace_id, span_id) of the innermost
    open span on this domain.  [Obs.Span.with_] reads it to parent new
    spans and installs the child context around the body; nothing here
    records events.  The slot is {e domain-local}: spawned domains
    start empty, so parallel layers must capture [current ()] before
    [Domain.spawn] and reinstall it with [with_ctx] inside the worker
    (see [Tin_core.Batch]). *)

type t = {
  trace_id : string;  (** 32 lowercase hex chars, never all-zero *)
  span_id : string;
      (** 16 lowercase hex chars; [""] only in a root base context that
          carries a trace id but no open span yet *)
}

val fresh_trace_id : unit -> string
(** New 32-hex trace id.  Lock-free and unique across domains. *)

val fresh_span_id : unit -> string
(** New 16-hex span id. *)

val current : unit -> t option
(** The context installed on the calling domain, if any. *)

val cell : unit -> t option ref
(** The raw domain-local slot.  Internal — used by [Obs.Span] to avoid
    closure allocation on the hot path; prefer [with_ctx]. *)

val with_ctx : t option -> (unit -> 'a) -> 'a
(** [with_ctx ctx f] runs [f] with [ctx] installed as the current
    context, restoring the previous one afterwards (also on raise). *)

val of_traceparent : string -> t option
(** Parse a W3C [traceparent] header value ([00-<32 hex>-<16 hex>-<2
    hex>]).  [None] on malformed input, version [ff], or all-zero
    ids.  The remote parent's span id becomes [span_id], so a root
    span opened under this context is stitched to the caller. *)

val to_traceparent : t -> string
(** Render as a [traceparent] value with flags [01] (sampled).  An
    empty [span_id] renders as all-zero (root not yet opened). *)
