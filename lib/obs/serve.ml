module Timer = Tin_util.Timer

type meth = [ `GET | `POST ]

type response = { code : int; content_type : string; body : string }

type handler = body:string -> response

(* Per-route request latency, labeled by matched route and status
   code.  Unmatched paths share one "unmatched" label value so a
   scanner probing random URLs cannot mint unbounded time series. *)
let http_latency =
  Obs.Histogram.make_labeled "http_request_duration_ms" ~labels:[ "route"; "status" ]

type t = {
  sock : Unix.file_descr;
  bound_port : int;
  stopping : bool Atomic.t;
  domain : unit Domain.t;
  mutable stopped : bool;  (* driven only by the owning (stopping) caller *)
}

(* A process serving sockets must not die because a peer hung up:
   under the default disposition, [Unix.write] to a closed connection
   raises SIGPIPE and terminates the whole process before the
   [Unix_error (EPIPE, _, _)] the caller is prepared for can even be
   raised.  Ignore SIGPIPE once, process-wide, the first time a server
   starts — but never clobber a handler the embedding application
   installed itself ([Sys.signal] returns the previous disposition, so
   a custom handler is put straight back). *)
let ignore_sigpipe =
  lazy
    (match Sys.signal Sys.sigpipe Sys.Signal_ignore with
    | Sys.Signal_default | Sys.Signal_ignore -> ()
    | custom -> Sys.set_signal Sys.sigpipe custom
    | exception Invalid_argument _ -> ()
    | exception Sys_error _ -> ())

let http_status = function
  | 200 -> "200 OK"
  | 400 -> "400 Bad Request"
  | 404 -> "404 Not Found"
  | 405 -> "405 Method Not Allowed"
  | 408 -> "408 Request Timeout"
  | 413 -> "413 Payload Too Large"
  | _ -> "500 Internal Server Error"

let respond ?(extra_headers = []) fd ~code ~content_type body =
  let head =
    Printf.sprintf "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n%s\r\n"
      (http_status code) content_type (String.length body)
      (String.concat ""
         (List.map (fun (k, v) -> Printf.sprintf "%s: %s\r\n" k v) extra_headers))
  in
  let payload = Bytes.of_string (head ^ body) in
  let n = Bytes.length payload in
  let off = ref 0 in
  (try
     while !off < n do
       off := !off + Unix.write fd payload !off (n - !off)
     done
   with Unix.Unix_error _ -> (* peer went away mid-response; its problem *) ())

(* --- incremental request parsing ----------------------------------

   Pure and chunk-fed, so the boundary cases (a head terminator split
   across reads, an oversized body announced up front) are unit-
   testable without sockets.  The terminator scan resumes where the
   previous chunk left off — [max 0 (old_len - 3)], far enough back to
   see a terminator straddling the chunk boundary — instead of
   rescanning the whole accumulated head after every read (which made
   parsing O(n^2) in the head size). *)
module Request = struct
  type t = {
    meth : string;
    target : string;
    body : string;
    headers : (string * string) list;
  }

  type parser = {
    acc : Buffer.t;
    max_head : int;
    max_body : int;
    mutable scan : int;  (* resume offset of the head-terminator scan *)
    mutable head_end : int;  (* index just past the terminator; -1 while unseen *)
    mutable need : int;  (* declared body length, once the head is parsed *)
    mutable line : (string * string) option;  (* parsed request line *)
  }

  let parser ?(max_head = 8192) ?(max_body = 4 * 1024 * 1024) () =
    { acc = Buffer.create 256; max_head; max_body; scan = 0; head_end = -1; need = 0; line = None }

  (* First occurrence of CRLFCRLF (or bare LFLF, tolerating
     netcat-style smoke tests) at or after [from]; returns the index
     just past it. *)
  let find_terminator s from =
    let n = String.length s in
    let rec go i =
      if i >= n - 1 then None
      else if
        i + 3 < n && s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n'
      then Some (i + 4)
      else if s.[i] = '\n' && s.[i + 1] = '\n' then Some (i + 2)
      else go (i + 1)
    in
    go from

  let parse_request_line head =
    let first_line =
      match String.index_opt head '\n' with
      | Some i -> String.trim (String.sub head 0 i)
      | None -> String.trim head
    in
    match String.split_on_char ' ' first_line with
    | [ meth; target; _ ] | [ meth; target ] when meth <> "" && target <> "" ->
        Some (meth, target)
    | _ -> None

  (* Header field names are case-insensitive (RFC 9110): keys come out
     lowercased.  Continuation lines (obsolete folding) and lines
     without a colon are skipped rather than rejected — this parser
     only needs to be permissive enough for the headers the daemon
     reads ([content-length], [traceparent]). *)
  let parse_headers head =
    match String.index_opt head '\n' with
    | None -> []
    | Some first_eol ->
        String.sub head (first_eol + 1) (String.length head - first_eol - 1)
        |> String.split_on_char '\n'
        |> List.filter_map (fun line ->
               let line = String.trim line in
               match String.index_opt line ':' with
               | Some i when i > 0 ->
                   Some
                     ( String.lowercase_ascii (String.sub line 0 i),
                       String.trim (String.sub line (i + 1) (String.length line - i - 1)) )
               | _ -> None)

  let content_length head =
    let lower = String.lowercase_ascii head in
    let key = "content-length:" in
    String.split_on_char '\n' lower
    |> List.find_map (fun line ->
           let line = String.trim line in
           if String.starts_with ~prefix:key line then
             let v =
               String.trim (String.sub line (String.length key) (String.length line - String.length key))
             in
             Some (match int_of_string_opt v with Some n when n >= 0 -> `Length n | _ -> `Bad)
           else None)
    |> Option.value ~default:(`Length 0)

  let feed p chunk =
    Buffer.add_string p.acc chunk;
    let complete () =
      let s = Buffer.contents p.acc in
      match p.line with
      | None -> `Malformed (* unreachable: [line] is set when [head_end] is *)
      | Some (meth, target) ->
          `Done
            {
              meth;
              target;
              body = String.sub s p.head_end p.need;
              headers = parse_headers (String.sub s 0 p.head_end);
            }
    in
    if p.head_end >= 0 then
      if Buffer.length p.acc >= p.head_end + p.need then complete () else `More
    else begin
      let s = Buffer.contents p.acc in
      match find_terminator s p.scan with
      | None ->
          if Buffer.length p.acc > p.max_head then `Head_too_large
          else begin
            p.scan <- max 0 (String.length s - 3);
            `More
          end
      | Some head_end -> (
          p.head_end <- head_end;
          let head = String.sub s 0 head_end in
          match parse_request_line head with
          | None -> `Malformed
          | Some line -> (
              p.line <- Some line;
              match content_length head with
              | `Bad -> `Malformed
              | `Length n when n > p.max_body -> `Body_too_large
              | `Length n ->
                  p.need <- n;
                  if Buffer.length p.acc >= head_end + n then complete () else `More))
    end
end

(* Drain one request off the socket.  A timeout ([SO_RCVTIMEO] firing
   as [EAGAIN]/[EWOULDBLOCK]) and a clean close are distinguished from
   malformed input: an idle or vanished peer gets no response at all
   (writing a "400" to a possibly-dead socket is what the response
   path must never be forced into), while a peer that sent garbage is
   still told so. *)
let read_request ~max_body fd =
  let p = Request.parser ~max_body () in
  let buf = Bytes.create 1024 in
  let rec go () =
    match Unix.read fd buf 0 (Bytes.length buf) with
    | 0 -> `Closed
    | got -> (
        match Request.feed p (Bytes.sub_string buf 0 got) with
        | `More -> go ()
        | (`Done _ | `Head_too_large | `Body_too_large | `Malformed) as r -> r)
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | ETIMEDOUT | EINTR), _, _) -> `Timeout
    | exception Unix.Unix_error _ -> `Closed
  in
  go ()

let default_routes : (meth * string * handler) list =
  [
    ( `GET,
      "/metrics",
      fun ~body:_ ->
        {
          code = 200;
          content_type = "text/plain; version=0.0.4; charset=utf-8";
          body = Obs.prometheus_text ();
        } );
    ( `GET,
      "/metrics.json",
      fun ~body:_ ->
        { code = 200; content_type = "application/json"; body = Obs.metrics_json () } );
    ( `GET,
      "/healthz",
      fun ~body:_ -> { code = 200; content_type = "text/plain; charset=utf-8"; body = "ok\n" }
    );
  ]

let text = "text/plain; charset=utf-8"

let handle ~read_timeout ~max_body ~routes fd =
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO read_timeout;
  Unix.setsockopt_float fd Unix.SO_SNDTIMEO read_timeout;
  (match read_request ~max_body fd with
  | `Timeout | `Closed -> () (* idle probe or vanished peer: nothing to answer *)
  | `Head_too_large | `Body_too_large -> respond fd ~code:413 ~content_type:text "too large\n"
  | `Malformed -> respond fd ~code:400 ~content_type:text "bad request\n"
  | `Done { Request.meth; target; body; headers } ->
      let t0 = if Atomic.get Obs.enabled then Timer.now_ns () else 0L in
      let meth = match meth with "GET" -> Some `GET | "POST" -> Some `POST | _ -> None in
      let path =
        match String.index_opt target '?' with
        | Some i -> String.sub target 0 i
        | None -> target
      in
      (* Each matched request runs under a root span: a client-sent
         traceparent stitches the request into the caller's trace, and
         the span opened here parents everything the handler records
         (ingest, tick, catalog searches).  The context is echoed back
         as a traceparent response header. *)
      let traceparent = List.assoc_opt "traceparent" headers in
      let tp_out = ref None in
      let resp, route_label =
        match meth with
        | None ->
            ({ code = 405; content_type = text; body = "GET and POST only\n" }, "unmatched")
        | Some m -> (
            match List.find_opt (fun (rm, rp, _) -> rm = m && rp = path) routes with
            | Some (_, _, h) ->
                let resp =
                  Obs.Span.with_root ?traceparent ("http." ^ path) (fun () ->
                      tp_out := Obs.Span.current_traceparent ();
                      try h ~body
                      with e ->
                        {
                          code = 500;
                          content_type = text;
                          body = "handler error: " ^ Printexc.to_string e ^ "\n";
                        })
                in
                (resp, path)
            | None ->
                if List.exists (fun (_, rp, _) -> rp = path) routes then
                  ({ code = 405; content_type = text; body = "method not allowed\n" }, "unmatched")
                else ({ code = 404; content_type = text; body = "not found\n" }, "unmatched"))
      in
      if Atomic.get Obs.enabled then begin
        let dt_ms = Int64.to_float (Int64.sub (Timer.now_ns ()) t0) /. 1e6 in
        Obs.Histogram.observe
          (Obs.Histogram.labeled http_latency [ route_label; string_of_int resp.code ])
          dt_ms
      end;
      (* A 5xx is an incident: snapshot the flight ring next to it
         (rate-limited inside), so "what was the daemon doing" is
         answerable even when nobody was tracing. *)
      if resp.code >= 500 then ignore (Obs.Flight.incident ~reason:"http_5xx" ());
      let extra_headers =
        match !tp_out with Some tp -> [ ("traceparent", tp) ] | None -> []
      in
      respond ~extra_headers fd ~code:resp.code ~content_type:resp.content_type resp.body);
  try Unix.close fd with Unix.Unix_error _ -> ()

(* Accept with a select timeout instead of blocking: closing a socket
   another domain is blocked in [accept] on does not reliably wake it,
   while a short poll loop observes the stop flag promptly. *)
let serve_loop ~read_timeout ~max_body ~routes sock stopping =
  let rec loop () =
    if not (Atomic.get stopping) then begin
      (match Unix.select [ sock ] [] [] 0.2 with
      | [ _ ], _, _ when not (Atomic.get stopping) -> (
          match Unix.accept ~cloexec:true sock with
          | client, _ -> handle ~read_timeout ~max_body ~routes client
          | exception Unix.Unix_error _ -> ())
      | _ -> ()
      | exception Unix.Unix_error _ -> ());
      loop ()
    end
  in
  loop ()

let start ?(addr = "0.0.0.0") ~port ?(read_timeout = 2.0) ?(max_body = 4 * 1024 * 1024)
    ?(routes = []) () =
  Lazy.force ignore_sigpipe;
  let sock = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string addr, port));
     Unix.listen sock 16
   with e ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     raise e);
  let bound_port =
    match Unix.getsockname sock with Unix.ADDR_INET (_, p) -> p | Unix.ADDR_UNIX _ -> port
  in
  let stopping = Atomic.make false in
  let routes = routes @ default_routes in
  let domain =
    Domain.spawn (fun () -> serve_loop ~read_timeout ~max_body ~routes sock stopping)
  in
  { sock; bound_port; stopping; domain; stopped = false }

let port t = t.bound_port

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Atomic.set t.stopping true;
    Domain.join t.domain;
    try Unix.close t.sock with Unix.Unix_error _ -> ()
  end
