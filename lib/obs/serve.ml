type t = {
  sock : Unix.file_descr;
  bound_port : int;
  stopping : bool Atomic.t;
  domain : unit Domain.t;
  mutable stopped : bool;  (* driven only by the owning (stopping) caller *)
}

let http_status = function
  | 200 -> "200 OK"
  | 400 -> "400 Bad Request"
  | 404 -> "404 Not Found"
  | 405 -> "405 Method Not Allowed"
  | _ -> "500 Internal Server Error"

let respond fd ~code ~content_type body =
  let head =
    Printf.sprintf
      "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n"
      (http_status code) content_type (String.length body)
  in
  let payload = Bytes.of_string (head ^ body) in
  let n = Bytes.length payload in
  let off = ref 0 in
  (try
     while !off < n do
       off := !off + Unix.write fd payload !off (n - !off)
     done
   with Unix.Unix_error _ -> (* peer went away mid-response; its problem *) ())

(* Read until the blank line ending the request head (we never accept
   bodies), bounded in size and time so a stalled or malicious peer
   cannot wedge the endpoint. *)
let read_request fd =
  let buf = Bytes.create 1024 in
  let acc = Buffer.create 256 in
  let rec go () =
    if Buffer.length acc > 8192 then None
    else
      let got = try Unix.read fd buf 0 (Bytes.length buf) with Unix.Unix_error _ -> 0 in
      if got = 0 then None
      else begin
        Buffer.add_subbytes acc buf 0 got;
        let s = Buffer.contents acc in
        let module S = String in
        let rec has_terminator i =
          i + 3 < S.length s
          && ((s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n')
             || has_terminator (i + 1))
        in
        let has_lf_terminator =
          (* Tolerate bare-LF clients (netcat-style smoke tests). *)
          let rec go i =
            i + 1 < S.length s && ((s.[i] = '\n' && s.[i + 1] = '\n') || go (i + 1))
          in
          go 0
        in
        if has_terminator 0 || has_lf_terminator then Some s else go ()
      end
  in
  go ()

let handle fd =
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 2.0;
  Unix.setsockopt_float fd Unix.SO_SNDTIMEO 2.0;
  (match read_request fd with
  | None -> respond fd ~code:400 ~content_type:"text/plain; charset=utf-8" "bad request\n"
  | Some request -> (
      let first_line =
        match String.index_opt request '\n' with
        | Some i -> String.trim (String.sub request 0 i)
        | None -> String.trim request
      in
      match String.split_on_char ' ' first_line with
      | [ "GET"; target; _ ] | [ "GET"; target ] -> (
          let path =
            match String.index_opt target '?' with
            | Some i -> String.sub target 0 i
            | None -> target
          in
          match path with
          | "/metrics" ->
              respond fd ~code:200
                ~content_type:"text/plain; version=0.0.4; charset=utf-8"
                (Obs.prometheus_text ())
          | "/metrics.json" ->
              respond fd ~code:200 ~content_type:"application/json" (Obs.metrics_json ())
          | "/healthz" -> respond fd ~code:200 ~content_type:"text/plain; charset=utf-8" "ok\n"
          | _ -> respond fd ~code:404 ~content_type:"text/plain; charset=utf-8" "not found\n")
      | verb :: _ when verb <> "GET" ->
          respond fd ~code:405 ~content_type:"text/plain; charset=utf-8" "GET only\n"
      | _ -> respond fd ~code:400 ~content_type:"text/plain; charset=utf-8" "bad request\n"));
  (try Unix.close fd with Unix.Unix_error _ -> ())

(* Accept with a select timeout instead of blocking: closing a socket
   another domain is blocked in [accept] on does not reliably wake it,
   while a short poll loop observes the stop flag promptly. *)
let serve_loop sock stopping =
  let rec loop () =
    if not (Atomic.get stopping) then begin
      (match Unix.select [ sock ] [] [] 0.2 with
      | [ _ ], _, _ when not (Atomic.get stopping) -> (
          match Unix.accept ~cloexec:true sock with
          | client, _ -> handle client
          | exception Unix.Unix_error _ -> ())
      | _ -> ()
      | exception Unix.Unix_error _ -> ());
      loop ()
    end
  in
  loop ()

let start ?(addr = "0.0.0.0") ~port () =
  let sock = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string addr, port));
     Unix.listen sock 16
   with e ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     raise e);
  let bound_port =
    match Unix.getsockname sock with Unix.ADDR_INET (_, p) -> p | Unix.ADDR_UNIX _ -> port
  in
  let stopping = Atomic.make false in
  let domain = Domain.spawn (fun () -> serve_loop sock stopping) in
  { sock; bound_port; stopping; domain; stopped = false }

let port t = t.bound_port

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Atomic.set t.stopping true;
    Domain.join t.domain;
    try Unix.close t.sock with Unix.Unix_error _ -> ()
  end
