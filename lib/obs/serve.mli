(** Minimal HTTP/1.1 metrics endpoint on stdlib [Unix] (no new
    dependencies): a Prometheus scrape target for long-running
    [tinflow] jobs.

    Routes:
    - [GET /metrics] — {!Obs.prometheus_text}, served as
      [text/plain; version=0.0.4]
    - [GET /metrics.json] — {!Obs.metrics_json}
    - [GET /healthz] — ["ok"], for liveness probes and smoke tests

    The accept loop runs on its own domain, so a scrape never blocks a
    solver domain; each export merges the per-domain metric cells
    under the documented tolerated read-race (a scrape may miss the
    racing increments but counter reads are monotone across successive
    scrapes — regression-tested).  Connections are served one at a
    time with short socket timeouts: a scraper is the only intended
    client, and a stalled peer must not wedge the endpoint. *)

type t

val start : ?addr:string -> port:int -> unit -> t
(** [start ~port ()] binds [addr] (default ["0.0.0.0"]) : [port]
    ([SO_REUSEADDR] set; port [0] picks an ephemeral port — see
    {!port}) and spawns the serving domain.
    @raise Unix.Unix_error when the bind fails (port in use,
    privileged port). *)

val port : t -> int
(** The bound port (useful after [start ~port:0]). *)

val stop : t -> unit
(** Shut the endpoint down and join its domain; idempotent.  In-flight
    requests finish; the listening socket closes. *)
