(** Minimal HTTP/1.1 server on stdlib [Unix] (no new dependencies):
    the Prometheus scrape target for long-running [tinflow] jobs, and
    the transport of the [tinflow serve] ingestion daemon.

    Built-in routes (always registered):
    - [GET /metrics] — {!Obs.prometheus_text}, served as
      [text/plain; version=0.0.4]
    - [GET /metrics.json] — {!Obs.metrics_json}
    - [GET /healthz] — ["ok"], for liveness probes and smoke tests

    Applications register further [GET]/[POST] routes through
    {!start}'s [routes] argument; [POST] bodies are bounded by
    [max_body] (an announced larger body is answered [413] without
    being read).

    The accept loop runs on its own domain, so a scrape never blocks a
    solver domain; each export merges the per-domain metric cells
    under the documented tolerated read-race (a scrape may miss the
    racing increments but counter reads are monotone across successive
    scrapes — regression-tested).  Connections are served one at a
    time with short socket timeouts: a stalled peer must not wedge the
    endpoint.

    Robustness contract (each regression-tested):
    - SIGPIPE is ignored process-wide when the first server starts (a
      pre-installed custom handler is preserved), so a peer closing
      mid-response surfaces as the handled [Unix_error (EPIPE, _, _)]
      instead of killing the process.
    - A peer that connects and then sends nothing (or vanishes before
      completing a request) gets {e no} response: timeouts and closes
      are distinguished from malformed input, which is still answered
      [400].
    - Request parsing is linear in the request size: the
      head-terminator scan resumes where the previous chunk ended.

    Observability of the server itself: every matched request runs
    under an [http.<path>] root span (a valid W3C [traceparent]
    request header adopts the caller's trace id; the active context is
    echoed back as a [traceparent] response header), request latency
    is observed into the [http_request_duration_ms{route,status}]
    histogram family while {!Obs.enabled} ("unmatched" caps the route
    cardinality for 404/405s), and any 5xx response triggers a
    rate-limited {!Obs.Flight.incident} dump. *)

type meth = [ `GET | `POST ]

type response = { code : int; content_type : string; body : string }

type handler = body:string -> response
(** Route callback, run on the serving domain.  [body] is the decoded
    request body ([""] for GET).  An exception escaping the handler is
    answered as a [500] with the exception text; the server survives. *)

type t

(** Incremental HTTP request parsing, exposed for deterministic unit
    tests of the chunk-boundary cases (a terminator split across two
    reads, an oversized declared body). *)
module Request : sig
  type t = {
    meth : string;
    target : string;
    body : string;
    headers : (string * string) list;
        (** Field names lowercased (RFC 9110 case-insensitivity);
            values trimmed.  The server reads [traceparent] from
            here. *)
  }

  type parser

  val parser : ?max_head:int -> ?max_body:int -> unit -> parser
  (** Fresh single-request parser.  [max_head] (default 8192) bounds
      the bytes accepted before the blank line; [max_body] (default
      4 MiB) bounds the declared [Content-Length]. *)

  val feed :
    parser ->
    string ->
    [ `More | `Done of t | `Head_too_large | `Body_too_large | `Malformed ]
  (** Feed one received chunk.  [`More] means the request is still
      incomplete; the three failure cases are terminal.  The head scan
      is O(chunk), not O(accumulated): it resumes from
      [max 0 (previous_length - 3)]. *)
end

val start :
  ?addr:string ->
  port:int ->
  ?read_timeout:float ->
  ?max_body:int ->
  ?routes:(meth * string * handler) list ->
  unit ->
  t
(** [start ~port ()] binds [addr] (default ["0.0.0.0"]) : [port]
    ([SO_REUSEADDR] set; port [0] picks an ephemeral port — see
    {!port}) and spawns the serving domain.  [read_timeout] (default
    2 s) is the per-connection [SO_RCVTIMEO]/[SO_SNDTIMEO]; [routes]
    are matched on exact (method, path) after stripping the query
    string, ahead of the built-in routes.
    @raise Unix.Unix_error when the bind fails (port in use,
    privileged port). *)

val port : t -> int
(** The bound port (useful after [start ~port:0]). *)

val stop : t -> unit
(** Shut the endpoint down and join its domain; idempotent.  In-flight
    requests finish; the listening socket closes. *)
