(** Domain-safe metrics and tracing substrate ([tin_obs]).

    Named counters and histograms backed by per-domain sharded
    accumulators (one cell per metric per domain, created through
    domain-local storage and merged on read — no locks on the hot
    path), plus lightweight spans exported as Chrome-trace JSON
    (loadable in [chrome://tracing] / Perfetto) or plain JSON.

    Every recording operation is guarded by {!enabled}, a single
    atomic flag read: with observability off (the default) an
    instrumented hot path pays one branch-predictable load per probe
    and allocates nothing.  The instrumentation throughout the
    repository (LP solver iterations and pivots, pipeline stage
    reductions, pattern-search tickets and deadline hits, greedy
    buffer touches, batch chunk timelines) is therefore always
    compiled in and enabled at runtime with [tinflow --metrics] /
    [--trace FILE].

    Thread-safety: recording is safe from any domain.  {!reset} and
    the read/merge operations ({!counters}, {!trace_events}, the
    exporters) must not race with in-flight instrumented work — call
    them from the coordinating domain between parallel sections (they
    tolerate a race by design, but values read mid-flight may miss the
    racing increments). *)

val enabled : bool Atomic.t
(** The global observability switch (default [false]).  Exposed so
    hot paths can inline the guard; prefer {!enable} / {!disable}. *)

val enable : unit -> unit
val disable : unit -> unit

val tracking : unit -> bool
(** [Atomic.get enabled] — the guard every recording call evaluates
    first. *)

val reset : unit -> unit
(** Zeroes every counter and histogram and drops all recorded span
    events.  Metric identities (registered names) survive. *)

(** Monotonically increasing named event counts. *)
module Counter : sig
  type t

  val make : string -> t
  (** [make name] registers (or finds) the counter named [name].
      Counters are process-global: two [make] calls with the same name
      return the same counter. *)

  val incr : t -> unit
  val add : t -> int -> unit
  (** No-ops while {!enabled} is false. *)

  val value : t -> int
  (** Sum over all per-domain cells. *)

  val name : t -> string
end

(** Named streaming summaries (count/mean/stddev/min/max/total),
    backed by one {!Tin_util.Stats.Acc} per domain, merged on read. *)
module Histogram : sig
  type t

  val make : string -> t
  val observe : t -> float -> unit
  (** No-op while {!enabled} is false. *)

  val summary : t -> Tin_util.Stats.summary
  val name : t -> string
end

type event = {
  name : string;
  ts_ns : int64;  (** Start, monotonic ns ({!Tin_util.Timer.now_ns}). *)
  dur_ns : int64;
  tid : int;  (** The recording domain's id — one trace row each. *)
  args : (string * string) list;
}

(** Wall-clock spans around instrumented regions. *)
module Span : sig
  val with_ : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
  (** [with_ name f] runs [f ()]; when {!enabled} is set, the elapsed
      interval is recorded as a complete event on the calling domain's
      timeline (also when [f] raises).  When disabled, this is exactly
      a guarded call to [f]. *)
end

val counters : unit -> (string * int) list
(** Every registered counter with its merged value, sorted by name. *)

val histograms : unit -> (string * Tin_util.Stats.summary) list
(** Every registered histogram with its merged summary, sorted by
    name. *)

val trace_events : unit -> event list
(** All recorded spans, across domains, sorted by start time. *)

val dropped_events : unit -> int
(** Spans discarded because a domain's buffer hit its cap. *)

val chrome_trace_json : unit -> string
(** The recorded spans as a Chrome-trace JSON array of complete
    ("ph":"X") events with microsecond timestamps rebased to the
    earliest span, one ["thread_name"] metadata record per domain, and
    every nonzero counter appended as a process-level instant event —
    the format [chrome://tracing] and Perfetto load directly. *)

val metrics_json : unit -> string
(** Counters and histogram summaries as one plain JSON object. *)

val write_chrome_trace : string -> unit
(** [write_chrome_trace path] writes {!chrome_trace_json} to [path]. *)

val print_summary : out_channel -> unit
(** Renders the nonzero counters and nonempty histograms as aligned
    tables (the [tinflow --metrics] report). *)
