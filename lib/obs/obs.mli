(** Domain-safe metrics and tracing substrate ([tin_obs]).

    Named counters, gauges and histograms backed by per-domain sharded
    accumulators (one cell per metric per domain, created through
    domain-local storage and merged on read — no locks on the hot
    path), plus lightweight spans exported as Chrome-trace JSON
    (loadable in [chrome://tracing] / Perfetto), plain JSON, or
    Prometheus text exposition format (served live by
    {!Tin_obs.Serve}).

    Every recording operation is guarded by {!enabled}, a single
    atomic flag read: with observability off (the default) an
    instrumented hot path pays one branch-predictable load per probe
    and allocates nothing.  The instrumentation throughout the
    repository (LP solver iterations and pivots, pipeline stage
    reductions, pattern-search tickets and deadline hits, greedy
    buffer touches, batch chunk timelines, per-solve latency
    histograms) is therefore always compiled in and enabled at runtime
    with [tinflow --metrics] / [--trace FILE] / [--listen PORT].

    Thread-safety: recording is safe from any domain.  {!reset} must
    not race with in-flight instrumented work — call it from the
    coordinating domain between parallel sections.  The read/merge
    operations ({!counters}, {!trace_events}, the exporters) tolerate
    concurrent recording by design: counter cells are written by one
    domain each with monotone values, so a racing read may miss the
    very latest increments but never observes a decreasing value.
    This is what makes live scraping ({!Tin_obs.Serve}) safe from its
    own domain while solver domains keep recording; the property is
    regression-tested by a scrape-during-[map_reduce] test. *)

val enabled : bool Atomic.t
(** The global observability switch (default [false]).  Exposed so
    hot paths can inline the guard; prefer {!enable} / {!disable}. *)

val enable : unit -> unit
val disable : unit -> unit

val tracking : unit -> bool
(** [Atomic.get enabled] — the guard every metric recording call
    evaluates first. *)

val recording : unit -> bool
(** True when spans have somewhere to go: {!enabled} is set {e or} the
    {!Flight} recorder is armed.  This is the guard for span
    instrumentation (and for building span args); metric probes still
    key off {!enabled} alone. *)

val reset : unit -> unit
(** Zeroes every counter and histogram, unsets every gauge, and drops
    all recorded span events and flight-ring contents.  Metric
    identities (registered names) survive. *)

(** Monotonically increasing named event counts. *)
module Counter : sig
  type t

  val make : string -> t
  (** [make name] registers (or finds) the counter named [name].
      Counters are process-global: two [make] calls with the same name
      return the same counter. *)

  type family
  (** A labeled counter family: one metric name, one fixed label key
      list, one time series per label-value combination — the
      Prometheus data model.  [lp_pivots{solver="sparse"}] and
      [lp_pivots{solver="dense"}] are two counters of one family. *)

  val make_labeled : string -> labels:string list -> family
  (** [make_labeled name ~labels] registers (or finds) the family.
      @raise Invalid_argument if [labels] is empty, or if [name] is
      already registered with different label keys. *)

  val labeled : family -> string list -> t
  (** [labeled fam values] is the family member for these label values
      (positionally matching the family's label keys) — a plain
      counter, cached per value combination, so resolve it once
      outside the hot loop.
      @raise Invalid_argument on arity mismatch. *)

  val incr : t -> unit

  val add : t -> int -> unit
  (** No-ops while {!enabled} is false.
      @raise Invalid_argument if [n] is negative — counters are
      monotone (Prometheus counters must never decrease); the check is
      made even while disabled so misuse cannot hide behind the
      flag. *)

  val value : t -> int
  (** Sum over all per-domain cells. *)

  val name : t -> string
  (** The registered name; family members render their labels,
      e.g. [lp_pivots{solver="sparse"}]. *)
end

(** Named point-in-time measurements (queue depths, heap sizes, RSS):
    the last written value wins, unlike a counter's running sum.
    Writes are per-domain cells stamped with a global sequence number;
    reads return the freshest stamp, so concurrent writers settle on
    the last write without hot-path locks. *)
module Gauge : sig
  type t

  val make : string -> t

  type family

  val make_labeled : string -> labels:string list -> family
  val labeled : family -> string list -> t

  val set : t -> float -> unit
  (** No-op while {!enabled} is false. *)

  val add : t -> float -> unit
  (** [add g dx] adjusts the calling domain's cell by [dx] (from the
      domain's own last write, or from [dx] if this domain never
      wrote) and stamps it freshest.  No-op while disabled. *)

  val value : t -> float
  (** The most recently written value across domains; [nan] if the
      gauge was never written (unset gauges are skipped by the
      exporters). *)

  val name : t -> string
end

(** Named streaming summaries (count/mean/stddev/min/max/total),
    backed by one {!Tin_util.Stats.Acc} per domain, merged on read. *)
module Histogram : sig
  type t

  val make : string -> t

  type family

  val make_labeled : string -> labels:string list -> family
  val labeled : family -> string list -> t

  val observe : t -> float -> unit
  (** No-op while {!enabled} is false. *)

  val summary : t -> Tin_util.Stats.summary
  val name : t -> string
end

type event = {
  name : string;
  ts_ns : int64;  (** Start, monotonic ns ({!Tin_util.Timer.now_ns}). *)
  dur_ns : int64;
  tid : int;  (** The recording domain's id — one trace row each. *)
  args : (string * string) list;
  trace_id : string;  (** 32 hex chars; [""] on events recorded without a context. *)
  span_id : string;  (** 16 hex chars identifying this span. *)
  parent_id : string;  (** Enclosing span's id; [""] for roots. *)
}

val span_buffer_cap : unit -> int
(** Per-domain bounded span-buffer capacity (default 262144). *)

val set_span_buffer_cap : int -> unit
(** Change the per-domain span-buffer cap.  Tests use a tiny cap to
    force drops; restore the default afterwards.
    @raise Invalid_argument if not positive. *)

(** Wall-clock spans around instrumented regions, carrying W3C trace
    context: every recorded span gets a fresh span id, inherits the
    trace id of the innermost open span on its domain (or starts a
    fresh trace), and records that enclosing span as its parent — so
    an exported trace reassembles into trees.  Propagation across
    [Domain.spawn] is explicit via {!Trace_ctx}. *)
module Span : sig
  val with_ : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
  (** [with_ name f] runs [f ()]; when {!recording} is true, the
      elapsed interval is recorded as a complete event on the calling
      domain's timeline (also when [f] raises) — into the bounded
      trace buffer when {!enabled}, and into the {!Flight} ring when
      armed.  Otherwise this is exactly a guarded call to [f]. *)

  val with_root : ?traceparent:string -> string -> (unit -> 'a) -> 'a
  (** [with_root name f] opens [name] as a {e root} span: under a
      fresh trace id, or — when [traceparent] carries a valid W3C
      value — under the caller's trace id with the remote span as
      parent, stitching this process into a distributed trace.
      Subcommand entry points and HTTP request handlers use this;
      malformed [traceparent] values fall back to a fresh trace. *)

  val current_ids : unit -> (string * string) option
  (** [(trace_id, span_id)] of the innermost open span on this domain
      — what [--log-json] events attach to correlate logs with
      spans. *)

  val current_traceparent : unit -> string option
  (** The current context as a [traceparent] header value, for
      propagation to downstream services (emitted on daemon HTTP
      responses). *)
end

(** Always-on post-mortem flight recorder: a bounded per-domain ring
    of the most recent spans, armed by default and independent of
    {!enabled} — cheap enough to leave on in production ([--trace]
    off), so a SIGUSR2, daemon 5xx or crash can dump "what it was
    doing" after the fact.  Ring wraparound counts {e evictions}
    (normal; exported as [obs_flight_ring_evictions]), a different
    signal from bounded span-buffer {e drops}
    ([obs_dropped_span_events], trace incomplete). *)
module Flight : sig
  val armed : unit -> bool
  val arm : unit -> unit

  val disarm : unit -> unit
  (** Disarming (plus keeping {!enabled} off) restores the strict
      zero-recording path. *)

  val default_capacity : int
  (** Ring slots per domain (4096). *)

  val set_capacity : int -> unit
  (** Resize (and clear) every materialized ring; tests use a tiny
      capacity to force evictions.  @raise Invalid_argument if not
      positive. *)

  val events : unit -> event list
  (** Current ring contents across domains, oldest first. *)

  val evictions : unit -> int
  (** Ring slots overwritten by newer spans since the last {!reset}. *)

  val set_dump_prefix : string -> unit
  (** Path prefix for dump files (default
      [tinflow-flight-<pid>]). @raise Invalid_argument on [""]. *)

  val dump : ?path:string -> reason:string -> unit -> string
  (** Write the ring as a Chrome trace to [path] (default
      [<prefix>-<reason>.json]) with [reason], [flight_evictions] and
      [armed] as extra top-level fields; returns the path written.
      Safe from OCaml signal handlers and racing triggers (serialized
      internally). *)

  val incident : reason:string -> unit -> string option
  (** Rate-limited {!dump} (at most one per second, across reasons):
      the trigger for recurring conditions like daemon 5xx responses.
      [None] when suppressed by the rate limit. *)

  val dumps : unit -> int
  (** Dump files written since process start. *)
end

(** Process runtime telemetry: GC behaviour, resident set size and
    domain registration published as [runtime_*] gauges, so solver
    allocation pressure is visible next to pivot counts in the same
    scrape or trace.  Off by default; {!start} launches a background
    sampler thread (stdlib [Thread] + [Unix]), [tinflow --listen]
    starts it automatically. *)
module Runtime : sig
  val sample : unit -> unit
  (** Take one sample now (on the calling thread): publishes
      [Gc.quick_stat] cumulative totals ([runtime_gc_minor_collections],
      [runtime_gc_major_collections], [runtime_gc_compactions],
      [runtime_gc_minor_words], [runtime_gc_promoted_words],
      [runtime_gc_heap_words]), the number of domains that have
      registered with this observability layer ([runtime_obs_domains]),
      and the resident set size from [/proc/self/statm]
      ([runtime_rss_pages], and [runtime_rss_bytes] assuming 4 KiB
      pages) when that file exists (Linux).  [runtime_peak_rss_bytes]
      is max-tracking: it holds the largest [runtime_rss_bytes] seen
      since the last {!reset}, so the high-water mark survives later,
      smaller samples (the load benchmark reports it per stage).
      Rates (allocation rate, collections/s) are computed scrape-side
      from successive samples.  Like every probe, a no-op while
      {!enabled} is false. *)

  val start : ?period_ms:int -> unit -> unit
  (** Start the background sampler: one {!sample} immediately, then
      one per [period_ms] (default 500) until {!stop}.  Idempotent
      while running.
      @raise Invalid_argument if [period_ms] is not positive. *)

  val stop : unit -> unit
  (** Stop and join the sampler thread; no-op if not running.  The
      last published gauge values remain readable. *)

  val running : unit -> bool
end

val counters : unit -> (string * int) list
(** Every registered counter with its merged value, sorted by name. *)

val gauges : unit -> (string * float) list
(** Every gauge that has been written since the last {!reset}, with
    its freshest value, sorted by name. *)

val histograms : unit -> (string * Tin_util.Stats.summary) list
(** Every registered histogram with its merged summary, sorted by
    name. *)

val trace_events : unit -> event list
(** All recorded spans, across domains, sorted by start time. *)

val dropped_events : unit -> int
(** Spans discarded because a domain's buffer hit its cap.  Surfaced
    by {!print_summary} (warning line) and as a top-level
    ["dropped_events"] field of both JSON exports. *)

val chrome_trace_json : unit -> string
(** The recorded spans in Chrome-trace {e JSON Object Format}:
    [{"traceEvents": [...], "dropped_events": N}] where the array
    holds complete ("ph":"X") events with microsecond timestamps
    rebased to the earliest span, one ["thread_name"] metadata record
    per domain, and every nonzero counter appended as a process-level
    instant event — loadable directly in [chrome://tracing] and
    Perfetto (both accept the object form). *)

val metrics_json : unit -> string
(** Counters, gauges and histogram summaries as one plain JSON
    object, with a top-level ["dropped_events"] field. *)

val prometheus_text : unit -> string
(** Every metric in Prometheus text exposition format (version
    0.0.4): [# HELP] / [# TYPE] headers per family, label names and
    escaped label values for family members, metric names sanitized to
    the [[a-zA-Z_:][a-zA-Z0-9_:]*] charset (dots become underscores:
    counter [pipeline.stage.lp_solve] exports as [pipeline_stage_lp_solve]).
    Histogram summaries export as four gauges ([_count], [_sum],
    [_min], [_max]); unset gauges and empty histograms are omitted
    (except [_count], always exported once a histogram family member
    exists).  This is what [GET /metrics] serves. *)

val write_chrome_trace : string -> unit
(** [write_chrome_trace path] writes {!chrome_trace_json} to [path]. *)

val print_summary : out_channel -> unit
(** Renders the nonzero counters, set gauges and nonempty histograms
    as aligned tables (the [tinflow --metrics] report), preceded by a
    warning line when {!dropped_events} is positive. *)
