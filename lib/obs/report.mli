(** Offline critical-path analyzer for exported traces — the engine of
    [tinflow obs report].

    Input is any Chrome-trace document this layer writes (a [--trace]
    file or a {!Obs.Flight} dump): the ["X"] events are reassembled
    into span trees from the [trace_id]/[span_id]/[parent_id] ids the
    exporter placed in their args, and the analysis reports

    - the {e critical path}: from the longest root span, repeatedly
      descend into the child that finishes last — the chain of spans
      that gated the request's completion, each with its self
      contribution (its duration minus the chosen child's);
    - {e per-domain utilization}: the union of each domain's span
      intervals (nested spans not double-counted) over the whole-trace
      wall time;
    - {e chunk balance} over [batch.map.chunk] /
      [batch.map_reduce.chunk] spans: duration statistics, per-domain
      chunk time, and imbalance (max over mean domain chunk time —
      1.0 is a perfectly even spread);
    - {e top span self-times} aggregated by name (duration minus the
      interval union of children).

    Traces recorded before trace contexts existed (spans without ids)
    degrade gracefully: every span classifies as a root and the
    critical path is the longest span alone. *)

type span = {
  name : string;
  ts_us : float;
  dur_us : float;
  tid : int;
  span_id : string;
  parent_id : string;
}

type domain_stat = {
  d_tid : int;
  d_spans : int;
  d_busy_us : float;
  d_utilization : float;
}

type chunk_stats = {
  c_count : int;
  c_mean_us : float;
  c_min_us : float;
  c_max_us : float;
  c_stddev_us : float;
  c_per_domain_us : (int * float) list;
  c_imbalance : float;
}

type self_time = { s_name : string; s_count : int; s_total_us : float; s_max_us : float }

type t = {
  spans : int;
  dropped : int;
  wall_us : float;
  roots : int;  (** Spans with no in-trace parent; 1 for a fully stitched request. *)
  orphans : int;
      (** Spans whose parent chain does not reach the primary root —
          0 when cross-domain stitching worked. *)
  root_name : string;
  trace_id : string;
  critical_path : (span * float) list;
  critical_path_us : float;
  domains : domain_stat list;
  chunks : chunk_stats option;
  self_times : self_time list;
}

val analyze : ?top:int -> Tin_util.Json.t -> (t, string) result
(** [analyze doc] over a parsed Chrome-trace document.  [top] (default
    10) bounds [self_times].  [Error] when the document has no
    [traceEvents] array or no complete span events. *)

val to_json : t -> string
(** Machine-readable report, schema ["tinflow.obs.report/v1"]:
    [{"schema", "trace": {spans, dropped, wall_ms, roots, orphans,
    root, trace_id}, "critical_path_ms", "critical_path": [{name, tid,
    dur_ms, self_ms}], "domains": [{tid, spans, busy_ms, utilization}],
    "utilization": {domains, mean}, "chunks": {count, mean_ms, min_ms,
    max_ms, stddev_ms, imbalance, per_domain} | null, "self_times":
    [{name, count, self_ms, max_self_ms}]}].  Field names use the
    [_ms] convention so {!Tin_util.Regress} classifies them as
    lower-is-better when a report is diffed with [tinflow
    bench-check]. *)

val render : t -> string
(** Human tables: critical path, per-domain utilization, chunk
    balance, top self-times. *)
