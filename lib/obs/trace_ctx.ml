(* W3C-trace-context identifiers and their domain-local propagation.

   A context is the pair (trace_id, span_id) of the *currently open*
   span; children read it to parent themselves and install their own
   before running their body.  The slot is domain-local storage, so
   propagation across [Domain.spawn] is explicit: capture [current ()]
   in the parent, reinstall with [with_ctx] inside the child (Batch
   does exactly this for its workers).

   Id generation is a lock-free SplitMix64 finalizer over a global
   atomic counter: unique across domains without coordination, seeded
   from wall clock and pid so concurrent processes do not collide. *)

type t = { trace_id : string; span_id : string }

(* ---- id generation ------------------------------------------------ *)

let splitmix64 (x : int64) : int64 =
  let open Int64 in
  let z = add x 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let seed =
  let t = Unix.gettimeofday () in
  Int64.logxor
    (Int64.bits_of_float t)
    (splitmix64 (Int64.of_int (Unix.getpid ())))

let ctr = Atomic.make 0

let next64 () =
  let n = Atomic.fetch_and_add ctr 1 in
  let v = splitmix64 (Int64.logxor seed (Int64.of_int n)) in
  if v = 0L then 1L else v

let fresh_trace_id () = Printf.sprintf "%016Lx%016Lx" (next64 ()) (next64 ())
let fresh_span_id () = Printf.sprintf "%016Lx" (next64 ())

(* ---- domain-local current context --------------------------------- *)

let slot : t option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)
let cell () = Domain.DLS.get slot
let current () = !(cell ())

let with_ctx ctx f =
  let c = cell () in
  let saved = !c in
  c := ctx;
  match f () with
  | r ->
      c := saved;
      r
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      c := saved;
      Printexc.raise_with_backtrace e bt

(* ---- W3C traceparent ----------------------------------------------- *)

let is_hex s =
  String.for_all
    (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
    s

let all_zero s = String.for_all (fun c -> c = '0') s

let of_traceparent s =
  let s = String.trim s in
  (* version "00": 2-hex version, 32-hex trace-id, 16-hex parent-id,
     2-hex flags, dash-separated.  Reject the forbidden version ff,
     all-zero ids, and anything malformed. *)
  if String.length s < 55 then None
  else
    match String.split_on_char '-' s with
    | version :: trace_id :: parent_id :: _flags :: _ ->
        (* Hex must be lowercase: the spec invalidates uppercase ids
           rather than normalizing them. *)
        if
          String.length version = 2
          && is_hex version
          && version <> "ff"
          && String.length trace_id = 32
          && is_hex trace_id
          && (not (all_zero trace_id))
          && String.length parent_id = 16
          && is_hex parent_id
          && not (all_zero parent_id)
        then Some { trace_id; span_id = parent_id }
        else None
    | _ -> None

let to_traceparent { trace_id; span_id } =
  let span_id = if span_id = "" then String.make 16 '0' else span_id in
  Printf.sprintf "00-%s-%s-01" trace_id span_id
