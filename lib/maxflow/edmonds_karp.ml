let eps = Tin_util.Fcmp.(default_policy.path_eps)

let max_flow net ~source ~sink =
  if source = sink then invalid_arg "Edmonds_karp.max_flow: source = sink";
  let n = Net.n_nodes net in
  let pred = Array.make n (-1) in
  (* pred.(v) = arc that reached v *)
  let queue = Queue.create () in
  let total = ref 0.0 in
  let rec round () =
    Array.fill pred 0 n (-1);
    Queue.clear queue;
    Queue.add source queue;
    pred.(source) <- -2;
    let found = ref false in
    while (not !found) && not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      let arcs = Net.adj net v in
      let k = ref 0 in
      while (not !found) && !k < Array.length arcs do
        let a = arcs.(!k) in
        incr k;
        let u = Net.dst net a in
        if pred.(u) = -1 && Net.residual net a > eps then begin
          pred.(u) <- a;
          if u = sink then found := true else Queue.add u queue
        end
      done
    done;
    if !found then begin
      (* Bottleneck along the predecessor chain. *)
      let rec bottleneck v acc =
        if v = source then acc
        else
          let a = pred.(v) in
          bottleneck (Net.dst net (Net.twin a)) (Float.min acc (Net.residual net a))
      in
      let f = bottleneck sink infinity in
      let rec push v =
        if v <> source then begin
          let a = pred.(v) in
          Net.augment net a f;
          push (Net.dst net (Net.twin a))
        end
      in
      push sink;
      total := !total +. f;
      round ()
    end
  in
  round ();
  !total
