(** Capacitated flow network with residual arcs.

    The classic static max-flow substrate.  The paper's maximum-flow
    problem reduces to static max flow on a time-expanded network
    (Akrida et al., CIAC 2017); {!Time_expand} builds that network and
    {!Edmonds_karp} / {!Dinic} solve it, giving an oracle that is
    independent of the LP path.

    Arcs are stored in pairs: arc [2k] is the forward arc, arc
    [2k + 1] its residual twin; solvers mutate residual capacities in
    place.  Capacities may be [infinity] (holdover arcs). *)

type t
type arc = int

val create : n:int -> t
(** Network with [n] nodes ([0 .. n-1]) and no arcs. *)

val add_node : t -> int
(** Adds a node, returning its id. *)

val add_arc : t -> src:int -> dst:int -> cap:float -> arc
(** Adds a forward arc and its zero-capacity residual twin; returns the
    forward arc id.  @raise Invalid_argument on negative or NaN
    capacity, or node ids out of range. *)

val n_nodes : t -> int
val n_arcs : t -> int
(** Number of forward arcs. *)

val capacity : t -> arc -> float
(** Original capacity of a forward arc. *)

val flow : t -> arc -> float
(** Current flow on a forward arc (0 before any solver ran). *)

val copy : t -> t
(** Deep copy, so several solvers can run on the same network. *)

val reset : t -> unit
(** Zeroes all flow. *)

(** {1 Residual-graph access (used by the solvers)} *)

val dst : t -> arc -> int
(** Destination node of an arc (for residual twins: the original
    source). *)

val twin : arc -> arc
(** The paired residual arc ([a lxor 1]). *)

val residual : t -> arc -> float
(** Remaining capacity of an arc in the residual graph. *)

val augment : t -> arc -> float -> unit
(** [augment net a f] pushes [f] units along [a]: decreases its
    residual capacity and increases the twin's. *)

val adj : t -> int -> arc array
(** All arcs (forward and residual) leaving a node in the residual
    graph.  The array is cached; do not add arcs between solver runs
    without rebuilding. *)
