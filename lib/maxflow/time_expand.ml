type t = {
  net : Net.t;
  source_node : int;
  sink_node : int;
  n_event_nodes : int;
  interaction_arcs : (Net.arc * (Graph.vertex * Graph.vertex * Interaction.t)) list;
}

module FloatSet = Set.Make (Float)
module IntMap = Map.Make (Int)

(* Per vertex and event time τ we create two nodes:
   - [b]: the buffer just before τ — what arrived strictly earlier and
     was carried across the interval; departures at τ draw from it;
   - [a]: the state just after τ — receives the arrivals at τ and
     whatever of [b] was not sent.
   The carry arc a(τ_k) → b(τ_{k+1}) has the vertex's buffer capacity
   (infinite by default — the paper's unbounded buffers), and b(τ) →
   a(τ) is infinite (same instant, no storage involved).  With
   infinite capacities this is equivalent to a single chain of
   holdover arcs; with finite ones it charges everything held across
   an interval — including quantity leaving at the very next event —
   against the capacity. *)
type event_nodes = { time : float; b : int; a : int }

(* Shared network construction: [iter] visits every interaction in
   [Graph.iter_edges] order (the flat substrate iterates identically),
   so arc creation order — and therefore the float results of the
   augmenting-path algorithms — cannot depend on the representation. *)
let build_of ~empty ~mem_vertex ~iter ?(buffer_capacity = fun _ -> infinity) ~source ~sink () =
  if source = sink then invalid_arg "Time_expand.build: source = sink";
  if (not empty) && not (mem_vertex source && mem_vertex sink) then
    invalid_arg "Time_expand.build: source or sink not in graph";
  (* Big-M stand-in for infinite quantities. *)
  let finite_total =
    let acc = ref 0.0 in
    iter (fun _ _ i ->
        let q = Interaction.qty i in
        if Float.is_finite q then acc := !acc +. q);
    !acc
  in
  let big_m = finite_total +. 1.0 in
  let cap_of q = if Float.is_finite q then q else big_m in
  (* Event times per vertex. *)
  let events =
    let acc = ref IntMap.empty in
    iter (fun v u i ->
        let tm = Interaction.time i in
        let add vert =
          let s = match IntMap.find_opt vert !acc with Some s -> s | None -> FloatSet.empty in
          acc := IntMap.add vert (FloatSet.add tm s) !acc
        in
        add v;
        add u);
    !acc
  in
  let net = Net.create ~n:0 in
  let source_node = Net.add_node net in
  let sink_node = Net.add_node net in
  let node_of : (Graph.vertex, event_nodes array) Hashtbl.t = Hashtbl.create 64 in
  IntMap.iter
    (fun v times ->
      if v <> source then begin
        let cap =
          if v = sink then infinity
          else begin
            let c = buffer_capacity v in
            if Float.is_nan c || c < 0.0 then
              invalid_arg "Time_expand.build: bad buffer capacity";
            c
          end
        in
        let arr =
          FloatSet.elements times
          |> List.map (fun time ->
                 let b = Net.add_node net in
                 let a = Net.add_node net in
                 ignore (Net.add_arc net ~src:b ~dst:a ~cap:infinity);
                 { time; b; a })
          |> Array.of_list
        in
        Array.iteri
          (fun k { b; _ } ->
            if k > 0 then ignore (Net.add_arc net ~src:arr.(k - 1).a ~dst:b ~cap))
          arr;
        Hashtbl.add node_of v arr
      end)
    events;
  let find_event v tm =
    match Hashtbl.find_opt node_of v with
    | None -> None
    | Some arr ->
        let lo = ref 0 and hi = ref (Array.length arr - 1) and found = ref None in
        while !found = None && !lo <= !hi do
          let mid = (!lo + !hi) / 2 in
          let c = Float.compare arr.(mid).time tm in
          if c = 0 then found := Some arr.(mid)
          else if c < 0 then lo := mid + 1
          else hi := mid - 1
        done;
        !found
  in
  let interaction_arcs = ref [] in
  iter (fun v u i ->
      let tm = Interaction.time i and q = Interaction.qty i in
      let from_node =
        if v = source then Some source_node
        else Option.map (fun (e : event_nodes) -> e.b) (find_event v tm)
      in
      let to_node =
        if u = sink then Some sink_node
        else Option.map (fun (e : event_nodes) -> e.a) (find_event u tm)
      in
      match (from_node, to_node) with
      | Some f, Some t ->
          let arc = Net.add_arc net ~src:f ~dst:t ~cap:(cap_of q) in
          interaction_arcs := (arc, (v, u, i)) :: !interaction_arcs
      | None, _ | _, None ->
          (* Dead interaction (nothing can be buffered at v before
             tm -- the situation the preprocessing pass of Section
             4.2.3 exploits), or the target is the infinite-buffer
             source, which gains nothing. *)
          ());
  {
    net;
    source_node;
    sink_node;
    n_event_nodes = Net.n_nodes net - 2;
    interaction_arcs = !interaction_arcs;
  }

let build ?buffer_capacity g ~source ~sink =
  build_of ~empty:(Graph.n_vertices g = 0)
    ~mem_vertex:(Graph.mem_vertex g)
    ~iter:(fun f -> Graph.iter_edges (fun v u is -> List.iter (f v u) is) g)
    ?buffer_capacity ~source ~sink ()

let build_compact ?buffer_capacity c ~source ~sink =
  build_of
    ~empty:(Compact.n_vertices c = 0)
    ~mem_vertex:(fun l -> Compact.vertex_of_label c l <> None)
    ~iter:(fun f -> Compact.iter_grouped c f)
    ?buffer_capacity ~source ~sink ()

let solve_net ~algo net ~source ~sink =
  match algo with
  | `Dinic -> Dinic.max_flow net ~source ~sink
  | `Edmonds_karp -> Edmonds_karp.max_flow net ~source ~sink
  | `Push_relabel -> Push_relabel.max_flow net ~source ~sink

let max_flow ?(algo = `Dinic) ?buffer_capacity g ~source ~sink =
  let { net; source_node; sink_node; _ } = build ?buffer_capacity g ~source ~sink in
  solve_net ~algo net ~source:source_node ~sink:sink_node

let max_flow_compact ?(algo = `Dinic) ?buffer_capacity c ~source ~sink =
  let { net; source_node; sink_node; _ } = build_compact ?buffer_capacity c ~source ~sink in
  solve_net ~algo net ~source:source_node ~sink:sink_node

type solution = {
  value : float;
  interaction_flows : ((Graph.vertex * Graph.vertex * Interaction.t) * float) list;
}

let max_flow_detailed ?(algo = `Dinic) ?buffer_capacity g ~source ~sink =
  let te = build ?buffer_capacity g ~source ~sink in
  let value = solve_net ~algo te.net ~source:te.source_node ~sink:te.sink_node in
  let interaction_flows =
    List.rev_map (fun (arc, inter) -> (inter, Net.flow te.net arc)) te.interaction_arcs
  in
  { value; interaction_flows }
