(** Dinic's maximum-flow algorithm: BFS level graph + DFS blocking
    flows, O(V²·E) (much faster in practice on the sparse
    time-expanded networks produced by {!Time_expand}). *)

val max_flow : Net.t -> source:int -> sink:int -> float
(** Computes the maximum [source]→[sink] flow, mutating the network's
    residual capacities.  Returns the flow value.
    @raise Invalid_argument if [source = sink]. *)
