type arc = int

type t = {
  mutable n : int;
  mutable m : int; (* arc slots in use (forward + residual) *)
  mutable arc_dst : int array;
  mutable arc_res : float array;
  mutable arc_cap : float array; (* original capacity; 0 for residual twins *)
  mutable adj_lists : arc list array; (* per node, reversed insertion order *)
  mutable adj_cache : arc array array option;
}

let create ~n =
  {
    n;
    m = 0;
    arc_dst = Array.make 16 0;
    arc_res = Array.make 16 0.0;
    arc_cap = Array.make 16 0.0;
    adj_lists = Array.make (max n 1) [];
    adj_cache = None;
  }

let add_node t =
  let id = t.n in
  t.n <- t.n + 1;
  if t.n > Array.length t.adj_lists then begin
    let grown = Array.make (2 * t.n) [] in
    Array.blit t.adj_lists 0 grown 0 (Array.length t.adj_lists);
    t.adj_lists <- grown
  end;
  t.adj_cache <- None;
  id

let ensure_arc_room t =
  if t.m + 2 > Array.length t.arc_dst then begin
    let cap = 2 * (t.m + 2) in
    let grow_i a =
      let g = Array.make cap 0 in
      Array.blit a 0 g 0 t.m;
      g
    and grow_f a =
      let g = Array.make cap 0.0 in
      Array.blit a 0 g 0 t.m;
      g
    in
    t.arc_dst <- grow_i t.arc_dst;
    t.arc_res <- grow_f t.arc_res;
    t.arc_cap <- grow_f t.arc_cap
  end

let add_arc t ~src ~dst ~cap =
  if Float.is_nan cap || cap < 0.0 then invalid_arg "Net.add_arc: bad capacity";
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Net.add_arc: node out of range";
  ensure_arc_room t;
  let a = t.m in
  t.arc_dst.(a) <- dst;
  t.arc_res.(a) <- cap;
  t.arc_cap.(a) <- cap;
  t.arc_dst.(a + 1) <- src;
  t.arc_res.(a + 1) <- 0.0;
  t.arc_cap.(a + 1) <- 0.0;
  t.m <- t.m + 2;
  t.adj_lists.(src) <- a :: t.adj_lists.(src);
  t.adj_lists.(dst) <- (a + 1) :: t.adj_lists.(dst);
  t.adj_cache <- None;
  a

let n_nodes t = t.n
let n_arcs t = t.m / 2
let capacity t a = t.arc_cap.(a)

let flow t a =
  (* Flow on a forward arc equals the residual capacity accumulated on
     its twin. *)
  t.arc_res.(a lxor 1) -. t.arc_cap.(a lxor 1)

let copy t =
  {
    t with
    arc_dst = Array.copy t.arc_dst;
    arc_res = Array.copy t.arc_res;
    arc_cap = Array.copy t.arc_cap;
    adj_lists = Array.copy t.adj_lists;
    adj_cache = None;
  }

let reset t =
  Array.blit t.arc_cap 0 t.arc_res 0 t.m

let dst t a = t.arc_dst.(a)
let twin a = a lxor 1
let residual t a = t.arc_res.(a)

let augment t a f =
  t.arc_res.(a) <- t.arc_res.(a) -. f;
  t.arc_res.(a lxor 1) <- t.arc_res.(a lxor 1) +. f

let adj t v =
  let cache =
    match t.adj_cache with
    | Some c when Array.length c = t.n -> c
    | _ ->
        let c = Array.init t.n (fun v -> Array.of_list (List.rev t.adj_lists.(v))) in
        t.adj_cache <- Some c;
        c
  in
  cache.(v)
