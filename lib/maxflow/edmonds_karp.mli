(** Edmonds–Karp maximum flow: BFS shortest augmenting paths,
    O(V·E²).  The paper's complexity discussion (Section 4.2.1) is
    phrased in terms of this algorithm on the time-expanded network. *)

val max_flow : Net.t -> source:int -> sink:int -> float
(** Computes the maximum [source]→[sink] flow, mutating the network's
    residual capacities (per-arc flows are then available through
    {!Net.flow}).  Returns the flow value.
    @raise Invalid_argument if [source = sink]. *)
