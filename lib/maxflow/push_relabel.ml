let eps = Tin_util.Fcmp.(default_policy.path_eps)

(* Highest-label push-relabel with the gap heuristic.  Excess at the
   source is initialised by saturating its outgoing arcs; nodes with
   positive excess (except source/sink) are kept in per-height
   buckets. *)
let max_flow net ~source ~sink =
  if source = sink then invalid_arg "Push_relabel.max_flow: source = sink";
  let n = Net.n_nodes net in
  let height = Array.make n 0 in
  let excess = Array.make n 0.0 in
  let current = Array.make n 0 in
  (* arc cursor per node *)
  (* Buckets of active nodes by height; [highest] tracks the topmost
     non-empty bucket. *)
  let buckets = Array.make ((2 * n) + 2) [] in
  let highest = ref 0 in
  (* Number of nodes at each height, for the gap heuristic. *)
  let height_count = Array.make ((2 * n) + 2) 0 in
  let activate v =
    (* Nodes lifted above 2n cannot reach the sink nor the source any
       more; in exact arithmetic the preflow invariant keeps active
       heights below 2n, so anything beyond is epsilon-sized residue —
       re-queueing it would livelock the drain loop. *)
    if v <> source && v <> sink && excess.(v) > eps && height.(v) <= 2 * n then begin
      buckets.(height.(v)) <- v :: buckets.(height.(v));
      if height.(v) > !highest then highest := height.(v)
    end
  in
  height.(source) <- n;
  Array.iteri (fun v _ -> if v <> source then height_count.(height.(v)) <- height_count.(height.(v)) + 1) height;
  (* Saturate source arcs. *)
  Array.iter
    (fun a ->
      let r = Net.residual net a in
      if r > eps then begin
        let u = Net.dst net a in
        Net.augment net a r;
        excess.(u) <- excess.(u) +. r;
        excess.(source) <- excess.(source) -. r
      end)
    (Net.adj net source);
  Array.iteri (fun v _ -> activate v) height;
  let relabel v =
    (* Find the lowest admissible height among residual arcs. *)
    let old = height.(v) in
    let best = ref max_int in
    Array.iter
      (fun a ->
        if Net.residual net a > eps then begin
          let h = height.(Net.dst net a) in
          (* Parked neighbours (height > 2n) lead nowhere. *)
          if h <= 2 * n && h < !best then best := h
        end)
      (Net.adj net v);
    if !best < max_int then begin
      (* Theory bounds heights by 2n - 1 for nodes holding excess, so
         no cap is needed. *)
      height_count.(old) <- height_count.(old) - 1;
      height.(v) <- !best + 1;
      height_count.(height.(v)) <- height_count.(height.(v)) + 1;
      current.(v) <- 0;
      (* Gap heuristic: if no node remains at [old], every node above
         [old] (below n) can never push to the sink again — lift them
         past n at once. *)
      if height_count.(old) = 0 && old < n then
        for u = 0 to n - 1 do
          if u <> source && height.(u) > old && height.(u) < n then begin
            height_count.(height.(u)) <- height_count.(height.(u)) - 1;
            height.(u) <- n + 1;
            height_count.(height.(u)) <- height_count.(height.(u)) + 1
          end
        done
    end
    else begin
      (* No residual arc at all: park the node out of reach. *)
      height_count.(old) <- height_count.(old) - 1;
      height.(v) <- (2 * n) + 1;
      height_count.(height.(v)) <- height_count.(height.(v)) + 1
    end
  in
  let discharge v =
    let arcs = Net.adj net v in
    let m = Array.length arcs in
    while excess.(v) > eps && height.(v) <= 2 * n do
      if current.(v) >= m then relabel v
      else begin
        let a = arcs.(current.(v)) in
        let u = Net.dst net a in
        let r = Net.residual net a in
        if r > eps && height.(v) = height.(u) + 1 then begin
          let f = Float.min excess.(v) r in
          Net.augment net a f;
          excess.(v) <- excess.(v) -. f;
          let was_inactive = excess.(u) <= eps in
          excess.(u) <- excess.(u) +. f;
          if was_inactive then activate u
        end
        else current.(v) <- current.(v) + 1
      end
    done
  in
  let rec drain () =
    if !highest >= 0 then begin
      match buckets.(!highest) with
      | [] ->
          if !highest = 0 then ()
          else begin
            decr highest;
            drain ()
          end
      | v :: rest ->
          buckets.(!highest) <- rest;
          (* The node may have been relabelled since activation. *)
          if v <> source && v <> sink && excess.(v) > eps then begin
            if height.(v) <> !highest then activate v
            else begin
              discharge v;
              activate v
            end
          end;
          drain ()
    end
  in
  drain ();
  excess.(sink)
