(** Push–relabel (Goldberg–Tarjan) maximum flow with the
    highest-label selection rule and the gap heuristic, O(V²·√E).

    The third independent static max-flow implementation in this
    repository.  On the long, narrow time-expanded networks produced
    by {!Time_expand}, Dinic usually wins; push–relabel is included
    both as a cross-validation oracle and because it is the stronger
    algorithm on dense residual graphs (the classic trade-off the
    max-flow literature documents — see the survey the paper cites
    [Goldberg & Tarjan, CACM 2014]). *)

val max_flow : Net.t -> source:int -> sink:int -> float
(** Computes the maximum [source]→[sink] flow, mutating the network's
    residual capacities.  Returns the flow value.
    @raise Invalid_argument if [source = sink]. *)
