let eps = Tin_util.Fcmp.(default_policy.path_eps)

let max_flow net ~source ~sink =
  if source = sink then invalid_arg "Dinic.max_flow: source = sink";
  let n = Net.n_nodes net in
  let level = Array.make n (-1) in
  let iter = Array.make n 0 in
  let queue = Queue.create () in
  let bfs () =
    Array.fill level 0 n (-1);
    Queue.clear queue;
    level.(source) <- 0;
    Queue.add source queue;
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      Array.iter
        (fun a ->
          let u = Net.dst net a in
          if level.(u) < 0 && Net.residual net a > eps then begin
            level.(u) <- level.(v) + 1;
            Queue.add u queue
          end)
        (Net.adj net v)
    done;
    level.(sink) >= 0
  in
  (* DFS for a blocking flow; [iter] remembers the next arc to try per
     node so each arc is examined O(1) times per phase. *)
  let rec dfs v limit =
    if v = sink then limit
    else begin
      let arcs = Net.adj net v in
      let pushed = ref 0.0 in
      let continue = ref true in
      while !continue && iter.(v) < Array.length arcs do
        let a = arcs.(iter.(v)) in
        let u = Net.dst net a in
        if level.(u) = level.(v) + 1 && Net.residual net a > eps then begin
          let f = dfs u (Float.min limit (Net.residual net a)) in
          if f > eps then begin
            Net.augment net a f;
            pushed := f;
            continue := false
          end
          else iter.(v) <- iter.(v) + 1
        end
        else iter.(v) <- iter.(v) + 1
      done;
      !pushed
    end
  in
  let total = ref 0.0 in
  while bfs () do
    Array.fill iter 0 n 0;
    let continue = ref true in
    while !continue do
      let f = dfs source infinity in
      if f > eps then total := !total +. f else continue := false
    done
  done;
  !total
