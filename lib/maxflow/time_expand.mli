(** Time-expanded static network (Akrida et al., CIAC 2017).

    Section 4.2.1 of the paper shows its maximum-flow problem is
    equivalent to maximum flow in temporal networks with ephemeral
    edges, which in turn reduces to *static* maximum flow on a
    time-expanded graph.  This module performs that reduction:

    - one node per (vertex, event time) pair — an event time of a
      vertex is any timestamp at which it sends or receives;
    - infinite-capacity holdover arcs between consecutive event nodes
      of the same vertex (buffering);
    - for each interaction [(t, q)] on edge [(v, u)], an arc of
      capacity [q] leaving the node of [v] that holds the quantity
      available {e strictly before} [t] and entering the node of [u]
      that is available strictly after [t] — the same strict-time
      semantics as the LP's constraint (2);
    - interactions leaving the designated source draw from a master
      source node [S] (infinite buffer), and interactions entering the
      designated sink deposit into a master sink node [T].

    The maximum [S]→[T] flow equals the paper's maximum flow.  The
    node count is O(#interactions), so solving with {!Dinic} realises
    the PTIME bound quoted in the paper.

    Infinite interaction quantities (synthetic source/sink edges) are
    replaced by a finite big-M (the sum of all finite quantities), which
    is exact whenever some finite edge separates source from sink —
    always true for the synthetic-endpoint construction of Section 4. *)

type t = private {
  net : Net.t;
  source_node : int;
  sink_node : int;
  n_event_nodes : int;
  interaction_arcs : (Net.arc * (Graph.vertex * Graph.vertex * Interaction.t)) list;
      (** Which network arc realises which interaction (dead
          interactions have no arc).  Holdover arcs are absent: they
          only model buffering.  Used by flow decomposition. *)
}

val build :
  ?buffer_capacity:(Graph.vertex -> float) ->
  Graph.t ->
  source:Graph.vertex ->
  sink:Graph.vertex ->
  t
(** Builds the time-expanded network.  [buffer_capacity] bounds how
    much quantity each vertex may hold between consecutive events —
    the paper assumes unbounded buffers ("we do not set a bound on how
    much a node can buffer"), which is the default ([fun _ ->
    infinity]); a finite capacity simply caps the corresponding
    holdover arcs, modelling routers or accounts with storage limits.
    The source and sink are never capped.
    @raise Invalid_argument if [source = sink], either vertex is
    absent from a non-empty graph, or a capacity is negative/NaN. *)

val max_flow :
  ?algo:[ `Dinic | `Edmonds_karp | `Push_relabel ] ->
  ?buffer_capacity:(Graph.vertex -> float) ->
  Graph.t ->
  source:Graph.vertex ->
  sink:Graph.vertex ->
  float
(** Builds and solves in one go (default [`Dinic]). *)

type solution = {
  value : float;
  interaction_flows : ((Graph.vertex * Graph.vertex * Interaction.t) * float) list;
      (** Flow routed over each interaction's arc, read back from the
          solved residual network.  Dead interactions (never reachable
          — no arc in the expansion) are absent; they carry zero. *)
}

val max_flow_detailed :
  ?algo:[ `Dinic | `Edmonds_karp | `Push_relabel ] ->
  ?buffer_capacity:(Graph.vertex -> float) ->
  Graph.t ->
  source:Graph.vertex ->
  sink:Graph.vertex ->
  solution
(** Like {!max_flow}, but also extracts the per-interaction flows from
    the residual network — the independently-computed solution vector
    the differential verifier audits against the LP's. *)

(** {1 Flat substrate}

    Expansion straight from a {!Compact} network.  Both builders share
    one construction pass driven by an edge-ordered interaction
    iterator, so node numbering and arc creation order — and therefore
    the augmenting-path results — are identical across
    representations. *)

val build_compact :
  ?buffer_capacity:(Graph.vertex -> float) ->
  Compact.t ->
  source:Graph.vertex ->
  sink:Graph.vertex ->
  t
(** [source]/[sink] and the [buffer_capacity] argument are raw labels.
    @raise Invalid_argument as {!build}. *)

val max_flow_compact :
  ?algo:[ `Dinic | `Edmonds_karp | `Push_relabel ] ->
  ?buffer_capacity:(Graph.vertex -> float) ->
  Compact.t ->
  source:Graph.vertex ->
  sink:Graph.vertex ->
  float
(** Builds from the flat substrate and solves (default [`Dinic]). *)
