(** Deterministic synthetic interaction-network generator.

    Produces networks with the shape described in {!Spec}: Zipf
    endpoint popularity, bursty multi-interaction edges, a tunable
    fraction of reciprocal edges, planted 2-/3-hop cycles with
    time-increasing interactions (so that cyclic flow is realisable,
    not just structural), and log-normal quantities. *)

val generate : seed:int -> Spec.t -> Static.t
(** Same seed, same spec ⇒ identical network. *)

type stats = {
  n_vertices : int;
  n_edges : int;
  n_interactions : int;
  avg_qty : float;  (** Mean interaction quantity — Table 4's "avg. flow". *)
}

val stats : Static.t -> stats
