type t = {
  name : string;
  n_vertices : int;
  n_base_edges : int;
  zipf_exponent : float;
  reciprocity : float;
  extra_interactions_mean : float;
  qty_mu : float;
  qty_sigma : float;
  horizon : float;
  n_cycle_seeds : int;
  unit : string;
}

(* Scaled-down stand-ins for the paper's Table 4.  The
   interactions-per-edge and edges-per-vertex ratios follow the real
   datasets; absolute sizes are ~100x smaller so the whole suite runs
   on one machine. *)

let bitcoin =
  {
    name = "Bitcoin";
    n_vertices = 60_000;
    n_base_edges = 110_000;
    zipf_exponent = 1.1;
    reciprocity = 0.15;
    extra_interactions_mean = 0.6;
    qty_mu = 0.8;
    qty_sigma = 1.6;
    horizon = 1_000_000.0;
    n_cycle_seeds = 700;
    unit = "B";
  }

let ctu13 =
  {
    name = "CTU-13";
    n_vertices = 9_000;
    n_base_edges = 10_000;
    zipf_exponent = 1.3;
    reciprocity = 0.30;
    extra_interactions_mean = 3.0;
    qty_mu = 6.5;
    qty_sigma = 2.0;
    horizon = 1_000_000.0;
    n_cycle_seeds = 180;
    unit = "B";
  }

let prosper =
  {
    name = "Prosper Loans";
    n_vertices = 2_500;
    n_base_edges = 40_000;
    zipf_exponent = 0.85;
    reciprocity = 0.05;
    extra_interactions_mean = 0.02;
    qty_mu = 3.6;
    qty_sigma = 1.0;
    horizon = 1_000_000.0;
    n_cycle_seeds = 80;
    unit = "$";
  }

let all = [ bitcoin; ctu13; prosper ]

let scaled ?(factor = 1.0) t =
  let s x = max 1 (int_of_float (float_of_int x *. factor)) in
  {
    t with
    n_vertices = s t.n_vertices;
    n_base_edges = s t.n_base_edges;
    n_cycle_seeds = s t.n_cycle_seeds;
  }
