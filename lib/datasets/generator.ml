module Prng = Tin_util.Prng

let interaction_batch rng spec ~n =
  List.init n (fun _ ->
      Interaction.make
        ~time:(Prng.float rng spec.Spec.horizon)
        ~qty:(Prng.log_normal rng ~mu:spec.Spec.qty_mu ~sigma:spec.Spec.qty_sigma))

let edge_interaction_count rng spec =
  1 + int_of_float (Prng.exponential rng ~mean:spec.Spec.extra_interactions_mean)

(* Planted cycles carry time-increasing interactions so quantity can
   actually circulate back to the seed — a purely random cycle would
   almost never be flow-positive, and Section 6.3's experiments would
   be vacuous. *)
let plant_cycle rng spec ~seed_vertex ~edges =
  let n = spec.Spec.n_vertices in
  let len = if Prng.bool rng then 2 else 3 in
  let distinct_from excl =
    let rec draw () =
      let v = Prng.int rng n in
      if List.mem v excl then draw () else v
    in
    draw ()
  in
  let path =
    if len = 2 then [ seed_vertex; distinct_from [ seed_vertex ]; seed_vertex ]
    else begin
      let b = distinct_from [ seed_vertex ] in
      let c = distinct_from [ seed_vertex; b ] in
      [ seed_vertex; b; c; seed_vertex ]
    end
  in
  let t0 = Prng.float rng (spec.Spec.horizon *. 0.8) in
  let step = spec.Spec.horizon *. 0.05 in
  let qty () = Prng.log_normal rng ~mu:spec.Spec.qty_mu ~sigma:spec.Spec.qty_sigma in
  let rec wire t = function
    | a :: (b :: _ as rest) ->
        let i = Interaction.make ~time:t ~qty:(qty ()) in
        edges := (a, b, [ i ]) :: !edges;
        wire (t +. (step *. (0.5 +. Prng.uniform rng))) rest
    | _ -> ()
  in
  wire t0 path

let generate ~seed spec =
  let rng = Prng.create ~seed in
  let n = spec.Spec.n_vertices in
  let edges = ref [] in
  (* Base edges with Zipf endpoints; vertex popularity is randomised by
     hashing the Zipf rank through a fixed permutation seed so hubs are
     not always vertices 0..k. *)
  let perm = Array.init n Fun.id in
  Prng.shuffle rng perm;
  let draw_vertex () = perm.(Prng.zipf rng ~n ~s:spec.Spec.zipf_exponent) in
  for _ = 1 to spec.Spec.n_base_edges do
    let src = draw_vertex () in
    let dst = ref (draw_vertex ()) in
    while !dst = src do
      dst := draw_vertex ()
    done;
    let dst = !dst in
    let is = interaction_batch rng spec ~n:(edge_interaction_count rng spec) in
    edges := (src, dst, is) :: !edges;
    if Prng.uniform rng < spec.Spec.reciprocity then begin
      let back = interaction_batch rng spec ~n:(edge_interaction_count rng spec) in
      edges := (dst, src, back) :: !edges
    end
  done;
  (* Planted cycles around dedicated seed vertices. *)
  (* Most seeds carry a single short cycle (their subgraph is then a
     chain — greedy-soluble, the paper's dominant Class A); a minority
     get several overlapping cycles, which is what produces the harder
     Class B/C subgraphs. *)
  for _ = 1 to spec.Spec.n_cycle_seeds do
    let seed_vertex = Prng.int rng n in
    let cycles = if Prng.uniform rng < 0.3 then 2 + Prng.int rng 3 else 1 in
    for _ = 1 to cycles do
      plant_cycle rng spec ~seed_vertex ~edges
    done
  done;
  (* Make sure every vertex id exists even if it drew no edge, by
     adding one touch edge per orphan: keeps vertex counts faithful to
     the spec.  Orphans get a single cheap outgoing interaction to a
     hub. *)
  let touched = Array.make n false in
  List.iter
    (fun (s, d, _) ->
      touched.(s) <- true;
      touched.(d) <- true)
    !edges;
  Array.iteri
    (fun v seen ->
      if not seen then begin
        let dst = ref (draw_vertex ()) in
        while !dst = v do
          dst := draw_vertex ()
        done;
        edges := (v, !dst, interaction_batch rng spec ~n:1) :: !edges
      end)
    touched;
  Static.of_list !edges

type stats = { n_vertices : int; n_edges : int; n_interactions : int; avg_qty : float }

let stats net =
  let total = ref 0.0 in
  for e = 0 to Static.n_edges net - 1 do
    total := !total +. Static.edge_total_qty net e
  done;
  let ni = Static.n_interactions net in
  {
    n_vertices = Static.n_vertices net;
    n_edges = Static.n_edges net;
    n_interactions = ni;
    avg_qty = (if ni = 0 then 0.0 else !total /. float_of_int ni);
  }
