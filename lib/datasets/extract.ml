type problem = {
  seed : int;
  graph : Graph.t;
  source : Graph.vertex;
  sink : Graph.vertex;
  n_interactions : int;
}

module Endpoints = Tin_core.Endpoints

let cycle_edges net ~seed =
  (* Edge ids of every 2-hop (seed→a→seed) and 3-hop (seed→a→b→seed)
     cycle through the seed. *)
  let acc = ref [] in
  Static.iter_succs net seed (fun a e_sa ->
      if a <> seed then begin
        (match Static.find_edge net ~src:a ~dst:seed with
        | Some e_as -> acc := e_sa :: e_as :: !acc
        | None -> ());
        Static.iter_succs net a (fun b e_ab ->
            if b <> seed && b <> a then
              match Static.find_edge net ~src:b ~dst:seed with
              | Some e_bs -> acc := e_sa :: e_ab :: e_bs :: !acc
              | None -> ())
      end);
  !acc

let subgraph_of_seed net ~seed ~max_interactions =
  match cycle_edges net ~seed with
  | [] -> None
  | eids ->
      (* Count interactions on the distinct edges first: hub seeds can
         pull in enormous subgraphs that would only be discarded, so
         bail out before materialising them. *)
      let seen = Hashtbl.create 64 in
      let count = ref 0 in
      List.iter
        (fun e ->
          if not (Hashtbl.mem seen e) then begin
            Hashtbl.add seen e ();
            count := !count + Array.length (Static.interactions net e)
          end)
        eids;
      if !count > max_interactions then None
      else begin
        let merged = Static.edges_to_graph net eids in
        let seed_label = Static.label net seed in
        let ep = Endpoints.split merged ~vertex:seed_label in
        (* Interior back edges (e.g. both a→b and b→a were on cycles)
           would make the DAG passes inapplicable: drop them. *)
        let dag = Topo.dagify ep.Endpoints.graph ~root:ep.Endpoints.source in
        Some
          {
            seed = seed_label;
            graph = dag;
            source = ep.Endpoints.source;
            sink = ep.Endpoints.sink;
            n_interactions = Graph.n_interactions dag;
          }
      end

let extract ?(max_interactions = 2000) ?(max_subgraphs = max_int) net =
  let out = ref [] and count = ref 0 in
  let n = Static.n_vertices net in
  let v = ref 0 in
  while !count < max_subgraphs && !v < n do
    (match subgraph_of_seed net ~seed:!v ~max_interactions with
    | Some p ->
        out := p :: !out;
        incr count
    | None -> ());
    incr v
  done;
  List.rev !out

type summary = {
  n_subgraphs : int;
  avg_vertices : float;
  avg_edges : float;
  avg_interactions : float;
}

let summarize problems =
  let n = List.length problems in
  if n = 0 then { n_subgraphs = 0; avg_vertices = 0.0; avg_edges = 0.0; avg_interactions = 0.0 }
  else begin
    let fv = float_of_int in
    let sum f = List.fold_left (fun acc p -> acc +. f p) 0.0 problems in
    {
      n_subgraphs = n;
      avg_vertices = sum (fun p -> fv (Graph.n_vertices p.graph)) /. fv n;
      avg_edges = sum (fun p -> fv (Graph.n_edges p.graph)) /. fv n;
      avg_interactions = sum (fun p -> fv p.n_interactions) /. fv n;
    }
  end
