(** Subgraph extraction for the flow-computation experiments
    (Section 6.2, Figure 10).

    For every seed vertex that lies on at least one 2- or 3-hop cycle,
    the edges of all such cycles through the seed are merged into one
    subgraph; the seed is split into a source half and a sink half
    (the paper's [s143]/[t143]), and any cycle among the interior
    vertices is broken (DFS back-edge removal) so the maximum-flow
    machinery receives a DAG.  Subgraphs whose interaction count
    exceeds a cap are discarded, exactly as the paper discards
    subgraphs above 10K interactions. *)

type problem = {
  seed : int;  (** Original label of the seed vertex. *)
  graph : Graph.t;
  source : Graph.vertex;
  sink : Graph.vertex;
  n_interactions : int;
}

val subgraph_of_seed : Static.t -> seed:Static.vertex -> max_interactions:int -> problem option
(** [None] when the seed lies on no short cycle or the subgraph is too
    large. *)

val extract :
  ?max_interactions:int ->
  ?max_subgraphs:int ->
  Static.t ->
  problem list
(** All seed subgraphs of the network, in increasing seed order
    (deterministic).  Defaults: [max_interactions = 2000] (scaled-down
    counterpart of the paper's 10K cap), [max_subgraphs = max_int]. *)

type summary = {
  n_subgraphs : int;
  avg_vertices : float;
  avg_edges : float;
  avg_interactions : float;
}
(** The per-dataset row of the paper's Table 5. *)

val summarize : problem list -> summary
