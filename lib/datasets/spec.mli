(** Shapes of the synthetic stand-ins for the paper's three real
    datasets (Table 4).

    The real inputs — the full Bitcoin transaction graph, CTU-13
    botnet captures and the Prosper Loans dump — are not
    redistributable, so the generators reproduce the characteristics
    that the paper's experiments are actually sensitive to:

    - heavy-tailed endpoint popularity (hub accounts / servers);
    - bursty edges: the interactions-per-edge ratio of each dataset
      (Bitcoin ≈ 1.6, CTU-13 ≈ 4.0, Prosper ≈ 1.0);
    - reciprocity and short cycles, which drive both the subgraph
      extraction of Section 6.2 and the cyclic patterns of Section 6.3;
    - log-normal transferred quantities (amounts / bytes / loans).

    Scales are reduced so that the full experiment suite runs on one
    machine; every generator is deterministic given the seed. *)

type t = {
  name : string;
  n_vertices : int;
  n_base_edges : int;  (** Edges sampled before reciprocity/cycles. *)
  zipf_exponent : float;  (** Endpoint popularity skew. *)
  reciprocity : float;  (** P(also create the reverse edge). *)
  extra_interactions_mean : float;
      (** Mean number of interactions per edge beyond the first
          (geometric-ish via exponential). *)
  qty_mu : float;  (** Log-normal location of quantities. *)
  qty_sigma : float;  (** Log-normal scale of quantities. *)
  horizon : float;  (** Timestamps are uniform in [0, horizon]. *)
  n_cycle_seeds : int;
      (** Number of vertices around which 2- and 3-hop cycles are
          planted, so that cyclic-pattern search has material to find
          (the real networks have them organically). *)
  unit : string;  (** Display unit for flows (B, KB, $...). *)
}

val bitcoin : t
(** Bitcoin-shaped network: many vertices, strong skew, bursty hub
    edges, B amounts. *)

val ctu13 : t
(** Botnet-traffic-shaped network: few very hot servers, very bursty
    edges, byte counts. *)

val prosper : t
(** Peer-to-peer-loan-shaped network: small, dense-ish, one
    interaction per edge, dollar amounts. *)

val all : t list

val scaled : ?factor:float -> t -> t
(** [scaled ~factor spec] multiplies the vertex/edge/seed counts by
    [factor] (for quick test runs vs. full benchmark runs). *)
