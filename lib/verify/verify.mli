(** Differential correctness oracle for the flow pipeline.

    Given any TIN and a source/sink pair, {!check} runs every
    independent way this codebase can compute the flow — the greedy
    scan, each LP solver variant, each static max-flow algorithm over
    the time-expanded reduction, and the accelerated pipeline with its
    preprocessing stages toggled on and off — and tests the full
    invariant lattice relating them:

    - all maximum-flow oracles agree pairwise within the shared
      tolerance policy ({!Tin_util.Fcmp.policy}[.flow_eps]);
    - the greedy flow is a lower bound on every maximum-flow oracle;
    - a graph that passes the solubility test has greedy = max;
    - preprocessing (Algorithm 1) and chain simplification
      (Algorithm 2) are value-preserving on DAGs;
    - every returned solution vector is a feasible temporal flow:
      per-interaction capacity residuals in [0, q], per-vertex temporal
      conservation (cumulative out(≤ τ) ≤ cumulative in(< τ)), and the
      quantity deposited at the sink equals the reported value;
    - the flow decomposition ({!Tin_core.Decompose}) reassembles the
      max-flow value from its peeled paths up to eps-sized crumbs per
      path, every path is a temporal source→sink route, and no
      individual interaction carries more than its quantity;
    - the provenance engine ({!Tin_core.Provenance}) in source-rooted
      mode matches the greedy scan bit for bit on per-vertex totals
      (all policies), conserves mass per vertex, attributes only
      origins the source sent — validated against the fixed scan-order
      interaction numbering shared with {!Tin_core.Decompose} — never
      exceeds an origin interaction's quantity, and is bit-identical
      across the [Graph]/[Compact] representations;
    - an oracle raising an exception is itself a discrepancy.

    {!fuzz} drives {!check} over randomized instances ({!Gen}), and
    {!shrink} minimizes any failing instance before it is reported, so
    every discrepancy comes with a small reproducing TIN (dumped as a
    CSV that [tinflow] can reload). *)

type oracle = {
  name : string;
  run : Graph.t -> source:Graph.vertex -> sink:Graph.vertex -> float;
}
(** An extra flow computation to check against the built-in ones
    (expected to compute the {e maximum} flow). *)

val perturbed : ?delta:float -> unit -> oracle
(** A deliberately wrong oracle — time-expanded Dinic plus [delta]
    (default [0.5]).  Used to demonstrate that the harness catches and
    shrinks an injected solver bug. *)

type discrepancy = { check : string; detail : string }
(** One violated invariant: a stable check name (e.g.
    ["max-flow-disagreement"], ["greedy-exceeds-max"],
    ["lp:sparse:conservation"]) and a human-readable detail line. *)

type outcome = {
  values : (string * float) list;
      (** Flow value per oracle that completed, in run order (the
          greedy value is listed last). *)
  discrepancies : discrepancy list;  (** Empty iff all invariants held. *)
  obs : (string * (string * int) list) list;
      (** Per-oracle observability counter deltas (e.g. how many LP
          pivots a solver oracle spent on this instance), snapshotted
          around each oracle run.  Populated only while
          {!Tin_obs.Obs} tracking is enabled; counterexample CSV dumps
          include these as [# obs] comment lines. *)
}

val pp_discrepancy : Format.formatter -> discrepancy -> unit

val oracle_names : string list
(** Names of the built-in oracles, for reporting. *)

val check :
  ?policy:Tin_util.Fcmp.policy ->
  ?extra:oracle list ->
  Graph.t ->
  source:Graph.vertex ->
  sink:Graph.vertex ->
  outcome
(** Runs every oracle and the full invariant lattice on one instance.
    [policy] supplies the comparison tolerances (default
    {!Tin_util.Fcmp.default_policy}): values are compared at
    [flow_eps], and [pivot_eps] is threaded to the LP solvers.
    [extra] oracles participate in the pairwise comparisons. *)

val fails :
  ?policy:Tin_util.Fcmp.policy ->
  ?extra:oracle list ->
  Graph.t ->
  source:Graph.vertex ->
  sink:Graph.vertex ->
  bool
(** [check] has at least one discrepancy. *)

val shrink :
  ?policy:Tin_util.Fcmp.policy ->
  ?extra:oracle list ->
  Graph.t ->
  source:Graph.vertex ->
  sink:Graph.vertex ->
  Graph.t
(** Greedy delta-debugging of a failing instance: repeatedly removes a
    vertex, an edge, or a single interaction while the instance keeps
    failing, to a local fixpoint.  Source and sink are never removed.
    Returns the input unchanged if it does not fail. *)

type failure = {
  case_index : int;  (** 1-based index within the fuzz run. *)
  case : Gen.case;  (** The original generated instance. *)
  shrunk : Graph.t;  (** Minimized reproducing TIN. *)
  outcome : outcome;  (** Outcome on the {e shrunk} instance. *)
  csv : string option;  (** Dump path, when [dump_dir] was given. *)
}

type fuzz_report = { cases_run : int; failures : failure list }

val dump_csv :
  string -> Graph.t -> source:Graph.vertex -> sink:Graph.vertex -> outcome -> unit
(** Writes the instance as a [tinflow]-loadable CSV; source, sink and
    the discrepancy list ride along as [#] comment lines. *)

val fuzz :
  ?policy:Tin_util.Fcmp.policy ->
  ?extra:oracle list ->
  ?dump_dir:string ->
  ?progress:(int -> int -> unit) ->
  seed:int ->
  cases:int ->
  unit ->
  fuzz_report
(** Generates [cases] instances from [seed] ({!Gen.case}), checks each,
    and shrinks every failure.  With [dump_dir], each minimized
    counterexample is written there as
    [counterexample-seed<seed>-case<i>.csv].  [progress] is called
    after every case with (cases done, failures so far). *)
