module Prng = Tin_util.Prng

type case = {
  graph : Graph.t;
  source : Graph.vertex;
  sink : Graph.vertex;
  family : string;
  mutations : string list;
}

(* --- base generators ------------------------------------------------

   Same shapes as the property-test generators (test/helpers/gen.ml):
   integral times in a small range so timestamp ties happen naturally,
   integral quantities so flow equalities are exact in the unmutated
   case.  Kept separate from the test helpers so the [tinflow verify]
   fuzzer does not drag alcotest/qcheck into the binary. *)

let interactions ?(max_inter = 3) ?(max_time = 20) ?(max_qty = 10) rng =
  List.init
    (1 + Prng.int rng max_inter)
    (fun _ ->
      Interaction.make
        ~time:(float_of_int (Prng.int rng max_time))
        ~qty:(float_of_int (Prng.int rng max_qty)))

let random_dag ?(max_v = 8) ?(max_edges = 14) rng =
  let n = 2 + Prng.int rng (max_v - 1) in
  let n_edges = 1 + Prng.int rng max_edges in
  let g = ref (Graph.add_vertex (Graph.add_vertex Graph.empty 0) (n - 1)) in
  for _ = 1 to n_edges do
    let i = Prng.int rng (n - 1) in
    let j = i + 1 + Prng.int rng (n - 1 - i) in
    g := Graph.add_edge !g ~src:i ~dst:j (interactions rng)
  done;
  (!g, 0, n - 1)

let random_digraph ?(max_v = 7) ?(max_edges = 12) rng =
  let n = 2 + Prng.int rng (max_v - 1) in
  let n_edges = 1 + Prng.int rng max_edges in
  let g = ref (Graph.add_vertex (Graph.add_vertex Graph.empty 0) (n - 1)) in
  for _ = 1 to n_edges do
    let i = Prng.int rng n in
    let j = Prng.int rng n in
    if i <> j then g := Graph.add_edge !g ~src:i ~dst:j (interactions rng)
  done;
  (!g, 0, n - 1)

let random_chain ?(max_len = 6) rng =
  let k = 1 + Prng.int rng max_len in
  let g = ref Graph.empty in
  for i = 0 to k - 1 do
    g := Graph.add_edge !g ~src:i ~dst:(i + 1) (interactions ~max_time:30 rng)
  done;
  (!g, 0, k)

let random_lemma2 ?(max_v = 8) rng =
  let n = 3 + Prng.int rng (max_v - 2) in
  let sink = n - 1 in
  let g = ref (Graph.add_vertex (Graph.add_vertex Graph.empty 0) sink) in
  for i = 1 to n - 2 do
    let j = i + 1 + Prng.int rng (n - 1 - i) in
    g := Graph.add_edge !g ~src:i ~dst:j (interactions ~max_time:25 rng)
  done;
  let n_src = 1 + Prng.int rng (n - 1) in
  for _ = 1 to n_src do
    let j = 1 + Prng.int rng (n - 1) in
    g := Graph.add_edge !g ~src:0 ~dst:j (interactions ~max_time:25 rng)
  done;
  (!g, 0, sink)

(* --- mutation operators ---------------------------------------------

   Each rewrites interaction payloads only (never the edge structure),
   so DAG-ness and endpoint reachability are preserved and the mutated
   instance stays inside every oracle's domain.  They target the edge
   cases the greedy scan and the LP tie-breaking must agree on. *)

let map_interactions g f =
  let base = List.fold_left Graph.add_vertex Graph.empty (Graph.vertices g) in
  Graph.fold_edges
    (fun src dst is acc -> Graph.add_edge acc ~src ~dst (List.map (f src dst) is))
    g base

(* Collapse a random fraction of timestamps onto a small set of pivot
   times: simultaneous interactions must be handled by the documented
   deterministic order, and an outgoing transfer at time t must not see
   arrivals at t. *)
let duplicate_timestamps rng g =
  let pivots = Array.init 3 (fun _ -> float_of_int (Prng.int rng 20)) in
  map_interactions g (fun _ _ i ->
      if Prng.int rng 3 = 0 then
        Interaction.make ~time:(Prng.choose rng pivots) ~qty:(Interaction.qty i)
      else i)

(* Zero out a random fraction of quantities: zero-quantity interactions
   must not create buffer entries or LP degeneracy discrepancies. *)
let zero_quantities rng g =
  map_interactions g (fun _ _ i ->
      if Prng.int rng 4 = 0 then Interaction.make ~time:(Interaction.time i) ~qty:0.0 else i)

(* Scale a random fraction of quantities to subnormal magnitude:
   probes absolute-vs-relative tolerance confusion in the solvers. *)
let denormal_quantities rng g =
  map_interactions g (fun _ _ i ->
      if Prng.int rng 4 = 0 then
        Interaction.make ~time:(Interaction.time i) ~qty:(Interaction.qty i *. 1e-310)
      else i)

(* Scale a random fraction of quantities up by 1e9: probes pivot
   tolerances and big-M handling at the other end of the scale. *)
let huge_quantities rng g =
  map_interactions g (fun _ _ i ->
      if Prng.int rng 4 = 0 then
        Interaction.make ~time:(Interaction.time i) ~qty:(Interaction.qty i *. 1e9)
      else i)

let mutations =
  [
    ("dup-times", duplicate_timestamps);
    ("zero-qty", zero_quantities);
    ("denormal-qty", denormal_quantities);
    ("huge-qty", huge_quantities);
  ]

(* Self-loops cannot be represented (Graph rejects them at
   construction, the CSV reader skips them), so the corresponding
   "mutation" asserts the rejection contract instead of mutating. *)
let self_loop_rejected g =
  match Graph.vertices g with
  | [] -> true
  | v :: _ -> (
      match Graph.add_interaction g ~src:v ~dst:v (Interaction.make ~time:1.0 ~qty:1.0) with
      | _ -> false
      | exception Invalid_argument _ -> true)

let families : (string * (Prng.t -> Graph.t * Graph.vertex * Graph.vertex)) list =
  [
    ("dag", random_dag ?max_v:None ?max_edges:None);
    ("digraph", random_digraph ?max_v:None ?max_edges:None);
    ("chain", random_chain ?max_len:None);
    ("lemma2", random_lemma2 ?max_v:None);
  ]

let case rng =
  let family, gen = Prng.choose rng (Array.of_list families) in
  let graph, source, sink = gen rng in
  let n_muts = Prng.int rng 3 in
  let graph, mutations =
    let rec apply g acc k =
      if k = 0 then (g, List.rev acc)
      else
        let name, mut = Prng.choose rng (Array.of_list mutations) in
        apply (mut rng g) (name :: acc) (k - 1)
    in
    apply graph [] n_muts
  in
  { graph; source; sink; family; mutations }
