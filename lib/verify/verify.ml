module Fcmp = Tin_util.Fcmp
module Prng = Tin_util.Prng
module Obs = Tin_obs.Obs
module TE = Tin_maxflow.Time_expand
module Greedy = Tin_core.Greedy
module Decompose = Tin_core.Decompose
module Provenance = Tin_core.Provenance
module Lp_flow = Tin_core.Lp_flow
module Pipeline = Tin_core.Pipeline
module Preprocess = Tin_core.Preprocess
module Simplify = Tin_core.Simplify
module Solubility = Tin_core.Solubility

type oracle = {
  name : string;
  run : Graph.t -> source:Graph.vertex -> sink:Graph.vertex -> float;
}

let perturbed ?(delta = 0.5) () =
  {
    name = Printf.sprintf "injected(%+g)" delta;
    run = (fun g ~source ~sink -> TE.max_flow g ~source ~sink +. delta);
  }

type discrepancy = { check : string; detail : string }

type outcome = {
  values : (string * float) list;
  discrepancies : discrepancy list;
  obs : (string * (string * int) list) list;
}

(* Per-oracle observability counter deltas: the global counters are
   snapshotted around each oracle run; only counters the oracle
   actually moved are attached.  Empty unless Obs tracking is on. *)
let counter_deltas before after =
  List.filter_map
    (fun (name, v) ->
      let b = match List.assoc_opt name before with Some b -> b | None -> 0 in
      if v > b then Some (name, v - b) else None)
    after

let pp_discrepancy ppf d = Format.fprintf ppf "[%s] %s" d.check d.detail

(* --- residual audit --------------------------------------------------

   One audit for every solution vector, whatever computed it: the
   greedy trace, an optimal LP assignment, or the per-interaction flows
   read back from the time-expanded residual network.  Feasibility of a
   temporal flow (Definition 4 / constraints (1)-(2)) is:

   - capacity: 0 <= amount <= qty for every interaction;
   - temporal conservation: for every vertex v other than source and
     sink and every timestamp tau at which v sends, the cumulative
     quantity sent up to and including tau does not exceed the
     cumulative quantity received strictly before tau;
   - accounting: the quantity arriving at the sink equals the reported
     flow value. *)

type transfer = {
  t_src : Graph.vertex;
  t_dst : Graph.vertex;
  t_time : float;
  t_qty : float;
  t_amount : float;
}

let audit ~eps ~what ~source ~sink ~value transfers add =
  List.iter
    (fun t ->
      if not (Fcmp.approx_ge ~eps t.t_amount 0.0) then
        add (what ^ ":capacity")
          (Printf.sprintf "%d->%d@%g carries %g < 0" t.t_src t.t_dst t.t_time t.t_amount);
      if Float.is_finite t.t_qty && not (Fcmp.approx_le ~eps t.t_amount t.t_qty) then
        add (what ^ ":capacity")
          (Printf.sprintf "%d->%d@%g carries %g > quantity %g" t.t_src t.t_dst t.t_time
             t.t_amount t.t_qty))
    transfers;
  let into_sink =
    List.fold_left (fun acc t -> if t.t_dst = sink then acc +. t.t_amount else acc) 0.0 transfers
  in
  if not (Fcmp.approx_eq ~eps into_sink value) then
    add (what ^ ":sink-total")
      (Printf.sprintf "solution deposits %g at the sink but reports value %g" into_sink value);
  (* Temporal conservation, one time-ordered sweep per vertex: at each
     send time tau, outgoing(<= tau) must fit inside incoming(< tau). *)
  let events : (Graph.vertex, (float * float * bool) list ref) Hashtbl.t = Hashtbl.create 16 in
  let push v e =
    match Hashtbl.find_opt events v with
    | Some l -> l := e :: !l
    | None -> Hashtbl.add events v (ref [ e ])
  in
  List.iter
    (fun t ->
      if t.t_src <> source && t.t_src <> sink then push t.t_src (t.t_time, t.t_amount, false);
      if t.t_dst <> source && t.t_dst <> sink then push t.t_dst (t.t_time, t.t_amount, true))
    transfers;
  Hashtbl.iter
    (fun v evs ->
      let evs = Array.of_list !evs in
      Array.sort (fun (a, _, _) (b, _, _) -> Float.compare a b) evs;
      let n = Array.length evs in
      let in_cum = ref 0.0 and out_cum = ref 0.0 in
      let i = ref 0 in
      while !i < n do
        let tau, _, _ = evs.(!i) in
        let stop = ref !i in
        while
          !stop < n
          &&
          let t, _, _ = evs.(!stop) in
          Float.equal t tau
        do
          incr stop
        done;
        let had_out = ref false in
        for k = !i to !stop - 1 do
          let _, amount, incoming = evs.(k) in
          if not incoming then begin
            out_cum := !out_cum +. amount;
            if amount > 0.0 then had_out := true
          end
        done;
        if !had_out && not (Fcmp.approx_le ~eps !out_cum !in_cum) then
          add (what ^ ":conservation")
            (Printf.sprintf "vertex %d sent %g by time %g but received only %g before it" v
               !out_cum tau !in_cum);
        for k = !i to !stop - 1 do
          let _, amount, incoming = evs.(k) in
          if incoming then in_cum := !in_cum +. amount
        done;
        i := !stop
      done)
    events

(* --- the differential check ----------------------------------------- *)

let lp_solvers : (string * Tin_lp.Problem.solver) list =
  [ ("lp:dense", `Dense); ("lp:bounded", `Bounded); ("lp:sparse", `Sparse) ]

let te_algos : (string * [ `Dinic | `Edmonds_karp | `Push_relabel ]) list =
  [ ("te:dinic", `Dinic); ("te:edmonds-karp", `Edmonds_karp); ("te:push-relabel", `Push_relabel) ]

let oracle_names =
  [ "greedy" ]
  @ List.map fst lp_solvers
  @ List.map fst te_algos
  @ [ "pipeline:pre"; "pipeline:presim"; "lp:c"; "te:c" ]
  @ [ "decomp"; "prov:lrb"; "prov:mrb"; "prov:prop" ]

let check ?(policy = Fcmp.default_policy) ?(extra = []) g ~source ~sink =
  let eps = policy.Fcmp.flow_eps in
  let discrepancies = ref [] in
  let add check detail = discrepancies := { check; detail } :: !discrepancies in
  let values = ref [] in
  let record name v = values := (name, v) :: !values in
  let obs = ref [] in
  let guarded name f =
    let before = if Obs.tracking () then Obs.counters () else [] in
    let attach () =
      if Obs.tracking () then begin
        match counter_deltas before (Obs.counters ()) with
        | [] -> ()
        | d -> obs := (name, d) :: !obs
      end
    in
    match f () with
    | v ->
        attach ();
        Some v
    | exception e ->
        attach ();
        add "oracle-crash" (name ^ " raised " ^ Printexc.to_string e);
        None
  in
  (* Greedy lower bound, audited through its own trace. *)
  let greedy =
    guarded "greedy" (fun () ->
        let value, trace = Greedy.flow_trace g ~source ~sink in
        let transfers =
          List.map
            (fun (tr : Greedy.transfer) ->
              {
                t_src = tr.Greedy.src;
                t_dst = tr.Greedy.dst;
                t_time = tr.Greedy.time;
                t_qty = tr.Greedy.offered;
                t_amount = tr.Greedy.moved;
              })
            trace
        in
        audit ~eps ~what:"greedy" ~source ~sink ~value transfers add;
        value)
  in
  (* Every LP solver, each audited through its solution vector. *)
  List.iter
    (fun (name, solver) ->
      match
        guarded name (fun () ->
            match Lp_flow.solve_detailed ~solver ~eps:policy.Fcmp.pivot_eps g ~source ~sink with
            | Error e ->
                failwith
                  (match e with
                  | `Unbounded -> "unbounded"
                  | `Infeasible -> "infeasible"
                  | `Iteration_limit -> "iteration limit")
            | Ok (value, assigns) ->
                let transfers =
                  List.map
                    (fun (a : Lp_flow.assignment) ->
                      {
                        t_src = a.Lp_flow.src;
                        t_dst = a.Lp_flow.dst;
                        t_time = Interaction.time a.Lp_flow.interaction;
                        t_qty = Interaction.qty a.Lp_flow.interaction;
                        t_amount = a.Lp_flow.amount;
                      })
                    assigns
                in
                audit ~eps ~what:name ~source ~sink ~value transfers add;
                value)
      with
      | Some v -> record name v
      | None -> ())
    lp_solvers;
  (* The three static max-flow algorithms over the time-expanded
     reduction; Dinic additionally audited through its arc flows. *)
  List.iter
    (fun (name, algo) ->
      match
        guarded name (fun () ->
            match algo with
            | `Dinic ->
                let sol = TE.max_flow_detailed ~algo g ~source ~sink in
                let transfers =
                  List.map
                    (fun ((v, u, i), f) ->
                      {
                        t_src = v;
                        t_dst = u;
                        t_time = Interaction.time i;
                        t_qty = Interaction.qty i;
                        t_amount = f;
                      })
                    sol.TE.interaction_flows
                in
                audit ~eps ~what:name ~source ~sink ~value:sol.TE.value transfers add;
                sol.TE.value
            | _ -> TE.max_flow ~algo g ~source ~sink)
      with
      | Some v -> record name v
      | None -> ())
    te_algos;
  (* The accelerated pipeline with the simplification stage toggled on
     and off, plus any caller-injected oracles. *)
  List.iter
    (fun (name, method_) ->
      match guarded name (fun () -> Pipeline.compute method_ g ~source ~sink) with
      | Some v -> record name v
      | None -> ())
    [ ("pipeline:pre", Pipeline.Pre); ("pipeline:presim", Pipeline.Pre_sim) ];
  List.iter
    (fun o ->
      match guarded o.name (fun () -> o.run g ~source ~sink) with
      | Some v -> record o.name v
      | None -> ())
    extra;
  (* Flat-substrate twins, driven off [Compact.of_graph].  The LP and
     time-expansion twins join the pairwise max-flow agreement below;
     on top of the shared tolerance all three are held to bit-for-bit
     equality with their [Graph.t] counterparts — the representation
     migration must not perturb a single ulp. *)
  (match guarded "compact" (fun () -> Compact.of_graph g) with
  | None -> ()
  | Some c ->
      let bit_identical name v ref_name =
        match List.assoc_opt ref_name !values with
        | Some ref_v when not (Float.equal v ref_v) ->
            add "compact-not-bit-identical"
              (Printf.sprintf "%s=%.17g but %s=%.17g" ref_name ref_v name v)
        | _ -> ()
      in
      (match (greedy, guarded "greedy:c" (fun () -> Greedy.flow_compact c ~source ~sink)) with
      | Some gv, Some cv when not (Float.equal cv gv) ->
          add "compact-not-bit-identical"
            (Printf.sprintf "greedy=%.17g but greedy:c=%.17g" gv cv)
      | _ -> ());
      (match
         guarded "lp:c" (fun () ->
             match
               Lp_flow.solve_compact ~solver:`Sparse ~eps:policy.Fcmp.pivot_eps c ~source ~sink
             with
             | Ok v -> v
             | Error `Unbounded -> failwith "unbounded"
             | Error `Infeasible -> failwith "infeasible"
             | Error `Iteration_limit -> failwith "iteration limit")
       with
      | Some v ->
          bit_identical "lp:c" v "lp:sparse";
          record "lp:c" v
      | None -> ());
      match guarded "te:c" (fun () -> TE.max_flow_compact c ~source ~sink) with
      | Some v ->
          bit_identical "te:c" v "te:dinic";
          record "te:c" v
      | None -> ());
  (* Flow decomposition: the peeled path amounts must reassemble the
     max-flow value (allowing eps-sized numerical crumbs per path),
     every path must be a temporal source->sink route, and no
     individual interaction — parallel same-timestamp interactions
     included — may carry more than its own quantity. *)
  (match guarded "decomp" (fun () -> Decompose.max_flow_paths g ~source ~sink) with
  | None -> ()
  | Some (value, paths) ->
      let n_paths = List.length paths in
      let total = List.fold_left (fun acc p -> acc +. p.Decompose.amount) 0.0 paths in
      if not (Fcmp.approx_eq ~eps:(eps *. float_of_int (max 1 n_paths)) value total) then
        add "decomp-not-conserving"
          (Printf.sprintf "%d paths sum to %g but the max flow is %g" n_paths total value);
      List.iter
        (fun p ->
          if not (p.Decompose.amount > 0.0) then
            add "decomp-nonpositive-path"
              (Printf.sprintf "path carries %g" p.Decompose.amount);
          match p.Decompose.legs with
          | [] -> add "decomp-empty-path" "path has no legs"
          | legs ->
              if (List.hd legs).Decompose.src <> source then
                add "decomp-anchor" "path does not start at the source";
              if (List.nth legs (List.length legs - 1)).Decompose.dst <> sink then
                add "decomp-anchor" "path does not end at the sink";
              let rec increasing = function
                | a :: (b :: _ as rest) ->
                    a.Decompose.time < b.Decompose.time && increasing rest
                | _ -> true
              in
              if not (increasing legs) then
                add "decomp-not-temporal" "legs are not strictly time-increasing")
        paths;
      List.iter
        (fun u ->
          if
            Float.is_finite u.Decompose.u_offered
            && not (Fcmp.approx_le ~eps u.Decompose.u_carried u.Decompose.u_offered)
          then
            add "decomp-overdriven"
              (Printf.sprintf "interaction #%d %d->%d@%g carries %g > quantity %g"
                 u.Decompose.u_inter u.Decompose.u_src u.Decompose.u_dst u.Decompose.u_time
                 u.Decompose.u_carried u.Decompose.u_offered))
        (Decompose.per_interaction paths);
      record "decomp" value);
  (* Provenance engine, in source-rooted absorb-at-sink mode: the
     scalar side mirrors the greedy scan exactly, so per-vertex totals
     must equal [Greedy.buffers] bit for bit (and the sink total the
     greedy flow) — policy-invariant, Proportional checked against the
     buffers directly and lrb/mrb against Proportional's totals.  Each
     policy's vectors must be non-negative, conserve mass per vertex,
     name only origins the source sent (validated against the fixed
     scan-order numbering shared with [Decompose.leg.inter]), never
     attribute more mass to an origin than that interaction's
     quantity, and be bit-identical across Graph/Compact twins. *)
  (match greedy with
  | None -> ()
  | Some greedy_v ->
      let inters = Graph.interactions_sorted g in
      let ref_totals = ref None in
      List.iter
        (fun policy ->
          let name = "prov:" ^ Provenance.policy_name policy in
          match
            guarded name (fun () ->
                let r = Provenance.run ~policy ~source ~absorb:sink g in
                let rc =
                  Provenance.run_compact ~policy ~source ~absorb:sink (Compact.of_graph g)
                in
                (r, rc))
          with
          | None -> ()
          | Some (r, rc) ->
              if r <> rc then
                add "prov-not-bit-identical"
                  (name ^ " differs between Graph and Compact representations");
              (match !ref_totals with
              | None -> ref_totals := Some (name, r.Provenance.totals)
              | Some (ref_name, ref_t) ->
                  if
                    not
                      (List.for_all2
                         (fun (v1, t1) (v2, t2) -> v1 = v2 && Float.equal t1 t2)
                         ref_t r.Provenance.totals)
                  then
                    add "prov-policy-total-drift"
                      (Printf.sprintf "%s totals differ from %s (scalars are policy-invariant)"
                         name ref_name));
              if policy = Provenance.Proportional then begin
                (match List.assoc_opt sink r.Provenance.totals with
                | Some t when Float.equal t greedy_v -> ()
                | Some t ->
                    add "prov-sink-not-greedy"
                      (Printf.sprintf "%s sink total %.17g but greedy flow %.17g" name t
                         greedy_v)
                | None -> add "prov-sink-not-greedy" (name ^ " reports no sink total"));
                let buffers = Greedy.buffers g ~source ~sink in
                if
                  not
                    (List.for_all2
                       (fun (v1, t1) (v2, t2) -> v1 = v2 && Float.equal t1 t2)
                       buffers r.Provenance.totals)
                then
                  add "prov-total-mismatch"
                    (name ^ " per-vertex totals differ from Greedy.buffers")
              end;
              List.iter
                (fun (v, vec) ->
                  let sum = List.fold_left (fun acc (_, m) -> acc +. m) 0.0 vec in
                  (match List.assoc_opt v r.Provenance.totals with
                  | Some t when Float.is_finite t && Float.is_finite sum ->
                      if not (Fcmp.approx_eq ~eps t sum) then
                        add "prov-mass-mismatch"
                          (Printf.sprintf "%s vertex %d holds %g but its vector sums to %g"
                             name v t sum)
                  | _ -> ());
                  List.iter
                    (fun (o, m) ->
                      if m < 0.0 then
                        add "prov-negative"
                          (Printf.sprintf "%s vertex %d carries %g from %s" name v m
                             (Provenance.describe_origin o));
                      match o with
                      | Provenance.Inter i ->
                          if i.index < 0 || i.index >= Array.length inters then
                            add "prov-origin-unknown"
                              (Printf.sprintf "%s names interaction #%d of %d" name i.index
                                 (Array.length inters))
                          else begin
                            let s, d, it = inters.(i.index) in
                            if
                              not
                                (s = i.src && d = i.dst
                                && Float.equal (Interaction.time it) i.time
                                && Float.equal (Interaction.qty it) i.qty)
                            then
                              add "prov-origin-identity"
                                (Printf.sprintf "%s origin #%d does not match scan order" name
                                   i.index);
                            if s <> source then
                              add "prov-foreign-origin"
                                (Printf.sprintf
                                   "%s attributes mass to #%d sent by %d, not the source" name
                                   i.index s);
                            if
                              Float.is_finite m
                              && Float.is_finite i.qty
                              && not (Fcmp.approx_le ~eps m i.qty)
                            then
                              add "prov-origin-capacity"
                                (Printf.sprintf "%s vertex %d holds %g from #%d of quantity %g"
                                   name v m i.index i.qty)
                          end
                      | _ -> ())
                    vec)
                r.Provenance.vectors)
        [ Provenance.Proportional; Provenance.Lrb; Provenance.Mrb ]);
  let maxes = List.rev !values in
  (match greedy with Some gv -> record "greedy" gv | None -> ());
  (* Pairwise agreement of all maximum-flow oracles under the shared
     tolerance. *)
  let rec pairwise = function
    | [] -> ()
    | (n1, v1) :: rest ->
        List.iter
          (fun (n2, v2) ->
            if not (Fcmp.approx_eq ~eps v1 v2) then
              add "max-flow-disagreement" (Printf.sprintf "%s=%g vs %s=%g" n1 v1 n2 v2))
          rest;
        pairwise rest
  in
  pairwise maxes;
  (* Greedy is a lower bound on every maximum-flow oracle. *)
  (match greedy with
  | None -> ()
  | Some gv ->
      List.iter
        (fun (name, v) ->
          if not (Fcmp.approx_le ~eps gv v) then
            add "greedy-exceeds-max" (Printf.sprintf "greedy=%g > %s=%g" gv name v))
        maxes);
  (* Solubility test consistent with greedy == max. *)
  (match (greedy, maxes) with
  | Some gv, (name, mv) :: _ ->
      if Solubility.soluble g ~source ~sink && not (Fcmp.approx_eq ~eps gv mv) then
        add "solubility-inconsistent"
          (Printf.sprintf "graph tests soluble but greedy=%g <> %s=%g" gv name mv)
  | _ -> ());
  (* Preprocessing and chain simplification are value-preserving (both
     are DAG-only accelerators). *)
  (match maxes with
  | (_, reference) :: _ when Topo.is_dag g -> (
      match guarded "preprocess" (fun () -> Preprocess.run g ~source ~sink) with
      | None -> ()
      | Some pre ->
          if pre.Preprocess.zero_flow then begin
            if not (Fcmp.is_zero ~eps reference) then
              add "preprocess-not-value-preserving"
                (Printf.sprintf "preprocessing claims zero flow but reference is %g" reference)
          end
          else begin
            (match
               guarded "preprocess-reference" (fun () ->
                   TE.max_flow pre.Preprocess.graph ~source ~sink)
             with
            | Some v when not (Fcmp.approx_eq ~eps v reference) ->
                add "preprocess-not-value-preserving"
                  (Printf.sprintf "max flow %g after preprocessing, %g before" v reference)
            | _ -> ());
            match
              guarded "simplify" (fun () ->
                  let sim = Simplify.run pre.Preprocess.graph ~source ~sink in
                  TE.max_flow sim.Simplify.graph ~source ~sink)
            with
            | Some v when not (Fcmp.approx_eq ~eps v reference) ->
                add "simplify-not-value-preserving"
                  (Printf.sprintf "max flow %g after simplification, %g before" v reference)
            | _ -> ()
          end)
  | _ -> ());
  { values = List.rev !values; discrepancies = List.rev !discrepancies; obs = List.rev !obs }

let fails ?policy ?extra g ~source ~sink =
  (check ?policy ?extra g ~source ~sink).discrepancies <> []

(* --- shrinking -------------------------------------------------------

   Greedy structural minimization: repeatedly take the first
   still-failing reduction among (vertex removal, edge removal, single
   interaction removal).  Every move strictly shrinks the instance, so
   the loop terminates; the step cap is a safety net only.  Source and
   sink are never removed — the oracles require both present. *)

let shrink ?policy ?extra g0 ~source ~sink =
  let still_fails g = fails ?policy ?extra g ~source ~sink in
  let candidates g =
    let vertex_moves =
      List.filter_map
        (fun v -> if v = source || v = sink then None else Some (Graph.remove_vertex g v))
        (Graph.vertices g)
    in
    let edges = Graph.fold_edges (fun s d _ acc -> (s, d) :: acc) g [] in
    let edge_moves = List.map (fun (s, d) -> Graph.remove_edge g ~src:s ~dst:d) edges in
    let inter_moves =
      List.concat_map
        (fun (s, d) ->
          let is = Graph.edge g ~src:s ~dst:d in
          if List.length is < 2 then []
          else
            List.mapi
              (fun k _ -> Graph.set_edge g ~src:s ~dst:d (List.filteri (fun j _ -> j <> k) is))
              is)
        edges
    in
    vertex_moves @ edge_moves @ inter_moves
  in
  let rec go g steps =
    if steps <= 0 then g
    else
      match List.find_opt still_fails (candidates g) with
      | Some g' -> go g' (steps - 1)
      | None -> g
  in
  if still_fails g0 then go g0 500 else g0

(* --- fuzzing driver -------------------------------------------------- *)

type failure = {
  case_index : int;
  case : Gen.case;
  shrunk : Graph.t;
  outcome : outcome;
  csv : string option;
}

type fuzz_report = { cases_run : int; failures : failure list }

let dump_csv path g ~source ~sink outcome =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc "src,dst,time,qty\n";
      Printf.fprintf oc "# minimal counterexample: source=%d sink=%d\n" source sink;
      List.iter
        (fun d -> Printf.fprintf oc "# %s: %s\n" d.check d.detail)
        outcome.discrepancies;
      List.iter
        (fun (oracle, deltas) ->
          Printf.fprintf oc "# obs %s:%s\n" oracle
            (String.concat ""
               (List.map (fun (c, v) -> Printf.sprintf " %s=%d" c v) deltas)))
        outcome.obs;
      Graph.iter_edges
        (fun s d is ->
          List.iter
            (fun i ->
              Printf.fprintf oc "%d,%d,%.17g,%.17g\n" s d (Interaction.time i)
                (Interaction.qty i))
            is)
        g)

let fuzz ?policy ?extra ?dump_dir ?(progress = fun _ _ -> ()) ~seed ~cases () =
  let rng = Prng.create ~seed in
  let failures = ref [] in
  for case_index = 1 to cases do
    let case = Gen.case rng in
    let source = case.Gen.source and sink = case.Gen.sink in
    let outcome = check ?policy ?extra case.Gen.graph ~source ~sink in
    let outcome =
      if Gen.self_loop_rejected case.Gen.graph then outcome
      else
        {
          outcome with
          discrepancies =
            outcome.discrepancies
            @ [ { check = "self-loop-accepted"; detail = "Graph accepted a self-loop" } ];
        }
    in
    if outcome.discrepancies <> [] then begin
      let shrunk = shrink ?policy ?extra case.Gen.graph ~source ~sink in
      let outcome =
        (* Re-check the shrunk instance so the reported discrepancies
           match the dumped counterexample. *)
        let o = check ?policy ?extra shrunk ~source ~sink in
        if o.discrepancies <> [] then o else outcome
      in
      let csv =
        Option.map
          (fun dir ->
            let path =
              Filename.concat dir
                (Printf.sprintf "counterexample-seed%d-case%d.csv" seed case_index)
            in
            dump_csv path shrunk ~source ~sink outcome;
            path)
          dump_dir
      in
      failures := { case_index; case; shrunk; outcome; csv } :: !failures
    end;
    progress case_index (List.length !failures)
  done;
  { cases_run = cases; failures = List.rev !failures }
