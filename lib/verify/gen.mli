(** Randomized temporal-interaction-network instances for the
    differential verifier.

    Base generators mirror the property-test families (random DAGs,
    general digraphs, chains, Lemma-2 graphs) with integral times and
    quantities; mutation operators then push the instances into the
    numeric and temporal corners the oracles must agree on: duplicated
    timestamps, zero quantities, subnormal and huge magnitudes.
    Everything is driven by an explicit seeded PRNG so each case is
    reproducible from [(seed, case index)]. *)

type case = {
  graph : Graph.t;
  source : Graph.vertex;
  sink : Graph.vertex;
  family : string;  (** Base generator name ("dag", "digraph", …). *)
  mutations : string list;  (** Mutation operators applied, in order. *)
}

val random_dag :
  ?max_v:int -> ?max_edges:int -> Tin_util.Prng.t -> Graph.t * Graph.vertex * Graph.vertex
(** Vertices [0..n-1], source [0], sink [n-1], edges only from lower to
    higher index. *)

val random_digraph :
  ?max_v:int -> ?max_edges:int -> Tin_util.Prng.t -> Graph.t * Graph.vertex * Graph.vertex
(** General directed graph — cycles allowed. *)

val random_chain :
  ?max_len:int -> Tin_util.Prng.t -> Graph.t * Graph.vertex * Graph.vertex
(** Chain [0 → 1 → … → k] (Lemma-1 family). *)

val random_lemma2 :
  ?max_v:int -> Tin_util.Prng.t -> Graph.t * Graph.vertex * Graph.vertex
(** DAG where every interior vertex has exactly one outgoing edge
    (Lemma-2 family, greedy-soluble by construction). *)

val map_interactions :
  Graph.t -> (Graph.vertex -> Graph.vertex -> Interaction.t -> Interaction.t) -> Graph.t
(** Rewrites every interaction payload, preserving the edge structure
    (and isolated vertices). *)

val duplicate_timestamps : Tin_util.Prng.t -> Graph.t -> Graph.t
val zero_quantities : Tin_util.Prng.t -> Graph.t -> Graph.t
val denormal_quantities : Tin_util.Prng.t -> Graph.t -> Graph.t
val huge_quantities : Tin_util.Prng.t -> Graph.t -> Graph.t

val mutations : (string * (Tin_util.Prng.t -> Graph.t -> Graph.t)) list
(** All mutation operators with their report names. *)

val self_loop_rejected : Graph.t -> bool
(** Self-loops are unrepresentable by contract; this asserts the
    constructor rejects one (so they can never inflate a flow). *)

val families :
  (string * (Tin_util.Prng.t -> Graph.t * Graph.vertex * Graph.vertex)) list

val case : Tin_util.Prng.t -> case
(** One fuzz case: random family, then 0–2 random mutations. *)
