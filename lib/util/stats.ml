type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  total : float;
}

module Acc = struct
  (* Welford's online mean/variance: numerically stable for long
     streams of timings that span several orders of magnitude. *)
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable total : float;
    mutable min : float;
    mutable max : float;
  }

  let create () =
    { n = 0; mean = 0.0; m2 = 0.0; total = 0.0; min = infinity; max = neg_infinity }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    t.total <- t.total +. x;
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.n
  let mean t = if t.n = 0 then 0.0 else t.mean

  let stddev t =
    if t.n < 2 then 0.0 else sqrt (t.m2 /. float_of_int (t.n - 1))

  let total t = t.total
  let min t = if t.n = 0 then 0.0 else t.min
  let max t = if t.n = 0 then 0.0 else t.max

  (* Chan et al.'s pairwise combination of Welford states: merging
     per-domain accumulators on read must match a single sequential
     stream up to float reassociation. *)
  let merge_into ~into src =
    if src.n > 0 then begin
      if into.n = 0 then begin
        into.n <- src.n;
        into.mean <- src.mean;
        into.m2 <- src.m2;
        into.total <- src.total;
        into.min <- src.min;
        into.max <- src.max
      end
      else begin
        let n = into.n + src.n in
        let delta = src.mean -. into.mean in
        let nf = float_of_int n in
        into.m2 <-
          into.m2 +. src.m2
          +. (delta *. delta *. float_of_int into.n *. float_of_int src.n /. nf);
        into.mean <- into.mean +. (delta *. float_of_int src.n /. nf);
        into.n <- n;
        into.total <- into.total +. src.total;
        if src.min < into.min then into.min <- src.min;
        if src.max > into.max then into.max <- src.max
      end
    end

  let summary t =
    {
      count = t.n;
      mean = mean t;
      stddev = stddev t;
      min = min t;
      max = max t;
      total = t.total;
    }
end

let summarize xs =
  let acc = Acc.create () in
  List.iter (Acc.add acc) xs;
  Acc.summary acc

let mean xs =
  match xs with [] -> 0.0 | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

(* Empty samples yield [nan], never an exception: aggregation over an
   idle window (no samples in the reporting period) is a normal state
   for the metrics reporter, and [summarize] is already documented
   NaN-free-but-total on empty input.  Out-of-range [p] remains a
   programming error. *)
let percentile p xs =
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  if xs = [] then nan
  else
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  if n = 1 then a.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    a.(lo) +. (frac *. (a.(hi) -. a.(lo)))
  end

let median xs = percentile 50.0 xs
