(** Tolerant floating-point comparison.

    Flow quantities go through simplex pivots, so exact equality is not
    meaningful.  All flow-level comparisons in the library go through
    this module with a shared tolerance {!policy}: the solvers, the
    pattern tables, and the differential verifier ([Tin_verify]) must
    agree on what "equal" means, or a cross-check can report phantom
    discrepancies (or miss real ones). *)

type policy = {
  flow_eps : float;
      (** Relative tolerance for flow-{e value} comparisons: oracle
          agreement, conservation/capacity residual audits, solubility
          consistency.  Default [1e-6]. *)
  pivot_eps : float;
      (** Simplex pivot/zero tolerance used inside the LP solvers
          ([Tin_lp.Simplex]/[Bounded]/[Sparse]).  Default [1e-9]. *)
  path_eps : float;
      (** Augmenting-path residual threshold of the static max-flow
          algorithms and the flow decomposition.  Default [1e-12]. *)
}
(** The single tolerance policy threaded through every numeric layer.
    The three levels are deliberately ordered
    [path_eps < pivot_eps < flow_eps]: solver-internal noise must stay
    well below the resolution at which flow values are compared. *)

val default_policy : policy

val policy :
  ?flow_eps:float -> ?pivot_eps:float -> ?path_eps:float -> unit -> policy
(** Policy with selected fields overridden.
    @raise Invalid_argument on NaN or negative tolerances. *)

val default_eps : float
(** [default_policy.flow_eps] ([1e-6]) — the default of the comparison
    functions below. *)

val approx_eq : ?eps:float -> float -> float -> bool
(** [approx_eq a b] holds when [|a - b| <= eps * max 1 (|a|, |b|)]. *)

val approx_le : ?eps:float -> float -> float -> bool
(** [approx_le a b] holds when [a <= b] up to tolerance. *)

val approx_ge : ?eps:float -> float -> float -> bool

val is_zero : ?eps:float -> float -> bool

val clamp : lo:float -> hi:float -> float -> float
(** Clamp into [\[lo, hi\]]. *)
