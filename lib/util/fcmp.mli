(** Tolerant floating-point comparison.

    Flow quantities go through simplex pivots, so exact equality is not
    meaningful.  All flow-level comparisons in the library go through
    this module with a shared default tolerance. *)

val default_eps : float
(** Default absolute/relative tolerance ([1e-6]). *)

val approx_eq : ?eps:float -> float -> float -> bool
(** [approx_eq a b] holds when [|a - b| <= eps * max 1 (|a|, |b|)]. *)

val approx_le : ?eps:float -> float -> float -> bool
(** [approx_le a b] holds when [a <= b] up to tolerance. *)

val approx_ge : ?eps:float -> float -> float -> bool

val is_zero : ?eps:float -> float -> bool

val clamp : lo:float -> hi:float -> float -> float
(** Clamp into [\[lo, hi\]]. *)
