(** Benchmark-regression gate: structural diff of two machine-readable
    benchmark documents ([BENCH_flow.json] / [BENCH_pattern.json],
    or a [tinflow.obs.report/v1] trace report) with a relative noise
    tolerance.

    Both documents are flattened to [path -> number] maps.  Array
    elements are keyed by their identifying field ([name], [class],
    [jobs], [pattern] or [tid]) when present — so reordering a
    dataset, adding a job count, or renumbering a domain does not
    shift every other metric — and by index otherwise.  Each shared metric is then judged against the
    tolerance in the direction its name implies: wall-clock and
    footprint paths ([..._ms], [..._secs], [...rss...]) regress
    upward, throughput paths
    ([..._per_s], [...speedup...]) regress downward, and anything else
    (counters, instance counts) regresses on any deviation beyond the
    tolerance.  Machine-dependent facts ([domains_available]) are
    ignored. *)

type status =
  | Ok_within  (** within tolerance *)
  | Improved  (** beyond tolerance, in the good direction *)
  | Regressed  (** beyond tolerance, in the bad direction *)
  | Added  (** present only in the current document *)
  | Removed  (** present only in the baseline document *)

type row = {
  path : string;  (** dotted metric path, e.g. [datasets.Bitcoin.classes.C.solver_avg_ms.sparse] *)
  baseline : float option;
  current : float option;
  delta_pct : float option;  (** [100 * (current - baseline) / |baseline|]; [None] unless both exist *)
  status : status;
}

val flatten : Json.t -> (string * float) list
(** Numeric leaves of a document with their dotted paths, in document
    order.  Booleans, strings and nulls are skipped. *)

val compare_docs : ?tolerance_pct:float -> baseline:Json.t -> current:Json.t -> unit -> row list
(** One row per metric path in either document, baseline order first.
    [tolerance_pct] defaults to 15. *)

val regressed : row list -> row list
(** The rows with [status = Regressed].  {!Added} / {!Removed} rows are
    informational (renamed counters must not fail a soft gate). *)

val status_name : status -> string

val render_table : ?title:string -> row list -> string
(** The per-metric comparison table ({!Table.render} layout), ready to
    print; rows within tolerance are summarized, deviations listed. *)
