type status = Ok_within | Improved | Regressed | Added | Removed

type row = {
  path : string;
  baseline : float option;
  current : float option;
  delta_pct : float option;
  status : status;
}

(* Array elements keyed by an identifying field so that reordering or
   extending a list (another dataset, another job count, another
   domain in an obs report) moves one path, not all of them. *)
let element_key (v : Json.t) =
  let field k =
    match Json.member k v with
    | Some (Json.Str s) -> Some s
    | Some (Json.Num f) -> Some (Printf.sprintf "%g" f)
    | _ -> None
  in
  List.find_map field [ "name"; "class"; "jobs"; "pattern"; "tid" ]

let flatten (doc : Json.t) =
  let out = ref [] in
  let join prefix k = if prefix = "" then k else prefix ^ "." ^ k in
  let rec go prefix (v : Json.t) =
    match v with
    | Json.Num f -> out := (prefix, f) :: !out
    | Json.Obj kvs -> List.iter (fun (k, v) -> go (join prefix k) v) kvs
    | Json.Arr vs ->
        List.iteri
          (fun i v ->
            let k = match element_key v with Some k -> k | None -> string_of_int i in
            go (join prefix k) v)
          vs
    | Json.Null | Json.Bool _ | Json.Str _ -> ()
  in
  go "" doc;
  List.rev !out

(* Facts of the machine, not of the code under test. *)
let ignored path =
  let last =
    match String.rindex_opt path '.' with
    | Some i -> String.sub path (i + 1) (String.length path - i - 1)
    | None -> path
  in
  last = "domains_available"

type direction = Lower_better | Higher_better | Exact

let direction path =
  let has needle =
    let n = String.length needle and h = String.length path in
    let rec go i = i + n <= h && (String.sub path i n = needle || go (i + 1)) in
    go 0
  in
  if has "_ms" || has "_secs" || has "wall" || has "rss" then Lower_better
  else if has "_per_s" || has "speedup" then Higher_better
  else Exact

let judge ~tolerance_pct path base cur =
  let tol = tolerance_pct /. 100.0 in
  let denom = Float.max (Float.abs base) 1e-12 in
  let delta = (cur -. base) /. denom in
  let beyond = Float.abs delta > tol in
  let status =
    if not beyond then Ok_within
    else
      match direction path with
      | Lower_better -> if delta > 0.0 then Regressed else Improved
      | Higher_better -> if delta < 0.0 then Regressed else Improved
      | Exact -> Regressed
  in
  (100.0 *. delta, status)

let compare_docs ?(tolerance_pct = 15.0) ~baseline ~current () =
  let b = flatten baseline and c = flatten current in
  let c_tbl = Hashtbl.create 64 in
  List.iter (fun (p, v) -> Hashtbl.replace c_tbl p v) c;
  let b_paths = Hashtbl.create 64 in
  List.iter (fun (p, _) -> Hashtbl.replace b_paths p ()) b;
  let shared_and_removed =
    List.filter_map
      (fun (path, bv) ->
        if ignored path then None
        else
          match Hashtbl.find_opt c_tbl path with
          | Some cv ->
              let delta_pct, status = judge ~tolerance_pct path bv cv in
              Some
                {
                  path;
                  baseline = Some bv;
                  current = Some cv;
                  delta_pct = Some delta_pct;
                  status;
                }
          | None ->
              Some { path; baseline = Some bv; current = None; delta_pct = None; status = Removed })
      b
  in
  let added =
    List.filter_map
      (fun (path, cv) ->
        if ignored path || Hashtbl.mem b_paths path then None
        else Some { path; baseline = None; current = Some cv; delta_pct = None; status = Added })
      c
  in
  shared_and_removed @ added

let regressed rows = List.filter (fun r -> r.status = Regressed) rows

let status_name = function
  | Ok_within -> "ok"
  | Improved -> "improved"
  | Regressed -> "REGRESSED"
  | Added -> "new"
  | Removed -> "missing"

let render_table ?title rows =
  let fmt_opt = function None -> "-" | Some v -> Printf.sprintf "%g" v in
  let fmt_delta = function None -> "-" | Some d -> Printf.sprintf "%+.1f%%" d in
  let deviating = List.filter (fun r -> r.status <> Ok_within) rows in
  let n_ok = List.length rows - List.length deviating in
  let body =
    List.map
      (fun r ->
        [ r.path; fmt_opt r.baseline; fmt_opt r.current; fmt_delta r.delta_pct; status_name r.status ])
      deviating
  in
  let table =
    if body = [] then
      (match title with None -> "" | Some t -> t ^ "\n") ^ "all metrics within tolerance\n"
    else Table.render ?title ~header:[ "metric"; "baseline"; "current"; "delta"; "status" ] body
  in
  table
  ^ Printf.sprintf "%d metric(s) compared: %d within tolerance, %d regressed, %d improved, %d new, %d missing\n"
      (List.length rows) n_ok
      (List.length (regressed rows))
      (List.length (List.filter (fun r -> r.status = Improved) rows))
      (List.length (List.filter (fun r -> r.status = Added) rows))
      (List.length (List.filter (fun r -> r.status = Removed) rows))
