let default_eps = 1e-6

let scale a b = Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let approx_eq ?(eps = default_eps) a b =
  if a = b then true (* covers infinities *)
  else Float.abs (a -. b) <= eps *. scale a b

let approx_le ?(eps = default_eps) a b = a <= b || approx_eq ~eps a b
let approx_ge ?(eps = default_eps) a b = a >= b || approx_eq ~eps a b
let is_zero ?(eps = default_eps) x = approx_eq ~eps x 0.0
let clamp ~lo ~hi x = if x < lo then lo else if x > hi then hi else x
