type policy = {
  flow_eps : float;
  pivot_eps : float;
  path_eps : float;
}

let default_policy = { flow_eps = 1e-6; pivot_eps = 1e-9; path_eps = 1e-12 }

let policy ?(flow_eps = default_policy.flow_eps) ?(pivot_eps = default_policy.pivot_eps)
    ?(path_eps = default_policy.path_eps) () =
  if
    Float.is_nan flow_eps || flow_eps < 0.0 || Float.is_nan pivot_eps || pivot_eps < 0.0
    || Float.is_nan path_eps || path_eps < 0.0
  then invalid_arg "Fcmp.policy: tolerances must be non-negative";
  { flow_eps; pivot_eps; path_eps }

let default_eps = default_policy.flow_eps

let scale a b = Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let approx_eq ?(eps = default_eps) a b =
  if a = b then true (* covers infinities *)
  else Float.abs (a -. b) <= eps *. scale a b

let approx_le ?(eps = default_eps) a b = a <= b || approx_eq ~eps a b
let approx_ge ?(eps = default_eps) a b = a >= b || approx_eq ~eps a b
let is_zero ?(eps = default_eps) x = approx_eq ~eps x 0.0
let clamp ~lo ~hi x = if x < lo then lo else if x > hi then hi else x
