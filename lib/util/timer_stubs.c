/* Monotonic clock stub: CLOCK_MONOTONIC in nanoseconds, without
   depending on the Unix library. */
#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value caml_tin_clock_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + ts.tv_nsec);
}
