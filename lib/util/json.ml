type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Error of string

let parse_exn (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail msg = raise (Error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\n' | '\t' | '\r') ->
        incr pos;
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal lit v =
    let k = String.length lit in
    if !pos + k <= n && String.sub s !pos k = lit then begin
      pos := !pos + k;
      v
    end
    else fail ("expected " ^ lit)
  in
  let hex c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail "bad hex digit"
  in
  (* Decode \uXXXX to UTF-8 bytes; surrogate pairs are out of scope
     (the writers in this repo never emit them). *)
  let add_code_point b cp =
    if cp >= 0xD800 && cp <= 0xDFFF then fail "surrogate escapes unsupported"
    else if cp < 0x80 then Buffer.add_char b (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let string_lit () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
          incr pos;
          if !pos >= n then fail "bad escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
              if !pos + 4 >= n then fail "bad unicode escape";
              let cp =
                (hex s.[!pos + 1] lsl 12)
                lor (hex s.[!pos + 2] lsl 8)
                lor (hex s.[!pos + 3] lsl 4)
                lor hex s.[!pos + 4]
              in
              add_code_point b cp;
              pos := !pos + 4
          | _ -> fail "bad escape");
          incr pos;
          go ()
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | c ->
          Buffer.add_char b c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let number () =
    let start = !pos in
    let is_num c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < n && is_num s.[!pos] do
      incr pos
    done;
    if !pos = start then fail "expected a value";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else
          let rec fields acc =
            skip_ws ();
            let k = string_lit () in
            skip_ws ();
            expect ':';
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                fields ((k, v) :: acc)
            | Some '}' ->
                incr pos;
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          Arr []
        end
        else
          let rec elems acc =
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                elems (v :: acc)
            | Some ']' ->
                incr pos;
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Arr (elems [])
    | Some '"' -> Str (string_lit ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (number ())
    | None -> fail "unexpected end of input"
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse_exn s = try parse_exn s with Error msg -> failwith ("Json.parse: " ^ msg)

let parse s = try Ok (parse_exn s) with Failure msg -> Error msg

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let str = function Str s -> Some s | _ -> None
let num = function Num f -> Some f | _ -> None
