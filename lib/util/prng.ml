(* SplitMix64.  Reference: Steele, Lea & Flood, "Fast splittable
   pseudorandom number generators", OOPSLA 2014.  The golden-gamma
   constant and the two finalizers are taken from the reference
   implementation. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = int64 t in
  { state = seed }

let bits t = Int64.to_int (Int64.shift_right_logical (int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let rec draw () =
    let r = bits t in
    let v = r mod bound in
    if r - v > (max_int lsr 2) - bound + 1 then draw () else v
  in
  draw ()

let uniform t =
  (* 53 random bits into [0, 1). *)
  let r = Int64.to_int (Int64.shift_right_logical (int64 t) 11) in
  float_of_int r *. 0x1.0p-53

let float t bound = uniform t *. bound

let bool t = Int64.logand (int64 t) 1L = 1L

let exponential t ~mean =
  let u = uniform t in
  (* 1 - u is in (0, 1], so log is finite. *)
  -.mean *. log (1.0 -. u)

let gaussian t =
  (* Box–Muller; one value per call keeps the stream deterministic and
     the state minimal. *)
  let u1 = 1.0 -. uniform t and u2 = uniform t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let log_normal t ~mu ~sigma = exp (mu +. (sigma *. gaussian t))

let pareto t ~alpha ~x_min =
  let u = 1.0 -. uniform t in
  x_min /. (u ** (1.0 /. alpha))

let zipf t ~n ~s =
  if n <= 0 then invalid_arg "Prng.zipf: n must be positive";
  (* Inverse-transform over the generalized harmonic CDF, approximated
     with the integral of x^-s; exact enough for workload skew. *)
  if s <= 0.0 then int t n
  else begin
    let nf = float_of_int n in
    let u = uniform t in
    let x =
      if Float.abs (s -. 1.0) < 1e-9 then exp (u *. log nf)
      else
        let p = 1.0 -. s in
        ((u *. ((nf ** p) -. 1.0)) +. 1.0) ** (1.0 /. p)
    in
    let k = int_of_float x in
    if k < 1 then 0 else if k > n then n - 1 else k - 1
  end

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Prng.choose: empty array";
  a.(int t (Array.length a))
