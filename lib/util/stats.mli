(** Small online/offline statistics used by the experiment harness. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  total : float;
}
(** Five-number summary of a sample. *)

val summarize : float list -> summary
(** [summarize xs] computes the summary of [xs].  An empty list yields a
    zero summary (count 0, NaN-free). *)

val mean : float list -> float
(** Arithmetic mean; [0.] on the empty list. *)

val percentile : float -> float list -> float
(** [percentile p xs] is the [p]-th percentile ([0. <= p <= 100.]) using
    linear interpolation between closest ranks.  The empty list yields
    [nan] (an idle aggregation window must not crash the reporter);
    like {!summarize} and {!mean}, this never raises on empty input.
    @raise Invalid_argument on out-of-range [p]. *)

val median : float list -> float
(** Shorthand for [percentile 50.]; [nan] on the empty list. *)

(** Incremental accumulator (Welford's algorithm) for streaming
    measurements without retaining the sample. *)
module Acc : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val stddev : t -> float
  val total : t -> float
  val min : t -> float
  val max : t -> float
  val summary : t -> summary

  val merge_into : into:t -> t -> unit
  (** [merge_into ~into src] folds [src]'s state into [into] (Chan's
      pairwise Welford combination), as if [into] had also seen every
      observation of [src].  [src] is unchanged.  Used to merge
      per-domain metric shards on read. *)
end
