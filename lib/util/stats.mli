(** Small online/offline statistics used by the experiment harness. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  total : float;
}
(** Five-number summary of a sample. *)

val summarize : float list -> summary
(** [summarize xs] computes the summary of [xs].  An empty list yields a
    zero summary (count 0, NaN-free). *)

val mean : float list -> float
(** Arithmetic mean; [0.] on the empty list. *)

val percentile : float -> float list -> float
(** [percentile p xs] is the [p]-th percentile ([0. <= p <= 100.]) using
    linear interpolation between closest ranks.  @raise Invalid_argument
    on an empty list or out-of-range [p]. *)

val median : float list -> float
(** Shorthand for [percentile 50.]. *)

(** Incremental accumulator (Welford's algorithm) for streaming
    measurements without retaining the sample. *)
module Acc : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val stddev : t -> float
  val total : t -> float
  val min : t -> float
  val max : t -> float
  val summary : t -> summary
end
