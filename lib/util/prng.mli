(** Deterministic pseudo-random number generation.

    All experiments in this repository are seeded so that dataset
    generation, subgraph extraction and benchmarks are reproducible from
    run to run.  The generator is SplitMix64 (Steele, Lea & Flood 2014):
    a tiny, fast, statistically solid 64-bit generator whose state is a
    single integer, which makes [split] (deriving an independent stream)
    trivial and principled. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] returns a fresh generator.  Equal seeds produce equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator that will replay [t]'s future
    stream. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of [t]'s remaining stream.  Used to give
    each dataset / experiment its own stream so adding draws to one
    experiment does not perturb another. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val bits : t -> int
(** Next non-negative 62-bit integer. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  @raise Invalid_argument
    if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val uniform : t -> float
(** [uniform t] is uniform in [\[0, 1)]. *)

val bool : t -> bool
(** Fair coin. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed draw with the given mean (inter-arrival
    times of interactions). *)

val log_normal : t -> mu:float -> sigma:float -> float
(** Log-normal draw: [exp (mu + sigma * N(0,1))].  Used for transferred
    quantities, which are heavy-tailed in all three real datasets. *)

val pareto : t -> alpha:float -> x_min:float -> float
(** Pareto draw with shape [alpha] and scale [x_min]; used for
    heavy-tailed degree targets. *)

val gaussian : t -> float
(** Standard normal draw (Box–Muller). *)

val zipf : t -> n:int -> s:float -> int
(** [zipf t ~n ~s] draws from a Zipf distribution over [\[0, n)] with
    exponent [s] by inverse-transform sampling over an approximated
    harmonic CDF.  Used to pick interaction endpoints with realistic
    popularity skew. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniformly random element.  @raise Invalid_argument on empty array. *)
