(** Plain-text table rendering for the benchmark harness, in the shape
    of the paper's tables. *)

type align = Left | Right

val render :
  ?title:string -> ?align:align list -> header:string list -> string list list -> string
(** [render ~header rows] lays out a boxed ASCII table.  [align] gives
    per-column alignment (default: first column left, rest right);
    missing cells render empty.  The result ends with a newline. *)

val print :
  ?title:string -> ?align:align list -> header:string list -> string list list -> unit
(** {!render} to stdout. *)

val fmt_ms : float -> string
(** Human-friendly rendering of a duration in milliseconds: switches to
    µs below 0.1 ms and to seconds above 10\,000 ms, mirroring the
    units used in the paper's tables. *)

val fmt_count : float -> string
(** Render a count with K/M/G/T suffixes (e.g. [22.3G] instances). *)

val fmt_flow : float -> string
(** Render a flow value compactly (3 significant decimals, suffixes for
    large magnitudes). *)
