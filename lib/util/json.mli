(** Minimal JSON support: a read-only parser for the machine-readable
    artifacts this repository itself writes (the [BENCH_*.json] bench
    results, the observability exports), and the string escaping the
    hand-rolled writers share.

    Deliberately not a general-purpose JSON library (the repo has no
    JSON dependency by design): no streaming, the whole document is in
    memory, and [\uXXXX] escapes outside the Basic Multilingual Plane
    (surrogate pairs) are rejected. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** [parse s] parses exactly one JSON document spanning all of [s]
    (surrounding whitespace allowed).  Errors carry a byte offset. *)

val parse_exn : string -> t
(** @raise Failure with the [parse] error message. *)

val escape : string -> string
(** [escape s] is the JSON string-body encoding of [s] (no
    surrounding quotes): double quotes, backslashes and control
    characters are escaped (newline/tab/CR named, other controls as
    [\u00XX]).  Round-trips through {!parse}. *)

val member : string -> t -> t option
(** [member k (Obj ...)] finds field [k]; [None] on other variants. *)

val str : t -> string option
val num : t -> float option
