(** Wall-clock measurement helpers for the benchmark harness. *)

val now_ns : unit -> int64
(** Monotonic wall clock in nanoseconds, read through the
    [caml_tin_clock_ns] C stub ([clock_gettime(CLOCK_MONOTONIC)];
    [mach_absolute_time] on macOS) — no [Unix] dependency and no
    [Sys.time] fallback.  Precision is far below the millisecond-scale
    measurements reported by the paper. *)

val time_f : (unit -> 'a) -> 'a * float
(** [time_f f] runs [f ()] and returns its result together with the
    elapsed wall time in seconds. *)

val time_ms : (unit -> 'a) -> 'a * float
(** Like {!time_f} but in milliseconds. *)

val repeat_ms : ?min_runs:int -> ?min_time_ms:float -> (unit -> 'a) -> float
(** [repeat_ms f] runs [f] repeatedly until at least [min_runs] runs
    (default 3) and [min_time_ms] total milliseconds (default 10) have
    elapsed, and returns the mean per-run time in milliseconds.  Keeps
    micro-measurements out of clock-granularity noise. *)
