(* We avoid depending on Unix by using the monotonic counters exposed
   through Sys/Gc; OCaml 4.07+ provides [Sys.time] (CPU) but wall time
   needs either Unix or mtime.  [Sys.opaque_identity] keeps the
   measured thunk from being optimized away. *)

external clock_gettime_ns : unit -> int64 = "caml_tin_clock_ns"

let now_ns () = clock_gettime_ns ()

let time_f f =
  let t0 = now_ns () in
  let r = Sys.opaque_identity (f ()) in
  let t1 = now_ns () in
  (r, Int64.to_float (Int64.sub t1 t0) /. 1e9)

let time_ms f =
  let r, s = time_f f in
  (r, s *. 1e3)

let repeat_ms ?(min_runs = 3) ?(min_time_ms = 10.0) f =
  let rec go runs total =
    if runs >= min_runs && total >= min_time_ms then total /. float_of_int runs
    else
      let _, ms = time_ms f in
      go (runs + 1) (total +. ms)
  in
  go 0 0.0
