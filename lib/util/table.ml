type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ?title ?align ~header rows =
  let ncols =
    List.fold_left (fun acc r -> max acc (List.length r)) (List.length header) rows
  in
  let get l i = match List.nth_opt l i with Some s -> s | None -> "" in
  let aligns =
    match align with
    | Some a -> Array.init ncols (fun i -> match List.nth_opt a i with Some x -> x | None -> Right)
    | None -> Array.init ncols (fun i -> if i = 0 then Left else Right)
  in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri (fun i s -> if String.length s > widths.(i) then widths.(i) <- String.length s) row
  in
  measure header;
  List.iter measure rows;
  let buf = Buffer.create 1024 in
  let rule () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let line row =
    Buffer.add_char buf '|';
    for i = 0 to ncols - 1 do
      Buffer.add_char buf ' ';
      Buffer.add_string buf (pad aligns.(i) widths.(i) (get row i));
      Buffer.add_string buf " |"
    done;
    Buffer.add_char buf '\n'
  in
  (match title with
  | Some t ->
      Buffer.add_string buf t;
      Buffer.add_char buf '\n'
  | None -> ());
  rule ();
  line header;
  rule ();
  List.iter line rows;
  rule ();
  Buffer.contents buf

let print ?title ?align ~header rows =
  print_string (render ?title ?align ~header rows)

let fmt_ms ms =
  if ms = 0.0 then "0"
  else if ms < 0.1 then Printf.sprintf "%.3g \xc2\xb5s" (ms *. 1000.0)
  else if ms < 10_000.0 then Printf.sprintf "%.4g ms" ms
  else Printf.sprintf "%.4g s" (ms /. 1000.0)

let with_suffix v =
  let abs = Float.abs v in
  if abs >= 1e12 then (v /. 1e12, "T")
  else if abs >= 1e9 then (v /. 1e9, "G")
  else if abs >= 1e6 then (v /. 1e6, "M")
  else if abs >= 1e3 then (v /. 1e3, "K")
  else (v, "")

let fmt_count v =
  let x, suffix = with_suffix v in
  if suffix = "" then Printf.sprintf "%.0f" x else Printf.sprintf "%.3g%s" x suffix

let fmt_flow v =
  if Float.is_integer v && Float.abs v < 1e6 then Printf.sprintf "%.0f" v
  else
    let x, suffix = with_suffix v in
    Printf.sprintf "%.4g%s" x suffix
