(** Network patterns (Definitions 2 and 3) and graph-browsing
    enumeration of their instances (Section 5.1).

    A pattern is a small labelled DAG.  Labels only express
    equality constraints: pattern vertices with the same label must map
    to the same graph vertex (that is how a cyclic transaction
    [a→b→c→a] is expressed as a DAG: the first and last vertices both
    carry label [a]); vertices with different labels must map to
    different graph vertices.

    The browser instantiates pattern vertices in index order — which
    must be a topological order with every non-initial vertex adjacent
    to an earlier one — following graph adjacency, verifying edge and
    distinctness constraints, and backtracking: the STwig-style
    exploration the paper describes. *)

type t = private {
  name : string;
  n : int;  (** Pattern vertices are [0 .. n-1]. *)
  labels : int array;  (** [labels.(i)] is the label of vertex [i]. *)
  edges : (int * int) list;
  sink : int;  (** Cached at {!make} time; see {!val-sink}. *)
}

val make : name:string -> labels:int array -> edges:(int * int) list -> t
(** Validates: edges form a DAG over [0 .. n-1]; vertex order is an
    enumeration order (each vertex [k > 0] has an edge to some
    [j < k]); same-label vertices are never adjacent (that would be a
    self-loop in the instance); vertex 0 is the unique source (no
    incoming pattern edge) and exactly one vertex has no outgoing
    edge (the flow sink).
    @raise Invalid_argument otherwise. *)

val source : t -> int
(** First vertex (index 0) — by convention the pattern's flow source. *)

val sink : t -> int
(** The unique vertex with no outgoing edge — the pattern's flow sink
    (not necessarily the last-declared vertex).  When it shares its
    label with the source, instances are cyclic and their flow is
    measured by splitting the shared graph vertex. *)

val is_cyclic_shape : t -> bool
(** Whether source and sink carry the same label. *)

type mapping = Static.vertex array
(** [mapping.(i)] is the graph vertex instantiating pattern vertex
    [i]. *)

exception Stop
(** Raise from the callback to abort enumeration early. *)

val browse :
  ?should_stop:(unit -> bool) -> ?anchor:Static.vertex -> Static.t -> t -> (mapping -> unit) -> unit
(** Enumerates every instance, invoking the callback with a mapping
    (the array is reused — copy it to retain).  Deterministic order.
    [should_stop] is polled periodically {e between candidates} (not
    only between instances), so a time budget also interrupts long dry
    spells on hub vertices — the situation behind the paper's
    "15 days (est.)" entry for P5 on Bitcoin.  It is additionally
    checked {e unmasked immediately before every complete binding's
    callback}, so when the callback is the expensive step (a flow
    computation) an expired budget overshoots by at most one candidate
    step.  [anchor] restricts the
    walk to instances whose pattern vertex 0 maps to the given graph
    vertex — the sharding unit of the parallel catalog search:
    browsing every anchor in ascending order reproduces the unanchored
    enumeration exactly. *)

val instance_edges : Static.t -> t -> mapping -> Static.edge_id list
(** Graph edges realising each pattern edge.  @raise Invalid_argument
    if the mapping is not an instance. *)

val of_string : string -> t
(** Parses a pattern description: comma-separated edges over named
    vertices, e.g. ["a->b, b->c, c->a'"].  A name is a label plus
    optional primes: [a] and [a'] are {e distinct pattern vertices
    with the same label} (they must map to the same graph vertex) —
    exactly how the paper draws cyclic patterns as DAGs.  Vertices are
    ordered by first appearance, which must satisfy the enumeration
    requirements of {!make}.
    @raise Invalid_argument on syntax or structural errors. *)

val to_string : t -> string
(** Round-trips through {!of_string} (canonical vertex names). *)

val instance_flow : Static.t -> t -> mapping -> float
(** Maximum flow of the instance: the mapped subgraph is built, the
    shared source/sink vertex is split for cyclic shapes, and the
    [Pre_sim] pipeline of Section 4 computes the flow. *)
