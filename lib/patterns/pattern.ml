type t = { name : string; n : int; labels : int array; edges : (int * int) list; sink : int }

let make ~name ~labels ~edges =
  let n = Array.length labels in
  if n = 0 then invalid_arg "Pattern.make: empty pattern";
  List.iter
    (fun (i, j) ->
      if i < 0 || j < 0 || i >= n || j >= n then invalid_arg "Pattern.make: edge out of range";
      if labels.(i) = labels.(j) then
        invalid_arg "Pattern.make: same-label vertices cannot be adjacent")
    edges;
  (* Vertex order must be usable as the enumeration order. *)
  for k = 1 to n - 1 do
    if not (List.exists (fun (i, j) -> (i = k && j < k) || (j = k && i < k)) edges) then
      invalid_arg "Pattern.make: vertex not adjacent to any earlier vertex"
  done;
  (* DAG check (indices need not be topologically ordered in
     principle, but our browse order requires source first; a simple
     cycle check suffices). *)
  let adj = Array.make n [] in
  List.iter (fun (i, j) -> adj.(i) <- j :: adj.(i)) edges;
  let color = Array.make n 0 in
  let rec visit v =
    if color.(v) = 1 then invalid_arg "Pattern.make: pattern has a cycle";
    if color.(v) = 0 then begin
      color.(v) <- 1;
      List.iter visit adj.(v);
      color.(v) <- 2
    end
  in
  for v = 0 to n - 1 do
    visit v
  done;
  (* Flow endpoints are structural: the unique vertex with no incoming
     pattern edge is the source and must be vertex 0 (the browse
     start); the unique vertex with no outgoing edge is the sink
     (which need not be declared last — the DSL allows any order). *)
  let has_in = Array.make n false and has_out = Array.make n false in
  List.iter
    (fun (i, j) ->
      has_out.(i) <- true;
      has_in.(j) <- true)
    edges;
  let sources = List.filter (fun v -> not has_in.(v)) (List.init n Fun.id) in
  let sinks = List.filter (fun v -> not has_out.(v)) (List.init n Fun.id) in
  if sources <> [ 0 ] then
    invalid_arg "Pattern.make: vertex 0 must be the unique source (no incoming edges)";
  let sink =
    match sinks with
    | [ s ] -> s
    | _ -> invalid_arg "Pattern.make: pattern must have exactly one sink (no outgoing edges)"
  in
  { name; n; labels; edges; sink }

let source _ = 0
let sink t = t.sink
let is_cyclic_shape t = t.labels.(0) = t.labels.(t.sink)

type mapping = Static.vertex array

exception Stop

(* Precomputed per-step plan: [lab] is the dense label id of vertex k
   (indexing a small assignment array during the walk) and [adjacent]
   collects every edge constraint between k and an earlier vertex.
   For a fresh vertex the candidate generator is chosen among
   [adjacent] at browse time, from whichever already-bound endpoint
   has the smaller adjacency row. *)
type step = {
  fresh : bool; (* k's label was not assigned by an earlier vertex *)
  lab : int; (* dense label id in [0 .. n_labels-1] *)
  adjacent : (int * [ `Edge_to_k | `Edge_from_k ]) list;
}

let plan t =
  let label_ids = Hashtbl.create 8 in
  let steps =
    Array.init t.n (fun k ->
        let fresh = not (Hashtbl.mem label_ids t.labels.(k)) in
        if fresh then Hashtbl.add label_ids t.labels.(k) (Hashtbl.length label_ids);
        let lab = Hashtbl.find label_ids t.labels.(k) in
        let adjacent =
          List.filter_map
            (fun (i, j) ->
              if i = k && j < k then Some (j, `Edge_from_k)
              else if j = k && i < k then Some (i, `Edge_to_k)
              else None)
            t.edges
        in
        { fresh; lab; adjacent })
  in
  (steps, Hashtbl.length label_ids)

let browse ?should_stop ?anchor net t f =
  let steps, n_labels = plan t in
  (* Poll the stop condition every so many candidate probes: cheap
     enough for hot loops, frequent enough for time budgets. *)
  let probes = ref 0 in
  let poll () =
    match should_stop with
    | None -> ()
    | Some stop ->
        incr probes;
        if !probes land 0xFFF = 0 && stop () then raise Stop
  in
  let mu = Array.make t.n (-1) in
  (* rep.(l) is the graph vertex currently bound to dense label l. *)
  let rep = Array.make n_labels (-1) in
  let distinct v =
    let ok = ref true in
    for l = 0 to n_labels - 1 do
      if rep.(l) = v then ok := false
    done;
    !ok
  in
  let check v (j, dir) =
    match dir with
    | `Edge_from_k -> Static.find_edge net ~src:v ~dst:mu.(j) <> None
    | `Edge_to_k -> Static.find_edge net ~src:mu.(j) ~dst:v <> None
  in
  (* Verify every adjacency constraint except the (physically equal)
     cell that generated the candidate. *)
  let rec checks_ok v skip = function
    | [] -> true
    | c :: rest -> (c == skip || check v c) && checks_ok v skip rest
  in
  let no_skip = (-1, `Edge_to_k) in
  let rec go k =
    if k = t.n then begin
      (* Unmasked stop check before every complete binding: the
         callback is the expensive step (typically a per-instance flow
         computation), so an expired budget must stop here, between
         bindings — not 4096 masked probes later.  This bounds deadline
         overshoot by a single candidate step. *)
      (match should_stop with Some stop when stop () -> raise Stop | _ -> ());
      f mu
    end
    else begin
      let step = steps.(k) in
      if not step.fresh then begin
        (* Same label as an earlier vertex: the binding is forced and
           every adjacent constraint must be verified. *)
        let v = rep.(step.lab) in
        if checks_ok v no_skip step.adjacent then begin
          mu.(k) <- v;
          go (k + 1);
          mu.(k) <- -1
        end
      end
      else begin
        let try_candidate gen v =
          poll ();
          if distinct v && checks_ok v gen step.adjacent then begin
            mu.(k) <- v;
            rep.(step.lab) <- v;
            go (k + 1);
            rep.(step.lab) <- -1;
            mu.(k) <- -1
          end
        in
        let generate ((j, dir) as g) =
          match dir with
          | `Edge_to_k -> Static.iter_succs net mu.(j) (fun v _ -> try_candidate g v)
          | `Edge_from_k -> Static.iter_preds net mu.(j) (fun v _ -> try_candidate g v)
        in
        match step.adjacent with
        | [] -> (
            (* Only k = 0: the enumeration root. *)
            match anchor with
            | Some a -> if a >= 0 && a < Static.n_vertices net then try_candidate no_skip a
            | None ->
                for v = 0 to Static.n_vertices net - 1 do
                  try_candidate no_skip v
                done)
        | [ g ] -> generate g
        | first :: rest ->
            let row_size (j, dir) =
              match dir with
              | `Edge_to_k -> Static.out_degree net mu.(j)
              | `Edge_from_k -> Static.in_degree net mu.(j)
            in
            generate
              (List.fold_left (fun b c -> if row_size c < row_size b then c else b) first rest)
      end
    end
  in
  (try go 0 with Stop -> ())

let instance_edges net t mu =
  List.map
    (fun (i, j) ->
      match Static.find_edge net ~src:mu.(i) ~dst:mu.(j) with
      | Some e -> e
      | None -> invalid_arg "Pattern.instance_edges: mapping is not an instance")
    t.edges

let instance_flow net t mu =
  let eids = instance_edges net t mu in
  let g = Static.edges_to_graph net eids in
  if is_cyclic_shape t then begin
    let ep = Tin_core.Endpoints.split g ~vertex:(Static.label net mu.(0)) in
    Tin_core.Pipeline.max_flow ep.Tin_core.Endpoints.graph ~source:ep.Tin_core.Endpoints.source
      ~sink:ep.Tin_core.Endpoints.sink
  end
  else
    Tin_core.Pipeline.max_flow g
      ~source:(Static.label net mu.(0))
      ~sink:(Static.label net mu.(sink t))

(* --- textual pattern descriptions --- *)

let of_string text =
  let fail fmt = Printf.ksprintf invalid_arg ("Pattern.of_string: " ^^ fmt) in
  let names = Hashtbl.create 8 in
  (* vertex name -> index *)
  let order = ref [] in
  let intern name =
    if name = "" then fail "empty vertex name";
    String.iter
      (fun c ->
        if not ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_' || c = '\'')
        then fail "invalid character %C in vertex name %S" c name)
      name;
    match Hashtbl.find_opt names name with
    | Some i -> i
    | None ->
        let i = Hashtbl.length names in
        Hashtbl.add names name i;
        order := name :: !order;
        i
  in
  let parse_edge part =
    match String.index_opt part '-' with
    | Some i when i + 1 < String.length part && part.[i + 1] = '>' ->
        let src = String.trim (String.sub part 0 i) in
        let dst = String.trim (String.sub part (i + 2) (String.length part - i - 2)) in
        (* Intern left to right: vertex order (and hence the flow
           source, vertex 0) follows reading order. *)
        let si = intern src in
        let di = intern dst in
        (si, di)
    | _ -> fail "expected \"src->dst\" in %S" part
  in
  let edges =
    String.split_on_char ',' text
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
    |> List.map parse_edge
  in
  if edges = [] then fail "no edges";
  let vertex_names = Array.of_list (List.rev !order) in
  (* The label is the name with primes stripped. *)
  let strip name =
    let n = ref (String.length name) in
    while !n > 0 && name.[!n - 1] = '\'' do
      decr n
    done;
    if !n = 0 then fail "vertex name %S is only primes" name;
    String.sub name 0 !n
  in
  let label_ids = Hashtbl.create 8 in
  let labels =
    Array.map
      (fun name ->
        let l = strip name in
        match Hashtbl.find_opt label_ids l with
        | Some i -> i
        | None ->
            let i = Hashtbl.length label_ids in
            Hashtbl.add label_ids l i;
            i)
      vertex_names
  in
  make ~name:text ~labels ~edges

let to_string t =
  (* Canonical names: label k -> letter, with primes distinguishing
     repeated vertices of the same label. *)
  let letter l =
    if l < 26 then String.make 1 (Char.chr (Char.code 'a' + l)) else Printf.sprintf "v%d" l
  in
  let seen = Hashtbl.create 8 in
  let names =
    Array.map
      (fun l ->
        let count = Option.value ~default:0 (Hashtbl.find_opt seen l) in
        Hashtbl.replace seen l (count + 1);
        letter l ^ String.make count '\'')
      t.labels
  in
  t.edges
  |> List.map (fun (i, j) -> Printf.sprintf "%s->%s" names.(i) names.(j))
  |> String.concat ", "
