(** The pattern catalog of the experimental evaluation (Figure 12) and
    both search strategies — graph browsing (GB, Section 5.1) and
    precomputation-based (PB, Section 5.2/5.3) — for each pattern.

    Rigid patterns (reconstructed from the paper's prose; the figure
    itself is unreadable in the source):
    - [P1]  2-hop chain   [a→b→c]
    - [P2]  2-hop cycle   [a→b→a]
    - [P3]  3-hop cycle   [a→b→c→a]
    - [P4]  3-hop cycle with a return chord [b→a]  (greedy-insoluble:
            [b] has two outgoing edges; flow needs the LP)
    - [P5]  "flower": a 2-hop and a 3-hop cycle joined at [a]
            (pure merge-join of the L2 and L3 tables)
    - [P6]  3-hop cycle with both chords [a→c] and [b→a] — the
            Figure-3 shape after splitting; LP-soluble only

    Relaxed patterns (Section 5.3): any number of vertex-disjoint
    parallel paths, flows aggregated per anchor:
    - [RP1] all 2-hop chains [a→*→c], grouped per (a, c)
    - [RP2] all 2-hop cycles at [a], grouped per [a]
    - [RP3] all 3-hop cycles at [a], grouped per [a] *)

type rigid = P1 | P2 | P3 | P4 | P5 | P6
type relaxed = RP1 | RP2 | RP3
type pattern = Rigid of rigid | Relaxed of relaxed

val all_rigid : rigid list
val all_relaxed : relaxed list
val all : pattern list

val pattern_name : pattern -> string
val rigid_pattern : rigid -> Pattern.t
(** The underlying labelled DAG of a rigid pattern. *)

val needs_chains : pattern -> bool
(** True for patterns whose PB plan needs the 2-hop-chain table
    ([P1]/[RP1]; also [P6] benefits) — the paper only ran those on
    Prosper Loans, where the chain table fits in memory. *)

type result = {
  instances : int;
  total_flow : float;
  truncated : bool;
      (** The enumeration stopped early (instance limit or time
          budget). *)
  timed_out : bool;  (** Specifically the time budget expired. *)
}

val avg_flow : result -> float

type tables = { l2 : Tables.t; l3 : Tables.t; c2 : Tables.t option }
(** Precomputed tables: cycles are always built, chains optionally. *)

val precompute : ?jobs:int -> ?with_chains:bool -> Static.t -> tables
(** [jobs] (default 1) shards the per-start-vertex table construction
    across OCaml domains; the tables are identical for every job
    count. *)

val gb :
  ?jobs:int ->
  ?limit:int ->
  ?time_budget_ms:float ->
  ?tables:tables ->
  Static.t ->
  pattern ->
  result
(** Graph-browsing enumeration with per-instance flow computation.
    [time_budget_ms] interrupts the walk mid-search (the paper
    likewise terminated GB early on its hardest patterns).

    [jobs] (default 1) shards the search by anchor vertex (pattern
    vertex 0) across OCaml domains; a shared atomic instance counter
    enforces [limit] and the deadline globally, and per-chunk results
    merge deterministically in anchor order, so untruncated searches
    return results identical to [jobs:1] — bit-for-bit, including
    float accumulation.  A truncated parallel search may keep a
    different (but still at most [limit]-sized) instance subset.

    [tables] enables the hybrid mode: when the pattern's instances are
    single 2/3-hop chains or cycles — [P1]/[P2]/[P3], their DSL
    equivalents, or the [P5] flower whose two cycles join only at the
    anchor — the per-instance flow is read from the precomputed rows
    instead of rebuilding and re-solving the subgraph.  Patterns the
    tables cannot close ([P4]/[P6], relaxed, general shapes) fall back
    to the ordinary per-instance computation. *)

val pb :
  ?jobs:int ->
  ?limit:int ->
  ?time_budget_ms:float ->
  Static.t ->
  tables ->
  pattern ->
  result
(** Precomputation-based enumeration, anchor-sharded exactly like
    {!gb} when [jobs > 1].  @raise Invalid_argument when the pattern
    needs the chain table and [tables.c2 = None]. *)

val gb_custom :
  ?jobs:int ->
  ?limit:int ->
  ?time_budget_ms:float ->
  ?tables:tables ->
  Static.t ->
  Pattern.t ->
  result
(** Graph-browsing enumeration of an arbitrary user pattern (e.g. one
    parsed by {!Pattern.of_string}), with per-instance maximum-flow
    computation — the generic engine behind the rigid catalog.
    [jobs] and [tables] as in {!gb}. *)

val gb_with :
  ?jobs:int ->
  ?limit:int ->
  ?time_budget_ms:float ->
  Static.t ->
  Pattern.t ->
  (Pattern.mapping -> float) ->
  result
(** Like {!gb_custom} but with a caller-supplied per-instance flow
    function (the mapping array is reused — copy it to retain).  This
    is the raw engine: it exists so tests and experiments can observe
    the search machinery (ticket accounting, deadline behaviour) under
    a controlled instance cost.

    Deadline contract: the time budget is re-checked {e unmasked}
    immediately before each complete binding invokes the flow function
    (see {!Pattern.browse}), so once the budget expires, at most the
    one in-flight instance evaluation completes — overshoot is bounded
    by a single candidate step, not by a shard.  Expiries are counted
    in the [catalog.deadline_hits] observability counter (once per
    search). *)
