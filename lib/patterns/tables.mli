(** Precomputed path tables (Section 5.2).

    The preprocessing-based (PB) pattern-search approach materialises
    small path shapes once, together with the interaction sequence that
    the greedy scan delivers into the path's final vertex — which, by
    Lemma 3, fully determines the path's flow contribution at any time
    and can be composed by further greedy runs.

    Three tables mirror the paper's setup: 2-hop cycles [a→b→a] and
    3-hop cycles [a→b→c→a] for every dataset, and 2-hop chains
    [a→b→c] where precomputation cost allows (the paper built chains
    only for Prosper Loans).  Rows are sorted by start vertex, with an
    offset index for merge-joins. *)

type row = {
  verts : Static.vertex array;
      (** The path vertices, starting vertex first.  For cycles the
          final return to the start is implicit. *)
  arrivals : Interaction.t list;
      (** Greedy arrival sequence at the path's end (at the start
          vertex's sink half, for cycles). *)
  flow : float;  (** Total of [arrivals] — the path's flow. *)
}

type t

val rows : t -> row array
(** All rows, sorted by start vertex (then lexicographically). *)

val n_rows : t -> int

val for_start : t -> Static.vertex -> row array
(** Rows whose path starts at the given vertex (shared subarray copy). *)

val iter_start : t -> Static.vertex -> (row -> unit) -> unit

val starts : t -> Static.vertex list
(** Distinct start vertices, ascending. *)

val cycles2 : ?jobs:int -> Static.t -> t
(** All 2-hop cycles [a→b→a]; row vertices are [[|a; b|]].  [jobs]
    (default 1) shards the start-vertex scan across OCaml domains;
    the resulting table is identical for every job count. *)

val cycles3 : ?jobs:int -> Static.t -> t
(** All 3-hop cycles [a→b→c→a] with [b ≠ c]; rows [[|a; b; c|]].
    [jobs] as in {!cycles2}. *)

val chains2 : ?jobs:int -> Static.t -> t
(** All 2-hop chains [a→b→c] over distinct vertices; rows
    [[|a; b; c|]].  [jobs] as in {!cycles2}. *)

val find : t -> Static.vertex array -> row option
(** Binary search for the row with exactly the given path vertices
    (start vertex first) — O(log) in the start vertex's row count.
    Used by the hybrid graph-browsing mode to close chain/cycle
    sub-joins against precomputed rows. *)

val memory_rows : t -> int
(** Total interactions stored (precomputation footprint measure). *)

val of_rows : n_vertices:int -> row list -> t
(** Table from an explicit row list (sorted internally); used by the
    {!Delta} maintenance pass.  Rows must reference vertices below
    [n_vertices]. *)

val path_row : Static.t -> Static.vertex array -> Static.edge_id list -> row
(** Builds one row: runs the greedy reduction over the given edge
    chain.  Exposed for {!Delta}. *)

val chain_arrivals : Static.t -> Static.edge_id list -> Interaction.t list
(** Arrival sequence of the greedy reduction over the given edge chain
    — [path_row] without the row wrapper.  Reads the interaction
    columns directly (no per-candidate list building); exposed for the
    counting catalog. *)
