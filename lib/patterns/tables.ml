module Simplify = Tin_core.Simplify

type row = { verts : Static.vertex array; arrivals : Interaction.t list; flow : float }

type t = { rows : row array; offsets : int array (* per vertex, length n+1 *) }

let rows t = t.rows
let n_rows t = Array.length t.rows

let for_start t v = Array.sub t.rows t.offsets.(v) (t.offsets.(v + 1) - t.offsets.(v))

let iter_start t v f =
  for k = t.offsets.(v) to t.offsets.(v + 1) - 1 do
    f t.rows.(k)
  done

let starts t =
  let acc = ref [] in
  for v = Array.length t.offsets - 2 downto 0 do
    if t.offsets.(v + 1) > t.offsets.(v) then acc := v :: !acc
  done;
  !acc

let find t key =
  (* Rows are lexicographically sorted (per-anchor construction scans
     successors in ascending order; [of_rows] sorts), so a binary
     search inside the start vertex's offset range suffices. *)
  let v0 = key.(0) in
  if v0 < 0 || v0 + 1 >= Array.length t.offsets then None
  else begin
    let rec search lo hi =
      if lo >= hi then None
      else begin
        let mid = (lo + hi) / 2 in
        let c = compare t.rows.(mid).verts key in
        if c = 0 then Some t.rows.(mid)
        else if c < 0 then search (mid + 1) hi
        else search lo mid
      end
    in
    search t.offsets.(v0) t.offsets.(v0 + 1)
  end

let of_rows ~n_vertices rows =
  let rows = Array.of_list rows in
  Array.sort (fun a b -> compare a.verts b.verts) rows;
  let offsets = Array.make (n_vertices + 1) 0 in
  Array.iter (fun r -> offsets.(r.verts.(0) + 1) <- offsets.(r.verts.(0) + 1) + 1) rows;
  for v = 0 to n_vertices - 1 do
    offsets.(v + 1) <- offsets.(v + 1) + offsets.(v)
  done;
  { rows; offsets }

let build n_vertices collected =
  (* [collected] arrives in ascending start order already (we scan
     vertices in order); offsets are a counting pass. *)
  let rows = Array.of_list (List.rev collected) in
  let offsets = Array.make (n_vertices + 1) 0 in
  Array.iter (fun r -> offsets.(r.verts.(0) + 1) <- offsets.(r.verts.(0) + 1) + 1) rows;
  for v = 0 to n_vertices - 1 do
    offsets.(v + 1) <- offsets.(v + 1) + offsets.(v)
  done;
  { rows; offsets }

let chain_arrivals net eids =
  (* Gather the chain's interactions straight out of the Static columns
     and run the flat Lemma-3 reduction; the chain is positional, so
     vertex identity (including a = final vertex for cycles) is
     irrelevant here. *)
  let k = List.length eids in
  let total = List.fold_left (fun acc e -> acc + Static.edge_n_inter net e) 0 eids in
  let times = Float.Array.create total and qtys = Float.Array.create total in
  let pos = Array.make total 0 in
  let off = ref 0 in
  List.iteri
    (fun p e ->
      for j = 0 to Static.edge_n_inter net e - 1 do
        Float.Array.set times !off (Static.edge_time net e j);
        Float.Array.set qtys !off (Static.edge_qty net e j);
        pos.(!off) <- p;
        incr off
      done)
    eids;
  Simplify.reduce_chain_cols ~k ~times ~qtys ~pos

let path_row net verts eids =
  let arrivals = chain_arrivals net eids in
  { verts; arrivals; flow = Interaction.total_qty arrivals }

(* Domain-parallel precompute: anchors are sharded with
   [Batch.map_reduce]; every chunk collects its rows newest-first (as
   the sequential loop did) and chunk lists are stitched back in
   anchor order, so the reversed list handed to the counting-sort
   [build] is identical to the sequential one for any job count. *)
let per_anchor ?(jobs = 1) net collect =
  let n = Static.n_vertices net in
  let collected =
    Tin_core.Batch.map_reduce ~jobs ~chunk:32 ~n
      ~init:(fun () -> ref [])
      ~body:(fun acc a -> collect a (fun row -> acc := row :: !acc))
      ~merge:(fun earlier later ->
        ref (List.rev_append (List.rev !later) !earlier))
      ()
  in
  build n !collected

let cycles2 ?jobs net =
  per_anchor ?jobs net (fun a emit ->
      Static.iter_succs net a (fun b e_ab ->
          match Static.find_edge net ~src:b ~dst:a with
          | Some e_ba -> emit (path_row net [| a; b |] [ e_ab; e_ba ])
          | None -> ()))

let cycles3 ?jobs net =
  per_anchor ?jobs net (fun a emit ->
      Static.iter_succs net a (fun b e_ab ->
          if b <> a then
            Static.iter_succs net b (fun c e_bc ->
                if c <> a && c <> b then
                  match Static.find_edge net ~src:c ~dst:a with
                  | Some e_ca -> emit (path_row net [| a; b; c |] [ e_ab; e_bc; e_ca ])
                  | None -> ())))

let chains2 ?jobs net =
  per_anchor ?jobs net (fun a emit ->
      Static.iter_succs net a (fun b e_ab ->
          Static.iter_succs net b (fun c e_bc ->
              if c <> a && c <> b then emit (path_row net [| a; b; c |] [ e_ab; e_bc ]))))

let memory_rows t =
  Array.fold_left (fun acc r -> acc + List.length r.arrivals) 0 t.rows
