module Simplify = Tin_core.Simplify

type row = { verts : Static.vertex array; arrivals : Interaction.t list; flow : float }

type t = { rows : row array; offsets : int array (* per vertex, length n+1 *) }

let rows t = t.rows
let n_rows t = Array.length t.rows

let for_start t v = Array.sub t.rows t.offsets.(v) (t.offsets.(v + 1) - t.offsets.(v))

let iter_start t v f =
  for k = t.offsets.(v) to t.offsets.(v + 1) - 1 do
    f t.rows.(k)
  done

let starts t =
  let acc = ref [] in
  for v = Array.length t.offsets - 2 downto 0 do
    if t.offsets.(v + 1) > t.offsets.(v) then acc := v :: !acc
  done;
  !acc

let of_rows ~n_vertices rows =
  let rows = Array.of_list rows in
  Array.sort (fun a b -> compare a.verts b.verts) rows;
  let offsets = Array.make (n_vertices + 1) 0 in
  Array.iter (fun r -> offsets.(r.verts.(0) + 1) <- offsets.(r.verts.(0) + 1) + 1) rows;
  for v = 0 to n_vertices - 1 do
    offsets.(v + 1) <- offsets.(v + 1) + offsets.(v)
  done;
  { rows; offsets }

let build n_vertices collected =
  (* [collected] arrives in ascending start order already (we scan
     vertices in order); offsets are a counting pass. *)
  let rows = Array.of_list (List.rev collected) in
  let offsets = Array.make (n_vertices + 1) 0 in
  Array.iter (fun r -> offsets.(r.verts.(0) + 1) <- offsets.(r.verts.(0) + 1) + 1) rows;
  for v = 0 to n_vertices - 1 do
    offsets.(v + 1) <- offsets.(v + 1) + offsets.(v)
  done;
  { rows; offsets }

let path_row net verts eids =
  (* Chain the edges and run the greedy scan via the shared Lemma-3
     reduction helper; the chain is positional, so vertex identity
     (including a = final vertex for cycles) is irrelevant here. *)
  let edges =
    List.map (fun e -> (Static.edge_dst net e, Array.to_list (Static.interactions net e))) eids
  in
  let arrivals = Simplify.reduce_chain_interactions edges in
  { verts; arrivals; flow = Interaction.total_qty arrivals }

let cycles2 net =
  let acc = ref [] in
  for a = 0 to Static.n_vertices net - 1 do
    Static.iter_succs net a (fun b e_ab ->
        match Static.find_edge net ~src:b ~dst:a with
        | Some e_ba -> acc := path_row net [| a; b |] [ e_ab; e_ba ] :: !acc
        | None -> ())
  done;
  build (Static.n_vertices net) !acc

let cycles3 net =
  let acc = ref [] in
  for a = 0 to Static.n_vertices net - 1 do
    Static.iter_succs net a (fun b e_ab ->
        if b <> a then
          Static.iter_succs net b (fun c e_bc ->
              if c <> a && c <> b then
                match Static.find_edge net ~src:c ~dst:a with
                | Some e_ca -> acc := path_row net [| a; b; c |] [ e_ab; e_bc; e_ca ] :: !acc
                | None -> ()))
  done;
  build (Static.n_vertices net) !acc

let chains2 net =
  let acc = ref [] in
  for a = 0 to Static.n_vertices net - 1 do
    Static.iter_succs net a (fun b e_ab ->
        Static.iter_succs net b (fun c e_bc ->
            if c <> a && c <> b then
              acc := path_row net [| a; b; c |] [ e_ab; e_bc ] :: !acc))
  done;
  build (Static.n_vertices net) !acc

let memory_rows t =
  Array.fold_left (fun acc r -> acc + List.length r.arrivals) 0 t.rows
