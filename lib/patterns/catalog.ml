module Endpoints = Tin_core.Endpoints
module Pipeline = Tin_core.Pipeline
module Simplify = Tin_core.Simplify

type rigid = P1 | P2 | P3 | P4 | P5 | P6
type relaxed = RP1 | RP2 | RP3
type pattern = Rigid of rigid | Relaxed of relaxed

let all_rigid = [ P1; P2; P3; P4; P5; P6 ]
let all_relaxed = [ RP1; RP2; RP3 ]
let all = List.map (fun p -> Rigid p) all_rigid @ List.map (fun p -> Relaxed p) all_relaxed

let pattern_name = function
  | Rigid P1 -> "P1"
  | Rigid P2 -> "P2"
  | Rigid P3 -> "P3"
  | Rigid P4 -> "P4"
  | Rigid P5 -> "P5"
  | Rigid P6 -> "P6"
  | Relaxed RP1 -> "RP1"
  | Relaxed RP2 -> "RP2"
  | Relaxed RP3 -> "RP3"

let rigid_pattern = function
  | P1 -> Pattern.make ~name:"P1" ~labels:[| 0; 1; 2 |] ~edges:[ (0, 1); (1, 2) ]
  | P2 -> Pattern.make ~name:"P2" ~labels:[| 0; 1; 0 |] ~edges:[ (0, 1); (1, 2) ]
  | P3 -> Pattern.make ~name:"P3" ~labels:[| 0; 1; 2; 0 |] ~edges:[ (0, 1); (1, 2); (2, 3) ]
  | P4 ->
      Pattern.make ~name:"P4" ~labels:[| 0; 1; 2; 0 |] ~edges:[ (0, 1); (1, 2); (2, 3); (1, 3) ]
  | P5 ->
      Pattern.make ~name:"P5" ~labels:[| 0; 1; 2; 3; 0 |]
        ~edges:[ (0, 1); (1, 4); (0, 2); (2, 3); (3, 4) ]
  | P6 ->
      Pattern.make ~name:"P6" ~labels:[| 0; 1; 2; 0 |]
        ~edges:[ (0, 1); (1, 2); (2, 3); (0, 2); (1, 3) ]

let needs_chains = function
  | Rigid P1 | Relaxed RP1 -> true
  | Rigid (P2 | P3 | P4 | P5 | P6) | Relaxed (RP2 | RP3) -> false

type result = { instances : int; total_flow : float; truncated : bool; timed_out : bool }

let avg_flow r = if r.instances = 0 then 0.0 else r.total_flow /. float_of_int r.instances

type tables = { l2 : Tables.t; l3 : Tables.t; c2 : Tables.t option }

let precompute ?(with_chains = false) net =
  {
    l2 = Tables.cycles2 net;
    l3 = Tables.cycles3 net;
    c2 = (if with_chains then Some (Tables.chains2 net) else None);
  }

(* Accumulator with early termination on an instance limit or a
   wall-clock deadline. *)
type acc = {
  mutable count : int;
  mutable flow : float;
  mutable truncated : bool;
  mutable timed_out : bool;
  limit : int;
  deadline : int64 option; (* monotonic ns *)
}

let fresh_acc ?time_budget_ms limit =
  let deadline =
    Option.map
      (fun ms -> Int64.add (Tin_util.Timer.now_ns ()) (Int64.of_float (ms *. 1e6)))
      time_budget_ms
  in
  { count = 0; flow = 0.0; truncated = false; timed_out = false; limit; deadline }

exception Done

let expired acc =
  match acc.deadline with
  | Some d when Tin_util.Timer.now_ns () > d -> true
  | _ -> false

(* For polling inside dry spells (no instances found for a while). *)
let stopper acc =
  let probes = ref 0 in
  fun () ->
    incr probes;
    if !probes land 0xFFF <> 0 then false
    else if expired acc then begin
      acc.truncated <- true;
      acc.timed_out <- true;
      true
    end
    else false

let add acc f =
  acc.count <- acc.count + 1;
  acc.flow <- acc.flow +. f;
  if acc.count >= acc.limit then begin
    acc.truncated <- true;
    raise Done
  end;
  if expired acc then begin
    acc.truncated <- true;
    acc.timed_out <- true;
    raise Done
  end

let finish acc =
  {
    instances = acc.count;
    total_flow = acc.flow;
    truncated = acc.truncated;
    timed_out = acc.timed_out;
  }

(* Greedy flow along a free-standing chain of edges given by edge ids
   (used by the on-the-fly GB paths: same semantics as the table
   rows). *)
let chain_flow net eids =
  let edges =
    List.map (fun e -> (Static.edge_dst net e, Array.to_list (Static.interactions net e))) eids
  in
  Interaction.total_qty (Simplify.reduce_chain_interactions edges)

(* Maximum flow of a cyclic instance anchored at [anchor]. *)
let cyclic_instance_flow net eids ~anchor =
  let g = Static.edges_to_graph net eids in
  let ep = Endpoints.split g ~vertex:(Static.label net anchor) in
  Pipeline.max_flow ep.Endpoints.graph ~source:ep.Endpoints.source ~sink:ep.Endpoints.sink

(* ------------------------------------------------------------------ *)
(* Graph browsing                                                      *)
(* ------------------------------------------------------------------ *)

let gb_custom ?(limit = max_int) ?time_budget_ms net pat =
  let acc = fresh_acc ?time_budget_ms limit in
  (try
     Pattern.browse
       ~should_stop:(fun () ->
         if expired acc then begin
           acc.truncated <- true;
           acc.timed_out <- true;
           true
         end
         else false)
       net pat
       (fun mu -> add acc (Pattern.instance_flow net pat mu))
   with Done -> ());
  finish acc

let gb_rigid ?limit ?time_budget_ms net r =
  gb_custom ?limit ?time_budget_ms net (rigid_pattern r)

(* Relaxed patterns aggregate the flows of all short paths per anchor
   (Section 5.3): one instance per anchor (RP2/RP3) or per endpoint
   pair (RP1). *)
let gb_relaxed ?(limit = max_int) ?time_budget_ms net r =
  let acc = fresh_acc ?time_budget_ms limit in
  let stop = stopper acc in
  let poll () = if stop () then raise Done in
  let n = Static.n_vertices net in
  (try
     match r with
     | RP2 ->
         for a = 0 to n - 1 do
           let flow = ref 0.0 and found = ref false in
           Static.iter_succs net a (fun b e_ab ->
               poll ();
               match Static.find_edge net ~src:b ~dst:a with
               | Some e_ba ->
                   found := true;
                   flow := !flow +. chain_flow net [ e_ab; e_ba ]
               | None -> ());
           if !found then add acc !flow
         done
     | RP3 ->
         for a = 0 to n - 1 do
           let flow = ref 0.0 and found = ref false in
           Static.iter_succs net a (fun b e_ab ->
               if b <> a then
                 Static.iter_succs net b (fun c e_bc ->
                     poll ();
                     if c <> a && c <> b then
                       match Static.find_edge net ~src:c ~dst:a with
                       | Some e_ca ->
                           found := true;
                           flow := !flow +. chain_flow net [ e_ab; e_bc; e_ca ]
                       | None -> ()));
           if !found then add acc !flow
         done
     | RP1 ->
         for a = 0 to n - 1 do
           (* Aggregate 2-hop chain flows per final vertex c. *)
           let per_c = Hashtbl.create 16 in
           Static.iter_succs net a (fun b e_ab ->
               Static.iter_succs net b (fun c e_bc ->
                   poll ();
                   if c <> a && c <> b then begin
                     let f = chain_flow net [ e_ab; e_bc ] in
                     let prev = Option.value ~default:0.0 (Hashtbl.find_opt per_c c) in
                     Hashtbl.replace per_c c (prev +. f)
                   end));
           (* Deterministic per-c order. *)
           Hashtbl.fold (fun c f l -> (c, f) :: l) per_c []
           |> List.sort compare
           |> List.iter (fun (_, f) -> add acc f)
         done
   with Done -> ());
  finish acc

let gb ?limit ?time_budget_ms net = function
  | Rigid r -> gb_rigid ?limit ?time_budget_ms net r
  | Relaxed r -> gb_relaxed ?limit ?time_budget_ms net r

(* ------------------------------------------------------------------ *)
(* Precomputation-based search                                         *)
(* ------------------------------------------------------------------ *)

let require_chains tables =
  match tables.c2 with
  | Some t -> t
  | None -> invalid_arg "Catalog.pb: pattern needs the 2-hop chain table (precompute ~with_chains:true)"

let edge_exn net ~src ~dst =
  match Static.find_edge net ~src ~dst with
  | Some e -> e
  | None -> assert false (* table rows are real paths *)

let pb ?(limit = max_int) ?time_budget_ms net tables pattern =
  let acc = fresh_acc ?time_budget_ms limit in
  let stop = stopper acc in
  let poll () = if stop () then raise Done in
  (try
     match pattern with
     | Rigid P1 ->
         Array.iter (fun r -> add acc r.Tables.flow) (Tables.rows (require_chains tables))
     | Rigid P2 -> Array.iter (fun r -> add acc r.Tables.flow) (Tables.rows tables.l2)
     | Rigid P3 -> Array.iter (fun r -> add acc r.Tables.flow) (Tables.rows tables.l3)
     | Rigid P4 ->
         (* 3-hop cycle + chord b→a: the precomputed flow is unusable
            (the cycle is not isolated in the instance); the instance
            is rebuilt and solved by the Section-4 pipeline. *)
         Array.iter
           (fun r ->
             poll ();
             let a = r.Tables.verts.(0) and b = r.Tables.verts.(1) and c = r.Tables.verts.(2) in
             match Static.find_edge net ~src:b ~dst:a with
             | Some e_ba ->
                 let eids =
                   [
                     edge_exn net ~src:a ~dst:b;
                     edge_exn net ~src:b ~dst:c;
                     edge_exn net ~src:c ~dst:a;
                     e_ba;
                   ]
                 in
                 add acc (cyclic_instance_flow net eids ~anchor:a)
             | None -> ())
           (Tables.rows tables.l3)
     | Rigid P5 ->
         (* Merge-join of L2 and L3 on the anchor vertex; flows add up
            because the two cycles are vertex-disjoint chains after the
            split (Lemma 2 applies to the joint instance). *)
         List.iter
           (fun a ->
             Tables.iter_start tables.l2 a (fun r2 ->
                 let b = r2.Tables.verts.(1) in
                 Tables.iter_start tables.l3 a (fun r3 ->
                     poll ();
                     let c = r3.Tables.verts.(1) and e = r3.Tables.verts.(2) in
                     if b <> c && b <> e then add acc (r2.Tables.flow +. r3.Tables.flow))))
           (Tables.starts tables.l2)
     | Rigid P6 ->
         Array.iter
           (fun r ->
             poll ();
             let a = r.Tables.verts.(0) and b = r.Tables.verts.(1) and c = r.Tables.verts.(2) in
             match (Static.find_edge net ~src:a ~dst:c, Static.find_edge net ~src:b ~dst:a) with
             | Some e_ac, Some e_ba ->
                 let eids =
                   [
                     edge_exn net ~src:a ~dst:b;
                     edge_exn net ~src:b ~dst:c;
                     edge_exn net ~src:c ~dst:a;
                     e_ac;
                     e_ba;
                   ]
                 in
                 add acc (cyclic_instance_flow net eids ~anchor:a)
             | _ -> ())
           (Tables.rows tables.l3)
     | Relaxed RP1 ->
         let c2 = require_chains tables in
         List.iter
           (fun a ->
             let per_c = Hashtbl.create 16 in
             Tables.iter_start c2 a (fun r ->
                 let c = r.Tables.verts.(2) in
                 let prev = Option.value ~default:0.0 (Hashtbl.find_opt per_c c) in
                 Hashtbl.replace per_c c (prev +. r.Tables.flow));
             Hashtbl.fold (fun c f l -> (c, f) :: l) per_c []
             |> List.sort compare
             |> List.iter (fun (_, f) -> add acc f))
           (Tables.starts c2)
     | Relaxed RP2 ->
         List.iter
           (fun a ->
             let flow = ref 0.0 in
             Tables.iter_start tables.l2 a (fun r -> flow := !flow +. r.Tables.flow);
             add acc !flow)
           (Tables.starts tables.l2)
     | Relaxed RP3 ->
         List.iter
           (fun a ->
             let flow = ref 0.0 in
             Tables.iter_start tables.l3 a (fun r -> flow := !flow +. r.Tables.flow);
             add acc !flow)
           (Tables.starts tables.l3)
   with Done -> ());
  finish acc
