module Endpoints = Tin_core.Endpoints
module Pipeline = Tin_core.Pipeline
module Simplify = Tin_core.Simplify
module Batch = Tin_core.Batch
module Obs = Tin_obs.Obs

let c_tickets = Obs.Counter.make "catalog.tickets"
let c_deadline_hits = Obs.Counter.make "catalog.deadline_hits"
let c_anchors = Obs.Counter.make "catalog.anchors"

type rigid = P1 | P2 | P3 | P4 | P5 | P6
type relaxed = RP1 | RP2 | RP3
type pattern = Rigid of rigid | Relaxed of relaxed

let all_rigid = [ P1; P2; P3; P4; P5; P6 ]
let all_relaxed = [ RP1; RP2; RP3 ]
let all = List.map (fun p -> Rigid p) all_rigid @ List.map (fun p -> Relaxed p) all_relaxed

let pattern_name = function
  | Rigid P1 -> "P1"
  | Rigid P2 -> "P2"
  | Rigid P3 -> "P3"
  | Rigid P4 -> "P4"
  | Rigid P5 -> "P5"
  | Rigid P6 -> "P6"
  | Relaxed RP1 -> "RP1"
  | Relaxed RP2 -> "RP2"
  | Relaxed RP3 -> "RP3"

let rigid_pattern = function
  | P1 -> Pattern.make ~name:"P1" ~labels:[| 0; 1; 2 |] ~edges:[ (0, 1); (1, 2) ]
  | P2 -> Pattern.make ~name:"P2" ~labels:[| 0; 1; 0 |] ~edges:[ (0, 1); (1, 2) ]
  | P3 -> Pattern.make ~name:"P3" ~labels:[| 0; 1; 2; 0 |] ~edges:[ (0, 1); (1, 2); (2, 3) ]
  | P4 ->
      Pattern.make ~name:"P4" ~labels:[| 0; 1; 2; 0 |] ~edges:[ (0, 1); (1, 2); (2, 3); (1, 3) ]
  | P5 ->
      Pattern.make ~name:"P5" ~labels:[| 0; 1; 2; 3; 0 |]
        ~edges:[ (0, 1); (1, 4); (0, 2); (2, 3); (3, 4) ]
  | P6 ->
      Pattern.make ~name:"P6" ~labels:[| 0; 1; 2; 0 |]
        ~edges:[ (0, 1); (1, 2); (2, 3); (0, 2); (1, 3) ]

let needs_chains = function
  | Rigid P1 | Relaxed RP1 -> true
  | Rigid (P2 | P3 | P4 | P5 | P6) | Relaxed (RP2 | RP3) -> false

type result = { instances : int; total_flow : float; truncated : bool; timed_out : bool }

let avg_flow r = if r.instances = 0 then 0.0 else r.total_flow /. float_of_int r.instances

type tables = { l2 : Tables.t; l3 : Tables.t; c2 : Tables.t option }

let precompute ?jobs ?(with_chains = false) net =
  {
    l2 = Tables.cycles2 ?jobs net;
    l3 = Tables.cycles3 ?jobs net;
    c2 = (if with_chains then Some (Tables.chains2 ?jobs net) else None);
  }

(* ------------------------------------------------------------------ *)
(* Shared search state                                                 *)
(* ------------------------------------------------------------------ *)

(* Both searches shard the anchor range (pattern vertex 0) across
   domains with [Batch.map_reduce].  A shared atomic ticket counter
   enforces the global instance limit; [stop] winds every domain down
   cooperatively on truncation or deadline, and the flag atomics
   record why.  Each chunk of anchors folds into a private [local]
   accumulator, and chunk accumulators merge in anchor order, so an
   untruncated search returns bit-identical results for every job
   count. *)
type shared = {
  limit : int;
  deadline : int64 option; (* monotonic ns *)
  tickets : int Atomic.t;
  stop : bool Atomic.t;
  truncated : bool Atomic.t;
  timed_out : bool Atomic.t;
}

type local = { mutable count : int; mutable flow : float }

let make_shared ?time_budget_ms limit =
  let deadline =
    Option.map
      (fun ms -> Int64.add (Tin_util.Timer.now_ns ()) (Int64.of_float (ms *. 1e6)))
      time_budget_ms
  in
  {
    limit;
    deadline;
    tickets = Atomic.make 0;
    stop = Atomic.make false;
    truncated = Atomic.make false;
    timed_out = Atomic.make false;
  }

exception Done

let expired sh =
  match sh.deadline with
  | Some d when Tin_util.Timer.now_ns () > d -> true
  | _ -> false

let time_out sh =
  Atomic.set sh.truncated true;
  (* Exchange rather than set: the deadline-hit counter records one hit
     per search even when several domains notice expiry together. *)
  if not (Atomic.exchange sh.timed_out true) then Obs.Counter.incr c_deadline_hits;
  Atomic.set sh.stop true

let truncate sh =
  Atomic.set sh.truncated true;
  Atomic.set sh.stop true

(* Unmasked stop check — for [Pattern.browse], which rate-limits its
   own polling. *)
let check_stop sh () =
  if Atomic.get sh.stop then true
  else if expired sh then begin
    time_out sh;
    true
  end
  else false

(* Self-masked variant for hand-rolled join loops (polling inside dry
   spells, when no instance is found for a while). *)
let stopper sh =
  let probes = ref 0 in
  fun () ->
    incr probes;
    if !probes land 0xFFF <> 0 then false else check_stop sh ()

let add sh local f =
  let ticket = Atomic.fetch_and_add sh.tickets 1 in
  Obs.Counter.incr c_tickets;
  if ticket >= sh.limit then begin
    (* Another domain's instance already consumed the last slot. *)
    truncate sh;
    raise Done
  end;
  local.count <- local.count + 1;
  local.flow <- local.flow +. f;
  if ticket = sh.limit - 1 then begin
    truncate sh;
    raise Done
  end;
  if expired sh then begin
    time_out sh;
    raise Done
  end

(* Chunk size for anchor sharding: fixed (never derived from [jobs])
   so that the merge tree — and hence float accumulation order — is
   the same for every job count. *)
let anchor_chunk = 16

(* Run [body local anchor] over every anchor and merge.  [Done] aborts
   one anchor's walk; the shared [stop] flag then keeps the remaining
   anchors from doing any real work.  [name] labels the observability
   spans (one per search plus, when tracing, one per anchor). *)
let search ?jobs sh ~name ~n body =
  let run_anchor local a =
    Obs.Counter.incr c_anchors;
    let go () = try body local a with Done -> () in
    if Obs.recording () then
      Obs.Span.with_ "catalog.anchor"
        ~args:[ ("pattern", name); ("anchor", string_of_int a) ]
        go
    else go ()
  in
  let run () =
    Batch.map_reduce ?jobs ~chunk:anchor_chunk ~stop:sh.stop ~n
      ~init:(fun () -> { count = 0; flow = 0.0 })
      ~body:run_anchor
      ~merge:(fun a b -> { count = a.count + b.count; flow = a.flow +. b.flow })
      ()
  in
  let merged =
    if Obs.recording () then
      Obs.Span.with_ "catalog.search"
        ~args:[ ("pattern", name); ("anchors", string_of_int n) ]
        run
    else run ()
  in
  {
    instances = merged.count;
    total_flow = merged.flow;
    truncated = Atomic.get sh.truncated;
    timed_out = Atomic.get sh.timed_out;
  }

(* Greedy flow along a free-standing chain of edges given by edge ids
   (used by the on-the-fly GB paths: same semantics as the table
   rows). *)
let chain_flow net eids = Interaction.total_qty (Tables.chain_arrivals net eids)

(* Maximum flow of a cyclic instance anchored at [anchor]. *)
let cyclic_instance_flow net eids ~anchor =
  let g = Static.edges_to_graph net eids in
  let ep = Endpoints.split g ~vertex:(Static.label net anchor) in
  Pipeline.max_flow ep.Endpoints.graph ~source:ep.Endpoints.source ~sink:ep.Endpoints.sink

(* ------------------------------------------------------------------ *)
(* Graph browsing                                                      *)
(* ------------------------------------------------------------------ *)

(* Hybrid mode (GB + tables, after Semertzidis & Pitoura's hybrid
   temporal pattern matching): when the pattern's edges form the
   single path 0→1→…→n-1, every instance found by browsing maps onto
   exactly one precomputed row — a 2/3-cycle when source and sink
   share a label, a 2-hop chain otherwise — so the per-instance flow
   is an O(log) table lookup instead of a subgraph rebuild plus a
   greedy/LP solve. *)
let simple_shape (pat : Pattern.t) =
  let path = List.init (pat.Pattern.n - 1) (fun i -> (i, i + 1)) in
  if List.sort compare pat.Pattern.edges <> path then `General
  else if Pattern.is_cyclic_shape pat then
    match pat.Pattern.n with 3 -> `Cycle2 | 4 -> `Cycle3 | _ -> `General
  else if pat.Pattern.n = 3 then `Chain2
  else `General

let instance_flow_fn ?tables net pat =
  let fallback mu = Pattern.instance_flow net pat mu in
  let lookup tbl key_of mu =
    match Tables.find tbl (key_of mu) with Some r -> r.Tables.flow | None -> fallback mu
  in
  match tables with
  | None -> fallback
  | Some tb -> (
      match simple_shape pat with
      | `Cycle2 -> lookup tb.l2 (fun mu -> [| mu.(0); mu.(1) |])
      | `Cycle3 -> lookup tb.l3 (fun mu -> [| mu.(0); mu.(1); mu.(2) |])
      | `Chain2 -> (
          match tb.c2 with
          | Some c2 -> lookup c2 (fun mu -> [| mu.(0); mu.(1); mu.(2) |])
          | None -> fallback)
      | `General -> fallback)

(* P5 is the one composite catalog shape the tables still cover: its
   instance is a 2-cycle [a→b→a] and a 3-cycle [a→c→e→a] joined only
   at the anchor, whose flows add (Lemma 2 after the split) — the same
   decomposition the PB merge-join uses. *)
let p5_hybrid_flow net tb pat mu =
  match
    (Tables.find tb.l2 [| mu.(0); mu.(1) |], Tables.find tb.l3 [| mu.(0); mu.(2); mu.(3) |])
  with
  | Some r2, Some r3 -> r2.Tables.flow +. r3.Tables.flow
  | _ -> Pattern.instance_flow net pat mu

let gb_with ?jobs ?(limit = max_int) ?time_budget_ms net pat flow_of =
  let sh = make_shared ?time_budget_ms limit in
  let body local a =
    Pattern.browse ~should_stop:(check_stop sh) ~anchor:a net pat
      (fun mu -> add sh local (flow_of mu))
  in
  search ?jobs sh ~name:pat.Pattern.name ~n:(Static.n_vertices net) body

let gb_custom ?jobs ?limit ?time_budget_ms ?tables net pat =
  gb_with ?jobs ?limit ?time_budget_ms net pat (instance_flow_fn ?tables net pat)

let gb_rigid ?jobs ?limit ?time_budget_ms ?tables net r =
  let pat = rigid_pattern r in
  let flow_of =
    match (r, tables) with
    | P5, Some tb -> p5_hybrid_flow net tb pat
    | _ -> instance_flow_fn ?tables net pat
  in
  gb_with ?jobs ?limit ?time_budget_ms net pat flow_of

(* Relaxed patterns aggregate the flows of all short paths per anchor
   (Section 5.3): one instance per anchor (RP2/RP3) or per endpoint
   pair (RP1). *)
let gb_relaxed ?jobs ?(limit = max_int) ?time_budget_ms net r =
  let sh = make_shared ?time_budget_ms limit in
  let body =
    match r with
    | RP2 ->
        fun local a ->
          let poll =
            let stop = stopper sh in
            fun () -> if stop () then raise Done
          in
          let flow = ref 0.0 and found = ref false in
          Static.iter_succs net a (fun b e_ab ->
              poll ();
              match Static.find_edge net ~src:b ~dst:a with
              | Some e_ba ->
                  found := true;
                  flow := !flow +. chain_flow net [ e_ab; e_ba ]
              | None -> ());
          if !found then add sh local !flow
    | RP3 ->
        fun local a ->
          let poll =
            let stop = stopper sh in
            fun () -> if stop () then raise Done
          in
          let flow = ref 0.0 and found = ref false in
          Static.iter_succs net a (fun b e_ab ->
              if b <> a then
                Static.iter_succs net b (fun c e_bc ->
                    poll ();
                    if c <> a && c <> b then
                      match Static.find_edge net ~src:c ~dst:a with
                      | Some e_ca ->
                          found := true;
                          flow := !flow +. chain_flow net [ e_ab; e_bc; e_ca ]
                      | None -> ()));
          if !found then add sh local !flow
    | RP1 ->
        fun local a ->
          let poll =
            let stop = stopper sh in
            fun () -> if stop () then raise Done
          in
          (* Aggregate 2-hop chain flows per final vertex c. *)
          let per_c = Hashtbl.create 16 in
          Static.iter_succs net a (fun b e_ab ->
              Static.iter_succs net b (fun c e_bc ->
                  poll ();
                  if c <> a && c <> b then begin
                    let f = chain_flow net [ e_ab; e_bc ] in
                    let prev = Option.value ~default:0.0 (Hashtbl.find_opt per_c c) in
                    Hashtbl.replace per_c c (prev +. f)
                  end));
          (* Deterministic per-c order. *)
          Hashtbl.fold (fun c f l -> (c, f) :: l) per_c []
          |> List.sort compare
          |> List.iter (fun (_, f) -> add sh local f)
  in
  search ?jobs sh ~name:(pattern_name (Relaxed r)) ~n:(Static.n_vertices net) body

let gb ?jobs ?limit ?time_budget_ms ?tables net = function
  | Rigid r -> gb_rigid ?jobs ?limit ?time_budget_ms ?tables net r
  | Relaxed r -> gb_relaxed ?jobs ?limit ?time_budget_ms net r

(* ------------------------------------------------------------------ *)
(* Precomputation-based search                                         *)
(* ------------------------------------------------------------------ *)

let require_chains tables =
  match tables.c2 with
  | Some t -> t
  | None -> invalid_arg "Catalog.pb: pattern needs the 2-hop chain table (precompute ~with_chains:true)"

let edge_exn net ~src ~dst =
  match Static.find_edge net ~src ~dst with
  | Some e -> e
  | None -> assert false (* table rows are real paths *)

(* Sum a start vertex's row flows; [false] when the vertex has no
   rows (its anchor contributes no relaxed instance). *)
let sum_start tbl a flow =
  let found = ref false in
  Tables.iter_start tbl a (fun r ->
      found := true;
      flow := !flow +. r.Tables.flow);
  !found

let pb ?jobs ?(limit = max_int) ?time_budget_ms net tables pattern =
  let sh = make_shared ?time_budget_ms limit in
  (* Per-anchor search bodies: every pattern's PB plan walks rows
     grouped by their start vertex, so the anchor range shards it
     exactly like GB.  Chain-table presence is checked eagerly, before
     any domain spawns. *)
  let body =
    match pattern with
    | Rigid P1 ->
        let c2 = require_chains tables in
        fun local a -> Tables.iter_start c2 a (fun r -> add sh local r.Tables.flow)
    | Rigid P2 -> fun local a -> Tables.iter_start tables.l2 a (fun r -> add sh local r.Tables.flow)
    | Rigid P3 -> fun local a -> Tables.iter_start tables.l3 a (fun r -> add sh local r.Tables.flow)
    | Rigid P4 ->
        (* 3-hop cycle + chord b→a: the precomputed flow is unusable
           (the cycle is not isolated in the instance); the instance
           is rebuilt and solved by the Section-4 pipeline. *)
        fun local a ->
          let poll =
            let stop = stopper sh in
            fun () -> if stop () then raise Done
          in
          Tables.iter_start tables.l3 a (fun r ->
              poll ();
              let b = r.Tables.verts.(1) and c = r.Tables.verts.(2) in
              match Static.find_edge net ~src:b ~dst:a with
              | Some e_ba ->
                  let eids =
                    [
                      edge_exn net ~src:a ~dst:b;
                      edge_exn net ~src:b ~dst:c;
                      edge_exn net ~src:c ~dst:a;
                      e_ba;
                    ]
                  in
                  add sh local (cyclic_instance_flow net eids ~anchor:a)
              | None -> ())
    | Rigid P5 ->
        (* Merge-join of L2 and L3 on the anchor vertex; flows add up
           because the two cycles are vertex-disjoint chains after the
           split (Lemma 2 applies to the joint instance). *)
        fun local a ->
          let poll =
            let stop = stopper sh in
            fun () -> if stop () then raise Done
          in
          Tables.iter_start tables.l2 a (fun r2 ->
              let b = r2.Tables.verts.(1) in
              Tables.iter_start tables.l3 a (fun r3 ->
                  poll ();
                  let c = r3.Tables.verts.(1) and e = r3.Tables.verts.(2) in
                  if b <> c && b <> e then add sh local (r2.Tables.flow +. r3.Tables.flow)))
    | Rigid P6 ->
        fun local a ->
          let poll =
            let stop = stopper sh in
            fun () -> if stop () then raise Done
          in
          Tables.iter_start tables.l3 a (fun r ->
              poll ();
              let b = r.Tables.verts.(1) and c = r.Tables.verts.(2) in
              match (Static.find_edge net ~src:a ~dst:c, Static.find_edge net ~src:b ~dst:a) with
              | Some e_ac, Some e_ba ->
                  let eids =
                    [
                      edge_exn net ~src:a ~dst:b;
                      edge_exn net ~src:b ~dst:c;
                      edge_exn net ~src:c ~dst:a;
                      e_ac;
                      e_ba;
                    ]
                  in
                  add sh local (cyclic_instance_flow net eids ~anchor:a)
              | _ -> ())
    | Relaxed RP1 ->
        let c2 = require_chains tables in
        fun local a ->
          let per_c = Hashtbl.create 16 in
          Tables.iter_start c2 a (fun r ->
              let c = r.Tables.verts.(2) in
              let prev = Option.value ~default:0.0 (Hashtbl.find_opt per_c c) in
              Hashtbl.replace per_c c (prev +. r.Tables.flow));
          Hashtbl.fold (fun c f l -> (c, f) :: l) per_c []
          |> List.sort compare
          |> List.iter (fun (_, f) -> add sh local f)
    | Relaxed RP2 ->
        fun local a ->
          let flow = ref 0.0 in
          if sum_start tables.l2 a flow then add sh local !flow
    | Relaxed RP3 ->
        fun local a ->
          let flow = ref 0.0 in
          if sum_start tables.l3 a flow then add sh local !flow
  in
  search ?jobs sh ~name:(pattern_name pattern) ~n:(Static.n_vertices net) body
