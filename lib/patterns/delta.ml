module Obs = Tin_obs.Obs

(* The streaming daemon applies deltas on a cadence; these make the
   incremental-versus-rebuild economics visible in a scrape. *)
let c_applies = Obs.Counter.make "delta.applies"
let c_rows = Obs.Counter.make "delta.rows_recomputed"

type t = { net : Static.t; tables : Catalog.tables; rows_recomputed : int }

let create ?with_chains net =
  { net; tables = Catalog.precompute ?with_chains net; rows_recomputed = 0 }

module PairSet = Set.Make (struct
  type t = int * int

  let compare = compare
end)

(* Rebuild the grown Static and translate a vertex of the old compact
   space into the new one (label spaces are shared; compact ids are
   not, because interning order may shift). *)
let grow old_net additions =
  let old_edges =
    List.init (Static.n_edges old_net) (fun e ->
        ( Static.label old_net (Static.edge_src old_net e),
          Static.label old_net (Static.edge_dst old_net e),
          Array.to_list (Static.interactions old_net e) ))
  in
  let net = Static.of_list (old_edges @ additions) in
  let translate v_old =
    match Static.vertex_of_label net (Static.label old_net v_old) with
    | Some v -> v
    | None -> assert false (* old edges are all preserved *)
  in
  (net, translate)

let edge_exists net u v = Static.find_edge net ~src:u ~dst:v <> None

(* New-space rebuild of one row.  The vertex list alone is ambiguous
   (a chain (a,b,c) may coexist with the cycle (a,b,c)), so the table
   kind decides the edge list. *)
let rebuild_row ~kind net verts =
  let e a b = Option.get (Static.find_edge net ~src:a ~dst:b) in
  let eids =
    match (kind, Array.to_list verts) with
    | `Cycle2, [ a; b ] -> [ e a b; e b a ]
    | `Cycle3, [ a; b; c ] -> [ e a b; e b c; e c a ]
    | `Chain2, [ a; b; c ] -> [ e a b; e b c ]
    | _ -> assert false
  in
  Tables.path_row net verts eids

(* Update one table.  [touched] is the set of directed new-space
   pairs with modified interaction sequences; [uses_touched] decides
   row staleness; [discover] enumerates candidate new rows per touched
   pair. *)
let update_table ~kind ~net ~translate ~touched ~uses_touched ~discover table =
  let rebuilt = Hashtbl.create 64 in
  let count = ref 0 in
  let keep = ref [] in
  Array.iter
    (fun r ->
      let verts = Array.map translate r.Tables.verts in
      if uses_touched verts then () (* stale: rebuilt below if still valid *)
      else keep := { r with Tables.verts } :: !keep)
    (Tables.rows table);
  (* Candidates: stale old rows plus brand-new rows through touched
     pairs. *)
  let candidates = Hashtbl.create 64 in
  Array.iter
    (fun r ->
      let verts = Array.map translate r.Tables.verts in
      if uses_touched verts then Hashtbl.replace candidates (Array.to_list verts) verts)
    (Tables.rows table);
  PairSet.iter
    (fun (u, v) ->
      List.iter
        (fun verts -> Hashtbl.replace candidates (Array.to_list verts) verts)
        (discover u v))
    touched;
  Hashtbl.iter
    (fun key verts ->
      if not (Hashtbl.mem rebuilt key) then begin
        Hashtbl.add rebuilt key ();
        incr count;
        keep := rebuild_row ~kind net verts :: !keep
      end)
    candidates;
  (Tables.of_rows ~n_vertices:(Static.n_vertices net) !keep, !count)

let apply t ~additions =
  List.iter
    (fun (s, d, _) -> if s = d then invalid_arg "Delta.apply: self-loop addition")
    additions;
  let net, translate = grow t.net additions in
  let touched =
    List.fold_left
      (fun acc (s, d, _) ->
        match (Static.vertex_of_label net s, Static.vertex_of_label net d) with
        | Some u, Some v -> PairSet.add (u, v) acc
        | _ -> acc)
      PairSet.empty additions
  in
  let tch u v = PairSet.mem (u, v) touched in
  (* cycles2: row (a,b) uses edges (a,b) and (b,a). *)
  let uses2 verts = tch verts.(0) verts.(1) || tch verts.(1) verts.(0) in
  let discover2 u v =
    if edge_exists net u v && edge_exists net v u then [ [| u; v |]; [| v; u |] ] else []
  in
  let l2, c2count =
    update_table ~kind:`Cycle2 ~net ~translate ~touched ~uses_touched:uses2
      ~discover:discover2 t.tables.Catalog.l2
  in
  (* cycles3: row (a,b,c) uses (a,b), (b,c), (c,a). *)
  let uses3 verts =
    tch verts.(0) verts.(1) || tch verts.(1) verts.(2) || tch verts.(2) verts.(0)
  in
  let discover3 u v =
    (* All 3-cycles containing directed edge (u,v), each in all three
       anchored rotations. *)
    if not (edge_exists net u v) then []
    else begin
      let out = ref [] in
      Static.iter_succs net v (fun w _ ->
          if w <> u && w <> v && edge_exists net w u then
            out := [| u; v; w |] :: [| v; w; u |] :: [| w; u; v |] :: !out);
      !out
    end
  in
  let l3, c3count =
    update_table ~kind:`Cycle3 ~net ~translate ~touched ~uses_touched:uses3
      ~discover:discover3 t.tables.Catalog.l3
  in
  (* chains2: row (a,b,c) uses (a,b) and (b,c). *)
  let uses_chain verts = tch verts.(0) verts.(1) || tch verts.(1) verts.(2) in
  let discover_chain u v =
    if not (edge_exists net u v) then []
    else begin
      let out = ref [] in
      Static.iter_succs net v (fun w _ -> if w <> u && w <> v then out := [| u; v; w |] :: !out);
      Static.iter_preds net u (fun w _ -> if w <> u && w <> v then out := [| w; u; v |] :: !out);
      !out
    end
  in
  let c2, chain_count =
    match t.tables.Catalog.c2 with
    | None -> (None, 0)
    | Some table ->
        let table, count =
          update_table ~kind:`Chain2 ~net ~translate ~touched ~uses_touched:uses_chain
            ~discover:discover_chain table
        in
        (Some table, count)
  in
  Obs.Counter.incr c_applies;
  Obs.Counter.add c_rows (c2count + c3count + chain_count);
  {
    net;
    tables = { Catalog.l2; l3; c2 };
    rows_recomputed = t.rows_recomputed + c2count + c3count + chain_count;
  }
