(** Incremental maintenance of the precomputed path tables.

    The paper assumes a static (historical) network and notes in a
    footnote that "for the case of graphs which grow over time, we can
    apply delta-updates to the precomputed data, to consider
    interactions that enter G after the initial precomputation".  This
    module implements that: given a network with precomputed tables
    and a batch of new interactions, it rebuilds only the table rows
    whose paths touch a modified edge — plus rows for paths that the
    new edges create — instead of recomputing every table from
    scratch.

    A row [(a, b)] or [(a, b, c)] depends only on the interaction
    sequences of its own edges (the greedy reduction of Lemma 3), so a
    row is stale exactly when one of those directed edges received new
    interactions.  The correctness property ([apply] ≡ full
    {!Catalog.precompute} on the grown network) is covered by the test
    suite, and the speed difference by the [ablation] benchmark. *)

type t = private {
  net : Static.t;
  tables : Catalog.tables;
  rows_recomputed : int;  (** Across all [apply] calls so far. *)
}

val create : ?with_chains:bool -> Static.t -> t
(** Initial precomputation (delegates to {!Catalog.precompute}). *)

val apply : t -> additions:(int * int * Interaction.t list) list -> t
(** [apply t ~additions] returns the state for the grown network.
    Additions are [(src_label, dst_label, interactions)] in the
    network's original label space; new vertices are allowed,
    self-loops are not.  The input state is unchanged. *)
