type t = { time : float; qty : float }

let make ~time ~qty =
  if Float.is_nan time then invalid_arg "Interaction.make: NaN time";
  if not (Float.is_finite time) then invalid_arg "Interaction.make: infinite time";
  if time < 0.0 then invalid_arg "Interaction.make: negative time";
  if Float.is_nan qty then invalid_arg "Interaction.make: NaN quantity";
  if not (Float.is_finite qty) then invalid_arg "Interaction.make: infinite quantity";
  if qty < 0.0 then invalid_arg "Interaction.make: negative quantity";
  { time; qty }

let unchecked ~time ~qty =
  if Float.is_nan time then invalid_arg "Interaction.unchecked: NaN time";
  if Float.is_nan qty then invalid_arg "Interaction.unchecked: NaN quantity";
  if qty < 0.0 then invalid_arg "Interaction.unchecked: negative quantity";
  { time; qty }

let time i = i.time
let qty i = i.qty

let compare a b =
  match Float.compare a.time b.time with
  | 0 -> Float.compare a.qty b.qty
  | c -> c

let equal a b = compare a b = 0

let pp ppf i = Format.fprintf ppf "(%g,%g)" i.time i.qty

let pp_list ppf is =
  Format.fprintf ppf "@[<h>%a@]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",") pp)
    is

let of_pair (time, qty) = make ~time ~qty
let sort is = List.stable_sort compare is
let of_pairs ps = sort (List.map of_pair ps)

let rec is_sorted = function
  | [] | [ _ ] -> true
  | a :: (b :: _ as rest) -> compare a b <= 0 && is_sorted rest

let total_qty is = List.fold_left (fun acc i -> acc +. i.qty) 0.0 is
