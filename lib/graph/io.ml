type error = { file : string; line : int; column : int; message : string }

exception Parse_error of error

let error_to_string e =
  let file = if e.file = "" then "<channel>" else e.file in
  (* Binary-snapshot errors have no line/column structure; they carry
     [line = 0] and render without the GNU position suffix. *)
  if e.line = 0 then Printf.sprintf "%s: %s" file e.message
  else Printf.sprintf "%s:%d:%d: %s" file e.line e.column e.message

let pp_error ppf e = Format.pp_print_string ppf (error_to_string e)

let src = Logs.Src.create "tin.graph.io" ~doc:"Interaction network I/O"

module Log = (val Logs.src_log src : Logs.LOG)

(* One CSV field: [text] as found, [column] the 1-based character
   offset of its first character in the line. *)
let split_fields line =
  let n = String.length line in
  let fields = ref [] in
  let start = ref 0 in
  for i = 0 to n do
    if i = n || line.[i] = ',' then begin
      fields := (String.sub line !start (i - !start), !start + 1) :: !fields;
      start := i + 1
    end
  done;
  List.rev !fields

(* Strict numeric field parsing: [int_of_string]/[float_of_string]
   accept OCaml literal syntax ("0x10", "1_000", "nan", "infinity");
   the on-disk format is plain decimal CSV, so NaN and infinities are
   data corruption, not numbers, and quantities/timestamps must be
   non-negative (Definition 1: interactions transfer non-negative
   quantities at real timestamps). *)
let field_error ~file ~line ~column message = Error { file; line; column; message }

let parse_vertex ~file ~line (text, column) what =
  let t = String.trim text in
  match int_of_string_opt t with
  | Some v -> Ok v
  | None -> field_error ~file ~line ~column ("malformed " ^ what ^ " (expected integer): " ^ t)

let parse_qty ~file ~line (text, column) what =
  let t = String.trim text in
  match float_of_string_opt t with
  | Some x when Float.is_nan x -> field_error ~file ~line ~column (what ^ " is NaN: " ^ t)
  | Some x when not (Float.is_finite x) ->
      field_error ~file ~line ~column (what ^ " is infinite: " ^ t)
  | Some x when x < 0.0 -> field_error ~file ~line ~column (what ^ " is negative: " ^ t)
  | Some x -> Ok x
  | None -> field_error ~file ~line ~column ("malformed " ^ what ^ " (expected number): " ^ t)

let ( let* ) = Result.bind

let parse_line ~file ~lineno line =
  match split_fields line with
  | [ a; b; t; q ] ->
      let* srcv = parse_vertex ~file ~line:lineno a "source vertex" in
      let* dstv = parse_vertex ~file ~line:lineno b "destination vertex" in
      let* time = parse_qty ~file ~line:lineno t "timestamp" in
      let* qty = parse_qty ~file ~line:lineno q "quantity" in
      Ok (srcv, dstv, Interaction.make ~time ~qty)
  | fields ->
      Error
        {
          file;
          line = lineno;
          column = 1;
          message = Printf.sprintf "expected 4 comma-separated fields, got %d" (List.length fields);
        }

let parse_channel ?(file = "") ic =
  let rec go lineno acc self_loops =
    match In_channel.input_line ic with
    | None ->
        if self_loops > 0 then Log.warn (fun m -> m "skipped %d self-loop interactions" self_loops);
        Ok (List.rev acc)
    | Some line ->
        let trimmed = String.trim line in
        if trimmed = "" || trimmed.[0] = '#' then go (lineno + 1) acc self_loops
        else if lineno = 1 && String.lowercase_ascii trimmed = "src,dst,time,qty" then
          go (lineno + 1) acc self_loops
        else begin
          match parse_line ~file ~lineno trimmed with
          | Ok (s, d, _) when s = d -> go (lineno + 1) acc (self_loops + 1)
          | Ok entry -> go (lineno + 1) (entry :: acc) self_loops
          | Error e -> Error e
        end
  in
  go 1 [] 0

let interactions_of_channel ic =
  match parse_channel ic with Ok entries -> entries | Error e -> raise (Parse_error e)

let group_entries entries =
  let tbl = Hashtbl.create 1024 in
  List.iter
    (fun (s, d, i) ->
      let existing = match Hashtbl.find_opt tbl (s, d) with Some l -> l | None -> [] in
      Hashtbl.replace tbl (s, d) (i :: existing))
    entries;
  Hashtbl.fold (fun (s, d) is acc -> (s, d, is) :: acc) tbl []

let graph_of_entries entries =
  List.fold_left
    (fun g (srcv, dstv, i) -> Graph.add_interaction g ~src:srcv ~dst:dstv i)
    Graph.empty entries

let load_csv_result path =
  In_channel.with_open_text path (fun ic ->
      Result.map (fun entries -> Static.of_list (group_entries entries))
        (parse_channel ~file:path ic))

let load_csv_graph_result path =
  In_channel.with_open_text path (fun ic ->
      Result.map graph_of_entries (parse_channel ~file:path ic))

let raise_on_error = function Ok x -> x | Error e -> raise (Parse_error e)

let load_csv path = raise_on_error (load_csv_result path)
let load_csv_graph path = raise_on_error (load_csv_graph_result path)

(* --- format-agnostic loaders ---------------------------------------

   A file starting with the snapshot magic is a binary [.tinb]
   snapshot; anything else takes the CSV path unchanged.  Snapshot
   failures are surfaced through the same [error] type (line 0 = no
   textual position). *)

let snapshot_error (e : Snapshot.error) =
  { file = e.Snapshot.file; line = 0; column = 0; message = e.Snapshot.message }

let structure_error path message = { file = path; line = 0; column = 0; message }

let load_compact_result path =
  if Snapshot.sniff path then
    Result.map_error snapshot_error (Snapshot.load_result path)
  else
    In_channel.with_open_text path (fun ic ->
        Result.map Compact.of_entries (parse_channel ~file:path ic))

let load_result path =
  if Snapshot.sniff path then
    match Snapshot.load_result path with
    | Error e -> Error (snapshot_error e)
    | Ok c -> (
        try Ok (Static.of_compact c)
        with Invalid_argument _ ->
          Error (structure_error path "snapshot contains self-loop interactions"))
  else load_csv_result path

let load_graph_result path =
  if Snapshot.sniff path then
    match Snapshot.load_result path with
    | Error e -> Error (snapshot_error e)
    | Ok c -> (
        try Ok (Compact.to_graph c)
        with Invalid_argument _ ->
          Error (structure_error path "snapshot contains self-loop interactions"))
  else load_csv_graph_result path

let load path = raise_on_error (load_result path)
let load_graph path = raise_on_error (load_graph_result path)
let load_compact path = raise_on_error (load_compact_result path)

let save_csv path g =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc "src,dst,time,qty\n";
      Graph.iter_edges
        (fun s d is ->
          List.iter
            (fun i ->
              Printf.fprintf oc "%d,%d,%.17g,%.17g\n" s d (Interaction.time i)
                (Interaction.qty i))
            is)
        g)

let to_dot ?(graph_name = "tin") ?source ?sink g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n  rankdir=LR;\n" graph_name);
  List.iter
    (fun v ->
      let shape =
        if Some v = source then " [shape=doublecircle,style=filled,fillcolor=palegreen]"
        else if Some v = sink then " [shape=doublecircle,style=filled,fillcolor=lightblue]"
        else ""
      in
      Buffer.add_string buf (Printf.sprintf "  %d%s;\n" v shape))
    (Graph.vertices g);
  Graph.iter_edges
    (fun s d is ->
      let lbl = Format.asprintf "%a" Interaction.pp_list is in
      Buffer.add_string buf (Printf.sprintf "  %d -> %d [label=\"%s\"];\n" s d lbl))
    g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
