exception Parse_error of { line : int; message : string }

let src = Logs.Src.create "tin.graph.io" ~doc:"Interaction network I/O"

module Log = (val Logs.src_log src : Logs.LOG)

let parse_line ~lineno line =
  match String.split_on_char ',' (String.trim line) with
  | [ a; b; t; q ] -> (
      try
        let srcv = int_of_string (String.trim a)
        and dstv = int_of_string (String.trim b)
        and time = float_of_string (String.trim t)
        and qty = float_of_string (String.trim q) in
        Some (srcv, dstv, Interaction.make ~time ~qty)
      with
      | Invalid_argument msg -> raise (Parse_error { line = lineno; message = msg })
      | Failure _ ->
          raise (Parse_error { line = lineno; message = "malformed number in: " ^ line }))
  | _ -> raise (Parse_error { line = lineno; message = "expected 4 comma-separated fields" })

let interactions_of_channel ic =
  let rec go lineno acc self_loops =
    match In_channel.input_line ic with
    | None ->
        if self_loops > 0 then Log.warn (fun m -> m "skipped %d self-loop interactions" self_loops);
        List.rev acc
    | Some line ->
        let trimmed = String.trim line in
        if trimmed = "" || trimmed.[0] = '#' then go (lineno + 1) acc self_loops
        else if lineno = 1 && String.lowercase_ascii trimmed = "src,dst,time,qty" then
          go (lineno + 1) acc self_loops
        else begin
          match parse_line ~lineno trimmed with
          | Some (s, d, _) when s = d -> go (lineno + 1) acc (self_loops + 1)
          | Some entry -> go (lineno + 1) (entry :: acc) self_loops
          | None -> go (lineno + 1) acc self_loops
        end
  in
  go 1 [] 0

let group_entries entries =
  let tbl = Hashtbl.create 1024 in
  List.iter
    (fun (s, d, i) ->
      let existing = match Hashtbl.find_opt tbl (s, d) with Some l -> l | None -> [] in
      Hashtbl.replace tbl (s, d) (i :: existing))
    entries;
  Hashtbl.fold (fun (s, d) is acc -> (s, d, is) :: acc) tbl []

let load_csv path =
  In_channel.with_open_text path (fun ic ->
      Static.of_list (group_entries (interactions_of_channel ic)))

let load_csv_graph path =
  In_channel.with_open_text path (fun ic ->
      List.fold_left
        (fun g (srcv, dstv, i) -> Graph.add_interaction g ~src:srcv ~dst:dstv i)
        Graph.empty (interactions_of_channel ic))

let save_csv path g =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc "src,dst,time,qty\n";
      Graph.iter_edges
        (fun s d is ->
          List.iter
            (fun i ->
              Printf.fprintf oc "%d,%d,%.17g,%.17g\n" s d (Interaction.time i)
                (Interaction.qty i))
            is)
        g)

let to_dot ?(graph_name = "tin") ?source ?sink g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n  rankdir=LR;\n" graph_name);
  List.iter
    (fun v ->
      let shape =
        if Some v = source then " [shape=doublecircle,style=filled,fillcolor=palegreen]"
        else if Some v = sink then " [shape=doublecircle,style=filled,fillcolor=lightblue]"
        else ""
      in
      Buffer.add_string buf (Printf.sprintf "  %d%s;\n" v shape))
    (Graph.vertices g);
  Graph.iter_edges
    (fun s d is ->
      let lbl = Format.asprintf "%a" Interaction.pp_list is in
      Buffer.add_string buf (Printf.sprintf "  %d -> %d [label=\"%s\"];\n" s d lbl))
    g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
