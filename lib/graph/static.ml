type vertex = int
type edge_id = int

type t = {
  labels : int array;
  label_index : (int, int) Hashtbl.t;
  out_idx : int array;
  (* out_dst.(k) / out_eid.(k) for k in [out_idx.(v), out_idx.(v+1)) *)
  out_dst : int array;
  out_eid : int array;
  in_idx : int array;
  in_src : int array;
  in_eid : int array;
  edge_src : int array;
  edge_dst : int array;
  (* Interaction columns: edge [e]'s sequence is the slice
     [edge_ptr.(e), edge_ptr.(e + 1)) of the unboxed time/qty columns,
     sorted by (time, qty).  Replaces the former boxed
     [Interaction.t array array] — same contents, no per-interaction
     allocation. *)
  edge_ptr : int array;
  inter_time : floatarray;
  inter_qty : floatarray;
}

(* CSR rows over an edge list sorted by (src, dst): the out side fills
   sequentially; the in side needs a counting pass and a per-row sort. *)
let adjacency ~n ~edge_src ~edge_dst =
  let m = Array.length edge_src in
  let out_idx = Array.make (n + 1) 0 and in_idx = Array.make (n + 1) 0 in
  Array.iter (fun s -> out_idx.(s + 1) <- out_idx.(s + 1) + 1) edge_src;
  Array.iter (fun d -> in_idx.(d + 1) <- in_idx.(d + 1) + 1) edge_dst;
  for v = 0 to n - 1 do
    out_idx.(v + 1) <- out_idx.(v + 1) + out_idx.(v);
    in_idx.(v + 1) <- in_idx.(v + 1) + in_idx.(v)
  done;
  let out_dst = Array.make m 0 and out_eid = Array.make m 0 in
  let in_src = Array.make m 0 and in_eid = Array.make m 0 in
  let out_pos = Array.copy out_idx and in_pos = Array.copy in_idx in
  for eid = 0 to m - 1 do
    let s = edge_src.(eid) and d = edge_dst.(eid) in
    out_dst.(out_pos.(s)) <- d;
    out_eid.(out_pos.(s)) <- eid;
    out_pos.(s) <- out_pos.(s) + 1;
    in_src.(in_pos.(d)) <- s;
    in_eid.(in_pos.(d)) <- eid;
    in_pos.(d) <- in_pos.(d) + 1
  done;
  (* Sort each in-row by source for determinism (out rows are already
     sorted because edges were sorted by (src, dst)). *)
  for v = 0 to n - 1 do
    let lo = in_idx.(v) and hi = in_idx.(v + 1) in
    let len = hi - lo in
    if len > 1 then begin
      let tmp = Array.init len (fun k -> (in_src.(lo + k), in_eid.(lo + k))) in
      Array.sort compare tmp;
      Array.iteri
        (fun k (s, e) ->
          in_src.(lo + k) <- s;
          in_eid.(lo + k) <- e)
        tmp
    end
  done;
  (out_idx, out_dst, out_eid, in_idx, in_src, in_eid)

let of_list edges =
  List.iter (fun (s, d, _) -> if s = d then invalid_arg "Static.of_list: self-loop") edges;
  (* Compact labels. *)
  let label_index = Hashtbl.create 1024 in
  let labels = ref [] in
  let intern l =
    match Hashtbl.find_opt label_index l with
    | Some v -> v
    | None ->
        let v = Hashtbl.length label_index in
        Hashtbl.add label_index l v;
        labels := l :: !labels;
        v
  in
  (* Merge duplicate (src, dst) pairs. *)
  let merged = Hashtbl.create 1024 in
  List.iter
    (fun (s, d, is) ->
      (* Intern source before destination so compact ids follow first
         appearance in reading order (deterministic and intuitive). *)
      let ks = intern s in
      let kd = intern d in
      let key = (ks, kd) in
      let existing = match Hashtbl.find_opt merged key with Some l -> l | None -> [] in
      Hashtbl.replace merged key (List.rev_append is existing))
    edges;
  let n = Hashtbl.length label_index in
  let labels = Array.of_list (List.rev !labels) in
  let m = Hashtbl.length merged in
  let edge_src = Array.make m 0
  and edge_dst = Array.make m 0
  and edge_ptr = Array.make (m + 1) 0 in
  let pairs = Hashtbl.fold (fun k v acc -> (k, v) :: acc) merged [] in
  let pairs = List.sort (fun ((a, b), _) ((c, d), _) -> compare (a, b) (c, d)) pairs in
  let sorted = Array.make m [||] in
  let n_inter = ref 0 in
  List.iteri
    (fun eid ((s, d), is) ->
      edge_src.(eid) <- s;
      edge_dst.(eid) <- d;
      let a = Array.of_list is in
      Array.sort Interaction.compare a;
      n_inter := !n_inter + Array.length a;
      edge_ptr.(eid + 1) <- !n_inter;
      sorted.(eid) <- a)
    pairs;
  let inter_time = Float.Array.create !n_inter and inter_qty = Float.Array.create !n_inter in
  Array.iteri
    (fun eid a ->
      Array.iteri
        (fun k i ->
          Float.Array.set inter_time (edge_ptr.(eid) + k) (Interaction.time i);
          Float.Array.set inter_qty (edge_ptr.(eid) + k) (Interaction.qty i))
        a)
    sorted;
  let out_idx, out_dst, out_eid, in_idx, in_src, in_eid = adjacency ~n ~edge_src ~edge_dst in
  {
    labels;
    label_index;
    out_idx;
    out_dst;
    out_eid;
    in_idx;
    in_src;
    in_eid;
    edge_src;
    edge_dst;
    edge_ptr;
    inter_time;
    inter_qty;
  }

let of_graph g =
  of_list (Graph.fold_edges (fun s d is acc -> (s, d, is) :: acc) g [])

let n_vertices t = Array.length t.labels
let n_edges t = Array.length t.edge_src
let n_interactions t = Float.Array.length t.inter_time
let label t v = t.labels.(v)
let vertex_of_label t l = Hashtbl.find_opt t.label_index l
let out_degree t v = t.out_idx.(v + 1) - t.out_idx.(v)
let in_degree t v = t.in_idx.(v + 1) - t.in_idx.(v)

let row_seq dst eid lo hi =
  let rec go k () =
    if k >= hi then Seq.Nil else Seq.Cons ((dst.(k), eid.(k)), go (k + 1))
  in
  go lo

let succs t v = row_seq t.out_dst t.out_eid t.out_idx.(v) t.out_idx.(v + 1)
let preds t v = row_seq t.in_src t.in_eid t.in_idx.(v) t.in_idx.(v + 1)

let iter_succs t v f =
  for k = t.out_idx.(v) to t.out_idx.(v + 1) - 1 do
    f t.out_dst.(k) t.out_eid.(k)
  done

let iter_preds t v f =
  for k = t.in_idx.(v) to t.in_idx.(v + 1) - 1 do
    f t.in_src.(k) t.in_eid.(k)
  done

let find_edge t ~src ~dst =
  (* Binary search over the sorted out-row of [src]. *)
  let lo = ref t.out_idx.(src) and hi = ref (t.out_idx.(src + 1) - 1) in
  let found = ref None in
  while !found = None && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let d = t.out_dst.(mid) in
    if d = dst then found := Some t.out_eid.(mid)
    else if d < dst then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let edge_src t e = t.edge_src.(e)
let edge_dst t e = t.edge_dst.(e)
let edge_n_inter t e = t.edge_ptr.(e + 1) - t.edge_ptr.(e)
let edge_time t e k = Float.Array.get t.inter_time (t.edge_ptr.(e) + k)
let edge_qty t e k = Float.Array.get t.inter_qty (t.edge_ptr.(e) + k)

let iter_edge_inter t e f =
  for k = t.edge_ptr.(e) to t.edge_ptr.(e + 1) - 1 do
    f (Float.Array.get t.inter_time k) (Float.Array.get t.inter_qty k)
  done

let interaction_list t e =
  List.init (edge_n_inter t e) (fun k ->
      Interaction.unchecked ~time:(edge_time t e k) ~qty:(edge_qty t e k))

let interactions t e = Array.of_list (interaction_list t e)

let edge_total_qty t e =
  let acc = ref 0.0 in
  for k = t.edge_ptr.(e) to t.edge_ptr.(e + 1) - 1 do
    acc := !acc +. Float.Array.get t.inter_qty k
  done;
  !acc

let edges_to_graph t eids =
  let seen = Hashtbl.create 16 in
  List.fold_left
    (fun g eid ->
      if Hashtbl.mem seen eid then g
      else begin
        Hashtbl.add seen eid ();
        Graph.add_edge g
          ~src:(label t t.edge_src.(eid))
          ~dst:(label t t.edge_dst.(eid))
          (interaction_list t eid)
      end)
    Graph.empty eids

let to_graph t = edges_to_graph t (List.init (n_edges t) Fun.id)

let vertices t = Seq.init (n_vertices t) Fun.id

let of_compact c =
  if Compact.has_self_loops c then invalid_arg "Static.of_compact: self-loop";
  let label_index = Hashtbl.create 1024 in
  let labels = ref [] in
  let intern l =
    match Hashtbl.find_opt label_index l with
    | Some v -> v
    | None ->
        let v = Hashtbl.length label_index in
        Hashtbl.add label_index l v;
        labels := l :: !labels;
        v
  in
  let m = Compact.n_edges c in
  (* First-appearance interning over the compact edge order (source
     before destination), matching the id-assignment policy of
     [of_list]; isolated vertices follow in label order.  Compact has
     already merged duplicate (src, dst) pairs and time-sorted each
     edge, so the per-edge slices copy over verbatim. *)
  let epairs =
    Array.init m (fun e ->
        let s = intern (Compact.label c (Compact.edge_src c e)) in
        let d = intern (Compact.label c (Compact.edge_dst c e)) in
        (s, d, e))
  in
  for v = 0 to Compact.n_vertices c - 1 do
    if Compact.out_degree c v = 0 && Compact.in_degree c v = 0 then
      ignore (intern (Compact.label c v))
  done;
  let n = Hashtbl.length label_index in
  let labels = Array.of_list (List.rev !labels) in
  Array.sort (fun (a, b, _) (x, y, _) -> compare (a, b) (x, y)) epairs;
  let edge_src = Array.make m 0
  and edge_dst = Array.make m 0
  and edge_ptr = Array.make (m + 1) 0 in
  let total = Compact.n_interactions c in
  let inter_time = Float.Array.create total and inter_qty = Float.Array.create total in
  let pos = ref 0 in
  Array.iteri
    (fun eid (s, d, ce) ->
      edge_src.(eid) <- s;
      edge_dst.(eid) <- d;
      for k = 0 to Compact.edge_n_inter c ce - 1 do
        let j = Compact.edge_inter c ce k in
        Float.Array.set inter_time !pos (Compact.inter_time c j);
        Float.Array.set inter_qty !pos (Compact.inter_qty c j);
        incr pos
      done;
      edge_ptr.(eid + 1) <- !pos)
    epairs;
  let out_idx, out_dst, out_eid, in_idx, in_src, in_eid = adjacency ~n ~edge_src ~edge_dst in
  {
    labels;
    label_index;
    out_idx;
    out_dst;
    out_eid;
    in_idx;
    in_src;
    in_eid;
    edge_src;
    edge_dst;
    edge_ptr;
    inter_time;
    inter_qty;
  }
