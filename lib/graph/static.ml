type vertex = int
type edge_id = int

type t = {
  labels : int array;
  label_index : (int, int) Hashtbl.t;
  out_idx : int array;
  (* out_dst.(k) / out_eid.(k) for k in [out_idx.(v), out_idx.(v+1)) *)
  out_dst : int array;
  out_eid : int array;
  in_idx : int array;
  in_src : int array;
  in_eid : int array;
  edge_src : int array;
  edge_dst : int array;
  edge_inter : Interaction.t array array;
  n_inter : int;
}

let of_list edges =
  List.iter (fun (s, d, _) -> if s = d then invalid_arg "Static.of_list: self-loop") edges;
  (* Compact labels. *)
  let label_index = Hashtbl.create 1024 in
  let labels = ref [] in
  let intern l =
    match Hashtbl.find_opt label_index l with
    | Some v -> v
    | None ->
        let v = Hashtbl.length label_index in
        Hashtbl.add label_index l v;
        labels := l :: !labels;
        v
  in
  (* Merge duplicate (src, dst) pairs. *)
  let merged = Hashtbl.create 1024 in
  List.iter
    (fun (s, d, is) ->
      (* Intern source before destination so compact ids follow first
         appearance in reading order (deterministic and intuitive). *)
      let ks = intern s in
      let kd = intern d in
      let key = (ks, kd) in
      let existing = match Hashtbl.find_opt merged key with Some l -> l | None -> [] in
      Hashtbl.replace merged key (List.rev_append is existing))
    edges;
  let n = Hashtbl.length label_index in
  let labels = Array.of_list (List.rev !labels) in
  let m = Hashtbl.length merged in
  let edge_src = Array.make m 0
  and edge_dst = Array.make m 0
  and edge_inter = Array.make m [||] in
  let pairs = Hashtbl.fold (fun k v acc -> (k, v) :: acc) merged [] in
  let pairs = List.sort (fun ((a, b), _) ((c, d), _) -> compare (a, b) (c, d)) pairs in
  let n_inter = ref 0 in
  List.iteri
    (fun eid ((s, d), is) ->
      edge_src.(eid) <- s;
      edge_dst.(eid) <- d;
      let a = Array.of_list is in
      Array.sort Interaction.compare a;
      n_inter := !n_inter + Array.length a;
      edge_inter.(eid) <- a)
    pairs;
  (* CSR rows: edges are already sorted by (src, dst), so the out side
     fills sequentially; the in side needs a counting pass. *)
  let out_idx = Array.make (n + 1) 0 and in_idx = Array.make (n + 1) 0 in
  Array.iter (fun s -> out_idx.(s + 1) <- out_idx.(s + 1) + 1) edge_src;
  Array.iter (fun d -> in_idx.(d + 1) <- in_idx.(d + 1) + 1) edge_dst;
  for v = 0 to n - 1 do
    out_idx.(v + 1) <- out_idx.(v + 1) + out_idx.(v);
    in_idx.(v + 1) <- in_idx.(v + 1) + in_idx.(v)
  done;
  let out_dst = Array.make m 0 and out_eid = Array.make m 0 in
  let in_src = Array.make m 0 and in_eid = Array.make m 0 in
  let out_pos = Array.copy out_idx and in_pos = Array.copy in_idx in
  for eid = 0 to m - 1 do
    let s = edge_src.(eid) and d = edge_dst.(eid) in
    out_dst.(out_pos.(s)) <- d;
    out_eid.(out_pos.(s)) <- eid;
    out_pos.(s) <- out_pos.(s) + 1;
    in_src.(in_pos.(d)) <- s;
    in_eid.(in_pos.(d)) <- eid;
    in_pos.(d) <- in_pos.(d) + 1
  done;
  (* Sort each in-row by source for determinism (out rows are already
     sorted because edges were sorted by (src, dst)). *)
  for v = 0 to n - 1 do
    let lo = in_idx.(v) and hi = in_idx.(v + 1) in
    let len = hi - lo in
    if len > 1 then begin
      let tmp = Array.init len (fun k -> (in_src.(lo + k), in_eid.(lo + k))) in
      Array.sort compare tmp;
      Array.iteri
        (fun k (s, e) ->
          in_src.(lo + k) <- s;
          in_eid.(lo + k) <- e)
        tmp
    end
  done;
  {
    labels;
    label_index;
    out_idx;
    out_dst;
    out_eid;
    in_idx;
    in_src;
    in_eid;
    edge_src;
    edge_dst;
    edge_inter;
    n_inter = !n_inter;
  }

let of_graph g =
  of_list (Graph.fold_edges (fun s d is acc -> (s, d, is) :: acc) g [])

let n_vertices t = Array.length t.labels
let n_edges t = Array.length t.edge_src
let n_interactions t = t.n_inter
let label t v = t.labels.(v)
let vertex_of_label t l = Hashtbl.find_opt t.label_index l
let out_degree t v = t.out_idx.(v + 1) - t.out_idx.(v)
let in_degree t v = t.in_idx.(v + 1) - t.in_idx.(v)

let row_seq dst eid lo hi =
  let rec go k () =
    if k >= hi then Seq.Nil else Seq.Cons ((dst.(k), eid.(k)), go (k + 1))
  in
  go lo

let succs t v = row_seq t.out_dst t.out_eid t.out_idx.(v) t.out_idx.(v + 1)
let preds t v = row_seq t.in_src t.in_eid t.in_idx.(v) t.in_idx.(v + 1)

let iter_succs t v f =
  for k = t.out_idx.(v) to t.out_idx.(v + 1) - 1 do
    f t.out_dst.(k) t.out_eid.(k)
  done

let iter_preds t v f =
  for k = t.in_idx.(v) to t.in_idx.(v + 1) - 1 do
    f t.in_src.(k) t.in_eid.(k)
  done

let find_edge t ~src ~dst =
  (* Binary search over the sorted out-row of [src]. *)
  let lo = ref t.out_idx.(src) and hi = ref (t.out_idx.(src + 1) - 1) in
  let found = ref None in
  while !found = None && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let d = t.out_dst.(mid) in
    if d = dst then found := Some t.out_eid.(mid)
    else if d < dst then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let edge_src t e = t.edge_src.(e)
let edge_dst t e = t.edge_dst.(e)
let interactions t e = t.edge_inter.(e)

let edge_total_qty t e =
  Array.fold_left (fun acc i -> acc +. Interaction.qty i) 0.0 t.edge_inter.(e)

let edges_to_graph t eids =
  let seen = Hashtbl.create 16 in
  List.fold_left
    (fun g eid ->
      if Hashtbl.mem seen eid then g
      else begin
        Hashtbl.add seen eid ();
        Graph.add_edge g
          ~src:(label t t.edge_src.(eid))
          ~dst:(label t t.edge_dst.(eid))
          (Array.to_list t.edge_inter.(eid))
      end)
    Graph.empty eids

let to_graph t = edges_to_graph t (List.init (n_edges t) Fun.id)

let vertices t = Seq.init (n_vertices t) Fun.id
