type vertex = int
type edge_id = int

type t = {
  labels : int array;
  label_index : (int, int) Hashtbl.t;
  (* Interaction columns, in global scan order (time, qty, src, dst).
     Compact ids are sorted-label ranks, so ordering by compact id and
     by raw label coincide and the scan order equals the order of
     [Graph.interactions_sorted]. *)
  inter_src : int array;
  inter_dst : int array;
  inter_time : floatarray;
  inter_qty : floatarray;
  (* Permutation of interaction ids grouped by edge: for edge [e],
     [by_edge.(k)] for [k] in [edge_off.(e), edge_off.(e+1)) lists the
     edge's interactions in time order (global indices are ascending
     within a group). *)
  by_edge : int array;
  edge_off : int array;
  edge_src : int array;
  edge_dst : int array;
  (* Edges are sorted by (src, dst), so the out-row of [v] is the
     contiguous edge-id range [out_off.(v), out_off.(v+1)); the in side
     indirects through [in_edge], edge ids sorted by (dst, src). *)
  out_off : int array;
  in_off : int array;
  in_edge : int array;
}

type columns = {
  c_labels : int array;
  c_src : int array;
  c_dst : int array;
  c_time : floatarray;
  c_qty : floatarray;
}

(* Builds the derived indexes over interaction columns already in
   global scan order.  All construction paths funnel through here so
   the adjacency layout cannot diverge between CSV, snapshot and
   in-memory origins. *)
let derive ~labels ~label_index ~inter_src ~inter_dst ~inter_time ~inter_qty =
  let n = Array.length labels and m = Array.length inter_src in
  (* Group interactions by edge with two stable counting passes (by
     dst, then by src): stability over ascending input indices makes
     the result ordered by (src, dst, global index) in O(m + n) — this
     is the snapshot-load hot path, where a comparison sort dominated
     the whole load. *)
  let by_edge =
    let count = Array.make (n + 1) 0 in
    Array.iter (fun d -> count.(d + 1) <- count.(d + 1) + 1) inter_dst;
    for v = 0 to n - 1 do
      count.(v + 1) <- count.(v + 1) + count.(v)
    done;
    let by_dst = Array.make m 0 in
    for k = 0 to m - 1 do
      let d = inter_dst.(k) in
      by_dst.(count.(d)) <- k;
      count.(d) <- count.(d) + 1
    done;
    let count = Array.make (n + 1) 0 in
    Array.iter (fun s -> count.(s + 1) <- count.(s + 1) + 1) inter_src;
    for v = 0 to n - 1 do
      count.(v + 1) <- count.(v + 1) + count.(v)
    done;
    let out = Array.make m 0 in
    Array.iter
      (fun j ->
        let s = inter_src.(j) in
        out.(count.(s)) <- j;
        count.(s) <- count.(s) + 1)
      by_dst;
    out
  in
  (* Edge boundaries: one edge per maximal (src, dst) run. *)
  let m_e = ref 0 in
  for k = 0 to m - 1 do
    if
      k = 0
      || inter_src.(by_edge.(k)) <> inter_src.(by_edge.(k - 1))
      || inter_dst.(by_edge.(k)) <> inter_dst.(by_edge.(k - 1))
    then incr m_e
  done;
  let m_e = !m_e in
  let edge_off = Array.make (m_e + 1) m in
  let edge_src = Array.make m_e 0 and edge_dst = Array.make m_e 0 in
  let e = ref (-1) in
  for k = 0 to m - 1 do
    let j = by_edge.(k) in
    if
      k = 0
      || inter_src.(j) <> inter_src.(by_edge.(k - 1))
      || inter_dst.(j) <> inter_dst.(by_edge.(k - 1))
    then begin
      incr e;
      edge_off.(!e) <- k;
      edge_src.(!e) <- inter_src.(j);
      edge_dst.(!e) <- inter_dst.(j)
    end
  done;
  let out_off = Array.make (n + 1) 0 and in_off = Array.make (n + 1) 0 in
  Array.iter (fun s -> out_off.(s + 1) <- out_off.(s + 1) + 1) edge_src;
  Array.iter (fun d -> in_off.(d + 1) <- in_off.(d + 1) + 1) edge_dst;
  for v = 0 to n - 1 do
    out_off.(v + 1) <- out_off.(v + 1) + out_off.(v);
    in_off.(v + 1) <- in_off.(v + 1) + in_off.(v)
  done;
  (* Counting pass over ascending edge ids: within each destination
     bucket edges arrive in (src, dst) order, i.e. sorted by source. *)
  let in_edge = Array.make m_e 0 in
  let in_pos = Array.copy in_off in
  for eid = 0 to m_e - 1 do
    let d = edge_dst.(eid) in
    in_edge.(in_pos.(d)) <- eid;
    in_pos.(d) <- in_pos.(d) + 1
  done;
  {
    labels;
    label_index;
    inter_src;
    inter_dst;
    inter_time;
    inter_qty;
    by_edge;
    edge_off;
    edge_src;
    edge_dst;
    out_off;
    in_off;
    in_edge;
  }

let index_of_labels labels =
  let label_index = Hashtbl.create (2 * Array.length labels + 1) in
  Array.iteri (fun i l -> Hashtbl.replace label_index l i) labels;
  label_index

let of_entries ?(vertices = []) entries =
  let module IS = Set.Make (Int) in
  let lset = List.fold_left (fun s v -> IS.add v s) IS.empty vertices in
  let lset = List.fold_left (fun s (a, b, _) -> IS.add a (IS.add b s)) lset entries in
  let labels = Array.of_seq (IS.to_seq lset) in
  let label_index = index_of_labels labels in
  let m = List.length entries in
  let tsrc = Array.make m 0 and tdst = Array.make m 0 in
  let ttime = Float.Array.create m and tqty = Float.Array.create m in
  List.iteri
    (fun k (a, b, i) ->
      tsrc.(k) <- Hashtbl.find label_index a;
      tdst.(k) <- Hashtbl.find label_index b;
      Float.Array.set ttime k (Interaction.time i);
      Float.Array.set tqty k (Interaction.qty i))
    entries;
  let perm = Array.init m Fun.id in
  Array.sort
    (fun x y ->
      let c = Float.compare (Float.Array.get ttime x) (Float.Array.get ttime y) in
      if c <> 0 then c
      else
        let c = Float.compare (Float.Array.get tqty x) (Float.Array.get tqty y) in
        if c <> 0 then c
        else
          let c = compare tsrc.(x) tsrc.(y) in
          if c <> 0 then c else compare tdst.(x) tdst.(y))
    perm;
  let inter_src = Array.make m 0 and inter_dst = Array.make m 0 in
  let inter_time = Float.Array.create m and inter_qty = Float.Array.create m in
  Array.iteri
    (fun k j ->
      inter_src.(k) <- tsrc.(j);
      inter_dst.(k) <- tdst.(j);
      Float.Array.set inter_time k (Float.Array.get ttime j);
      Float.Array.set inter_qty k (Float.Array.get tqty j))
    perm;
  derive ~labels ~label_index ~inter_src ~inter_dst ~inter_time ~inter_qty

let of_graph g =
  let entries =
    Graph.fold_edges
      (fun s d is acc -> List.fold_left (fun acc i -> (s, d, i) :: acc) acc is)
      g []
  in
  of_entries ~vertices:(Graph.vertices g) entries

(* --- accessors ---------------------------------------------------- *)

let n_vertices t = Array.length t.labels
let n_edges t = Array.length t.edge_src
let n_interactions t = Array.length t.inter_src
let label t v = t.labels.(v)
let vertex_of_label t l = Hashtbl.find_opt t.label_index l
let out_degree t v = t.out_off.(v + 1) - t.out_off.(v)
let in_degree t v = t.in_off.(v + 1) - t.in_off.(v)

let inter_src t k = t.inter_src.(k)
let inter_dst t k = t.inter_dst.(k)
let inter_time t k = Float.Array.get t.inter_time k
let inter_qty t k = Float.Array.get t.inter_qty k

let edge_src t e = t.edge_src.(e)
let edge_dst t e = t.edge_dst.(e)
let edge_inter_range t e = (t.edge_off.(e), t.edge_off.(e + 1))
let edge_n_inter t e = t.edge_off.(e + 1) - t.edge_off.(e)
let edge_inter t e k = t.by_edge.(t.edge_off.(e) + k)

let iter_edge_inter t e f =
  for k = t.edge_off.(e) to t.edge_off.(e + 1) - 1 do
    let j = t.by_edge.(k) in
    f (Float.Array.get t.inter_time j) (Float.Array.get t.inter_qty j)
  done

let edge_interactions t e =
  List.init (edge_n_inter t e) (fun k ->
      let j = edge_inter t e k in
      Interaction.unchecked ~time:(inter_time t j) ~qty:(inter_qty t j))

let edge_total_qty t e =
  let acc = ref 0.0 in
  for k = t.edge_off.(e) to t.edge_off.(e + 1) - 1 do
    acc := !acc +. Float.Array.get t.inter_qty t.by_edge.(k)
  done;
  !acc

let iter_succs t v f =
  for e = t.out_off.(v) to t.out_off.(v + 1) - 1 do
    f t.edge_dst.(e) e
  done

let iter_preds t v f =
  for k = t.in_off.(v) to t.in_off.(v + 1) - 1 do
    let e = t.in_edge.(k) in
    f t.edge_src.(e) e
  done

let find_edge t ~src ~dst =
  let lo = ref t.out_off.(src) and hi = ref (t.out_off.(src + 1) - 1) in
  let found = ref None in
  while !found = None && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let d = t.edge_dst.(mid) in
    if d = dst then found := Some mid else if d < dst then lo := mid + 1 else hi := mid - 1
  done;
  !found

let has_self_loops t =
  let rec go e = e < n_edges t && (t.edge_src.(e) = t.edge_dst.(e) || go (e + 1)) in
  go 0

let total_qty t =
  let acc = ref 0.0 in
  for k = 0 to n_interactions t - 1 do
    acc := !acc +. Float.Array.get t.inter_qty k
  done;
  !acc

let iter_grouped t f =
  for e = 0 to n_edges t - 1 do
    let s = t.labels.(t.edge_src.(e)) and d = t.labels.(t.edge_dst.(e)) in
    for k = t.edge_off.(e) to t.edge_off.(e + 1) - 1 do
      let j = t.by_edge.(k) in
      f s d
        (Interaction.unchecked
           ~time:(Float.Array.get t.inter_time j)
           ~qty:(Float.Array.get t.inter_qty j))
    done
  done

let to_graph t =
  let g = ref Graph.empty in
  Array.iter (fun l -> g := Graph.add_vertex !g l) t.labels;
  for e = 0 to n_edges t - 1 do
    g :=
      Graph.add_edge !g
        ~src:t.labels.(t.edge_src.(e))
        ~dst:t.labels.(t.edge_dst.(e))
        (edge_interactions t e)
  done;
  !g

let equal a b =
  let floatarray_equal x y =
    Float.Array.length x = Float.Array.length y
    &&
    let rec go k =
      k >= Float.Array.length x
      || (Float.compare (Float.Array.get x k) (Float.Array.get y k) = 0 && go (k + 1))
    in
    go 0
  in
  a.labels = b.labels && a.inter_src = b.inter_src && a.inter_dst = b.inter_dst
  && floatarray_equal a.inter_time b.inter_time
  && floatarray_equal a.inter_qty b.inter_qty

(* --- raw columns (snapshot interchange) --------------------------- *)

let columns t =
  {
    c_labels = t.labels;
    c_src = t.inter_src;
    c_dst = t.inter_dst;
    c_time = t.inter_time;
    c_qty = t.inter_qty;
  }

let of_columns { c_labels; c_src; c_dst; c_time; c_qty } =
  let n = Array.length c_labels and m = Array.length c_src in
  if Array.length c_dst <> m || Float.Array.length c_time <> m || Float.Array.length c_qty <> m
  then Error "interaction columns have inconsistent lengths"
  else begin
    (* The validation loops are on the snapshot-load hot path: plain
       comparisons only, the message is formatted once on the first
       failure. *)
    let err = ref None in
    let fail fmt = Printf.ksprintf (fun s -> err := Some s) fmt in
    (try
       for v = 1 to n - 1 do
         if c_labels.(v - 1) >= c_labels.(v) then begin
           fail "label column not strictly increasing";
           raise Exit
         end
       done;
       for k = 0 to m - 1 do
         let s = c_src.(k) and d = c_dst.(k) in
         let tm = Float.Array.get c_time k and q = Float.Array.get c_qty k in
         if s < 0 || s >= n then begin
           fail "interaction %d: source id out of range" k;
           raise Exit
         end;
         if d < 0 || d >= n then begin
           fail "interaction %d: destination id out of range" k;
           raise Exit
         end;
         if Float.is_nan tm then begin
           fail "interaction %d: NaN time" k;
           raise Exit
         end;
         if Float.is_nan q then begin
           fail "interaction %d: NaN quantity" k;
           raise Exit
         end;
         if q < 0.0 then begin
           fail "interaction %d: negative quantity" k;
           raise Exit
         end;
         if k > 0 then begin
           let c = Float.compare (Float.Array.get c_time (k - 1)) tm in
           let c = if c <> 0 then c else Float.compare (Float.Array.get c_qty (k - 1)) q in
           let c = if c <> 0 then c else compare c_src.(k - 1) s in
           let c = if c <> 0 then c else compare c_dst.(k - 1) d in
           if c > 0 then begin
             fail "interaction %d: columns not in global scan order" k;
             raise Exit
           end
         end
       done
     with Exit -> ());
    match !err with
    | Some msg -> Error msg
    | None ->
        Ok
          (derive ~labels:c_labels ~label_index:(index_of_labels c_labels) ~inter_src:c_src
             ~inter_dst:c_dst ~inter_time:c_time ~inter_qty:c_qty)
  end
