(* Versioned binary snapshot of a Compact network.

   Layout (all integers little-endian, fixed width; offsets in bytes):

     0   magic "TINB" (4 bytes)
     4   u32 version (currently 1)
     8   u32 flags (0; reserved)
     12  u32 reserved (0)
     16  u64 n_vertices
     24  u64 n_interactions
     32  labels   : i64[n_vertices]      (compact id -> raw label)
     ..  src      : u32[n_interactions]  (compact ids, scan order)
     ..  dst      : u32[n_interactions]
     ..  time     : f64[n_interactions]  (IEEE-754 bits)
     ..  qty      : f64[n_interactions]
     end u32 CRC32 (IEEE, reflected 0xEDB88320) over all preceding bytes

   The header is 32 bytes and every f64 column lands on an 8-byte
   boundary (32 + 8n, then + 4m + 4m), so the file can be mapped and
   read in place by other tooling.  Columns are stored in the global
   scan order (time, qty, src, dst); the loader re-validates that
   invariant rather than trusting it. *)

type error = { file : string; message : string }

let error_to_string e = Printf.sprintf "%s: %s" e.file e.message

exception Error of error

let magic = "TINB"
let version = 1
let header_bytes = 32

(* --- CRC32 (IEEE), slicing-by-8 ------------------------------------

   The checksum runs over the whole file on every load, so the classic
   byte-at-a-time loop (~4 ns/byte) would be a fixed tax rivalling the
   column parse.  Slicing-by-8 consumes 8 bytes per step through eight
   precomputed tables: tables.(i) maps a byte to its CRC contribution
   i+1 positions before the end of the block. *)

let crc_tables =
  lazy
    (let t0 =
       Array.init 256 (fun n ->
           let c = ref n in
           for _ = 0 to 7 do
             c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
           done;
           !c)
     in
     let tabs = Array.init 8 (fun _ -> Array.make 256 0) in
     Array.blit t0 0 tabs.(0) 0 256;
     for i = 1 to 7 do
       for j = 0 to 255 do
         let c = tabs.(i - 1).(j) in
         tabs.(i).(j) <- t0.(c land 0xFF) lxor (c lsr 8)
       done
     done;
     tabs)

let crc32 buf ~pos ~len =
  let tabs = Lazy.force crc_tables in
  let t0 = tabs.(0)
  and t1 = tabs.(1)
  and t2 = tabs.(2)
  and t3 = tabs.(3)
  and t4 = tabs.(4)
  and t5 = tabs.(5)
  and t6 = tabs.(6)
  and t7 = tabs.(7) in
  let c = ref 0xFFFFFFFF in
  let i = ref pos in
  let stop8 = pos + (len land lnot 7) in
  while !i < stop8 do
    let lo = Int32.to_int (Bytes.get_int32_le buf !i) land 0xFFFFFFFF in
    let hi = Int32.to_int (Bytes.get_int32_le buf (!i + 4)) land 0xFFFFFFFF in
    let x = !c lxor lo in
    c :=
      t7.(x land 0xFF)
      lxor t6.((x lsr 8) land 0xFF)
      lxor t5.((x lsr 16) land 0xFF)
      lxor t4.((x lsr 24) land 0xFF)
      lxor t3.(hi land 0xFF)
      lxor t2.((hi lsr 8) land 0xFF)
      lxor t1.((hi lsr 16) land 0xFF)
      lxor t0.((hi lsr 24) land 0xFF);
    i := !i + 8
  done;
  while !i < pos + len do
    c := t0.((!c lxor Char.code (Bytes.unsafe_get buf !i)) land 0xFF) lxor (!c lsr 8);
    incr i
  done;
  !c lxor 0xFFFFFFFF

(* --- save ---------------------------------------------------------- *)

let payload_bytes ~n ~m = (8 * n) + (24 * m)

let save path c =
  let cols = Compact.columns c in
  let n = Array.length cols.Compact.c_labels in
  let m = Array.length cols.Compact.c_src in
  let total = header_bytes + payload_bytes ~n ~m + 4 in
  let buf = Bytes.create total in
  Bytes.blit_string magic 0 buf 0 4;
  Bytes.set_int32_le buf 4 (Int32.of_int version);
  Bytes.set_int32_le buf 8 0l;
  Bytes.set_int32_le buf 12 0l;
  Bytes.set_int64_le buf 16 (Int64.of_int n);
  Bytes.set_int64_le buf 24 (Int64.of_int m);
  let off = ref header_bytes in
  Array.iter
    (fun l ->
      Bytes.set_int64_le buf !off (Int64.of_int l);
      off := !off + 8)
    cols.Compact.c_labels;
  Array.iter
    (fun v ->
      Bytes.set_int32_le buf !off (Int32.of_int v);
      off := !off + 4)
    cols.Compact.c_src;
  Array.iter
    (fun v ->
      Bytes.set_int32_le buf !off (Int32.of_int v);
      off := !off + 4)
    cols.Compact.c_dst;
  Float.Array.iter
    (fun x ->
      Bytes.set_int64_le buf !off (Int64.bits_of_float x);
      off := !off + 8)
    cols.Compact.c_time;
  Float.Array.iter
    (fun x ->
      Bytes.set_int64_le buf !off (Int64.bits_of_float x);
      off := !off + 8)
    cols.Compact.c_qty;
  assert (!off = total - 4);
  Bytes.set_int32_le buf !off (Int32.of_int (crc32 buf ~pos:0 ~len:(total - 4)));
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc buf)

(* --- load ---------------------------------------------------------- *)

let u32_at buf off = Int32.to_int (Bytes.get_int32_le buf off) land 0xFFFFFFFF

let load_result path =
  let err message = Result.Error { file = path; message } in
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error m -> Result.Error { file = path; message = m }
  | raw ->
      (* Read-only from here on: the unsafe cast never mutates. *)
      let buf = Bytes.unsafe_of_string raw in
      let len = Bytes.length buf in
      if len < 4 || Bytes.sub_string buf 0 4 <> magic then
        err "bad magic (not a .tinb snapshot)"
      else if len < header_bytes + 4 then
        err (Printf.sprintf "truncated header (%d bytes, need at least %d)" len (header_bytes + 4))
      else begin
        let v = u32_at buf 4 in
        if v <> version then
          err (Printf.sprintf "unsupported snapshot version %d (expected %d)" v version)
        else begin
          let n64 = Bytes.get_int64_le buf 16 and m64 = Bytes.get_int64_le buf 24 in
          (* An honest snapshot is never larger than its file; bounding
             the counts by the length first keeps all the size
             arithmetic inside native int range. *)
          let fits x = Int64.compare x 0L >= 0 && Int64.compare x (Int64.of_int len) <= 0 in
          if not (fits n64 && fits m64) then
            err
              (Printf.sprintf "implausible counts (n_vertices=%Ld, n_interactions=%Ld for a %d-byte file)"
                 n64 m64 len)
          else begin
            let n = Int64.to_int n64 and m = Int64.to_int m64 in
            let expected = header_bytes + payload_bytes ~n ~m + 4 in
            if len <> expected then
              err (Printf.sprintf "truncated snapshot: expected %d bytes, got %d" expected len)
            else begin
              let stored = u32_at buf (len - 4) in
              let computed = crc32 buf ~pos:0 ~len:(len - 4) in
              if stored <> computed then
                err (Printf.sprintf "checksum mismatch (stored %08x, computed %08x)" stored computed)
              else begin
                let labels = Array.make n 0 in
                for v = 0 to n - 1 do
                  labels.(v) <- Int64.to_int (Bytes.get_int64_le buf (header_bytes + (8 * v)))
                done;
                let src_base = header_bytes + (8 * n) in
                let dst_base = src_base + (4 * m) in
                let time_base = dst_base + (4 * m) in
                let qty_base = time_base + (8 * m) in
                let src = Array.make m 0 and dst = Array.make m 0 in
                let time = Float.Array.create m and qty = Float.Array.create m in
                for k = 0 to m - 1 do
                  src.(k) <- u32_at buf (src_base + (4 * k));
                  dst.(k) <- u32_at buf (dst_base + (4 * k));
                  Float.Array.set time k
                    (Int64.float_of_bits (Bytes.get_int64_le buf (time_base + (8 * k))));
                  Float.Array.set qty k
                    (Int64.float_of_bits (Bytes.get_int64_le buf (qty_base + (8 * k))))
                done;
                match
                  Compact.of_columns
                    {
                      Compact.c_labels = labels;
                      c_src = src;
                      c_dst = dst;
                      c_time = time;
                      c_qty = qty;
                    }
                with
                | Ok c -> Ok c
                | Result.Error message -> err message
              end
            end
          end
        end
      end

let load path = match load_result path with Ok c -> c | Result.Error e -> raise (Error e)

let sniff path =
  match
    In_channel.with_open_bin path (fun ic ->
        match In_channel.really_input_string ic 4 with
        | Some head -> head = magic
        | None -> false)
  with
  | ok -> ok
  | exception Sys_error _ -> false
