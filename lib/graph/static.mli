(** Compiled, immutable CSR view of an interaction network.

    Pattern enumeration (Section 5) browses adjacency lists of the
    whole network millions of times; the persistent {!Graph} is built
    for algorithmic surgery on small subgraphs, not for that.  This
    module compiles an edge list into compressed sparse rows with
    O(1) neighbour iteration and O(log d) edge lookup.

    Vertex identifiers of the input are arbitrary integers; they are
    compacted to [0 .. n-1] internally, and the original labels remain
    available through {!label} / {!vertex_of_label}. *)

type vertex = int
(** Compact vertex id in [0 .. n_vertices - 1]. *)

type edge_id = int
(** Dense edge id in [0 .. n_edges - 1]. *)

type t

val of_list : (int * int * Interaction.t list) list -> t
(** [of_list edges] compiles [(src_label, dst_label, interactions)]
    triples.  Duplicate [(src, dst)] entries are merged; interactions
    are sorted by time.  Self-loops are rejected. *)

val of_graph : Graph.t -> t

val of_compact : Compact.t -> t
(** Compiles a flat {!Compact} substrate (e.g. loaded from a [.tinb]
    snapshot) without going through the persistent graph.  Ids are
    assigned by first appearance over the compact edge order — the same
    policy as {!of_list} — with isolated vertices interned last.
    @raise Invalid_argument if the substrate contains a self-loop. *)

val n_vertices : t -> int
val n_edges : t -> int
val n_interactions : t -> int

val label : t -> vertex -> int
(** Original integer label of a compact vertex id. *)

val vertex_of_label : t -> int -> vertex option

val out_degree : t -> vertex -> int
val in_degree : t -> vertex -> int

val succs : t -> vertex -> (vertex * edge_id) Seq.t
(** Successors in increasing compact-id order with the connecting edge. *)

val preds : t -> vertex -> (vertex * edge_id) Seq.t

val iter_succs : t -> vertex -> (vertex -> edge_id -> unit) -> unit
val iter_preds : t -> vertex -> (vertex -> edge_id -> unit) -> unit

val find_edge : t -> src:vertex -> dst:vertex -> edge_id option
(** Binary search in the CSR row. *)

val edge_src : t -> edge_id -> vertex
val edge_dst : t -> edge_id -> vertex

val interactions : t -> edge_id -> Interaction.t array
(** Time-sorted interactions of an edge, materialised from the unboxed
    columns (a fresh array per call — prefer {!edge_time}/{!edge_qty}
    or {!iter_edge_inter} in hot loops). *)

val edge_n_inter : t -> edge_id -> int
(** Number of interactions on an edge. *)

val edge_time : t -> edge_id -> int -> float
(** [edge_time t e k]: timestamp of the [k]-th (time-ordered)
    interaction of edge [e], read straight from the unboxed column. *)

val edge_qty : t -> edge_id -> int -> float

val iter_edge_inter : t -> edge_id -> (float -> float -> unit) -> unit
(** [iter_edge_inter t e f] calls [f time qty] over the edge's
    interactions in time order without allocating. *)

val edge_total_qty : t -> edge_id -> float

val to_graph : t -> Graph.t
(** Whole network as a persistent graph (original labels). *)

val edges_to_graph : t -> edge_id list -> Graph.t
(** Persistent subgraph induced by a set of edges (original labels);
    duplicate ids are harmless. *)

val vertices : t -> vertex Seq.t
