(** Persistent temporal interaction network (Definition 1).

    A directed graph whose vertices are integers and whose edges carry
    time-sorted interaction sequences.  The structure is persistent:
    the preprocessing (Algorithm 1) and simplification (Algorithm 2)
    passes return new graphs, leaving their input intact — which keeps
    the pipeline code and the tests honest.

    Self-loops are rejected: an interaction from a vertex to itself
    cannot carry source-to-sink flow, and the paper's extraction step
    (Section 6.2) splits cyclic seed vertices into a source/sink pair
    instead.  Parallel interactions (same edge, same timestamp) are
    allowed and kept in insertion-stable time order. *)

type vertex = int

type t

val empty : t

(** {1 Construction} *)

val add_vertex : t -> vertex -> t
(** Adds an isolated vertex (no-op if present). *)

val add_interaction : t -> src:vertex -> dst:vertex -> Interaction.t -> t
(** Appends one interaction to edge [(src, dst)], creating vertices and
    the edge as needed.  @raise Invalid_argument on a self-loop. *)

val add_edge : t -> src:vertex -> dst:vertex -> Interaction.t list -> t
(** Merges a batch of interactions into edge [(src, dst)].  The batch
    need not be sorted.  An empty batch still creates the vertices but
    no edge.  @raise Invalid_argument on a self-loop. *)

val set_edge : t -> src:vertex -> dst:vertex -> Interaction.t list -> t
(** Replaces the interaction sequence of edge [(src, dst)]; an empty
    list removes the edge (vertices remain). *)

val remove_edge : t -> src:vertex -> dst:vertex -> t
(** Removes an edge if present (vertices remain). *)

val remove_vertex : t -> vertex -> t
(** Removes a vertex and all incident edges. *)

val of_edges : (vertex * vertex * (float * float) list) list -> t
(** Builds a graph from edge descriptions with [(time, qty)] pairs —
    the notation used for the paper's worked examples. *)

(** {1 Observation} *)

val mem_vertex : t -> vertex -> bool
val mem_edge : t -> src:vertex -> dst:vertex -> bool

val edge : t -> src:vertex -> dst:vertex -> Interaction.t list
(** Interaction sequence of an edge, sorted by time; [[]] if absent. *)

val vertices : t -> vertex list
(** All vertices in increasing order. *)

val out_edges : t -> vertex -> (vertex * Interaction.t list) list
(** Successors with their interaction sequences, in increasing vertex
    order; [[]] for unknown vertices. *)

val in_edges : t -> vertex -> (vertex * Interaction.t list) list

val succs : t -> vertex -> vertex list
val preds : t -> vertex -> vertex list
val out_degree : t -> vertex -> int
val in_degree : t -> vertex -> int

val n_vertices : t -> int
val n_edges : t -> int
val n_interactions : t -> int

val sources : t -> vertex list
(** Vertices with no incoming edge (in increasing order). *)

val sinks : t -> vertex list
(** Vertices with no outgoing edge. *)

val fold_edges : (vertex -> vertex -> Interaction.t list -> 'a -> 'a) -> t -> 'a -> 'a
val iter_edges : (vertex -> vertex -> Interaction.t list -> unit) -> t -> unit

val interactions_sorted : t -> (vertex * vertex * Interaction.t) array
(** Every interaction of the graph in global temporal order (ties
    broken by source then destination vertex) — the scan order of the
    greedy algorithm. *)

val total_qty : t -> float
(** Sum of all interaction quantities. *)

val equal : t -> t -> bool
(** Structural equality (exact float comparison on interactions) —
    used by tests that check the preprocessing traces of the paper. *)

val pp : Format.formatter -> t -> unit
(** One edge per line: [v -> u: (t1,q1),(t2,q2)]. *)
