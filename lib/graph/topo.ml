module IntMap = Map.Make (Int)

let sort g =
  (* Kahn's algorithm with a sorted frontier: deterministic order so
     preprocessing traces are reproducible. *)
  let module S = Set.Make (Int) in
  let indeg =
    List.fold_left (fun m v -> IntMap.add v (Graph.in_degree g v) m) IntMap.empty (Graph.vertices g)
  in
  let frontier =
    IntMap.fold (fun v d s -> if d = 0 then S.add v s else s) indeg S.empty
  in
  let rec go frontier indeg acc n =
    match S.min_elt_opt frontier with
    | None -> if n = Graph.n_vertices g then Some (List.rev acc) else None
    | Some v ->
        let frontier = S.remove v frontier in
        let frontier, indeg =
          List.fold_left
            (fun (f, ind) u ->
              let d = IntMap.find u ind - 1 in
              let ind = IntMap.add u d ind in
              if d = 0 then (S.add u f, ind) else (f, ind))
            (frontier, indeg) (Graph.succs g v)
        in
        go frontier indeg (v :: acc) (n + 1)
  in
  go frontier indeg [] 0

let sort_exn g =
  match sort g with
  | Some order -> order
  | None -> invalid_arg "Topo.sort_exn: graph has a cycle"

let is_dag g = Option.is_some (sort g)

let reachable_from g start =
  let rec go seen = function
    | [] -> seen
    | v :: rest ->
        if IntMap.mem v seen then go seen rest
        else go (IntMap.add v () seen) (List.rev_append (Graph.succs g v) rest)
  in
  go IntMap.empty [ start ]

let reaches g v u = IntMap.mem u (reachable_from g v)

let dagify g ~root =
  (* Iterative DFS with tri-state colouring; an edge into a grey vertex
     is a back edge and gets dropped.  The DFS visits successors in
     increasing vertex order for determinism. *)
  let color = Hashtbl.create 64 in
  (* 1 = on stack (grey), 2 = done (black); absent = white *)
  let removed = ref [] in
  let rec visit v =
    Hashtbl.replace color v 1;
    List.iter
      (fun u ->
        match Hashtbl.find_opt color u with
        | Some 1 -> removed := (v, u) :: !removed
        | Some _ -> ()
        | None -> visit u)
      (Graph.succs g v);
    Hashtbl.replace color v 2
  in
  if Graph.mem_vertex g root then visit root;
  List.iter (fun v -> if not (Hashtbl.mem color v) then visit v) (Graph.vertices g);
  List.fold_left (fun g (src, dst) -> Graph.remove_edge g ~src ~dst) g !removed

let restrict g ~keep =
  List.fold_left
    (fun acc v -> if keep v then acc else Graph.remove_vertex acc v)
    g (Graph.vertices g)
