module IntMap = Map.Make (Int)
module IntSet = Set.Make (Int)

type vertex = int

(* [out] and [in_] mirror each other: the interaction list stored under
   out.(v).(u) is the same value as in_.(u).(v).  Every update goes
   through helpers that maintain both sides plus the cached counters. *)
type t = {
  verts : IntSet.t;
  out : Interaction.t list IntMap.t IntMap.t;
  in_ : Interaction.t list IntMap.t IntMap.t;
  n_edges : int;
  n_interactions : int;
}

let empty =
  { verts = IntSet.empty; out = IntMap.empty; in_ = IntMap.empty; n_edges = 0; n_interactions = 0 }

let adj m v = match IntMap.find_opt v m with Some a -> a | None -> IntMap.empty

let mem_vertex t v = IntSet.mem v t.verts
let mem_edge t ~src ~dst = IntMap.mem dst (adj t.out src)

let edge t ~src ~dst =
  match IntMap.find_opt dst (adj t.out src) with Some is -> is | None -> []

let add_vertex t v = if mem_vertex t v then t else { t with verts = IntSet.add v t.verts }

let update_adj m v u value =
  let a = adj m v in
  let a = match value with None -> IntMap.remove u a | Some is -> IntMap.add u is a in
  if IntMap.is_empty a then IntMap.remove v m else IntMap.add v a m

let set_edge t ~src ~dst interactions =
  let old = edge t ~src ~dst in
  let old_n = List.length old in
  match interactions with
  | [] ->
      if old_n = 0 && not (mem_edge t ~src ~dst) then t
      else
        {
          t with
          out = update_adj t.out src dst None;
          in_ = update_adj t.in_ dst src None;
          n_edges = (t.n_edges - if mem_edge t ~src ~dst then 1 else 0);
          n_interactions = t.n_interactions - old_n;
        }
  | _ ->
      let is = Interaction.sort interactions in
      let existed = mem_edge t ~src ~dst in
      {
        verts = IntSet.add src (IntSet.add dst t.verts);
        out = update_adj t.out src dst (Some is);
        in_ = update_adj t.in_ dst src (Some is);
        n_edges = (t.n_edges + if existed then 0 else 1);
        n_interactions = t.n_interactions - old_n + List.length is;
      }

let add_edge t ~src ~dst interactions =
  if src = dst then invalid_arg "Graph.add_edge: self-loop";
  let t = add_vertex (add_vertex t src) dst in
  match interactions with
  | [] -> t
  | _ -> set_edge t ~src ~dst (List.rev_append (List.rev (edge t ~src ~dst)) interactions)

let add_interaction t ~src ~dst i = add_edge t ~src ~dst [ i ]

let remove_edge t ~src ~dst = set_edge t ~src ~dst []

let remove_vertex t v =
  if not (mem_vertex t v) then t
  else begin
    let t = IntMap.fold (fun dst _ t -> remove_edge t ~src:v ~dst) (adj t.out v) t in
    let t = IntMap.fold (fun src _ t -> remove_edge t ~src ~dst:v) (adj t.in_ v) t in
    { t with verts = IntSet.remove v t.verts }
  end

let of_edges descriptions =
  List.fold_left
    (fun t (src, dst, pairs) -> add_edge t ~src ~dst (Interaction.of_pairs pairs))
    empty descriptions

let vertices t = IntSet.elements t.verts
let out_edges t v = IntMap.bindings (adj t.out v)
let in_edges t v = IntMap.bindings (adj t.in_ v)
let succs t v = List.map fst (out_edges t v)
let preds t v = List.map fst (in_edges t v)
let out_degree t v = IntMap.cardinal (adj t.out v)
let in_degree t v = IntMap.cardinal (adj t.in_ v)
let n_vertices t = IntSet.cardinal t.verts
let n_edges t = t.n_edges
let n_interactions t = t.n_interactions

let sources t = List.filter (fun v -> in_degree t v = 0) (vertices t)
let sinks t = List.filter (fun v -> out_degree t v = 0) (vertices t)

let fold_edges f t acc =
  IntMap.fold (fun src a acc -> IntMap.fold (fun dst is acc -> f src dst is acc) a acc) t.out acc

let iter_edges f t = fold_edges (fun src dst is () -> f src dst is) t ()

let interactions_sorted t =
  let all =
    fold_edges (fun src dst is acc -> List.fold_left (fun acc i -> (src, dst, i) :: acc) acc is) t []
  in
  let a = Array.of_list all in
  let cmp (s1, d1, i1) (s2, d2, i2) =
    match Interaction.compare i1 i2 with
    | 0 -> ( match Int.compare s1 s2 with 0 -> Int.compare d1 d2 | c -> c)
    | c -> c
  in
  Array.sort cmp a;
  a

let total_qty t = fold_edges (fun _ _ is acc -> acc +. Interaction.total_qty is) t 0.0

let equal a b =
  IntSet.equal a.verts b.verts
  && IntMap.equal (IntMap.equal (List.equal Interaction.equal)) a.out b.out

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  iter_edges
    (fun src dst is ->
      Format.fprintf ppf "%d -> %d: %a@," src dst Interaction.pp_list is)
    t;
  Format.fprintf ppf "@]"
