(** Loading and saving interaction networks.

    The on-disk format is the four-column CSV used by the paper's
    artifact: [src,dst,time,qty], one interaction per line.  Lines that
    are empty or start with ['#'] are ignored.  An optional header line
    [src,dst,time,qty] is recognised and skipped. *)

exception Parse_error of { line : int; message : string }

val interactions_of_channel : in_channel -> (int * int * Interaction.t) list
(** Parses a channel.  Self-loops are skipped (with a [Logs] warning
    counter), matching how the paper cleans its inputs.
    @raise Parse_error on malformed lines. *)

val load_csv : string -> Static.t
(** Loads a CSV file into a compiled network. *)

val load_csv_graph : string -> Graph.t

val save_csv : string -> Graph.t -> unit
(** Writes [src,dst,time,qty] lines, header included, edges in
    deterministic order. *)

val to_dot :
  ?graph_name:string -> ?source:int -> ?sink:int -> Graph.t -> string
(** GraphViz rendering of a (small) network: each edge is annotated
    with its interaction sequence; [source]/[sink] are highlighted.
    Useful to eyeball extracted subgraphs like the paper's Figure 10. *)
