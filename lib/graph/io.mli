(** Loading and saving interaction networks.

    The on-disk format is the four-column CSV used by the paper's
    artifact: [src,dst,time,qty], one interaction per line.  Lines that
    are empty or start with ['#'] are ignored.  An optional header line
    [src,dst,time,qty] is recognised and skipped.

    The parser is strict: every malformed row is reported with file,
    line and column; NaN, infinite and negative timestamps or
    quantities are rejected as data corruption (Definition 1 transfers
    non-negative finite quantities).  Use the [_result] variants for
    recoverable error handling; the plain loaders raise
    {!Parse_error}. *)

type error = {
  file : string;  (** [""] when parsing an anonymous channel. *)
  line : int;  (** 1-based line number. *)
  column : int;  (** 1-based character offset of the offending field. *)
  message : string;
}

exception Parse_error of error

val error_to_string : error -> string
(** ["file:line:column: message"] — the GNU diagnostic format. *)

val pp_error : Format.formatter -> error -> unit

val parse_channel :
  ?file:string -> in_channel -> ((int * int * Interaction.t) list, error) result
(** Parses a channel.  Self-loops are skipped (with a [Logs] warning
    counter), matching how the paper cleans its inputs.  [file] is only
    used in diagnostics. *)

val interactions_of_channel : in_channel -> (int * int * Interaction.t) list
(** Exception-raising wrapper of {!parse_channel}.
    @raise Parse_error on malformed input. *)

val load_csv_result : string -> (Static.t, error) result
(** Loads a CSV file into a compiled network. *)

val load_csv_graph_result : string -> (Graph.t, error) result

val load_csv : string -> Static.t
(** @raise Parse_error on malformed input. *)

val load_csv_graph : string -> Graph.t
(** @raise Parse_error on malformed input. *)

val save_csv : string -> Graph.t -> unit
(** Writes [src,dst,time,qty] lines, header included, edges in
    deterministic order. *)

val to_dot :
  ?graph_name:string -> ?source:int -> ?sink:int -> Graph.t -> string
(** GraphViz rendering of a (small) network: each edge is annotated
    with its interaction sequence; [source]/[sink] are highlighted.
    Useful to eyeball extracted subgraphs like the paper's Figure 10. *)
