(** Loading and saving interaction networks.

    Two on-disk formats are understood:

    - the four-column CSV used by the paper's artifact
      ([src,dst,time,qty], one interaction per line; empty and [#]
      lines ignored; an optional [src,dst,time,qty] header is skipped);
    - the versioned binary snapshot of {!Snapshot} ([.tinb]),
      recognised by its magic bytes regardless of extension.

    The format-agnostic loaders ({!load}, {!load_graph},
    {!load_compact}) sniff the first four bytes and dispatch; the
    [_csv_] variants parse CSV only.  [tinflow convert] produces
    snapshots from CSV and vice versa.

    The CSV parser is strict: every malformed row is reported with
    file, line and column; NaN, infinite and negative timestamps or
    quantities are rejected as data corruption (Definition 1 transfers
    non-negative finite quantities).  Snapshot loading is equally
    strict (checksum, version, structural invariants) — see
    {!Snapshot}.  Use the [_result] variants for recoverable error
    handling; the plain loaders raise {!Parse_error}. *)

type error = {
  file : string;  (** [""] when parsing an anonymous channel. *)
  line : int;  (** 1-based line number; [0] for whole-file (snapshot) errors. *)
  column : int;  (** 1-based character offset of the offending field. *)
  message : string;
}

exception Parse_error of error

val error_to_string : error -> string
(** ["file:line:column: message"] — the GNU diagnostic format — or
    ["file: message"] when [line = 0] (snapshot errors have no textual
    position). *)

val pp_error : Format.formatter -> error -> unit

val parse_channel :
  ?file:string -> in_channel -> ((int * int * Interaction.t) list, error) result
(** Parses a channel.  Self-loops are skipped (with a [Logs] warning
    counter), matching how the paper cleans its inputs.  [file] is only
    used in diagnostics. *)

val interactions_of_channel : in_channel -> (int * int * Interaction.t) list
(** Exception-raising wrapper of {!parse_channel}.
    @raise Parse_error on malformed input. *)

val load_csv_result : string -> (Static.t, error) result
(** Loads a CSV file into a compiled network. *)

val load_csv_graph_result : string -> (Graph.t, error) result

val load_csv : string -> Static.t
(** @raise Parse_error on malformed input. *)

val load_csv_graph : string -> Graph.t
(** @raise Parse_error on malformed input. *)

val load_result : string -> (Static.t, error) result
(** Format-agnostic load into a compiled network: [.tinb] snapshots by
    magic sniffing ({!Snapshot.sniff}), CSV otherwise. *)

val load_graph_result : string -> (Graph.t, error) result
(** Format-agnostic load into a persistent graph.  Snapshots containing
    self-loops (which {!Graph.t} cannot represent) are reported as
    errors, matching the CSV parser's self-loop policy of skipping
    being inapplicable to an already-compiled substrate. *)

val load_compact_result : string -> (Compact.t, error) result
(** Format-agnostic load into the flat substrate — the cheapest target
    for both formats (snapshots deserialise straight into it; CSV
    entries are compiled without building a persistent graph). *)

val load : string -> Static.t
(** @raise Parse_error on malformed input (either format). *)

val load_graph : string -> Graph.t
(** @raise Parse_error on malformed input (either format). *)

val load_compact : string -> Compact.t
(** @raise Parse_error on malformed input (either format). *)

val save_csv : string -> Graph.t -> unit
(** Writes [src,dst,time,qty] lines, header included, edges in
    deterministic order. *)

val to_dot :
  ?graph_name:string -> ?source:int -> ?sink:int -> Graph.t -> string
(** GraphViz rendering of a (small) network: each edge is annotated
    with its interaction sequence; [source]/[sink] are highlighted.
    Useful to eyeball extracted subgraphs like the paper's Figure 10. *)
