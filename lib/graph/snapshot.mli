(** Versioned, checksummed binary snapshots of {!Compact} networks.

    The on-disk format ([.tinb]) is a fixed-width little-endian layout:
    a 32-byte header (magic ["TINB"], [u32] version, [u32] flags,
    [u32] reserved, [u64] vertex and interaction counts) followed by
    five columns — labels as [i64], then the global interaction table
    ([src]/[dst] as [u32] compact ids, [time]/[qty] as IEEE-754 [f64])
    in scan order — and a trailing [u32] CRC32 over everything before
    it.  The f64 columns fall on 8-byte boundaries, so the file is
    mmap-friendly for external tooling.  See DESIGN.md, "Binary
    snapshot format".

    Loading re-validates every structural invariant (magic, version,
    size, checksum, id ranges, label monotonicity, NaN/negativity,
    global sort) and reports failures as values with file context,
    mirroring the CSV loader's strictness. *)

type error = { file : string; message : string }

val error_to_string : error -> string
(** ["file: message"]. *)

exception Error of error

val magic : string
(** The 4-byte file magic, ["TINB"]. *)

val version : int
(** Current format version (1).  Files with any other version are
    rejected with a clean [Error]. *)

val save : string -> Compact.t -> unit
(** [save path c] writes the snapshot atomically enough for build
    tooling (single [write] of a fully checksummed buffer).
    @raise Sys_error on I/O failure. *)

val load_result : string -> (Compact.t, error) result
(** Strict load; never raises on malformed input (I/O errors and all
    corruption cases become [Error]). *)

val load : string -> Compact.t
(** @raise Error on malformed input, with file context. *)

val sniff : string -> bool
(** [sniff path] is [true] iff the file starts with the snapshot
    magic — the auto-detection test used by {!Io}'s format-agnostic
    loaders.  [false] on unreadable or short files. *)
