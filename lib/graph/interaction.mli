(** A single interaction: a quantity transferred at an instant.

    Interaction networks (Definition 1 of the paper) annotate every
    directed edge [(v, u)] with a time-ordered sequence of interactions
    [(t_i, q_i)]: at time [t_i], vertex [v] sends quantity [q_i] to
    vertex [u]. *)

type t = private { time : float; qty : float }
(** Timestamps are finite non-negative reals (the real datasets use
    epoch seconds); quantities are non-negative reals.  [qty] (and
    [time]) may be infinite only on interactions built with
    {!unchecked} — synthetic source/sink edges use infinite quantity
    (Section 4 of the paper). *)

val make : time:float -> qty:float -> t
(** [make ~time ~qty] validates and builds a data interaction, with
    exactly the domain the CSV loader ({!Io.load_csv}) accepts: both
    fields finite and non-negative.
    @raise Invalid_argument if [time] is NaN, infinite or negative, or
    [qty] is NaN, infinite or negative. *)

val unchecked : time:float -> qty:float -> t
(** [unchecked ~time ~qty] builds a synthetic interaction: [time] may
    be any non-NaN real (including [±infinity]) and [qty] any
    non-negative value (including [infinity]).  Used for the
    super-source/super-sink edges of {!Endpoints} and for greedy
    arrival sequences, which legitimately carry infinite quantity —
    never for data read from disk.
    @raise Invalid_argument if either field is NaN or [qty] is
    negative. *)

val time : t -> float
val qty : t -> float

val compare : t -> t -> int
(** Orders by time, then by quantity; a total order compatible with the
    temporal scan of the greedy algorithm. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Prints as [(t,q)], matching the paper's notation. *)

val pp_list : Format.formatter -> t list -> unit

val of_pair : float * float -> t
(** [of_pair (t, q)] is [make ~time:t ~qty:q] — convenient for writing
    the paper's worked examples as literal lists. *)

val of_pairs : (float * float) list -> t list
(** Maps {!of_pair} and sorts by time. *)

val sort : t list -> t list
(** Stable sort by {!compare}. *)

val is_sorted : t list -> bool

val total_qty : t list -> float
(** Sum of quantities (the cut capacity contribution of an edge). *)
