(** A single interaction: a quantity transferred at an instant.

    Interaction networks (Definition 1 of the paper) annotate every
    directed edge [(v, u)] with a time-ordered sequence of interactions
    [(t_i, q_i)]: at time [t_i], vertex [v] sends quantity [q_i] to
    vertex [u]. *)

type t = private { time : float; qty : float }
(** Timestamps are arbitrary reals (the real datasets use epoch
    seconds); quantities are non-negative reals.  [qty] may be
    [infinity] — synthetic source/sink edges use infinite quantity
    (Section 4 of the paper). *)

val make : time:float -> qty:float -> t
(** [make ~time ~qty] validates and builds an interaction.
    @raise Invalid_argument if [time] is NaN, or [qty] is NaN or
    negative. *)

val time : t -> float
val qty : t -> float

val compare : t -> t -> int
(** Orders by time, then by quantity; a total order compatible with the
    temporal scan of the greedy algorithm. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Prints as [(t,q)], matching the paper's notation. *)

val pp_list : Format.formatter -> t list -> unit

val of_pair : float * float -> t
(** [of_pair (t, q)] is [make ~time:t ~qty:q] — convenient for writing
    the paper's worked examples as literal lists. *)

val of_pairs : (float * float) list -> t list
(** Maps {!of_pair} and sorts by time. *)

val sort : t list -> t list
(** Stable sort by {!compare}. *)

val is_sorted : t list -> bool

val total_qty : t list -> float
(** Sum of quantities (the cut capacity contribution of an edge). *)
