(** Flat columnar interaction-network substrate.

    The persistent {!Graph.t} is convenient for the algorithmic code of
    the paper but record/list/map-heavy; at the multi-million
    interaction scale of the paper's experiments (Bitcoin, Prosper,
    CTU-13) load time and resident memory are dominated by boxing.
    [Compact] stores the whole network as parallel arrays:

    - one global interaction table — [src], [dst] (compact vertex ids)
      and unboxed [time], [qty] ([floatarray]) columns — sorted once by
      [(time, qty, src, dst)], the scan order of the greedy algorithm
      ({!Graph.interactions_sorted});
    - a permutation [by_edge] of interaction ids grouped by edge, with
      per-edge ranges, so per-edge sequences read as slices;
    - CSR-style out/in adjacency over the distinct edges, themselves
      sorted by [(src, dst)].

    Compact vertex ids are {e sorted-label ranks}: [label] is strictly
    increasing in the id, so iterating edges in id order visits them in
    the same order as {!Graph.iter_edges} visits raw labels.  This is
    what makes the flat consumers ([Greedy.flow_compact],
    [Lp_flow.build_compact], …) bit-identical to their [Graph.t]
    counterparts.

    Unlike {!Graph.t}, the substrate tolerates self-loops (the binary
    snapshot format must round-trip arbitrary well-formed files);
    {!to_graph} rejects them. *)

type vertex = int
(** Compact vertex id in [[0, n_vertices)] — the rank of the vertex's
    raw label in sorted order. *)

type edge_id = int
(** Edge index in [[0, n_edges)], ordered by [(src, dst)]. *)

type t

(** {1 Construction} *)

val of_entries : ?vertices:int list -> (int * int * Interaction.t) list -> t
(** [of_entries entries] builds the substrate from raw
    [(src_label, dst_label, interaction)] triples (any order;
    duplicates allowed).  [vertices] adds isolated vertices by raw
    label.  Self-loops are accepted. *)

val of_graph : Graph.t -> t
(** Conversion from the persistent view, preserving isolated
    vertices. *)

val to_graph : t -> Graph.t
(** The persistent compatibility view, used by the verify lattice to
    cross-check flat and boxed paths.
    @raise Invalid_argument if the substrate contains a self-loop
    ({!Graph.t} cannot represent one). *)

val equal : t -> t -> bool
(** Structural equality: same labels and identical interaction columns
    (exact float comparison).  Because every constructor canonicalises
    to the same global sort, two substrates over the same multiset of
    entries are equal. *)

(** {1 Dimensions and vertices} *)

val n_vertices : t -> int
val n_edges : t -> int
val n_interactions : t -> int

val label : t -> vertex -> int
(** Raw label of a compact id; strictly increasing in the id. *)

val vertex_of_label : t -> int -> vertex option
val out_degree : t -> vertex -> int
val in_degree : t -> vertex -> int
val has_self_loops : t -> bool
val total_qty : t -> float

(** {1 Global interaction table}

    Index [k] ranges over [[0, n_interactions)] in scan order. *)

val inter_src : t -> int -> vertex
val inter_dst : t -> int -> vertex
val inter_time : t -> int -> float
val inter_qty : t -> int -> float

(** {1 Edges and adjacency} *)

val edge_src : t -> edge_id -> vertex
val edge_dst : t -> edge_id -> vertex

val edge_inter_range : t -> edge_id -> int * int
(** [(lo, hi)]: the edge's interactions are
    [edge_inter t e k = by_edge.(lo + k)] for [lo + k < hi], in time
    order. *)

val edge_n_inter : t -> edge_id -> int

val edge_inter : t -> edge_id -> int -> int
(** [edge_inter t e k] is the global interaction index of the [k]-th
    (time-ordered) interaction of edge [e]. *)

val iter_edge_inter : t -> edge_id -> (float -> float -> unit) -> unit
(** [iter_edge_inter t e f] calls [f time qty] over the edge's
    interactions in time order, without boxing. *)

val edge_interactions : t -> edge_id -> Interaction.t list
(** Boxed per-edge sequence (compatibility; allocates). *)

val edge_total_qty : t -> edge_id -> float

val iter_succs : t -> vertex -> (vertex -> edge_id -> unit) -> unit
(** Successors of [v] in ascending compact-id order.  Out-rows are
    contiguous edge-id ranges, so [edge_id] values are consecutive. *)

val iter_preds : t -> vertex -> (vertex -> edge_id -> unit) -> unit
(** Predecessors of [v] in ascending compact-id order. *)

val find_edge : t -> src:vertex -> dst:vertex -> edge_id option
(** Binary search over the sorted out-row of [src]. *)

val iter_grouped : t -> (int -> int -> Interaction.t -> unit) -> unit
(** [iter_grouped t f] calls [f src_label dst_label interaction]
    edge-by-edge in [(src, dst)] label order, time-sorted within each
    edge — exactly the visit order of {!Graph.iter_edges} on the
    equivalent persistent graph.  The drop-in iteration for consumers
    that still want boxed interactions. *)

(** {1 Raw columns (snapshot interchange)} *)

type columns = {
  c_labels : int array;
  c_src : int array;
  c_dst : int array;
  c_time : floatarray;
  c_qty : floatarray;
}
(** The five persisted columns.  [c_labels] maps compact id to raw
    label (strictly increasing); the remaining four are the global
    interaction table in scan order. *)

val columns : t -> columns
(** Zero-copy view of the internal columns — treat as read-only. *)

val of_columns : columns -> (t, string) result
(** Validates the invariants (consistent lengths, strictly increasing
    labels, ids in range, no NaN, non-negative quantities, global
    [(time, qty, src, dst)] sort) and rebuilds the derived indexes.
    [Error] carries a human-readable reason — the snapshot loader
    prefixes it with file context. *)
