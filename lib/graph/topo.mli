(** Order and reachability utilities over interaction networks.

    The maximum-flow accelerators of the paper (Algorithm 1 and
    Algorithm 2) operate on DAGs and need a topological order of the
    vertices; the subgraph extractor needs a way to discard
    cycle-closing edges so extracted subgraphs are DAGs. *)

val sort : Graph.t -> Graph.vertex list option
(** [sort g] is a topological order of [g]'s vertices (Kahn's
    algorithm, smallest-vertex-first for determinism), or [None] if
    [g] has a cycle. *)

val sort_exn : Graph.t -> Graph.vertex list
(** @raise Invalid_argument if the graph has a cycle. *)

val is_dag : Graph.t -> bool

val reachable_from : Graph.t -> Graph.vertex -> Unit.t Map.Make(Int).t
(** Forward-reachable set (including the start vertex), as a map used
    as a set. *)

val reaches : Graph.t -> Graph.vertex -> Graph.vertex -> bool
(** [reaches g v u] holds when there is a directed path from [v] to
    [u] (including the empty path when [v = u]). *)

val dagify : Graph.t -> root:Graph.vertex -> Graph.t
(** [dagify g ~root] returns [g] with every DFS back edge (w.r.t. a
    deterministic DFS from [root]) removed, so the result is acyclic.
    Vertices unreachable from [root] keep their edges only if those
    edges do not lie on a cycle through reached vertices; in practice
    the extractor only calls this on graphs where all vertices are
    reachable from [root].  Used when merging cyclic seed paths
    (Section 6.2) into a DAG flow problem. *)

val restrict : Graph.t -> keep:(Graph.vertex -> bool) -> Graph.t
(** Induced subgraph on the vertices satisfying [keep]. *)
