(** The [tinflow serve] state machine: streaming ingestion with
    windowed incremental flow and delta-maintained pattern tables.

    The paper's headline scenario (Section 1: an FIU monitoring
    transactions for fraud) assumes a long-running system that ingests
    interactions as they happen.  This module composes the pieces the
    library already had into that system:

    - a sliding event-time window ({!Tin_core.Window} semantics: the
      closed interval [[last_time - window, last_time]] is kept,
      older interactions are evicted);
    - incremental greedy source→sink flow ({!Tin_core.Online.push}
      per accepted interaction, O(1) amortized);
    - cycle/chain path tables maintained by delta updates
      ({!Tin_patterns.Delta.apply} on a configurable cadence — the
      paper's footnote 2 — over the {e cumulative} network, which only
      grows);
    - catalog pattern re-evaluation against the updated tables, with
      alerts for instances whose flow clears a threshold.

    {2 Exactness model}

    The reported windowed flow always equals a batch
    [Greedy.flow (Window.restrict ~from_time:(last - window) g)] over
    the same stream — enforced lazily: ingestion is cheap ([push] +
    bookkeeping), and the two events that invalidate the incremental
    monitor (an eviction crossing the window boundary; an arrival
    tying the newest timestamp, whose canonical [(time, qty, src,
    dst)] position may precede already-pushed peers) mark the monitor
    dirty instead of rebuilding immediately.  Any {e observation}
    ({!flow}, {!stats}, {!tick}, {!window_graph}) first rebuilds from
    the restricted window via {!Tin_core.Online.of_graph} — the
    canonical-order replay — so observed values are exact, while a
    high-rate ingest path between observations stays incremental.
    Differentially tested against batch recomputation.

    Arrivals older than the newest accepted timestamp (and self-loops)
    are counted and skipped, never applied: the greedy scan is
    append-only.

    Thread-safety: every operation takes an internal mutex; handlers
    produced by {!routes} may run on the {!Tin_obs.Serve} domain while
    another thread reads {!stats}. *)

type config = {
  source : int;
  sink : int;
  window : float;  (** Event-time span kept; [infinity] = unbounded. *)
  cadence : int;
      (** Auto-{!tick} after this many accepted interactions;
          [0] = only explicit ticks. *)
  patterns : Tin_patterns.Catalog.pattern list;
      (** Re-evaluated at each tick; the chain table is maintained
          exactly when some pattern needs it. *)
  min_flow : float;  (** Alert threshold on a pattern's total flow. *)
  limit : int;  (** Per-pattern instance cap at each evaluation. *)
}

val config :
  source:int ->
  sink:int ->
  ?window:float ->
  ?cadence:int ->
  ?patterns:Tin_patterns.Catalog.pattern list ->
  ?min_flow:float ->
  ?limit:int ->
  unit ->
  config
(** Defaults: unbounded window, cadence [0], no patterns, [min_flow]
    [0.], limit [10_000]. *)

type alert = {
  pattern : Tin_patterns.Catalog.pattern;
  instances : int;
  total_flow : float;
  tick : int;  (** 1-based index of the tick that raised it. *)
}
(** Raised by a tick when a configured pattern has at least one
    instance with positive total flow [>= min_flow]. *)

type ingest_result = {
  accepted : int;
  rejected : int;  (** Late arrivals and self-loops, skipped. *)
  window_interactions : int;
  alerts : alert list;  (** Nonempty only when the batch tripped the cadence. *)
}

type stats = {
  flow : float;  (** Exact windowed greedy flow (forces a rebuild if dirty). *)
  window_interactions : int;
  last_time : float option;
  accepted_total : int;
  rejected_total : int;
  evicted_total : int;
  rebuilds_total : int;
  ticks_total : int;
  alerts_total : int;
  rows_recomputed_total : int;  (** {!Tin_patterns.Delta} row rebuilds. *)
}

type t

val create : ?base:Graph.t -> ?on_alert:(alert -> unit) -> config -> t
(** [create config] starts an empty monitor; [base] seeds both the
    window and the precomputed tables (e.g. a historical network
    loaded at startup).  [on_alert] is called synchronously from the
    ticking thread for each alert, in addition to the alert being
    returned; exceptions it raises are swallowed.
    @raise Invalid_argument if [source = sink], [window] is not
    positive, [cadence] is negative or [limit] is not positive. *)

val ingest : t -> Ingest.entry list -> ingest_result
(** Apply one batch.  The batch is first sorted into canonical
    [(time, qty, src, dst)] order; entries older than the newest
    accepted timestamp are rejected (counted, skipped). *)

val tick : t -> alert list
(** Force a cadence tick now: applies pending additions to the path
    tables via {!Tin_patterns.Delta.apply} and re-evaluates the
    configured patterns.  The table state after every tick equals a
    from-scratch {!Tin_patterns.Catalog.precompute} over the grown
    network (differentially tested). *)

val flow : t -> float
(** Exact greedy flow over the current window. *)

val stats : t -> stats

val window_graph : t -> Graph.t
(** Snapshot of the in-window interactions (persistent; exact). *)

val tables : t -> Tin_patterns.Delta.t
(** The delta-maintained table state (for differential tests). *)

val routes : t -> (Tin_obs.Serve.meth * string * Tin_obs.Serve.handler) list
(** HTTP surface for {!Tin_obs.Serve.start}:
    - [POST /ingest] — JSON-lines body ({!Ingest}); answers
      [{"accepted":..,"rejected":..,"window_interactions":..,"alerts":[..]}]
      with [200], or [400] with [{"error":..}] on a malformed body;
    - [GET /status] — the {!stats} record as JSON.

    Gauges [serve_ingest_lag_seconds] (wall clock minus newest event
    time, clamped at zero — meaningful when event times are epoch
    seconds), [serve_window_interactions] and
    [serve_rows_recomputed_total], plus [serve_*_total] counters, are
    published on the shared {!Tin_obs.Obs} registry and appear in
    [GET /metrics] scrapes. *)
