module Json = Tin_util.Json

type entry = { src : int; dst : int; inter : Interaction.t }

let field name doc = Option.to_result ~none:("missing field \"" ^ name ^ "\"") (Json.member name doc)

let as_num name v =
  Option.to_result ~none:(Printf.sprintf "field %S is not a number" name) (Json.num v)

let as_vertex name doc =
  Result.bind (field name doc) @@ fun v ->
  Result.bind (as_num name v) @@ fun x ->
  if Float.is_integer x && Float.abs x <= 1e15 then Ok (int_of_float x)
  else Error (Printf.sprintf "field %S is not an integer vertex label" name)

let ( let* ) = Result.bind

let parse_line s =
  match Json.parse s with
  | Error e -> Error e
  | Ok doc -> (
      match doc with
      | Json.Obj _ ->
          let* src = as_vertex "src" doc in
          let* dst = as_vertex "dst" doc in
          let* time = Result.bind (field "time" doc) (as_num "time") in
          let* qty = Result.bind (field "qty" doc) (as_num "qty") in
          let* inter =
            match Interaction.make ~time ~qty with
            | i -> Ok i
            | exception Invalid_argument msg -> Error msg
          in
          Ok { src; dst; inter }
      | _ -> Error "expected a JSON object per line")

let parse_body s =
  let lines = String.split_on_char '\n' s in
  let rec go n acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        if String.trim line = "" then go (n + 1) acc rest
        else begin
          match parse_line line with
          | Ok e -> go (n + 1) (e :: acc) rest
          | Error msg -> Error (Printf.sprintf "line %d: %s" n msg)
        end
  in
  go 1 [] lines
