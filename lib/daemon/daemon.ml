module Obs = Tin_obs.Obs
module Serve = Tin_obs.Serve
module Json = Tin_util.Json
module Online = Tin_core.Online
module Window = Tin_core.Window
module Catalog = Tin_patterns.Catalog
module Delta = Tin_patterns.Delta

type config = {
  source : int;
  sink : int;
  window : float;
  cadence : int;
  patterns : Catalog.pattern list;
  min_flow : float;
  limit : int;
}

let config ~source ~sink ?(window = infinity) ?(cadence = 0) ?(patterns = [])
    ?(min_flow = 0.) ?(limit = 10_000) () =
  { source; sink; window; cadence; patterns; min_flow; limit }

type alert = {
  pattern : Catalog.pattern;
  instances : int;
  total_flow : float;
  tick : int;
}

type ingest_result = {
  accepted : int;
  rejected : int;
  window_interactions : int;
  alerts : alert list;
}

type stats = {
  flow : float;
  window_interactions : int;
  last_time : float option;
  accepted_total : int;
  rejected_total : int;
  evicted_total : int;
  rebuilds_total : int;
  ticks_total : int;
  alerts_total : int;
  rows_recomputed_total : int;
}

(* Process-global: one registry entry per name regardless of how many
   daemons run (in practice: one). *)
let g_lag = Obs.Gauge.make "serve.ingest_lag_seconds"
let g_window = Obs.Gauge.make "serve.window_interactions"
let g_rows = Obs.Gauge.make "serve.rows_recomputed_total"
let c_ingested = Obs.Counter.make "serve.ingested_total"
let c_rejected = Obs.Counter.make "serve.rejected_total"
let c_evicted = Obs.Counter.make "serve.evicted_total"
let c_rebuilds = Obs.Counter.make "serve.window_rebuilds_total"
let c_ticks = Obs.Counter.make "serve.ticks_total"
let c_alerts = Obs.Counter.make "serve.alerts_total"

type t = {
  config : config;
  on_alert : alert -> unit;
  mutex : Mutex.t;
  (* All fields below are guarded by [mutex]. *)
  mutable window_g : Graph.t;  (* in-window interactions, exact *)
  times : float Queue.t;  (* their timestamps, non-decreasing *)
  mutable online : Online.t;
  mutable dirty : bool;
      (* [online] no longer reflects [window_g] restricted to
         [evict_from]; any observation must rebuild first. *)
  mutable stream_last : float;  (* newest accepted timestamp *)
  mutable evict_from : float;  (* window low edge, non-decreasing *)
  mutable delta : Delta.t;  (* tables over the cumulative net *)
  mutable pending : (int * int * Interaction.t) list;
      (* accepted since the last tick, newest first *)
  mutable since_tick : int;
  mutable accepted : int;
  mutable rejected : int;
  mutable evicted : int;
  mutable rebuilds : int;
  mutable ticks : int;
  mutable alerts_n : int;
}

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Slide the window low edge up to [stream_last - window] and drop the
   timestamps that fell off.  The graph itself is pruned lazily at the
   next rebuild — eviction only has to mark the monitor dirty. *)
let evict t =
  if t.config.window < infinity && t.stream_last > neg_infinity then begin
    let from = t.stream_last -. t.config.window in
    if from > t.evict_from then t.evict_from <- from;
    let popped = ref 0 in
    while (not (Queue.is_empty t.times)) && Queue.peek t.times < t.evict_from do
      ignore (Queue.pop t.times);
      incr popped
    done;
    if !popped > 0 then begin
      t.evicted <- t.evicted + !popped;
      Obs.Counter.add c_evicted !popped;
      t.dirty <- true
    end
  end

(* Replay the restricted window in canonical order; afterwards
   [online] again equals a batch Greedy over the window. *)
let rebuild t =
  if t.dirty then begin
    t.window_g <- Window.restrict ~from_time:t.evict_from t.window_g;
    t.online <- Online.of_graph t.window_g ~source:t.config.source ~sink:t.config.sink;
    t.rebuilds <- t.rebuilds + 1;
    Obs.Counter.incr c_rebuilds;
    t.dirty <- false
  end

let create ?(base = Graph.empty) ?(on_alert = fun _ -> ()) config =
  if config.source = config.sink then invalid_arg "Daemon.create: source = sink";
  if Float.is_nan config.window || config.window <= 0. then
    invalid_arg "Daemon.create: window must be positive";
  if config.cadence < 0 then invalid_arg "Daemon.create: cadence must be non-negative";
  if config.limit < 1 then invalid_arg "Daemon.create: limit must be positive";
  let with_chains = List.exists Catalog.needs_chains config.patterns in
  let t =
    {
      config;
      on_alert;
      mutex = Mutex.create ();
      window_g = base;
      times = Queue.create ();
      online = Online.of_graph base ~source:config.source ~sink:config.sink;
      dirty = false;
      stream_last = neg_infinity;
      evict_from = neg_infinity;
      delta = Delta.create ~with_chains (Static.of_graph base);
      pending = [];
      since_tick = 0;
      accepted = 0;
      rejected = 0;
      evicted = 0;
      rebuilds = 0;
      ticks = 0;
      alerts_n = 0;
    }
  in
  let sorted = Graph.interactions_sorted base in
  Array.iter (fun (_, _, i) -> Queue.push (Interaction.time i) t.times) sorted;
  if Array.length sorted > 0 then begin
    let _, _, last = sorted.(Array.length sorted - 1) in
    t.stream_last <- Interaction.time last
  end;
  evict t;
  rebuild t;
  Obs.Gauge.set g_window (float_of_int (Queue.length t.times));
  (* Gauges are process-global: a fresh daemon must retract whatever
     lag a previous instance published.  NaN reads as "unset" and is
     skipped by the exporters; with a preloaded base there is a
     meaningful lag immediately. *)
  Obs.Gauge.set g_lag
    (if Queue.is_empty t.times || t.stream_last = neg_infinity then Float.nan
     else Float.max 0. (Unix.gettimeofday () -. t.stream_last));
  t

(* Canonical stream order: Interaction.compare is (time, qty); break
   remaining ties by (src, dst) like Graph.interactions_sorted so the
   incremental push sequence matches the batch replay exactly. *)
let entry_cmp (a : Ingest.entry) (b : Ingest.entry) =
  match Interaction.compare a.inter b.inter with
  | 0 -> (
      match Int.compare a.src b.src with
      | 0 -> Int.compare a.dst b.dst
      | c -> c)
  | c -> c

let tick_locked t =
  Obs.Span.with_ "serve.tick" @@ fun () ->
  rebuild t;
  if t.pending <> [] then begin
    (* Delta.apply wants one addition per directed pair. *)
    let by_pair = Hashtbl.create 16 in
    List.iter
      (fun (s, d, i) ->
        let prev = Option.value ~default:[] (Hashtbl.find_opt by_pair (s, d)) in
        Hashtbl.replace by_pair (s, d) (i :: prev))
      t.pending;
    let additions = Hashtbl.fold (fun (s, d) is acc -> (s, d, is) :: acc) by_pair [] in
    t.delta <- Delta.apply t.delta ~additions;
    t.pending <- []
  end;
  t.since_tick <- 0;
  t.ticks <- t.ticks + 1;
  Obs.Counter.incr c_ticks;
  Obs.Gauge.set g_rows (float_of_int t.delta.Delta.rows_recomputed);
  List.filter_map
    (fun p ->
      let r = Catalog.pb ~limit:t.config.limit t.delta.Delta.net t.delta.Delta.tables p in
      if r.Catalog.instances > 0 && r.Catalog.total_flow > 0.
         && r.Catalog.total_flow >= t.config.min_flow
      then begin
        let a =
          {
            pattern = p;
            instances = r.Catalog.instances;
            total_flow = r.Catalog.total_flow;
            tick = t.ticks;
          }
        in
        t.alerts_n <- t.alerts_n + 1;
        Obs.Counter.incr c_alerts;
        (try t.on_alert a with _ -> ());
        Some a
      end
      else None)
    t.config.patterns

let ingest t entries =
  locked t @@ fun () ->
  (* Nested under the server's [http./ingest] root span (the handler
     runs on the serving domain, where that context is installed), so
     a request trace separates ingest work from any cadence tick. *)
  Obs.Span.with_ "serve.ingest" @@ fun () ->
  let entries = List.stable_sort entry_cmp entries in
  let floor = t.stream_last in
  let accepted = ref 0 and rejected = ref 0 in
  List.iter
    (fun (e : Ingest.entry) ->
      let tm = Interaction.time e.inter in
      if e.src = e.dst || tm < floor then incr rejected
      else begin
        (* A tie with the pre-batch frontier means this entry's
           canonical position may precede interactions already pushed
           in an earlier batch: fall back to replay-on-observe. *)
        if (not t.dirty) && Float.equal tm floor then t.dirty <- true;
        if not t.dirty then ignore (Online.push t.online ~src:e.src ~dst:e.dst e.inter);
        t.window_g <- Graph.add_interaction t.window_g ~src:e.src ~dst:e.dst e.inter;
        Queue.push tm t.times;
        t.pending <- (e.src, e.dst, e.inter) :: t.pending;
        t.stream_last <- tm;
        incr accepted
      end)
    entries;
  evict t;
  t.accepted <- t.accepted + !accepted;
  t.rejected <- t.rejected + !rejected;
  t.since_tick <- t.since_tick + !accepted;
  Obs.Counter.add c_ingested !accepted;
  Obs.Counter.add c_rejected !rejected;
  Obs.Gauge.set g_window (float_of_int (Queue.length t.times));
  (* Lag is only meaningful against a nonempty window: if nothing has
     ever arrived (or eviction drained everything), the gauge must
     read NaN — skipped by the exposition — not the last stale
     value. *)
  if Queue.is_empty t.times || t.stream_last = neg_infinity then Obs.Gauge.set g_lag Float.nan
  else if !accepted > 0 then
    Obs.Gauge.set g_lag (Float.max 0. (Unix.gettimeofday () -. t.stream_last));
  let alerts =
    if t.config.cadence > 0 && t.since_tick >= t.config.cadence then tick_locked t
    else []
  in
  {
    accepted = !accepted;
    rejected = !rejected;
    window_interactions = Queue.length t.times;
    alerts;
  }

let tick t = locked t @@ fun () -> tick_locked t

let flow t =
  locked t @@ fun () ->
  rebuild t;
  Online.flow t.online

let stats t =
  locked t @@ fun () ->
  rebuild t;
  {
    flow = Online.flow t.online;
    window_interactions = Queue.length t.times;
    last_time = (if t.stream_last = neg_infinity then None else Some t.stream_last);
    accepted_total = t.accepted;
    rejected_total = t.rejected;
    evicted_total = t.evicted;
    rebuilds_total = t.rebuilds;
    ticks_total = t.ticks;
    alerts_total = t.alerts_n;
    rows_recomputed_total = t.delta.Delta.rows_recomputed;
  }

let window_graph t =
  locked t @@ fun () ->
  rebuild t;
  t.window_g

let tables t = locked t @@ fun () -> t.delta

(* HTTP glue *)

let json code body =
  { Serve.code; content_type = "application/json"; body = body ^ "\n" }

let fmt_float x = Printf.sprintf "%.17g" x

let alert_json (a : alert) =
  Printf.sprintf {|{"pattern":"%s","instances":%d,"total_flow":%s,"tick":%d}|}
    (Json.escape (Catalog.pattern_name a.pattern))
    a.instances (fmt_float a.total_flow) a.tick

let routes t =
  [
    ( `POST,
      "/ingest",
      fun ~body ->
        match Ingest.parse_body body with
        | Error msg -> json 400 (Printf.sprintf {|{"error":"%s"}|} (Json.escape msg))
        | Ok entries ->
            let r = ingest t entries in
            json 200
              (Printf.sprintf
                 {|{"accepted":%d,"rejected":%d,"window_interactions":%d,"alerts":[%s]}|}
                 r.accepted r.rejected r.window_interactions
                 (String.concat "," (List.map alert_json r.alerts))) );
    ( `GET,
      "/status",
      fun ~body:_ ->
        let s = stats t in
        json 200
          (Printf.sprintf
             {|{"flow":%s,"window_interactions":%d,"last_time":%s,"accepted_total":%d,"rejected_total":%d,"evicted_total":%d,"rebuilds_total":%d,"ticks_total":%d,"alerts_total":%d,"rows_recomputed_total":%d}|}
             (fmt_float s.flow) s.window_interactions
             (match s.last_time with None -> "null" | Some x -> fmt_float x)
             s.accepted_total s.rejected_total s.evicted_total s.rebuilds_total
             s.ticks_total s.alerts_total s.rows_recomputed_total) );
  ]
