(** Decoding of the [POST /ingest] wire format: JSON lines.

    Each non-blank line is one interaction,
    [{"src": 3, "dst": 7, "time": 1699999999.0, "qty": 250.0}],
    with the exact field domain of the CSV loader ({!Interaction.make}:
    finite non-negative time and quantity; integer vertex labels).

    Decoding errors are {e transport}-level: one malformed line fails
    the whole batch (the client is buggy; answered [400]).  Data-level
    stream conditions — a late arrival, a self-loop — are left to the
    daemon, which counts and skips them per entry instead of failing
    the batch. *)

type entry = { src : int; dst : int; inter : Interaction.t }

val parse_line : string -> (entry, string) result
(** [parse_line s] decodes one JSON object.  Errors name the missing
    or malformed field. *)

val parse_body : string -> (entry list, string) result
(** [parse_body s] decodes a whole request body; blank lines are
    skipped; errors are prefixed with the 1-based line number. *)
