let h_solve_ms_fam = Tin_obs.Obs.Histogram.make_labeled "lp_solve_ms" ~labels:[ "solver" ]
let h_solve_ms solver = Tin_obs.Obs.Histogram.labeled h_solve_ms_fam [ solver ]

type var = int

type status = [ `Optimal | `Infeasible | `Unbounded | `Iteration_limit ]

type solution = { status : status; objective : float; value : var -> float }
type direction = Maximize | Minimize

type var_info = { lb : float; ub : float; obj : float; name : string }

type t = {
  direction : direction;
  mutable vars : var_info array; (* prefix [0, nvars) is live *)
  mutable nvars : int;
  mutable rows : ((float * var) list * Simplex.sense * float) list; (* reversed *)
  mutable nrows : int;
  mutable frozen : bool;
}

let dummy_var = { lb = 0.0; ub = 0.0; obj = 0.0; name = "" }

let create ?(direction = Maximize) () =
  { direction; vars = [||]; nvars = 0; rows = []; nrows = 0; frozen = false }

let check_open t name = if t.frozen then invalid_arg (name ^ ": problem already solved")

let add_var ?(lb = 0.0) ?(ub = infinity) ?(obj = 0.0) ?name t =
  check_open t "Problem.add_var";
  if Float.is_nan lb || Float.is_nan ub || Float.is_nan obj then
    invalid_arg "Problem.add_var: NaN parameter";
  if lb > ub then invalid_arg "Problem.add_var: lb > ub";
  let id = t.nvars in
  let name = match name with Some n -> n | None -> Printf.sprintf "x%d" id in
  if t.nvars = Array.length t.vars then begin
    let grown = Array.make (max 8 (2 * t.nvars)) dummy_var in
    Array.blit t.vars 0 grown 0 t.nvars;
    t.vars <- grown
  end;
  t.vars.(t.nvars) <- { lb; ub; obj; name };
  t.nvars <- t.nvars + 1;
  id

let add_row t terms sense rhs =
  check_open t "Problem.add_constraint";
  List.iter
    (fun (_, v) ->
      if v < 0 || v >= t.nvars then invalid_arg "Problem.add_constraint: unknown variable")
    terms;
  t.rows <- (terms, sense, rhs) :: t.rows;
  t.nrows <- t.nrows + 1

let add_le t terms rhs = add_row t terms Simplex.Le rhs
let add_ge t terms rhs = add_row t terms Simplex.Ge rhs
let add_eq t terms rhs = add_row t terms Simplex.Eq rhs

let n_vars t = t.nvars
let n_constraints t = t.nrows

let var_name t v =
  if v < 0 || v >= t.nvars then invalid_arg "Problem.var_name: unknown variable"
  else t.vars.(v).name

(* Standard-form translation.

   Each user variable [x] with bounds [lb, ub] maps to non-negative
   standard variables:
   - [lb = 0]:                x = y
   - finite [lb]:             x = y + lb          (shift)
   - [lb = -inf]:             x = y+ - y-         (split)
   Finite upper bounds become extra rows over the mapped expression. *)
type mapping =
  | Shift of int * float (* x = std.(i) + offset *)
  | Split of int * int (* x = std.(i) - std.(j) *)

type solver = [ `Auto | `Dense | `Bounded | `Sparse ]

(* `Auto picks `Sparse over `Bounded when the constraint matrix is
   large and empty enough that the revised simplex's per-iteration
   cost (O(nnz) pricing + eta-file solves) beats the dense tableau's
   O(m·(n+m)) pivot. *)
let sparse_min_cells = 4096
let sparse_max_density = 0.25

let solve ?(solver = `Auto) ?eps ?max_iters ?metrics t =
  t.frozen <- true;
  let vars = Array.sub t.vars 0 t.nvars in
  let nv = Array.length vars in
  let mapping = Array.make nv (Shift (0, 0.0)) in
  let nstd = ref 0 in
  let fresh () =
    let i = !nstd in
    incr nstd;
    i
  in
  Array.iteri
    (fun i { lb; _ } ->
      if lb = neg_infinity then mapping.(i) <- Split (fresh (), fresh ())
      else mapping.(i) <- Shift (fresh (), lb))
    vars;
  let n = !nstd in
  (* Objective over standard variables; Minimize flips the sign. *)
  let sign = match t.direction with Maximize -> 1.0 | Minimize -> -1.0 in
  let c = Array.make n 0.0 in
  let obj_const = ref 0.0 in
  Array.iteri
    (fun i { obj; _ } ->
      match mapping.(i) with
      | Shift (j, off) ->
          c.(j) <- c.(j) +. (sign *. obj);
          obj_const := !obj_const +. (obj *. off)
      | Split (jp, jm) ->
          c.(jp) <- c.(jp) +. (sign *. obj);
          c.(jm) <- c.(jm) -. (sign *. obj))
    vars;
  (* Dense row expansion — only for the `Dense / `Bounded paths. *)
  let expand terms =
    let coefs = Array.make n 0.0 and const = ref 0.0 in
    List.iter
      (fun (coef, v) ->
        match mapping.(v) with
        | Shift (j, off) ->
            coefs.(j) <- coefs.(j) +. coef;
            const := !const +. (coef *. off)
        | Split (jp, jm) ->
            coefs.(jp) <- coefs.(jp) +. coef;
            coefs.(jm) <- coefs.(jm) -. coef)
      terms;
    (coefs, !const)
  in
  (* Shape test without densifying: the bounded/sparse solvers handle
     [0 <= y <= u] natively when every row is a <= with non-negative
     (shift-adjusted) rhs and no variable was split. *)
  let row_const terms =
    List.fold_left
      (fun acc (coef, v) ->
        match mapping.(v) with Shift (_, off) -> acc +. (coef *. off) | Split _ -> acc)
      0.0 terms
  in
  let bounded_ok =
    Array.for_all (fun m -> match m with Shift _ -> true | Split _ -> false) mapping
    && List.for_all
         (fun (terms, sense, rhs) -> sense = Simplex.Le && rhs -. row_const terms >= 0.0)
         t.rows
  in
  let bounded_shape_msg name =
    Printf.sprintf "Problem.solve: %s requires <= rows, non-negative rhs, no free vars" name
  in
  let choice =
    match solver with
    | `Dense -> `Dense
    | `Bounded ->
        if not bounded_ok then invalid_arg (bounded_shape_msg "`Bounded");
        `Bounded
    | `Sparse ->
        if not bounded_ok then invalid_arg (bounded_shape_msg "`Sparse");
        `Sparse
    | `Auto ->
        if not bounded_ok then `Dense
        else if t.nrows * n >= sparse_min_cells then begin
          let nnz =
            List.fold_left (fun acc (terms, _, _) -> acc + List.length terms) 0 t.rows
          in
          let density = float_of_int nnz /. (float_of_int t.nrows *. float_of_int n) in
          if density <= sparse_max_density then `Sparse else `Bounded
        end
        else `Bounded
  in
  let native_upper () =
    let upper = Array.make n infinity in
    Array.iteri
      (fun i { ub; _ } ->
        match mapping.(i) with
        | Shift (j, off) -> upper.(j) <- ub -. off
        | Split _ -> assert false)
      vars;
    upper
  in
  let outcome =
    let compute () =
      match choice with
      | `Sparse ->
        (* Build CSC storage straight from the term lists — no
           densification.  [t.rows] is reversed, so row [k] of the list
           is constraint [nrows - 1 - k]; duplicate terms may produce
           duplicate (row, coef) entries, which the solver sums. *)
        let m = t.nrows in
        let srhs = Array.make m 0.0 in
        let cols = Array.make n [] in
        List.iteri
          (fun k (terms, _, rhs) ->
            let i = m - 1 - k in
            let const = ref 0.0 in
            List.iter
              (fun (coef, v) ->
                match mapping.(v) with
                | Shift (j, off) ->
                    cols.(j) <- (i, coef) :: cols.(j);
                    const := !const +. (coef *. off)
                | Split _ -> assert false)
              terms;
            srhs.(i) <- rhs -. !const)
          t.rows;
        (match
           Sparse.solve ?eps ?max_iters ?metrics ~c ~upper:(native_upper ()) ~rhs:srhs ~cols ()
         with
        | Sparse.Optimal { objective; solution } -> Simplex.Optimal { objective; solution }
        | Sparse.Unbounded -> Simplex.Unbounded
        | Sparse.Iteration_limit -> Simplex.Iteration_limit)
    | `Bounded ->
        let brows =
          List.rev_map
            (fun (terms, _, rhs) ->
              let coefs, const = expand terms in
              (coefs, rhs -. const))
            t.rows
        in
        (match Bounded.solve ?eps ?max_iters ?metrics ~c ~upper:(native_upper ()) ~rows:brows () with
        | Bounded.Optimal { objective; solution } -> Simplex.Optimal { objective; solution }
        | Bounded.Unbounded -> Simplex.Unbounded
        | Bounded.Iteration_limit -> Simplex.Iteration_limit)
    | `Dense ->
        let rows = ref [] in
        List.iter
          (fun (terms, sense, rhs) ->
            let coefs, const = expand terms in
            rows := (coefs, sense, rhs -. const) :: !rows)
          t.rows;
        (* Finite upper bounds as explicit rows. *)
        Array.iteri
          (fun i { ub; _ } ->
            if ub < infinity then begin
              let coefs, const = expand [ (1.0, i) ] in
              rows := (coefs, Simplex.Le, ub -. const) :: !rows
            end)
          vars;
        Simplex.solve ?eps ?max_iters ?metrics ~c ~rows:!rows ()
    in
    let solver_name =
      match choice with `Sparse -> "sparse" | `Bounded -> "bounded" | `Dense -> "dense"
    in
    (* Latency histogram per backend; the clock reads are gated so the
       disabled path stays syscall-free. *)
    let compute =
      if Atomic.get Tin_obs.Obs.enabled then fun () ->
        let t0 = Tin_util.Timer.now_ns () in
        let outcome = compute () in
        let dt_ms = Int64.to_float (Int64.sub (Tin_util.Timer.now_ns ()) t0) /. 1e6 in
        Tin_obs.Obs.Histogram.observe (h_solve_ms solver_name) dt_ms;
        outcome
      else compute
    in
    (* Span args are only materialized when tracing is on: the disabled
       path must not allocate. *)
    if Tin_obs.Obs.recording () then
      Tin_obs.Obs.Span.with_ "lp.solve"
        ~args:
          [
            ("solver", solver_name); ("vars", string_of_int n); ("rows", string_of_int t.nrows);
          ]
        compute
    else compute ()
  in
  match outcome with
  | Simplex.Optimal { solution; _ } ->
      let value v =
        if v < 0 || v >= nv then invalid_arg "Problem.solution.value: unknown variable"
        else
          match mapping.(v) with
          | Shift (j, off) -> solution.(j) +. off
          | Split (jp, jm) -> solution.(jp) -. solution.(jm)
      in
      let objective =
        Array.to_list (Array.mapi (fun i { obj; _ } -> obj *. value i) vars)
        |> List.fold_left ( +. ) 0.0
      in
      ignore !obj_const;
      { status = `Optimal; objective; value }
  | Simplex.Infeasible -> { status = `Infeasible; objective = 0.0; value = (fun _ -> 0.0) }
  | Simplex.Unbounded -> { status = `Unbounded; objective = 0.0; value = (fun _ -> 0.0) }
  | Simplex.Iteration_limit ->
      { status = `Iteration_limit; objective = 0.0; value = (fun _ -> 0.0) }
