type var = int

type status = [ `Optimal | `Infeasible | `Unbounded | `Iteration_limit ]

type solution = { status : status; objective : float; value : var -> float }
type direction = Maximize | Minimize

type var_info = { lb : float; ub : float; obj : float; name : string }

type t = {
  direction : direction;
  mutable vars : var_info list; (* reversed *)
  mutable nvars : int;
  mutable rows : ((float * var) list * Simplex.sense * float) list; (* reversed *)
  mutable nrows : int;
  mutable frozen : bool;
}

let create ?(direction = Maximize) () =
  { direction; vars = []; nvars = 0; rows = []; nrows = 0; frozen = false }

let check_open t name = if t.frozen then invalid_arg (name ^ ": problem already solved")

let add_var ?(lb = 0.0) ?(ub = infinity) ?(obj = 0.0) ?name t =
  check_open t "Problem.add_var";
  if Float.is_nan lb || Float.is_nan ub || Float.is_nan obj then
    invalid_arg "Problem.add_var: NaN parameter";
  if lb > ub then invalid_arg "Problem.add_var: lb > ub";
  let id = t.nvars in
  let name = match name with Some n -> n | None -> Printf.sprintf "x%d" id in
  t.vars <- { lb; ub; obj; name } :: t.vars;
  t.nvars <- t.nvars + 1;
  id

let add_row t terms sense rhs =
  check_open t "Problem.add_constraint";
  List.iter
    (fun (_, v) ->
      if v < 0 || v >= t.nvars then invalid_arg "Problem.add_constraint: unknown variable")
    terms;
  t.rows <- (terms, sense, rhs) :: t.rows;
  t.nrows <- t.nrows + 1

let add_le t terms rhs = add_row t terms Simplex.Le rhs
let add_ge t terms rhs = add_row t terms Simplex.Ge rhs
let add_eq t terms rhs = add_row t terms Simplex.Eq rhs

let n_vars t = t.nvars
let n_constraints t = t.nrows

let var_name t v =
  match List.nth_opt (List.rev t.vars) v with
  | Some info -> info.name
  | None -> invalid_arg "Problem.var_name: unknown variable"

(* Standard-form translation.

   Each user variable [x] with bounds [lb, ub] maps to non-negative
   standard variables:
   - [lb = 0]:                x = y
   - finite [lb]:             x = y + lb          (shift)
   - [lb = -inf]:             x = y+ - y-         (split)
   Finite upper bounds become extra rows over the mapped expression. *)
type mapping =
  | Shift of int * float (* x = std.(i) + offset *)
  | Split of int * int (* x = std.(i) - std.(j) *)

type solver = [ `Auto | `Dense | `Bounded ]

let solve ?(solver = `Auto) ?eps ?max_iters t =
  t.frozen <- true;
  let vars = Array.of_list (List.rev t.vars) in
  let nv = Array.length vars in
  let mapping = Array.make nv (Shift (0, 0.0)) in
  let nstd = ref 0 in
  let fresh () =
    let i = !nstd in
    incr nstd;
    i
  in
  Array.iteri
    (fun i { lb; _ } ->
      if lb = neg_infinity then mapping.(i) <- Split (fresh (), fresh ())
      else mapping.(i) <- Shift (fresh (), lb))
    vars;
  let n = !nstd in
  (* Objective over standard variables; Minimize flips the sign. *)
  let sign = match t.direction with Maximize -> 1.0 | Minimize -> -1.0 in
  let c = Array.make n 0.0 in
  let obj_const = ref 0.0 in
  Array.iteri
    (fun i { obj; _ } ->
      match mapping.(i) with
      | Shift (j, off) ->
          c.(j) <- c.(j) +. (sign *. obj);
          obj_const := !obj_const +. (obj *. off)
      | Split (jp, jm) ->
          c.(jp) <- c.(jp) +. (sign *. obj);
          c.(jm) <- c.(jm) -. (sign *. obj))
    vars;
  (* Constraint rows. *)
  let expand terms =
    let coefs = Array.make n 0.0 and const = ref 0.0 in
    List.iter
      (fun (coef, v) ->
        match mapping.(v) with
        | Shift (j, off) ->
            coefs.(j) <- coefs.(j) +. coef;
            const := !const +. (coef *. off)
        | Split (jp, jm) ->
            coefs.(jp) <- coefs.(jp) +. coef;
            coefs.(jm) <- coefs.(jm) -. coef)
      terms;
    (coefs, !const)
  in
  let rows = ref [] in
  List.iter
    (fun (terms, sense, rhs) ->
      let coefs, const = expand terms in
      rows := (coefs, sense, rhs -. const) :: !rows)
    t.rows;
  (* The bounded solver handles [0 <= y <= u] natively when every row
     is a <= with non-negative (shift-adjusted) rhs and no variable was
     split; otherwise upper bounds become extra rows for the dense
     solver. *)
  let bounded_ok =
    Array.for_all (fun m -> match m with Shift _ -> true | Split _ -> false) mapping
    && List.for_all (fun (_, sense, rhs) -> sense = Simplex.Le && rhs >= 0.0) !rows
  in
  let use_bounded =
    match solver with
    | `Bounded ->
        if not bounded_ok then
          invalid_arg "Problem.solve: `Bounded requires <= rows, non-negative rhs, no free vars";
        true
    | `Dense -> false
    | `Auto -> bounded_ok
  in
  let outcome =
    if use_bounded then begin
      let upper = Array.make n infinity in
      Array.iteri
        (fun i { ub; _ } ->
          match mapping.(i) with
          | Shift (j, off) -> upper.(j) <- ub -. off
          | Split _ -> assert false)
        vars;
      let brows = List.map (fun (coefs, _, rhs) -> (coefs, rhs)) !rows in
      match Bounded.solve ?eps ?max_iters ~c ~upper ~rows:brows () with
      | Bounded.Optimal { objective; solution } -> Simplex.Optimal { objective; solution }
      | Bounded.Unbounded -> Simplex.Unbounded
      | Bounded.Iteration_limit -> Simplex.Iteration_limit
    end
    else begin
      (* Finite upper bounds as explicit rows. *)
      Array.iteri
        (fun i { ub; _ } ->
          if ub < infinity then begin
            let coefs, const = expand [ (1.0, i) ] in
            rows := (coefs, Simplex.Le, ub -. const) :: !rows
          end)
        vars;
      Simplex.solve ?eps ?max_iters ~c ~rows:!rows ()
    end
  in
  match outcome with
  | Simplex.Optimal { solution; _ } ->
      let value v =
        if v < 0 || v >= nv then invalid_arg "Problem.solution.value: unknown variable"
        else
          match mapping.(v) with
          | Shift (j, off) -> solution.(j) +. off
          | Split (jp, jm) -> solution.(jp) -. solution.(jm)
      in
      let objective =
        Array.to_list (Array.mapi (fun i { obj; _ } -> obj *. value i) vars)
        |> List.fold_left ( +. ) 0.0
      in
      ignore !obj_const;
      { status = `Optimal; objective; value }
  | Simplex.Infeasible -> { status = `Infeasible; objective = 0.0; value = (fun _ -> 0.0) }
  | Simplex.Unbounded -> { status = `Unbounded; objective = 0.0; value = (fun _ -> 0.0) }
  | Simplex.Iteration_limit ->
      { status = `Iteration_limit; objective = 0.0; value = (fun _ -> 0.0) }
