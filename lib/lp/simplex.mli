(** Two-phase primal simplex on the dense tableau.

    This is the solver core: it expects a problem already in standard
    form — maximize [c·x] subject to [A x (≤|=|≥) b] with [x ≥ 0] —
    and handles right-hand-side normalisation, slack/surplus/artificial
    variables, phase 1 feasibility, and phase 2 optimisation itself.
    Pivoting uses Dantzig pricing and switches to Bland's rule after a
    stall threshold, which guarantees termination on degenerate
    problems.

    The higher-level {!Problem} module translates general variable
    bounds and free variables into this form; most users should go
    through it. *)

type sense = Le | Ge | Eq

type outcome =
  | Optimal of { objective : float; solution : float array }
      (** Optimal basic solution; [solution] has one entry per original
          (standard-form) variable. *)
  | Infeasible  (** Phase 1 ended with positive artificial value. *)
  | Unbounded  (** A pivot column had no blocking row in phase 2. *)
  | Iteration_limit
      (** Safety valve; with Bland's rule active this indicates a
          pathological instance rather than cycling. *)

val solve :
  ?eps:float ->
  ?max_iters:int ->
  ?metrics:Solver_metrics.t ->
  c:float array ->
  rows:(float array * sense * float) list ->
  unit ->
  outcome
(** [solve ~c ~rows ()] maximizes [c·x] subject to [rows] and [x ≥ 0].
    Each row is [(coefficients, sense, rhs)]; every coefficient array
    must have the same length as [c].

    @param eps pivot/zero tolerance (default [Tin_util.Fcmp.default_policy.pivot_eps]).
    @param max_iters pivot budget {e per phase} (default [50_000]).
    The budget is exact: a phase needing [p] pivots returns its result
    with [max_iters = p] and [Iteration_limit] with [max_iters = p - 1].
    @param metrics accumulates pivot counts into the given record
    (see {!Solver_metrics}); the same counts also feed the
    [lp_phase1_iters] / [lp_phase2_iters] / [lp_pivots] labeled
    observability counters with [solver="dense"] ({!Tin_obs.Obs}). *)
