module Obs = Tin_obs.Obs

let c_iters = Obs.Counter.(labeled (make_labeled "lp_iters" ~labels:[ "solver" ]) [ "sparse" ])
let c_pivots = Obs.Counter.(labeled (make_labeled "lp_pivots" ~labels:[ "solver" ]) [ "sparse" ])
let c_flips = Obs.Counter.(labeled (make_labeled "lp_bound_flips" ~labels:[ "solver" ]) [ "sparse" ])
let c_refact = Obs.Counter.(labeled (make_labeled "lp_refactorizations" ~labels:[ "solver" ]) [ "sparse" ])
let c_eta_resets = Obs.Counter.(labeled (make_labeled "lp_eta_resets" ~labels:[ "solver" ]) [ "sparse" ])

type outcome =
  | Optimal of { objective : float; solution : float array }
  | Unbounded
  | Iteration_limit

(* Product-form-of-the-inverse bounded-variable revised simplex.

   Columns 0..n-1 are the structural variables (bounds [0, upper.(j)]),
   columns n..n+m-1 the slacks (row i's slack is column n+i, bounds
   [0, inf)).  The constraint matrix is stored column-wise and never
   densified; slack columns are implicit unit vectors.

   The basis inverse is represented as an eta file: B^-1 = E_k ... E_1
   where each E is the inverse of an elementary column change.  For an
   entering column with FTRANed direction w pivoting in row r:
     FTRAN step:  t = v_r / w_r;  v_i -= w_i * t (i != r);  v_r = t
     BTRAN step:  y_r = (y_r - sum_{i != r} w_i * y_i) / w_r
   The file is rebuilt from scratch (Gauss-Jordan with partial
   pivoting, slack columns first) every [refactor_every] etas, at which
   point the basic values are also recomputed from the original data to
   flush accumulated drift.

   The origin (all structural variables at 0, slacks basic at rhs) is
   feasible because rhs >= 0, so no phase 1 is needed. *)

type eta = { er : int; wr : float; ew : (int * float) array (* excludes er *) }

let solve ?(eps = Tin_util.Fcmp.(default_policy.pivot_eps)) ?(max_iters = 50_000)
    ?(refactor_every = 64) ?metrics ~c ~upper ~rhs ~cols () =
  let n = Array.length c in
  let m = Array.length rhs in
  let npivots = ref 0 and nflips = ref 0 and nretries = ref 0 and nrefact = ref 0 in
  let record outcome =
    Obs.Counter.add c_iters (!npivots + !nflips + !nretries);
    Obs.Counter.add c_pivots !npivots;
    Obs.Counter.add c_flips !nflips;
    Obs.Counter.add c_refact !nrefact;
    Obs.Counter.add c_eta_resets !nretries;
    (match metrics with
    | Some (mt : Solver_metrics.t) ->
        mt.iterations <- mt.iterations + !npivots + !nflips + !nretries;
        mt.pivots <- mt.pivots + !npivots;
        mt.bound_flips <- mt.bound_flips + !nflips;
        mt.refactorizations <- mt.refactorizations + !nrefact
    | None -> ());
    outcome
  in
  if Array.length upper <> n then invalid_arg "Sparse.solve: bounds arity mismatch";
  if Array.length cols <> n then invalid_arg "Sparse.solve: column arity mismatch";
  if refactor_every < 1 then invalid_arg "Sparse.solve: refactor_every must be positive";
  Array.iter
    (fun u -> if Float.is_nan u || u < 0.0 then invalid_arg "Sparse.solve: bad upper bound")
    upper;
  Array.iter
    (fun b -> if b < 0.0 then invalid_arg "Sparse.solve: negative rhs (origin must be feasible)")
    rhs;
  let cols =
    Array.map
      (fun entries ->
        List.iter
          (fun (i, _) ->
            if i < 0 || i >= m then invalid_arg "Sparse.solve: row index out of range")
          entries;
        Array.of_list entries)
      cols
  in
  let ncols = n + m in
  (* --- eta file --- *)
  let dummy = { er = 0; wr = 1.0; ew = [||] } in
  let etas = ref (Array.make 32 dummy) in
  let neta = ref 0 in
  let push_eta e =
    if !neta = Array.length !etas then begin
      let bigger = Array.make (2 * !neta) dummy in
      Array.blit !etas 0 bigger 0 !neta;
      etas := bigger
    end;
    !etas.(!neta) <- e;
    incr neta
  in
  let ftran v =
    for k = 0 to !neta - 1 do
      let { er; wr; ew } = !etas.(k) in
      let t = v.(er) in
      if t <> 0.0 then begin
        let t = t /. wr in
        Array.iter (fun (i, wi) -> v.(i) <- v.(i) -. (wi *. t)) ew;
        v.(er) <- t
      end
    done
  in
  let btran y =
    for k = !neta - 1 downto 0 do
      let { er; wr; ew } = !etas.(k) in
      let s = ref y.(er) in
      Array.iter (fun (i, wi) -> s := !s -. (wi *. y.(i))) ew;
      y.(er) <- !s /. wr
    done
  in
  (* --- columns (slacks implicit) --- *)
  let scatter j v =
    if j < n then Array.iter (fun (i, a) -> v.(i) <- v.(i) +. a) cols.(j)
    else v.(j - n) <- v.(j - n) +. 1.0
  in
  let col_dot y j =
    if j < n then Array.fold_left (fun acc (i, a) -> acc +. (a *. y.(i))) 0.0 cols.(j)
    else y.(j - n)
  in
  (* --- basis state --- *)
  let basis = Array.init m (fun i -> n + i) in
  let is_basic = Array.make ncols false in
  for i = 0 to m - 1 do
    is_basic.(n + i) <- true
  done;
  let at_upper = Array.make ncols false in
  let xb = Array.copy rhs in
  let bound j = if j < n then upper.(j) else infinity in
  let cost j = if j < n then c.(j) else 0.0 in
  let w = Array.make m 0.0 (* FTRANed entering column / scratch *) in
  let y = Array.make m 0.0 (* simplex multipliers *) in
  let base_etas = ref 0 (* eta count right after the last reinversion *) in
  let refactorize () =
    incr nrefact;
    neta := 0;
    let newbasis = Array.make m (-1) in
    let assigned = Array.make m false in
    (* Slack columns first: with an empty eta file a basic slack n+i is
       already the unit vector of row i, so it installs with a trivial
       (skipped) eta.  Structural columns then pivot with row choice by
       largest magnitude among unassigned rows. *)
    let structural = ref [] in
    Array.iter
      (fun q ->
        if q >= n then begin
          newbasis.(q - n) <- q;
          assigned.(q - n) <- true
        end
        else structural := q :: !structural)
      basis;
    List.iter
      (fun q ->
        Array.fill w 0 m 0.0;
        scatter q w;
        ftran w;
        let r = ref (-1) and best = ref 0.0 in
        for i = 0 to m - 1 do
          if (not assigned.(i)) && Float.abs w.(i) > !best then begin
            best := Float.abs w.(i);
            r := i
          end
        done;
        if !r < 0 then failwith "Sparse.solve: singular basis";
        let r = !r in
        let ew = ref [] in
        for i = 0 to m - 1 do
          if i <> r && Float.abs w.(i) > 1e-13 then ew := (i, w.(i)) :: !ew
        done;
        push_eta { er = r; wr = w.(r); ew = Array.of_list !ew };
        newbasis.(r) <- q;
        assigned.(r) <- true)
      (List.sort compare !structural);
    Array.blit newbasis 0 basis 0 m;
    (* Recompute basic values from the original data:
       x_B = B^-1 (rhs - sum of at-upper nonbasic columns at their bound). *)
    Array.blit rhs 0 xb 0 m;
    for j = 0 to n - 1 do
      if (not is_basic.(j)) && at_upper.(j) && upper.(j) <> 0.0 then
        Array.iter (fun (i, a) -> xb.(i) <- xb.(i) -. (a *. upper.(j))) cols.(j)
    done;
    ftran xb;
    for i = 0 to m - 1 do
      if xb.(i) < 0.0 && xb.(i) > -1e-9 then xb.(i) <- 0.0
    done;
    base_etas := !neta
  in
  (* --- pricing --- *)
  let compute_y () =
    for i = 0 to m - 1 do
      y.(i) <- cost basis.(i)
    done;
    btran y
  in
  let reduced_cost j = cost j -. col_dot y j in
  let improving j d = if at_upper.(j) then d < -.eps else d > eps in
  (* Candidate list for partial (multiple) pricing: a full Dantzig scan
     stocks the list with the most improving columns; subsequent
     iterations re-price only the candidates (against fresh
     multipliers) until the list runs dry, then rescan.  Optimality is
     only ever declared by a full scan. *)
  let cand_size = 32 in
  let cand = Array.make cand_size (-1) in
  let cand_d = Array.make cand_size 0.0 in
  let ncand = ref 0 in
  let full_scan () =
    ncand := 0;
    for j = 0 to ncols - 1 do
      if not is_basic.(j) then begin
        let d = reduced_cost j in
        if improving j d then begin
          let a = Float.abs d in
          if !ncand < cand_size then begin
            cand.(!ncand) <- j;
            cand_d.(!ncand) <- a;
            incr ncand
          end
          else begin
            (* replace the weakest kept candidate when beaten *)
            let weakest = ref 0 in
            for k = 1 to cand_size - 1 do
              if cand_d.(k) < cand_d.(!weakest) then weakest := k
            done;
            if a > cand_d.(!weakest) then begin
              cand.(!weakest) <- j;
              cand_d.(!weakest) <- a
            end
          end
        end
      end
    done;
    let best = ref (-1) and best_a = ref 0.0 in
    for k = 0 to !ncand - 1 do
      if cand_d.(k) > !best_a then begin
        best_a := cand_d.(k);
        best := cand.(k)
      end
    done;
    !best
  in
  let pick_entering ~bland =
    if bland then begin
      (* Bland: lowest-index improving column, full scan. *)
      let r = ref (-1) and j = ref 0 in
      while !r < 0 && !j < ncols do
        if not is_basic.(!j) then begin
          let d = reduced_cost !j in
          if improving !j d then r := !j
        end;
        incr j
      done;
      !r
    end
    else begin
      let best = ref (-1) and best_a = ref 0.0 in
      let k = ref 0 in
      while !k < !ncand do
        let j = cand.(!k) in
        if is_basic.(j) then begin
          cand.(!k) <- cand.(!ncand - 1);
          cand_d.(!k) <- cand_d.(!ncand - 1);
          decr ncand
        end
        else begin
          let d = reduced_cost j in
          if improving j d && Float.abs d > !best_a then begin
            best_a := Float.abs d;
            best := j
          end;
          incr k
        end
      done;
      if !best >= 0 then !best else full_scan ()
    end
  in
  let finish () =
    (* Flush eta-file drift before reading the solution off the basis. *)
    if !neta > 0 then refactorize ();
    let solution = Array.make n 0.0 in
    for j = 0 to n - 1 do
      if (not is_basic.(j)) && at_upper.(j) then solution.(j) <- upper.(j)
    done;
    Array.iteri (fun i q -> if q < n then solution.(q) <- xb.(i)) basis;
    let objective = ref 0.0 in
    for j = 0 to n - 1 do
      objective := !objective +. (c.(j) *. solution.(j))
    done;
    Optimal { objective = !objective; solution }
  in
  let bland_after = 200 + (20 * (m + ncols)) in
  (* The [max_iters] budget is checked only after pricing has found an
     improving variable, so it bounds the budgeted work passes (pivots,
     bound flips, refactorize-retries) exactly (see
     {!Solver_metrics}). *)
  let rec iterate k =
    begin
      if !neta - !base_etas >= refactor_every then refactorize ();
      compute_y ();
      let q = pick_entering ~bland:(k > bland_after) in
      if q < 0 then finish ()
      else if k >= max_iters then Iteration_limit
      else begin
        Array.fill w 0 m 0.0;
        scatter q w;
        ftran w;
        let sigma = if at_upper.(q) then -1.0 else 1.0 in
        (* Bounded ratio test over z_i = sigma * w_i (same rules and
           tie-breaks as Bounded.solve). *)
        let t_star = ref (bound q) in
        let block = ref (-1) in
        let block_at_upper = ref false in
        for i = 0 to m - 1 do
          let z = sigma *. w.(i) in
          if z > eps then begin
            let ratio = xb.(i) /. z in
            if
              ratio < !t_star -. 1e-12
              || (ratio < !t_star +. 1e-12 && !block >= 0 && basis.(i) < basis.(!block))
            then begin
              t_star := ratio;
              block := i;
              block_at_upper := false
            end
          end
          else if z < -.eps then begin
            let ub = bound basis.(i) in
            if ub < infinity then begin
              let ratio = (ub -. xb.(i)) /. -.z in
              if
                ratio < !t_star -. 1e-12
                || (ratio < !t_star +. 1e-12 && !block >= 0 && basis.(i) < basis.(!block))
              then begin
                t_star := ratio;
                block := i;
                block_at_upper := true
              end
            end
          end
        done;
        if !t_star = infinity then Unbounded
        else if !block >= 0 && Float.abs w.(!block) < 1e-7 && !neta > !base_etas then begin
          (* The pivot element is too small to trust through a long eta
             file; refactorize and redo the iteration on fresh numbers. *)
          incr nretries;
          refactorize ();
          iterate (k + 1)
        end
        else begin
          let step = Float.max 0.0 !t_star in
          if step <> 0.0 then
            for i = 0 to m - 1 do
              if w.(i) <> 0.0 then begin
                xb.(i) <- xb.(i) -. (step *. sigma *. w.(i));
                if xb.(i) < 0.0 && xb.(i) > -1e-11 then xb.(i) <- 0.0
              end
            done;
          if !block < 0 then begin
            (* Bound flip: q jumps to its other bound; no basis change. *)
            at_upper.(q) <- not at_upper.(q);
            incr nflips;
            iterate (k + 1)
          end
          else begin
            let r = !block in
            let p = basis.(r) in
            let vq = (if at_upper.(q) then bound q else 0.0) +. (sigma *. step) in
            let ew = ref [] in
            for i = 0 to m - 1 do
              if i <> r && Float.abs w.(i) > 1e-13 then ew := (i, w.(i)) :: !ew
            done;
            push_eta { er = r; wr = w.(r); ew = Array.of_list !ew };
            basis.(r) <- q;
            is_basic.(q) <- true;
            is_basic.(p) <- false;
            at_upper.(p) <- !block_at_upper;
            at_upper.(q) <- false;
            xb.(r) <- vq;
            incr npivots;
            iterate (k + 1)
          end
        end
      end
    end
  in
  record (iterate 0)
