(** Per-call solver work counts, shared by {!Simplex}, {!Bounded} and
    {!Sparse} (and surfaced through [Problem.solve ?metrics]).

    Each [solve] call {e adds} its counts to the record it is handed, so
    one record can aggregate a whole batch.  An "iteration" is a pricing
    pass that found an improving candidate and did work — a pivot, a
    bound flip, or (sparse only) a numerical refactorize-and-retry; the
    [max_iters] budget counts exactly these.  Fields not applicable to a
    solver stay untouched (e.g. [bound_flips] for the dense simplex,
    [phase1_iterations] outside two-phase). *)

type t = {
  mutable iterations : int;  (** Budgeted work passes (see above). *)
  mutable phase1_iterations : int;
      (** Dense two-phase only: the phase-1 share of [iterations]. *)
  mutable pivots : int;  (** Basis changes. *)
  mutable bound_flips : int;
      (** Bounded-variable solvers: nonbasic jumps between bounds. *)
  mutable refactorizations : int;
      (** Sparse only: eta-file rebuilds (scheduled and defensive). *)
}

val create : unit -> t
(** All-zero record. *)
