(** Linear-programming front end.

    A mutable problem builder in the style of classic LP libraries
    (the paper's implementation used lpsolve): create variables with
    bounds and objective coefficients, add linear constraints, then
    {!solve}.  General bounds are reduced to the standard form expected
    by {!Simplex}: positive lower bounds are shifted away, finite upper
    bounds become rows, and free variables are split. *)

type t
type var

type status = [ `Optimal | `Infeasible | `Unbounded | `Iteration_limit ]

type solution = {
  status : status;
  objective : float;  (** Meaningful only when [status = `Optimal]. *)
  value : var -> float;
      (** Optimal value of a variable; [0.] unless [`Optimal]. *)
}

type direction = Maximize | Minimize

val create : ?direction:direction -> unit -> t
(** Fresh problem; default direction is [Maximize]. *)

val add_var : ?lb:float -> ?ub:float -> ?obj:float -> ?name:string -> t -> var
(** New variable with bounds [\[lb, ub\]] (defaults [0., infinity]) and
    objective coefficient [obj] (default [0.]).  [lb] may be
    [neg_infinity] (free variable) and [ub] [infinity].
    @raise Invalid_argument if [lb > ub] or called after {!solve}. *)

val add_le : t -> (float * var) list -> float -> unit
(** [add_le p terms rhs] adds [Σ coef·var ≤ rhs].  Repeated variables
    in [terms] are summed. *)

val add_ge : t -> (float * var) list -> float -> unit
val add_eq : t -> (float * var) list -> float -> unit

val n_vars : t -> int
val n_constraints : t -> int

val var_name : t -> var -> string

type solver = [ `Auto | `Dense | `Bounded | `Sparse ]
(** [`Dense] is the two-phase row simplex ({!Simplex}: any
    constraints); [`Bounded] the bounded-variable simplex
    ({!Bounded}: only [≤] rows feasible at the lower-bound origin,
    but upper bounds cost no extra rows); [`Sparse] the
    bounded-variable {e revised} simplex ({!Sparse}: same shape as
    [`Bounded], but column-wise sparse storage built straight from the
    term lists and an eta-file basis inverse — no tableau).  [`Auto]
    picks [`Dense] when the shape demands it, [`Sparse] when the
    constraint matrix is large ([rows × cols ≥ 4096]) and sparse
    (density ≤ 0.25), and [`Bounded] otherwise. *)

val solve :
  ?solver:solver -> ?eps:float -> ?max_iters:int -> ?metrics:Solver_metrics.t -> t -> solution
(** Solves the problem.  The builder is frozen afterwards.

    [metrics] accumulates the backend's work counts (iterations,
    pivots, bound flips, refactorizations) into the given record; the
    same counts always feed the [lp.*] observability counters, and the
    whole call is wrapped in an ["lp.solve"] span (with solver, vars
    and rows args) when {!Tin_obs.Obs} tracing is enabled.
    @raise Invalid_argument if [`Bounded] or [`Sparse] is forced on a
    problem outside its shape. *)
