type t = {
  mutable iterations : int;
  mutable phase1_iterations : int;
  mutable pivots : int;
  mutable bound_flips : int;
  mutable refactorizations : int;
}

let create () =
  { iterations = 0; phase1_iterations = 0; pivots = 0; bound_flips = 0; refactorizations = 0 }
