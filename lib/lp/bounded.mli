(** Simplex with native upper bounds ("bounded-variable simplex").

    The flow LP of Section 4.2.1 has one bound pair [0 ≤ x_i ≤ q_i]
    per interaction.  Encoding the upper bounds as explicit rows (what
    {!Simplex} requires) doubles the tableau height; the classic
    bounded-variable simplex instead keeps nonbasic variables at
    either bound and handles "bound flips" without pivoting, so the
    tableau has only the true buffer constraints.  On flow LPs this
    roughly halves memory and row-eliminations per pivot — the
    trade-off is measured by the [ablation] benchmark target.

    Scope: maximization over [A x ≤ b] with [b ≥ 0] and
    [0 ≤ x ≤ u] ([u_j] may be [infinity]) — exactly the shape of the
    paper's LP, which is feasible at the origin.
    @raise Invalid_argument if some [b < 0] (use {!Simplex} for
    general rows). *)

type outcome =
  | Optimal of { objective : float; solution : float array }
  | Unbounded
  | Iteration_limit

val solve :
  ?eps:float ->
  ?max_iters:int ->
  ?metrics:Solver_metrics.t ->
  c:float array ->
  upper:float array ->
  rows:(float array * float) list ->
  unit ->
  outcome
(** [solve ~c ~upper ~rows ()] maximizes [c·x] subject to
    [coefs·x ≤ rhs] for each row and [0 ≤ x_j ≤ upper.(j)].
    @param eps pivot tolerance (default [Tin_util.Fcmp.default_policy.pivot_eps]).
    @param max_iters exact budget on pivots + bound flips (default
    [50_000]): a run needing [p] of them returns its result with
    [max_iters = p] and [Iteration_limit] with [max_iters = p - 1].
    @param metrics accumulates work counts into the given record
    (see {!Solver_metrics}); also feeds the [lp_iters] / [lp_pivots] /
    [lp_bound_flips] labeled observability counters with
    [solver="bounded"] ({!Tin_obs.Obs}). *)
