module Obs = Tin_obs.Obs

let c_iters = Obs.Counter.(labeled (make_labeled "lp_iters" ~labels:[ "solver" ]) [ "bounded" ])
let c_pivots = Obs.Counter.(labeled (make_labeled "lp_pivots" ~labels:[ "solver" ]) [ "bounded" ])
let c_flips = Obs.Counter.(labeled (make_labeled "lp_bound_flips" ~labels:[ "solver" ]) [ "bounded" ])

type outcome =
  | Optimal of { objective : float; solution : float array }
  | Unbounded
  | Iteration_limit

(* Bounded-variable primal simplex, dense tableau.

   Columns 0..n-1 are the structural variables (bounds [0, u_j]),
   columns n..n+m-1 the slacks (bounds [0, inf)).  The tableau [t]
   holds B^-1 A for all columns; [b] holds the basic variable values;
   [basis.(i)] is the variable basic in row i; nonbasic variables sit
   at one of their bounds, recorded in [at_upper].

   The origin (all structural variables at 0, slacks basic at rhs) is
   feasible because rhs >= 0, so no phase 1 is needed. *)
let solve ?(eps = Tin_util.Fcmp.(default_policy.pivot_eps)) ?(max_iters = 50_000) ?metrics ~c
    ~upper ~rows () =
  let n = Array.length c in
  let npivots = ref 0 and nflips = ref 0 in
  let record outcome =
    Obs.Counter.add c_iters (!npivots + !nflips);
    Obs.Counter.add c_pivots !npivots;
    Obs.Counter.add c_flips !nflips;
    (match metrics with
    | Some (m : Solver_metrics.t) ->
        m.iterations <- m.iterations + !npivots + !nflips;
        m.pivots <- m.pivots + !npivots;
        m.bound_flips <- m.bound_flips + !nflips
    | None -> ());
    outcome
  in
  if Array.length upper <> n then invalid_arg "Bounded.solve: bounds arity mismatch";
  Array.iter
    (fun u -> if Float.is_nan u || u < 0.0 then invalid_arg "Bounded.solve: bad upper bound")
    upper;
  List.iter
    (fun (coefs, rhs) ->
      if Array.length coefs <> n then invalid_arg "Bounded.solve: row arity mismatch";
      if rhs < 0.0 then invalid_arg "Bounded.solve: negative rhs (origin must be feasible)")
    rows;
  let m = List.length rows in
  let ncols = n + m in
  let t = Array.make_matrix m ncols 0.0 in
  let b = Array.make m 0.0 in
  let basis = Array.make m 0 in
  List.iteri
    (fun i (coefs, rhs) ->
      Array.blit coefs 0 t.(i) 0 n;
      t.(i).(n + i) <- 1.0;
      b.(i) <- rhs;
      basis.(i) <- n + i)
    rows;
  let bound j = if j < n then upper.(j) else infinity in
  let at_upper = Array.make ncols false in
  let is_basic = Array.make ncols false in
  for i = 0 to m - 1 do
    is_basic.(basis.(i)) <- true
  done;
  (* Reduced-cost row d_j = c_j - z_j, maintained under pivots. *)
  let obj = Array.make ncols 0.0 in
  Array.blit c 0 obj 0 n;
  let bland_after = 200 + (20 * (m + ncols)) in
  (* The [max_iters] budget is checked only after pricing has found an
     improving variable, so it bounds pivots + bound flips exactly (see
     {!Solver_metrics}). *)
  let rec iterate k =
    begin
      let bland = k > bland_after in
      (* Entering variable: improving means d_j > 0 at lower bound or
         d_j < 0 at upper bound. *)
      let improving j =
        (not is_basic.(j))
        && ((not at_upper.(j)) && obj.(j) > eps) || ((not is_basic.(j)) && at_upper.(j) && obj.(j) < -.eps)
      in
      let q = ref (-1) in
      if bland then begin
        let j = ref 0 in
        while !q < 0 && !j < ncols do
          if improving !j then q := !j;
          incr j
        done
      end
      else begin
        let best = ref eps in
        for j = 0 to ncols - 1 do
          if improving j && Float.abs obj.(j) > !best then begin
            best := Float.abs obj.(j);
            q := j
          end
        done
      end;
      if !q < 0 then begin
        (* Optimal: read the solution off the basis and bound flags. *)
        let solution = Array.make n 0.0 in
        for j = 0 to n - 1 do
          if (not is_basic.(j)) && at_upper.(j) then solution.(j) <- upper.(j)
        done;
        Array.iteri (fun i v -> if v < n then solution.(v) <- b.(i)) basis;
        let objective = ref 0.0 in
        for j = 0 to n - 1 do
          objective := !objective +. (c.(j) *. solution.(j))
        done;
        Optimal { objective = !objective; solution }
      end
      else if k >= max_iters then Iteration_limit
      else begin
        let q = !q in
        let sigma = if at_upper.(q) then -1.0 else 1.0 in
        (* Ratio test over z_i = sigma * y_iq. *)
        let t_star = ref (bound q) in
        (* bound flip distance *)
        let block = ref (-1) in
        (* -1 = bound flip; else blocking row *)
        let block_at_upper = ref false in
        for i = 0 to m - 1 do
          let z = sigma *. t.(i).(q) in
          if z > eps then begin
            let ratio = b.(i) /. z in
            if
              ratio < !t_star -. 1e-12
              || (ratio < !t_star +. 1e-12 && !block >= 0 && basis.(i) < basis.(!block))
            then begin
              t_star := ratio;
              block := i;
              block_at_upper := false
            end
          end
          else if z < -.eps then begin
            let ub = bound basis.(i) in
            if ub < infinity then begin
              let ratio = (ub -. b.(i)) /. -.z in
              if
                ratio < !t_star -. 1e-12
                || (ratio < !t_star +. 1e-12 && !block >= 0 && basis.(i) < basis.(!block))
              then begin
                t_star := ratio;
                block := i;
                block_at_upper := true
              end
            end
          end
        done;
        if !t_star = infinity then Unbounded
        else begin
          let step = Float.max 0.0 !t_star in
          (* Move the basic values along the direction. *)
          for i = 0 to m - 1 do
            b.(i) <- b.(i) -. (step *. sigma *. t.(i).(q));
            if b.(i) < 0.0 && b.(i) > -1e-11 then b.(i) <- 0.0
          done;
          if !block < 0 then begin
            (* Bound flip: q jumps to its other bound; no pivot. *)
            at_upper.(q) <- not at_upper.(q);
            incr nflips;
            iterate (k + 1)
          end
          else begin
            let r = !block in
            let p = basis.(r) in
            (* Value of q after the move. *)
            let vq = (if at_upper.(q) then bound q else 0.0) +. (sigma *. step) in
            (* Pivot the tableau on (r, q). *)
            let prow = t.(r) in
            let piv = prow.(q) in
            for j = 0 to ncols - 1 do
              prow.(j) <- prow.(j) /. piv
            done;
            prow.(q) <- 1.0;
            for i = 0 to m - 1 do
              if i <> r then begin
                let f = t.(i).(q) in
                if f <> 0.0 then begin
                  let irow = t.(i) in
                  for j = 0 to ncols - 1 do
                    irow.(j) <- irow.(j) -. (f *. prow.(j))
                  done;
                  irow.(q) <- 0.0
                end
              end
            done;
            let f = obj.(q) in
            if f <> 0.0 then begin
              for j = 0 to ncols - 1 do
                obj.(j) <- obj.(j) -. (f *. prow.(j))
              done;
              obj.(q) <- 0.0
            end;
            basis.(r) <- q;
            is_basic.(q) <- true;
            is_basic.(p) <- false;
            at_upper.(p) <- !block_at_upper;
            at_upper.(q) <- false;
            b.(r) <- vq;
            incr npivots;
            iterate (k + 1)
          end
        end
      end
    end
  in
  record (iterate 0)
