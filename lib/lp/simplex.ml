module Obs = Tin_obs.Obs

(* One labeled family per kind of work, shared by all three solvers:
   a scrape reads [lp_pivots{solver="dense"}] next to
   [lp_pivots{solver="sparse"}] instead of three unrelated names. *)
let c_phase1 = Obs.Counter.(labeled (make_labeled "lp_phase1_iters" ~labels:[ "solver" ]) [ "dense" ])
let c_phase2 = Obs.Counter.(labeled (make_labeled "lp_phase2_iters" ~labels:[ "solver" ]) [ "dense" ])
let c_pivots = Obs.Counter.(labeled (make_labeled "lp_pivots" ~labels:[ "solver" ]) [ "dense" ])

type sense = Le | Ge | Eq

type outcome =
  | Optimal of { objective : float; solution : float array }
  | Infeasible
  | Unbounded
  | Iteration_limit

(* The tableau stores the constraint rows only; the reduced-cost row
   [obj] is kept separately so phases can swap cost vectors without
   copying the tableau.  Column layout:
     [0, n)                structural variables
     [n, n + ns)           slack/surplus variables
     [n + ns, n + ns + na) artificial variables
   and [rhs] is a separate column vector. *)
type tableau = {
  n : int;
  ns : int;
  na : int;
  m : int;
  ncols : int; (* n + ns + na *)
  t : float array array; (* m rows, each of length ncols *)
  rhs : float array;
  basis : int array; (* basis.(i) = column basic in row i *)
}

let pivot tab ~obj ~obj_rhs ~row ~col =
  let { t; rhs; basis; ncols; _ } = tab in
  let prow = t.(row) in
  let p = prow.(col) in
  (* Normalize the pivot row. *)
  for j = 0 to ncols - 1 do
    prow.(j) <- prow.(j) /. p
  done;
  rhs.(row) <- rhs.(row) /. p;
  prow.(col) <- 1.0;
  (* Eliminate the pivot column from every other row and from the
     reduced-cost row. *)
  for i = 0 to tab.m - 1 do
    if i <> row then begin
      let f = t.(i).(col) in
      if f <> 0.0 then begin
        let irow = t.(i) in
        for j = 0 to ncols - 1 do
          irow.(j) <- irow.(j) -. (f *. prow.(j))
        done;
        irow.(col) <- 0.0;
        rhs.(i) <- rhs.(i) -. (f *. rhs.(row));
        if rhs.(i) < 0.0 && rhs.(i) > -1e-11 then rhs.(i) <- 0.0
      end
    end
  done;
  let f = obj.(col) in
  if f <> 0.0 then begin
    for j = 0 to ncols - 1 do
      obj.(j) <- obj.(j) -. (f *. prow.(j))
    done;
    obj.(col) <- 0.0;
    obj_rhs := !obj_rhs -. (f *. rhs.(row))
  end;
  basis.(row) <- col

(* One simplex phase: maximize the cost encoded in [obj] (entries are
   [c_j - z_j]; positive means improving).  [allowed j] filters pivot
   columns (used to ban artificials in phase 2).  Returns [`Optimal],
   [`Unbounded] or [`Iteration_limit].  [niters] accumulates the number
   of pivots performed.

   The [max_iters] budget is checked only once an improving column has
   been found, so it bounds the number of pivots {e exactly}: a phase
   that reaches optimality in [p] pivots returns [`Optimal] with
   [max_iters = p] and [`Iteration_limit] with [max_iters = p - 1]. *)
let run_phase tab ~obj ~obj_rhs ~allowed ~eps ~max_iters ~niters =
  let ncols = tab.ncols in
  let bland_after = 200 + (20 * (tab.m + ncols)) in
  let rec iterate k =
    let bland = k > bland_after in
    (* Entering column. *)
    let col = ref (-1) in
    if bland then begin
      (* Bland: first improving column. *)
      let j = ref 0 in
      while !col < 0 && !j < ncols do
        if allowed !j && obj.(!j) > eps then col := !j;
        incr j
      done
    end
    else begin
      (* Dantzig: most improving column. *)
      let best = ref eps in
      for j = 0 to ncols - 1 do
        if allowed j && obj.(j) > !best then begin
          best := obj.(j);
          col := j
        end
      done
    end;
    if !col < 0 then `Optimal
    else if k >= max_iters then `Iteration_limit
    else begin
      (* Ratio test. *)
      let row = ref (-1) and best = ref infinity in
      for i = 0 to tab.m - 1 do
        let a = tab.t.(i).(!col) in
        if a > eps then begin
          let ratio = tab.rhs.(i) /. a in
          if
            ratio < !best -. 1e-12
            || (ratio < !best +. 1e-12 && !row >= 0 && tab.basis.(i) < tab.basis.(!row))
          then begin
            best := ratio;
            row := i
          end
        end
      done;
      if !row < 0 then `Unbounded
      else begin
        pivot tab ~obj ~obj_rhs ~row:!row ~col:!col;
        incr niters;
        iterate (k + 1)
      end
    end
  in
  iterate 0

let solve ?(eps = Tin_util.Fcmp.(default_policy.pivot_eps)) ?(max_iters = 50_000) ?metrics ~c
    ~rows () =
  let n = Array.length c in
  let n1 = ref 0 and n2 = ref 0 in
  let record outcome =
    Obs.Counter.add c_phase1 !n1;
    Obs.Counter.add c_phase2 !n2;
    Obs.Counter.add c_pivots (!n1 + !n2);
    (match metrics with
    | Some (m : Solver_metrics.t) ->
        m.phase1_iterations <- m.phase1_iterations + !n1;
        m.iterations <- m.iterations + !n1 + !n2;
        m.pivots <- m.pivots + !n1 + !n2
    | None -> ());
    outcome
  in
  List.iter
    (fun (coefs, _, _) ->
      if Array.length coefs <> n then invalid_arg "Simplex.solve: row arity mismatch")
    rows;
  (* Normalize right-hand sides to be non-negative. *)
  let rows =
    List.map
      (fun (coefs, sense, b) ->
        if b < 0.0 then
          ( Array.map (fun x -> -.x) coefs,
            (match sense with Le -> Ge | Ge -> Le | Eq -> Eq),
            -.b )
        else (coefs, sense, b))
      rows
  in
  let m = List.length rows in
  let ns = List.length (List.filter (fun (_, s, _) -> s <> Eq) rows) in
  let na = List.length (List.filter (fun (_, s, _) -> s <> Le) rows) in
  let ncols = n + ns + na in
  let t = Array.make_matrix m ncols 0.0 in
  let rhs = Array.make m 0.0 in
  let basis = Array.make m (-1) in
  let next_slack = ref n and next_art = ref (n + ns) in
  List.iteri
    (fun i (coefs, sense, b) ->
      Array.blit coefs 0 t.(i) 0 n;
      rhs.(i) <- b;
      (match sense with
      | Le ->
          t.(i).(!next_slack) <- 1.0;
          basis.(i) <- !next_slack;
          incr next_slack
      | Ge ->
          t.(i).(!next_slack) <- -1.0;
          incr next_slack;
          t.(i).(!next_art) <- 1.0;
          basis.(i) <- !next_art;
          incr next_art
      | Eq ->
          t.(i).(!next_art) <- 1.0;
          basis.(i) <- !next_art;
          incr next_art))
    rows;
  let tab = { n; ns; na; m; ncols; t; rhs; basis } in
  let is_artificial j = j >= n + ns in
  (* Rebuild the reduced-cost row for a given cost vector: start from
     the costs and price out the current basis. *)
  let make_obj cost =
    let obj = Array.make ncols 0.0 in
    Array.blit cost 0 obj 0 (Array.length cost);
    let obj_rhs = ref 0.0 in
    for i = 0 to m - 1 do
      let cb = if basis.(i) < Array.length cost then cost.(basis.(i)) else 0.0 in
      if cb <> 0.0 then begin
        for j = 0 to ncols - 1 do
          obj.(j) <- obj.(j) -. (cb *. t.(i).(j))
        done;
        (* The value cell behaves like the rhs entry of the cost row,
           i.e. it tracks -z under the same pivot updates. *)
        obj_rhs := !obj_rhs -. (cb *. rhs.(i))
      end
    done;
    (obj, obj_rhs)
  in
  let phase2 () =
    let cost = Array.make ncols 0.0 in
    Array.blit c 0 cost 0 n;
    let obj, obj_rhs = make_obj cost in
    match
      run_phase tab ~obj ~obj_rhs
        ~allowed:(fun j -> not (is_artificial j))
        ~eps ~max_iters ~niters:n2
    with
    | `Optimal ->
        let solution = Array.make n 0.0 in
        Array.iteri (fun i b -> if b < n then solution.(b) <- rhs.(i)) basis;
        let objective = ref 0.0 in
        for j = 0 to n - 1 do
          objective := !objective +. (c.(j) *. solution.(j))
        done;
        Optimal { objective = !objective; solution }
    | `Unbounded -> Unbounded
    | `Iteration_limit -> Iteration_limit
  in
  record
  @@
  if na = 0 then phase2 ()
  else begin
    (* Phase 1: maximize -sum(artificials). *)
    let cost = Array.make ncols 0.0 in
    for j = n + ns to ncols - 1 do
      cost.(j) <- -1.0
    done;
    let obj, obj_rhs = make_obj cost in
    match run_phase tab ~obj ~obj_rhs ~allowed:(fun _ -> true) ~eps ~max_iters ~niters:n1 with
    | `Unbounded -> Infeasible (* cannot happen: phase-1 objective is bounded by 0 *)
    | `Iteration_limit -> Iteration_limit
    | `Optimal ->
        ignore !obj_rhs;
        (* Feasibility is judged on the artificial values themselves,
           which is immune to accumulated drift in the value cell. *)
        let art_sum = ref 0.0 and rhs_scale = ref 1.0 in
        for i = 0 to m - 1 do
          if Float.abs rhs.(i) > !rhs_scale then rhs_scale := Float.abs rhs.(i);
          if is_artificial basis.(i) then art_sum := !art_sum +. rhs.(i)
        done;
        if !art_sum > 1e-7 *. !rhs_scale then Infeasible
        else begin
          (* Drive remaining artificials out of the basis where
             possible; rows that resist are redundant and harmless
             because their artificial is basic at value zero and banned
             from re-entering. *)
          for i = 0 to m - 1 do
            if is_artificial basis.(i) then begin
              let col = ref (-1) in
              let j = ref 0 in
              while !col < 0 && !j < n + ns do
                if Float.abs t.(i).(!j) > eps then col := !j;
                incr j
              done;
              if !col >= 0 then begin
                let dummy_obj = Array.make ncols 0.0 and dummy_rhs = ref 0.0 in
                pivot tab ~obj:dummy_obj ~obj_rhs:dummy_rhs ~row:i ~col:!col
              end
            end
          done;
          phase2 ()
        end
  end
