(** Sparse bounded-variable revised simplex.

    Solves [max c·x  s.t.  A x ≤ rhs,  0 ≤ x ≤ upper] — the same shape
    as {!Bounded} — but stores [A] column-wise as sparse (row, coef)
    lists and never materializes a tableau.  The basis inverse is kept
    in product form (an eta file) with periodic refactorization, so one
    iteration costs O(nnz) plus the eta-file work instead of the dense
    tableau's O(m·(n+m)).  Pricing is Dantzig over a candidate list
    (partial pricing) with a Bland fallback against cycling.

    Flow LPs (one column per interaction, one row per distinct sending
    timestamp, ±1 coefficients) are the intended workload; any
    origin-feasible box-constrained LP fits. *)

type outcome =
  | Optimal of { objective : float; solution : float array }
  | Unbounded
  | Iteration_limit

val solve :
  ?eps:float ->
  ?max_iters:int ->
  ?refactor_every:int ->
  ?metrics:Solver_metrics.t ->
  c:float array ->
  upper:float array ->
  rhs:float array ->
  cols:(int * float) list array ->
  unit ->
  outcome
(** [solve ~c ~upper ~rhs ~cols ()] maximizes [c·x] subject to
    [A x ≤ rhs] and [0 ≤ x ≤ upper], where column [j] of [A] is given
    by [cols.(j)] as a list of [(row, coef)] pairs.  Duplicate [(row,
    coef)] entries within a column are summed.  [rhs] entries must be
    non-negative (the origin must be feasible, as in {!Bounded}) and
    [upper] entries non-negative ([infinity] allowed).
    [refactor_every] bounds the eta-file length between
    refactorizations (default 64; mainly a testing knob).

    [max_iters] is an exact budget on the work passes (pivots, bound
    flips and defensive refactorize-retries): a run needing [p] of them
    returns its result with [max_iters = p] and [Iteration_limit] with
    [max_iters = p - 1].  [metrics] accumulates the work counts into
    the given record (see {!Solver_metrics}); the same counts also feed
    the [lp_iters] / [lp_pivots] / [lp_bound_flips] /
    [lp_refactorizations] / [lp_eta_resets] labeled observability
    counters with [solver="sparse"] ({!Tin_obs.Obs}).
    @raise Invalid_argument on arity mismatches, negative [rhs] or
    [upper], or out-of-range row indices. *)
