(** Time-restricted flow computation.

    The paper's conclusion notes that all of its techniques apply
    unchanged to the time-restricted problem — "simply disregarding
    all interactions that happened outside the window".  This module
    provides that restriction, windowed flow computation, and flow
    profiles over time (how much had flowed by each instant, the
    natural question an analyst asks after "how much flowed"). *)

val restrict : ?from_time:float -> ?until:float -> Graph.t -> Graph.t
(** [restrict ~from_time ~until g] keeps exactly the interactions whose
    timestamp lies in the {b closed} interval [[from_time, until]]:
    both endpoints are inclusive, so an interaction at [t = from_time]
    or [t = until] survives (defaults: unbounded on either side).
    Sliding-window maintainers rely on the left boundary — with window
    width [w] and stream head [last], [restrict ~from_time:(last -. w)]
    retains an interaction at exactly [last -. w], which is what the
    [tinflow serve] daemon's eviction implements and its tests pin
    down.  Edges whose sequence empties disappear; all vertices
    remain, so source/sink designations stay valid. *)

val max_flow :
  ?from_time:float ->
  ?until:float ->
  Graph.t ->
  source:Graph.vertex ->
  sink:Graph.vertex ->
  float
(** Maximum flow using only in-window interactions (PreSim pipeline). *)

val greedy_flow :
  ?from_time:float ->
  ?until:float ->
  Graph.t ->
  source:Graph.vertex ->
  sink:Graph.vertex ->
  float

val greedy_profile :
  Graph.t -> source:Graph.vertex -> sink:Graph.vertex -> (float * float) list
(** The sink's buffer over time under the greedy model: one
    [(t, cumulative flow)] step per interaction that increased it,
    computed by a single scan. *)

val max_flow_profile :
  ?points:float list ->
  Graph.t ->
  source:Graph.vertex ->
  sink:Graph.vertex ->
  (float * float) list
(** [(τ, maximum flow using interactions up to τ)] for each requested
    prefix endpoint (default: every distinct timestamp of interactions
    entering the sink — the only instants where the value can change).
    The maximum flow is recomputed per point: O(points × PreSim). *)
