(** Greedy-solubility test (Section 4.2.2, Lemmas 1 and 2).

    On a DAG whose every vertex other than the source and the sink has
    exactly one outgoing edge, reserving quantity at any vertex cannot
    help, so the greedy scan already computes the maximum flow.
    Chains (Lemma 1) are the special case where in-degrees are also 1.
    The test costs O(V) out-degree lookups (plus the DAG check). *)

val out_degree_condition : Graph.t -> source:Graph.vertex -> sink:Graph.vertex -> bool
(** Pure Lemma-2 condition: every vertex besides [source] and [sink]
    has out-degree exactly 1. *)

val soluble : Graph.t -> source:Graph.vertex -> sink:Graph.vertex -> bool
(** [out_degree_condition] plus acyclicity — the precondition under
    which the greedy result is provably maximal. *)

val is_chain : Graph.t -> source:Graph.vertex -> sink:Graph.vertex -> bool
(** Lemma-1 shape: the whole graph is a single source→sink path. *)
