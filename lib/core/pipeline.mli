(** The paper's four flow-computation methods, as compared in
    Section 6.2 (Tables 6–8, Figure 11), plus the time-expanded static
    reduction as an independent oracle.

    - [Greedy]: the linear scan of Section 4.1 — fastest, but computes
      the greedy flow, not necessarily the maximum.
    - [Lp]: direct LP formulation of the maximum flow (baseline).
    - [Pre]: greedy-solubility test, then preprocessing (Algorithm 1),
      then re-test, then LP only if still needed.
    - [Pre_sim]: [Pre] plus graph simplification (Algorithm 2) before
      the LP — the paper's complete solution.
    - [Time_expanded]: Dinic on the time-expanded static network. *)

type method_ = Greedy | Lp | Pre | Pre_sim | Time_expanded

val all_methods : method_ list
val method_name : method_ -> string

(** Difficulty classes of Section 6.2: [A] = greedy-soluble as given;
    [B] = greedy-soluble after preprocessing (including the degenerate
    zero-flow case); [C] = needs the LP even after preprocessing. *)
type cls = A | B | C

val cls_name : cls -> string

(** Which stage of the accelerated pipeline produced the value — the
    observability hook the differential verifier uses to confirm that
    every accelerated path is exercised and value-preserving. *)
type stage =
  | Soluble_as_given  (** Greedy sufficed on the input (Lemma 2). *)
  | Cyclic_fallback  (** Not a DAG: time-expanded Dinic. *)
  | Zero_after_preprocess  (** Preprocessing proved zero flow. *)
  | Soluble_after_preprocess  (** Greedy sufficed after Algorithm 1. *)
  | Soluble_after_simplify  (** Greedy sufficed after Algorithm 2. *)
  | Lp_solve  (** Full LP on the reduced graph. *)

val stage_name : stage -> string

type report = {
  value : float;  (** The computed flow. *)
  cls : cls;
  stage : stage;  (** Which pipeline stage computed [value]. *)
  lp_vars_before : int;
      (** LP variables of the direct formulation (problem size). *)
  lp_vars_after : int;
      (** LP variables actually solved after reduction (0 when greedy
          sufficed). *)
}

exception Solver_failure of string
(** Raised when the LP solver reports unbounded/iteration-limit —
    does not happen on well-formed finite problems. *)

val compute :
  ?solver:Tin_lp.Problem.solver ->
  method_ ->
  Graph.t ->
  source:Graph.vertex ->
  sink:Graph.vertex ->
  float
(** Flow value from [source] to [sink] by the given method.  For
    [Greedy] this is the greedy flow; for all other methods the
    maximum flow.  On cyclic graphs [Pre]/[Pre_sim] skip the DAG-only
    accelerators and fall back to the time-expanded reduction (which,
    like [Lp] and [Time_expanded], is structure-agnostic).  [solver]
    selects the simplex variant for the LP stages of [Lp], [Pre] and
    [Pre_sim] (default [`Auto]); [Greedy] and [Time_expanded] ignore
    it.
    @raise Solver_failure on solver breakdown. *)

val max_flow :
  ?solver:Tin_lp.Problem.solver ->
  Graph.t ->
  source:Graph.vertex ->
  sink:Graph.vertex ->
  float
(** [compute Pre_sim] — the recommended entry point. *)

val classify : Graph.t -> source:Graph.vertex -> sink:Graph.vertex -> cls
(** Difficulty class of a DAG (used to bucket benchmark subgraphs). *)

val report :
  ?solver:Tin_lp.Problem.solver ->
  ?simplify:bool ->
  Graph.t ->
  source:Graph.vertex ->
  sink:Graph.vertex ->
  report
(** Full [Pre_sim] run with classification, stage and problem-size
    accounting.  [~simplify:false] toggles the Algorithm-2 stage off
    (the [Pre] pipeline) — the knob the verifier uses to check each
    preprocessing stage independently. *)
