module Obs = Tin_obs.Obs

let c_touches = Obs.Counter.make "online.buffer_touches"

type t = {
  source : Graph.vertex;
  sink : Graph.vertex;
  avail : (Graph.vertex, float) Hashtbl.t;
  pending : (Graph.vertex, float) Hashtbl.t;
  mutable dirty : Graph.vertex list;
  mutable current : float option; (* timestamp of the open batch *)
  mutable pushed : int;
}

let create ~source ~sink =
  if source = sink then invalid_arg "Online.create: source = sink";
  let t =
    {
      source;
      sink;
      avail = Hashtbl.create 64;
      pending = Hashtbl.create 16;
      dirty = [];
      current = None;
      pushed = 0;
    }
  in
  Hashtbl.replace t.avail source infinity;
  t

let get tbl v = match Hashtbl.find_opt tbl v with Some x -> x | None -> 0.0

let flush t =
  List.iter
    (fun v ->
      let p = get t.pending v in
      if p > 0.0 then Hashtbl.replace t.avail v (get t.avail v +. p);
      Hashtbl.remove t.pending v)
    t.dirty;
  t.dirty <- []

let push t ~src ~dst i =
  if src = dst then invalid_arg "Online.push: self-loop";
  let tm = Interaction.time i and q = Interaction.qty i in
  (match t.current with
  | Some last when tm < last -> invalid_arg "Online.push: timestamps must be non-decreasing"
  | Some last when tm > last ->
      flush t;
      t.current <- Some tm
  | Some _ -> ()
  | None -> t.current <- Some tm);
  t.pushed <- t.pushed + 1;
  let b = if src = t.sink then 0.0 else get t.avail src in
  let moved = Float.min q b in
  if moved > 0.0 then begin
    if src <> t.source then Hashtbl.replace t.avail src (b -. moved);
    if get t.pending dst = 0.0 then t.dirty <- dst :: t.dirty;
    Hashtbl.replace t.pending dst (get t.pending dst +. moved);
    Obs.Counter.incr c_touches
  end;
  moved

let of_graph g ~source ~sink =
  let t = create ~source ~sink in
  Array.iter
    (fun (src, dst, i) -> ignore (push t ~src ~dst i))
    (Graph.interactions_sorted g);
  t

let flow t = get t.avail t.sink +. get t.pending t.sink

let buffer t v =
  if v = t.source then infinity else get t.avail v +. get t.pending v

let last_time t = t.current
let n_pushed t = t.pushed
