(** Source/sink plumbing (Section 4, Figure 4).

    The flow-computation algorithms assume a single source (no
    incoming edges) and a single sink (no outgoing edges).  This module
    provides the paper's two constructions for meeting that
    assumption:

    - {!add_synthetic}: add a synthetic super-source wired to every
      original source by an edge carrying a single interaction at time
      [-∞] with quantity [∞], and symmetrically a super-sink collecting
      every original sink at time [+∞];
    - {!split}: split one vertex into a source half (keeping the
      outgoing edges) and a sink half (keeping the incoming edges) —
      the construction behind cyclic pattern instances and the seed
      subgraphs of Figure 10, where flow "from 143 back to 143" is
      measured. *)

type endpoints = { graph : Graph.t; source : Graph.vertex; sink : Graph.vertex }

val add_synthetic : Graph.t -> endpoints
(** Returns a graph with exactly one source and one sink.  If the
    input already has a unique source (resp. sink), no vertex is added
    on that side.  Fresh vertex ids are chosen above the current
    maximum.  @raise Invalid_argument on an empty graph or one with no
    source or no sink vertex (i.e. a graph where every vertex lies on
    a cycle). *)

val split : Graph.t -> vertex:Graph.vertex -> endpoints
(** [split g ~vertex:a] replaces [a] by a source half [s] (with [a]'s
    outgoing edges) and a sink half [t] (with [a]'s incoming edges).
    The flow from [s] to [t] in the result is the paper's flow from
    [a] back to itself through the rest of the graph.
    @raise Invalid_argument if [vertex] is not in the graph. *)
