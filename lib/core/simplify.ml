type result = { graph : Graph.t; chains_reduced : int; removed_vertices : int }

(* Find a maximal chain s → v1 → … → vk with every interior vertex of
   in- and out-degree 1 (and distinct from the sink).  Returns the
   interior vertices and the terminal vertex, or None. *)
let find_chain g ~source ~sink =
  let rec extend interior v =
    (* [v] is a candidate interior vertex (already known to have
       in-degree 1). *)
    if v = sink || Graph.out_degree g v <> 1 || Graph.in_degree g v <> 1 then
      (List.rev interior, v)
    else
      match Graph.succs g v with
      | [ u ] -> extend (v :: interior) u
      | _ -> assert false
  in
  let candidate v1 =
    if v1 = sink || Graph.in_degree g v1 <> 1 || Graph.out_degree g v1 <> 1 then None
    else
      match extend [] v1 with
      | [], _ -> None (* v1 itself ended the chain: nothing to collapse *)
      | interior, last -> Some (interior, last)
  in
  List.find_map candidate (Graph.succs g source)

let run g0 ~source ~sink =
  if source = sink then invalid_arg "Simplify.run: source = sink";
  if not (Topo.is_dag g0) then invalid_arg "Simplify.run: graph has a cycle";
  let rec loop g chains removed =
    match find_chain g ~source ~sink with
    | None -> { graph = g; chains_reduced = chains; removed_vertices = removed }
    | Some (interior, last) ->
        (* Greedy flow over the chain edges alone; arrivals at [last]
           define the replacement edge (Lemma 3). *)
        let path = (source :: interior) @ [ last ] in
        let rec chain_graph acc = function
          | a :: (b :: _ as rest) ->
              chain_graph (Graph.add_edge acc ~src:a ~dst:b (Graph.edge g ~src:a ~dst:b)) rest
          | _ -> acc
        in
        let cg = chain_graph Graph.empty path in
        let arrivals = Greedy.arrivals_at_sink cg ~source ~sink:last in
        let g =
          List.fold_left (fun g v -> Graph.remove_vertex g v) g interior
        in
        (* Interior removal also removed (source, v1) and (v_j, last);
           merge the replacement interactions into any existing
           (source, last) edge. *)
        let g = Graph.add_edge g ~src:source ~dst:last arrivals in
        loop g (chains + 1) (removed + List.length interior)
  in
  loop g0 0 0

let reduce_chain_interactions edges =
  match edges with
  | [] -> []
  | _ ->
      (* Build the chain as a graph over fresh ids 0,1,…,k and run the
         greedy scan; vertex identity inside the chain is positional. *)
      let g, _ =
        List.fold_left
          (fun (g, idx) (_, is) -> (Graph.add_edge g ~src:idx ~dst:(idx + 1) is, idx + 1))
          (Graph.empty, 0) edges
      in
      Greedy.arrivals_at_sink g ~source:0 ~sink:(List.length edges)
