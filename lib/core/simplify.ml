type result = { graph : Graph.t; chains_reduced : int; removed_vertices : int }

(* Find a maximal chain s → v1 → … → vk with every interior vertex of
   in- and out-degree 1 (and distinct from the sink).  Returns the
   interior vertices and the terminal vertex, or None. *)
let find_chain g ~source ~sink =
  let rec extend interior v =
    (* [v] is a candidate interior vertex (already known to have
       in-degree 1). *)
    if v = sink || Graph.out_degree g v <> 1 || Graph.in_degree g v <> 1 then
      (List.rev interior, v)
    else
      match Graph.succs g v with
      | [ u ] -> extend (v :: interior) u
      | _ -> assert false
  in
  let candidate v1 =
    if v1 = sink || Graph.in_degree g v1 <> 1 || Graph.out_degree g v1 <> 1 then None
    else
      match extend [] v1 with
      | [], _ -> None (* v1 itself ended the chain: nothing to collapse *)
      | interior, last -> Some (interior, last)
  in
  List.find_map candidate (Graph.succs g source)

let run g0 ~source ~sink =
  if source = sink then invalid_arg "Simplify.run: source = sink";
  if not (Topo.is_dag g0) then invalid_arg "Simplify.run: graph has a cycle";
  let rec loop g chains removed =
    match find_chain g ~source ~sink with
    | None -> { graph = g; chains_reduced = chains; removed_vertices = removed }
    | Some (interior, last) ->
        (* Greedy flow over the chain edges alone; arrivals at [last]
           define the replacement edge (Lemma 3). *)
        let path = (source :: interior) @ [ last ] in
        let rec chain_graph acc = function
          | a :: (b :: _ as rest) ->
              chain_graph (Graph.add_edge acc ~src:a ~dst:b (Graph.edge g ~src:a ~dst:b)) rest
          | _ -> acc
        in
        let cg = chain_graph Graph.empty path in
        let arrivals = Greedy.arrivals_at_sink cg ~source ~sink:last in
        let g =
          List.fold_left (fun g v -> Graph.remove_vertex g v) g interior
        in
        (* Interior removal also removed (source, v1) and (v_j, last);
           merge the replacement interactions into any existing
           (source, last) edge. *)
        let g = Graph.add_edge g ~src:source ~dst:last arrivals in
        loop g (chains + 1) (removed + List.length interior)
  in
  loop g0 0 0

let reduce_chain_interactions edges =
  match edges with
  | [] -> []
  | _ ->
      (* Build the chain as a graph over fresh ids 0,1,…,k and run the
         greedy scan; vertex identity inside the chain is positional. *)
      let g, _ =
        List.fold_left
          (fun (g, idx) (_, is) -> (Graph.add_edge g ~src:idx ~dst:(idx + 1) is, idx + 1))
          (Graph.empty, 0) edges
      in
      Greedy.arrivals_at_sink g ~source:0 ~sink:(List.length edges)

(* Flat positional chain reduction over pre-gathered columns: the
   [k]-edge chain 0 → 1 → … → k carries interaction
   (times.(j), qtys.(j)) on edge [pos.(j) → pos.(j) + 1].  Runs the
   same greedy scan as [reduce_chain_interactions] — the global scan
   order (time, qty, src, dst) collapses to (time, qty, pos) on a
   chain, where dst = src + 1 — but with flat buffers and no graph or
   interaction construction.  This is the pattern tables' hot loop
   (Tables.cycles2/cycles3/chains2 call it once per candidate). *)
let reduce_chain_cols ~k ~times ~qtys ~pos =
  let mtot = Array.length pos in
  let perm = Array.init mtot Fun.id in
  Array.sort
    (fun a b ->
      let c = Float.compare (Float.Array.get times a) (Float.Array.get times b) in
      if c <> 0 then c
      else
        let c = Float.compare (Float.Array.get qtys a) (Float.Array.get qtys b) in
        if c <> 0 then c else compare pos.(a) pos.(b))
    perm;
  let avail = Array.make (k + 1) 0.0 and pending = Array.make (k + 1) 0.0 in
  avail.(0) <- infinity;
  let dirty = Array.make (k + 1) 0 and n_dirty = ref 0 in
  let flush () =
    for i = 0 to !n_dirty - 1 do
      let u = dirty.(i) in
      let p = pending.(u) in
      if p > 0.0 then avail.(u) <- avail.(u) +. p;
      pending.(u) <- 0.0
    done;
    n_dirty := 0
  in
  let current = ref nan in
  let arrivals = ref [] in
  Array.iter
    (fun j ->
      let v = pos.(j) in
      let u = v + 1 in
      let tm = Float.Array.get times j and q = Float.Array.get qtys j in
      if not (Float.equal !current tm) then begin
        flush ();
        current := tm
      end;
      let b = avail.(v) in
      let moved = Float.min q b in
      if moved > 0.0 then begin
        if v <> 0 then avail.(v) <- b -. moved;
        if pending.(u) = 0.0 then begin
          dirty.(!n_dirty) <- u;
          incr n_dirty
        end;
        pending.(u) <- pending.(u) +. moved;
        if u = k then arrivals := Interaction.unchecked ~time:tm ~qty:moved :: !arrivals
      end)
    perm;
  List.rev !arrivals
