(** Maximum flow as linear programming (Section 4.2.1).

    One variable [x_i ∈ [0, q_i]] per interaction that does not
    originate at the source (source-origin interactions always carry
    their full quantity, Eq. 1 and the discussion below it).  For every
    vertex [v ∉ {source}] and every distinct timestamp [τ] at which
    [v] sends, a buffer constraint bounds what [v] may have sent up to
    and including [τ] by what it received strictly before [τ]
    (Eq. 2, in cumulative form so that simultaneous interactions cannot
    double-spend a buffer).  The objective maximizes the quantity
    arriving at the sink (Eq. 3). *)

type lp = {
  problem : Tin_lp.Problem.t;
  n_vars : int;  (** Number of LP variables (non-source interactions). *)
  n_rows : int;  (** Number of buffer constraints. *)
  fixed_into_sink : float;
      (** Constant objective contribution of source→sink interactions. *)
  objective_vars : (Tin_lp.Problem.var * float) list;
      (** Sink-incoming variables (with coefficient 1) — kept for
          inspection. *)
}

val build : Graph.t -> source:Graph.vertex -> sink:Graph.vertex -> lp
(** Formulates the LP.  Works on arbitrary (even cyclic) graphs: the
    constraints are temporal, not structural.
    @raise Invalid_argument if [source = sink]. *)

val solve :
  ?solver:Tin_lp.Problem.solver ->
  ?eps:float ->
  ?max_iters:int ->
  Graph.t ->
  source:Graph.vertex ->
  sink:Graph.vertex ->
  (float, [ `Unbounded | `Infeasible | `Iteration_limit ]) Stdlib.result
(** Builds and solves; [Ok flow] on success.  [`Infeasible] cannot
    happen on well-formed inputs ([x = 0] is always feasible) and
    [`Unbounded] only on graphs with an all-infinite source→sink
    path.  [solver] selects the simplex variant (default [`Auto]:
    flow LPs always fit the bounded-variable shape, so [`Auto] routes
    between the sparse revised simplex — large, sparse instances — and
    the dense bounded tableau); [`Dense] forces the row-based
    two-phase simplex and [`Sparse]/[`Bounded] the respective native
    bounded solvers, the configurations compared by the solver
    benchmark ([bench/main.exe solvers]). *)

val n_variables : Graph.t -> source:Graph.vertex -> int
(** Number of LP variables the formulation would have — the problem
    size measure used in the paper's Figure 7 discussion. *)
