(** Maximum flow as linear programming (Section 4.2.1).

    One variable [x_i ∈ [0, q_i]] per interaction that does not
    originate at the source (source-origin interactions always carry
    their full quantity, Eq. 1 and the discussion below it).  For every
    vertex [v ∉ {source}] and every distinct timestamp [τ] at which
    [v] sends, a buffer constraint bounds what [v] may have sent up to
    and including [τ] by what it received strictly before [τ]
    (Eq. 2, in cumulative form so that simultaneous interactions cannot
    double-spend a buffer).  The objective maximizes the quantity
    arriving at the sink (Eq. 3). *)

type lp = {
  problem : Tin_lp.Problem.t;
  n_vars : int;  (** Number of LP variables (non-source interactions). *)
  n_rows : int;  (** Number of buffer constraints. *)
  fixed_into_sink : float;
      (** Constant objective contribution of source→sink interactions. *)
  objective_vars : (Tin_lp.Problem.var * float) list;
      (** Sink-incoming variables (with coefficient 1) — kept for
          inspection. *)
  var_interactions :
    (Tin_lp.Problem.var * (Graph.vertex * Graph.vertex * Interaction.t)) list;
      (** Which interaction each LP variable transfers — the mapping
          the differential verifier audits solutions through. *)
  fixed_interactions : (Graph.vertex * Graph.vertex * Interaction.t) list;
      (** Source-origin interactions, fixed at full quantity (Eq. 1). *)
}

type assignment = {
  src : Graph.vertex;
  dst : Graph.vertex;
  interaction : Interaction.t;
  amount : float;  (** Quantity the solution routes over it. *)
}
(** One interaction's share of an optimal solution — the LP solution
    vector mapped back onto the network.  Source-origin interactions
    appear with their full quantity (the LP's Eq.-1 convention). *)

val build : Graph.t -> source:Graph.vertex -> sink:Graph.vertex -> lp
(** Formulates the LP.  Works on arbitrary (even cyclic) graphs: the
    constraints are temporal, not structural.
    @raise Invalid_argument if [source = sink]. *)

val solve :
  ?solver:Tin_lp.Problem.solver ->
  ?eps:float ->
  ?max_iters:int ->
  Graph.t ->
  source:Graph.vertex ->
  sink:Graph.vertex ->
  (float, [ `Unbounded | `Infeasible | `Iteration_limit ]) Stdlib.result
(** Builds and solves; [Ok flow] on success.  [`Infeasible] cannot
    happen on well-formed inputs ([x = 0] is always feasible) and
    [`Unbounded] only on graphs with an all-infinite source→sink
    path.  [solver] selects the simplex variant (default [`Auto]:
    flow LPs always fit the bounded-variable shape, so [`Auto] routes
    between the sparse revised simplex — large, sparse instances — and
    the dense bounded tableau); [`Dense] forces the row-based
    two-phase simplex and [`Sparse]/[`Bounded] the respective native
    bounded solvers, the configurations compared by the solver
    benchmark ([bench/main.exe solvers]). *)

val solve_detailed :
  ?solver:Tin_lp.Problem.solver ->
  ?eps:float ->
  ?max_iters:int ->
  Graph.t ->
  source:Graph.vertex ->
  sink:Graph.vertex ->
  (float * assignment list, [ `Unbounded | `Infeasible | `Iteration_limit ]) Stdlib.result
(** Like {!solve}, but also returns the full solution vector as
    per-interaction {!assignment}s, one per interaction of the graph
    (sink-origin interactions excluded — they carry nothing).  The
    verifier audits per-interaction capacity residuals and per-vertex
    temporal conservation from this list. *)

(** {1 Flat substrate}

    The same formulation built from a {!Compact} network without the
    persistent view.  Both builders funnel through one shared
    event-grouping pass fed by an edge-ordered iterator; since the two
    substrates iterate interactions in the same order, variable
    numbering, constraint order and the resulting pivot sequence are
    identical — [solve_compact] agrees with {!solve} bit-for-bit on
    equivalent inputs. *)

val build_compact : Compact.t -> source:Graph.vertex -> sink:Graph.vertex -> lp
(** [source]/[sink] are raw labels, as everywhere.
    @raise Invalid_argument if [source = sink]. *)

val solve_compact :
  ?solver:Tin_lp.Problem.solver ->
  ?eps:float ->
  ?max_iters:int ->
  Compact.t ->
  source:Graph.vertex ->
  sink:Graph.vertex ->
  (float, [ `Unbounded | `Infeasible | `Iteration_limit ]) Stdlib.result

val solve_detailed_compact :
  ?solver:Tin_lp.Problem.solver ->
  ?eps:float ->
  ?max_iters:int ->
  Compact.t ->
  source:Graph.vertex ->
  sink:Graph.vertex ->
  (float * assignment list, [ `Unbounded | `Infeasible | `Iteration_limit ]) Stdlib.result

val n_variables : Graph.t -> source:Graph.vertex -> int
(** Number of LP variables the formulation would have — the problem
    size measure used in the paper's Figure 7 discussion. *)
