(** Online greedy flow monitoring.

    The batch {!Greedy} scan assumes the whole interaction history is
    available; production monitoring (an FIU watching transactions, a
    NOC watching traffic) sees interactions as a live stream.  This
    module maintains the greedy buffers incrementally: push
    interactions in non-decreasing time order and read the running
    flow at any moment.  Pushing the full history in order yields
    exactly {!Greedy.flow} (property-tested). *)

type t

val create : source:Graph.vertex -> sink:Graph.vertex -> t
(** Fresh monitor.  @raise Invalid_argument if [source = sink]. *)

val of_graph : Graph.t -> source:Graph.vertex -> sink:Graph.vertex -> t
(** [of_graph g ~source ~sink] replays every interaction of [g]
    through {!push} in the canonical scan order of the batch algorithm
    — {!Graph.interactions_sorted}, i.e. [(time, qty, src, dst)]
    ascending — so [flow (of_graph g ~source ~sink)] equals
    [Greedy.flow g ~source ~sink] {e bit-for-bit}: both run the same
    floating-point operation sequence (property-tested).  This is the
    window-rebuild fallback of the streaming daemon: greedy flow
    cannot be rewound when old interactions leave a sliding window, so
    the monitor is rebuilt from the restricted graph instead.

    Equivalence holds only for the canonical order: two interactions
    sharing a timestamp may legitimately yield a different flow when
    pushed in another (still legal, non-decreasing) arrival order,
    because a sender's buffer decreases immediately within the instant
    (see the documented counterexample test).
    @raise Invalid_argument if [source = sink]. *)

val push : t -> src:Graph.vertex -> dst:Graph.vertex -> Interaction.t -> float
(** Feeds one interaction and returns the quantity it moved under the
    greedy rule (Definition 4).  Interactions must arrive in
    non-decreasing time order; same-instant arrivals only become
    usable once a strictly later interaction is pushed (the strict
    [t_j < t_i] semantics).
    @raise Invalid_argument on out-of-order timestamps or a
    self-loop. *)

val flow : t -> float
(** Quantity accumulated at the sink so far. *)

val buffer : t -> Graph.vertex -> float
(** Current buffer of a vertex (arrivals at the latest pushed
    timestamp included); the source reports [infinity]. *)

val last_time : t -> float option
(** Timestamp of the latest pushed interaction. *)

val n_pushed : t -> int
