(** Greedy flow computation (Section 4.1).

    Interactions are scanned in global time order; each interaction
    [(t, q)] on edge [(v, u)] transfers [min q B(v)] from [v]'s buffer
    to [u]'s (Definition 4).  The designated source has an infinite
    buffer.  The greedy flow of the graph (Definition 5) is the
    quantity buffered at the sink after the scan — computed in time
    linear in the number of interactions.

    Quantity that arrives at a vertex at time [t] becomes usable
    {e strictly after} [t], matching the [t_j < t_i] condition of the
    paper's LP constraint (2); with distinct timestamps (the common
    case, and all of the paper's examples) this coincides with the
    paper's description.

    Interactions sharing a timestamp are scanned in the deterministic
    order of {!Graph.interactions_sorted} — time, then source, then
    destination — which fixes the winner when same-instant transfers
    compete for one buffer.  Zero-quantity interactions move nothing
    and create no buffer entries; self-loops are unrepresentable
    ({!Graph.add_interaction} rejects them), so neither can inflate the
    flow.

    Works on arbitrary directed graphs — acyclicity is not required
    (only the maximum-flow accelerators need DAGs). *)

type transfer = {
  src : Graph.vertex;
  dst : Graph.vertex;
  time : float;
  offered : float;  (** The interaction's quantity [q]. *)
  moved : float;  (** The quantity actually transferred, [min q B]. *)
}
(** One step of the scan — the rows of the paper's Tables 2 and 3. *)

val flow : Graph.t -> source:Graph.vertex -> sink:Graph.vertex -> float
(** Greedy flow from [source] to [sink].  [0.] on graphs where the
    sink receives nothing.  @raise Invalid_argument if
    [source = sink]. *)

val flow_trace : Graph.t -> source:Graph.vertex -> sink:Graph.vertex -> float * transfer list
(** Greedy flow plus the full transfer log in scan order. *)

val arrivals_at_sink : Graph.t -> source:Graph.vertex -> sink:Graph.vertex -> Interaction.t list
(** The interactions (time, moved quantity) that increased the sink's
    buffer, in time order, zero-moves dropped.  This is the interaction
    sequence that the simplification pass (Lemma 3) installs on the
    replacement edge, and that the pattern path tables store. *)

val buffers : Graph.t -> source:Graph.vertex -> sink:Graph.vertex -> (Graph.vertex * float) list
(** Final buffer of every vertex after the scan (the source reports
    [infinity]). *)

(** {1 Flat substrate}

    The same scan over a {!Compact} network, reading the unboxed
    interaction columns directly with flat per-vertex buffer arrays —
    no hashtable probes, no per-interaction boxing.  [source]/[sink]
    are raw labels, as above.  Scan order and floating-point operation
    sequence are identical to the [Graph.t] path, so on equivalent
    inputs the results are bit-identical (the representation-
    determinism property the test suite and [tinflow verify] check). *)

val flow_compact : Compact.t -> source:Graph.vertex -> sink:Graph.vertex -> float
(** Greedy flow over the flat substrate.
    @raise Invalid_argument if [source = sink]. *)

val flow_trace_compact :
  Compact.t -> source:Graph.vertex -> sink:Graph.vertex -> float * transfer list
(** Flat-substrate twin of {!flow_trace}; transfers report raw
    labels. *)

val arrivals_at_sink_compact :
  Compact.t -> source:Graph.vertex -> sink:Graph.vertex -> Interaction.t list
(** Flat-substrate twin of {!arrivals_at_sink}. *)
