(** Flow decomposition: {e which} interactions carried the maximum
    flow, as explicit temporal source→sink paths.

    The flow value alone ("$87K flowed from A back to A") is rarely
    the end of an investigation — the analyst wants the carrying
    transactions.  A maximum flow on the time-expanded network
    (Section 4.2.1) assigns a quantity to every interaction; because
    the expanded network is a DAG ordered by time, those per-arc flows
    decompose into source→sink routes whose legs are actual
    interactions in strictly increasing time order.  Routes are simple
    over (vertex, time) pairs but may revisit a vertex at a later time
    — quantity that loops through a cycle and moves on is a real
    phenomenon in transaction networks. *)

type leg = {
  src : Graph.vertex;
  dst : Graph.vertex;
  time : float;
  offered : float;  (** The interaction's full quantity. *)
}
(** One interaction used by a path (possibly partially). *)

type path = { legs : leg list; amount : float }
(** A temporal source→sink route carrying [amount]. *)

val max_flow_paths :
  Graph.t -> source:Graph.vertex -> sink:Graph.vertex -> float * path list
(** [(value, paths)] where [value] is the maximum flow and the paths
    partition it: amounts sum to [value], each path's legs are
    time-increasing, start at the source and end at the sink, and no
    interaction carries more (across all paths) than its quantity.
    Runs Dinic on the time-expanded network and peels paths off the
    positive-flow DAG. *)

val per_interaction :
  path list -> ((Graph.vertex * Graph.vertex * float) * float) list
(** Total carried quantity per interaction [(src, dst, time)],
    aggregated over paths, in deterministic order.  Interactions of
    the same edge that share a timestamp aggregate under one key. *)
