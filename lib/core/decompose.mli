(** Flow decomposition: {e which} interactions carried the maximum
    flow, as explicit temporal source→sink paths.

    The flow value alone ("$87K flowed from A back to A") is rarely
    the end of an investigation — the analyst wants the carrying
    transactions.  A maximum flow on the time-expanded network
    (Section 4.2.1) assigns a quantity to every interaction; because
    the expanded network is a DAG ordered by time, those per-arc flows
    decompose into source→sink routes whose legs are actual
    interactions in strictly increasing time order.  Routes are simple
    over (vertex, time) pairs but may revisit a vertex at a later time
    — quantity that loops through a cycle and moves on is a real
    phenomenon in transaction networks. *)

type leg = {
  src : Graph.vertex;
  dst : Graph.vertex;
  time : float;
  offered : float;  (** The interaction's full quantity. *)
  inter : int;
      (** Identity of the carrying interaction: its index in the
          global scan order (time, quantity, src, dst — the order of
          [Graph.interactions_sorted] and of the [Compact] table).
          Distinguishes parallel interactions that share src, dst and
          timestamp. *)
}
(** One interaction used by a path (possibly partially). *)

type path = { legs : leg list; amount : float }
(** A temporal source→sink route carrying [amount]. *)

type usage = {
  u_inter : int;  (** Scan-order interaction index (see {!leg.inter}). *)
  u_src : Graph.vertex;
  u_dst : Graph.vertex;
  u_time : float;
  u_offered : float;  (** The interaction's full quantity. *)
  u_carried : float;  (** Total carried across all paths. *)
}
(** Aggregated usage of one {e individual} interaction. *)

val max_flow_paths :
  Graph.t -> source:Graph.vertex -> sink:Graph.vertex -> float * path list
(** [(value, paths)] where [value] is the maximum flow and the paths
    decompose it: amounts sum to [value] up to numerical crumbs (at
    most [eps] per expanded arc, where [eps] is
    {!Tin_util.Fcmp.default_policy}[.pivot_eps]), each path's legs are
    time-increasing, start at the source and end at the sink, and no
    interaction carries more (across all paths) than its quantity.
    Runs Dinic on the time-expanded network and peels paths off the
    positive-flow DAG; dead-ended walks discard only the stranded arc
    and peeling continues until the source is exhausted. *)

val per_interaction : path list -> usage list
(** Total carried quantity per {e individual} interaction, aggregated
    over paths and keyed by interaction identity ({!leg.inter}), in
    scan order.  Parallel interactions sharing [(src, dst, time)] stay
    separate — each reports its own [u_offered] and [u_carried]. *)
