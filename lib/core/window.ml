let restrict ?(from_time = neg_infinity) ?(until = infinity) g =
  Graph.fold_edges
    (fun src dst is acc ->
      let kept =
        List.filter
          (fun i ->
            let t = Interaction.time i in
            t >= from_time && t <= until)
          is
      in
      Graph.set_edge acc ~src ~dst kept)
    g g

let max_flow ?from_time ?until g ~source ~sink =
  Pipeline.max_flow (restrict ?from_time ?until g) ~source ~sink

let greedy_flow ?from_time ?until g ~source ~sink =
  Greedy.flow (restrict ?from_time ?until g) ~source ~sink

let greedy_profile g ~source ~sink =
  let arrivals = Greedy.arrivals_at_sink g ~source ~sink in
  let _, steps =
    List.fold_left
      (fun (total, acc) i ->
        let total = total +. Interaction.qty i in
        (total, (Interaction.time i, total) :: acc))
      (0.0, []) arrivals
  in
  List.rev steps

let max_flow_profile ?points g ~source ~sink =
  let points =
    match points with
    | Some ps -> List.sort_uniq Float.compare ps
    | None ->
        (* The value changes only when an interaction into the sink
           becomes available. *)
        Graph.in_edges g sink
        |> List.concat_map (fun (_, is) -> List.map Interaction.time is)
        |> List.sort_uniq Float.compare
  in
  List.map (fun tau -> (tau, max_flow ~until:tau g ~source ~sink)) points
