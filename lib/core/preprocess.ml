type result = {
  graph : Graph.t;
  zero_flow : bool;
  removed_interactions : int;
  removed_edges : int;
  removed_vertices : int;
}

let run g0 ~source ~sink =
  if source = sink then invalid_arg "Preprocess.run: source = sink";
  let order = Topo.sort_exn g0 in
  let g = ref g0 in
  let stats_i = ref 0 and stats_e = ref 0 and stats_v = ref 0 in
  let remove_edge ~src ~dst =
    stats_i := !stats_i + List.length (Graph.edge !g ~src ~dst);
    stats_e := !stats_e + 1;
    g := Graph.remove_edge !g ~src ~dst
  in
  let remove_vertex v =
    (* Only called once all of v's edges are gone. *)
    stats_v := !stats_v + 1;
    g := Graph.remove_vertex !g v
  in
  (* Delete v (≠ sink) because it has no outgoing edges: its incoming
     edges are useless, and their removal may strand predecessors in
     the same way.  Predecessors precede v in topological order and
     will not be re-examined, so the clean-up must recurse now (the
     paper's lines 18–22). *)
  let rec delete_dead_end v =
    let preds = Graph.preds !g v in
    List.iter (fun w -> remove_edge ~src:w ~dst:v) preds;
    remove_vertex v;
    List.iter (fun w -> if w <> sink && Graph.out_degree !g w = 0 then delete_dead_end w) preds
  in
  let examine v =
    if v <> source && v <> sink && Graph.mem_vertex !g v then begin
      if Graph.in_degree !g v = 0 then begin
        (* Nothing can ever reach v: drop it with its outgoing edges
           (their targets are examined later in topological order). *)
        List.iter (fun u -> remove_edge ~src:v ~dst:u) (Graph.succs !g v);
        remove_vertex v
      end
      else begin
        (* Earliest possible arrival at v. *)
        let mintime =
          List.fold_left
            (fun acc (_, is) ->
              match is with [] -> acc | i :: _ -> Float.min acc (Interaction.time i))
            infinity (Graph.in_edges !g v)
        in
        List.iter
          (fun (u, is) ->
            let kept = List.filter (fun i -> Interaction.time i >= mintime) is in
            let dropped = List.length is - List.length kept in
            if dropped > 0 then begin
              stats_i := !stats_i + dropped;
              if kept = [] then begin
                stats_e := !stats_e + 1;
                g := Graph.remove_edge !g ~src:v ~dst:u
              end
              else g := Graph.set_edge !g ~src:v ~dst:u kept
            end)
          (Graph.out_edges !g v);
        if Graph.out_degree !g v = 0 then delete_dead_end v
      end
    end
  in
  List.iter examine order;
  let g = !g in
  let zero_flow =
    (not (Graph.mem_vertex g source))
    || (not (Graph.mem_vertex g sink))
    || not (Topo.reaches g source sink)
  in
  {
    graph = g;
    zero_flow;
    removed_interactions = !stats_i;
    removed_edges = !stats_e;
    removed_vertices = !stats_v;
  }

type result_compact = {
  compact : Compact.t;
  zero_flow_c : bool;
  removed_interactions_c : int;
  removed_edges_c : int;
  removed_vertices_c : int;
}

(* Flat Algorithm 1 over the Compact substrate.  Same pass, same
   clean-up recursion, same statistics — but liveness is tracked in
   bit/offset arrays instead of rebuilding persistent maps:

   - a kept interaction set of an edge is always a time-sorted suffix
     of its slice (the filter keeps [time >= mintime] and slices are
     time-sorted), so per-edge state is one start offset;
   - vertex/edge liveness and live-degree counters replace structural
     removal.

   The examine result is independent of which valid topological order
   is used: the minimum arrival time at [v] only depends on the
   filtering outcome at predecessors, all of which are fully processed
   before [v] in any topological order, and the upstream clean-up only
   ever deletes edges into vertices that are already dead.  The
   cross-representation property tests pin the equivalence to [run]
   (identical surviving network and identical statistics). *)
let run_compact c ~source ~sink =
  if source = sink then invalid_arg "Preprocess.run: source = sink";
  let n = Compact.n_vertices c in
  let m_e = Compact.n_edges c in
  let id l = match Compact.vertex_of_label c l with Some v -> v | None -> -1 in
  let sid = id source and tid = id sink in
  (* Fixed examination order: Kahn over the untouched input.  Queue
     (FIFO) rather than sorted frontier — any topological order gives
     the same result (see above). *)
  let order =
    let indeg = Array.init n (fun v -> Compact.in_degree c v) in
    let q = Queue.create () in
    for v = 0 to n - 1 do
      if indeg.(v) = 0 then Queue.add v q
    done;
    let order = Array.make n 0 and len = ref 0 in
    while not (Queue.is_empty q) do
      let v = Queue.pop q in
      order.(!len) <- v;
      incr len;
      Compact.iter_succs c v (fun u _ ->
          indeg.(u) <- indeg.(u) - 1;
          if indeg.(u) = 0 then Queue.add u q)
    done;
    if !len < n then invalid_arg "Preprocess.run_compact: graph has a cycle";
    order
  in
  let edge_live = Array.make (max m_e 1) true in
  let edge_start = Array.make (max m_e 1) 0 in
  let out_live = Array.init n (fun v -> Compact.out_degree c v) in
  let in_live = Array.init n (fun v -> Compact.in_degree c v) in
  let vert_live = Array.make (max n 1) true in
  let stats_i = ref 0 and stats_e = ref 0 and stats_v = ref 0 in
  let remove_edge e =
    stats_i := !stats_i + (Compact.edge_n_inter c e - edge_start.(e));
    stats_e := !stats_e + 1;
    edge_live.(e) <- false;
    out_live.(Compact.edge_src c e) <- out_live.(Compact.edge_src c e) - 1;
    in_live.(Compact.edge_dst c e) <- in_live.(Compact.edge_dst c e) - 1
  in
  let remove_vertex v =
    stats_v := !stats_v + 1;
    vert_live.(v) <- false
  in
  let rec delete_dead_end v =
    let preds = ref [] in
    Compact.iter_preds c v (fun w e -> if edge_live.(e) then preds := (w, e) :: !preds);
    let preds = List.rev !preds in
    List.iter (fun (_, e) -> remove_edge e) preds;
    remove_vertex v;
    List.iter (fun (w, _) -> if w <> tid && out_live.(w) = 0 then delete_dead_end w) preds
  in
  let examine v =
    if v <> sid && v <> tid && vert_live.(v) then begin
      if in_live.(v) = 0 then begin
        let outs = ref [] in
        Compact.iter_succs c v (fun _ e -> if edge_live.(e) then outs := e :: !outs);
        List.iter remove_edge (List.rev !outs);
        remove_vertex v
      end
      else begin
        (* Earliest possible arrival at v: head of each live in-slice. *)
        let mintime = ref infinity in
        Compact.iter_preds c v (fun _ e ->
            if edge_live.(e) then
              mintime :=
                Float.min !mintime (Compact.inter_time c (Compact.edge_inter c e edge_start.(e))));
        let mintime = !mintime in
        Compact.iter_succs c v (fun _ e ->
            if edge_live.(e) then begin
              let ne = Compact.edge_n_inter c e in
              let s = ref edge_start.(e) in
              while !s < ne && Compact.inter_time c (Compact.edge_inter c e !s) < mintime do
                incr s
              done;
              let dropped = !s - edge_start.(e) in
              if dropped > 0 then begin
                stats_i := !stats_i + dropped;
                edge_start.(e) <- !s;
                if !s = ne then begin
                  stats_e := !stats_e + 1;
                  edge_live.(e) <- false;
                  out_live.(v) <- out_live.(v) - 1;
                  in_live.(Compact.edge_dst c e) <- in_live.(Compact.edge_dst c e) - 1
                end
              end
            end);
        if out_live.(v) = 0 then delete_dead_end v
      end
    end
  in
  Array.iter examine order;
  let zero_flow =
    sid < 0 || tid < 0
    || (not vert_live.(sid))
    || (not vert_live.(tid))
    ||
    (* Reachability over the surviving edges. *)
    let seen = Array.make (max n 1) false in
    let q = Queue.create () in
    seen.(sid) <- true;
    Queue.add sid q;
    let found = ref false in
    while (not !found) && not (Queue.is_empty q) do
      let v = Queue.pop q in
      if v = tid then found := true
      else
        Compact.iter_succs c v (fun u e ->
            if edge_live.(e) && not seen.(u) then begin
              seen.(u) <- true;
              Queue.add u q
            end)
    done;
    not !found
  in
  let entries = ref [] in
  for e = m_e - 1 downto 0 do
    if edge_live.(e) then begin
      let s = Compact.label c (Compact.edge_src c e)
      and d = Compact.label c (Compact.edge_dst c e) in
      for k = Compact.edge_n_inter c e - 1 downto edge_start.(e) do
        let j = Compact.edge_inter c e k in
        entries :=
          ( s,
            d,
            Interaction.unchecked ~time:(Compact.inter_time c j) ~qty:(Compact.inter_qty c j) )
          :: !entries
      done
    end
  done;
  let vertices = ref [] in
  for v = n - 1 downto 0 do
    if vert_live.(v) then vertices := Compact.label c v :: !vertices
  done;
  {
    compact = Compact.of_entries ~vertices:!vertices !entries;
    zero_flow_c = zero_flow;
    removed_interactions_c = !stats_i;
    removed_edges_c = !stats_e;
    removed_vertices_c = !stats_v;
  }
