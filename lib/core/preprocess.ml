type result = {
  graph : Graph.t;
  zero_flow : bool;
  removed_interactions : int;
  removed_edges : int;
  removed_vertices : int;
}

let run g0 ~source ~sink =
  if source = sink then invalid_arg "Preprocess.run: source = sink";
  let order = Topo.sort_exn g0 in
  let g = ref g0 in
  let stats_i = ref 0 and stats_e = ref 0 and stats_v = ref 0 in
  let remove_edge ~src ~dst =
    stats_i := !stats_i + List.length (Graph.edge !g ~src ~dst);
    stats_e := !stats_e + 1;
    g := Graph.remove_edge !g ~src ~dst
  in
  let remove_vertex v =
    (* Only called once all of v's edges are gone. *)
    stats_v := !stats_v + 1;
    g := Graph.remove_vertex !g v
  in
  (* Delete v (≠ sink) because it has no outgoing edges: its incoming
     edges are useless, and their removal may strand predecessors in
     the same way.  Predecessors precede v in topological order and
     will not be re-examined, so the clean-up must recurse now (the
     paper's lines 18–22). *)
  let rec delete_dead_end v =
    let preds = Graph.preds !g v in
    List.iter (fun w -> remove_edge ~src:w ~dst:v) preds;
    remove_vertex v;
    List.iter (fun w -> if w <> sink && Graph.out_degree !g w = 0 then delete_dead_end w) preds
  in
  let examine v =
    if v <> source && v <> sink && Graph.mem_vertex !g v then begin
      if Graph.in_degree !g v = 0 then begin
        (* Nothing can ever reach v: drop it with its outgoing edges
           (their targets are examined later in topological order). *)
        List.iter (fun u -> remove_edge ~src:v ~dst:u) (Graph.succs !g v);
        remove_vertex v
      end
      else begin
        (* Earliest possible arrival at v. *)
        let mintime =
          List.fold_left
            (fun acc (_, is) ->
              match is with [] -> acc | i :: _ -> Float.min acc (Interaction.time i))
            infinity (Graph.in_edges !g v)
        in
        List.iter
          (fun (u, is) ->
            let kept = List.filter (fun i -> Interaction.time i >= mintime) is in
            let dropped = List.length is - List.length kept in
            if dropped > 0 then begin
              stats_i := !stats_i + dropped;
              if kept = [] then begin
                stats_e := !stats_e + 1;
                g := Graph.remove_edge !g ~src:v ~dst:u
              end
              else g := Graph.set_edge !g ~src:v ~dst:u kept
            end)
          (Graph.out_edges !g v);
        if Graph.out_degree !g v = 0 then delete_dead_end v
      end
    end
  in
  List.iter examine order;
  let g = !g in
  let zero_flow =
    (not (Graph.mem_vertex g source))
    || (not (Graph.mem_vertex g sink))
    || not (Topo.reaches g source sink)
  in
  {
    graph = g;
    zero_flow;
    removed_interactions = !stats_i;
    removed_edges = !stats_e;
    removed_vertices = !stats_v;
  }
