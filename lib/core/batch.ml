module Obs = Tin_obs.Obs
module Trace_ctx = Tin_obs.Trace_ctx

(* Chunk spans land on the recording domain's trace row (the span's
   [tid] is the domain id), so a trace shows how work spread over
   domains.  Args are built lazily: disabled runs must not allocate. *)
let span name args f = if Obs.recording () then Obs.Span.with_ name ~args:(args ()) f else f ()

(* Trace context is domain-local, so a spawned worker would start a
   fresh trace and its chunk spans would orphan from the caller's
   request span.  Capture the caller's context once and reinstall it
   in every worker (the caller runs its own worker inline under an
   identical context, so chunk spans parent the same way on every
   domain and the exported trace stitches into one tree). *)
let propagating worker =
  if Obs.recording () then begin
    let ctx = Trace_ctx.current () in
    fun () -> Trace_ctx.with_ctx ctx worker
  end
  else worker

type problem = { graph : Graph.t; source : Graph.vertex; sink : Graph.vertex }

let recommended_jobs () = Domain.recommended_domain_count ()

(* Chunked-queue parallel map: one atomic cursor over the item array;
   every domain (including the caller) claims [chunk] consecutive
   indices per fetch-and-add until the array is exhausted.  Results
   land in per-index slots, each written by exactly one domain;
   [Domain.join] publishes them to the caller. *)
let map ?jobs ?(chunk = 4) f items =
  if chunk < 1 then invalid_arg "Batch.map: chunk must be positive";
  let n = Array.length items in
  let jobs =
    match jobs with
    | Some j -> if j < 1 then invalid_arg "Batch.map: jobs must be positive" else j
    | None -> max 1 (min (recommended_jobs ()) n)
  in
  if n = 0 then [||]
  else if jobs = 1 then Array.map f items
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let start = Atomic.fetch_and_add next chunk in
        if start < n then begin
          let stop = min n (start + chunk) in
          span "batch.map.chunk"
            (fun () -> [ ("start", string_of_int start); ("stop", string_of_int stop) ])
            (fun () ->
              for i = start to stop - 1 do
                results.(i) <-
                  Some
                    (match f items.(i) with
                    | v -> Ok v
                    | exception e -> Error (e, Printexc.get_raw_backtrace ()))
              done);
          loop ()
        end
      in
      loop ()
    in
    let worker = propagating worker in
    let helpers = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join helpers;
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | None -> assert false)
      results
  end

(* Order-preserving parallel reduce over an index range.  Indices are
   grouped into fixed-size chunks claimed from one atomic cursor; each
   chunk folds into its own fresh accumulator, and the chunk
   accumulators merge left-to-right in index order after all domains
   join.  Because the chunk layout depends only on [n] and [chunk] —
   never on [jobs] or on claim timing — the merged result is
   bit-identical for every job count (floating-point accumulation
   order included), as long as [body] itself is deterministic per
   index.  [stop] makes the reduce cooperative: once set, no further
   chunk is claimed and the per-index loop stops early; already-folded
   chunk accumulators still merge, so partial results survive. *)
let map_reduce ?jobs ?(chunk = 16) ?stop ~n ~init ~body ~merge () =
  if chunk < 1 then invalid_arg "Batch.map_reduce: chunk must be positive";
  if n < 0 then invalid_arg "Batch.map_reduce: negative range";
  let n_chunks = (n + chunk - 1) / chunk in
  let jobs =
    match jobs with
    | Some j -> if j < 1 then invalid_arg "Batch.map_reduce: jobs must be positive" else j
    | None -> max 1 (min (recommended_jobs ()) n_chunks)
  in
  if n_chunks = 0 then init ()
  else begin
    let stopped () = match stop with None -> false | Some s -> Atomic.get s in
    let slots = Array.make n_chunks None in
    let cursor = Atomic.make 0 in
    let worker () =
      let rec loop () =
        if not (stopped ()) then begin
          let c = Atomic.fetch_and_add cursor 1 in
          if c < n_chunks then begin
            let hi = min n ((c + 1) * chunk) in
            (match
               span "batch.map_reduce.chunk"
                 (fun () -> [ ("chunk", string_of_int c); ("hi", string_of_int hi) ])
                 (fun () ->
                   let acc = init () in
                   let i = ref (c * chunk) in
                   while !i < hi && not (stopped ()) do
                     body acc !i;
                     incr i
                   done;
                   acc)
             with
            | acc -> slots.(c) <- Some (Ok acc)
            | exception e -> slots.(c) <- Some (Error (e, Printexc.get_raw_backtrace ())));
            loop ()
          end
        end
      in
      loop ()
    in
    let worker = propagating worker in
    let helpers = List.init (min jobs n_chunks - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join helpers;
    let acc = ref None in
    Array.iter
      (function
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | Some (Ok a) -> acc := Some (match !acc with None -> a | Some m -> merge m a)
        | None -> () (* skipped after [stop] *))
      slots;
    match !acc with None -> init () | Some a -> a
  end

(* Per-problem wall time of the whole pipeline, across all domains.
   The clock reads are gated on [Obs.enabled] so a disabled run stays
   syscall-free. *)
let h_solve_ms = Obs.Histogram.make "batch_solve_ms"

let max_flows ?jobs ?chunk ?solver ?(method_ = Pipeline.Pre_sim) problems =
  let compute { graph; source; sink } = Pipeline.compute ?solver method_ graph ~source ~sink in
  let compute =
    if Atomic.get Obs.enabled then fun p ->
      let t0 = Tin_util.Timer.now_ns () in
      let flow = compute p in
      Obs.Histogram.observe h_solve_ms
        (Int64.to_float (Int64.sub (Tin_util.Timer.now_ns ()) t0) /. 1e6);
      flow
    else compute
  in
  map ?jobs ?chunk compute (Array.of_list problems) |> Array.to_list
