type problem = { graph : Graph.t; source : Graph.vertex; sink : Graph.vertex }

let recommended_jobs () = Domain.recommended_domain_count ()

(* Chunked-queue parallel map: one atomic cursor over the item array;
   every domain (including the caller) claims [chunk] consecutive
   indices per fetch-and-add until the array is exhausted.  Results
   land in per-index slots, each written by exactly one domain;
   [Domain.join] publishes them to the caller. *)
let map ?jobs ?(chunk = 4) f items =
  if chunk < 1 then invalid_arg "Batch.map: chunk must be positive";
  let n = Array.length items in
  let jobs =
    match jobs with
    | Some j -> if j < 1 then invalid_arg "Batch.map: jobs must be positive" else j
    | None -> max 1 (min (recommended_jobs ()) n)
  in
  if n = 0 then [||]
  else if jobs = 1 then Array.map f items
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let start = Atomic.fetch_and_add next chunk in
        if start < n then begin
          let stop = min n (start + chunk) in
          for i = start to stop - 1 do
            results.(i) <-
              Some
                (match f items.(i) with
                | v -> Ok v
                | exception e -> Error (e, Printexc.get_raw_backtrace ()))
          done;
          loop ()
        end
      in
      loop ()
    in
    let helpers = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join helpers;
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | None -> assert false)
      results
  end

let max_flows ?jobs ?chunk ?solver ?(method_ = Pipeline.Pre_sim) problems =
  map ?jobs ?chunk
    (fun { graph; source; sink } -> Pipeline.compute ?solver method_ graph ~source ~sink)
    (Array.of_list problems)
  |> Array.to_list
