(** Graph simplification (Section 4.2.4, Algorithm 2, Lemma 3).

    A chain [s → v1 → … → vk] hanging off the source can be collapsed
    into a single edge [(s, vk)]: reserving quantity at [s] or at any
    interior chain vertex can never increase the flow that ultimately
    reaches the sink, so the chain's contribution is exactly what the
    greedy scan delivers into [vk].  The replacement edge carries one
    interaction per positive greedy arrival at [vk]; if an [(s, vk)]
    edge already exists the sequences are merged, which can expose new
    chains — the pass iterates to a fixpoint.

    The LP that remains after simplification has one variable per
    surviving non-source interaction, which is where the cost reduction
    comes from (the paper's Figure 7 goes from 9 variables to 3). *)

type result = {
  graph : Graph.t;
  chains_reduced : int;  (** Number of chain-collapse steps performed. *)
  removed_vertices : int;  (** Interior chain vertices eliminated. *)
}

val run : Graph.t -> source:Graph.vertex -> sink:Graph.vertex -> result
(** Simplifies a DAG.  The input is unchanged.
    @raise Invalid_argument if the graph is cyclic or [source = sink]. *)

val reduce_chain_interactions :
  (Graph.vertex * Interaction.t list) list -> Interaction.t list
(** [reduce_chain_interactions [(v1, e1); …; (vk, ek)]] collapses a
    free-standing chain given as consecutive edges ([e1] on
    [(s, v1)], [e2] on [(v1, v2)], …) into the interaction sequence of
    the replacement edge.  Exposed for the pattern path tables, which
    extend precomputed paths one edge at a time (Section 5.1). *)

val reduce_chain_cols :
  k:int -> times:floatarray -> qtys:floatarray -> pos:int array -> Interaction.t list
(** Flat twin of {!reduce_chain_interactions} for pre-gathered columns:
    interaction [j] has timestamp [times.(j)], quantity [qtys.(j)] and
    sits on chain edge [pos.(j) → pos.(j) + 1] of a [k]-edge chain
    ([0 ≤ pos.(j) < k]; any order; the three arrays must have equal
    length).  Produces the identical arrival sequence without building
    a graph or boxing interactions — the pattern-table candidate scan
    ({!Tin_patterns.Tables}) calls this once per candidate. *)
