(** Flow provenance: {e where} did each unit of buffered flow
    originate?

    The greedy scan (Section 3) tells an investigator how much arrived
    at an account; this module additionally tracks which interactions
    that quantity was born at, following the model of the same
    authors' follow-up paper "Provenance in Temporal Interaction
    Networks" (arXiv:2110.05041).  Every vertex buffer is annotated
    with a provenance vector — masses keyed by origin — and each
    interaction propagates the sender's annotations to the receiver.
    When a sender's buffer cannot cover an interaction's quantity, the
    deficit is {e born} fresh at that interaction; which of the
    buffered units move when the buffer {e can} cover it is decided by
    a pluggable selection policy:

    - {!Lrb} (least recently born): oldest-born units move first — the
      FIFO reading an FIU uses for "first money in is first money
      out";
    - {!Mrb} (most recently born): newest-born units move first;
    - {!Proportional}: every origin contributes pro rata — the
      order-insensitive reference policy, whose per-vertex totals are
      independent of selection order by construction.

    Memory is bounded per buffer by a configurable entry budget:
    whenever a buffer exceeds it, the two oldest entries are merged
    into a coarser origin group (two origins born at the same vertex
    collapse to that {!origin.Vertex}; otherwise to {!origin.Any}), so
    a buffer degrades gracefully from interaction-level to
    vertex-level to fully aggregated attribution instead of growing
    without bound.

    Both representations are supported — {!run} over {!Graph.t} and
    {!run_compact} over the flat {!Compact.t} substrate — and are
    bit-identical twins: the scan follows the global interaction order
    (time, quantity, src, dst) with the same floating-point operation
    sequence, so totals {e and} per-origin masses compare with
    [Float.equal].  In source-rooted mode the scalar side mirrors
    {!Greedy} exactly: per-vertex totals equal {!Greedy.buffers} and
    the absorbed total equals {!Greedy.flow} bit for bit, which the
    verify lattice enforces. *)

type policy = Lrb | Mrb | Proportional

val policy_name : policy -> string
(** ["lrb"], ["mrb"] or ["prop"]. *)

val policy_of_string : string -> policy option
(** Inverse of {!policy_name}; also accepts ["proportional"].
    Case-insensitive. *)

type origin =
  | Inter of {
      index : int;  (** Scan-order interaction index (as {!Decompose.leg.inter}). *)
      src : Graph.vertex;
      dst : Graph.vertex;
      time : float;
      qty : float;
    }  (** Born at one specific interaction. *)
  | Vertex of Graph.vertex
      (** Aggregated: born at some interaction(s) sent by this vertex. *)
  | Any  (** Fully aggregated: origin no longer tracked. *)
(** An origin group, from finest to coarsest.  Coarser groups appear
    only after budget spills. *)

val compare_origin : origin -> origin -> int
(** Total deterministic order: [Any < Vertex _ < Inter _], then by
    vertex / index. *)

val describe_origin : origin -> string
(** Human-readable one-liner for reports. *)

type t = {
  totals : (Graph.vertex * float) list;
      (** Final buffered quantity per vertex, ascending by label.  In
          source-rooted mode this equals {!Greedy.buffers} exactly
          (the source reports [infinity]). *)
  vectors : (Graph.vertex * (origin * float) list) list;
      (** Final provenance vector per vertex, ascending by label; each
          vector is aggregated by origin and sorted by descending
          mass (ties by {!compare_origin}).  Masses sum to the
          vertex's total up to floating-point drift. *)
  spills : int;  (** Budget-forced coarsening merges performed. *)
  peak_entries : int;  (** Peak live provenance entries across all buffers. *)
}

val default_budget : int
(** Default per-buffer entry budget ([64]). *)

val run :
  ?policy:policy ->
  ?budget:int ->
  ?source:Graph.vertex ->
  ?absorb:Graph.vertex ->
  ?trace:(int -> (origin * float) list -> unit) ->
  Graph.t ->
  t
(** Scan the network once, propagating provenance vectors.

    Without [?source] (open-world mode) every interaction transfers
    its full quantity: the part covered by the sender's buffer carries
    the buffered provenance selected by [policy], and the deficit is
    born at that interaction.  With [?source] (source-rooted mode)
    only quantity reaching a vertex from the source circulates — the
    scan mirrors {!Greedy} float-op-for-float-op, the source's buffer
    is infinite, and all births happen on interactions the source
    sends.

    [?absorb] names a vertex that never re-sends what it received
    (the greedy sink rule); pass the sink here to make its total the
    greedy flow value.  [?trace] is called for every interaction that
    moved quantity, with the scan-order index and the moved
    provenance batch.  [budget] is the per-buffer entry budget
    (default {!default_budget}; at least 2).

    @raise Invalid_argument if [budget < 2] or [source = absorb]. *)

val run_compact :
  ?policy:policy ->
  ?budget:int ->
  ?source:Graph.vertex ->
  ?absorb:Graph.vertex ->
  ?trace:(int -> (origin * float) list -> unit) ->
  Compact.t ->
  t
(** Bit-identical twin of {!run} over the flat substrate: identical
    origins, masses, totals, spill and peak counts.  [source]/[absorb]
    are raw labels, as in {!run}. *)
