type method_ = Greedy | Lp | Pre | Pre_sim | Time_expanded

let all_methods = [ Greedy; Lp; Pre; Pre_sim; Time_expanded ]

let method_name = function
  | Greedy -> "Greedy"
  | Lp -> "LP"
  | Pre -> "Pre"
  | Pre_sim -> "PreSim"
  | Time_expanded -> "TimeExp"

type cls = A | B | C

let cls_name = function A -> "Class A" | B -> "Class B" | C -> "Class C"

type stage =
  | Soluble_as_given
  | Cyclic_fallback
  | Zero_after_preprocess
  | Soluble_after_preprocess
  | Soluble_after_simplify
  | Lp_solve

let stage_name = function
  | Soluble_as_given -> "soluble-as-given"
  | Cyclic_fallback -> "cyclic-fallback"
  | Zero_after_preprocess -> "zero-after-preprocess"
  | Soluble_after_preprocess -> "soluble-after-preprocess"
  | Soluble_after_simplify -> "soluble-after-simplify"
  | Lp_solve -> "lp-solve"

type report = {
  value : float;
  cls : cls;
  stage : stage;
  lp_vars_before : int;
  lp_vars_after : int;
}

exception Solver_failure of string

let solve_lp ?solver g ~source ~sink =
  match Lp_flow.solve ?solver g ~source ~sink with
  | Ok v -> v
  | Error `Unbounded -> raise (Solver_failure "LP unbounded (all-infinite source-sink path?)")
  | Error `Infeasible -> raise (Solver_failure "LP infeasible (internal error)")
  | Error `Iteration_limit -> raise (Solver_failure "LP iteration limit reached")

(* The Pre / PreSim pipelines.  [simplify] toggles the Algorithm-2
   stage.  Returns the flow and the stage accounting used by
   [report]. *)
let staged ?solver ~simplify g ~source ~sink =
  if Solubility.soluble g ~source ~sink then
    (Greedy.flow g ~source ~sink, A, Soluble_as_given, 0)
  else if not (Topo.is_dag g) then
    (* The DAG accelerators do not apply; the time-expanded reduction
       (and the LP) are structure-agnostic, so fall back to Dinic. *)
    (Tin_maxflow.Time_expand.max_flow g ~source ~sink, C, Cyclic_fallback, 0)
  else begin
    let pre = Preprocess.run g ~source ~sink in
    if pre.Preprocess.zero_flow then (0.0, B, Zero_after_preprocess, 0)
    else if Solubility.soluble pre.Preprocess.graph ~source ~sink then
      (Greedy.flow pre.Preprocess.graph ~source ~sink, B, Soluble_after_preprocess, 0)
    else begin
      let g' =
        if simplify then (Simplify.run pre.Preprocess.graph ~source ~sink).Simplify.graph
        else pre.Preprocess.graph
      in
      (* Simplification can leave a greedy-soluble graph (e.g. the
         whole thing collapsed to parallel source edges). *)
      if simplify && Solubility.soluble g' ~source ~sink then
        (Greedy.flow g' ~source ~sink, C, Soluble_after_simplify, 0)
      else (solve_lp ?solver g' ~source ~sink, C, Lp_solve, Lp_flow.n_variables g' ~source)
    end
  end

let compute ?solver method_ g ~source ~sink =
  match method_ with
  | Greedy -> Greedy.flow g ~source ~sink
  | Lp -> solve_lp ?solver g ~source ~sink
  | Pre ->
      let v, _, _, _ = staged ?solver ~simplify:false g ~source ~sink in
      v
  | Pre_sim ->
      let v, _, _, _ = staged ?solver ~simplify:true g ~source ~sink in
      v
  | Time_expanded -> Tin_maxflow.Time_expand.max_flow g ~source ~sink

let max_flow ?solver g ~source ~sink = compute ?solver Pre_sim g ~source ~sink

let classify g ~source ~sink =
  if Solubility.soluble g ~source ~sink then A
  else if not (Topo.is_dag g) then C
  else begin
    let pre = Preprocess.run g ~source ~sink in
    if pre.Preprocess.zero_flow || Solubility.soluble pre.Preprocess.graph ~source ~sink then B
    else C
  end

let report ?solver ?(simplify = true) g ~source ~sink =
  let lp_vars_before = Lp_flow.n_variables g ~source in
  let value, cls, stage, lp_vars_after = staged ?solver ~simplify g ~source ~sink in
  { value; cls; stage; lp_vars_before; lp_vars_after }
