module Obs = Tin_obs.Obs

(* Span args are built lazily so the disabled path allocates nothing. *)
let span name args f = if Obs.recording () then Obs.Span.with_ name ~args:(args ()) f else f ()

let graph_args g () =
  [
    ("vertices", string_of_int (Graph.n_vertices g));
    ("interactions", string_of_int (Graph.n_interactions g));
  ]

(* The increments below are size differences that cannot go negative:
   preprocess and simplify only ever remove vertices/interactions, so
   the [Counter.add] monotonicity guard never fires here. *)
let c_pre_vertices = Obs.Counter.make "pipeline.preprocess.vertices_removed"
let c_pre_interactions = Obs.Counter.make "pipeline.preprocess.interactions_removed"
let c_sim_interactions = Obs.Counter.make "pipeline.simplify.interactions_removed"

type method_ = Greedy | Lp | Pre | Pre_sim | Time_expanded

let all_methods = [ Greedy; Lp; Pre; Pre_sim; Time_expanded ]

let method_name = function
  | Greedy -> "Greedy"
  | Lp -> "LP"
  | Pre -> "Pre"
  | Pre_sim -> "PreSim"
  | Time_expanded -> "TimeExp"

type cls = A | B | C

let cls_name = function A -> "Class A" | B -> "Class B" | C -> "Class C"

type stage =
  | Soluble_as_given
  | Cyclic_fallback
  | Zero_after_preprocess
  | Soluble_after_preprocess
  | Soluble_after_simplify
  | Lp_solve

let stage_name = function
  | Soluble_as_given -> "soluble-as-given"
  | Cyclic_fallback -> "cyclic-fallback"
  | Zero_after_preprocess -> "zero-after-preprocess"
  | Soluble_after_preprocess -> "soluble-after-preprocess"
  | Soluble_after_simplify -> "soluble-after-simplify"
  | Lp_solve -> "lp-solve"

let stage_counters =
  List.map
    (fun s -> (s, Obs.Counter.make ("pipeline.stage." ^ stage_name s)))
    [
      Soluble_as_given;
      Cyclic_fallback;
      Zero_after_preprocess;
      Soluble_after_preprocess;
      Soluble_after_simplify;
      Lp_solve;
    ]

let count_stage s = Obs.Counter.incr (List.assq s stage_counters)

type report = {
  value : float;
  cls : cls;
  stage : stage;
  lp_vars_before : int;
  lp_vars_after : int;
}

exception Solver_failure of string

let solve_lp ?solver g ~source ~sink =
  match Lp_flow.solve ?solver g ~source ~sink with
  | Ok v -> v
  | Error `Unbounded -> raise (Solver_failure "LP unbounded (all-infinite source-sink path?)")
  | Error `Infeasible -> raise (Solver_failure "LP infeasible (internal error)")
  | Error `Iteration_limit -> raise (Solver_failure "LP iteration limit reached")

(* The Pre / PreSim pipelines.  [simplify] toggles the Algorithm-2
   stage.  Returns the flow and the stage accounting used by
   [report].  Each stage runs inside an observability span carrying the
   input graph size; the preprocess/simplify spans additionally feed
   the [pipeline.*_removed] reduction counters. *)
let staged ?solver ~simplify g ~source ~sink =
  let ((_, _, stage, _) as result) =
    if Solubility.soluble g ~source ~sink then
      ( span "pipeline.greedy" (graph_args g) (fun () -> Greedy.flow g ~source ~sink),
        A,
        Soluble_as_given,
        0 )
    else if not (Topo.is_dag g) then
      (* The DAG accelerators do not apply; the time-expanded reduction
         (and the LP) are structure-agnostic, so fall back to Dinic. *)
      ( span "pipeline.time_expand" (graph_args g) (fun () ->
            Tin_maxflow.Time_expand.max_flow g ~source ~sink),
        C,
        Cyclic_fallback,
        0 )
    else begin
      let pre = span "pipeline.preprocess" (graph_args g) (fun () -> Preprocess.run g ~source ~sink) in
      if Obs.tracking () && not pre.Preprocess.zero_flow then begin
        let g' = pre.Preprocess.graph in
        Obs.Counter.add c_pre_vertices (Graph.n_vertices g - Graph.n_vertices g');
        Obs.Counter.add c_pre_interactions (Graph.n_interactions g - Graph.n_interactions g')
      end;
      if pre.Preprocess.zero_flow then (0.0, B, Zero_after_preprocess, 0)
      else if Solubility.soluble pre.Preprocess.graph ~source ~sink then
        ( span "pipeline.greedy"
            (graph_args pre.Preprocess.graph)
            (fun () -> Greedy.flow pre.Preprocess.graph ~source ~sink),
          B,
          Soluble_after_preprocess,
          0 )
      else begin
        let g' =
          if simplify then begin
            let gp = pre.Preprocess.graph in
            let simplified =
              span "pipeline.simplify" (graph_args gp) (fun () ->
                  (Simplify.run gp ~source ~sink).Simplify.graph)
            in
            Obs.Counter.add c_sim_interactions
              (if Obs.tracking () then Graph.n_interactions gp - Graph.n_interactions simplified
               else 0);
            simplified
          end
          else pre.Preprocess.graph
        in
        (* Simplification can leave a greedy-soluble graph (e.g. the
           whole thing collapsed to parallel source edges). *)
        if simplify && Solubility.soluble g' ~source ~sink then
          ( span "pipeline.greedy" (graph_args g') (fun () -> Greedy.flow g' ~source ~sink),
            C,
            Soluble_after_simplify,
            0 )
        else
          ( span "pipeline.lp" (graph_args g') (fun () -> solve_lp ?solver g' ~source ~sink),
            C,
            Lp_solve,
            Lp_flow.n_variables g' ~source )
      end
    end
  in
  count_stage stage;
  result

let compute ?solver method_ g ~source ~sink =
  match method_ with
  | Greedy -> Greedy.flow g ~source ~sink
  | Lp -> solve_lp ?solver g ~source ~sink
  | Pre ->
      let v, _, _, _ = staged ?solver ~simplify:false g ~source ~sink in
      v
  | Pre_sim ->
      let v, _, _, _ = staged ?solver ~simplify:true g ~source ~sink in
      v
  | Time_expanded -> Tin_maxflow.Time_expand.max_flow g ~source ~sink

let max_flow ?solver g ~source ~sink = compute ?solver Pre_sim g ~source ~sink

let classify g ~source ~sink =
  if Solubility.soluble g ~source ~sink then A
  else if not (Topo.is_dag g) then C
  else begin
    let pre = Preprocess.run g ~source ~sink in
    if pre.Preprocess.zero_flow || Solubility.soluble pre.Preprocess.graph ~source ~sink then B
    else C
  end

let report ?solver ?(simplify = true) g ~source ~sink =
  let lp_vars_before = Lp_flow.n_variables g ~source in
  let value, cls, stage, lp_vars_after = staged ?solver ~simplify g ~source ~sink in
  { value; cls; stage; lp_vars_before; lp_vars_after }
