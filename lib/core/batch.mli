(** Multicore batch evaluation of independent flow problems.

    The workload shape of the extraction benchmarks and of any
    many-endpoint-pair analysis: thousands of small, mutually
    independent subgraph solves.  Each solve touches only its own
    (persistent) graph and a private LP builder, so the problems
    parallelize across OCaml 5 [Domain]s with no shared mutable state.
    Work is handed out in fixed-size chunks from a single atomic
    cursor — a chunked queue rather than work stealing, which is
    enough because chunk granularity amortizes the cursor contention
    and the per-problem cost variance is modest. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the default parallelism. *)

val map : ?jobs:int -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map f items] evaluates [f] on every element, preserving order.
    [jobs] (default: [min (recommended_jobs ()) (length items)], at
    least 1) is the total number of domains used, including the
    calling one; [jobs = 1] degrades to [Array.map].  [chunk]
    (default 4) is the number of consecutive items claimed per queue
    round-trip.  [f] must be safe to run concurrently with itself.  If
    any invocation raises, the first exception (in item order) is
    re-raised after all domains have drained.
    @raise Invalid_argument if [jobs] or [chunk] is not positive. *)

type problem = { graph : Graph.t; source : Graph.vertex; sink : Graph.vertex }

val max_flows :
  ?jobs:int ->
  ?chunk:int ->
  ?solver:Tin_lp.Problem.solver ->
  ?method_:Pipeline.method_ ->
  problem list ->
  float list
(** Flow value of every problem, in order, computed across domains.
    [method_] defaults to {!Pipeline.Pre_sim}; [solver] is passed to
    the LP stages (default [`Auto]).
    @raise Pipeline.Solver_failure as {!Pipeline.compute}. *)

val map_reduce :
  ?jobs:int ->
  ?chunk:int ->
  ?stop:bool Atomic.t ->
  n:int ->
  init:(unit -> 'acc) ->
  body:('acc -> int -> unit) ->
  merge:('acc -> 'acc -> 'acc) ->
  unit ->
  'acc
(** [map_reduce ~n ~init ~body ~merge ()] folds the index range
    [0 .. n-1] in parallel: indices are grouped into [chunk]-sized
    blocks handed out from an atomic cursor, every block folds into a
    fresh [init ()] accumulator via [body], and block accumulators are
    combined with [merge] {e in index order} after all domains join.
    The chunk layout depends only on [n] and [chunk], so for a
    deterministic [body] the result is bit-identical across job counts
    — including floating-point accumulation order.  [stop], when
    provided and set (by [body] itself or by another domain), ends the
    reduce cooperatively: no further chunk is claimed, the in-flight
    per-index loops finish their current index and stop, and the
    accumulators folded so far still merge.  If any [body] call
    raises, the first exception in index order is re-raised after all
    domains drain.  [n = 0] returns [init ()].
    @raise Invalid_argument if [jobs] or [chunk] is not positive or
    [n] is negative. *)
