let out_degree_condition g ~source ~sink =
  List.for_all
    (fun v -> v = source || v = sink || Graph.out_degree g v = 1)
    (Graph.vertices g)

let soluble g ~source ~sink = out_degree_condition g ~source ~sink && Topo.is_dag g

let is_chain g ~source ~sink =
  Graph.mem_vertex g source && Graph.mem_vertex g sink
  && Graph.out_degree g source = 1
  && Graph.in_degree g source = 0
  && Graph.out_degree g sink = 0
  && Graph.in_degree g sink = 1
  && List.for_all
       (fun v ->
         v = source || v = sink || (Graph.out_degree g v = 1 && Graph.in_degree g v = 1))
       (Graph.vertices g)
  && Topo.is_dag g
