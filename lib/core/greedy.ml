module Obs = Tin_obs.Obs

let c_touches = Obs.Counter.make "greedy.buffer_touches"

type transfer = {
  src : Graph.vertex;
  dst : Graph.vertex;
  time : float;
  offered : float;
  moved : float;
}

(* Buffer state: [avail] is the quantity usable now (arrived strictly
   earlier), [pending] holds arrivals at the current timestamp, flushed
   into [avail] when the scan moves to a later timestamp. *)
type state = {
  avail : (Graph.vertex, float) Hashtbl.t;
  pending : (Graph.vertex, float) Hashtbl.t;
  mutable dirty : Graph.vertex list; (* vertices with pending quantity *)
  source : Graph.vertex;
}

let get tbl v = match Hashtbl.find_opt tbl v with Some x -> x | None -> 0.0

let flush st =
  List.iter
    (fun v ->
      let p = get st.pending v in
      if p > 0.0 then Hashtbl.replace st.avail v (get st.avail v +. p);
      Hashtbl.remove st.pending v)
    st.dirty;
  st.dirty <- []

let scan g ~source ~sink ~on_transfer =
  if source = sink then invalid_arg "Greedy: source = sink";
  let st =
    { avail = Hashtbl.create 64; pending = Hashtbl.create 16; dirty = []; source }
  in
  Hashtbl.replace st.avail source infinity;
  let current = ref nan in
  (* Buffer touches are counted in a plain local and published once
     after the scan: the per-interaction loop stays probe-free. *)
  let touches = ref 0 in
  Array.iter
    (fun (v, u, i) ->
      let tm = Interaction.time i and q = Interaction.qty i in
      if not (Float.equal !current tm) then begin
        flush st;
        current := tm
      end;
      (* The sink absorbs: quantity that reached it is never re-sent
         (the paper's graphs give the sink no outgoing edges; on
         arbitrary graphs this defines the flow as total absorbed). *)
      let b = if v = sink then 0.0 else get st.avail v in
      let moved = Float.min q b in
      if moved > 0.0 then begin
        if v <> st.source then Hashtbl.replace st.avail v (b -. moved);
        if get st.pending u = 0.0 then st.dirty <- u :: st.dirty;
        Hashtbl.replace st.pending u (get st.pending u +. moved);
        incr touches
      end;
      on_transfer { src = v; dst = u; time = tm; offered = q; moved })
    (Graph.interactions_sorted g);
  flush st;
  Obs.Counter.add c_touches !touches;
  (get st.avail sink, st)

let flow g ~source ~sink =
  let value, _ = scan g ~source ~sink ~on_transfer:ignore in
  value

let flow_trace g ~source ~sink =
  let log = ref [] in
  let value, _ = scan g ~source ~sink ~on_transfer:(fun tr -> log := tr :: !log) in
  (value, List.rev !log)

let arrivals_at_sink g ~source ~sink =
  let arrivals = ref [] in
  let on_transfer tr =
    if tr.dst = sink && tr.moved > 0.0 then
      arrivals := Interaction.make ~time:tr.time ~qty:tr.moved :: !arrivals
  in
  let _, _ = scan g ~source ~sink ~on_transfer in
  List.rev !arrivals

let buffers g ~source ~sink =
  let _, st = scan g ~source ~sink ~on_transfer:ignore in
  List.map (fun v -> (v, get st.avail v)) (Graph.vertices g)
