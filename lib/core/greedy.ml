module Obs = Tin_obs.Obs

let c_touches = Obs.Counter.make "greedy.buffer_touches"

type transfer = {
  src : Graph.vertex;
  dst : Graph.vertex;
  time : float;
  offered : float;
  moved : float;
}

(* Buffer state: [avail] is the quantity usable now (arrived strictly
   earlier), [pending] holds arrivals at the current timestamp, flushed
   into [avail] when the scan moves to a later timestamp. *)
type state = {
  avail : (Graph.vertex, float) Hashtbl.t;
  pending : (Graph.vertex, float) Hashtbl.t;
  mutable dirty : Graph.vertex list; (* vertices with pending quantity *)
  source : Graph.vertex;
}

let get tbl v = match Hashtbl.find_opt tbl v with Some x -> x | None -> 0.0

let flush st =
  List.iter
    (fun v ->
      let p = get st.pending v in
      if p > 0.0 then Hashtbl.replace st.avail v (get st.avail v +. p);
      Hashtbl.remove st.pending v)
    st.dirty;
  st.dirty <- []

let scan g ~source ~sink ~on_transfer =
  if source = sink then invalid_arg "Greedy: source = sink";
  let st =
    { avail = Hashtbl.create 64; pending = Hashtbl.create 16; dirty = []; source }
  in
  Hashtbl.replace st.avail source infinity;
  let current = ref nan in
  (* Buffer touches are counted in a plain local and published once
     after the scan: the per-interaction loop stays probe-free. *)
  let touches = ref 0 in
  Array.iter
    (fun (v, u, i) ->
      let tm = Interaction.time i and q = Interaction.qty i in
      if not (Float.equal !current tm) then begin
        flush st;
        current := tm
      end;
      (* The sink absorbs: quantity that reached it is never re-sent
         (the paper's graphs give the sink no outgoing edges; on
         arbitrary graphs this defines the flow as total absorbed). *)
      let b = if v = sink then 0.0 else get st.avail v in
      let moved = Float.min q b in
      if moved > 0.0 then begin
        if v <> st.source then Hashtbl.replace st.avail v (b -. moved);
        if get st.pending u = 0.0 then st.dirty <- u :: st.dirty;
        Hashtbl.replace st.pending u (get st.pending u +. moved);
        incr touches
      end;
      on_transfer { src = v; dst = u; time = tm; offered = q; moved })
    (Graph.interactions_sorted g);
  flush st;
  Obs.Counter.add c_touches !touches;
  (get st.avail sink, st)

let flow g ~source ~sink =
  let value, _ = scan g ~source ~sink ~on_transfer:ignore in
  value

let flow_trace g ~source ~sink =
  let log = ref [] in
  let value, _ = scan g ~source ~sink ~on_transfer:(fun tr -> log := tr :: !log) in
  (value, List.rev !log)

let arrivals_at_sink g ~source ~sink =
  let arrivals = ref [] in
  let on_transfer tr =
    if tr.dst = sink && tr.moved > 0.0 then
      arrivals := Interaction.unchecked ~time:tr.time ~qty:tr.moved :: !arrivals
  in
  let _, _ = scan g ~source ~sink ~on_transfer in
  List.rev !arrivals

let buffers g ~source ~sink =
  let _, st = scan g ~source ~sink ~on_transfer:ignore in
  List.map (fun v -> (v, get st.avail v)) (Graph.vertices g)

(* --- flat scan over the Compact substrate --------------------------

   Same algorithm over the same scan order: the compact interaction
   table is sorted by (time, qty, src, dst) on compact ids, and compact
   ids are sorted-label ranks, so ties break exactly as
   [Graph.interactions_sorted] breaks them on raw labels.  The
   floating-point operation sequence is identical to [scan], so the
   result is bit-identical — the property the verify lattice and the
   representation-determinism tests pin down.  Buffers live in flat
   float arrays indexed by compact id instead of hashtables, and the
   hot loop reads the unboxed columns directly. *)

let scan_compact c ~source ~sink ~on_transfer =
  if source = sink then invalid_arg "Greedy: source = sink";
  let n = Compact.n_vertices c in
  let id l = match Compact.vertex_of_label c l with Some v -> v | None -> -1 in
  let sid = id source and tid = id sink in
  let size = if n = 0 then 1 else n in
  let avail = Array.make size 0.0 in
  let pending = Array.make size 0.0 in
  let dirty = Array.make size 0 in
  let n_dirty = ref 0 in
  if sid >= 0 then avail.(sid) <- infinity;
  let flush () =
    for k = 0 to !n_dirty - 1 do
      let u = dirty.(k) in
      let p = pending.(u) in
      if p > 0.0 then avail.(u) <- avail.(u) +. p;
      pending.(u) <- 0.0
    done;
    n_dirty := 0
  in
  let current = ref nan in
  let touches = ref 0 in
  for k = 0 to Compact.n_interactions c - 1 do
    let v = Compact.inter_src c k and u = Compact.inter_dst c k in
    let tm = Compact.inter_time c k and q = Compact.inter_qty c k in
    if not (Float.equal !current tm) then begin
      flush ();
      current := tm
    end;
    let b = if v = tid then 0.0 else avail.(v) in
    let moved = Float.min q b in
    if moved > 0.0 then begin
      if v <> sid then avail.(v) <- b -. moved;
      if pending.(u) = 0.0 then begin
        dirty.(!n_dirty) <- u;
        incr n_dirty
      end;
      pending.(u) <- pending.(u) +. moved;
      incr touches
    end;
    on_transfer
      { src = Compact.label c v; dst = Compact.label c u; time = tm; offered = q; moved }
  done;
  flush ();
  Obs.Counter.add c_touches !touches;
  ((if tid >= 0 then avail.(tid) else 0.0), avail, sid)

let flow_compact c ~source ~sink =
  (* Callback-free twin of [scan_compact]: the per-interaction loop is
     pure column reads and array updates. *)
  if source = sink then invalid_arg "Greedy: source = sink";
  let n = Compact.n_vertices c in
  let id l = match Compact.vertex_of_label c l with Some v -> v | None -> -1 in
  let sid = id source and tid = id sink in
  let size = if n = 0 then 1 else n in
  let avail = Array.make size 0.0 in
  let pending = Array.make size 0.0 in
  let dirty = Array.make size 0 in
  let n_dirty = ref 0 in
  if sid >= 0 then avail.(sid) <- infinity;
  let flush () =
    for k = 0 to !n_dirty - 1 do
      let u = dirty.(k) in
      let p = pending.(u) in
      if p > 0.0 then avail.(u) <- avail.(u) +. p;
      pending.(u) <- 0.0
    done;
    n_dirty := 0
  in
  let current = ref nan in
  let touches = ref 0 in
  for k = 0 to Compact.n_interactions c - 1 do
    let v = Compact.inter_src c k and u = Compact.inter_dst c k in
    let tm = Compact.inter_time c k and q = Compact.inter_qty c k in
    if not (Float.equal !current tm) then begin
      flush ();
      current := tm
    end;
    let b = if v = tid then 0.0 else avail.(v) in
    let moved = Float.min q b in
    if moved > 0.0 then begin
      if v <> sid then avail.(v) <- b -. moved;
      if pending.(u) = 0.0 then begin
        dirty.(!n_dirty) <- u;
        incr n_dirty
      end;
      pending.(u) <- pending.(u) +. moved;
      incr touches
    end
  done;
  flush ();
  Obs.Counter.add c_touches !touches;
  if tid >= 0 then avail.(tid) else 0.0

let flow_trace_compact c ~source ~sink =
  let log = ref [] in
  let value, _, _ = scan_compact c ~source ~sink ~on_transfer:(fun tr -> log := tr :: !log) in
  (value, List.rev !log)

let arrivals_at_sink_compact c ~source ~sink =
  let arrivals = ref [] in
  let on_transfer tr =
    if tr.dst = sink && tr.moved > 0.0 then
      arrivals := Interaction.unchecked ~time:tr.time ~qty:tr.moved :: !arrivals
  in
  let _ = scan_compact c ~source ~sink ~on_transfer in
  List.rev !arrivals
