module Obs = Tin_obs.Obs
module Timer = Tin_util.Timer

let c_spills = Obs.Counter.make "prov_spills_total"
let g_entries = Obs.Gauge.make "prov_entries"
let h_scan_ms = Obs.Histogram.make "prov_scan_ms"

type policy = Lrb | Mrb | Proportional

let policy_name = function Lrb -> "lrb" | Mrb -> "mrb" | Proportional -> "prop"

let policy_of_string s =
  match String.lowercase_ascii s with
  | "lrb" -> Some Lrb
  | "mrb" -> Some Mrb
  | "prop" | "proportional" -> Some Proportional
  | _ -> None

type origin =
  | Inter of {
      index : int;
      src : Graph.vertex;
      dst : Graph.vertex;
      time : float;
      qty : float;
    }
  | Vertex of Graph.vertex
  | Any

let compare_origin a b =
  let rank = function Any -> 0 | Vertex _ -> 1 | Inter _ -> 2 in
  match (a, b) with
  | Any, Any -> 0
  | Vertex u, Vertex v -> Int.compare u v
  | Inter i, Inter j -> Int.compare i.index j.index
  | _ -> Int.compare (rank a) (rank b)

let describe_origin = function
  | Inter i -> Printf.sprintf "interaction #%d %d->%d @%g (qty %g)" i.index i.src i.dst i.time i.qty
  | Vertex v -> Printf.sprintf "vertex %d (aggregated)" v
  | Any -> "(aggregated: mixed origins)"

type t = {
  totals : (Graph.vertex * float) list;
  vectors : (Graph.vertex * (origin * float) list) list;
  spills : int;
  peak_entries : int;
}

let default_budget = 64

(* --- provenance buffers ---------------------------------------------

   A buffer is a list of entries sorted ascending by (born, origin),
   where [born] is the scan index of the interaction that created the
   mass.  The key order is total and identical on both
   representations, so every list operation below — and therefore
   every floating-point addition order — is deterministic and
   representation-independent.  Entries with equal keys are always
   coalesced on merge, so keys are unique within a buffer.  [Lrb]
   consumes from the front, [Mrb] from the back, [Proportional] scales
   every entry by one ratio. *)

type entry = { origin : origin; born : int; mutable mass : float }

type ctx = {
  budget : int;
  mutable live : int;  (* entries currently alive across all buffers *)
  mutable peak : int;
  mutable spills : int;
}

let compare_entry a b =
  match Int.compare a.born b.born with 0 -> compare_origin a.origin b.origin | c -> c

(* Merge two sorted entry lists, coalescing equal keys in place. *)
let rec merge ctx xs ys =
  match (xs, ys) with
  | [], l | l, [] -> l
  | x :: xs', y :: ys' ->
      let c = compare_entry x y in
      if c = 0 then begin
        x.mass <- x.mass +. y.mass;
        ctx.live <- ctx.live - 1;
        x :: merge ctx xs' ys'
      end
      else if c < 0 then x :: merge ctx xs' ys
      else y :: merge ctx xs ys'

let birth_vertex = function Inter i -> Some i.src | Vertex v -> Some v | Any -> None

(* While over budget, coarsen the two oldest entries into one group
   entry (same birth vertex -> [Vertex], else [Any]) and re-merge it,
   since the coarsened key may collide with an entry further down. *)
let rec enforce_budget ctx l =
  if List.length l <= ctx.budget then l
  else
    match l with
    | a :: b :: rest ->
        let o =
          match (birth_vertex a.origin, birth_vertex b.origin) with
          | Some va, Some vb when va = vb -> Vertex va
          | _ -> Any
        in
        ctx.spills <- ctx.spills + 1;
        ctx.live <- ctx.live - 1;
        let merged = { origin = o; born = a.born; mass = a.mass +. b.mass } in
        enforce_budget ctx (merge ctx [ merged ] rest)
    | _ -> l

(* Consume [take] from the front of a buffer.  Whole entries relocate;
   the boundary entry splits.  If the buffer runs dry first (masses
   can drift a few ulps below the scalar total), the moved batch just
   falls short — the scalar side stays authoritative. *)
let consume_front ctx buffer take =
  let rec go remaining = function
    | [] -> ([], [])
    | e :: rest ->
        if remaining <= 0.0 then ([], e :: rest)
        else if e.mass <= remaining then begin
          let moved, kept = go (remaining -. e.mass) rest in
          (e :: moved, kept)
        end
        else begin
          let part = { origin = e.origin; born = e.born; mass = remaining } in
          ctx.live <- ctx.live + 1;
          e.mass <- e.mass -. remaining;
          ([ part ], e :: rest)
        end
  in
  go take buffer

(* Select the provenance of [take] units leaving a buffer whose scalar
   total is [avail] (> 0).  Returns the moved batch in key order and
   the remaining buffer. *)
let select ctx policy buffer ~take ~avail =
  match policy with
  | Lrb -> consume_front ctx buffer take
  | Mrb ->
      let moved, kept = consume_front ctx (List.rev buffer) take in
      (List.rev moved, List.rev kept)
  | Proportional ->
      let ratio = take /. avail in
      let moved = ref [] and kept = ref [] in
      List.iter
        (fun e ->
          let part = e.mass *. ratio in
          if part > 0.0 then begin
            moved := { origin = e.origin; born = e.born; mass = part } :: !moved;
            ctx.live <- ctx.live + 1
          end;
          let rest = e.mass -. part in
          if rest > 0.0 then begin
            e.mass <- rest;
            kept := e :: !kept
          end
          else ctx.live <- ctx.live - 1)
        buffer;
      (List.rev !moved, List.rev !kept)

(* Aggregate a buffer by origin for reporting.  Masses are summed in
   buffer (key) order so the addition sequence is deterministic and
   representation-independent; the output is sorted by descending
   mass, ties broken by origin. *)
let aggregate entries =
  let acc = ref [] in
  (* first-seen order; buffers are budget-bounded so O(n^2) is fine *)
  List.iter
    (fun e ->
      match List.assoc_opt e.origin !acc with
      | Some cell -> cell := !cell +. e.mass
      | None -> acc := !acc @ [ (e.origin, ref e.mass) ])
    entries;
  List.map (fun (o, cell) -> (o, !cell)) !acc
  |> List.sort (fun (o1, m1) (o2, m2) ->
         match Float.compare m2 m1 with 0 -> compare_origin o1 o2 | c -> c)

(* --- the scan --------------------------------------------------------

   One core over integer slots, fed by either representation.  In
   source-rooted mode the scalar operations replicate [Greedy]'s exact
   floating-point sequence (strict-time buffers: pending arrivals at
   the current timestamp flush when time advances; the absorbing
   vertex never re-sends; moved = min(q, avail); the source is
   infinite), so per-slot totals are bit-identical to
   [Greedy.buffers].  In open-world mode every interaction ships its
   full quantity and the uncovered part is born at the sender. *)

let scan ~policy ~budget ~rooted ~source_slot ~absorb_slot ~n_slots ~n_inters ~get ~label ~trace
    =
  if budget < 2 then invalid_arg "Provenance: budget must be at least 2";
  if rooted && source_slot = absorb_slot && source_slot >= 0 then
    invalid_arg "Provenance: source = absorb";
  let size = max 1 n_slots in
  let avail = Array.make size 0.0 in
  let pending = Array.make size 0.0 in
  let dirty = Array.make size 0 in
  let n_dirty = ref 0 in
  let avail_e : entry list array = Array.make size [] in
  let pend_e : entry list array = Array.make size [] in
  if rooted && source_slot >= 0 then avail.(source_slot) <- infinity;
  let ctx = { budget; live = 0; peak = 0; spills = 0 } in
  let flush () =
    for i = 0 to !n_dirty - 1 do
      let u = dirty.(i) in
      let p = pending.(u) in
      if p > 0.0 then avail.(u) <- avail.(u) +. p;
      pending.(u) <- 0.0;
      (match pend_e.(u) with
      | [] -> ()
      | batch ->
          avail_e.(u) <- enforce_budget ctx (merge ctx avail_e.(u) batch);
          pend_e.(u) <- [])
    done;
    n_dirty := 0
  in
  let current = ref nan in
  for k = 0 to n_inters - 1 do
    let v, u, tm, q = get k in
    if not (Float.equal !current tm) then begin
      flush ();
      current := tm
    end;
    let b = if v = absorb_slot then 0.0 else avail.(v) in
    (* [shipped] moves to the receiver; [take] of it comes out of the
       sender's buffer; the rest is born at this interaction. *)
    let shipped, take, born_amt =
      if rooted then
        let moved = Float.min q b in
        if v = source_slot then (moved, 0.0, moved) else (moved, moved, 0.0)
      else
        let take = Float.min q b in
        (q, take, q -. take)
    in
    if shipped > 0.0 then begin
      if take > 0.0 then avail.(v) <- b -. take;
      if pending.(u) = 0.0 then begin
        dirty.(!n_dirty) <- u;
        incr n_dirty
      end;
      pending.(u) <- pending.(u) +. shipped;
      let selected, kept =
        if take > 0.0 then select ctx policy avail_e.(v) ~take ~avail:b
        else ([], avail_e.(v))
      in
      avail_e.(v) <- kept;
      let batch =
        if born_amt > 0.0 then begin
          ctx.live <- ctx.live + 1;
          selected
          @ [
              {
                origin = Inter { index = k; src = label v; dst = label u; time = tm; qty = q };
                born = k;
                mass = born_amt;
              };
            ]
        end
        else selected
      in
      (match trace with
      | Some f -> f k (List.map (fun e -> (e.origin, e.mass)) batch)
      | None -> ());
      (match batch with
      | [] -> ()
      | _ -> pend_e.(u) <- enforce_budget ctx (merge ctx pend_e.(u) batch));
      if ctx.live > ctx.peak then ctx.peak <- ctx.live
    end
  done;
  flush ();
  let totals = List.init n_slots (fun s -> (label s, avail.(s))) in
  let vectors = List.init n_slots (fun s -> (label s, aggregate avail_e.(s))) in
  Obs.Counter.add c_spills ctx.spills;
  Obs.Gauge.set g_entries (float_of_int ctx.peak);
  { totals; vectors; spills = ctx.spills; peak_entries = ctx.peak }

let timed f =
  if Atomic.get Obs.enabled then
    Obs.Span.with_ "provenance.scan" (fun () ->
        let r, ms = Timer.time_ms f in
        Obs.Histogram.observe h_scan_ms ms;
        r)
  else f ()

let run ?(policy = Proportional) ?(budget = default_budget) ?source ?absorb ?trace g =
  timed (fun () ->
      let verts = Array.of_list (Graph.vertices g) in
      let n_slots = Array.length verts in
      let slot_of = Hashtbl.create (max 16 n_slots) in
      Array.iteri (fun s v -> Hashtbl.replace slot_of v s) verts;
      let slot l =
        match l with
        | None -> -1
        | Some l -> ( match Hashtbl.find_opt slot_of l with Some s -> s | None -> -1)
      in
      let inters = Graph.interactions_sorted g in
      let get k =
        let v, u, i = inters.(k) in
        (Hashtbl.find slot_of v, Hashtbl.find slot_of u, Interaction.time i, Interaction.qty i)
      in
      scan ~policy ~budget ~rooted:(source <> None) ~source_slot:(slot source)
        ~absorb_slot:(slot absorb) ~n_slots ~n_inters:(Array.length inters) ~get
        ~label:(fun s -> verts.(s))
        ~trace)

let run_compact ?(policy = Proportional) ?(budget = default_budget) ?source ?absorb ?trace c =
  timed (fun () ->
      let slot l =
        match l with
        | None -> -1
        | Some l -> ( match Compact.vertex_of_label c l with Some s -> s | None -> -1)
      in
      let get k =
        (Compact.inter_src c k, Compact.inter_dst c k, Compact.inter_time c k,
         Compact.inter_qty c k)
      in
      scan ~policy ~budget ~rooted:(source <> None) ~source_slot:(slot source)
        ~absorb_slot:(slot absorb) ~n_slots:(Compact.n_vertices c)
        ~n_inters:(Compact.n_interactions c) ~get
        ~label:(fun s -> Compact.label c s)
        ~trace)
