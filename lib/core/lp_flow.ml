module Problem = Tin_lp.Problem

type lp = {
  problem : Problem.t;
  n_vars : int;
  n_rows : int;
  fixed_into_sink : float;
  objective_vars : (Problem.var * float) list;
  var_interactions : (Problem.var * (Graph.vertex * Graph.vertex * Interaction.t)) list;
  fixed_interactions : (Graph.vertex * Graph.vertex * Interaction.t) list;
}

type assignment = {
  src : Graph.vertex;
  dst : Graph.vertex;
  interaction : Interaction.t;
  amount : float;
}

(* Per-vertex event: either a variable interaction or a fixed
   (source-origin) constant, incoming or outgoing. *)
type event = {
  time : float;
  qty : float;
  var : Problem.var option; (* None = fixed source-origin interaction *)
  incoming : bool;
}

(* The LP formulation is shared between the persistent and the flat
   substrate: [iter] must visit every interaction grouped by edge in
   ascending (src, dst) label order, time-sorted within an edge —
   [Graph.iter_edges] order.  Both substrates iterate identically, so
   the insertion sequence into the [events] hashtable (and therefore
   [Hashtbl.iter]'s constraint-emission order, and therefore the
   simplex pivot sequence) is the same: objective values agree
   bit-for-bit across representations. *)
let build_iter ~iter ~source ~sink =
  if source = sink then invalid_arg "Lp_flow.build: source = sink";
  let problem = Problem.create ~direction:Problem.Maximize () in
  let events : (Graph.vertex, event list ref) Hashtbl.t = Hashtbl.create 64 in
  let push v e =
    match Hashtbl.find_opt events v with
    | Some l -> l := e :: !l
    | None -> Hashtbl.add events v (ref [ e ])
  in
  let n_vars = ref 0 in
  let fixed_into_sink = ref 0.0 in
  let objective_vars = ref [] in
  let var_interactions = ref [] in
  let fixed_interactions = ref [] in
  iter (fun v u i ->
      let time = Interaction.time i and qty = Interaction.qty i in
      if v = source then begin
            (* Full quantity, no variable. *)
        fixed_interactions := (v, u, i) :: !fixed_interactions;
        if u = sink then fixed_into_sink := !fixed_into_sink +. qty
        else push u { time; qty; var = None; incoming = true }
      end
      else if v = sink then
        (* The sink absorbs; its outgoing interactions carry
           nothing (same convention as the greedy scan and the
           time-expanded network). *)
        ()
      else begin
        let obj = if u = sink then 1.0 else 0.0 in
        let var = Problem.add_var ~lb:0.0 ~ub:qty ~obj problem in
        incr n_vars;
        var_interactions := (var, (v, u, i)) :: !var_interactions;
        if u = sink then objective_vars := (var, 1.0) :: !objective_vars;
        push v { time; qty; var = Some var; incoming = false };
        if u <> sink && u <> source then push u { time; qty; var = Some var; incoming = true }
      end);
  (* Buffer constraints, one per distinct sending timestamp per vertex.
     Scanning events in time order with incoming-before-outgoing at
     equal... no: outgoing at τ may NOT use arrivals at τ, so at each
     distinct outgoing timestamp τ we bound cumulative outgoing (≤ τ)
     by cumulative incoming (< τ). *)
  let n_rows = ref 0 in
  Hashtbl.iter
    (fun v evs ->
      if v <> source && v <> sink then begin
        let evs = Array.of_list !evs in
        Array.sort (fun a b -> Float.compare a.time b.time) evs;
        let n = Array.length evs in
        (* One forward pass over the sorted events, one timestamp group
           at a time, accumulating incoming terms (variables and
           constants) seen strictly before the current group. *)
        let in_vars = ref [] (* (coef, var) of incoming, accumulated *) in
        let in_fixed = ref 0.0 in
        let out_vars = ref [] in
        let i = ref 0 in
        while !i < n do
          let tau = evs.(!i).time in
          let stop = ref !i in
          while !stop < n && Float.equal evs.(!stop).time tau do
            incr stop
          done;
          (* Outgoing events of this group join the cumulative outgoing
             side before the constraint is emitted (cumulative ≤ τ). *)
          let has_out = ref false in
          for k = !i to !stop - 1 do
            let e = evs.(k) in
            if not e.incoming then begin
              (match e.var with
              | Some x -> out_vars := (1.0, x) :: !out_vars
              | None -> assert false (* outgoing of v ≠ source always has a var *));
              has_out := true
            end
          done;
          if !has_out && !in_fixed < infinity then begin
            (* Σ out(≤τ) − Σ in(<τ) ≤ fixed_in(<τ) *)
            let terms =
              List.rev_append !out_vars (List.map (fun (c, x) -> (-.c, x)) !in_vars)
            in
            Problem.add_le problem terms !in_fixed;
            incr n_rows
          end;
          (* Incoming arrivals at τ become available after τ. *)
          for k = !i to !stop - 1 do
            let e = evs.(k) in
            if e.incoming then
              match e.var with
              | Some x -> in_vars := (1.0, x) :: !in_vars
              | None -> in_fixed := !in_fixed +. e.qty
          done;
          i := !stop
        done
      end)
    events;
  {
    problem;
    n_vars = !n_vars;
    n_rows = !n_rows;
    fixed_into_sink = !fixed_into_sink;
    objective_vars = !objective_vars;
    var_interactions = !var_interactions;
    fixed_interactions = !fixed_interactions;
  }

let build g ~source ~sink =
  build_iter ~iter:(fun f -> Graph.iter_edges (fun v u is -> List.iter (f v u) is) g) ~source ~sink

let build_compact c ~source ~sink =
  build_iter ~iter:(fun f -> Compact.iter_grouped c f) ~source ~sink

let assignments lp value =
  List.rev_append
    (List.rev_map
       (fun (var, (src, dst, interaction)) -> { src; dst; interaction; amount = value var })
       lp.var_interactions)
    (List.rev_map
       (fun (src, dst, interaction) ->
         { src; dst; interaction; amount = Interaction.qty interaction })
       lp.fixed_interactions)

let solve_lp ?solver ?eps ?max_iters lp =
  if lp.n_vars = 0 then Ok (lp.fixed_into_sink, assignments lp (fun _ -> 0.0))
  else
    let sol = Problem.solve ?solver ?eps ?max_iters lp.problem in
    match sol.Problem.status with
    | `Optimal ->
        Ok (sol.Problem.objective +. lp.fixed_into_sink, assignments lp sol.Problem.value)
    | `Unbounded -> Error `Unbounded
    | `Infeasible -> Error `Infeasible
    | `Iteration_limit -> Error `Iteration_limit

let solve_detailed ?solver ?eps ?max_iters g ~source ~sink =
  solve_lp ?solver ?eps ?max_iters (build g ~source ~sink)

let solve ?solver ?eps ?max_iters g ~source ~sink =
  Result.map fst (solve_detailed ?solver ?eps ?max_iters g ~source ~sink)

let solve_detailed_compact ?solver ?eps ?max_iters c ~source ~sink =
  solve_lp ?solver ?eps ?max_iters (build_compact c ~source ~sink)

let solve_compact ?solver ?eps ?max_iters c ~source ~sink =
  Result.map fst (solve_detailed_compact ?solver ?eps ?max_iters c ~source ~sink)

let n_variables g ~source =
  Graph.fold_edges
    (fun v _ is acc -> if v = source then acc else acc + List.length is)
    g 0
