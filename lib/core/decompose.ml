module TE = Tin_maxflow.Time_expand
module Net = Tin_maxflow.Net
module Dinic = Tin_maxflow.Dinic

type leg = { src : Graph.vertex; dst : Graph.vertex; time : float; offered : float }
type path = { legs : leg list; amount : float }

let eps = Tin_util.Fcmp.(default_policy.pivot_eps)

let max_flow_paths g ~source ~sink =
  let te = TE.build g ~source ~sink in
  let net = te.TE.net in
  let value = Dinic.max_flow net ~source:te.TE.source_node ~sink:te.TE.sink_node in
  (* Remaining (not yet peeled) flow per forward arc, and the
     interaction each arc realises (holdover arcs map to None). *)
  let remaining = Hashtbl.create 256 in
  let info = Hashtbl.create 256 in
  List.iter (fun (a, i) -> Hashtbl.replace info a i) te.TE.interaction_arcs;
  let n_arcs = Net.n_arcs net in
  for k = 0 to n_arcs - 1 do
    let a = 2 * k in
    let f = Net.flow net a in
    if f > eps then Hashtbl.replace remaining a f
  done;
  (* Positive-flow adjacency: node -> arcs with remaining flow. *)
  let adj = Hashtbl.create 256 in
  Hashtbl.iter
    (fun a _ ->
      let from_node = Net.dst net (Net.twin a) in
      let existing = match Hashtbl.find_opt adj from_node with Some l -> l | None -> [] in
      Hashtbl.replace adj from_node (a :: existing))
    remaining;
  let pick_arc node =
    let rec first = function
      | [] -> None
      | a :: rest -> (
          match Hashtbl.find_opt remaining a with
          | Some f when f > eps -> Some (a, f)
          | _ -> first rest)
    in
    first (match Hashtbl.find_opt adj node with Some l -> l | None -> [])
  in
  (* Walk S -> T along positive arcs (the expanded graph is a DAG, so
     any greedy walk reaches T while S still has outgoing flow). *)
  let rec walk node acc bottleneck =
    if node = te.TE.sink_node then Some (List.rev acc, bottleneck)
    else
      match pick_arc node with
      | None -> None (* numerical crumbs: abandon this walk *)
      | Some (a, f) -> walk (Net.dst net a) (a :: acc) (Float.min bottleneck f)
  in
  let paths = ref [] in
  let continue = ref true in
  while !continue do
    match walk te.TE.source_node [] infinity with
    | None -> continue := false
    | Some (arcs, bottleneck) when bottleneck > eps ->
        List.iter
          (fun a ->
            let f = Hashtbl.find remaining a in
            let f' = f -. bottleneck in
            if f' > eps then Hashtbl.replace remaining a f' else Hashtbl.remove remaining a)
          arcs;
        let legs =
          List.filter_map
            (fun a ->
              match Hashtbl.find_opt info a with
              | Some (src, dst, i) ->
                  Some { src; dst; time = Interaction.time i; offered = Interaction.qty i }
              | None -> None (* holdover arc: waiting, not a transfer *))
            arcs
        in
        paths := { legs; amount = bottleneck } :: !paths
    | Some _ -> continue := false
  done;
  (value, List.rev !paths)

let per_interaction paths =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun p ->
      List.iter
        (fun leg ->
          let key = (leg.src, leg.dst, leg.time) in
          let prev = Option.value ~default:0.0 (Hashtbl.find_opt tbl key) in
          Hashtbl.replace tbl key (prev +. p.amount))
        p.legs)
    paths;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare
