module TE = Tin_maxflow.Time_expand
module Net = Tin_maxflow.Net
module Dinic = Tin_maxflow.Dinic

type leg = {
  src : Graph.vertex;
  dst : Graph.vertex;
  time : float;
  offered : float;
  inter : int;
}

type path = { legs : leg list; amount : float }

type usage = {
  u_inter : int;
  u_src : Graph.vertex;
  u_dst : Graph.vertex;
  u_time : float;
  u_offered : float;
  u_carried : float;
}

let eps = Tin_util.Fcmp.(default_policy.pivot_eps)

(* Interactions are numbered in the global scan order — sort the
   expanded network's interaction arcs with the same comparator as
   [Graph.interactions_sorted] (and the [Compact] table): time, then
   quantity, then src, then dst.  Fully identical interactions compare
   equal; their ids are interchangeable because every observable field
   coincides. *)
let number_interactions interaction_arcs =
  let a = Array.of_list interaction_arcs in
  Array.sort
    (fun (_, (s1, d1, i1)) (_, (s2, d2, i2)) ->
      match Interaction.compare i1 i2 with
      | 0 -> ( match Int.compare s1 s2 with 0 -> Int.compare d1 d2 | c -> c)
      | c -> c)
    a;
  let info = Hashtbl.create 256 in
  Array.iteri (fun k (arc, (src, dst, i)) -> Hashtbl.replace info arc (k, src, dst, i)) a;
  info

let max_flow_paths g ~source ~sink =
  let te = TE.build g ~source ~sink in
  let net = te.TE.net in
  let value = Dinic.max_flow net ~source:te.TE.source_node ~sink:te.TE.sink_node in
  (* Remaining (not yet peeled) flow per forward arc, and the
     interaction each arc realises (holdover arcs map to None). *)
  let remaining = Hashtbl.create 256 in
  let info = number_interactions te.TE.interaction_arcs in
  let n_arcs = Net.n_arcs net in
  for k = 0 to n_arcs - 1 do
    let a = 2 * k in
    let f = Net.flow net a in
    if f > eps then Hashtbl.replace remaining a f
  done;
  (* Positive-flow adjacency: node -> arcs with remaining flow. *)
  let adj = Hashtbl.create 256 in
  Hashtbl.iter
    (fun a _ ->
      let from_node = Net.dst net (Net.twin a) in
      let existing = match Hashtbl.find_opt adj from_node with Some l -> l | None -> [] in
      Hashtbl.replace adj from_node (a :: existing))
    remaining;
  let pick_arc node =
    let rec first = function
      | [] -> None
      | a :: rest -> (
          match Hashtbl.find_opt remaining a with
          | Some f when f > eps -> Some (a, f)
          | _ -> first rest)
    in
    first (match Hashtbl.find_opt adj node with Some l -> l | None -> [])
  in
  (* Walk S -> T along positive arcs.  The expanded graph is a DAG, so
     a walk either reaches T or dead-ends at a node whose outgoing
     remaining flow has leaked away (arcs at or below [eps] are dropped
     when [remaining] is built and when peeling decrements them, so a
     node's recorded inflow can exceed its recorded outflow by a few
     eps-sized crumbs). *)
  let rec walk node acc bottleneck =
    if node = te.TE.sink_node then `Complete (List.rev acc, bottleneck)
    else
      match pick_arc node with
      | None -> `Stuck acc (* reversed: head = arc into the dead end *)
      | Some (a, f) -> walk (Net.dst net a) (a :: acc) (Float.min bottleneck f)
  in
  let paths = ref [] in
  let continue = ref true in
  while !continue do
    match walk te.TE.source_node [] infinity with
    | `Stuck [] -> continue := false (* source exhausted: decomposition done *)
    | `Stuck (last :: _) ->
        (* A dead end strands the crumbs carried by the arc leading into
           it: no later walk can extend past that node either (remaining
           flow only decreases), so discard the arc and keep peeling the
           other paths.  Stopping the whole loop here — the old
           behaviour — abandoned arbitrarily large flow still waiting on
           sibling branches. *)
        Hashtbl.remove remaining last;
        continue := true
    | `Complete (arcs, bottleneck) when bottleneck > eps ->
        List.iter
          (fun a ->
            let f = Hashtbl.find remaining a in
            let f' = f -. bottleneck in
            if f' > eps then Hashtbl.replace remaining a f' else Hashtbl.remove remaining a)
          arcs;
        let legs =
          List.filter_map
            (fun a ->
              match Hashtbl.find_opt info a with
              | Some (inter, src, dst, i) ->
                  Some
                    { src; dst; time = Interaction.time i; offered = Interaction.qty i; inter }
              | None -> None (* holdover arc: waiting, not a transfer *))
            arcs
        in
        paths := { legs; amount = bottleneck } :: !paths
    | `Complete (arcs, _) ->
        (* Unreachable today ([pick_arc] only returns arcs above [eps],
           so a complete walk's bottleneck exceeds [eps]), but kept as a
           progress guarantee: drop the bottleneck-sized arcs instead of
           aborting the loop. *)
        List.iter
          (fun a ->
            match Hashtbl.find_opt remaining a with
            | Some f when f <= eps -> Hashtbl.remove remaining a
            | _ -> ())
          arcs
  done;
  (value, List.rev !paths)

let per_interaction paths =
  let tbl : (int, usage) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun p ->
      List.iter
        (fun leg ->
          match Hashtbl.find_opt tbl leg.inter with
          | Some u -> Hashtbl.replace tbl leg.inter { u with u_carried = u.u_carried +. p.amount }
          | None ->
              Hashtbl.replace tbl leg.inter
                {
                  u_inter = leg.inter;
                  u_src = leg.src;
                  u_dst = leg.dst;
                  u_time = leg.time;
                  u_offered = leg.offered;
                  u_carried = p.amount;
                })
        p.legs)
    paths;
  Hashtbl.fold (fun _ u acc -> u :: acc) tbl []
  |> List.sort (fun a b -> Int.compare a.u_inter b.u_inter)
