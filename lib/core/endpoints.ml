type endpoints = { graph : Graph.t; source : Graph.vertex; sink : Graph.vertex }

let fresh_id g =
  match Graph.vertices g with [] -> 0 | vs -> List.fold_left max min_int vs + 1

let add_synthetic g =
  if Graph.n_vertices g = 0 then invalid_arg "Endpoints.add_synthetic: empty graph";
  let sources = Graph.sources g and sinks = Graph.sinks g in
  if sources = [] then invalid_arg "Endpoints.add_synthetic: no source vertex (all on cycles)";
  if sinks = [] then invalid_arg "Endpoints.add_synthetic: no sink vertex (all on cycles)";
  let g, source =
    match sources with
    | [ s ] -> (g, s)
    | _ ->
        let s = fresh_id g in
        ( List.fold_left
            (fun g v ->
              Graph.add_edge g ~src:s ~dst:v
                [ Interaction.unchecked ~time:neg_infinity ~qty:infinity ])
            g sources,
          s )
  in
  let g, sink =
    match sinks with
    | [ t ] -> (g, t)
    | _ ->
        let t = fresh_id g in
        ( List.fold_left
            (fun g v ->
              Graph.add_edge g ~src:v ~dst:t [ Interaction.unchecked ~time:infinity ~qty:infinity ])
            g sinks,
          t )
  in
  { graph = g; source; sink }

let split g ~vertex =
  if not (Graph.mem_vertex g vertex) then invalid_arg "Endpoints.split: unknown vertex";
  let s = fresh_id g in
  let t = s + 1 in
  let outs = Graph.out_edges g vertex and ins = Graph.in_edges g vertex in
  let g = Graph.remove_vertex g vertex in
  let g = Graph.add_vertex (Graph.add_vertex g s) t in
  let g = List.fold_left (fun g (u, is) -> Graph.add_edge g ~src:s ~dst:u is) g outs in
  let g = List.fold_left (fun g (w, is) -> Graph.add_edge g ~src:w ~dst:t is) g ins in
  { graph = g; source = s; sink = t }
