(** DAG preprocessing (Section 4.2.3, Algorithm 1).

    Removes interactions that provably cannot carry source-to-sink
    flow: an outgoing interaction of vertex [v] whose timestamp
    precedes every incoming interaction of [v] moves nothing, ever.
    Deleting interactions may empty edges; deleting edges may strand
    vertices (no incoming ⇒ nothing to forward; no outgoing ⇒ nothing
    can reach the sink through them), whose removal cascades both
    downstream (handled by the topological sweep) and upstream
    (handled by a recursive clean-up).  A single pass over the vertices
    in topological order suffices; total cost is linear in the number
    of interactions. *)

type result = {
  graph : Graph.t;  (** The reduced DAG. *)
  zero_flow : bool;
      (** The reduction proved the maximum flow is 0 (the source or
          sink was eliminated or disconnected) — no solver needed. *)
  removed_interactions : int;
  removed_edges : int;
  removed_vertices : int;
}

val run : Graph.t -> source:Graph.vertex -> sink:Graph.vertex -> result
(** Preprocesses a DAG.  The input graph is unchanged (persistent
    structure).  @raise Invalid_argument if the graph is cyclic or
    [source = sink]. *)

type result_compact = {
  compact : Compact.t;  (** The reduced network (flat substrate). *)
  zero_flow_c : bool;
  removed_interactions_c : int;
  removed_edges_c : int;
  removed_vertices_c : int;
}

val run_compact : Compact.t -> source:Graph.vertex -> sink:Graph.vertex -> result_compact
(** Flat twin of {!run}: the whole pass works on liveness bitmaps and
    per-edge suffix offsets over the input's columns — no persistent
    surgery — and compiles the survivors into a fresh substrate at the
    end.  Produces the same surviving network and identical statistics
    as {!run} on equivalent inputs ([source]/[sink] are raw labels).
    @raise Invalid_argument if the graph is cyclic or
    [source = sink]. *)
