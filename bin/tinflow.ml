(* tinflow: command-line front end to the library.

   Subcommands:
     flow      compute greedy/maximum flow on a CSV network
     batch     evaluate all extracted subgraph flows across CPU cores
     patterns  enumerate flow patterns on a CSV network
     serve     streaming ingestion daemon (POST /ingest, windowed flow, alerts)
     verify      differential correctness check / fuzzer
     generate    write a synthetic dataset to CSV
     convert     CSV <-> binary snapshot (.tinb)
     bench-check diff benchmark JSON against the committed baseline
     dot         render a CSV network to GraphViz

   Every subcommand that reads a network auto-detects CSV vs .tinb. *)

open Cmdliner
module Pipeline = Tin_core.Pipeline
module Endpoints = Tin_core.Endpoints
module Catalog = Tin_patterns.Catalog
module Table = Tin_util.Table

let setup_logs () =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some Logs.Warning)

(* Network loads report malformed input (CSV or snapshot) as a
   diagnostic and a nonzero exit, never a backtrace. *)

let or_parse_error f =
  match f () with
  | v -> v
  | exception Io.Parse_error e ->
      prerr_endline ("tinflow: " ^ Io.error_to_string e);
      exit 1
  | exception Sys_error msg ->
      prerr_endline ("tinflow: " ^ msg);
      exit 1

(* Auto-detecting: .tinb snapshots and CSV are both accepted everywhere
   a network is read. *)
let load_net file = or_parse_error (fun () -> Io.load file)
let load_graph file = or_parse_error (fun () -> Io.load_graph file)

(* --- structured event log (--log-json) --- *)

(* One JSON object per line on stderr: run lifecycle, per-stage
   progress, library log records, and a counter snapshot on exit.
   Field values are raw JSON fragments; [Event.str]/[Event.num] build
   them, so arbitrary text goes through {!Tin_util.Json.escape}. *)
module Event = struct
  let enabled = ref false
  let str s = "\"" ^ Tin_util.Json.escape s ^ "\""

  let num x =
    if Float.is_finite x then Printf.sprintf "%.17g" x else str (Float.to_string x)

  let emit ?(fields = []) name =
    if !enabled then begin
      (* Correlate log lines with spans: every event carries the ids
         of the innermost open span on this domain, when there is
         one. *)
      let fields =
        match Tin_obs.Obs.Span.current_ids () with
        | Some (trace_id, span_id) ->
            ("trace_id", str trace_id) :: ("span_id", str span_id) :: fields
        | None -> fields
      in
      let b = Buffer.create 128 in
      Printf.bprintf b "{\"event\":%s,\"ts\":%.6f" (str name) (Unix.gettimeofday ());
      List.iter (fun (k, v) -> Printf.bprintf b ",%s:%s" (str k) v) fields;
      Buffer.add_string b "}\n";
      prerr_string (Buffer.contents b);
      flush stderr
    end
end

(* A {!Logs} reporter that forwards every log record as an event line,
   so [--log-json] output stays machine-readable end to end. *)
let json_reporter () =
  let report src level ~over k msgf =
    msgf @@ fun ?header:_ ?tags:_ fmt ->
    Format.kasprintf
      (fun message ->
        Event.emit "log"
          ~fields:
            [
              ("level", Event.str (Logs.level_to_string (Some level)));
              ("src", Event.str (Logs.Src.name src));
              ("message", Event.str message);
            ];
        over ();
        k ())
      fmt
  in
  { Logs.report }

(* --- observability (--metrics / --trace / --log-json, shared by every
       subcommand; --listen on the long-running ones) --- *)

type obs_opts = {
  metrics : bool;
  trace : string option;
  listen : int option;
  log_json : bool;
  flight_dump : string option;
  no_flight : bool;
}

let obs_term =
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "Enable the observability counters (LP iterations/pivots, pipeline stages, pattern \
             tickets, ...) and print a summary table to stderr on exit.")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record spans across all domains and write a Chrome-trace JSON file to $(docv) on \
             exit (loadable in chrome://tracing or Perfetto).")
  in
  let log_json =
    Arg.(
      value & flag
      & info [ "log-json" ]
          ~doc:
            "Emit structured JSON event lines on stderr (run lifecycle, stage progress, log \
             records, counter snapshot) instead of human-formatted logs.")
  in
  let flight_dump =
    Arg.(
      value
      & opt (some string) None
      & info [ "flight-dump" ] ~docv:"PREFIX"
          ~doc:
            "Path prefix for flight-recorder dump files (default tinflow-flight-<pid>).  The \
             always-on flight recorder keeps a bounded ring of recent spans per domain and \
             writes $(docv)-<reason>.json as a Chrome trace on SIGUSR2, on a daemon 5xx \
             response, and on crash.")
  in
  let no_flight =
    Arg.(
      value & flag
      & info [ "no-flight" ]
          ~doc:
            "Disarm the flight recorder: no span ring is maintained and no post-mortem dumps \
             are written.")
  in
  Term.(
    const (fun metrics trace log_json flight_dump no_flight ->
        { metrics; trace; listen = None; log_json; flight_dump; no_flight })
    $ metrics $ trace $ log_json $ flight_dump $ no_flight)

(* The long-running subcommands additionally take [--listen]. *)
let obs_serve_term =
  let listen =
    Arg.(
      value
      & opt (some int) None
      & info [ "listen" ] ~docv:"PORT"
          ~doc:
            "Serve Prometheus text exposition on http://0.0.0.0:$(docv)/metrics while the \
             command runs (plus /metrics.json and /healthz).  Implies the counters and starts \
             the runtime/GC sampler.  PORT 0 picks a free port, announced on stderr.")
  in
  Term.(const (fun o listen -> { o with listen }) $ obs_term $ listen)

let counters_json () =
  let b = Buffer.create 128 in
  Buffer.add_char b '{';
  List.iteri
    (fun i (n, v) ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "%s:%d" (Event.str n) v)
    (Tin_obs.Obs.counters ());
  Buffer.add_char b '}';
  Buffer.contents b

let with_obs ~cmd o run =
  let module Obs = Tin_obs.Obs in
  if o.log_json then begin
    Event.enabled := true;
    Logs.set_reporter (json_reporter ())
  end;
  (* Flight recorder: armed by default, independent of --metrics /
     --trace — the post-mortem black box.  SIGUSR2 dumps it on demand
     (the handler runs as regular OCaml code between allocations, so
     writing a file from it is safe); a crash below dumps it too. *)
  if o.no_flight then Obs.Flight.disarm ();
  Option.iter Obs.Flight.set_dump_prefix o.flight_dump;
  if Obs.Flight.armed () then begin
    match
      Sys.set_signal Sys.sigusr2
        (Sys.Signal_handle
           (fun _ ->
             let path = Obs.Flight.dump ~reason:"sigusr2" () in
             Printf.eprintf "tinflow: flight recorder dumped to %s\n%!" path;
             Event.emit "flight.dump"
               ~fields:[ ("path", Event.str path); ("reason", Event.str "sigusr2") ]))
    with
    | () -> ()
    | exception (Invalid_argument _ | Sys_error _) -> (* no SIGUSR2 on this platform *) ()
  end;
  (* Every subcommand runs under a root request span, so anything the
     run records (batch chunks, LP solves, catalog searches) stitches
     into one per-invocation trace tree. *)
  let run () = Obs.Span.with_root ("tinflow." ^ cmd) run in
  let crash_dump () =
    if Obs.Flight.armed () then
      match Obs.Flight.dump ~reason:"crash" () with
      | path -> Printf.eprintf "tinflow: flight recorder dumped to %s\n%!" path
      | exception _ -> ()
  in
  let server =
    match o.listen with
    | None -> None
    | Some port ->
        Obs.enable ();
        Obs.Runtime.start ~period_ms:500 ();
        let s = Tin_obs.Serve.start ~port () in
        Printf.eprintf "tinflow: serving /metrics, /metrics.json and /healthz on port %d\n%!"
          (Tin_obs.Serve.port s);
        Event.emit "listen.start" ~fields:[ ("port", string_of_int (Tin_obs.Serve.port s)) ];
        Some s
  in
  if o.metrics || o.trace <> None then Obs.enable ();
  let active = o.metrics || o.trace <> None || server <> None in
  if not (active || o.log_json) then (
    try run ()
    with e ->
      crash_dump ();
      raise e)
  else begin
    let t0 = Tin_util.Timer.now_ns () in
    Event.emit "run.start"
      ~fields:[ ("argv", Event.str (String.concat " " (Array.to_list Sys.argv))) ];
    let finish outcome =
      Option.iter Tin_obs.Serve.stop server;
      if Obs.Runtime.running () then Obs.Runtime.stop ();
      if active && o.log_json then
        Event.emit "metrics.snapshot" ~fields:[ ("counters", counters_json ()) ];
      Obs.disable ();
      Option.iter
        (fun path ->
          Obs.write_chrome_trace path;
          Printf.eprintf "tinflow: trace written to %s\n%!" path)
        o.trace;
      if o.metrics then Obs.print_summary stderr;
      let elapsed =
        Int64.to_float (Int64.sub (Tin_util.Timer.now_ns ()) t0) /. 1e9
      in
      Event.emit "run.end"
        ~fields:
          (("elapsed_secs", Event.num elapsed)
          ::
          (match outcome with
          | Ok code -> [ ("exit_code", string_of_int code) ]
          | Error exn -> [ ("error", Event.str (Printexc.to_string exn)) ]))
    in
    match run () with
    | code ->
        finish (Ok code);
        code
    | exception e ->
        crash_dump ();
        finish (Error e);
        raise e
  end

(* --- flow --- *)

let method_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "greedy" -> Ok Pipeline.Greedy
    | "lp" -> Ok Pipeline.Lp
    | "pre" -> Ok Pipeline.Pre
    | "presim" -> Ok Pipeline.Pre_sim
    | "timeexp" | "time-expanded" -> Ok Pipeline.Time_expanded
    | _ -> Error (`Msg "expected greedy | lp | pre | presim | timeexp")
  in
  Arg.conv (parse, fun ppf m -> Fmt.string ppf (Pipeline.method_name m))

let solver_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "auto" -> Ok `Auto
    | "dense" -> Ok `Dense
    | "bounded" -> Ok `Bounded
    | "sparse" -> Ok `Sparse
    | _ -> Error (`Msg "expected auto | dense | bounded | sparse")
  in
  let print ppf (s : Tin_lp.Problem.solver) =
    Fmt.string ppf
      (match s with `Auto -> "auto" | `Dense -> "dense" | `Bounded -> "bounded" | `Sparse -> "sparse")
  in
  Arg.conv (parse, print)

let solver_arg =
  Arg.(
    value
    & opt solver_conv `Auto
    & info [ "solver" ] ~docv:"SOLVER"
        ~doc:
          "LP solver for the simplex stages: auto | dense | bounded | sparse (default auto: \
           picks the sparse revised simplex on large sparse instances).")

let file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"NETWORK"
        ~doc:
          "Interaction network: CSV (src,dst,time,qty lines) or binary snapshot (.tinb, see \
           $(b,tinflow convert)); the format is auto-detected from the file contents.")

let flow_cmd =
  let source =
    Arg.(value & opt (some int) None & info [ "source"; "s" ] ~docv:"VERTEX" ~doc:"Source vertex (default: synthetic super-source over all sources).")
  in
  let sink =
    Arg.(value & opt (some int) None & info [ "sink"; "t" ] ~docv:"VERTEX" ~doc:"Sink vertex (default: synthetic super-sink over all sinks).")
  in
  let split =
    Arg.(value & opt (some int) None & info [ "split" ] ~docv:"VERTEX" ~doc:"Measure flow from VERTEX back to itself (splits it into a source/sink pair).")
  in
  let meth =
    Arg.(value & opt (some method_conv) None & info [ "method"; "m" ] ~docv:"METHOD" ~doc:"greedy | lp | pre | presim | timeexp (default: report greedy and presim).")
  in
  let run file source sink split meth solver obs =
    setup_logs ();
    with_obs ~cmd:"flow" obs @@ fun () ->
    let g = load_graph file in
    match
      match split with
      | Some v ->
          let ep = Endpoints.split g ~vertex:v in
          Ok (ep.Endpoints.graph, ep.Endpoints.source, ep.Endpoints.sink)
      | None -> (
          match (source, sink) with
          | Some s, Some t -> Ok (g, s, t)
          | _ -> (
              try
                let ep = Endpoints.add_synthetic g in
                let s = Option.value ~default:ep.Endpoints.source source in
                let t = Option.value ~default:ep.Endpoints.sink sink in
                Ok (ep.Endpoints.graph, s, t)
              with Invalid_argument msg ->
                Error
                  (Printf.sprintf
                     "%s\nhint: pass explicit --source/--sink vertices, or --split VERTEX to \
                      measure a round trip" msg)))
    with
    | Error msg ->
        prerr_endline ("tinflow: " ^ msg);
        1
    | Ok (g, source, sink) ->
    (match meth with
    | Some m ->
        Printf.printf "%s flow: %g\n" (Pipeline.method_name m)
          (Pipeline.compute ~solver m g ~source ~sink)
    | None ->
        let r = Pipeline.report ~solver g ~source ~sink in
        Printf.printf "greedy flow:  %g\n" (Pipeline.compute Pipeline.Greedy g ~source ~sink);
        Printf.printf "maximum flow: %g\n" r.Pipeline.value;
        Printf.printf "difficulty:   %s (LP variables %d -> %d)\n"
          (Pipeline.cls_name r.Pipeline.cls)
          r.Pipeline.lp_vars_before r.Pipeline.lp_vars_after);
        0
  in
  Cmd.v
    (Cmd.info "flow" ~doc:"Compute source-to-sink flow in an interaction network")
    Term.(const run $ file_arg $ source $ sink $ split $ meth $ solver_arg $ obs_term)

(* --- batch --- *)

let batch_cmd =
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:"Number of domains (cores) to use (default: all recommended).")
  in
  let meth =
    Arg.(
      value
      & opt method_conv Pipeline.Pre_sim
      & info [ "method"; "m" ] ~docv:"METHOD" ~doc:"Flow method per subgraph (default presim).")
  in
  let max_interactions =
    Arg.(
      value
      & opt int 1000
      & info [ "max-interactions" ] ~docv:"N" ~doc:"Discard subgraphs above N interactions.")
  in
  let max_subgraphs =
    Arg.(value & opt int max_int & info [ "max-subgraphs" ] ~docv:"N" ~doc:"Stop after N subgraphs.")
  in
  let run file jobs meth solver max_interactions max_subgraphs obs =
    setup_logs ();
    with_obs ~cmd:"batch" obs @@ fun () ->
    if (match jobs with Some j -> j < 1 | None -> false) then begin
      prerr_endline "tinflow: --jobs must be positive";
      exit 2
    end;
    let net = load_net file in
    let problems =
      Tin_datasets.Extract.extract ~max_interactions ~max_subgraphs net
      |> List.map (fun (p : Tin_datasets.Extract.problem) ->
             { Tin_core.Batch.graph = p.Tin_datasets.Extract.graph;
               source = p.Tin_datasets.Extract.source;
               sink = p.Tin_datasets.Extract.sink })
    in
    if problems = [] then begin
      prerr_endline "tinflow: no cycle subgraphs found (nothing to batch)";
      1
    end
    else begin
      let jobs = Option.value jobs ~default:(Tin_core.Batch.recommended_jobs ()) in
      Event.emit "batch.start"
        ~fields:
          [
            ("file", Event.str file);
            ("subgraphs", string_of_int (List.length problems));
            ("jobs", string_of_int jobs);
          ];
      let values, secs =
        Tin_util.Timer.time_f (fun () ->
            Tin_core.Batch.max_flows ~jobs ~solver ~method_:meth problems)
      in
      let total = List.fold_left ( +. ) 0.0 values in
      Event.emit "batch.done"
        ~fields:
          [
            ("subgraphs", string_of_int (List.length values));
            ("total_flow", Event.num total);
            ("elapsed_secs", Event.num secs);
          ];
      Printf.printf "subgraphs:  %d\n" (List.length values);
      Printf.printf "total flow: %g\n" total;
      Printf.printf "elapsed:    %.3fs on %d domain(s) (%.1f subgraphs/s)\n" secs jobs
        (float_of_int (List.length values) /. Float.max secs 1e-9);
      0
    end
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:"Compute the flow of every extracted cycle subgraph, in parallel across cores")
    Term.(
      const run $ file_arg $ jobs $ meth $ solver_arg $ max_interactions $ max_subgraphs
      $ obs_serve_term)

(* --- paths (flow decomposition) --- *)

let paths_cmd =
  let source = Arg.(required & opt (some int) None & info [ "source"; "s" ] ~docv:"VERTEX" ~doc:"Source vertex.") in
  let sink = Arg.(required & opt (some int) None & info [ "sink"; "t" ] ~docv:"VERTEX" ~doc:"Sink vertex.") in
  let top = Arg.(value & opt int 10 & info [ "top" ] ~docv:"N" ~doc:"Show the N heaviest routes.") in
  let run file source sink top obs =
    setup_logs ();
    with_obs ~cmd:"paths" obs @@ fun () ->
    let g = load_graph file in
    let value, routes = Tin_core.Decompose.max_flow_paths g ~source ~sink in
    Printf.printf "maximum flow: %g across %d temporal routes\n" value (List.length routes);
    List.sort
      (fun a b -> Float.compare b.Tin_core.Decompose.amount a.Tin_core.Decompose.amount)
      routes
    |> List.filteri (fun i _ -> i < top)
    |> List.iter (fun r ->
           let hops =
             List.map
               (fun leg ->
                 Printf.sprintf "%d->%d@%g" leg.Tin_core.Decompose.src
                   leg.Tin_core.Decompose.dst leg.Tin_core.Decompose.time)
               r.Tin_core.Decompose.legs
           in
           Printf.printf "  %-12g %s\n" r.Tin_core.Decompose.amount (String.concat "  " hops));
    0
  in
  Cmd.v
    (Cmd.info "paths" ~doc:"Decompose the maximum flow into temporal source-to-sink routes")
    Term.(const run $ file_arg $ source $ sink $ top $ obs_term)

(* --- provenance (origin attribution) --- *)

let provenance_cmd =
  let module Prov = Tin_core.Provenance in
  let sink = Arg.(required & opt (some int) None & info [ "sink"; "t" ] ~docv:"VERTEX" ~doc:"The vertex under investigation: report where its buffered quantity came from.") in
  let source = Arg.(value & opt (some int) None & info [ "source"; "s" ] ~docv:"VERTEX" ~doc:"Optional source vertex: restrict attribution to quantity rooted at this vertex (mirrors the greedy flow exactly; default is open-world, every interaction can originate mass).") in
  let policy =
    let policy_conv =
      Arg.conv
        ( (fun s ->
            match Prov.policy_of_string s with
            | Some p -> Ok p
            | None -> Error (`Msg (Printf.sprintf "unknown policy %S (expected lrb, mrb or prop)" s))),
          fun ppf p -> Format.pp_print_string ppf (Prov.policy_name p) )
    in
    Arg.(value & opt policy_conv Prov.Proportional & info [ "policy" ] ~docv:"POLICY" ~doc:"Selection policy: $(b,lrb) (least recently born moves first), $(b,mrb) (most recently born first) or $(b,prop) (proportional, order-insensitive; default).")
  in
  let top = Arg.(value & opt int 10 & info [ "top" ] ~docv:"N" ~doc:"Show the N heaviest origins (default 10).") in
  let budget = Arg.(value & opt int Prov.default_budget & info [ "budget" ] ~docv:"N" ~doc:"Per-buffer provenance entry budget; buffers over it spill to coarser origin groups (default 64).") in
  let run file source sink policy top budget obs =
    setup_logs ();
    with_obs ~cmd:"provenance" obs @@ fun () ->
    let g = load_graph file in
    if not (Graph.mem_vertex g sink) then begin
      Printf.eprintf "tinflow provenance: vertex %d is not in the network\n" sink;
      1
    end
    else begin
      let r = Prov.run ~policy ~budget ?source ~absorb:sink g in
      let total = List.assoc sink r.Prov.totals in
      let vec = List.assoc sink r.Prov.vectors in
      Printf.printf "provenance of vertex %d (%s policy%s)\n" sink (Prov.policy_name policy)
        (match source with Some s -> Printf.sprintf ", rooted at %d" s | None -> "");
      Printf.printf "buffered quantity: %g across %d origin group(s)\n" total (List.length vec);
      List.filteri (fun i _ -> i < top) vec
      |> List.iter (fun (o, m) ->
             let share = if total > 0.0 then 100.0 *. m /. total else 0.0 in
             Printf.printf "  %-12g %5.1f%%  %s\n" m share (Prov.describe_origin o));
      if List.length vec > top then
        Printf.printf "  ... and %d more origin group(s)\n" (List.length vec - top);
      Printf.printf "spills: %d, peak entries: %d\n" r.Prov.spills r.Prov.peak_entries;
      0
    end
  in
  Cmd.v
    (Cmd.info "provenance"
       ~doc:"Attribute a vertex's buffered quantity back to the interactions it was born at")
    Term.(const run $ file_arg $ source $ sink $ policy $ top $ budget $ obs_term)

(* --- profile --- *)

let profile_cmd =
  let source = Arg.(required & opt (some int) None & info [ "source"; "s" ] ~docv:"VERTEX" ~doc:"Source vertex.") in
  let sink = Arg.(required & opt (some int) None & info [ "sink"; "t" ] ~docv:"VERTEX" ~doc:"Sink vertex.") in
  let greedy = Arg.(value & flag & info [ "greedy" ] ~doc:"Greedy profile (single scan) instead of per-prefix maximum flows.") in
  let run file source sink greedy obs =
    setup_logs ();
    with_obs ~cmd:"profile" obs @@ fun () ->
    let g = load_graph file in
    let profile =
      if greedy then Tin_core.Window.greedy_profile g ~source ~sink
      else Tin_core.Window.max_flow_profile g ~source ~sink
    in
    Printf.printf "time,cumulative_flow\n";
    List.iter (fun (tau, v) -> Printf.printf "%g,%g\n" tau v) profile;
    0
  in
  Cmd.v
    (Cmd.info "profile" ~doc:"Flow accumulated at the sink as a function of time (CSV output)")
    Term.(const run $ file_arg $ source $ sink $ greedy $ obs_term)

(* --- patterns --- *)

let pattern_conv =
  let all = List.map (fun p -> (String.lowercase_ascii (Catalog.pattern_name p), p)) Catalog.all in
  Arg.enum all

let patterns_cmd =
  let which =
    Arg.(value & opt_all pattern_conv [] & info [ "pattern"; "p" ] ~docv:"P" ~doc:"Pattern to search (p1..p6, rp1..rp3); repeatable.  Default: all applicable.")
  in
  let custom =
    Arg.(value & opt_all string [] & info [ "custom" ] ~docv:"EDGES" ~doc:"Custom pattern, e.g. \"a->b, b->c, c->a'\" (primes mark a repeated label: a and a' must map to the same vertex).  Repeatable; searched by graph browsing.")
  in
  let limit =
    Arg.(value & opt int 100_000 & info [ "limit" ] ~docv:"N" ~doc:"Stop after N instances per pattern.")
  in
  let use_pb =
    Arg.(value & flag & info [ "precompute" ] ~doc:"Use the precomputation-based search (path tables) instead of graph browsing.")
  in
  let hybrid =
    Arg.(value & flag & info [ "hybrid" ] ~doc:"Graph browsing with table-assisted flow lookups: chain/cycle instances read their flow from the precomputed path tables instead of re-solving each match.  Ignored with $(b,--precompute).")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:"Shard the search by anchor vertex across N domains (cores).  Default 1; untruncated results are identical for every N.")
  in
  let time_budget =
    Arg.(
      value
      & opt (some float) None
      & info [ "time-budget-ms" ] ~docv:"MS"
          ~doc:"Wall-clock budget per pattern; searches past it stop early and are marked with '*'.")
  in
  let run file which custom limit use_pb hybrid jobs time_budget obs =
    setup_logs ();
    with_obs ~cmd:"patterns" obs @@ fun () ->
    (match jobs with
    | Some j when j < 1 ->
        prerr_endline "tinflow: --jobs must be positive";
        exit 2
    | _ -> ());
    let jobs = Option.value jobs ~default:1 in
    let net = load_net file in
    let which = if which = [] && custom = [] then Catalog.all else which in
    let tables =
      if use_pb || hybrid then Some (Catalog.precompute ~jobs ~with_chains:true net) else None
    in
    let rows =
      List.map
        (fun p ->
          let r =
            if use_pb then
              Catalog.pb ~jobs ~limit ?time_budget_ms:time_budget net (Option.get tables) p
            else Catalog.gb ~jobs ~limit ?time_budget_ms:time_budget ?tables net p
          in
          Event.emit "patterns.result"
            ~fields:
              [
                ("pattern", Event.str (Catalog.pattern_name p));
                ("instances", string_of_int r.Catalog.instances);
                ("total_flow", Event.num r.Catalog.total_flow);
                ("truncated", string_of_bool r.Catalog.truncated);
              ];
          [
            (Catalog.pattern_name p ^ if r.Catalog.truncated then "*" else "");
            string_of_int r.Catalog.instances;
            Table.fmt_flow (Catalog.avg_flow r);
            Table.fmt_flow r.Catalog.total_flow;
          ])
        which
    in
    let custom_rows =
      List.map
        (fun text ->
          let p = Tin_patterns.Pattern.of_string text in
          let r =
            Catalog.gb_custom ~jobs ~limit ?time_budget_ms:time_budget
              ?tables:(if use_pb then None else tables)
              net p
          in
          [
            (text ^ if r.Catalog.truncated then "*" else "");
            string_of_int r.Catalog.instances;
            Table.fmt_flow (Catalog.avg_flow r);
            Table.fmt_flow r.Catalog.total_flow;
          ])
        custom
    in
    Table.print
      ~title:
        (Printf.sprintf "Pattern instances in %s (%s)" file
           (if use_pb then "PB" else if hybrid then "GB hybrid" else "GB"))
      ~header:[ "Pattern"; "Instances"; "Avg flow"; "Total flow" ]
      (rows @ custom_rows);
    0
  in
  Cmd.v
    (Cmd.info "patterns" ~doc:"Enumerate flow patterns and their maximum flows")
    Term.(
      const run $ file_arg $ which $ custom $ limit $ use_pb $ hybrid $ jobs $ time_budget
      $ obs_serve_term)

(* --- serve --- *)

let serve_cmd =
  let module Daemon = Tin_daemon.Daemon in
  let base =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"NETWORK"
          ~doc:
            "Optional base network seeding the window and the precomputed path tables (CSV or \
             .tinb, auto-detected).  Without it the daemon starts empty.")
  in
  let source =
    Arg.(required & opt (some int) None & info [ "source"; "s" ] ~docv:"VERTEX" ~doc:"Source vertex of the monitored flow.")
  in
  let sink =
    Arg.(required & opt (some int) None & info [ "sink"; "t" ] ~docv:"VERTEX" ~doc:"Sink vertex of the monitored flow.")
  in
  let listen =
    Arg.(
      value & opt int 0
      & info [ "listen" ] ~docv:"PORT"
          ~doc:
            "TCP port for the HTTP endpoint (POST /ingest, GET /status, /metrics, \
             /metrics.json, /healthz).  PORT 0 (the default) picks a free port, announced on \
             stderr.")
  in
  let window =
    Arg.(
      value
      & opt (some float) None
      & info [ "window" ] ~docv:"SECS"
          ~doc:
            "Sliding event-time window: keep interactions within SECS of the newest accepted \
             timestamp (a closed interval); older ones are evicted from the flow computation.  \
             Default: unbounded.")
  in
  let cadence =
    Arg.(
      value & opt int 256
      & info [ "cadence" ] ~docv:"N"
          ~doc:
            "Re-evaluate patterns after every N accepted interactions (delta table \
             maintenance + catalog search).  0 disables ticking.")
  in
  let patterns =
    Arg.(
      value & opt_all pattern_conv []
      & info [ "pattern"; "p" ] ~docv:"P"
          ~doc:
            "Pattern to monitor (p1..p6, rp1..rp3); repeatable.  Alerts are emitted on the \
             --log-json event stream when an evaluation finds instances whose total flow \
             clears --min-flow.")
  in
  let min_flow =
    Arg.(
      value & opt float 0.
      & info [ "min-flow" ] ~docv:"F" ~doc:"Alert threshold on a pattern's total flow (default 0: any positive flow).")
  in
  let limit =
    Arg.(value & opt int 10_000 & info [ "limit" ] ~docv:"N" ~doc:"Instance cap per pattern evaluation.")
  in
  let run base source sink listen window cadence patterns min_flow limit obs =
    setup_logs ();
    with_obs ~cmd:"serve" obs @@ fun () ->
    let base_g = match base with None -> Graph.empty | Some f -> load_graph f in
    let on_alert (a : Daemon.alert) =
      Event.emit "serve.alert"
        ~fields:
          [
            ("pattern", Event.str (Catalog.pattern_name a.Daemon.pattern));
            ("instances", string_of_int a.Daemon.instances);
            ("total_flow", Event.num a.Daemon.total_flow);
            ("tick", string_of_int a.Daemon.tick);
          ]
    in
    let config = Daemon.config ~source ~sink ?window ~cadence ~patterns ~min_flow ~limit () in
    match Daemon.create ~base:base_g ~on_alert config with
    | exception Invalid_argument msg ->
        prerr_endline ("tinflow: " ^ msg);
        2
    | d ->
        Tin_obs.Obs.enable ();
        if not (Tin_obs.Obs.Runtime.running ()) then Tin_obs.Obs.Runtime.start ~period_ms:500 ();
        let s = Tin_obs.Serve.start ~port:listen ~routes:(Daemon.routes d) () in
        Printf.eprintf
          "tinflow: serve: listening on port %d (POST /ingest, GET /status, /metrics)\n%!"
          (Tin_obs.Serve.port s);
        Event.emit "serve.start" ~fields:[ ("port", string_of_int (Tin_obs.Serve.port s)) ];
        let stop = Atomic.make false in
        let on_signal _ = Atomic.set stop true in
        Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
        Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
        while not (Atomic.get stop) do
          (* A signal (SIGUSR2 flight dump, SIGINT/SIGTERM) can land
             mid-sleep as EINTR; re-check the flag and keep idling. *)
          try Unix.sleepf 0.05 with Unix.Unix_error (Unix.EINTR, _, _) -> ()
        done;
        (* Final tick so table state and alerts cover the tail of the
           stream, then report. *)
        ignore (Daemon.tick d);
        let st = Daemon.stats d in
        Tin_obs.Serve.stop s;
        Event.emit "serve.stop"
          ~fields:
            [
              ("accepted_total", string_of_int st.Daemon.accepted_total);
              ("rejected_total", string_of_int st.Daemon.rejected_total);
              ("flow", Event.num st.Daemon.flow);
            ];
        Printf.eprintf "tinflow: serve: %d accepted, %d rejected, windowed flow %g\n%!"
          st.Daemon.accepted_total st.Daemon.rejected_total st.Daemon.flow;
        0
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the streaming ingestion daemon: accept interactions over HTTP (POST /ingest, \
          JSON lines), maintain a sliding window with incremental greedy flow, delta-maintain \
          the pattern tables on a cadence and alert on matching patterns")
    Term.(
      const run $ base $ source $ sink $ listen $ window $ cadence $ patterns $ min_flow
      $ limit $ obs_term)

(* --- verify --- *)

let verify_cmd =
  let module Verify = Tin_verify.Verify in
  let network =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"NETWORK.csv"
          ~doc:"Check this network instead of fuzzing randomized instances.")
  in
  let source = Arg.(value & opt (some int) None & info [ "source"; "s" ] ~docv:"VERTEX" ~doc:"Source vertex (default: synthetic super-source).") in
  let sink = Arg.(value & opt (some int) None & info [ "sink"; "t" ] ~docv:"VERTEX" ~doc:"Sink vertex (default: synthetic super-sink).") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed for the fuzzer.") in
  let cases = Arg.(value & opt int 200 & info [ "cases" ] ~docv:"N" ~doc:"Number of randomized instances to check.") in
  let inject =
    Arg.(
      value
      & opt (some float) None
      & info [ "inject" ] ~docv:"DELTA"
          ~doc:
            "Add a deliberately wrong oracle (time-expanded max flow plus DELTA) to demonstrate \
             that the harness catches and shrinks an injected solver bug.")
  in
  let dump =
    Arg.(
      value
      & opt (some string) None
      & info [ "dump" ] ~docv:"DIR"
          ~doc:"Write each minimized counterexample there as a reloadable CSV (created if absent).")
  in
  let print_outcome (o : Verify.outcome) =
    List.iter (fun (name, v) -> Printf.printf "  %-16s %g\n" name v) o.Verify.values;
    List.iter (fun d -> Format.printf "  %a@." Verify.pp_discrepancy d) o.Verify.discrepancies;
    List.iter
      (fun (oracle, counters) ->
        Printf.printf "  obs %-12s %s\n" oracle
          (String.concat " " (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) counters)))
      o.Verify.obs
  in
  let run network source sink seed cases inject dump obs =
    setup_logs ();
    with_obs ~cmd:"verify" obs @@ fun () ->
    let extra = match inject with None -> [] | Some delta -> [ Verify.perturbed ~delta () ] in
    Option.iter (fun dir -> if not (Sys.file_exists dir) then Sys.mkdir dir 0o755) dump;
    match network with
    | Some file -> (
        let g = load_graph file in
        match
          match (source, sink) with
          | Some s, Some t -> Ok (g, s, t)
          | _ -> (
              try
                let ep = Endpoints.add_synthetic g in
                let s = Option.value ~default:ep.Endpoints.source source in
                let t = Option.value ~default:ep.Endpoints.sink sink in
                Ok (ep.Endpoints.graph, s, t)
              with Invalid_argument msg -> Error msg)
        with
        | Error msg ->
            prerr_endline ("tinflow: " ^ msg);
            1
        | Ok (g, source, sink) ->
            let outcome = Verify.check ~extra g ~source ~sink in
            print_outcome outcome;
            if outcome.Verify.discrepancies = [] then begin
              Printf.printf "ok: all oracles agree\n";
              0
            end
            else begin
              let shrunk = Verify.shrink ~extra g ~source ~sink in
              Option.iter
                (fun dir ->
                  let path = Filename.concat dir "counterexample.csv" in
                  Verify.dump_csv path shrunk ~source ~sink outcome;
                  Printf.printf "minimized counterexample: %s\n" path)
                dump;
              Printf.printf "FAILED: %d discrepancy(ies)\n"
                (List.length outcome.Verify.discrepancies);
              1
            end)
    | None ->
        let report = Verify.fuzz ~extra ?dump_dir:dump ~seed ~cases () in
        List.iter
          (fun (f : Verify.failure) ->
            Printf.printf "case %d (%s%s): %d discrepancy(ies)\n" f.Verify.case_index
              f.Verify.case.Tin_verify.Gen.family
              (match f.Verify.case.Tin_verify.Gen.mutations with
              | [] -> ""
              | ms -> " + " ^ String.concat "," ms)
              (List.length f.Verify.outcome.Verify.discrepancies);
            print_outcome f.Verify.outcome;
            Option.iter (Printf.printf "  minimized counterexample: %s\n") f.Verify.csv)
          report.Verify.failures;
        let n_fail = List.length report.Verify.failures in
        Printf.printf "%d case(s), %d oracle(s) per case: %s\n" report.Verify.cases_run
          (List.length Verify.oracle_names + List.length extra)
          (if n_fail = 0 then "all invariants held" else Printf.sprintf "%d FAILED" n_fail);
        if n_fail = 0 then 0 else 1
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Differentially test every flow oracle (greedy, LP solvers, time-expanded algorithms, \
          accelerated pipeline) against each other on randomized or given networks")
    Term.(const run $ network $ source $ sink $ seed $ cases $ inject $ dump $ obs_serve_term)

(* --- generate --- *)

let generate_cmd =
  let dataset =
    Arg.(value & opt (enum [ ("bitcoin", `Bitcoin); ("ctu13", `Ctu); ("prosper", `Prosper) ]) `Bitcoin
        & info [ "shape" ] ~docv:"SHAPE" ~doc:"bitcoin | ctu13 | prosper")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.") in
  let factor =
    Arg.(value & opt float 0.1 & info [ "factor" ] ~docv:"F" ~doc:"Scale factor on the spec sizes.")
  in
  let out = Arg.(required & pos 0 (some string) None & info [] ~docv:"OUT.csv" ~doc:"Output file.") in
  let run out dataset seed factor obs =
    setup_logs ();
    with_obs ~cmd:"generate" obs @@ fun () ->
    let spec =
      Tin_datasets.Spec.scaled ~factor
        (match dataset with
        | `Bitcoin -> Tin_datasets.Spec.bitcoin
        | `Ctu -> Tin_datasets.Spec.ctu13
        | `Prosper -> Tin_datasets.Spec.prosper)
    in
    let net = Tin_datasets.Generator.generate ~seed spec in
    Io.save_csv out (Static.to_graph net);
    let s = Tin_datasets.Generator.stats net in
    Printf.printf "wrote %s: %d vertices, %d edges, %d interactions\n" out
      s.Tin_datasets.Generator.n_vertices s.Tin_datasets.Generator.n_edges
      s.Tin_datasets.Generator.n_interactions;
    0
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a synthetic interaction network CSV")
    Term.(const run $ out $ dataset $ seed $ factor $ obs_term)

(* --- convert --- *)

let convert_cmd =
  let input =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"IN" ~doc:"Input network (CSV or .tinb snapshot, auto-detected).")
  in
  let output =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"OUT"
          ~doc:
            "Output file; its extension picks the format: $(b,.tinb) writes the checksummed \
             binary snapshot, $(b,.csv) writes text.")
  in
  let run input output obs =
    setup_logs ();
    with_obs ~cmd:"convert" obs @@ fun () ->
    or_parse_error @@ fun () ->
    let c = Io.load_compact input in
    let summary fmt =
      Printf.printf "wrote %s: %d vertices, %d edges, %d interactions%s\n" output
        (Compact.n_vertices c) (Compact.n_edges c) (Compact.n_interactions c) fmt
    in
    match String.lowercase_ascii (Filename.extension output) with
    | ".tinb" ->
        Snapshot.save output c;
        summary (Printf.sprintf " (snapshot v%d)" Snapshot.version);
        0
    | ".csv" -> (
        match Compact.to_graph c with
        | g ->
            Io.save_csv output g;
            summary "";
            0
        | exception Invalid_argument _ ->
            prerr_endline
              "tinflow: cannot write CSV: the snapshot contains self-loop interactions";
            1)
    | ext ->
        Printf.eprintf "tinflow: unknown output format %S (expected .tinb or .csv)\n" ext;
        2
  in
  Cmd.v
    (Cmd.info "convert"
       ~doc:
         "Convert an interaction network between CSV and the versioned binary snapshot format \
          (.tinb): one sorted load, then a checksummed dump that reloads without re-parsing or \
          re-sorting")
    Term.(const run $ input $ output $ obs_term)

(* --- bench-check --- *)

let bench_check_cmd =
  let module Json = Tin_util.Json in
  let module Regress = Tin_util.Regress in
  let files =
    Arg.(
      value
      & pos_all string
          [ "BENCH_flow.json"; "BENCH_pattern.json"; "BENCH_ingest.json"; "BENCH_provenance.json" ]
      & info [] ~docv:"BENCH.json"
          ~doc:
            "Benchmark documents to check (default: BENCH_flow.json BENCH_pattern.json \
             BENCH_ingest.json BENCH_provenance.json in the current directory).")
  in
  let baseline =
    Arg.(
      value
      & opt string "bench/baseline"
      & info [ "baseline" ] ~docv:"DIR"
          ~doc:"Directory holding the committed baseline documents (matched by file name).")
  in
  let tolerance =
    Arg.(
      value
      & opt float 15.0
      & info [ "tolerance" ] ~docv:"PCT"
          ~doc:"Relative noise tolerance in percent (default 15).")
  in
  let update =
    Arg.(
      value & flag
      & info [ "update-baseline" ]
          ~doc:"Copy the given documents into the baseline directory instead of checking.")
  in
  let read_file path =
    try Ok (In_channel.with_open_bin path In_channel.input_all)
    with Sys_error msg -> Error msg
  in
  let run files baseline tolerance update obs =
    setup_logs ();
    with_obs ~cmd:"bench-check" obs @@ fun () ->
    if tolerance < 0.0 || Float.is_nan tolerance then begin
      prerr_endline "tinflow: --tolerance must be non-negative";
      exit 2
    end;
    if update then begin
      if not (Sys.file_exists baseline) then Sys.mkdir baseline 0o755;
      let code = ref 0 in
      List.iter
        (fun f ->
          match read_file f with
          | Error msg ->
              prerr_endline ("tinflow: " ^ msg);
              code := 2
          | Ok contents -> (
              (* Parse before committing: a baseline that bench-check
                 itself cannot read is worse than none. *)
              match Json.parse contents with
              | Error msg ->
                  Printf.eprintf "tinflow: %s: %s\n" f msg;
                  code := 2
              | Ok _ ->
                  let dst = Filename.concat baseline (Filename.basename f) in
                  Out_channel.with_open_bin dst (fun oc ->
                      Out_channel.output_string oc contents);
                  Printf.printf "baseline updated: %s -> %s\n" f dst))
        files;
      !code
    end
    else begin
      let failures = ref 0 and missing = ref 0 in
      List.iter
        (fun f ->
          let base_path = Filename.concat baseline (Filename.basename f) in
          if not (Sys.file_exists base_path) then begin
            Printf.printf "%s: no baseline at %s (run with --update-baseline to create it)\n" f
              base_path;
            incr missing
          end
          else
            match (read_file base_path, read_file f) with
            | Error msg, _ | _, Error msg ->
                prerr_endline ("tinflow: " ^ msg);
                exit 2
            | Ok base_raw, Ok cur_raw -> (
                match (Json.parse base_raw, Json.parse cur_raw) with
                | Error msg, _ ->
                    Printf.eprintf "tinflow: %s: %s\n" base_path msg;
                    exit 2
                | _, Error msg ->
                    Printf.eprintf "tinflow: %s: %s\n" f msg;
                    exit 2
                | Ok base_doc, Ok cur_doc ->
                    let rows =
                      Regress.compare_docs ~tolerance_pct:tolerance ~baseline:base_doc
                        ~current:cur_doc ()
                    in
                    print_string
                      (Regress.render_table
                         ~title:
                           (Printf.sprintf "%s vs %s (tolerance %g%%)" f base_path tolerance)
                         rows);
                    let regressed = Regress.regressed rows in
                    failures := !failures + List.length regressed;
                    Event.emit "bench_check.result"
                      ~fields:
                        [
                          ("file", Event.str f);
                          ("metrics", string_of_int (List.length rows));
                          ("regressed", string_of_int (List.length regressed));
                        ]))
        files;
      if !failures > 0 then begin
        Printf.eprintf "tinflow: bench-check: %d metric(s) regressed beyond tolerance\n"
          !failures;
        1
      end
      else begin
        if !missing = 0 then print_endline "bench-check: ok";
        0
      end
    end
  in
  Cmd.v
    (Cmd.info "bench-check"
       ~doc:
         "Compare fresh benchmark JSON documents against the committed baseline and fail on \
          regressions beyond a noise tolerance")
    Term.(const run $ files $ baseline $ tolerance $ update $ obs_term)

(* --- obs report --- *)

let obs_report_cmd =
  let trace_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"TRACE"
          ~doc:"Exported trace to analyze: a --trace file or a flight-recorder dump.")
  in
  let top =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"N" ~doc:"Number of span names in the self-time table.")
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Also write the report as JSON (schema tinflow.obs.report/v1) to $(docv); '-' \
             writes it to stdout instead of the human tables.  The _ms field naming makes a \
             report diffable with $(b,tinflow bench-check).")
  in
  let run trace top json obs =
    setup_logs ();
    with_obs ~cmd:"obs.report" obs @@ fun () ->
    let doc =
      match Tin_util.Json.parse (In_channel.with_open_bin trace In_channel.input_all) with
      | Ok doc -> Ok doc
      | Error e -> Error (trace ^ ": " ^ e)
      | exception Sys_error msg -> Error msg
    in
    match Result.bind doc (Tin_obs.Report.analyze ~top) with
    | Error msg ->
        prerr_endline ("tinflow: obs report: " ^ msg);
        2
    | Ok report ->
        (match json with
        | Some "-" -> print_string (Tin_obs.Report.to_json report)
        | Some path ->
            Out_channel.with_open_bin path (fun oc ->
                Out_channel.output_string oc (Tin_obs.Report.to_json report));
            print_string (Tin_obs.Report.render report);
            Printf.eprintf "tinflow: report written to %s\n%!" path
        | None -> print_string (Tin_obs.Report.render report));
        (* Broken stitching is a finding, not a formatting detail:
           surface it in the exit code so CI can assert on it. *)
        if report.Tin_obs.Report.orphans > 0 then begin
          Printf.eprintf "tinflow: obs report: %d orphaned span(s) (parent chain broken)\n%!"
            report.Tin_obs.Report.orphans;
          1
        end
        else 0
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Analyze an exported trace: critical path, per-domain utilization, batch chunk \
          balance, top span self-times")
    Term.(const run $ trace_arg $ top $ json_out $ obs_term)

let obs_cmd =
  Cmd.group
    (Cmd.info "obs" ~doc:"Observability tooling (offline trace analysis)")
    [ obs_report_cmd ]

(* --- dot --- *)

let dot_cmd =
  let source = Arg.(value & opt (some int) None & info [ "source" ] ~docv:"V" ~doc:"Highlight as source.") in
  let sink = Arg.(value & opt (some int) None & info [ "sink" ] ~docv:"V" ~doc:"Highlight as sink.") in
  let run file source sink obs =
    setup_logs ();
    with_obs ~cmd:"dot" obs @@ fun () ->
    let g = load_graph file in
    print_string (Io.to_dot ?source ?sink g);
    0
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Render an interaction network to GraphViz")
    Term.(const run $ file_arg $ source $ sink $ obs_term)

let () =
  let info =
    Cmd.info "tinflow" ~version:"1.0.0"
      ~doc:"Flow computation in temporal interaction networks (ICDE 2021 reproduction)"
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            flow_cmd;
            batch_cmd;
            paths_cmd;
            provenance_cmd;
            profile_cmd;
            patterns_cmd;
            serve_cmd;
            verify_cmd;
            generate_cmd;
            convert_cmd;
            bench_check_cmd;
            obs_cmd;
            dot_cmd;
          ]))
