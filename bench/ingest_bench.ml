(* Streaming-ingestion benchmark: sustained interactions/second of the
   [tinflow serve] daemon's incremental path (Online.push + lazy
   window maintenance) against the naive baseline that rebuilds the
   windowed greedy flow from scratch after every chunk.  Results go to
   BENCH_ingest.json for the bench-check regression gate; the
   committed baseline pins the incremental speedup.

   Two scenarios: an unbounded window (pure append — the daemon never
   rebuilds) and a sliding window covering ~10% of the stream (every
   chunk evicts, so the daemon pays its rebuild-on-observe fallback
   and must still come out ahead).  Each chunk ends with one flow
   observation, matching the monitoring loop of the daemon; both sides
   must report the identical (bit-for-bit) flow sequence. *)

module Daemon = Tin_daemon.Daemon
module Ingest = Tin_daemon.Ingest
module Greedy = Tin_core.Greedy
module Window = Tin_core.Window
module Timer = Tin_util.Timer
module Table = Tin_util.Table
module Prng = Tin_util.Prng

type result = {
  name : string;
  interactions : int;
  chunks : int;
  daemon_per_s : float;
  baseline_per_s : float;
  speedup : float;
  rebuilds : int;
}

(* Strictly increasing times: the stream never ties across chunks, so
   the daemon's dirty-flag fallback fires only on evictions — the
   window scenario measures exactly that path. *)
let make_stream ~n ~vertices rng =
  Array.init n (fun i ->
      let s = Prng.int rng vertices in
      let d = Prng.int rng vertices in
      let d = if d = s then (d + 1) mod vertices else d in
      {
        Ingest.src = s;
        dst = d;
        inter =
          Interaction.make ~time:(float_of_int i)
            ~qty:(float_of_int (1 + Prng.int rng 9));
      })

let chunks_of stream ~chunk =
  let n = Array.length stream in
  List.init
    ((n + chunk - 1) / chunk)
    (fun i -> Array.to_list (Array.sub stream (i * chunk) (min chunk (n - (i * chunk)))))

let run_daemon ~source ~sink ~window chunks =
  let d = Daemon.create (Daemon.config ~source ~sink ?window ()) in
  let flows = List.map (fun c -> ignore (Daemon.ingest d c) ; Daemon.flow d) chunks in
  (flows, (Daemon.stats d).Daemon.rebuilds_total)

(* The naive server: keep every interaction, re-restrict and re-run
   the batch greedy scan from scratch at each observation. *)
let run_baseline ~source ~sink ~window chunks =
  let g = ref Graph.empty in
  let last = ref neg_infinity in
  List.map
    (fun chunk ->
      List.iter
        (fun e ->
          last := Float.max !last (Interaction.time e.Ingest.inter);
          g := Graph.add_interaction !g ~src:e.Ingest.src ~dst:e.Ingest.dst e.Ingest.inter)
        chunk;
      let windowed =
        match window with
        | None -> !g
        | Some w -> Window.restrict ~from_time:(!last -. w) !g
      in
      Greedy.flow windowed ~source ~sink)
    chunks

let scenario ~rng ~n ~chunk ~vertices name window =
  let stream = make_stream ~n ~vertices rng in
  let chunks = chunks_of stream ~chunk in
  let source = 0 and sink = 1 in
  let (daemon_flows, rebuilds), daemon_ms =
    Timer.time_ms (fun () -> run_daemon ~source ~sink ~window chunks)
  in
  let baseline_flows, baseline_ms =
    Timer.time_ms (fun () -> run_baseline ~source ~sink ~window chunks)
  in
  (* Exactness guard: the incremental daemon must track the batch
     recomputation bit for bit, chunk after chunk. *)
  List.iter2
    (fun a b ->
      if not (Float.equal a b) then
        failwith (Printf.sprintf "ingest bench: daemon %g <> baseline %g" a b))
    daemon_flows baseline_flows;
  {
    name;
    interactions = n;
    chunks = List.length chunks;
    daemon_per_s = float_of_int n /. (daemon_ms /. 1000.0);
    baseline_per_s = float_of_int n /. (baseline_ms /. 1000.0);
    speedup = baseline_ms /. daemon_ms;
    rebuilds;
  }

let json_escape = Tin_util.Json.escape
let json_float f = if Float.is_finite f then Printf.sprintf "%.6g" f else "null"

let write_json path ~scale_name results =
  let b = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\n";
  add "  \"benchmark\": \"ingest\",\n";
  add "  \"scale\": \"%s\",\n" (json_escape scale_name);
  add "  \"scenarios\": [\n";
  List.iteri
    (fun i r ->
      add "    {\n";
      add "      \"name\": \"%s\",\n" (json_escape r.name);
      add "      \"interactions\": %d,\n" r.interactions;
      add "      \"chunks\": %d,\n" r.chunks;
      add "      \"rebuilds\": %d,\n" r.rebuilds;
      add "      \"daemon_ingest_per_s\": %s,\n" (json_float r.daemon_per_s);
      add "      \"baseline_rebuild_per_s\": %s,\n" (json_float r.baseline_per_s);
      add "      \"incremental_speedup\": %s\n" (json_float r.speedup);
      add "    }%s\n" (if i < List.length results - 1 then "," else ""))
    results;
  add "  ]\n";
  add "}\n";
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc (Buffer.contents b))

let run ?(json = "BENCH_ingest.json") ~scale_name ~quick () =
  Printf.printf "Streaming ingestion: incremental daemon vs rebuild-from-scratch baseline\n%!";
  let rng = Prng.create ~seed:42 in
  let n = if quick then 20_000 else 80_000 in
  let chunk = 100 and vertices = 400 in
  let results =
    [
      scenario ~rng ~n ~chunk ~vertices "unbounded" None;
      scenario ~rng ~n ~chunk ~vertices "windowed"
        (Some (float_of_int n /. 10.0));
    ]
  in
  Table.print ~title:(Printf.sprintf "Sustained ingestion, %d interactions in chunks of %d" n chunk)
    ~header:[ "Scenario"; "Daemon/s"; "Baseline/s"; "Speedup"; "Rebuilds" ]
    (List.map
       (fun r ->
         [
           r.name;
           Printf.sprintf "%.0f" r.daemon_per_s;
           Printf.sprintf "%.0f" r.baseline_per_s;
           Printf.sprintf "%.1fx" r.speedup;
           string_of_int r.rebuilds;
         ])
       results);
  write_json json ~scale_name results;
  Printf.printf "Ingest benchmark written to %s\n" json
