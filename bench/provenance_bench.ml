(* Provenance-engine benchmark: sustained interactions/second of the
   policy-driven provenance scan (Tin_core.Provenance) over the flat
   Compact substrate, per selection policy, against the plain greedy
   scan as the no-attribution baseline.  Results go to
   BENCH_provenance.json for the bench-check regression gate; spill
   and peak-entry counts are deterministic for the fixed seed, so the
   baseline also pins the memory-bounding behaviour.

   Every scenario carries an exactness guard: the Graph.t and
   Compact.t twins must produce identical vectors, totals, spill and
   peak counts — the bench fails outright if the representations ever
   diverge. *)

module Prov = Tin_core.Provenance
module Greedy = Tin_core.Greedy
module Timer = Tin_util.Timer
module Table = Tin_util.Table
module Prng = Tin_util.Prng

type result = {
  name : string;
  interactions : int;
  scan_ms : float;  (* Graph.t representation *)
  compact_scan_ms : float;
  inter_per_s : float;  (* from the compact scan *)
  spills : int;
  peak_entries : int;
}

(* Strictly increasing times over a modest vertex set: buffers fill,
   drain and re-fill, so the selection policies do real work and the
   entry budget spills on the hub vertices. *)
let make_graph ~n ~vertices rng =
  let g = ref Graph.empty in
  for i = 0 to n - 1 do
    let s = Prng.int rng vertices in
    let d = Prng.int rng vertices in
    let d = if d = s then (d + 1) mod vertices else d in
    g :=
      Graph.add_interaction !g ~src:s ~dst:d
        (Interaction.make ~time:(float_of_int i) ~qty:(float_of_int (1 + Prng.int rng 9)))
  done;
  !g

let scenario ~g ~c ~n name run_graph run_compact =
  let r, scan_ms = Timer.time_ms (fun () -> run_graph g) in
  let rc, compact_scan_ms = Timer.time_ms (fun () -> run_compact c) in
  if r <> rc then
    failwith (Printf.sprintf "provenance bench: %s diverges between Graph and Compact" name);
  {
    name;
    interactions = n;
    scan_ms;
    compact_scan_ms;
    inter_per_s = float_of_int n /. (compact_scan_ms /. 1000.0);
    spills = r.Prov.spills;
    peak_entries = r.Prov.peak_entries;
  }

let json_escape = Tin_util.Json.escape
let json_float f = if Float.is_finite f then Printf.sprintf "%.6g" f else "null"

let write_json path ~scale_name results =
  let b = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\n";
  add "  \"benchmark\": \"provenance\",\n";
  add "  \"scale\": \"%s\",\n" (json_escape scale_name);
  add "  \"scenarios\": [\n";
  List.iteri
    (fun i r ->
      add "    {\n";
      add "      \"name\": \"%s\",\n" (json_escape r.name);
      add "      \"interactions\": %d,\n" r.interactions;
      add "      \"spills\": %d,\n" r.spills;
      add "      \"peak_entries\": %d,\n" r.peak_entries;
      add "      \"scan_ms\": %s,\n" (json_float r.scan_ms);
      add "      \"compact_scan_ms\": %s,\n" (json_float r.compact_scan_ms);
      add "      \"inter_per_s\": %s\n" (json_float r.inter_per_s);
      add "    }%s\n" (if i < List.length results - 1 then "," else ""))
    results;
  add "  ]\n";
  add "}\n";
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc (Buffer.contents b))

let run ?(json = "BENCH_provenance.json") ~scale_name ~quick () =
  Printf.printf "Provenance scan: policy-driven origin attribution vs plain greedy scan\n%!";
  let rng = Prng.create ~seed:42 in
  let n = if quick then 30_000 else 200_000 in
  let vertices = 500 in
  let source = 0 and sink = 1 in
  let g = make_graph ~n ~vertices rng in
  let c = Compact.of_graph g in
  let policies = [ Prov.Lrb; Prov.Mrb; Prov.Proportional ] in
  let open_world =
    List.map
      (fun p ->
        scenario ~g ~c ~n (Prov.policy_name p)
          (Prov.run ~policy:p ~absorb:sink)
          (Prov.run_compact ~policy:p ~absorb:sink))
      policies
  in
  let rooted =
    scenario ~g ~c ~n "prop-rooted"
      (Prov.run ~policy:Prov.Proportional ~source ~absorb:sink)
      (Prov.run_compact ~policy:Prov.Proportional ~source ~absorb:sink)
  in
  (* The no-attribution floor: the plain greedy scalar scan over the
     same substrate, for the overhead column. *)
  let greedy_v, greedy_ms =
    Timer.time_ms (fun () -> Greedy.flow_compact c ~source ~sink)
  in
  ignore greedy_v;
  let greedy_row =
    {
      name = "greedy-baseline";
      interactions = n;
      scan_ms = greedy_ms;
      compact_scan_ms = greedy_ms;
      inter_per_s = float_of_int n /. (greedy_ms /. 1000.0);
      spills = 0;
      peak_entries = 0;
    }
  in
  let results = open_world @ [ rooted; greedy_row ] in
  Table.print
    ~title:
      (Printf.sprintf "Provenance scan, %d interactions over %d vertices (budget %d)" n
         vertices Prov.default_budget)
    ~header:[ "Scenario"; "Scan ms"; "Inter/s"; "Overhead"; "Spills"; "Peak entries" ]
    (List.map
       (fun r ->
         [
           r.name;
           Printf.sprintf "%.1f" r.compact_scan_ms;
           Printf.sprintf "%.0f" r.inter_per_s;
           Printf.sprintf "%.1fx" (r.compact_scan_ms /. greedy_ms);
           string_of_int r.spills;
           string_of_int r.peak_entries;
         ])
       results);
  write_json json ~scale_name results;
  Printf.printf "Provenance benchmark written to %s\n" json
