(* Load-path benchmark: CSV parse vs binary snapshot load on the
   synthetic datasets.  Results go to BENCH_load.json for the
   bench-check regression gate; the committed baseline pins the
   snapshot speedup (the tentpole claim: loading a .tinb is >= 5x
   faster than re-parsing the CSV).

   Per dataset the generated network is dumped once as CSV and once as
   a .tinb snapshot into temp files, then each format is loaded [reps]
   times through the auto-detecting [Io.load_compact]; the minimum
   wall time is reported (minimum is the stable statistic for
   load-path timing).  The two loads must reconstruct equal
   substrates.  Peak RSS is the max-tracking [runtime_peak_rss_bytes]
   gauge, sampled after every load. *)

module Timer = Tin_util.Timer
module Table = Tin_util.Table
module Obs = Tin_obs.Obs

type result = {
  name : string;
  n_interactions : int;
  csv_bytes : int;
  snapshot_bytes : int;
  csv_parse_ms : float;
  snapshot_load_ms : float;
  speedup : float;
  peak_rss_bytes : float;
}

let file_bytes path = In_channel.with_open_bin path In_channel.length |> Int64.to_int

let time_best ~reps f =
  let best = ref infinity in
  let out = ref None in
  for _ = 1 to reps do
    let v, ms = Timer.time_ms f in
    if ms < !best then best := ms;
    out := Some v;
    (* Keep the RSS high-water mark fresh while the loaded structures
       are still live. *)
    Obs.Runtime.sample ()
  done;
  (Option.get !out, !best)

let measure ~reps (d : Workload.dataset) =
  let name = d.Workload.spec.Tin_datasets.Spec.name in
  let g = Static.to_graph d.Workload.net in
  let c0 = Compact.of_graph g in
  let csv = Filename.temp_file "tinflow_load" ".csv" in
  let snap = Filename.temp_file "tinflow_load" ".tinb" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove csv with Sys_error _ -> ());
      try Sys.remove snap with Sys_error _ -> ())
    (fun () ->
      Io.save_csv csv g;
      Snapshot.save snap c0;
      let c_csv, csv_parse_ms = time_best ~reps (fun () -> Io.load_compact csv) in
      let c_snap, snapshot_load_ms = time_best ~reps (fun () -> Io.load_compact snap) in
      (* Equality is part of the benchmark contract: a faster loader
         that reconstructs a different network is a bug, not a win. *)
      if not (Compact.equal c_csv c0) then failwith ("CSV round-trip drift on " ^ name);
      if not (Compact.equal c_snap c0) then failwith ("snapshot round-trip drift on " ^ name);
      let peak_rss_bytes =
        match List.assoc_opt "runtime_peak_rss_bytes" (Obs.gauges ()) with
        | Some v -> v
        | None -> 0.0 (* /proc/self/statm absent (non-Linux) *)
      in
      {
        name;
        n_interactions = Compact.n_interactions c0;
        csv_bytes = file_bytes csv;
        snapshot_bytes = file_bytes snap;
        csv_parse_ms;
        snapshot_load_ms;
        speedup = (if snapshot_load_ms > 0.0 then csv_parse_ms /. snapshot_load_ms else 0.0);
        peak_rss_bytes;
      })

(* JSON output, same hand-rolled shape as the other bench documents. *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float f = if Float.is_finite f then Printf.sprintf "%.6g" f else "null"

let write_json path ~scale_name results =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\n";
  add "  \"benchmark\": \"load\",\n";
  add "  \"scale\": \"%s\",\n" (json_escape scale_name);
  add "  \"snapshot_version\": %d,\n" Snapshot.version;
  add "  \"datasets\": [\n";
  List.iteri
    (fun i r ->
      add "    {\n";
      add "      \"name\": \"%s\",\n" (json_escape r.name);
      add "      \"n_interactions\": %d,\n" r.n_interactions;
      add "      \"csv_bytes\": %d,\n" r.csv_bytes;
      add "      \"snapshot_bytes\": %d,\n" r.snapshot_bytes;
      add "      \"csv_parse_ms\": %s,\n" (json_float r.csv_parse_ms);
      add "      \"snapshot_load_ms\": %s,\n" (json_float r.snapshot_load_ms);
      add "      \"speedup\": %s,\n" (json_float r.speedup);
      add "      \"peak_rss_bytes\": %s\n" (json_float r.peak_rss_bytes);
      add "    }%s\n" (if i < List.length results - 1 then "," else ""))
    results;
  add "  ]\n";
  add "}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents b);
  close_out oc

let run ?(json = "BENCH_load.json") ~scale_name datasets =
  let reps = 5 in
  Printf.printf "Measuring load paths (CSV parse vs snapshot load, best of %d)...\n%!" reps;
  Obs.reset ();
  Obs.enable ();
  let results = List.map (measure ~reps) datasets in
  Obs.disable ();
  Obs.reset ();
  Table.print ~title:"Network load paths"
    ~header:[ "dataset"; "interactions"; "csv"; "tinb"; "csv parse"; "tinb load"; "speedup" ]
    (List.map
       (fun r ->
         [
           r.name;
           string_of_int r.n_interactions;
           Printf.sprintf "%.1f MB" (float_of_int r.csv_bytes /. 1e6);
           Printf.sprintf "%.1f MB" (float_of_int r.snapshot_bytes /. 1e6);
           Table.fmt_ms r.csv_parse_ms;
           Table.fmt_ms r.snapshot_load_ms;
           Printf.sprintf "%.1fx" r.speedup;
         ])
       results);
  List.iter
    (fun r ->
      if r.speedup < 5.0 then
        Printf.printf "  WARNING: %s snapshot speedup %.1fx below the 5x target\n" r.name
          r.speedup)
    results;
  write_json json ~scale_name results;
  Printf.printf "Load benchmark written to %s\n" json
