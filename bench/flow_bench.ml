(* Flow-computation experiments: Tables 4-8 and Figure 11. *)

module Pipeline = Tin_core.Pipeline
module Extract = Tin_datasets.Extract
module Generator = Tin_datasets.Generator
module Table = Tin_util.Table
module Timer = Tin_util.Timer
module Stats = Tin_util.Stats

(* ------------------------------------------------------------------ *)
(* Table 4: dataset characteristics                                    *)
(* ------------------------------------------------------------------ *)

let table4 datasets =
  let rows =
    List.map
      (fun d ->
        let s = Generator.stats d.Workload.net in
        [
          d.Workload.spec.Tin_datasets.Spec.name;
          Table.fmt_count (float_of_int s.Generator.n_vertices);
          Table.fmt_count (float_of_int s.Generator.n_edges);
          Table.fmt_count (float_of_int s.Generator.n_interactions);
          Table.fmt_flow s.Generator.avg_qty ^ d.Workload.spec.Tin_datasets.Spec.unit;
        ])
      datasets
  in
  Table.print
    ~title:"Table 4: Characteristics of datasets (synthetic stand-ins, scaled)"
    ~header:[ "Dataset"; "#nodes"; "#edges"; "#interactions"; "avg. flow" ]
    rows

(* ------------------------------------------------------------------ *)
(* Table 5: extracted subgraph statistics                              *)
(* ------------------------------------------------------------------ *)

let table5 datasets =
  let rows =
    List.map
      (fun d ->
        let s = Extract.summarize d.Workload.problems in
        [
          d.Workload.spec.Tin_datasets.Spec.name;
          string_of_int s.Extract.n_subgraphs;
          Printf.sprintf "%.2f" s.Extract.avg_vertices;
          Printf.sprintf "%.2f" s.Extract.avg_edges;
          Printf.sprintf "%.1f" s.Extract.avg_interactions;
        ])
      datasets
  in
  Table.print
    ~title:"Table 5: Statistics of extracted subgraphs"
    ~header:[ "Dataset"; "#subgraphs"; "avg #vertices"; "avg #edges"; "avg #interactions" ]
    rows

(* ------------------------------------------------------------------ *)
(* Tables 6-8: per-method runtimes, overall and per class              *)
(* ------------------------------------------------------------------ *)

type measured = {
  problem : Extract.problem;
  cls : Pipeline.cls;
  times : (Pipeline.method_ * float) list; (* ms *)
  greedy_flow : float;
  max_flow : float;
}

let methods = Pipeline.[ Greedy; Lp; Pre; Pre_sim ]

let measure_problem (p : Extract.problem) =
  let g = p.Extract.graph and source = p.Extract.source and sink = p.Extract.sink in
  let cls = Pipeline.classify g ~source ~sink in
  let run m =
    let v, ms = Timer.time_ms (fun () -> Pipeline.compute m g ~source ~sink) in
    (v, ms)
  in
  let greedy_flow, greedy_ms = run Pipeline.Greedy in
  let lp_flow, lp_ms = run Pipeline.Lp in
  let _, pre_ms = run Pipeline.Pre in
  let presim_flow, presim_ms = run Pipeline.Pre_sim in
  (* Consistency guard: the accelerated pipeline must agree with the
     direct LP — a hard failure here means a bug, not noise. *)
  if not (Tin_util.Fcmp.approx_eq ~eps:1e-4 lp_flow presim_flow) then
    failwith
      (Printf.sprintf "method disagreement on seed %d: LP=%g PreSim=%g" p.Extract.seed lp_flow
         presim_flow);
  {
    problem = p;
    cls;
    times =
      [
        (Pipeline.Greedy, greedy_ms);
        (Pipeline.Lp, lp_ms);
        (Pipeline.Pre, pre_ms);
        (Pipeline.Pre_sim, presim_ms);
      ];
    greedy_flow;
    max_flow = presim_flow;
  }

let measure_dataset d = List.map measure_problem d.Workload.problems

let avg_times measured =
  List.map
    (fun m ->
      let ts = List.map (fun r -> List.assoc m r.times) measured in
      (m, Stats.mean ts))
    methods

let flow_table d measured =
  let spec_name = d.Workload.spec.Tin_datasets.Spec.name in
  let class_row label rows =
    match rows with
    | [] -> [ label ^ " (0)"; "-"; "-"; "-"; "-" ]
    | _ ->
        (label ^ Printf.sprintf " (%d)" (List.length rows))
        :: List.map (fun (_, ms) -> Table.fmt_ms ms) (avg_times rows)
  in
  let cls c = List.filter (fun r -> r.cls = c) measured in
  Table.print
    ~title:
      (Printf.sprintf "Table %d: Runtime for %s subgraphs (avg per subgraph)" d.Workload.table_id
         spec_name)
    ~header:[ "Subgraphs"; "Greedy"; "LP"; "Pre"; "PreSim" ]
    [
      class_row "All" measured;
      class_row "Class A" (cls Pipeline.A);
      class_row "Class B" (cls Pipeline.B);
      class_row "Class C" (cls Pipeline.C);
    ];
  (* Shape check the paper cares about: report the speedup. *)
  let avg = avg_times measured in
  let t m = List.assoc m avg in
  if t Pipeline.Pre_sim > 0.0 then
    Printf.printf "  -> speedup of PreSim over LP: %.1fx (Pre: %.1fx)\n\n"
      (t Pipeline.Lp /. t Pipeline.Pre_sim)
      (t Pipeline.Lp /. t Pipeline.Pre)

(* ------------------------------------------------------------------ *)
(* Figure 11: runtime vs. number of interactions                       *)
(* ------------------------------------------------------------------ *)

(* The paper buckets at <100 / 100-1000 / >1000 with a 10K-interaction
   cap; our extraction cap is 1000 (scaled down with the datasets), so
   the bucket boundaries scale accordingly. *)
let buckets = [ ("<100", 0, 99); ("100-500", 100, 499); (">500", 500, max_int) ]

let figure11 d measured =
  let rows =
    List.filter_map
      (fun (label, lo, hi) ->
        let in_bucket =
          List.filter
            (fun r ->
              let n = r.problem.Extract.n_interactions in
              n >= lo && n <= hi)
            measured
        in
        match in_bucket with
        | [] -> Some [ label ^ " (0)"; "-"; "-"; "-"; "-" ]
        | _ ->
            Some
              ((Printf.sprintf "%s (%d)" label (List.length in_bucket))
              :: List.map
                   (fun (_, ms) -> Printf.sprintf "%.3g" (ms *. 1000.0))
                   (avg_times in_bucket)))
      buckets
  in
  Table.print
    ~title:
      (Printf.sprintf "Figure 11%s: Runtime [usec] per #interactions bucket (%s)"
         (match d.Workload.table_id with 6 -> "(a)" | 7 -> "(b)" | _ -> "(c)")
         d.Workload.spec.Tin_datasets.Spec.name)
    ~header:[ "#interactions"; "Greedy"; "LP"; "Pre"; "PreSim" ]
    rows

let run datasets =
  table4 datasets;
  print_newline ();
  table5 datasets;
  print_newline ();
  let measured = List.map (fun d -> (d, measure_dataset d)) datasets in
  List.iter (fun (d, m) -> flow_table d m) measured;
  List.iter
    (fun (d, m) ->
      figure11 d m;
      print_newline ())
    measured
