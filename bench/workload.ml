(* Shared benchmark workload: the three synthetic datasets and their
   extracted flow subgraphs, generated once per process.

   Scale knobs: [quick] shrinks everything (CI smoke); [full] is the
   default reproduction scale. *)

module Spec = Tin_datasets.Spec
module Generator = Tin_datasets.Generator
module Extract = Tin_datasets.Extract

type scale = {
  factor : float;
  max_interactions : int;
  max_subgraphs : int;
  gb_limit : int;  (** Instance cap for table-driven patterns. *)
  lp_pattern_limit : int;
      (** Instance cap for the LP-per-instance patterns (P4/P6) — the
          paper likewise truncated those at 3000 instances. *)
  gb_budget_ms : float;
      (** Wall-clock budget per graph-browsing run; runs that exceed
          it are extrapolated like the paper's "(est.)" entries. *)
}

let full =
  {
    factor = 1.0;
    max_interactions = 1000;
    max_subgraphs = 400;
    gb_limit = 300_000;
    lp_pattern_limit = 3000;
    gb_budget_ms = 20_000.0;
  }

let quick =
  {
    factor = 0.1;
    max_interactions = 300;
    max_subgraphs = 60;
    gb_limit = 20_000;
    lp_pattern_limit = 500;
    gb_budget_ms = 3_000.0;
  }

type dataset = {
  spec : Spec.t;
  net : Static.t;
  problems : Extract.problem list;
  table_id : int; (* paper table number for flow experiments *)
  pattern_table_id : int;
}

let seed_of_spec (spec : Spec.t) =
  (* Stable per-dataset seeds. *)
  match spec.Spec.name with
  | "Bitcoin" -> 101
  | "CTU-13" -> 102
  | "Prosper Loans" -> 103
  | _ -> 999

let load scale =
  let make (spec : Spec.t) table_id pattern_table_id =
    let spec = Spec.scaled ~factor:scale.factor spec in
    let net = Generator.generate ~seed:(seed_of_spec spec) spec in
    let problems =
      Extract.extract ~max_interactions:scale.max_interactions
        ~max_subgraphs:scale.max_subgraphs net
    in
    { spec; net; problems; table_id; pattern_table_id }
  in
  [
    make Spec.bitcoin 6 9;
    make Spec.ctu13 7 10;
    make Spec.prosper 8 11;
  ]
