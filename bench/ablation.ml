(* Ablation benchmarks for the design choices DESIGN.md calls out:

   A. LP solver variant: the paper's LP has per-variable bounds; we
      measure explicit bound rows (dense two-phase simplex) against
      the bounded-variable simplex on the hard (Class C) subgraphs.
   B. Static solver on the time-expanded network: Edmonds-Karp vs
      Dinic vs push-relabel (the PTIME route of Section 4.2.1).
   C. Path-table maintenance: full precomputation vs delta updates
      (the paper's footnote-2 suggestion) for a batch of fresh
      interactions. *)

module Pipeline = Tin_core.Pipeline
module Lp_flow = Tin_core.Lp_flow
module Extract = Tin_datasets.Extract
module TE = Tin_maxflow.Time_expand
module Table = Tin_util.Table
module Timer = Tin_util.Timer
module Stats = Tin_util.Stats
module Prng = Tin_util.Prng

let class_c_problems d =
  List.filter
    (fun (p : Extract.problem) ->
      Pipeline.classify p.Extract.graph ~source:p.Extract.source ~sink:p.Extract.sink
      = Pipeline.C)
    d.Workload.problems

let lp_solver_ablation datasets =
  let rows =
    List.map
      (fun d ->
        let problems = class_c_problems d in
        let time solver =
          Stats.mean
            (List.map
               (fun (p : Extract.problem) ->
                 let _, ms =
                   Timer.time_ms (fun () ->
                       match
                         Lp_flow.solve ~solver p.Extract.graph ~source:p.Extract.source
                           ~sink:p.Extract.sink
                       with
                       | Ok v -> v
                       | Error _ -> nan)
                 in
                 ms)
               problems)
        in
        let dense = time `Dense and bounded = time `Bounded in
        [
          d.Workload.spec.Tin_datasets.Spec.name;
          string_of_int (List.length problems);
          Table.fmt_ms dense;
          Table.fmt_ms bounded;
          Printf.sprintf "%.1fx" (dense /. Float.max 1e-9 bounded);
        ])
      datasets
  in
  Table.print
    ~title:"Ablation A: LP with bound rows (dense) vs native bounds (bounded), Class C subgraphs"
    ~header:[ "Dataset"; "#subgraphs"; "Dense simplex"; "Bounded simplex"; "speedup" ]
    rows;
  print_newline ()

let static_solver_ablation datasets =
  let rows =
    List.map
      (fun d ->
        (* The 20 largest problems per dataset. *)
        let problems =
          List.sort
            (fun (a : Extract.problem) b ->
              compare b.Extract.n_interactions a.Extract.n_interactions)
            d.Workload.problems
          |> List.filteri (fun i _ -> i < 20)
        in
        let time algo =
          Stats.mean
            (List.map
               (fun (p : Extract.problem) ->
                 let _, ms =
                   Timer.time_ms (fun () ->
                       TE.max_flow ~algo p.Extract.graph ~source:p.Extract.source
                         ~sink:p.Extract.sink)
                 in
                 ms)
               problems)
        in
        [
          d.Workload.spec.Tin_datasets.Spec.name;
          Table.fmt_ms (time `Edmonds_karp);
          Table.fmt_ms (time `Dinic);
          Table.fmt_ms (time `Push_relabel);
        ])
      datasets
  in
  Table.print
    ~title:"Ablation B: static max-flow solver on the time-expanded network (20 largest subgraphs)"
    ~header:[ "Dataset"; "Edmonds-Karp"; "Dinic"; "Push-relabel" ]
    rows;
  print_newline ()

let delta_ablation datasets =
  let rng = Prng.create ~seed:7777 in
  let rows =
    List.map
      (fun d ->
        let net = d.Workload.net in
        let n = Static.n_vertices net in
        let additions =
          List.init 100 (fun _ ->
              let s = Prng.int rng n and t = Prng.int rng n in
              let t = if t = s then (t + 1) mod n else t in
              ( Static.label net s,
                Static.label net t,
                [
                  Interaction.make
                    ~time:(Prng.float rng 1_000_000.0)
                    ~qty:(Prng.log_normal rng ~mu:1.0 ~sigma:1.0);
                ] ))
        in
        let state, init_ms =
          Timer.time_ms (fun () -> Tin_patterns.Delta.create net)
        in
        let updated, delta_ms =
          Timer.time_ms (fun () -> Tin_patterns.Delta.apply state ~additions)
        in
        let _, full_ms =
          Timer.time_ms (fun () -> Tin_patterns.Catalog.precompute updated.Tin_patterns.Delta.net)
        in
        [
          d.Workload.spec.Tin_datasets.Spec.name;
          Table.fmt_ms init_ms;
          Table.fmt_ms full_ms;
          Table.fmt_ms delta_ms;
          string_of_int updated.Tin_patterns.Delta.rows_recomputed;
          Printf.sprintf "%.0fx" (full_ms /. Float.max 1e-9 delta_ms);
        ])
      datasets
  in
  Table.print
    ~title:"Ablation C: path tables, full rebuild vs delta update (batch of 100 new interactions)"
    ~header:
      [ "Dataset"; "Initial build"; "Full rebuild"; "Delta update"; "rows touched"; "speedup" ]
    rows;
  print_newline ()

let run datasets =
  lp_solver_ablation datasets;
  static_solver_ablation datasets;
  delta_ablation datasets
